// Aggregation and server-optimizer math against hand-computed values.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "fl/server_optimizer.h"

namespace {

using flips::fl::LocalUpdate;
using flips::fl::ServerOpt;
using flips::fl::ServerOptConfig;
using flips::fl::ServerOptimizer;

TEST(AggregateUpdates, SampleWeightedMean) {
  std::vector<LocalUpdate> updates(2);
  updates[0].num_samples = 10;
  updates[0].delta = {1.0, -2.0};
  updates[1].num_samples = 30;
  updates[1].delta = {5.0, 2.0};
  const auto out = flips::fl::aggregate_updates(updates);
  ASSERT_EQ(out.size(), 2u);
  // (10*1 + 30*5) / 40 = 4; (10*-2 + 30*2) / 40 = 1.
  EXPECT_DOUBLE_EQ(out[0], 4.0);
  EXPECT_DOUBLE_EQ(out[1], 1.0);
}

TEST(AggregateUpdates, EmptyInput) {
  EXPECT_TRUE(flips::fl::aggregate_updates({}).empty());
}

TEST(AggregateUpdates, RejectsMixedDimensions) {
  // The old behavior max-padded short deltas, silently shrinking the
  // coordinates past their end (still divided by the full weight).
  std::vector<LocalUpdate> updates(2);
  updates[0].num_samples = 10;
  updates[0].delta = {1.0, 2.0, 3.0};
  updates[1].num_samples = 10;
  updates[1].delta = {1.0, 2.0};
  EXPECT_THROW(flips::fl::aggregate_updates(updates),
               std::invalid_argument);
}

TEST(ServerOptimizer, FedAvgAppliesDeltaTimesLr) {
  ServerOptConfig config;
  config.optimizer = ServerOpt::kFedAvg;
  config.learning_rate = 1.0;
  ServerOptimizer server(config, 2);
  std::vector<double> params = {1.0, 2.0};
  server.apply(params, {0.5, -0.25});
  EXPECT_DOUBLE_EQ(params[0], 1.5);
  EXPECT_DOUBLE_EQ(params[1], 1.75);
}

TEST(ServerOptimizer, FedYogiSingleRoundHandComputed) {
  // FedYogi (Reddi et al. 2021), first step from zero state:
  //   m1 = (1 - b1) g
  //   v1 = v0 - (1 - b2) g^2 sign(v0 - g^2) = (1 - b2) g^2   (v0 = 0)
  //   w += lr * m1 / (sqrt(v1) + tau)
  ServerOptConfig config;
  config.optimizer = ServerOpt::kFedYogi;
  config.learning_rate = 0.05;
  config.beta1 = 0.9;
  config.beta2 = 0.99;
  config.tau = 1e-3;
  ServerOptimizer server(config, 2);

  const double g0 = 0.1;
  const double g1 = -0.2;
  std::vector<double> params = {0.0, 0.0};
  server.apply(params, {g0, g1});

  const auto expected = [&](double g) {
    const double m = 0.1 * g;
    const double v = 0.01 * g * g;
    return 0.05 * m / (std::sqrt(v) + 1e-3);
  };
  EXPECT_NEAR(params[0], expected(g0), 1e-12);
  EXPECT_NEAR(params[1], expected(g1), 1e-12);

  // Second step, same gradient: m2 = b1 m1 + (1-b1) g;
  // v2 = v1 - (1-b2) g^2 sign(v1 - g^2); v1 < g^2 so v2 = v1 + 0.01 g^2.
  const double m1_0 = 0.1 * g0;
  const double v1_0 = 0.01 * g0 * g0;
  const double m2_0 = 0.9 * m1_0 + 0.1 * g0;
  const double v2_0 = v1_0 + 0.01 * g0 * g0;
  const double before = params[0];
  server.apply(params, {g0, g1});
  EXPECT_NEAR(params[0] - before,
              0.05 * m2_0 / (std::sqrt(v2_0) + 1e-3), 1e-12);
}

TEST(ServerOptimizer, FedAdamSecondMomentIsEma) {
  ServerOptConfig config;
  config.optimizer = ServerOpt::kFedAdam;
  config.learning_rate = 0.1;
  config.beta1 = 0.5;
  config.beta2 = 0.5;
  config.tau = 1e-3;
  ServerOptimizer server(config, 1);
  std::vector<double> params = {0.0};
  server.apply(params, {1.0});
  // m1 = 0.5, v1 = 0.5, step = 0.1 * 0.5 / (sqrt(0.5) + 1e-3).
  EXPECT_NEAR(params[0], 0.1 * 0.5 / (std::sqrt(0.5) + 1e-3), 1e-12);
}

TEST(ServerOptimizer, FedAdagradAccumulates) {
  ServerOptConfig config;
  config.optimizer = ServerOpt::kFedAdagrad;
  config.learning_rate = 1.0;
  config.beta1 = 0.0;  // isolate the accumulator
  config.tau = 0.0;
  ServerOptimizer server(config, 1);
  std::vector<double> params = {0.0};
  server.apply(params, {3.0});
  // v = 9, step = 3 / 3 = 1.
  EXPECT_NEAR(params[0], 1.0, 1e-12);
  server.apply(params, {4.0});
  // v = 9 + 16 = 25, step = 4 / 5.
  EXPECT_NEAR(params[0], 1.8, 1e-12);
}

TEST(ServerOptimizer, ToString) {
  EXPECT_STREQ(flips::fl::to_string(ServerOpt::kFedYogi), "fedyogi");
  EXPECT_STREQ(flips::fl::to_string(ServerOpt::kFedAvg), "fedavg");
}

}  // namespace
