// Streaming control plane: threshold path selection, bounded-memory
// sharded ingestion (incl. concurrent submitters), incremental
// late-joiner assignment, drift trigger/no-trigger behaviour, and the
// epoch-versioned selector rebind.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "ctrl/drift_monitor.h"
#include "ctrl/streaming_cluster_engine.h"

namespace {

using flips::ctrl::DriftMonitor;
using flips::ctrl::DriftMonitorConfig;
using flips::ctrl::MembershipView;
using flips::ctrl::StreamingClusterConfig;
using flips::ctrl::StreamingClusterEngine;

/// A label distribution concentrated on `mode` (Hellinger-embedded,
/// like core::PrivateClusteringService feeds the engine).
flips::cluster::Point mode_point(std::size_t mode, std::size_t dim,
                                 double jitter = 0.0) {
  flips::cluster::Point p(dim, 0.02);
  p[mode % dim] = 0.8 + jitter;
  double sum = 0.0;
  for (const double v : p) sum += v;
  for (auto& v : p) v = std::sqrt(v / sum);
  return p;
}

StreamingClusterConfig small_config() {
  StreamingClusterConfig config;
  config.k_override = 3;
  config.restarts = 2;
  config.num_shards = 4;
  config.shard_capacity = 64;
  config.seed = 7;
  return config;
}

TEST(StreamingClusterEngine, LloydPathAtOrBelowThreshold) {
  StreamingClusterConfig config = small_config();
  config.lloyd_threshold = 30;
  StreamingClusterEngine engine(config);
  for (std::size_t p = 0; p < 30; ++p) {
    EXPECT_TRUE(engine.submit(p, mode_point(p % 3, 6)));
  }
  EXPECT_STREQ(engine.last_path(), "none");
  const MembershipView view = engine.rebuild();
  EXPECT_STREQ(engine.last_path(), "lloyd");
  EXPECT_EQ(view.epoch, 1u);
  EXPECT_EQ(view.k, 3u);
  ASSERT_EQ(view.cluster_of.size(), 30u);
  for (std::size_t p = 3; p < 30; ++p) {
    EXPECT_EQ(view.cluster_of[p], view.cluster_of[p % 3]);
  }
}

TEST(StreamingClusterEngine, MiniBatchPathAboveThreshold) {
  StreamingClusterConfig config = small_config();
  config.lloyd_threshold = 20;  // 40 parties > 20 => mini-batch
  StreamingClusterEngine engine(config);
  for (std::size_t p = 0; p < 40; ++p) {
    engine.submit(p, mode_point(p % 3, 6));
  }
  const MembershipView view = engine.rebuild();
  EXPECT_STREQ(engine.last_path(), "minibatch");
  EXPECT_EQ(view.k, 3u);
  ASSERT_EQ(view.cluster_of.size(), 40u);
  // Mini-batch must recover the same obvious mode structure.
  for (std::size_t p = 3; p < 40; ++p) {
    EXPECT_EQ(view.cluster_of[p], view.cluster_of[p % 3]);
  }
}

TEST(StreamingClusterEngine, ElbowFindsPlantedKOnBothPaths) {
  const std::size_t thresholds[] = {100, 10};
  for (const std::size_t threshold : thresholds) {
    StreamingClusterConfig config = small_config();
    config.k_override = 0;  // engage the elbow
    config.k_min = 2;
    config.k_max = 6;
    config.lloyd_threshold = threshold;
    config.elbow_sample = 48;
    StreamingClusterEngine engine(config);
    for (std::size_t p = 0; p < 60; ++p) {
      engine.submit(p, mode_point(p % 3, 8));
    }
    const MembershipView view = engine.rebuild();
    EXPECT_EQ(view.k, 3u)
        << "path=" << engine.last_path() << " threshold=" << threshold;
  }
}

TEST(StreamingClusterEngine, LateJoinerAssignedIncrementally) {
  StreamingClusterConfig config = small_config();
  StreamingClusterEngine engine(config);
  for (std::size_t p = 0; p < 30; ++p) {
    engine.submit(p, mode_point(p % 3, 6));
  }
  const MembershipView before = engine.rebuild();
  ASSERT_EQ(before.epoch, 1u);

  // A brand-new party lands near mode 1: it must be assigned to mode
  // 1's cluster immediately, without a re-clustering epoch.
  EXPECT_TRUE(engine.submit(30, mode_point(1, 6, 0.01)));
  const MembershipView after = engine.view();
  EXPECT_EQ(after.epoch, 1u);
  ASSERT_EQ(after.cluster_of.size(), 31u);
  EXPECT_EQ(after.cluster_of[30], before.cluster_of[1]);
  EXPECT_EQ(engine.parties(), 31u);
}

TEST(StreamingClusterEngine, ResubmissionUpdatesInPlace) {
  StreamingClusterEngine engine(small_config());
  for (std::size_t p = 0; p < 10; ++p) {
    EXPECT_TRUE(engine.submit(p, mode_point(p % 3, 6)));
  }
  // Re-submissions must not inflate the party count or the buffer.
  for (std::size_t p = 0; p < 10; ++p) {
    EXPECT_FALSE(engine.submit(p, mode_point(p % 3, 6, 0.02)));
  }
  EXPECT_EQ(engine.parties(), 10u);
  EXPECT_EQ(engine.buffered_points(), 10u);
  const MembershipView view = engine.rebuild();
  EXPECT_EQ(view.cluster_of.size(), 10u);
}

TEST(StreamingClusterEngine, BoundedBuffersStillCoverEveryParty) {
  StreamingClusterConfig config = small_config();
  config.num_shards = 2;
  config.shard_capacity = 8;  // 16 slots for 100 parties
  StreamingClusterEngine engine(config);
  for (std::size_t p = 0; p < 100; ++p) {
    engine.submit(p, mode_point(p % 3, 6));
  }
  EXPECT_EQ(engine.parties(), 100u);
  EXPECT_LE(engine.buffered_points(), 16u);
  const MembershipView view = engine.rebuild();
  ASSERT_EQ(view.cluster_of.size(), 100u);
  for (const std::size_t c : view.cluster_of) {
    EXPECT_LT(c, view.k);  // evicted parties still get a live cluster
  }
}

TEST(StreamingClusterEngine, ConcurrentShardedSubmissions) {
  StreamingClusterConfig config = small_config();
  config.num_shards = 8;
  config.shard_capacity = 256;
  StreamingClusterEngine engine(config);
  const std::size_t per_thread = 250;
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < 4; ++t) {
    workers.emplace_back([&engine, t] {
      for (std::size_t i = 0; i < per_thread; ++i) {
        const std::size_t p = t * per_thread + i;
        engine.submit(p, mode_point(p % 3, 6));
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(engine.parties(), 1000u);
  EXPECT_EQ(engine.buffered_points(), 1000u);
  const MembershipView view = engine.rebuild();
  ASSERT_EQ(view.cluster_of.size(), 1000u);
  for (std::size_t p = 3; p < 1000; ++p) {
    EXPECT_EQ(view.cluster_of[p], view.cluster_of[p % 3]);
  }

  // Concurrent re-submissions against the live epoch (the drift path).
  std::vector<std::thread> refreshers;
  for (std::size_t t = 0; t < 4; ++t) {
    refreshers.emplace_back([&engine, t] {
      for (std::size_t i = 0; i < per_thread; ++i) {
        const std::size_t p = t * per_thread + i;
        engine.submit(p, mode_point(p % 3, 6, 0.01));
      }
    });
  }
  for (auto& r : refreshers) r.join();
  EXPECT_EQ(engine.parties(), 1000u);
}

TEST(DriftMonitor, WarmupThenTriggerOnShift) {
  DriftMonitorConfig config;
  config.ema = 0.5;
  config.trigger_ratio = 1.5;
  config.min_shift = 0.05;
  config.min_observations = 3;
  DriftMonitor monitor(config);
  monitor.reset({0.1, 0.1});

  // Residuals at baseline never trigger, no matter how many.
  for (int i = 0; i < 50; ++i) monitor.observe(0, 0.1);
  EXPECT_FALSE(monitor.triggered());

  // A real shift on cluster 1 stays quiet through warm-up…
  monitor.observe(1, 1.0);
  monitor.observe(1, 1.0);
  EXPECT_FALSE(monitor.triggered());
  // …and flags once min_observations is reached with the EMA high.
  monitor.observe(1, 1.0);
  EXPECT_TRUE(monitor.triggered());
  EXPECT_GT(monitor.shift(1), monitor.baseline(1));

  // Sticky until the next epoch resets it.
  monitor.reset({0.1, 0.1});
  EXPECT_FALSE(monitor.triggered());
}

TEST(StreamingClusterEngine, DriftTriggersReclusterEndToEnd) {
  StreamingClusterConfig config = small_config();
  config.drift.min_observations = 3;
  StreamingClusterEngine engine(config);
  for (std::size_t p = 0; p < 30; ++p) {
    engine.submit(p, mode_point(p % 3, 6));
  }
  engine.rebuild();

  // Stable re-submissions: no drift flag.
  for (std::size_t p = 0; p < 30; ++p) {
    engine.submit(p, mode_point(p % 3, 6));
  }
  EXPECT_FALSE(engine.drift_detected());
  EXPECT_FALSE(engine.maybe_rebuild());
  EXPECT_EQ(engine.epoch(), 1u);

  // Mode rotation (the drift bench's scenario): residuals explode,
  // the monitor flags, maybe_rebuild starts epoch 2 and the new
  // epoch's assignments follow the rotated modes.
  for (std::size_t p = 0; p < 30; ++p) {
    engine.submit(p, mode_point((p + 1) % 3, 6));
  }
  EXPECT_TRUE(engine.drift_detected());
  EXPECT_TRUE(engine.maybe_rebuild());
  EXPECT_EQ(engine.epoch(), 2u);
  EXPECT_FALSE(engine.drift_detected());  // fresh epoch, fresh baseline
  const MembershipView view = engine.view();
  for (std::size_t p = 3; p < 30; ++p) {
    EXPECT_EQ(view.cluster_of[p], view.cluster_of[p % 3]);
  }
}

}  // namespace
