// Fault-injection plane (net/faults.h) and the session's recovery
// paths: deterministic seeded churn/crash/link schedules, bit-identity
// across thread counts under a nonzero fault plan (both federation
// modes), sync quorum-degraded folding, async retry accounting, the
// on_retry observer seam, and the flips_faults_* metrics bridge.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>
#include <vector>

#include "cluster/kmeans.h"
#include "common/stats.h"
#include "data/federated.h"
#include "fl/job.h"
#include "fl/metrics_observer.h"
#include "fl/observer.h"
#include "fl/session.h"
#include "net/device.h"
#include "net/faults.h"
#include "selection/factory.h"

namespace {

using flips::fl::FederationSession;
using flips::fl::FlJobConfig;
using flips::fl::FlJobResult;
using flips::fl::Party;
using flips::fl::PartyProfile;
using flips::net::FaultConfig;
using flips::net::FaultPlan;

struct TinyFederation {
  std::vector<Party> parties;
  flips::data::Dataset test;
  flips::select::SelectorContext context;
};

/// A small federation whose party profiles carry the reliability
/// columns the fault plan consumes (availability 0.8 as an up fraction
/// of 40 s up / 10 s down, a 5% device fault rate).
TinyFederation build_faulty(std::size_t num_parties, std::uint64_t seed) {
  flips::data::FederatedDataConfig dc;
  dc.spec = flips::data::DatasetCatalog::ecg();
  dc.num_parties = num_parties;
  dc.samples_per_party = 40;
  dc.alpha = 0.3;
  dc.test_per_class = 40;
  dc.seed = seed;
  const auto data = flips::data::build_federated_data(dc);

  TinyFederation fed;
  for (std::size_t p = 0; p < data.party_data.size(); ++p) {
    PartyProfile profile;
    profile.speed_factor = 1.0 + static_cast<double>(p % 3);
    profile.availability = 0.8;
    profile.fault_rate = 0.05;
    profile.mean_up_s = 40.0;
    profile.mean_down_s = 10.0;
    fed.parties.emplace_back(p, data.party_data[p], profile);
  }
  fed.test = data.global_test;

  std::vector<flips::cluster::Point> points;
  for (const auto& ld : data.label_distributions) {
    auto point = flips::common::normalized(ld);
    for (auto& v : point) v = std::sqrt(v);
    points.push_back(std::move(point));
  }
  flips::cluster::KMeansConfig kc;
  kc.k = 4;
  kc.restarts = 3;
  flips::common::Rng rng(seed ^ 0xC1);
  fed.context.num_parties = num_parties;
  fed.context.seed = seed ^ 0x5E1E;
  fed.context.cluster_of =
      flips::cluster::kmeans(points, kc, rng).assignments;
  fed.context.num_clusters = kc.k;
  return fed;
}

FlJobConfig faulty_config(std::size_t rounds, std::size_t nr,
                          std::uint64_t seed) {
  FlJobConfig config;
  config.rounds = rounds;
  config.parties_per_round = nr;
  config.local.epochs = 2;
  config.local.batch_size = 16;
  config.local.sgd.learning_rate = 0.05;
  config.server.optimizer = flips::fl::ServerOpt::kFedYogi;
  config.server.learning_rate = 0.05;
  config.eval_every = 2;
  config.seed = seed;
  config.faults.churn = 1.0;
  config.faults.crash_rate = 0.15;
  config.faults.link_fault_rate = 0.1;
  config.faults.min_quorum = 0.25;
  config.faults.max_retries = 2;
  return config;
}

flips::ml::Sequential tiny_model(std::uint64_t seed) {
  flips::common::Rng rng(seed ^ 0x30DE);
  return flips::ml::ModelFactory::mlp(32, 8, 5, rng);
}

FlJobResult run_session(const FlJobConfig& config,
                        const TinyFederation& fed,
                        flips::fl::RoundObserver* observer = nullptr) {
  FederationSession session(
      config, fed.parties, fed.test, tiny_model(config.seed),
      flips::select::make_selector(flips::select::SelectorKind::kFlips,
                                   fed.context));
  if (observer != nullptr) session.add_observer(observer);
  while (!session.done()) session.advance();
  return session.result();
}

void expect_same_result(const FlJobResult& a, const FlJobResult& b) {
  EXPECT_EQ(a.final_parameters, b.final_parameters);
  EXPECT_EQ(a.total_bytes, b.total_bytes);
  EXPECT_EQ(a.total_time_s, b.total_time_s);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t r = 0; r < a.history.size(); ++r) {
    EXPECT_EQ(a.history[r].balanced_accuracy,
              b.history[r].balanced_accuracy);
    EXPECT_EQ(a.history[r].responded, b.history[r].responded);
    EXPECT_EQ(a.history[r].crashed, b.history[r].crashed);
    EXPECT_EQ(a.history[r].retried, b.history[r].retried);
    EXPECT_EQ(a.history[r].backfilled, b.history[r].backfilled);
    EXPECT_EQ(a.history[r].quorum_skipped, b.history[r].quorum_skipped);
    EXPECT_EQ(a.history[r].round_time_s, b.history[r].round_time_s);
  }
}

// ---------------------------------------------------------------------
// FaultPlan unit behavior.

TEST(FaultPlan, SchedulesArePureFunctionsOfTheSeed) {
  FaultConfig config;
  config.churn = 1.0;
  config.crash_rate = 0.3;
  config.link_fault_rate = 0.2;
  FaultPlan a(1234, config, 8);
  FaultPlan b(1234, config, 8);
  FaultPlan other(99, config, 8);
  std::size_t diverged = 0;
  for (std::size_t party = 0; party < 8; ++party) {
    for (std::uint64_t event = 0; event < 64; ++event) {
      EXPECT_EQ(a.crashes(party, event, 0.05),
                b.crashes(party, event, 0.05));
      const auto la = a.transfer(party, event);
      const auto lb = b.transfer(party, event);
      EXPECT_EQ(la.failed, lb.failed);
      EXPECT_EQ(la.slowdown, lb.slowdown);
      if (a.crashes(party, event, 0.05) !=
          other.crashes(party, event, 0.05)) {
        ++diverged;
      }
    }
    for (double t = 0.0; t < 500.0; t += 7.0) {
      EXPECT_EQ(a.available(party, t, 40.0, 10.0),
                b.available(party, t, 40.0, 10.0));
    }
  }
  EXPECT_GT(diverged, 0u);  // a different seed is a different plan
}

TEST(FaultPlan, ChurnTraceMatchesStationaryUpFraction) {
  FaultConfig config;
  config.churn = 1.0;
  FaultPlan plan(7, config, 4);
  // mean_up 30 s / mean_down 10 s => stationary availability 0.75.
  std::size_t up = 0;
  const std::size_t samples = 20000;
  for (std::size_t i = 0; i < samples; ++i) {
    if (plan.available(1, static_cast<double>(i), 30.0, 10.0)) ++up;
  }
  const double fraction = static_cast<double>(up) / samples;
  EXPECT_NEAR(fraction, 0.75, 0.05);
}

TEST(FaultPlan, ChurnReplaysDeterministicallyWhenQueriedBackwards) {
  FaultConfig config;
  config.churn = 1.0;
  FaultPlan walked(42, config, 2);
  std::vector<bool> forward;
  for (double t = 0.0; t < 200.0; t += 3.0) {
    forward.push_back(walked.available(0, t, 20.0, 20.0));
  }
  // A non-monotone query must replay the same trace from t = 0, not
  // invent a new one.
  FaultPlan fresh(42, config, 2);
  std::size_t i = 0;
  for (double t = 0.0; t < 200.0; t += 3.0, ++i) {
    EXPECT_EQ(fresh.available(0, t, 20.0, 20.0), forward[i]);
  }
  EXPECT_EQ(walked.available(0, 9.0, 20.0, 20.0),
            fresh.available(0, 9.0, 20.0, 20.0));
}

TEST(FaultPlan, DisabledPlanNeverFails) {
  FaultPlan plan(5, FaultConfig{}, 4);
  EXPECT_FALSE(plan.enabled());
  EXPECT_TRUE(plan.available(0, 100.0, 40.0, 10.0));
  EXPECT_FALSE(plan.crashes(0, 3, 0.0));
  EXPECT_FALSE(plan.transfer(0, 3).failed);
}

TEST(FaultConfig, BackoffScheduleIsExponential) {
  FaultConfig config;
  config.backoff_base_s = 0.5;
  config.backoff_mult = 2.0;
  EXPECT_DOUBLE_EQ(config.backoff_s(0), 0.5);
  EXPECT_DOUBLE_EQ(config.backoff_s(1), 1.0);
  EXPECT_DOUBLE_EQ(config.backoff_s(3), 4.0);
}

TEST(FaultConfig, ValidateRejectsOutOfRangeKnobs) {
  auto bad = [](auto&& mutate) {
    FaultConfig config;
    mutate(config);
    EXPECT_THROW(config.validate(), std::invalid_argument);
  };
  bad([](FaultConfig& c) { c.churn = -1.0; });
  bad([](FaultConfig& c) { c.crash_rate = 1.5; });
  bad([](FaultConfig& c) { c.link_fault_rate = 1.0; });
  bad([](FaultConfig& c) { c.link_slowdown = 0.5; });
  bad([](FaultConfig& c) { c.max_retries = 65; });
  bad([](FaultConfig& c) { c.backoff_mult = 0.9; });
  bad([](FaultConfig& c) { c.min_quorum = 1.5; });
  FaultConfig ok;
  ok.churn = 2.0;
  ok.crash_rate = 0.5;
  EXPECT_NO_THROW(ok.validate());
}

// ---------------------------------------------------------------------
// Session recovery paths.

/// The dead-field pin: profile availability must actually gate legacy
/// (fault-plan-off) dispatches — an availability-0 fleet never responds.
TEST(SessionFaults, LegacyAvailabilityFieldIsConsulted) {
  auto fed = build_faulty(8, 17);
  std::vector<Party> unreachable;
  for (const auto& party : fed.parties) {
    PartyProfile profile = party.profile();
    profile.availability = 0.0;
    unreachable.emplace_back(party.id(), party.dataset(), profile);
  }
  fed.parties = std::move(unreachable);
  FlJobConfig config = faulty_config(4, 3, 17);
  config.faults = FaultConfig{};  // legacy Bernoulli path
  const auto result = run_session(config, fed);
  for (const auto& record : result.history) {
    EXPECT_EQ(record.responded, 0u);
    EXPECT_GT(record.selected, 0u);
  }
}

TEST(SessionFaults, SyncFaultedRunIsBitIdenticalAcrossThreads) {
  const auto fed = build_faulty(12, 23);
  auto config = faulty_config(8, 4, 23);
  config.threads = 1;
  const auto one = run_session(config, fed);
  config.threads = 4;
  const auto four = run_session(config, fed);
  expect_same_result(one, four);

  std::size_t crashed = 0;
  std::size_t backfilled = 0;
  for (const auto& record : one.history) {
    crashed += record.crashed;
    backfilled += record.backfilled;
  }
  EXPECT_GT(crashed, 0u);     // the plan actually fired
  EXPECT_GT(backfilled, 0u);  // and the backfill waves recovered slots
}

TEST(SessionFaults, AsyncFaultedRunIsBitIdenticalAcrossThreads) {
  const auto fed = build_faulty(12, 29);
  auto config = faulty_config(10, 4, 29);
  config.mode = flips::fl::FederationMode::kAsync;
  config.async.buffer_k = 2;
  config.async.max_staleness = 4;
  config.threads = 1;
  const auto one = run_session(config, fed);
  config.threads = 4;
  const auto four = run_session(config, fed);
  expect_same_result(one, four);

  std::size_t crashed = 0;
  std::size_t retried = 0;
  for (const auto& record : one.history) {
    crashed += record.crashed;
    retried += record.retried;
  }
  EXPECT_GT(crashed, 0u);
  EXPECT_GT(retried, 0u);  // failed slots were re-dispatched in place
}

/// Below-quorum rounds skip the server fold instead of crashing: the
/// session still evaluates, records the round, and advances.
TEST(SessionFaults, QuorumShortfallSkipsTheFoldGracefully) {
  const auto fed = build_faulty(10, 31);
  auto config = faulty_config(6, 4, 31);
  config.faults.crash_rate = 0.95;
  config.faults.churn = 0.0;
  config.faults.link_fault_rate = 0.0;
  config.faults.max_retries = 0;  // no backfill: force the shortfall
  config.faults.min_quorum = 0.75;
  const auto result = run_session(config, fed);
  ASSERT_EQ(result.history.size(), 6u);
  std::size_t skipped = 0;
  for (const auto& record : result.history) {
    if (record.quorum_skipped) ++skipped;
  }
  EXPECT_GT(skipped, 0u);
}

TEST(SessionFaults, OnRetryObserverSeesBackfillsAndRetries) {
  struct RetrySink final : flips::fl::RoundObserver {
    std::size_t retries = 0;
    double last_backoff = -1.0;
    void on_retry(std::size_t,
                  const flips::fl::RetryRecord& record) override {
      ++retries;
      last_backoff = record.backoff_s;
      EXPECT_GE(record.attempt, 1u);
    }
  };
  const auto fed = build_faulty(12, 37);

  RetrySink sync_sink;
  auto config = faulty_config(8, 4, 37);
  const auto sync_result = run_session(config, fed, &sync_sink);
  std::size_t backfilled = 0;
  for (const auto& record : sync_result.history) {
    backfilled += record.backfilled;
  }
  EXPECT_EQ(sync_sink.retries, backfilled);

  RetrySink async_sink;
  config.mode = flips::fl::FederationMode::kAsync;
  config.async.buffer_k = 2;
  const auto async_result = run_session(config, fed, &async_sink);
  std::size_t retried = 0;
  for (const auto& record : async_result.history) {
    retried += record.retried;
  }
  EXPECT_EQ(async_sink.retries, retried);
  EXPECT_GT(async_sink.retries, 0u);
  EXPECT_GE(async_sink.last_backoff, config.faults.backoff_base_s);
}

/// A fault-free config must not consume any fault-plan state: the
/// default FaultConfig reproduces the historical results bit-for-bit
/// (pinned implicitly by every other suite, re-pinned here explicitly
/// against a copy of the config with faults zeroed).
TEST(SessionFaults, DisabledFaultsMatchDefaultConfigBitForBit) {
  const auto fed = build_faulty(10, 41);
  auto config = faulty_config(6, 4, 41);
  config.faults = FaultConfig{};
  const auto a = run_session(config, fed);
  FlJobConfig plain = config;
  plain.faults = FaultConfig{};
  const auto b = run_session(plain, fed);
  expect_same_result(a, b);
}

/// The §7 acceptance shape: a senior-care fleet with churn enabled and
/// a >= 10% per-dispatch crash rate completes its schedule through
/// backfill + quorum degradation — no throw, no hang, tallies visible.
TEST(SessionFaults, SeniorCareChurnAndCrashRunCompletes) {
  flips::data::FederatedDataConfig dc;
  dc.spec = flips::data::DatasetCatalog::ecg();
  dc.num_parties = 16;
  dc.samples_per_party = 40;
  dc.alpha = 0.3;
  dc.test_per_class = 40;
  dc.seed = 47;
  const auto data = flips::data::build_federated_data(dc);

  TinyFederation fed;
  flips::common::Rng fleet_rng(47 ^ 0xF1EE7);
  const flips::net::FleetBuilder devices(
      flips::net::FleetMix::senior_care());
  for (std::size_t p = 0; p < data.party_data.size(); ++p) {
    fed.parties.emplace_back(
        p, data.party_data[p],
        PartyProfile::from_device(devices.sample(fleet_rng)));
  }
  fed.test = data.global_test;
  fed.context.num_parties = fed.parties.size();
  fed.context.seed = 47 ^ 0x5E1E;

  FlJobConfig config = faulty_config(10, 5, 47);
  config.faults.crash_rate = 0.10;
  config.faults.churn = 1.0;
  config.faults.min_quorum = 0.4;
  FederationSession session(
      config, fed.parties, fed.test, tiny_model(47),
      flips::select::make_selector(flips::select::SelectorKind::kRandom,
                                   fed.context));
  while (!session.done()) session.advance();
  const auto result = session.result();
  ASSERT_EQ(result.history.size(), 10u);
  std::size_t crashed = 0;
  std::size_t recovered = 0;
  for (const auto& record : result.history) {
    crashed += record.crashed;
    recovered += record.backfilled + record.retried;
  }
  EXPECT_GT(crashed, 0u);
  EXPECT_GT(recovered, 0u);
  EXPECT_GT(result.peak_accuracy, 0.0);
}

/// The MetricsObserver bridges the fault tallies into flips_faults_*
/// families with per-event labels.
TEST(SessionFaults, MetricsObserverExportsFaultCounters) {
  flips::obs::Registry registry;
  flips::obs::Tracer tracer;
  flips::fl::MetricsObserver observer("t0", &registry, &tracer);
  flips::fl::RoundRecord record;
  record.crashed = 3;
  record.retried = 2;
  record.backfilled = 1;
  record.quorum_skipped = true;
  observer.on_round_end(1, record);
  flips::fl::RetryRecord retry;
  retry.backoff_s = 0.5;
  observer.on_retry(1, retry);
  const std::string text = registry.text_exposition();
  EXPECT_NE(text.find("flips_faults_total"), std::string::npos);
  EXPECT_NE(text.find("event=\"crashed\""), std::string::npos);
  EXPECT_NE(text.find("event=\"quorum_skipped\""), std::string::npos);
  EXPECT_NE(text.find("flips_faults_retry_backoff_seconds"),
            std::string::npos);
}

}  // namespace
