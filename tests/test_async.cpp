// Event-driven async federation (fl/session.h advance()):
// staleness-weight math, bounded-staleness drop accounting, arrival
// ordering, determinism across thread counts under a fixed arrival
// seed, and the sync-mode advance() alias staying bit-identical to the
// legacy FlJob::run() shim.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>

#include "cluster/kmeans.h"
#include "common/stats.h"
#include "data/federated.h"
#include "fl/job.h"
#include "fl/session.h"
#include "selection/factory.h"

namespace {

using flips::fl::ArrivalOutcome;
using flips::fl::ArrivalRecord;
using flips::fl::FederationMode;
using flips::fl::FederationSession;
using flips::fl::FlJob;
using flips::fl::FlJobConfig;
using flips::fl::FlJobResult;
using flips::fl::Party;
using flips::fl::PartyProfile;
using flips::fl::RoundRecord;

struct TinyFederation {
  std::vector<Party> parties;
  flips::data::Dataset test;
  flips::select::SelectorContext context;
};

/// Tiny ECG federation with a heterogeneous fleet (speed factors 1x /
/// 2x / 4x / 8x round-robin) so async arrival order interleaves server
/// steps and slow parties actually go stale.
TinyFederation build_tiny(std::size_t num_parties, std::uint64_t seed) {
  flips::data::FederatedDataConfig dc;
  dc.spec = flips::data::DatasetCatalog::ecg();
  dc.num_parties = num_parties;
  dc.samples_per_party = 40;
  dc.alpha = 0.3;
  dc.test_per_class = 40;
  dc.seed = seed;
  const auto data = flips::data::build_federated_data(dc);

  TinyFederation fed;
  for (std::size_t p = 0; p < data.party_data.size(); ++p) {
    PartyProfile profile;
    profile.speed_factor = std::pow(2.0, static_cast<double>(p % 4));
    fed.parties.emplace_back(p, data.party_data[p], profile);
  }
  fed.test = data.global_test;

  std::vector<flips::cluster::Point> points;
  for (const auto& ld : data.label_distributions) {
    auto point = flips::common::normalized(ld);
    for (auto& v : point) v = std::sqrt(v);
    points.push_back(std::move(point));
  }
  flips::cluster::KMeansConfig kc;
  kc.k = 4;
  kc.restarts = 3;
  flips::common::Rng rng(seed ^ 0xC1);
  fed.context.num_parties = num_parties;
  fed.context.seed = seed ^ 0x5E1E;
  fed.context.cluster_of =
      flips::cluster::kmeans(points, kc, rng).assignments;
  fed.context.num_clusters = kc.k;
  return fed;
}

FlJobConfig async_config(std::size_t steps, std::uint64_t seed) {
  FlJobConfig config;
  config.mode = FederationMode::kAsync;
  config.rounds = steps;
  config.parties_per_round = 6;
  config.async.buffer_k = 2;
  config.async.max_staleness = 2;
  config.local.epochs = 2;
  config.local.batch_size = 16;
  config.local.sgd.learning_rate = 0.05;
  config.server.optimizer = flips::fl::ServerOpt::kFedYogi;
  config.server.learning_rate = 0.05;
  config.eval_every = 2;
  config.seed = seed;
  return config;
}

flips::ml::Sequential tiny_model(std::uint64_t seed) {
  flips::common::Rng rng(seed ^ 0x30DE);
  return flips::ml::ModelFactory::mlp(32, 8, 5, rng);
}

std::unique_ptr<flips::fl::ParticipantSelector> tiny_selector(
    const TinyFederation& fed) {
  return flips::select::make_selector(flips::select::SelectorKind::kFlips,
                                      fed.context);
}

/// Records every arrival event for the ordering / accounting checks.
struct ArrivalTap final : flips::fl::RoundObserver {
  std::vector<ArrivalRecord> arrivals;
  void on_arrival(std::size_t round, const ArrivalRecord& arrival) override {
    (void)round;
    arrivals.push_back(arrival);
  }
};

TEST(AsyncSession, StalenessDiscountMath) {
  EXPECT_DOUBLE_EQ(flips::fl::staleness_discount(0), 1.0);
  EXPECT_DOUBLE_EQ(flips::fl::staleness_discount(3), 0.5);
  EXPECT_DOUBLE_EQ(flips::fl::staleness_discount(8), 1.0 / 3.0);
  for (std::size_t s = 1; s < 16; ++s) {
    EXPECT_LT(flips::fl::staleness_discount(s),
              flips::fl::staleness_discount(s - 1));
    EXPECT_GT(flips::fl::staleness_discount(s), 0.0);
  }
}

TEST(AsyncSession, RejectsRoundSynchronousConfigs) {
  const auto fed = build_tiny(10, 7);
  auto scaffold = async_config(4, 7);
  scaffold.local.algo = flips::fl::ClientAlgo::kScaffold;
  EXPECT_THROW(FederationSession(scaffold, fed.parties, fed.test,
                                 tiny_model(7), tiny_selector(fed)),
               std::invalid_argument);

  auto masked = async_config(4, 7);
  masked.privacy.mechanism = flips::fl::PrivacyMechanism::kMasking;
  EXPECT_THROW(FederationSession(masked, fed.parties, fed.test,
                                 tiny_model(7), tiny_selector(fed)),
               std::invalid_argument);

  // A deadline has no round to bound in async mode — fail fast instead
  // of silently ignoring it (a zero deadline means "unbounded" and is
  // still accepted).
  auto deadline = async_config(4, 7);
  deadline.stragglers.mode = flips::fl::StragglerMode::kDeadline;
  deadline.stragglers.deadline_s = 2.0;
  EXPECT_THROW(FederationSession(deadline, fed.parties, fed.test,
                                 tiny_model(7), tiny_selector(fed)),
               std::invalid_argument);
  deadline.stragglers.deadline_s = 0.0;
  EXPECT_NO_THROW(FederationSession(deadline, fed.parties, fed.test,
                                    tiny_model(7), tiny_selector(fed)));

  // advance() is the one stepping entry point, sync or async.
  FederationSession session(async_config(4, 7), fed.parties, fed.test,
                            tiny_model(7), tiny_selector(fed));
  EXPECT_NO_THROW(session.advance());
}

/// Arrivals pop in nondecreasing simulated time; per-step accounting
/// ties out against the arrival tap (selected = arrivals seen,
/// responded = folds, dropped_stale = staleness-cutoff discards), and
/// folded weights carry the staleness discount.
TEST(AsyncSession, ArrivalOrderingAndDropAccounting) {
  const auto fed = build_tiny(12, 19);
  auto config = async_config(12, 19);
  auto tap = std::make_shared<ArrivalTap>();

  FederationSession session(config, fed.parties, fed.test, tiny_model(19),
                            tiny_selector(fed));
  session.add_observer(tap);
  std::size_t selected_sum = 0;
  std::size_t responded_sum = 0;
  std::size_t dropped_sum = 0;
  while (!session.done()) {
    const RoundRecord& record = session.advance();
    selected_sum += record.selected;
    responded_sum += record.responded;
    dropped_sum += record.dropped_stale;
  }

  EXPECT_EQ(tap->arrivals.size(), selected_sum);
  std::size_t folded = 0;
  std::size_t dropped = 0;
  double last_time = 0.0;
  for (const ArrivalRecord& a : tap->arrivals) {
    EXPECT_GE(a.time_s, last_time);
    last_time = a.time_s;
    if (a.outcome == ArrivalOutcome::kFolded) {
      ++folded;
      EXPECT_LE(a.staleness, config.async.max_staleness);
      // Sample-count base weight times the staleness discount.
      const double base = static_cast<double>(
          fed.parties[a.party_id].size());
      EXPECT_DOUBLE_EQ(a.weight,
                       base * flips::fl::staleness_discount(a.staleness));
    } else if (a.outcome == ArrivalOutcome::kDroppedStale) {
      ++dropped;
      EXPECT_GT(a.staleness, config.async.max_staleness);
    }
  }
  EXPECT_EQ(folded, responded_sum);
  EXPECT_EQ(dropped, dropped_sum);

  // The heterogeneous fleet + max_staleness=2 cutoff must actually
  // exercise the drop path; a generous cutoff must not.
  EXPECT_GT(dropped_sum, 0u);

  auto lenient = async_config(12, 19);
  lenient.async.max_staleness = 1000;
  FederationSession relaxed(lenient, fed.parties, fed.test, tiny_model(19),
                            tiny_selector(fed));
  std::size_t relaxed_drops = 0;
  while (!relaxed.done()) {
    relaxed_drops += relaxed.advance().dropped_stale;
  }
  EXPECT_EQ(relaxed_drops, 0u);
}

/// Under DP the fold weight is the staleness discount on a UNIT base
/// (no sample-count weighting, matching sync DP-FedAvg): the noise
/// sigma is calibrated on the weighted-mean sensitivity
/// clip * max(w)/sum(w), which assumes exactly these weights. Also
/// pins that the DP async path runs end to end and stays deterministic
/// across thread counts.
TEST(AsyncSession, DpFoldsUnitBaseWeights) {
  const auto fed = build_tiny(12, 23);
  auto config = async_config(10, 23);
  config.privacy.mechanism = flips::fl::PrivacyMechanism::kDp;
  config.privacy.dp.clip_norm = 1.0;
  config.privacy.dp.noise_multiplier = 0.5;

  FlJobResult results[2];
  const std::size_t threads[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    auto c = config;
    c.threads = threads[i];
    auto tap = std::make_shared<ArrivalTap>();
    FederationSession session(c, fed.parties, fed.test, tiny_model(23),
                              tiny_selector(fed));
    session.add_observer(tap);
    while (!session.done()) session.advance();
    results[i] = session.result();

    std::size_t folded = 0;
    for (const ArrivalRecord& a : tap->arrivals) {
      if (a.outcome != ArrivalOutcome::kFolded) continue;
      ++folded;
      EXPECT_DOUBLE_EQ(a.weight,
                       flips::fl::staleness_discount(a.staleness));
      EXPECT_LE(a.weight, 1.0);
    }
    EXPECT_GT(folded, 0u);
  }
  EXPECT_EQ(results[0].final_parameters, results[1].final_parameters);
  EXPECT_GT(results[0].epsilon_spent, 0.0);
}

/// Async results are a pure function of the seed: bit-identical across
/// worker thread counts (dispatch batches train in parallel, but the
/// event loop folds in deterministic arrival order).
TEST(AsyncSession, DeterministicAcrossThreadCounts) {
  const auto fed = build_tiny(12, 33);
  for (const auto codec :
       {flips::net::Codec::kDense64, flips::net::Codec::kQuant8}) {
    auto config = async_config(10, 33);
    config.codec.codec = codec;
    config.target_accuracy = 0.5;

    FlJobResult results[2];
    const std::size_t threads[2] = {1, 4};
    for (int i = 0; i < 2; ++i) {
      auto c = config;
      c.threads = threads[i];
      FederationSession session(c, fed.parties, fed.test, tiny_model(33),
                                tiny_selector(fed));
      while (!session.done()) session.advance();
      results[i] = session.result();
    }

    EXPECT_EQ(results[0].final_parameters, results[1].final_parameters);
    EXPECT_EQ(results[0].peak_accuracy, results[1].peak_accuracy);
    EXPECT_EQ(results[0].total_bytes, results[1].total_bytes);
    EXPECT_EQ(results[0].total_time_s, results[1].total_time_s);
    EXPECT_EQ(results[0].rounds_to_target, results[1].rounds_to_target);
    ASSERT_EQ(results[0].history.size(), results[1].history.size());
    for (std::size_t r = 0; r < results[0].history.size(); ++r) {
      const RoundRecord& a = results[0].history[r];
      const RoundRecord& b = results[1].history[r];
      EXPECT_EQ(a.balanced_accuracy, b.balanced_accuracy);
      EXPECT_EQ(a.round_time_s, b.round_time_s);
      EXPECT_EQ(a.selected, b.selected);
      EXPECT_EQ(a.responded, b.responded);
      EXPECT_EQ(a.dropped_stale, b.dropped_stale);
      EXPECT_EQ(a.upload_bytes, b.upload_bytes);
      EXPECT_EQ(a.download_bytes, b.download_bytes);
    }
  }
}

/// Sync mode through the advance() entry point stays bit-identical
/// to the legacy blocking FlJob::run() shim (the tentpole's
/// no-regression contract; test_session pins the step loop itself).
TEST(AsyncSession, SyncAdvanceMatchesLegacyRun) {
  const auto fed = build_tiny(12, 55);
  FlJobConfig config;
  config.rounds = 6;
  config.parties_per_round = 4;
  config.local.epochs = 2;
  config.local.batch_size = 16;
  config.local.sgd.learning_rate = 0.05;
  config.server.optimizer = flips::fl::ServerOpt::kFedYogi;
  config.server.learning_rate = 0.05;
  config.eval_every = 2;
  config.seed = 55;
  config.threads = 4;

  FlJob job(config, fed.parties, fed.test, tiny_model(55),
            tiny_selector(fed));
  const FlJobResult legacy = job.run();

  FederationSession session(config, fed.parties, fed.test, tiny_model(55),
                            tiny_selector(fed));
  while (!session.done()) session.advance();
  const FlJobResult stepped = session.result();

  EXPECT_EQ(legacy.final_parameters, stepped.final_parameters);
  EXPECT_EQ(legacy.peak_accuracy, stepped.peak_accuracy);
  EXPECT_EQ(legacy.total_bytes, stepped.total_bytes);
  EXPECT_EQ(legacy.total_time_s, stepped.total_time_s);
  ASSERT_EQ(legacy.history.size(), stepped.history.size());
  for (std::size_t r = 0; r < legacy.history.size(); ++r) {
    EXPECT_EQ(legacy.history[r].balanced_accuracy,
              stepped.history[r].balanced_accuracy);
    EXPECT_EQ(legacy.history[r].round_time_s,
              stepped.history[r].round_time_s);
  }
}

}  // namespace
