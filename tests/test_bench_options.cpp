// parse_bench_options: flag parsing, defaults, and the paper-scale
// override (bench/common layer).
#include <gtest/gtest.h>

#include <array>

#include "common/experiment.h"

namespace {

using flips::bench::BenchOptions;
using flips::bench::Scale;

BenchOptions parse(std::vector<const char*> args,
                   const Scale& default_scale = Scale{}) {
  args.insert(args.begin(), "bench");
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (const char* a : args) argv.push_back(const_cast<char*>(a));
  return flips::bench::parse_bench_options(
      static_cast<int>(argv.size()), argv.data(), default_scale);
}

TEST(ParseBenchOptions, DefaultsPassThrough) {
  Scale defaults;
  defaults.num_parties = 64;
  defaults.rounds = 33;
  defaults.runs = 2;
  defaults.samples_per_party = 17;
  const BenchOptions options = parse({}, defaults);
  EXPECT_EQ(options.scale.num_parties, 64u);
  EXPECT_EQ(options.scale.rounds, 33u);
  EXPECT_EQ(options.scale.runs, 2u);
  EXPECT_EQ(options.scale.samples_per_party, 17u);
  EXPECT_FALSE(options.paper_scale);
  EXPECT_FALSE(options.csv);
  EXPECT_EQ(options.seed, 42u);
}

TEST(ParseBenchOptions, IndividualFlags) {
  const BenchOptions options = parse(
      {"--parties", "12", "--rounds", "7", "--runs", "4", "--samples",
       "100", "--seed", "1234", "--threads", "3", "--csv"});
  EXPECT_EQ(options.scale.num_parties, 12u);
  EXPECT_EQ(options.scale.rounds, 7u);
  EXPECT_EQ(options.scale.runs, 4u);
  EXPECT_EQ(options.scale.samples_per_party, 100u);
  EXPECT_EQ(options.seed, 1234u);
  EXPECT_EQ(options.threads, 3u);
  EXPECT_TRUE(options.csv);
}

TEST(ParseBenchOptions, ThreadsDefaultsToAllCores) {
  // 0 = "use hardware concurrency" down in the FL job's worker pool.
  EXPECT_EQ(parse({}).threads, 0u);
  EXPECT_EQ(parse({"--threads", "0"}).threads, 0u);
}

TEST(ParseBenchOptions, CodecFlag) {
  EXPECT_EQ(parse({}).codec.codec, flips::net::Codec::kDense64);
  EXPECT_EQ(parse({"--codec", "quant8"}).codec.codec,
            flips::net::Codec::kQuant8);
  EXPECT_EQ(parse({"--codec", "topk"}).codec.codec,
            flips::net::Codec::kTopK);
  EXPECT_EQ(parse({"--codec", "dense64"}).codec.codec,
            flips::net::Codec::kDense64);
  EXPECT_EXIT(parse({"--codec", "zstd"}), testing::ExitedWithCode(2),
              "invalid value for --codec");
  EXPECT_EXIT(parse({"--codec"}), testing::ExitedWithCode(2),
              "missing value");
}

TEST(ParseBenchOptions, PaperScaleSetsThePaperNumbers) {
  const BenchOptions options = parse({"--paper-scale"});
  EXPECT_TRUE(options.paper_scale);
  EXPECT_EQ(options.scale.num_parties, 200u);
  EXPECT_EQ(options.scale.rounds, 400u);
  EXPECT_EQ(options.scale.runs, 6u);
}

TEST(ParseBenchOptions, LaterFlagsOverridePaperScale) {
  const BenchOptions options =
      parse({"--paper-scale", "--parties", "16", "--rounds", "5"});
  EXPECT_TRUE(options.paper_scale);
  EXPECT_EQ(options.scale.num_parties, 16u);
  EXPECT_EQ(options.scale.rounds, 5u);
}

TEST(ParseBenchOptions, UnknownFlagExits) {
  EXPECT_EXIT(parse({"--bogus"}), testing::ExitedWithCode(2),
              "unknown flag");
}

TEST(ParseBenchOptions, MissingValueExits) {
  EXPECT_EXIT(parse({"--parties"}), testing::ExitedWithCode(2),
              "missing value");
}

TEST(ParseBenchOptions, NonNumericValueExits) {
  EXPECT_EXIT(parse({"--runs", "O3"}), testing::ExitedWithCode(2),
              "invalid value");
  EXPECT_EXIT(parse({"--parties", "12abc"}), testing::ExitedWithCode(2),
              "invalid value");
}

TEST(FormatRounds, TargetReachedAndBudgetExceeded) {
  EXPECT_EQ(flips::bench::format_rounds(57.0, 100), "57");
  EXPECT_EQ(flips::bench::format_rounds(std::nullopt, 100), ">100");
  EXPECT_EQ(flips::bench::format_paper_rounds(-1, 400), ">400");
  EXPECT_EQ(flips::bench::format_paper_rounds(123, 400), "123");
}

}  // namespace
