// parse_bench_options: flag parsing, defaults, and the paper-scale
// override (bench/common layer).
#include <gtest/gtest.h>

#include <array>

#include "common/experiment.h"
#include "common/scenario.h"

namespace {

using flips::bench::BenchOptions;
using flips::bench::Scale;

BenchOptions parse(std::vector<const char*> args,
                   const Scale& default_scale = Scale{}) {
  args.insert(args.begin(), "bench");
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (const char* a : args) argv.push_back(const_cast<char*>(a));
  return flips::bench::parse_bench_options(
      static_cast<int>(argv.size()), argv.data(), default_scale);
}

TEST(ParseBenchOptions, DefaultsPassThrough) {
  Scale defaults;
  defaults.num_parties = 64;
  defaults.rounds = 33;
  defaults.runs = 2;
  defaults.samples_per_party = 17;
  const BenchOptions options = parse({}, defaults);
  EXPECT_EQ(options.scale.num_parties, 64u);
  EXPECT_EQ(options.scale.rounds, 33u);
  EXPECT_EQ(options.scale.runs, 2u);
  EXPECT_EQ(options.scale.samples_per_party, 17u);
  EXPECT_FALSE(options.paper_scale);
  EXPECT_FALSE(options.csv);
  EXPECT_EQ(options.seed, 42u);
}

TEST(ParseBenchOptions, IndividualFlags) {
  const BenchOptions options = parse(
      {"--parties", "12", "--rounds", "7", "--runs", "4", "--samples",
       "100", "--seed", "1234", "--threads", "3", "--csv"});
  EXPECT_EQ(options.scale.num_parties, 12u);
  EXPECT_EQ(options.scale.rounds, 7u);
  EXPECT_EQ(options.scale.runs, 4u);
  EXPECT_EQ(options.scale.samples_per_party, 100u);
  EXPECT_EQ(options.seed, 1234u);
  EXPECT_EQ(options.threads, 3u);
  EXPECT_TRUE(options.csv);
}

TEST(ParseBenchOptions, ThreadsDefaultsToAllCores) {
  // 0 = "use hardware concurrency" down in the FL job's worker pool.
  EXPECT_EQ(parse({}).threads, 0u);
  EXPECT_EQ(parse({"--threads", "0"}).threads, 0u);
}

TEST(ParseBenchOptions, CodecFlag) {
  EXPECT_EQ(parse({}).codec.codec, flips::net::Codec::kDense64);
  EXPECT_EQ(parse({"--codec", "quant8"}).codec.codec,
            flips::net::Codec::kQuant8);
  EXPECT_EQ(parse({"--codec", "topk"}).codec.codec,
            flips::net::Codec::kTopK);
  EXPECT_EQ(parse({"--codec", "dense64"}).codec.codec,
            flips::net::Codec::kDense64);
  EXPECT_EXIT(parse({"--codec", "zstd"}), testing::ExitedWithCode(2),
              "invalid value for --codec");
  EXPECT_EXIT(parse({"--codec"}), testing::ExitedWithCode(2),
              "missing value");
}

TEST(ParseBenchOptions, PaperScaleSetsThePaperNumbers) {
  const BenchOptions options = parse({"--paper-scale"});
  EXPECT_TRUE(options.paper_scale);
  EXPECT_EQ(options.scale.num_parties, 200u);
  EXPECT_EQ(options.scale.rounds, 400u);
  EXPECT_EQ(options.scale.runs, 6u);
}

TEST(ParseBenchOptions, LaterFlagsOverridePaperScale) {
  const BenchOptions options =
      parse({"--paper-scale", "--parties", "16", "--rounds", "5"});
  EXPECT_TRUE(options.paper_scale);
  EXPECT_EQ(options.scale.num_parties, 16u);
  EXPECT_EQ(options.scale.rounds, 5u);
}

TEST(ParseBenchOptions, UnknownFlagExits) {
  EXPECT_EXIT(parse({"--bogus"}), testing::ExitedWithCode(2),
              "unknown flag");
}

TEST(ParseBenchOptions, MissingValueExits) {
  EXPECT_EXIT(parse({"--parties"}), testing::ExitedWithCode(2),
              "missing value");
}

TEST(ParseBenchOptions, NonNumericValueExits) {
  EXPECT_EXIT(parse({"--runs", "O3"}), testing::ExitedWithCode(2),
              "invalid value");
  EXPECT_EXIT(parse({"--parties", "12abc"}), testing::ExitedWithCode(2),
              "invalid value");
}

TEST(FormatRounds, TargetReachedAndBudgetExceeded) {
  EXPECT_EQ(flips::bench::format_rounds(57.0, 100), "57");
  EXPECT_EQ(flips::bench::format_rounds(std::nullopt, 100), ">100");
  EXPECT_EQ(flips::bench::format_paper_rounds(-1, 400), ">400");
  EXPECT_EQ(flips::bench::format_paper_rounds(123, 400), "123");
}

// ------------------------- ScenarioSpec ------------------------------

TEST(ScenarioSpec, OverridesParseAndValidate) {
  flips::ScenarioSpec spec;
  flips::apply_override(spec, "rounds=60");
  flips::apply_override(spec, "alpha=0.6");
  flips::apply_override(spec, "selector=oort");
  flips::apply_override(spec, "codec=quant8");
  flips::apply_override(spec, "sessions=4");
  EXPECT_EQ(spec.rounds, 60u);
  EXPECT_DOUBLE_EQ(spec.alpha, 0.6);
  EXPECT_EQ(spec.selector, "oort");
  EXPECT_EQ(spec.codec, "quant8");
  EXPECT_EQ(spec.sessions, 4u);

  EXPECT_THROW(flips::apply_override(spec, "bogus_key=1"),
               std::invalid_argument);
  EXPECT_THROW(flips::apply_override(spec, "rounds=abc"),
               std::invalid_argument);
  EXPECT_THROW(flips::apply_override(spec, "selector=best"),
               std::invalid_argument);
  EXPECT_THROW(flips::apply_override(spec, "no-equals-sign"),
               std::invalid_argument);
  // Failed overrides must not half-apply.
  EXPECT_EQ(spec.selector, "oort");
}

TEST(ScenarioSpec, FederationModeKeysParseAndLower) {
  flips::ScenarioSpec spec;
  EXPECT_EQ(spec.mode, "sync");
  flips::apply_override(spec, "mode=async");
  flips::apply_override(spec, "buffer_k=3");
  flips::apply_override(spec, "max_staleness=7");
  EXPECT_EQ(spec.mode, "async");
  EXPECT_EQ(spec.buffer_k, 3u);
  EXPECT_EQ(spec.max_staleness, 7u);
  EXPECT_THROW(flips::apply_override(spec, "mode=lockstep"),
               std::invalid_argument);
  EXPECT_EQ(spec.mode, "async");

  const auto config = flips::to_experiment_config(spec);
  EXPECT_EQ(config.mode, flips::fl::FederationMode::kAsync);
  EXPECT_EQ(config.async.buffer_k, 3u);
  EXPECT_EQ(config.async.max_staleness, 7u);

  const flips::ScenarioSpec sync_spec;
  const auto sync_config = flips::to_experiment_config(sync_spec);
  EXPECT_EQ(sync_config.mode, flips::fl::FederationMode::kSync);
}

TEST(ScenarioSpec, PresetsCoverTheTableGridAndLowerCorrectly) {
  const auto names = flips::scenario_preset_names();
  EXPECT_EQ(names.size(), 12u);
  for (const auto& name : names) {
    const auto spec = flips::scenario_preset(name);
    EXPECT_EQ(spec.name, name);
    // Every preset must lower onto the engine without throwing.
    const auto config = flips::to_experiment_config(spec);
    EXPECT_GT(config.target_accuracy, 0.0);
  }
  EXPECT_THROW(flips::scenario_preset("mnist-fedsgd"),
               std::invalid_argument);

  const auto prox = flips::scenario_preset("ecg-fedprox");
  EXPECT_EQ(prox.server_opt, "fedavg");  // paper pairing
  EXPECT_DOUBLE_EQ(prox.prox_mu, 0.1);
  const auto yogi = flips::scenario_preset("femnist-fedyogi");
  EXPECT_EQ(yogi.server_opt, "fedyogi");
  EXPECT_DOUBLE_EQ(yogi.prox_mu, 0.0);
}

TEST(ScenarioSpec, LowersOntoExperimentConfig) {
  flips::ScenarioSpec spec = flips::scenario_preset("ham-fedyogi");
  flips::apply_override(spec, "parties=32");
  flips::apply_override(spec, "samples=48");
  flips::apply_override(spec, "rounds=21");
  flips::apply_override(spec, "threads=3");
  flips::apply_override(spec, "codec=topk");
  flips::apply_override(spec, "privacy=dp");
  flips::apply_override(spec, "dp_noise=0.7");
  flips::apply_override(spec, "client_algo=scaffold");
  flips::apply_override(spec, "class_separation=1.9");

  const auto config = flips::to_experiment_config(spec);
  EXPECT_EQ(config.spec.name, "ham10000");
  EXPECT_DOUBLE_EQ(config.spec.class_separation, 1.9);
  EXPECT_EQ(config.scale.num_parties, 32u);
  EXPECT_EQ(config.scale.samples_per_party, 48u);
  EXPECT_EQ(config.scale.rounds, 21u);
  EXPECT_EQ(config.threads, 3u);
  EXPECT_EQ(config.codec.codec, flips::net::Codec::kTopK);
  EXPECT_EQ(config.server_opt, flips::fl::ServerOpt::kFedYogi);
  EXPECT_EQ(config.client_algo, flips::fl::ClientAlgo::kScaffold);
  EXPECT_EQ(config.privacy.mechanism, flips::fl::PrivacyMechanism::kDp);
  EXPECT_DOUBLE_EQ(config.privacy.dp.noise_multiplier, 0.7);
  EXPECT_EQ(flips::selector_kind(spec), flips::select::SelectorKind::kFlips);
}

TEST(ScenarioSpec, KeyValueRoundTripIsExact) {
  // A spec that exercises every value family: choice strings,
  // registry-validated selector, integers, and doubles whose decimal
  // images must survive the wire (shortest-round-trip formatting).
  flips::ScenarioSpec spec = flips::scenario_preset("femnist-fedyogi");
  flips::apply_override(spec, "alpha=0.1");
  flips::apply_override(spec, "participation=0.35");
  flips::apply_override(spec, "selector=oort");
  flips::apply_override(spec, "codec=topk");
  flips::apply_override(spec, "mode=async");
  flips::apply_override(spec, "buffer_k=5");
  flips::apply_override(spec, "seed=9001");
  flips::apply_override(spec, "sessions=3");
  spec.local_lr = 0.1 + 0.2;  // 0.30000000000000004: needs 17 digits

  const auto kv = spec.to_key_values();
  const auto back = flips::ScenarioSpec::from_key_values(kv);
  EXPECT_EQ(back, spec);
  EXPECT_EQ(back.to_key_values(), kv);

  // A partial list is an override set over the defaults.
  const auto sparse = flips::ScenarioSpec::from_key_values(
      {{"rounds", "7"}, {"selector", "oort"}});
  EXPECT_EQ(sparse.rounds, 7u);
  EXPECT_EQ(sparse.selector, "oort");
  EXPECT_EQ(sparse.dataset, flips::ScenarioSpec{}.dataset);

  // Wire submissions get the same fail-fast validation as --set.
  EXPECT_THROW(flips::ScenarioSpec::from_key_values({{"bogus", "1"}}),
               std::invalid_argument);
  EXPECT_THROW(flips::ScenarioSpec::from_key_values({{"rounds", "abc"}}),
               std::invalid_argument);
  EXPECT_THROW(flips::ScenarioSpec::from_key_values({{"selector", "best"}}),
               std::invalid_argument);
  EXPECT_THROW(flips::ScenarioSpec::from_key_values({{"mode", "warp"}}),
               std::invalid_argument);
}

TEST(ScenarioSpec, UsageListsEveryKey) {
  const flips::ScenarioSpec spec;
  const std::string usage = flips::scenario_usage(spec);
  for (const char* key :
       {"dataset=", "alpha=", "parties=", "rounds=", "selector=",
        "codec=", "sessions=", "privacy=", "straggler_rate=", "mode=",
        "buffer_k=", "max_staleness=", "churn=", "fault_rate=",
        "min_quorum=", "max_retries="}) {
    EXPECT_NE(usage.find(key), std::string::npos) << key;
  }
}

TEST(ScenarioSpec, FaultKeysParseValidateAndLower) {
  flips::ScenarioSpec spec;
  flips::apply_override(spec, "churn=1.5");
  flips::apply_override(spec, "fault_rate=0.1");
  flips::apply_override(spec, "min_quorum=0.5");
  flips::apply_override(spec, "max_retries=3");
  EXPECT_DOUBLE_EQ(spec.churn, 1.5);
  EXPECT_DOUBLE_EQ(spec.fault_rate, 0.1);
  EXPECT_DOUBLE_EQ(spec.min_quorum, 0.5);
  EXPECT_EQ(spec.max_retries, 3u);

  const auto config = flips::to_experiment_config(spec);
  EXPECT_DOUBLE_EQ(config.faults.churn, 1.5);
  EXPECT_DOUBLE_EQ(config.faults.crash_rate, 0.1);
  EXPECT_DOUBLE_EQ(config.faults.min_quorum, 0.5);
  EXPECT_EQ(config.faults.max_retries, 3u);
  EXPECT_TRUE(config.faults.enabled());

  // The fault keys ride the serving wire with everything else.
  const auto kv = spec.to_key_values();
  const auto back = flips::ScenarioSpec::from_key_values(kv);
  EXPECT_EQ(back, spec);

  // Fail-fast on out-of-range knobs, same as every other key.
  EXPECT_THROW(flips::apply_override(spec, "churn=-1"),
               std::invalid_argument);
  EXPECT_THROW(flips::apply_override(spec, "churn=nan"),
               std::invalid_argument);
  EXPECT_THROW(flips::apply_override(spec, "fault_rate=2"),
               std::invalid_argument);
  EXPECT_THROW(flips::apply_override(spec, "min_quorum=1.5"),
               std::invalid_argument);
  EXPECT_THROW(flips::apply_override(spec, "max_retries=65"),
               std::invalid_argument);
}

TEST(ScenarioSpec, FaultPlanActivatesTheDeviceFleet) {
  // With faults off, build_federation keeps the legacy always-on
  // profiles: every selected party responds. With any fault knob on,
  // the senior-care device fleet's reliability columns reach the
  // session, so dispatches actually crash. Pinned end to end because
  // the Device availability/fault_rate columns were silently unused
  // for several releases.
  flips::ScenarioSpec spec;
  spec.parties = 16;
  spec.samples_per_party = 20;
  spec.rounds = 4;
  spec.threads = 2;
  spec.seed = 99;

  auto run = [&] {
    auto session = flips::bench::make_session(
        flips::to_experiment_config(spec), flips::selector_kind(spec),
        spec.seed);
    while (!session->done()) session->advance();
    return session->result();
  };

  const auto plain = run();
  for (const auto& record : plain.history) {
    EXPECT_EQ(record.responded, record.selected);
    EXPECT_EQ(record.crashed, 0u);
  }

  flips::apply_override(spec, "churn=1");
  flips::apply_override(spec, "fault_rate=0.15");
  const auto faulted = run();
  ASSERT_EQ(faulted.history.size(), 4u);
  std::size_t crashed = 0;
  for (const auto& record : faulted.history) crashed += record.crashed;
  EXPECT_GT(crashed, 0u);
}

}  // namespace
