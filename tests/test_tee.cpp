// TEE simulation: sealing integrity, attestation gating, and the
// private clustering service end-to-end.
#include <gtest/gtest.h>

#include "core/private_clustering.h"
#include "data/federated.h"

namespace {

TEST(Enclave, SealOpenRoundTripAndTamperDetection) {
  flips::tee::Enclave enclave("test-enclave", 1.05);
  const std::vector<std::uint8_t> payload = {1, 2, 3, 250, 0, 42};
  auto blob = enclave.seal(payload, 7);
  EXPECT_NE(blob.bytes, payload);  // actually transformed
  EXPECT_EQ(enclave.open(blob), payload);

  blob.bytes[2] ^= 0xFF;
  EXPECT_THROW((void)enclave.open(blob), std::runtime_error);
}

TEST(Enclave, ExecutionLedgerAppliesOverheadFactor) {
  flips::tee::Enclave enclave("ledger", 1.5);
  volatile double sink = 0.0;
  enclave.execute([&]() {
    for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  });
  EXPECT_GT(enclave.raw_execution_seconds(), 0.0);
  EXPECT_NEAR(enclave.simulated_execution_seconds(),
              enclave.raw_execution_seconds() * 1.5, 1e-12);
}

TEST(Attestation, VerifiesOnlyTrustedMeasurements) {
  flips::tee::Enclave enclave("good", 1.0);
  flips::tee::Enclave rogue("evil", 1.0);
  flips::tee::AttestationServer server;
  server.trust_measurement(enclave.measurement());
  server.register_platform_key(enclave.platform_key());

  EXPECT_TRUE(server.verify(enclave.measurement(), enclave.platform_key()));
  EXPECT_FALSE(server.verify(rogue.measurement(), rogue.platform_key()));
  EXPECT_FALSE(server.verify(rogue.measurement(), enclave.platform_key()));
}

TEST(PrivateClustering, ClustersSubmissionsInsideEnclave) {
  auto enclave = std::make_shared<flips::tee::Enclave>("clustering", 1.05);
  auto attestation = std::make_shared<flips::tee::AttestationServer>();
  attestation->trust_measurement(enclave->measurement());
  attestation->register_platform_key(enclave->platform_key());

  flips::core::ClusteringConfig config;
  config.k_override = 3;
  flips::core::PrivateClusteringService service(config, enclave,
                                                attestation);

  // Three obvious label-distribution modes.
  for (std::size_t p = 0; p < 30; ++p) {
    flips::data::LabelDistribution ld(6, 1.0);
    ld[p % 3] = 50.0;
    service.submit_label_distribution(p, ld);
  }
  const auto& result = service.finalize();
  EXPECT_EQ(result.k, 3u);
  ASSERT_EQ(result.assignments.size(), 30u);
  for (std::size_t p = 3; p < 30; ++p) {
    EXPECT_EQ(result.assignments[p], result.assignments[p % 3]);
  }
  EXPECT_GT(enclave->raw_execution_seconds(), 0.0);
}

TEST(PrivateClustering, ResubmissionUpdatesInPlaceWithoutDuplicating) {
  auto enclave = std::make_shared<flips::tee::Enclave>("re-submit", 1.0);
  auto attestation = std::make_shared<flips::tee::AttestationServer>();
  attestation->trust_measurement(enclave->measurement());
  attestation->register_platform_key(enclave->platform_key());

  flips::core::ClusteringConfig config;
  config.k_override = 2;
  flips::core::PrivateClusteringService service(config, enclave,
                                                attestation);
  for (std::size_t p = 0; p < 12; ++p) {
    flips::data::LabelDistribution ld(4, 1.0);
    ld[p % 2] = 40.0;
    service.submit_label_distribution(p, ld);
  }
  // A drift refresh re-submits every party; the service must update
  // in place, not append (this used to inflate the buffered points).
  for (std::size_t p = 0; p < 12; ++p) {
    flips::data::LabelDistribution ld(4, 1.0);
    ld[(p + 1) % 2] = 40.0;  // every party flips its dominant label
    service.submit_label_distribution(p, ld);
  }
  EXPECT_EQ(service.submissions(), 12u);
  EXPECT_EQ(service.engine().buffered_points(), 12u);

  const auto& result = service.finalize();
  ASSERT_EQ(result.assignments.size(), 12u);
  EXPECT_EQ(result.k, 2u);
  // The clustering reflects the refreshed distributions: parity still
  // partitions the parties (labels flipped for everyone).
  for (std::size_t p = 2; p < 12; ++p) {
    EXPECT_EQ(result.assignments[p], result.assignments[p % 2]);
  }
}

TEST(PrivateClustering, DriftDetectionTriggersRecluster) {
  auto enclave = std::make_shared<flips::tee::Enclave>("drift", 1.0);
  auto attestation = std::make_shared<flips::tee::AttestationServer>();
  attestation->trust_measurement(enclave->measurement());
  attestation->register_platform_key(enclave->platform_key());

  flips::core::ClusteringConfig config;
  config.k_override = 2;
  flips::core::PrivateClusteringService service(config, enclave,
                                                attestation);
  auto submit_all = [&](std::size_t rotation) {
    for (std::size_t p = 0; p < 20; ++p) {
      flips::data::LabelDistribution ld(4, 1.0);
      ld[(p + rotation) % 2] = 60.0;
      service.submit_label_distribution(p, ld);
    }
  };
  submit_all(0);
  service.finalize();
  EXPECT_EQ(service.epoch(), 1u);

  submit_all(0);  // unchanged refresh: no drift
  EXPECT_FALSE(service.drift_detected());
  EXPECT_FALSE(service.maybe_recluster());

  submit_all(1);  // rotated refresh: drift flags, service re-clusters
  EXPECT_TRUE(service.drift_detected());
  EXPECT_TRUE(service.maybe_recluster());
  EXPECT_EQ(service.epoch(), 2u);
  EXPECT_EQ(service.result().assignments.size(), 20u);
}

TEST(PrivateClustering, RejectsUnattestedEnclave) {
  auto enclave = std::make_shared<flips::tee::Enclave>("untrusted", 1.0);
  auto attestation = std::make_shared<flips::tee::AttestationServer>();
  flips::core::PrivateClusteringService service({}, enclave, attestation);
  EXPECT_THROW(service.submit_label_distribution(0, {1.0, 2.0}),
               std::runtime_error);
}

}  // namespace
