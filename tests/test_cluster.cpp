// Clustering substrate: k-means determinism, planted-mode recovery,
// mini-batch agreement, DBI elbow, agglomerative clustering.
#include <gtest/gtest.h>

#include "cluster/dbi.h"
#include "cluster/hierarchical.h"
#include "cluster/kmeans.h"
#include "cluster/minibatch_kmeans.h"

namespace {

using flips::cluster::Point;

std::vector<Point> planted_points(std::size_t n, std::size_t modes,
                                  std::size_t dim, double noise,
                                  std::uint64_t seed) {
  flips::common::Rng rng(seed);
  std::vector<Point> centers(modes, Point(dim, 0.0));
  for (auto& c : centers) {
    for (auto& v : c) v = rng.normal(0.0, 3.0);
  }
  std::vector<Point> points(n, Point(dim, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < dim; ++j) {
      points[i][j] = centers[i % modes][j] + noise * rng.normal();
    }
  }
  return points;
}

TEST(KMeans, DeterministicUnderFixedSeed) {
  const auto points = planted_points(120, 6, 8, 0.3, 42);
  flips::cluster::KMeansConfig config;
  config.k = 6;
  config.restarts = 3;

  flips::common::Rng rng_a(7);
  flips::common::Rng rng_b(7);
  const auto a = flips::cluster::kmeans(points, config, rng_a);
  const auto b = flips::cluster::kmeans(points, config, rng_b);
  EXPECT_EQ(a.assignments, b.assignments);
  EXPECT_EQ(a.centroids, b.centroids);
  EXPECT_DOUBLE_EQ(a.inertia, b.inertia);

  flips::common::Rng rng_c(8);
  const auto c = flips::cluster::kmeans(points, config, rng_c);
  // A different seed may still find the same optimum; what must hold is
  // that the result is a valid clustering of the same quality class.
  EXPECT_EQ(c.assignments.size(), points.size());
}

TEST(KMeans, RecoversPlantedModes) {
  const std::size_t modes = 5;
  const auto points = planted_points(200, modes, 10, 0.2, 3);
  flips::cluster::KMeansConfig config;
  config.k = modes;
  config.restarts = 5;
  flips::common::Rng rng(11);
  const auto result = flips::cluster::kmeans(points, config, rng);

  // Points generated round-robin: i and i+modes share a mode. With
  // well-separated centers the recovered partition must agree.
  std::size_t agreements = 0;
  std::size_t trials = 0;
  for (std::size_t i = 0; i + modes < points.size(); ++i) {
    ++trials;
    if (result.assignments[i] == result.assignments[i + modes]) {
      ++agreements;
    }
  }
  EXPECT_GT(static_cast<double>(agreements) / static_cast<double>(trials),
            0.95);
}

TEST(KMeans, EmptyAndDegenerateInputs) {
  flips::cluster::KMeansConfig config;
  config.k = 3;
  flips::common::Rng rng(1);
  EXPECT_TRUE(flips::cluster::kmeans({}, config, rng).assignments.empty());

  const std::vector<Point> two = {{0.0, 0.0}, {1.0, 1.0}};
  const auto result = flips::cluster::kmeans(two, config, rng);
  EXPECT_EQ(result.assignments.size(), 2u);
}

TEST(MiniBatchKMeans, AgreesWithLloydOnSeparatedModes) {
  const std::size_t modes = 4;
  const auto points = planted_points(600, modes, 6, 0.15, 9);

  flips::cluster::KMeansConfig full;
  full.k = modes;
  full.restarts = 3;
  flips::common::Rng rng_full(5);
  const auto lloyd = flips::cluster::kmeans(points, full, rng_full);

  flips::cluster::MiniBatchKMeansConfig mb;
  mb.k = modes;
  mb.batch_size = 128;
  mb.iterations = 150;
  flips::common::Rng rng_mb(5);
  const auto mini = flips::cluster::minibatch_kmeans(points, mb, rng_mb);

  // Rand agreement over all pairs.
  std::size_t agree = 0;
  std::size_t total = 0;
  for (std::size_t i = 0; i < points.size(); i += 7) {
    for (std::size_t j = i + 1; j < points.size(); j += 11) {
      ++total;
      const bool same_a = lloyd.assignments[i] == lloyd.assignments[j];
      const bool same_b = mini.assignments[i] == mini.assignments[j];
      agree += same_a == same_b;
    }
  }
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(total), 0.9);
}

TEST(DaviesBouldin, ElbowFindsPlantedModeCount) {
  const std::size_t modes = 6;
  const auto points = planted_points(180, modes, 8, 0.15, 13);
  flips::cluster::OptimalKConfig config;
  config.k_min = 2;
  config.k_max = 12;
  config.repeats = 5;
  config.kmeans.restarts = 2;
  flips::common::Rng rng(3);
  const auto elbow = flips::cluster::optimal_k_elbow(points, config, rng);
  ASSERT_EQ(elbow.dbi_curve.size(), 11u);
  EXPECT_EQ(elbow.k_min, 2u);
  // Well-separated planted modes: the DBI minimum sits at (or adjacent
  // to) the true mode count.
  EXPECT_NEAR(static_cast<double>(elbow.k), static_cast<double>(modes), 1.0);

  flips::common::Rng rng2(3);
  const auto eq3 = flips::cluster::optimal_k_eq3(points, config, rng2);
  EXPECT_GE(eq3.k, config.k_min);
  EXPECT_LE(eq3.k, config.k_max);
}

TEST(DaviesBouldin, LowerForTighterClusters) {
  const auto tight = planted_points(100, 4, 6, 0.05, 2);
  const auto loose = planted_points(100, 4, 6, 1.5, 2);
  flips::cluster::KMeansConfig config;
  config.k = 4;
  config.restarts = 3;
  flips::common::Rng rng(4);
  const auto rt = flips::cluster::kmeans(tight, config, rng);
  const auto rl = flips::cluster::kmeans(loose, config, rng);
  EXPECT_LT(flips::cluster::davies_bouldin_index(tight, rt.assignments,
                                                 rt.centroids),
            flips::cluster::davies_bouldin_index(loose, rl.assignments,
                                                 rl.centroids));
}

TEST(Agglomerative, GroupsByCosineDirection) {
  // Three direction families in 4-D; average linkage on cosine distance
  // must recover them.
  std::vector<Point> points;
  flips::common::Rng rng(6);
  for (std::size_t family = 0; family < 3; ++family) {
    Point base(4, 0.0);
    base[family] = 1.0;
    for (std::size_t i = 0; i < 5; ++i) {
      Point p = base;
      for (auto& v : p) v += 0.05 * rng.normal();
      points.push_back(p);
    }
  }
  const auto distances = flips::cluster::cosine_distance_matrix(points);
  const auto assignment = flips::cluster::agglomerative_cluster(distances, 3);
  ASSERT_EQ(assignment.size(), points.size());
  for (std::size_t family = 0; family < 3; ++family) {
    for (std::size_t i = 1; i < 5; ++i) {
      EXPECT_EQ(assignment[family * 5], assignment[family * 5 + i]);
    }
  }
  EXPECT_NE(assignment[0], assignment[5]);
  EXPECT_NE(assignment[5], assignment[10]);
}

}  // namespace
