// Model substrate: parameter round-trips, value-semantics, and
// numeric gradient checks for the dense and conv stacks.
#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.h"
#include "ml/model.h"
#include "ml/sgd.h"

namespace {

using flips::common::Rng;
using flips::ml::ModelFactory;
using flips::ml::Sequential;

TEST(Sequential, ParameterRoundTrip) {
  Rng rng(1);
  Sequential model = ModelFactory::mlp(6, 4, 3, rng);
  auto params = model.parameters();
  EXPECT_EQ(params.size(), model.num_parameters());
  EXPECT_EQ(params.size(), 6u * 4 + 4 + 4 * 3 + 3);
  for (auto& p : params) p += 0.125;
  model.set_parameters(params);
  EXPECT_EQ(model.parameters(), params);
}

TEST(Sequential, CopyIsDeep) {
  Rng rng(2);
  Sequential a = ModelFactory::mlp(4, 3, 2, rng);
  Sequential b = a;
  auto params = b.parameters();
  for (auto& p : params) p = 1.0;
  b.set_parameters(params);
  EXPECT_NE(a.parameters(), b.parameters());
  EXPECT_EQ(a.num_parameters(), b.num_parameters());
}

/// Central-difference gradient check on a random coordinate subset.
void check_gradients(Sequential& model, const flips::ml::Matrix& features,
                     const std::vector<std::uint32_t>& labels,
                     double tolerance) {
  model.train_step_gradient(features, labels);
  const auto analytic = model.gradients();
  auto params = model.parameters();
  ASSERT_EQ(analytic.size(), params.size());

  Rng pick(1234);
  const double h = 1e-5;
  for (std::size_t trial = 0; trial < 25; ++trial) {
    const std::size_t i = pick.uniform_index(params.size());
    const double saved = params[i];
    params[i] = saved + h;
    model.set_parameters(params);
    const double up = model.evaluate_loss(features, labels);
    params[i] = saved - h;
    model.set_parameters(params);
    const double down = model.evaluate_loss(features, labels);
    params[i] = saved;
    model.set_parameters(params);
    const double numeric = (up - down) / (2.0 * h);
    EXPECT_NEAR(analytic[i], numeric,
                tolerance * std::max(1.0, std::fabs(numeric)))
        << "param " << i;
  }
}

TEST(Gradients, MlpMatchesNumeric) {
  Rng rng(3);
  Sequential model = ModelFactory::mlp(5, 7, 4, rng);
  flips::ml::Matrix features;
  std::vector<std::uint32_t> labels;
  for (std::size_t i = 0; i < 6; ++i) {
    std::vector<double> x(5);
    for (auto& v : x) v = rng.normal();
    features.push_back(std::move(x));
    labels.push_back(static_cast<std::uint32_t>(i % 4));
  }
  check_gradients(model, features, labels, 1e-4);
}

TEST(Gradients, LeNetMatchesNumeric) {
  Rng rng(4);
  Sequential model = ModelFactory::lenet5(12, 3, rng);
  flips::data::ImagePatchGenerator gen(12, 3, Rng(5));
  const auto batch = gen.sample(4);
  check_gradients(model, batch.features, batch.labels, 1e-3);
}

TEST(Gradients, MiniDenseNetMatchesNumeric) {
  Rng rng(6);
  Sequential model = ModelFactory::mini_densenet(6, 3, 2, 2, rng);
  flips::data::ImagePatchGenerator gen(6, 3, Rng(7));
  const auto batch = gen.sample(4);
  check_gradients(model, batch.features, batch.labels, 1e-3);
}

TEST(Training, LossDecreasesOnSeparableData) {
  Rng rng(8);
  Sequential model = ModelFactory::logistic_regression(8, 2, rng);
  flips::ml::Matrix features;
  std::vector<std::uint32_t> labels;
  for (std::size_t i = 0; i < 40; ++i) {
    std::vector<double> x(8, 0.0);
    const std::uint32_t y = i % 2;
    x[0] = y == 0 ? 1.0 : -1.0;
    x[1] = 0.1 * rng.normal();
    features.push_back(std::move(x));
    labels.push_back(y);
  }
  flips::ml::SgdOptimizer opt({.learning_rate = 0.5});
  const double first = model.train_step_gradient(features, labels);
  opt.step(model, 0.5);
  double last = first;
  for (std::size_t e = 0; e < 20; ++e) {
    last = model.train_step_gradient(features, labels);
    opt.step(model, 0.5);
  }
  EXPECT_LT(last, 0.5 * first);
}

TEST(Sgd, LearningRateDecaySchedule) {
  flips::ml::SgdConfig config;
  config.learning_rate = 0.1;
  config.lr_decay_factor = 0.5;
  config.lr_decay_rounds = 10;
  flips::ml::SgdOptimizer opt(config);
  EXPECT_DOUBLE_EQ(opt.learning_rate_for_round(1), 0.1);
  EXPECT_DOUBLE_EQ(opt.learning_rate_for_round(10), 0.1);
  EXPECT_DOUBLE_EQ(opt.learning_rate_for_round(11), 0.05);
  EXPECT_DOUBLE_EQ(opt.learning_rate_for_round(21), 0.025);
}

}  // namespace
