// Model substrate: parameter round-trips, value-semantics, numeric
// gradient checks for the dense and conv stacks, and hand-computed
// checks pinning the flat (contiguous-Tensor) kernels to the math of
// the original nested-vector path.
#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.h"
#include "ml/model.h"
#include "ml/sgd.h"
#include "ml/tensor.h"

namespace {

using flips::common::Rng;
using flips::ml::ModelFactory;
using flips::ml::Sequential;
using flips::ml::Tensor;

TEST(TensorBasics, FromRowsRoundTrip) {
  const std::vector<std::vector<double>> rows{{1.0, 2.0, 3.0},
                                             {4.0, 5.0, 6.0}};
  const Tensor t = Tensor::from_rows(rows);
  ASSERT_EQ(t.rows(), 2u);
  ASSERT_EQ(t.cols(), 3u);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_EQ(t(r, c), rows[r][c]);
    }
  }
  // Row-major contiguity: row pointers are data() + r * cols.
  EXPECT_EQ(t.row(1), t.data() + 3);
}

TEST(Sequential, ParameterRoundTrip) {
  Rng rng(1);
  Sequential model = ModelFactory::mlp(6, 4, 3, rng);
  auto params = model.parameters();
  EXPECT_EQ(params.size(), model.num_parameters());
  EXPECT_EQ(params.size(), 6u * 4 + 4 + 4 * 3 + 3);
  for (auto& p : params) p += 0.125;
  model.set_parameters(params);
  EXPECT_EQ(model.parameters(), params);
}

TEST(Sequential, CopyIsDeep) {
  Rng rng(2);
  Sequential a = ModelFactory::mlp(4, 3, 2, rng);
  Sequential b = a;
  auto params = b.parameters();
  for (auto& p : params) p = 1.0;
  b.set_parameters(params);
  EXPECT_NE(a.parameters(), b.parameters());
  EXPECT_EQ(a.num_parameters(), b.num_parameters());
}

// The copy must rebind layer weight pointers into the copy's own flat
// buffer: training the copy may not disturb the original.
TEST(Sequential, CopyTrainsIndependently) {
  Rng rng(12);
  Sequential a = ModelFactory::mlp(4, 3, 2, rng);
  const auto before = a.parameters();
  Sequential b = a;
  Tensor x(2, 4, 0.5);
  b.train_step_gradient(x, {0, 1});
  b.apply_gradients(0.1);
  EXPECT_EQ(a.parameters(), before);
  EXPECT_NE(b.parameters(), before);
}

// ------------------------------------------------------------------
// Flat dense kernel vs the old path's hand-computed math.
//
// The original implementation computed, per sample,
//   logit_o = bias_o + sum_i w(i, o) * x_i
// with nested-vector storage. The flat kernel must produce the same
// values from its contiguous [in][out]-major parameter segment
// (ordering: all weights, then bias).

TEST(DenseKernel, ForwardMatchesHandComputed) {
  Rng rng(3);
  Sequential model = ModelFactory::logistic_regression(2, 2, rng);
  // params = [w(0,0), w(0,1), w(1,0), w(1,1), b0, b1]
  model.set_parameters({1.0, -1.0, 0.5, 2.0, 0.25, -0.75});

  Tensor x(2, 2);
  x(0, 0) = 1.0;
  x(0, 1) = 2.0;
  x(1, 0) = -3.0;
  x(1, 1) = 0.5;
  const Tensor& logits = model.forward(x);
  ASSERT_EQ(logits.rows(), 2u);
  ASSERT_EQ(logits.cols(), 2u);
  // Sample 0: y0 = 0.25 + 1*1 + 2*0.5 = 2.25; y1 = -0.75 - 1 + 4 = 2.25.
  EXPECT_DOUBLE_EQ(logits(0, 0), 2.25);
  EXPECT_DOUBLE_EQ(logits(0, 1), 2.25);
  // Sample 1: y0 = 0.25 - 3 + 0.25 = -2.5; y1 = -0.75 + 3 + 1 = 3.25.
  EXPECT_DOUBLE_EQ(logits(1, 0), -2.5);
  EXPECT_DOUBLE_EQ(logits(1, 1), 3.25);
}

TEST(DenseKernel, BackwardMatchesHandComputed) {
  Rng rng(4);
  Sequential model = ModelFactory::logistic_regression(2, 2, rng);
  model.set_parameters({0.2, -0.4, 0.1, 0.3, 0.0, 0.0});

  Tensor x(1, 2);
  x(0, 0) = 1.0;
  x(0, 1) = -2.0;
  const double loss = model.train_step_gradient(x, {0});

  // Hand-compute the old path: logits, softmax, g = p - onehot(0),
  // grad_w(i, o) = g_o * x_i, grad_b = g.
  const double y0 = 0.2 * 1.0 + 0.1 * -2.0;   // 0.0
  const double y1 = -0.4 * 1.0 + 0.3 * -2.0;  // -1.0
  const double z = std::exp(y0) + std::exp(y1);
  const double p0 = std::exp(y0) / z;
  const double p1 = std::exp(y1) / z;
  EXPECT_NEAR(loss, -std::log(p0), 1e-12);

  const auto& g = model.gradients();
  ASSERT_EQ(g.size(), 6u);
  EXPECT_NEAR(g[0], (p0 - 1.0) * 1.0, 1e-12);   // w(0,0)
  EXPECT_NEAR(g[1], p1 * 1.0, 1e-12);           // w(0,1)
  EXPECT_NEAR(g[2], (p0 - 1.0) * -2.0, 1e-12);  // w(1,0)
  EXPECT_NEAR(g[3], p1 * -2.0, 1e-12);          // w(1,1)
  EXPECT_NEAR(g[4], p0 - 1.0, 1e-12);           // b0
  EXPECT_NEAR(g[5], p1, 1e-12);                 // b1
}

// Larger shape: the blocked kernel must equal a naive per-sample
// reference loop (the old path's exact computation) over a random MLP
// first layer, bit for bit.
TEST(DenseKernel, MatchesNaiveReferenceLoop) {
  Rng rng(5);
  Sequential model = ModelFactory::logistic_regression(7, 4, rng);
  const auto& params = model.parameters();

  Rng data_rng(6);
  Tensor x(5, 7);
  for (std::size_t r = 0; r < 5; ++r) {
    for (std::size_t c = 0; c < 7; ++c) x(r, c) = data_rng.normal();
  }
  const Tensor& logits = model.forward(x);
  for (std::size_t b = 0; b < 5; ++b) {
    for (std::size_t o = 0; o < 4; ++o) {
      double expected = params[7 * 4 + o];  // bias
      for (std::size_t i = 0; i < 7; ++i) {
        expected += params[i * 4 + o] * x(b, i);
      }
      EXPECT_NEAR(logits(b, o), expected, 1e-12) << "b=" << b << " o=" << o;
    }
  }
}

/// Central-difference gradient check on a random coordinate subset.
void check_gradients(Sequential& model, const Tensor& features,
                     const std::vector<std::uint32_t>& labels,
                     double tolerance) {
  model.train_step_gradient(features, labels);
  const auto analytic = model.gradients();
  auto params = model.parameters();
  ASSERT_EQ(analytic.size(), params.size());

  Rng pick(1234);
  const double h = 1e-5;
  for (std::size_t trial = 0; trial < 25; ++trial) {
    const std::size_t i = pick.uniform_index(params.size());
    const double saved = params[i];
    params[i] = saved + h;
    model.set_parameters(params);
    const double up = model.evaluate_loss(features, labels);
    params[i] = saved - h;
    model.set_parameters(params);
    const double down = model.evaluate_loss(features, labels);
    params[i] = saved;
    model.set_parameters(params);
    const double numeric = (up - down) / (2.0 * h);
    EXPECT_NEAR(analytic[i], numeric,
                tolerance * std::max(1.0, std::fabs(numeric)))
        << "param " << i;
  }
}

TEST(Gradients, MlpMatchesNumeric) {
  Rng rng(3);
  Sequential model = ModelFactory::mlp(5, 7, 4, rng);
  Tensor features(6, 5);
  std::vector<std::uint32_t> labels;
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t c = 0; c < 5; ++c) features(i, c) = rng.normal();
    labels.push_back(static_cast<std::uint32_t>(i % 4));
  }
  check_gradients(model, features, labels, 1e-4);
}

TEST(Gradients, LeNetMatchesNumeric) {
  Rng rng(4);
  Sequential model = ModelFactory::lenet5(12, 3, rng);
  flips::data::ImagePatchGenerator gen(12, 3, Rng(5));
  const auto batch = gen.sample(4);
  check_gradients(model, Tensor::from_rows(batch.features), batch.labels,
                  1e-3);
}

TEST(Gradients, MiniDenseNetMatchesNumeric) {
  Rng rng(6);
  Sequential model = ModelFactory::mini_densenet(6, 3, 2, 2, rng);
  flips::data::ImagePatchGenerator gen(6, 3, Rng(7));
  const auto batch = gen.sample(4);
  check_gradients(model, Tensor::from_rows(batch.features), batch.labels,
                  1e-3);
}

TEST(Training, LossDecreasesOnSeparableData) {
  Rng rng(8);
  Sequential model = ModelFactory::logistic_regression(8, 2, rng);
  Tensor features(40, 8, 0.0);
  std::vector<std::uint32_t> labels;
  for (std::size_t i = 0; i < 40; ++i) {
    const std::uint32_t y = i % 2;
    features(i, 0) = y == 0 ? 1.0 : -1.0;
    features(i, 1) = 0.1 * rng.normal();
    labels.push_back(y);
  }
  flips::ml::SgdOptimizer opt({.learning_rate = 0.5});
  const double first = model.train_step_gradient(features, labels);
  opt.step(model, 0.5);
  double last = first;
  for (std::size_t e = 0; e < 20; ++e) {
    last = model.train_step_gradient(features, labels);
    opt.step(model, 0.5);
  }
  EXPECT_LT(last, 0.5 * first);
}

TEST(Sgd, LearningRateDecaySchedule) {
  flips::ml::SgdConfig config;
  config.learning_rate = 0.1;
  config.lr_decay_factor = 0.5;
  config.lr_decay_rounds = 10;
  flips::ml::SgdOptimizer opt(config);
  EXPECT_DOUBLE_EQ(opt.learning_rate_for_round(1), 0.1);
  EXPECT_DOUBLE_EQ(opt.learning_rate_for_round(10), 0.1);
  EXPECT_DOUBLE_EQ(opt.learning_rate_for_round(11), 0.05);
  EXPECT_DOUBLE_EQ(opt.learning_rate_for_round(21), 0.025);
}

}  // namespace
