// Streaming aggregation plane: bit-compatibility with the reference
// fold, dimension rejection, skip handling, arena reuse, and
// bit-identity under concurrent out-of-order submission.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "fl/aggregator.h"
#include "fl/server_optimizer.h"

namespace {

using flips::fl::BufferArena;
using flips::fl::StreamingAggregator;

std::vector<flips::fl::LocalUpdate> random_updates(std::size_t parties,
                                                   std::size_t dim,
                                                   std::uint64_t seed) {
  flips::common::Rng rng(seed);
  std::vector<flips::fl::LocalUpdate> updates(parties);
  for (auto& u : updates) {
    u.num_samples = rng.uniform_index(200);  // zero-sample case included
    u.delta.resize(dim);
    for (auto& d : u.delta) d = rng.normal(0.0, 1.0);
  }
  return updates;
}

/// The streaming fold must reproduce aggregate_updates EXACTLY: both
/// walk parties in cohort order with a left-to-right chain and divide
/// by the same total weight.
TEST(StreamingAggregator, BitIdenticalWithReferenceFold) {
  for (const std::size_t parties : {1u, 7u, 8u, 9u, 23u, 64u}) {
    for (const std::size_t dim : {1u, 5u, 8u, 17u, 1000u}) {
      const auto updates = random_updates(parties, dim, 31 * parties + dim);
      const auto reference = flips::fl::aggregate_updates(updates);

      StreamingAggregator aggregator;
      aggregator.begin_round(dim, parties);
      for (std::size_t k = 0; k < parties; ++k) {
        const double w = updates[k].num_samples > 0
                             ? static_cast<double>(updates[k].num_samples)
                             : 1.0;
        aggregator.submit(k, w, updates[k].delta);
      }
      const auto& mean = aggregator.finalize();
      ASSERT_EQ(mean.size(), reference.size());
      for (std::size_t i = 0; i < dim; ++i) {
        EXPECT_EQ(mean[i], reference[i])
            << "parties=" << parties << " dim=" << dim << " i=" << i;
      }
      EXPECT_EQ(aggregator.contributions(), parties);
    }
  }
}

TEST(StreamingAggregator, SkippedSlotsDoNotContribute) {
  const std::size_t parties = 13;
  const std::size_t dim = 37;
  const auto updates = random_updates(parties, dim, 99);

  // Reference over the responders only (slots 0, 3, 4, ... pattern).
  std::vector<flips::fl::LocalUpdate> responders;
  StreamingAggregator aggregator;
  aggregator.begin_round(dim, parties);
  for (std::size_t k = 0; k < parties; ++k) {
    if (k % 3 == 1) {
      aggregator.skip(k);
      continue;
    }
    const double w = updates[k].num_samples > 0
                         ? static_cast<double>(updates[k].num_samples)
                         : 1.0;
    aggregator.submit(k, w, updates[k].delta);
    responders.push_back(updates[k]);
  }
  const auto reference = flips::fl::aggregate_updates(responders);
  const auto& mean = aggregator.finalize();
  ASSERT_EQ(mean.size(), reference.size());
  for (std::size_t i = 0; i < dim; ++i) EXPECT_EQ(mean[i], reference[i]);
  EXPECT_EQ(aggregator.contributions(), responders.size());
}

TEST(StreamingAggregator, AllSkippedYieldsEmpty) {
  StreamingAggregator aggregator;
  aggregator.begin_round(10, 3);
  for (std::size_t k = 0; k < 3; ++k) aggregator.skip(k);
  EXPECT_TRUE(aggregator.finalize().empty());
  EXPECT_EQ(aggregator.contributions(), 0u);

  aggregator.begin_round(10, 0);
  EXPECT_TRUE(aggregator.finalize().empty());
}

TEST(StreamingAggregator, RejectsMismatchedDimension) {
  StreamingAggregator aggregator;
  aggregator.begin_round(8, 2);
  const std::vector<double> short_delta(5, 1.0);
  EXPECT_THROW(aggregator.submit(0, 1.0, short_delta),
               std::invalid_argument);
  const std::vector<double> long_delta(9, 1.0);
  EXPECT_THROW(aggregator.submit(0, 1.0, long_delta),
               std::invalid_argument);
}

TEST(StreamingAggregator, RejectsDuplicateAndOutOfRangeSlots) {
  StreamingAggregator aggregator;
  aggregator.begin_round(4, 2);
  const std::vector<double> delta(4, 1.0);
  aggregator.submit(0, 1.0, delta);
  EXPECT_THROW(aggregator.submit(0, 1.0, delta), std::invalid_argument);
  EXPECT_THROW(aggregator.skip(0), std::invalid_argument);
  EXPECT_THROW(aggregator.submit(2, 1.0, delta), std::invalid_argument);
}

/// Concurrent submission in shuffled order must produce exactly the
/// single-threaded cohort-order result (the PR 2 invariant, now held
/// by the aggregation plane itself).
TEST(StreamingAggregator, ConcurrentShuffledSubmissionBitIdentical) {
  const std::size_t parties = 41;  // not a block multiple
  const std::size_t dim = 513;     // not a strip multiple
  const auto updates = random_updates(parties, dim, 7);

  StreamingAggregator serial;
  serial.begin_round(dim, parties);
  for (std::size_t k = 0; k < parties; ++k) {
    serial.submit(k, 1.0 + static_cast<double>(k), updates[k].delta);
  }
  const std::vector<double> reference = serial.finalize();

  flips::common::Rng shuffle_rng(3);
  for (int repeat = 0; repeat < 3; ++repeat) {
    std::vector<std::size_t> order(parties);
    for (std::size_t k = 0; k < parties; ++k) order[k] = k;
    shuffle_rng.shuffle(order);

    StreamingAggregator aggregator;
    aggregator.begin_round(dim, parties);
    flips::common::ThreadPool pool(4);
    pool.parallel_for(parties, [&](std::size_t j) {
      const std::size_t k = order[j];
      if (k % 5 == 4) {
        // Mix skips in: they resolve slots without contributing.
        aggregator.skip(k);
      } else {
        aggregator.submit(k, 1.0 + static_cast<double>(k),
                          updates[k].delta);
      }
    });
    const auto& mean = aggregator.finalize();

    // Rebuild the expected mean serially with the same skip pattern.
    StreamingAggregator expected;
    expected.begin_round(dim, parties);
    for (std::size_t k = 0; k < parties; ++k) {
      if (k % 5 == 4) {
        expected.skip(k);
      } else {
        expected.submit(k, 1.0 + static_cast<double>(k),
                        updates[k].delta);
      }
    }
    const auto& expected_mean = expected.finalize();
    ASSERT_EQ(mean.size(), expected_mean.size());
    for (std::size_t i = 0; i < dim; ++i) {
      EXPECT_EQ(mean[i], expected_mean[i]) << "repeat=" << repeat;
    }
  }
  // Silence the unused-variable warning for reference (documents that
  // the full-cohort fold differs from the skip-pattern fold).
  EXPECT_EQ(reference.size(), dim);
}

TEST(BufferArena, LeaseReleaseRecyclesBuffers) {
  BufferArena arena;
  EXPECT_EQ(arena.pooled(), 0u);
  std::vector<double> a = arena.lease(100);
  EXPECT_EQ(a.size(), 100u);
  const double* data = a.data();
  arena.release(std::move(a));
  EXPECT_EQ(arena.pooled(), 1u);
  // Same capacity comes back for a same-size lease: no new allocation.
  std::vector<double> b = arena.lease(100);
  EXPECT_EQ(b.data(), data);
  EXPECT_EQ(arena.pooled(), 0u);
  arena.release(std::move(b));

  // Steady-state cycling never grows the pool beyond the peak.
  for (int round = 0; round < 10; ++round) {
    std::vector<std::vector<double>> leases;
    for (int k = 0; k < 4; ++k) leases.push_back(arena.lease(64));
    for (auto& lease : leases) arena.release(std::move(lease));
  }
  EXPECT_EQ(arena.pooled(), 4u);
}

}  // namespace
