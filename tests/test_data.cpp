// Federation builder: Dirichlet label-marginal correctness, skew
// behaviour, planted modes, and drift.
#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.h"
#include "data/drift.h"
#include "data/federated.h"

namespace {

using flips::data::DatasetCatalog;
using flips::data::FederatedDataConfig;
using flips::data::build_federated_data;

TEST(DirichletPartitioner, LabelMarginalsMatchPriors) {
  FederatedDataConfig config;
  config.spec = DatasetCatalog::ecg();
  config.num_parties = 400;
  config.samples_per_party = 100;
  config.alpha = 0.3;
  config.seed = 7;
  const auto data = build_federated_data(config);

  ASSERT_EQ(data.party_data.size(), config.num_parties);
  ASSERT_EQ(data.label_distributions.size(), config.num_parties);

  // Pool every party's label histogram: the federation marginal must
  // track the spec's class priors (law of large numbers over parties).
  std::vector<double> pooled(config.spec.num_classes, 0.0);
  double total = 0.0;
  for (const auto& ld : data.label_distributions) {
    ASSERT_EQ(ld.size(), config.spec.num_classes);
    for (std::size_t c = 0; c < ld.size(); ++c) {
      pooled[c] += ld[c];
      total += ld[c];
    }
  }
  EXPECT_DOUBLE_EQ(
      total, static_cast<double>(config.num_parties *
                                 config.samples_per_party));
  for (std::size_t c = 0; c < pooled.size(); ++c) {
    const double marginal = pooled[c] / total;
    // 40k samples: allow a few points of absolute deviation.
    EXPECT_NEAR(marginal, config.spec.class_priors[c], 0.04)
        << "class " << c;
  }
}

TEST(DirichletPartitioner, HistogramsMatchDatasets) {
  FederatedDataConfig config;
  config.spec = DatasetCatalog::ham10000();
  config.num_parties = 20;
  config.samples_per_party = 50;
  config.seed = 3;
  const auto data = build_federated_data(config);
  for (std::size_t p = 0; p < config.num_parties; ++p) {
    EXPECT_EQ(flips::data::label_distribution(data.party_data[p]),
              data.label_distributions[p]);
    EXPECT_EQ(data.party_data[p].size(), config.samples_per_party);
    EXPECT_EQ(data.party_data[p].features.front().size(),
              config.spec.feature_dim);
  }
}

TEST(DirichletPartitioner, LowerAlphaMeansMoreSkew) {
  FederatedDataConfig config;
  config.spec = DatasetCatalog::fashion_mnist();
  config.num_parties = 150;
  config.samples_per_party = 100;
  config.seed = 11;

  const auto mean_entropy = [&](double alpha) {
    config.alpha = alpha;
    const auto data = build_federated_data(config);
    double h = 0.0;
    for (const auto& ld : data.label_distributions) {
      h += flips::common::entropy(flips::common::normalized(ld));
    }
    return h / static_cast<double>(config.num_parties);
  };

  // Skewed parties concentrate on few labels => lower entropy.
  EXPECT_LT(mean_entropy(0.1), mean_entropy(1.0));
  EXPECT_LT(mean_entropy(1.0), mean_entropy(10.0));
}

TEST(DirichletPartitioner, DeterministicUnderSeed) {
  FederatedDataConfig config;
  config.spec = DatasetCatalog::ecg();
  config.num_parties = 10;
  config.samples_per_party = 20;
  config.seed = 99;
  const auto a = build_federated_data(config);
  const auto b = build_federated_data(config);
  ASSERT_EQ(a.label_distributions, b.label_distributions);
  ASSERT_EQ(a.party_data[0].features, b.party_data[0].features);

  config.seed = 100;
  const auto c = build_federated_data(config);
  EXPECT_NE(a.label_distributions, c.label_distributions);
}

TEST(PlantedModes, PartiesShareModeDistributions) {
  FederatedDataConfig config;
  config.spec = DatasetCatalog::ecg();
  config.num_parties = 40;
  config.samples_per_party = 200;
  config.scheme = flips::data::PartitionScheme::kPlantedModes;
  config.num_modes = 4;
  config.seed = 21;
  const auto data = build_federated_data(config);

  // Same mode (p % 4) => similar label distribution; the L1 gap within
  // a mode must be far below the gap across modes on average.
  double within = 0.0;
  std::size_t within_n = 0;
  double across = 0.0;
  std::size_t across_n = 0;
  for (std::size_t p = 0; p < config.num_parties; ++p) {
    for (std::size_t q = p + 1; q < config.num_parties; ++q) {
      const double gap = flips::common::l1_distance(
          flips::common::normalized(data.label_distributions[p]),
          flips::common::normalized(data.label_distributions[q]));
      if (p % 4 == q % 4) {
        within += gap;
        ++within_n;
      } else {
        across += gap;
        ++across_n;
      }
    }
  }
  within /= static_cast<double>(within_n);
  across /= static_cast<double>(across_n);
  EXPECT_LT(within, 0.5 * across);
}

TEST(GlobalTest, BalancedPerClass) {
  FederatedDataConfig config;
  config.spec = DatasetCatalog::ham10000();
  config.num_parties = 5;
  config.samples_per_party = 10;
  config.test_per_class = 25;
  const auto data = build_federated_data(config);
  const auto counts = flips::data::label_distribution(data.global_test);
  for (const double c : counts) {
    EXPECT_DOUBLE_EQ(c, 25.0);
  }
}

TEST(Drift, RotatesAffectedPartiesOnly) {
  FederatedDataConfig config;
  config.spec = DatasetCatalog::ecg();
  config.num_parties = 30;
  config.samples_per_party = 60;
  config.seed = 5;
  const auto data = build_federated_data(config);

  flips::data::DriftConfig drift;
  drift.affected_fraction = 0.5;
  drift.label_rotation = 2;
  drift.seed = 17;
  const auto drifted =
      apply_label_drift(config.spec, data.party_data, drift);

  ASSERT_EQ(drifted.party_data.size(), data.party_data.size());
  EXPECT_GT(drifted.mean_shift, 0.0);

  std::size_t changed = 0;
  for (std::size_t p = 0; p < data.party_data.size(); ++p) {
    if (data.party_data[p].labels != drifted.party_data[p].labels) {
      ++changed;
      // Rotation is a permutation: total count is preserved.
      EXPECT_EQ(drifted.party_data[p].size(), data.party_data[p].size());
    }
  }
  EXPECT_EQ(changed, 15u);

  flips::data::DriftConfig none = drift;
  none.affected_fraction = 0.0;
  const auto unchanged =
      apply_label_drift(config.spec, data.party_data, none);
  EXPECT_DOUBLE_EQ(unchanged.mean_shift, 0.0);
}

TEST(ImagePatchGenerator, ShapesAndLabels) {
  flips::data::ImagePatchGenerator gen(8, 3, flips::common::Rng(4));
  const auto batch = gen.sample(10);
  ASSERT_EQ(batch.features.size(), 10u);
  ASSERT_EQ(batch.labels.size(), 10u);
  for (const auto& img : batch.features) {
    EXPECT_EQ(img.size(), 64u);
  }
  for (const auto label : batch.labels) {
    EXPECT_LT(label, 3u);
  }
}

}  // namespace
