// Selector unit behaviour: cohort invariants, FLIPS cluster coverage
// and within-cluster balance, over-provisioning, and factory wiring.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "ctrl/membership_view.h"
#include "selection/baselines.h"
#include "selection/factory.h"
#include "selection/flips_selector.h"
#include "selection/random_selector.h"

namespace {

using flips::fl::PartyFeedback;
using flips::select::SelectorContext;
using flips::select::SelectorKind;

std::vector<PartyFeedback> all_respond(
    const std::vector<std::size_t>& cohort) {
  std::vector<PartyFeedback> feedback(cohort.size());
  for (std::size_t i = 0; i < cohort.size(); ++i) {
    feedback[i].party_id = cohort[i];
    feedback[i].responded = true;
    feedback[i].num_samples = 50;
    feedback[i].mean_loss = 1.0;
    feedback[i].loss_rms = 1.1;
    feedback[i].delta.assign(16, 0.01 * static_cast<double>(cohort[i] + 1));
  }
  return feedback;
}

SelectorContext make_context(std::size_t n, std::size_t k) {
  SelectorContext ctx;
  ctx.num_parties = n;
  ctx.seed = 17;
  ctx.cluster_of.resize(n);
  for (std::size_t p = 0; p < n; ++p) ctx.cluster_of[p] = p % k;
  ctx.num_clusters = k;
  ctx.latencies.assign(n, 1.0);
  for (std::size_t p = 0; p < n; ++p) {
    ctx.latencies[p] = 1.0 + static_cast<double>(p % 4);
  }
  ctx.label_distributions.assign(n, {1.0, 2.0, 3.0});
  return ctx;
}

TEST(AllSelectors, CohortsAreValidAndDuplicateFree) {
  const auto ctx = make_context(40, 8);
  for (const auto kind :
       {SelectorKind::kRandom, SelectorKind::kFlips, SelectorKind::kOort,
        SelectorKind::kGradClus, SelectorKind::kTifl,
        SelectorKind::kPowerOfChoice, SelectorKind::kFedCbs}) {
    auto selector = flips::select::make_selector(kind, ctx);
    for (std::size_t round = 1; round <= 10; ++round) {
      const auto cohort = selector->select(round, 8);
      EXPECT_GE(cohort.size(), 8u) << flips::select::to_string(kind);
      std::set<std::size_t> unique(cohort.begin(), cohort.end());
      EXPECT_EQ(unique.size(), cohort.size())
          << "duplicates from " << flips::select::to_string(kind);
      for (const auto p : cohort) {
        EXPECT_LT(p, 40u);
      }
      selector->report_round(round, all_respond(cohort));
    }
  }
}

TEST(RandomSelector, ExactCohortSizeAndEventualCoverage) {
  flips::select::RandomSelector selector(20, 3);
  std::set<std::size_t> seen;
  for (std::size_t round = 1; round <= 30; ++round) {
    const auto cohort = selector.select(round, 5);
    EXPECT_EQ(cohort.size(), 5u);
    seen.insert(cohort.begin(), cohort.end());
  }
  EXPECT_EQ(seen.size(), 20u);
}

TEST(FlipsSelector, EveryClusterRepresentedEachRound) {
  // 4 clusters, Nr = 8 => every cluster must contribute exactly 2.
  std::vector<std::size_t> cluster_of(24);
  for (std::size_t p = 0; p < 24; ++p) cluster_of[p] = p % 4;
  flips::select::FlipsSelector selector(cluster_of, 4, {});
  for (std::size_t round = 1; round <= 12; ++round) {
    const auto cohort = selector.select(round, 8);
    ASSERT_EQ(cohort.size(), 8u);
    std::vector<std::size_t> per_cluster(4, 0);
    for (const auto p : cohort) ++per_cluster[cluster_of[p]];
    for (const auto count : per_cluster) {
      EXPECT_EQ(count, 2u);
    }
    selector.report_round(round, all_respond(cohort));
  }
}

TEST(FlipsSelector, WithinClusterPicksAreBalanced) {
  std::vector<std::size_t> cluster_of(30);
  for (std::size_t p = 0; p < 30; ++p) cluster_of[p] = p % 3;
  flips::select::FlipsSelector selector(cluster_of, 3, {});
  std::vector<std::size_t> counts(30, 0);
  for (std::size_t round = 1; round <= 40; ++round) {
    for (const auto p : selector.select(round, 6)) ++counts[p];
  }
  // 40 rounds x 2 picks per 10-member cluster => everyone picked 8x.
  for (const auto count : counts) {
    EXPECT_EQ(count, 8u);
  }
}

TEST(FlipsSelector, SmallClustersGetPickedMoreOften) {
  // Cluster 0 has 2 members, cluster 1 has 18: equal cluster slots
  // means the small cluster's parties are selected far more often.
  std::vector<std::size_t> cluster_of(20, 1);
  cluster_of[0] = 0;
  cluster_of[1] = 0;
  flips::select::FlipsSelector selector(cluster_of, 2, {});
  std::vector<std::size_t> counts(20, 0);
  for (std::size_t round = 1; round <= 30; ++round) {
    for (const auto p : selector.select(round, 4)) ++counts[p];
  }
  EXPECT_GT(counts[0], 2 * counts[5]);
}

TEST(FlipsSelector, OverprovisionsAfterStragglers) {
  std::vector<std::size_t> cluster_of(40);
  for (std::size_t p = 0; p < 40; ++p) cluster_of[p] = p % 4;
  flips::select::FlipsSelectorConfig config;
  config.overprovision = true;
  flips::select::FlipsSelector selector(cluster_of, 4, config);

  auto cohort = selector.select(1, 8);
  EXPECT_EQ(cohort.size(), 8u);
  // Report 25% straggling for a few rounds.
  for (std::size_t round = 1; round <= 5; ++round) {
    auto feedback = all_respond(cohort);
    for (std::size_t i = 0; i < feedback.size(); i += 4) {
      feedback[i].responded = false;
    }
    selector.report_round(round, feedback);
    cohort = selector.select(round + 1, 8);
  }
  EXPECT_GT(selector.observed_straggle_rate(), 0.1);
  EXPECT_GT(cohort.size(), 8u);

  flips::select::FlipsSelectorConfig off = config;
  off.overprovision = false;
  flips::select::FlipsSelector plain(cluster_of, 4, off);
  auto plain_cohort = plain.select(1, 8);
  for (std::size_t round = 1; round <= 5; ++round) {
    auto feedback = all_respond(plain_cohort);
    for (std::size_t i = 0; i < feedback.size(); i += 4) {
      feedback[i].responded = false;
    }
    plain.report_round(round, feedback);
    plain_cohort = plain.select(round + 1, 8);
  }
  EXPECT_EQ(plain_cohort.size(), 8u);
}

TEST(FlipsSelector, ConsumeRebindsOnEpochChangePreservingCounts) {
  // 2 clusters over 12 parties; run a few rounds to accumulate counts.
  std::vector<std::size_t> cluster_of(12);
  for (std::size_t p = 0; p < 12; ++p) cluster_of[p] = p % 2;
  flips::select::FlipsSelector selector(cluster_of, 2, {});
  for (std::size_t round = 1; round <= 6; ++round) {
    selector.select(round, 4);
  }
  const std::vector<std::size_t> counts = selector.selection_counts();
  std::size_t total = 0;
  for (const std::size_t c : counts) total += c;
  EXPECT_EQ(total, 24u);  // 6 rounds x 4 picks
  EXPECT_EQ(selector.membership_epoch(), 0u);

  // Control-plane epoch 1: re-partition into 3 clusters and add 2
  // late-joining parties.
  flips::ctrl::MembershipView view;
  view.epoch = 1;
  view.k = 3;
  view.cluster_of.resize(14);
  for (std::size_t p = 0; p < 14; ++p) view.cluster_of[p] = p % 3;
  selector.consume(view);
  EXPECT_EQ(selector.membership_epoch(), 1u);

  // Fairness counts survived the heap rebuild; newcomers start at 0.
  const auto& after = selector.selection_counts();
  ASSERT_EQ(after.size(), 14u);
  for (std::size_t p = 0; p < 12; ++p) {
    EXPECT_EQ(after[p], counts[p]);
  }
  EXPECT_EQ(after[12], 0u);
  EXPECT_EQ(after[13], 0u);

  // Same epoch again: a no-op (counts untouched, no rebind).
  selector.consume(view);
  EXPECT_EQ(selector.selection_counts(), after);

  // New membership actually steers selection: with 3 clusters and
  // Nr = 6, every new cluster contributes exactly 2 parties.
  const auto cohort = selector.select(7, 6);
  ASSERT_EQ(cohort.size(), 6u);
  std::vector<std::size_t> per_cluster(3, 0);
  for (const std::size_t p : cohort) ++per_cluster[view.cluster_of[p]];
  for (const std::size_t count : per_cluster) {
    EXPECT_EQ(count, 2u);
  }
  // And the least-selected newcomers are picked first in their
  // clusters (they start with zero history).
  EXPECT_NE(std::find(cohort.begin(), cohort.end(), 12u), cohort.end());
  EXPECT_NE(std::find(cohort.begin(), cohort.end(), 13u), cohort.end());
}

TEST(OortSelector, ConcentratesOnHighLossParties) {
  const std::size_t n = 20;
  flips::select::OortSelector selector(n, {}, 100, 5);
  // Parties 0-3 report much higher loss than the rest.
  std::vector<std::size_t> counts(n, 0);
  for (std::size_t round = 1; round <= 60; ++round) {
    const auto cohort = selector.select(round, 5);
    for (const auto p : cohort) ++counts[p];
    std::vector<PartyFeedback> feedback = all_respond(cohort);
    for (auto& fb : feedback) {
      fb.loss_rms = fb.party_id < 4 ? 5.0 : 0.2;
    }
    selector.report_round(round, feedback);
  }
  double high = 0.0;
  double low = 0.0;
  for (std::size_t p = 0; p < n; ++p) {
    (p < 4 ? high : low) += static_cast<double>(counts[p]);
  }
  // Per-party average picks must favour the high-loss group clearly.
  EXPECT_GT(high / 4.0, 1.5 * low / 16.0);
}

TEST(Factory, ToStringCoversAllKinds) {
  EXPECT_STREQ(flips::select::to_string(SelectorKind::kRandom), "random");
  EXPECT_STREQ(flips::select::to_string(SelectorKind::kFlips), "flips");
  EXPECT_STREQ(flips::select::to_string(SelectorKind::kOort), "oort");
  EXPECT_STREQ(flips::select::to_string(SelectorKind::kGradClus),
               "gradclus");
  EXPECT_STREQ(flips::select::to_string(SelectorKind::kTifl), "tifl");
  EXPECT_STREQ(flips::select::to_string(SelectorKind::kPowerOfChoice),
               "pow-d");
  EXPECT_STREQ(flips::select::to_string(SelectorKind::kFedCbs), "fed-cbs");
}

TEST(Factory, FlipsWithoutClustersDegradesGracefully) {
  SelectorContext ctx;
  ctx.num_parties = 10;
  ctx.seed = 2;
  auto selector = flips::select::make_selector(SelectorKind::kFlips, ctx);
  const auto cohort = selector->select(1, 4);
  EXPECT_EQ(cohort.size(), 4u);
}

TEST(Factory, StringRegistryRoundTripsEveryName) {
  const auto& names = flips::select::selector_names();
  EXPECT_EQ(names.size(), 7u);
  SelectorContext ctx;
  ctx.num_parties = 10;
  ctx.seed = 2;
  for (const std::string_view name : names) {
    const auto kind = flips::select::selector_kind_from_name(name);
    EXPECT_EQ(flips::select::to_string(kind), name);
    auto selector = flips::select::make_selector(name, ctx);
    ASSERT_NE(selector, nullptr);
    EXPECT_EQ(selector->name(), name);
  }
}

TEST(Factory, UnknownNameFailsFastListingRegisteredNames) {
  SelectorContext ctx;
  ctx.num_parties = 4;
  try {
    (void)flips::select::make_selector("best-selector", ctx);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("best-selector"), std::string::npos);
    // The error enumerates every registered name.
    for (const std::string_view name : flips::select::selector_names()) {
      EXPECT_NE(message.find(name), std::string::npos) << name;
    }
  }
}

}  // namespace
