// FederationSession API: step-wise advance() vs the legacy
// FlJob::run() shim (bit-identity across seeds/threads/codecs),
// observer callback ordering under a 4-thread worker pool, party
// ownership semantics, and SessionPool's per-session bit-identity
// against solo execution — including unequal-length tenants, where
// the round-robin must skip the finished session without perturbing
// the survivor, and the StepResult/tenant-name accounting the serving
// front end drives.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <memory>

#include "cluster/kmeans.h"
#include "common/stats.h"
#include "data/federated.h"
#include "fl/job.h"
#include "fl/session.h"
#include "fl/session_pool.h"
#include "selection/factory.h"

namespace {

using flips::fl::FederationSession;
using flips::fl::FlJob;
using flips::fl::FlJobConfig;
using flips::fl::FlJobResult;
using flips::fl::Party;
using flips::fl::PartyProfile;
using flips::fl::RoundRecord;

struct TinyFederation {
  std::vector<Party> parties;
  flips::data::Dataset test;
  flips::select::SelectorContext context;
};

TinyFederation build_tiny(std::size_t num_parties, double alpha,
                          std::size_t clusters, std::uint64_t seed) {
  flips::data::FederatedDataConfig dc;
  dc.spec = flips::data::DatasetCatalog::ecg();
  dc.num_parties = num_parties;
  dc.samples_per_party = 40;
  dc.alpha = alpha;
  dc.test_per_class = 40;
  dc.seed = seed;
  const auto data = flips::data::build_federated_data(dc);

  TinyFederation fed;
  for (std::size_t p = 0; p < data.party_data.size(); ++p) {
    fed.parties.emplace_back(p, data.party_data[p], PartyProfile{});
  }
  fed.test = data.global_test;

  std::vector<flips::cluster::Point> points;
  for (const auto& ld : data.label_distributions) {
    auto point = flips::common::normalized(ld);
    for (auto& v : point) v = std::sqrt(v);
    points.push_back(std::move(point));
  }
  flips::cluster::KMeansConfig kc;
  kc.k = clusters;
  kc.restarts = 3;
  flips::common::Rng rng(seed ^ 0xC1);
  fed.context.num_parties = num_parties;
  fed.context.seed = seed ^ 0x5E1E;
  fed.context.cluster_of =
      flips::cluster::kmeans(points, kc, rng).assignments;
  fed.context.num_clusters = kc.k;
  return fed;
}

FlJobConfig tiny_config(std::size_t rounds, std::size_t nr,
                        std::uint64_t seed) {
  FlJobConfig config;
  config.rounds = rounds;
  config.parties_per_round = nr;
  config.local.epochs = 2;
  config.local.batch_size = 16;
  config.local.sgd.learning_rate = 0.05;
  config.server.optimizer = flips::fl::ServerOpt::kFedYogi;
  config.server.learning_rate = 0.05;
  config.eval_every = 2;
  config.seed = seed;
  return config;
}

flips::ml::Sequential tiny_model(std::uint64_t seed) {
  flips::common::Rng rng(seed ^ 0x30DE);
  return flips::ml::ModelFactory::mlp(32, 8, 5, rng);
}

void expect_same_result(const FlJobResult& a, const FlJobResult& b) {
  EXPECT_EQ(a.final_parameters, b.final_parameters);
  EXPECT_EQ(a.peak_accuracy, b.peak_accuracy);
  EXPECT_EQ(a.total_bytes, b.total_bytes);
  EXPECT_EQ(a.upload_bytes, b.upload_bytes);
  EXPECT_EQ(a.download_bytes, b.download_bytes);
  EXPECT_EQ(a.total_time_s, b.total_time_s);
  EXPECT_EQ(a.fairness.jain_index, b.fairness.jain_index);
  EXPECT_EQ(a.coverage_round, b.coverage_round);
  EXPECT_EQ(a.rounds_to_target, b.rounds_to_target);
  EXPECT_EQ(a.time_to_target_s, b.time_to_target_s);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t r = 0; r < a.history.size(); ++r) {
    EXPECT_EQ(a.history[r].balanced_accuracy,
              b.history[r].balanced_accuracy);
    EXPECT_EQ(a.history[r].mean_train_loss, b.history[r].mean_train_loss);
    EXPECT_EQ(a.history[r].round_time_s, b.history[r].round_time_s);
    EXPECT_EQ(a.history[r].selected, b.history[r].selected);
    EXPECT_EQ(a.history[r].responded, b.history[r].responded);
    EXPECT_EQ(a.history[r].upload_bytes, b.history[r].upload_bytes);
    EXPECT_EQ(a.history[r].download_bytes, b.history[r].download_bytes);
  }
}

/// Step-wise sessions must reproduce the legacy blocking driver
/// bit-for-bit — across thread counts and wire codecs (the lossy
/// codecs exercise the per-party RNG + error-feedback state the
/// session now owns).
TEST(FederationSession, StepwiseMatchesLegacyRunBitForBit) {
  const auto fed = build_tiny(14, 0.3, 4, 91);
  for (const auto codec :
       {flips::net::Codec::kDense64, flips::net::Codec::kQuant8}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      auto config = tiny_config(8, 4, 91);
      config.codec.codec = codec;
      config.threads = threads;
      config.target_accuracy = 0.5;

      FlJob job(config, fed.parties, fed.test, tiny_model(91),
                flips::select::make_selector(
                    flips::select::SelectorKind::kFlips, fed.context));
      const FlJobResult legacy = job.run();

      FederationSession session(
          config, fed.parties, fed.test, tiny_model(91),
          flips::select::make_selector(flips::select::SelectorKind::kFlips,
                                       fed.context));
      std::size_t stepped = 0;
      while (!session.done()) {
        const RoundRecord& record = session.advance();
        EXPECT_EQ(record.round, ++stepped);
      }
      EXPECT_EQ(stepped, config.rounds);
      EXPECT_THROW(session.advance(), std::logic_error);
      expect_same_result(legacy, session.result());
    }
  }
}

/// result() is a snapshot: calling it mid-run must not perturb the
/// remaining rounds.
TEST(FederationSession, MidRunResultSnapshotIsNonDestructive) {
  const auto fed = build_tiny(10, 0.3, 3, 17);
  const auto config = tiny_config(6, 3, 17);

  FederationSession plain(config, fed.parties, fed.test, tiny_model(17),
                          flips::select::make_selector(
                              flips::select::SelectorKind::kRandom,
                              fed.context));
  while (!plain.done()) plain.advance();

  FederationSession probed(config, fed.parties, fed.test, tiny_model(17),
                           flips::select::make_selector(
                               flips::select::SelectorKind::kRandom,
                               fed.context));
  while (!probed.done()) {
    probed.advance();
    const FlJobResult snapshot = probed.result();
    EXPECT_EQ(snapshot.history.size(), probed.rounds_completed());
  }
  expect_same_result(plain.result(), probed.result());
}

/// Owning sessions must not dangle when the source vector dies — the
/// bug class the legacy const-ref member invited.
TEST(FederationSession, OwnedPartiesSurviveSourceDestruction) {
  auto fed = build_tiny(10, 0.3, 3, 23);
  const auto config = tiny_config(4, 3, 23);

  auto session = [&] {
    std::vector<Party> doomed = fed.parties;  // session takes a copy
    return std::make_unique<FederationSession>(
        config, std::move(doomed), fed.test, tiny_model(23),
        flips::select::make_selector(flips::select::SelectorKind::kRandom,
                                     fed.context));
  }();

  FederationSession reference(config, fed.parties, fed.test,
                              tiny_model(23),
                              flips::select::make_selector(
                                  flips::select::SelectorKind::kRandom,
                                  fed.context));
  while (!session->done()) session->advance();
  while (!reference.done()) reference.advance();
  expect_same_result(reference.result(), session->result());
}

/// Records the observer event stream for ordering checks.
struct EventLog final : flips::fl::RoundObserver {
  struct Event {
    char kind;  ///< 'b'egin / 'p'arty / 'e'nd
    std::size_t round;
  };
  std::vector<Event> events;
  int* sequence = nullptr;      ///< shared registration-order probe
  std::vector<int> seen_order;  ///< value of *sequence at each begin

  void on_round_begin(std::size_t round,
                      flips::fl::ParticipantSelector&) override {
    if (sequence != nullptr) seen_order.push_back((*sequence)++);
    events.push_back({'b', round});
  }
  void on_party_feedback(std::size_t round,
                         const flips::fl::PartyFeedback& fb) override {
    EXPECT_TRUE(fb.party_id < 1000u);
    events.push_back({'p', round});
  }
  void on_round_end(std::size_t round, const RoundRecord& record) override {
    EXPECT_EQ(record.round, round);
    events.push_back({'e', round});
  }
};

/// Observer contract under a threaded pool: callbacks fire on the
/// stepping thread, strictly begin → per-party (cohort size of them) →
/// end per round, and multiple observers fire in registration order.
TEST(FederationSession, ObserverOrderingUnderFourThreads) {
  const auto fed = build_tiny(12, 0.3, 4, 37);
  auto config = tiny_config(5, 4, 37);
  config.threads = 4;

  FederationSession session(config, fed.parties, fed.test, tiny_model(37),
                            flips::select::make_selector(
                                flips::select::SelectorKind::kFlips,
                                fed.context));
  int sequence = 0;
  EventLog first;
  EventLog second;
  first.sequence = &sequence;
  second.sequence = &sequence;
  session.add_observer(&first);
  session.add_observer(&second);

  while (!session.done()) session.advance();

  for (const EventLog* log : {&first, &second}) {
    std::size_t i = 0;
    const auto& events = log->events;
    for (std::size_t round = 1; round <= config.rounds; ++round) {
      ASSERT_LT(i, events.size());
      EXPECT_EQ(events[i].kind, 'b');
      EXPECT_EQ(events[i].round, round);
      ++i;
      std::size_t parties = 0;
      while (i < events.size() && events[i].kind == 'p') {
        EXPECT_EQ(events[i].round, round);
        ++parties;
        ++i;
      }
      EXPECT_EQ(parties, session.result().history[round - 1].selected);
      ASSERT_LT(i, events.size());
      EXPECT_EQ(events[i].kind, 'e');
      EXPECT_EQ(events[i].round, round);
      ++i;
    }
    EXPECT_EQ(i, events.size());
  }
  // Registration order: within every round-begin, `first` must tick
  // the shared counter before `second` (even sequence values).
  ASSERT_EQ(first.seen_order.size(), second.seen_order.size());
  for (std::size_t r = 0; r < first.seen_order.size(); ++r) {
    EXPECT_EQ(first.seen_order[r] + 1, second.seen_order[r]);
  }
}

/// Records phase telemetry (fl/observer.h on_phase) for the emission
/// contract checks.
struct PhaseLog final : flips::fl::RoundObserver {
  struct Entry {
    std::size_t round;
    flips::fl::SessionPhase phase;
  };
  std::vector<Entry> phases;
  std::vector<std::size_t> phases_at_round_end;

  void on_phase(std::size_t round,
                const flips::fl::PhaseRecord& record) override {
    EXPECT_LE(record.start_ns, record.end_ns);
    EXPECT_GE(record.sim_time_s, 0.0);
    phases.push_back({round, record.phase});
  }
  void on_round_end(std::size_t round, const RoundRecord& record) override {
    EXPECT_EQ(record.round, round);
    phases_at_round_end.push_back(phases.size());
  }
};

/// Sync mode: every round emits exactly the five phases in pipeline
/// order — select → train_cohort → fold → server_step → eval — and all
/// of a round's phases precede its on_round_end.
TEST(FederationSession, SyncRoundsEmitFivePhasesInOrder) {
  using flips::fl::SessionPhase;
  const auto fed = build_tiny(10, 0.3, 3, 41);
  const auto config = tiny_config(4, 3, 41);

  FederationSession session(config, fed.parties, fed.test, tiny_model(41),
                            flips::select::make_selector(
                                flips::select::SelectorKind::kFlips,
                                fed.context));
  PhaseLog log;
  session.add_observer(&log);
  while (!session.done()) session.advance();

  ASSERT_EQ(log.phases.size(),
            flips::fl::kNumSessionPhases * config.rounds);
  for (std::size_t round = 1; round <= config.rounds; ++round) {
    for (std::size_t k = 0; k < flips::fl::kNumSessionPhases; ++k) {
      const auto& entry =
          log.phases[(round - 1) * flips::fl::kNumSessionPhases + k];
      EXPECT_EQ(entry.round, round);
      EXPECT_EQ(entry.phase, static_cast<SessionPhase>(k));
    }
    // All of round r's phases fired before its on_round_end.
    ASSERT_LT(round - 1, log.phases_at_round_end.size());
    EXPECT_EQ(log.phases_at_round_end[round - 1],
              flips::fl::kNumSessionPhases * round);
  }
}

/// Async mode maps its event loop onto the same phase vocabulary:
/// never kSelect (selection happens at dispatch refill), but every
/// other phase appears, and each server step closes with kEval.
TEST(FederationSession, AsyncStepsEmitPhasesWithoutSelect) {
  using flips::fl::SessionPhase;
  const auto fed = build_tiny(10, 0.3, 3, 43);
  auto config = tiny_config(8, 3, 43);
  config.mode = flips::fl::FederationMode::kAsync;
  config.async.buffer_k = 2;
  config.async.max_staleness = 4;

  FederationSession session(config, fed.parties, fed.test, tiny_model(43),
                            flips::select::make_selector(
                                flips::select::SelectorKind::kFlips,
                                fed.context));
  PhaseLog log;
  session.add_observer(&log);
  while (!session.done()) session.advance();

  std::array<std::size_t, flips::fl::kNumSessionPhases> seen{};
  for (const auto& entry : log.phases) {
    ASSERT_GE(entry.round, 1u);
    seen[static_cast<std::size_t>(entry.phase)]++;
  }
  EXPECT_EQ(seen[static_cast<std::size_t>(SessionPhase::kSelect)], 0u);
  EXPECT_GT(seen[static_cast<std::size_t>(SessionPhase::kTrainCohort)], 0u);
  EXPECT_GT(seen[static_cast<std::size_t>(SessionPhase::kFold)], 0u);
  EXPECT_GT(seen[static_cast<std::size_t>(SessionPhase::kServerStep)], 0u);
  EXPECT_GT(seen[static_cast<std::size_t>(SessionPhase::kEval)], 0u);
}

/// Interleaving sessions through a SessionPool over one shared worker
/// pool must leave every session's result bit-identical to running it
/// alone — the multi-tenant isolation contract.
TEST(SessionPool, InterleavedSessionsBitIdenticalToSolo) {
  const auto fed_a = build_tiny(12, 0.2, 4, 101);
  const auto fed_b = build_tiny(10, 0.5, 3, 202);

  auto config_a = tiny_config(6, 4, 101);
  auto config_b = tiny_config(9, 3, 202);  // uneven lengths on purpose
  config_b.codec.codec = flips::net::Codec::kQuant8;

  auto make_a = [&](flips::common::ThreadPool* pool) {
    return std::make_unique<FederationSession>(
        config_a, fed_a.parties, fed_a.test, tiny_model(101),
        flips::select::make_selector(flips::select::SelectorKind::kFlips,
                                     fed_a.context),
        pool);
  };
  auto make_b = [&](flips::common::ThreadPool* pool) {
    return std::make_unique<FederationSession>(
        config_b, fed_b.parties, fed_b.test, tiny_model(202),
        flips::select::make_selector(flips::select::SelectorKind::kRandom,
                                     fed_b.context),
        pool);
  };

  // Solo references (own pools, default threads).
  auto solo_a = make_a(nullptr);
  auto solo_b = make_b(nullptr);
  while (!solo_a->done()) solo_a->advance();
  while (!solo_b->done()) solo_b->advance();

  // Interleaved over one shared 4-worker pool.
  flips::common::ThreadPool workers(4);
  flips::fl::SessionPool pool;
  const std::size_t a = pool.add(make_a(&workers));
  const std::size_t b = pool.add(make_b(&workers));
  pool.run_all();
  EXPECT_TRUE(pool.done());
  EXPECT_EQ(pool.rounds_stepped(),
            config_a.rounds + config_b.rounds);

  expect_same_result(solo_a->result(), pool.session(a).result());
  expect_same_result(solo_b->result(), pool.session(b).result());
}

/// Round-robin stepping: with two unfinished sessions the scheduler
/// alternates; once the shorter one drains, the longer one gets every
/// remaining slot. StepResult reports which round ran and flags the
/// step that finished each session.
TEST(SessionPool, RoundRobinStepOrderAndStepResults) {
  const auto fed = build_tiny(8, 0.4, 3, 55);
  auto short_config = tiny_config(2, 2, 55);
  auto long_config = tiny_config(4, 2, 55);

  flips::common::ThreadPool workers(1);
  flips::fl::SessionPool pool;
  for (const auto* config : {&short_config, &long_config}) {
    pool.add(std::make_unique<FederationSession>(
        *config, fed.parties, fed.test, tiny_model(55),
        flips::select::make_selector(flips::select::SelectorKind::kRandom,
                                     fed.context),
        &workers));
  }

  std::vector<std::size_t> order;
  std::vector<std::size_t> rounds;
  std::vector<bool> finished;
  while (const auto step = pool.step()) {
    order.push_back(step->session_index);
    rounds.push_back(step->round);
    finished.push_back(step->finished);
  }
  const std::vector<std::size_t> expected_order{0, 1, 0, 1, 1, 1};
  const std::vector<std::size_t> expected_rounds{1, 1, 2, 2, 3, 4};
  const std::vector<bool> expected_finished{false, false, true,
                                            false, false, true};
  EXPECT_EQ(order, expected_order);
  EXPECT_EQ(rounds, expected_rounds);
  EXPECT_EQ(finished, expected_finished);
  EXPECT_TRUE(pool.done());
  EXPECT_FALSE(pool.step());
}

/// Unequal-length tenants driven through step(index) — the serving
/// scheduler's entry point: the short tenant finishing early must not
/// perturb the survivor (bit-identical to its solo run), and stepping
/// a finished tenant reports nullopt instead of touching it.
TEST(SessionPool, FinishedTenantSkippedWithoutPerturbingSurvivor) {
  const auto fed = build_tiny(10, 0.3, 3, 77);
  auto short_config = tiny_config(3, 3, 77);
  auto long_config = tiny_config(9, 3, 77);
  long_config.codec.codec = flips::net::Codec::kQuant8;

  auto make_long = [&](flips::common::ThreadPool* pool) {
    return std::make_unique<FederationSession>(
        long_config, fed.parties, fed.test, tiny_model(77),
        flips::select::make_selector(flips::select::SelectorKind::kFlips,
                                     fed.context),
        pool);
  };

  auto solo = make_long(nullptr);
  while (!solo->done()) solo->advance();

  flips::common::ThreadPool workers(2);
  flips::fl::SessionPool pool;
  const std::size_t brief = pool.add(
      std::make_unique<FederationSession>(
          short_config, fed.parties, fed.test, tiny_model(177),
          flips::select::make_selector(flips::select::SelectorKind::kRandom,
                                       fed.context),
          &workers),
      "brief");
  const std::size_t survivor = pool.add(make_long(&workers), "survivor");

  EXPECT_EQ(pool.tenant_name(brief), "brief");
  EXPECT_EQ(pool.find_tenant("survivor"), std::optional(survivor));
  EXPECT_FALSE(pool.find_tenant("nobody"));
  // Duplicate tenant names would alias the server's accounting.
  EXPECT_THROW(pool.add(make_long(&workers), "brief"),
               std::invalid_argument);

  // Interleave by hand: once "brief" drains, stepping it must report
  // nullopt (and run nothing) while "survivor" keeps advancing.
  std::size_t brief_refusals = 0;
  while (!pool.done()) {
    if (!pool.step(brief)) ++brief_refusals;
    pool.step(survivor);
  }
  EXPECT_EQ(brief_refusals, long_config.rounds - short_config.rounds);
  EXPECT_EQ(pool.rounds_stepped(),
            short_config.rounds + long_config.rounds);
  expect_same_result(solo->result(), pool.session(survivor).result());
}

}  // namespace
