// Serving plane: frame decoding on hostile byte streams (truncated /
// oversized / garbage — reject, never crash or over-read), payload
// codec round trips, and end-to-end UDS serving through a real
// Server: multi-tenant bit-identity against in-process runs, session
// lifecycle statuses, and admission control under a flooding tenant.
#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/experiment.h"
#include "common/scenario.h"
#include "net/codec.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace {

using flips::net::Frame;
using flips::net::FrameDecodeResult;
using flips::net::FrameDecoder;
using flips::net::FrameStatus;
using flips::net::FrameType;

// ---------------------------------------------------------------------
// Framing layer.

std::vector<std::uint8_t> wire_image(const Frame& frame) {
  std::vector<std::uint8_t> out;
  flips::net::encode_frame(frame, out);
  return out;
}

TEST(FrameDecoder, RoundTripsFramesFedByteByByte) {
  Frame a;
  a.type = FrameType::kOpenSession;
  a.payload = {1, 2, 3, 4, 5};
  Frame b;
  b.type = FrameType::kStep;
  b.status = FrameStatus::kRejected;  // statuses survive the wire
  auto stream = wire_image(a);
  const auto second = wire_image(b);
  stream.insert(stream.end(), second.begin(), second.end());

  FrameDecoder decoder;
  std::vector<Frame> decoded;
  Frame frame;
  for (const std::uint8_t byte : stream) {
    decoder.feed(&byte, 1);  // worst-case fragmentation
    while (decoder.next(frame) == FrameDecodeResult::kFrame) {
      decoded.push_back(frame);
    }
  }
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0].type, FrameType::kOpenSession);
  EXPECT_EQ(decoded[0].payload, a.payload);
  EXPECT_EQ(decoded[1].type, FrameType::kStep);
  EXPECT_EQ(decoded[1].status, FrameStatus::kRejected);
  EXPECT_TRUE(decoded[1].payload.empty());
}

TEST(FrameDecoder, TruncatedStreamsNeedMoreAndNeverProduceAFrame) {
  Frame full;
  full.type = FrameType::kResult;
  full.payload.assign(100, 0xAB);
  const auto stream = wire_image(full);
  // Every proper prefix — header cut short AND payload cut short —
  // parks the decoder at kNeedMore.
  for (std::size_t cut = 0; cut < stream.size(); ++cut) {
    FrameDecoder decoder;
    decoder.feed(stream.data(), cut);
    Frame frame;
    EXPECT_EQ(decoder.next(frame), FrameDecodeResult::kNeedMore);
  }
}

TEST(FrameDecoder, GarbageMagicIsRejectedAndStays) {
  std::vector<std::uint8_t> garbage(64, 0x5A);
  FrameDecoder decoder;
  decoder.feed(garbage.data(), garbage.size());
  Frame frame;
  EXPECT_EQ(decoder.next(frame), FrameDecodeResult::kError);
  EXPECT_NE(decoder.error().find("magic"), std::string::npos);
  // The verdict is sticky: framing has no resync point, so even a
  // subsequent well-formed frame must not be produced.
  const auto good = wire_image(Frame{});
  decoder.feed(good.data(), good.size());
  EXPECT_EQ(decoder.next(frame), FrameDecodeResult::kError);
}

TEST(FrameDecoder, BadVersionAndBadTypeAreRejected) {
  auto stream = wire_image(Frame{});
  stream[4] = 9;  // version byte
  FrameDecoder decoder;
  decoder.feed(stream.data(), stream.size());
  Frame frame;
  EXPECT_EQ(decoder.next(frame), FrameDecodeResult::kError);

  stream = wire_image(Frame{});
  stream[5] = 0;  // type byte below the valid 1..5 range
  FrameDecoder type_decoder;
  type_decoder.feed(stream.data(), stream.size());
  EXPECT_EQ(type_decoder.next(frame), FrameDecodeResult::kError);
}

TEST(FrameDecoder, OversizedLengthIsRejectedFromTheHeaderAlone) {
  // A hostile length field must be refused BEFORE any payload arrives
  // — the decoder may never buffer toward a 2^32-scale promise.
  auto stream = wire_image(Frame{});
  const std::uint32_t huge =
      static_cast<std::uint32_t>(flips::net::kMaxFramePayload) + 1;
  std::memcpy(stream.data() + 8, &huge, sizeof huge);
  FrameDecoder decoder;
  decoder.feed(stream.data(), flips::net::kFrameHeaderBytes);
  Frame frame;
  EXPECT_EQ(decoder.next(frame), FrameDecodeResult::kError);
  EXPECT_NE(decoder.error().find("payload"), std::string::npos);
}

TEST(FrameEncode, OversizedPayloadThrows) {
  Frame frame;
  frame.payload.resize(flips::net::kMaxFramePayload + 1);
  std::vector<std::uint8_t> out;
  EXPECT_THROW(flips::net::encode_frame(frame, out),
               std::invalid_argument);
}

// ---------------------------------------------------------------------
// Payload codecs.

TEST(ServePayloads, KvRoundTripAndMalformedLines) {
  const flips::serve::KvPairs kv = {
      {"dataset", "ecg"}, {"rounds", "12"}, {"note", ""}};
  flips::serve::KvPairs decoded;
  std::string error;
  ASSERT_TRUE(
      flips::serve::decode_kv(flips::serve::encode_kv(kv), decoded, error));
  EXPECT_EQ(decoded, kv);

  const std::string bad = "no_equals_sign\n";
  EXPECT_FALSE(flips::serve::decode_kv(
      flips::serve::Bytes(bad.begin(), bad.end()), decoded, error));
  EXPECT_NE(error.find("no_equals_sign"), std::string::npos);
}

TEST(ServePayloads, StepReplyFullAndIdOnlyForms) {
  flips::serve::StepReply reply{42, 7, true};
  flips::serve::StepReply decoded;
  ASSERT_TRUE(flips::serve::decode_step_reply(
      flips::serve::encode_step_reply(reply), decoded));
  EXPECT_EQ(decoded.request_id, 42u);
  EXPECT_EQ(decoded.round, 7u);
  EXPECT_TRUE(decoded.finished);

  // Rejections echo just the id (written out-of-band by the reader
  // thread) — the short form must decode, not error.
  ASSERT_TRUE(flips::serve::decode_step_reply(
      flips::serve::encode_step_request(42), decoded));
  EXPECT_EQ(decoded.request_id, 42u);
  EXPECT_FALSE(decoded.finished);

  // Truncated and trailing-garbage payloads are rejected.
  flips::serve::Bytes truncated = {1, 2, 3};
  EXPECT_FALSE(flips::serve::decode_step_reply(truncated, decoded));
  auto padded = flips::serve::encode_step_reply(reply);
  padded.push_back(0);
  EXPECT_FALSE(flips::serve::decode_step_reply(padded, decoded));
}

TEST(ServePayloads, ResultReplyRejectsLyingDimension) {
  const std::vector<double> params = {1.0, -2.5, 3.25};
  auto payload = flips::serve::encode_result_reply(params);
  std::vector<double> decoded;
  ASSERT_TRUE(flips::serve::decode_result_reply(payload, decoded));
  EXPECT_EQ(decoded, params);

  // Inflate the dim header without the bytes to back it: the decoder
  // must refuse rather than allocate or read past the payload.
  payload[0] = 0xFF;
  payload[1] = 0xFF;
  EXPECT_FALSE(flips::serve::decode_result_reply(payload, decoded));
  EXPECT_FALSE(flips::serve::decode_result_reply({1, 2}, decoded));
}

// ---------------------------------------------------------------------
// End-to-end serving over a unix-domain socket.

flips::ScenarioSpec small_spec(std::size_t rounds, std::uint64_t seed) {
  auto spec = flips::scenario_preset("ecg-fedavg");
  spec.parties = 20;
  spec.samples_per_party = 30;
  spec.rounds = rounds;
  spec.threads = 2;
  spec.seed = seed;
  return spec;
}

std::vector<double> solo_parameters(const flips::ScenarioSpec& spec) {
  auto session = flips::bench::make_session(
      flips::to_experiment_config(spec), flips::selector_kind(spec),
      spec.seed);
  while (!session->done()) session->advance();
  return session->result().final_parameters;
}

std::unique_ptr<flips::fl::FederationSession> test_factory(
    const flips::serve::KvPairs& kv, flips::common::ThreadPool* workers,
    std::string* banner) {
  const auto spec = flips::ScenarioSpec::from_key_values(kv);
  *banner = "scenario " + spec.name;
  return flips::bench::make_session(flips::to_experiment_config(spec),
                                    flips::selector_kind(spec), spec.seed,
                                    workers);
}

std::string test_socket_path(const char* tag) {
  return "/tmp/flips_test_serve_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + ".sock";
}

/// Sends one step and blocks for ITS reply (skipping none — the serial
/// window-1 discipline means replies arrive in order).
FrameStatus step_once(flips::serve::Client& client, std::uint64_t id,
                      flips::serve::StepReply& reply) {
  Frame request;
  request.type = FrameType::kStep;
  request.payload = flips::serve::encode_step_request(id);
  const Frame response = client.call(request);
  EXPECT_EQ(response.type, FrameType::kStep);
  EXPECT_TRUE(flips::serve::decode_step_reply(response.payload, reply));
  EXPECT_EQ(reply.request_id, id);
  return response.status;
}

std::vector<double> fetch_result(flips::serve::Client& client) {
  Frame request;
  request.type = FrameType::kResult;
  const Frame response = client.call(request);
  EXPECT_EQ(response.status, FrameStatus::kOk);
  std::vector<double> parameters;
  EXPECT_TRUE(
      flips::serve::decode_result_reply(response.payload, parameters));
  return parameters;
}

TEST(ServeEndToEnd, UnequalTenantsAreBitIdenticalAndLifecycleIsClean) {
  const std::string socket = test_socket_path("e2e");
  flips::serve::ServerConfig config;
  config.uds_path = socket;
  config.worker_threads = 2;
  flips::serve::Server server(config, test_factory);
  server.start();

  const auto brief_spec = small_spec(3, 77);
  const auto long_spec = small_spec(8, 2077);

  flips::serve::Client brief;
  brief.connect_uds(socket);
  EXPECT_NE(brief.hello("brief").find("brief"), std::string::npos);
  brief.open_session(brief_spec.to_key_values());

  flips::serve::Client survivor;
  survivor.connect_uds(socket);
  survivor.hello("survivor");
  survivor.open_session(long_spec.to_key_values());

  // A result fetch before the last round is refused.
  Frame early;
  early.type = FrameType::kResult;
  EXPECT_EQ(survivor.call(early).status, FrameStatus::kNotFinished);

  // Interleave the two tenants; "brief" finishes at round 3 and every
  // further step is kSessionDone — which must not perturb "survivor".
  flips::serve::StepReply reply;
  std::size_t brief_refusals = 0;
  for (std::uint64_t round = 1; round <= 8; ++round) {
    const FrameStatus brief_status = step_once(brief, round, reply);
    if (brief_status == FrameStatus::kSessionDone) {
      ++brief_refusals;
    } else {
      EXPECT_EQ(brief_status, FrameStatus::kOk);
      EXPECT_EQ(reply.round, round);
      EXPECT_EQ(reply.finished, round == 3);
    }
    EXPECT_EQ(step_once(survivor, round, reply), FrameStatus::kOk);
    EXPECT_EQ(reply.finished, round == 8);
  }
  EXPECT_EQ(brief_refusals, 5u);

  // Served results match in-process runs of the same specs bitwise.
  const auto brief_served = fetch_result(brief);
  const auto survivor_served = fetch_result(survivor);
  EXPECT_EQ(brief_served, solo_parameters(brief_spec));
  EXPECT_EQ(survivor_served, solo_parameters(long_spec));

  // A second connection may not reuse a registered tenant name.
  flips::serve::Client dup;
  dup.connect_uds(socket);
  EXPECT_THROW(dup.hello("survivor"), std::runtime_error);

  server.drain();
  const auto stats = server.stats();
  EXPECT_EQ(stats.sessions_opened, 2u);
  EXPECT_EQ(stats.steps, 3u + 8u);
  EXPECT_EQ(stats.bad_frames, 0u);
}

TEST(ServeEndToEnd, StepWithoutHelloOrSessionIsRefused) {
  const std::string socket = test_socket_path("refuse");
  flips::serve::ServerConfig config;
  config.uds_path = socket;
  config.worker_threads = 1;
  flips::serve::Server server(config, test_factory);
  server.start();

  flips::serve::Client client;
  client.connect_uds(socket);
  Frame step;
  step.type = FrameType::kStep;
  step.payload = flips::serve::encode_step_request(1);
  EXPECT_EQ(client.call(step).status, FrameStatus::kNoSession);

  client.hello("t");
  flips::serve::StepReply reply;
  EXPECT_EQ(step_once(client, 2, reply), FrameStatus::kNoSession);

  // A scenario that fails validation is kBadScenario, not a session.
  Frame open;
  open.type = FrameType::kOpenSession;
  open.payload = flips::serve::encode_kv({{"selector", "best"}});
  EXPECT_EQ(client.call(open).status, FrameStatus::kBadScenario);

  // Raw garbage bytes (bad magic) elicit a kBadFrame reply followed by
  // a close — and the server keeps serving other connections.
  {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socket.c_str(),
                 sizeof addr.sun_path - 1);
    ASSERT_EQ(
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
        0);
    const std::vector<std::uint8_t> garbage(32, 0x77);
    ASSERT_EQ(::send(fd, garbage.data(), garbage.size(), 0),
              static_cast<ssize_t>(garbage.size()));
    // Read until EOF: expect exactly one well-formed kBadFrame frame.
    FrameDecoder decoder;
    std::uint8_t chunk[512];
    std::vector<Frame> replies;
    for (;;) {
      const ssize_t got = ::recv(fd, chunk, sizeof chunk, 0);
      if (got <= 0) break;
      decoder.feed(chunk, static_cast<std::size_t>(got));
      Frame frame;
      while (decoder.next(frame) == FrameDecodeResult::kFrame) {
        replies.push_back(frame);
      }
    }
    ::close(fd);
    ASSERT_EQ(replies.size(), 1u);
    EXPECT_EQ(replies[0].status, FrameStatus::kBadFrame);
  }

  // The original, well-formed connection still works after the vandal.
  EXPECT_EQ(step_once(client, 3, reply), FrameStatus::kNoSession);

  server.drain();
  EXPECT_EQ(server.stats().bad_frames, 1u);
  EXPECT_GE(server.stats().frames, 4u);
}

TEST(ServeEndToEnd, FloodingTenantIsRejectedWhileVictimStaysBounded) {
  const std::string socket = test_socket_path("flood");
  flips::serve::ServerConfig config;
  config.uds_path = socket;
  config.worker_threads = 2;
  config.max_inflight_per_tenant = 2;
  flips::serve::Server server(config, test_factory);
  server.start();

  const auto flood_spec = small_spec(6, 11);
  const auto victim_spec = small_spec(6, 9011);

  std::size_t flood_rejections = 0;
  std::size_t flood_steps = 0;
  std::thread flooder([&] {
    flips::serve::Client client;
    client.connect_uds(socket);
    client.hello("flooder");
    client.open_session(flood_spec.to_key_values());
    // Fire a burst far past the admission bound, then keep the
    // pressure on until the session completes.
    std::uint64_t next_id = 1;
    std::size_t outstanding = 0;
    bool finished = false;
    auto pump = [&](const Frame& response) {
      flips::serve::StepReply reply;
      ASSERT_TRUE(
          flips::serve::decode_step_reply(response.payload, reply));
      --outstanding;
      if (response.status == FrameStatus::kRejected) {
        ++flood_rejections;
      } else if (response.status == FrameStatus::kOk) {
        ++flood_steps;
        if (reply.finished) finished = true;
      } else {
        EXPECT_EQ(response.status, FrameStatus::kSessionDone);
        finished = true;
      }
    };
    while (!finished) {
      if (outstanding < 64) {
        Frame request;
        request.type = FrameType::kStep;
        request.payload = flips::serve::encode_step_request(next_id++);
        client.send(request);
        ++outstanding;
        continue;
      }
      pump(client.recv());
    }
    while (outstanding > 0) pump(client.recv());
    EXPECT_EQ(fetch_result(client), solo_parameters(flood_spec));
  });

  // The victim steps serially (window 1) while the flood runs. Its
  // per-step latency stays bounded — generous ceiling, but a starved
  // tenant would block on the flooder's whole 6-round backlog and
  // blow far past it even on a sanitizer build.
  flips::serve::Client victim;
  victim.connect_uds(socket);
  victim.hello("victim");
  victim.open_session(victim_spec.to_key_values());
  double max_latency_s = 0.0;
  flips::serve::StepReply reply;
  for (std::uint64_t round = 1; round <= 6; ++round) {
    const auto start = std::chrono::steady_clock::now();
    ASSERT_EQ(step_once(victim, round, reply), FrameStatus::kOk);
    max_latency_s = std::max(
        max_latency_s,
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count());
  }
  EXPECT_TRUE(reply.finished);
  flooder.join();

  EXPECT_GT(flood_rejections, 0u);
  EXPECT_EQ(flood_steps, 6u);
  EXPECT_LT(max_latency_s, 10.0);
  EXPECT_EQ(fetch_result(victim), solo_parameters(victim_spec));

  server.drain();
  const auto stats = server.stats();
  EXPECT_EQ(stats.rejected, flood_rejections);
  EXPECT_EQ(stats.steps, 12u);
}

// ---------------------------------------------------------------------
// Self-healing lifecycle: mid-frame resets, reconnect-and-replay,
// idle-tenant eviction, and shutdown with a step in flight.

std::size_t open_fd_count() {
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  std::size_t count = 0;
  while (::readdir(dir) != nullptr) ++count;
  ::closedir(dir);
  return count;
}

TEST(ServeEndToEnd, MidFrameResetsLeakNoFdsAndServiceContinues) {
  const std::string socket = test_socket_path("reset");
  flips::serve::ServerConfig config;
  config.uds_path = socket;
  config.worker_threads = 1;
  flips::serve::Server server(config, test_factory);
  server.start();

  flips::serve::Client client;
  client.connect_uds(socket);
  client.hello("steady");
  client.open_session(small_spec(2, 404).to_key_values());

  const std::size_t baseline = open_fd_count();
  // Eight vandals each deliver half a frame, then reset the connection
  // mid-payload. The server must tear each one down completely.
  Frame step;
  step.type = FrameType::kStep;
  step.payload = flips::serve::encode_step_request(99);
  const auto image = wire_image(step);
  for (int vandal = 0; vandal < 8; ++vandal) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socket.c_str(),
                 sizeof addr.sun_path - 1);
    ASSERT_EQ(
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
        0);
    ASSERT_GT(::send(fd, image.data(), image.size() / 2, 0), 0);
    ::close(fd);
  }

  // Reader threads notice EOF and release their fds; allow a grace
  // window, then require the count back at (or below) the baseline.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (open_fd_count() > baseline &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_LE(open_fd_count(), baseline);

  // The well-behaved tenant never noticed.
  flips::serve::StepReply reply;
  EXPECT_EQ(step_once(client, 1, reply), FrameStatus::kOk);
  server.drain();
  EXPECT_EQ(server.stats().steps, 1u);
}

TEST(ServeEndToEnd, ReconnectAndReplayIsBitIdenticalUnderFaults) {
  const std::string socket = test_socket_path("phoenix");
  flips::serve::ServerConfig config;
  config.uds_path = socket;
  config.worker_threads = 2;
  flips::serve::Server server(config, test_factory);
  server.start();

  // A nonzero fault plan rides the wire with the rest of the scenario:
  // the served run below must still match the in-process run bitwise
  // even though the client's connection dies repeatedly.
  auto spec = small_spec(6, 313);
  spec.churn = 1.0;
  spec.fault_rate = 0.10;
  spec.min_quorum = 0.25;

  flips::serve::Client client;
  client.set_retry_policy(
      {.max_attempts = 40, .backoff_base_s = 0.01, .backoff_mult = 1.5});
  client.connect_uds(socket);
  client.hello("phoenix");
  client.open_session(spec.to_key_values());

  // Drive to completion, killing the connection every other success —
  // alternating a clean between-steps close with an in-flight kill
  // (request sent, reply never read: the replayed id may step again
  // server-side, which the fixed round count makes idempotent).
  std::uint64_t next_id = 1;
  std::size_t successes = 0;
  std::size_t kills = 0;
  bool finished = false;
  while (!finished) {
    Frame request;
    request.type = FrameType::kStep;
    request.payload = flips::serve::encode_step_request(next_id++);
    if (successes > 0 && successes % 2 == 0) {
      ++kills;
      if (kills % 2 == 0) {
        try {
          client.send(request);  // in-flight kill: reply is lost
        } catch (const std::runtime_error&) {
        }
      }
      client.close();
    }
    const Frame response = client.call_with_retry(request);
    if (response.status == FrameStatus::kOk) {
      ++successes;
      flips::serve::StepReply reply;
      ASSERT_TRUE(
          flips::serve::decode_step_reply(response.payload, reply));
      finished = reply.finished;
    } else {
      ASSERT_EQ(response.status, FrameStatus::kSessionDone);
      finished = true;
    }
  }
  EXPECT_GE(kills, 2u);

  Frame result;
  result.type = FrameType::kResult;
  const Frame response = client.call_with_retry(result);
  ASSERT_EQ(response.status, FrameStatus::kOk);
  std::vector<double> parameters;
  ASSERT_TRUE(
      flips::serve::decode_result_reply(response.payload, parameters));
  EXPECT_EQ(parameters, solo_parameters(spec));
  server.drain();
}

TEST(ServeEndToEnd, IdleTenantIsEvictedAndTheNameIsReusable) {
  const std::string socket = test_socket_path("evict");
  flips::serve::ServerConfig config;
  config.uds_path = socket;
  config.worker_threads = 1;
  config.tenant_idle_timeout_s = 0.2;
  flips::serve::Server server(config, test_factory);
  server.start();

  const auto spec = small_spec(3, 505);
  {
    flips::serve::Client ghost;
    ghost.connect_uds(socket);
    ghost.hello("ghost");
    ghost.open_session(spec.to_key_values());
    flips::serve::StepReply reply;
    EXPECT_EQ(step_once(ghost, 1, reply), FrameStatus::kOk);
  }  // connection dies with the session mid-run

  // The sweep fires once the tenant sits idle past the timeout.
  flips::serve::Client watcher;
  watcher.connect_uds(socket);
  const std::string want = "flips_serve_evictions_total{tenant=\"ghost\"} 1";
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (watcher.metrics().find(want) == std::string::npos) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "tenant was never evicted";
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  // The evicted slot is gone: the name re-registers as a fresh tenant
  // whose brand-new session runs to a result.
  flips::serve::Client reborn;
  reborn.connect_uds(socket);
  EXPECT_NE(reborn.hello("ghost").find("ghost"), std::string::npos);
  reborn.open_session(spec.to_key_values());
  flips::serve::StepReply reply;
  for (std::uint64_t round = 1; round <= 3; ++round) {
    ASSERT_EQ(step_once(reborn, round, reply), FrameStatus::kOk);
  }
  EXPECT_TRUE(reply.finished);
  EXPECT_EQ(fetch_result(reborn), solo_parameters(spec));
  server.drain();
  EXPECT_EQ(server.stats().sessions_opened, 2u);
}

TEST(ServeEndToEnd, ShutdownWithStepInFlightDrainsCleanly) {
  const std::string socket = test_socket_path("drain");
  flips::serve::ServerConfig config;
  config.uds_path = socket;
  config.worker_threads = 1;
  flips::serve::Server server(config, test_factory);
  server.start();

  flips::serve::Client client;
  client.connect_uds(socket);
  client.hello("t");
  client.open_session(small_spec(3, 606).to_key_values());

  // Queue a step, then request shutdown before reading its reply. The
  // shutdown ack is written on the reader thread, so it may overtake
  // the step reply — classify the two frames by type.
  Frame step;
  step.type = FrameType::kStep;
  step.payload = flips::serve::encode_step_request(1);
  client.send(step);
  Frame down;
  down.type = FrameType::kShutdown;
  client.send(down);

  bool saw_step = false;
  bool saw_ack = false;
  for (int i = 0; i < 2; ++i) {
    const Frame frame = client.recv();
    if (frame.type == FrameType::kStep) {
      EXPECT_EQ(frame.status, FrameStatus::kOk);
      flips::serve::StepReply reply;
      ASSERT_TRUE(flips::serve::decode_step_reply(frame.payload, reply));
      EXPECT_EQ(reply.round, 1u);
      saw_step = true;
    } else {
      EXPECT_EQ(frame.type, FrameType::kShutdown);
      EXPECT_EQ(frame.status, FrameStatus::kOk);
      saw_ack = true;
    }
  }
  EXPECT_TRUE(saw_step);
  EXPECT_TRUE(saw_ack);
  EXPECT_TRUE(server.shutdown_requested());
  server.drain();  // the queued step finished; nothing is stranded
  EXPECT_EQ(server.stats().steps, 1u);
}

}  // namespace
