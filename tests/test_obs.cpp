// Telemetry plane (src/obs): counter exactness under concurrent
// writers, gauge set/add semantics, histogram bucket math (boundaries,
// under/overflow, merge, nearest-rank quantiles within one bucket of
// the exact sample quantile — including the load generator's latency
// config), registry get-or-create / mismatch contracts, the Prometheus
// text exposition (golden text + round-trip through the parser the
// loadgen's --metrics check uses), and the bounded trace ring's
// overflow accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace {

using flips::obs::Counter;
using flips::obs::Gauge;
using flips::obs::Histogram;
using flips::obs::HistogramConfig;
using flips::obs::Registry;
using flips::obs::Span;
using flips::obs::TraceRing;
using flips::obs::Tracer;
using flips::obs::TraceSink;

TEST(Counter, ConcurrentIncrementsAreExact) {
  Counter counter;
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.inc();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(Counter, IncByN) {
  Counter counter;
  counter.inc(5);
  counter.inc();
  EXPECT_EQ(counter.value(), 6u);
}

TEST(Gauge, SetAndConcurrentAddsAreExact) {
  Gauge gauge;
  EXPECT_EQ(gauge.value(), 0.0);
  gauge.set(-2.5);
  EXPECT_EQ(gauge.value(), -2.5);

  gauge.set(0.0);
  constexpr std::size_t kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&gauge] {
      for (int i = 0; i < kPerThread; ++i) gauge.add(1.0);
    });
  }
  for (auto& thread : threads) thread.join();
  // Every intermediate sum is an exactly representable integer, so the
  // CAS-add loses nothing.
  EXPECT_EQ(gauge.value(), static_cast<double>(kThreads * kPerThread));
}

TEST(Histogram, RejectsInvalidConfigs) {
  EXPECT_THROW(Histogram({0.0, 1.0, 3}), std::invalid_argument);
  EXPECT_THROW(Histogram({-1.0, 1.0, 3}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0, 3}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, 2.0, 9}), std::invalid_argument);
}

TEST(Histogram, BucketBoundariesContainRecordedValues) {
  const HistogramConfig config{1e-3, 1e3, 3};
  Histogram histogram(config);
  for (double v = 1.1e-3; v < 0.9e3; v *= 1.37) {
    const std::size_t i = histogram.index(v);
    ASSERT_GT(i, 0u) << v;
    ASSERT_LT(i, histogram.bucket_count() - 1) << v;
    EXPECT_LE(histogram.lower_edge(i), v);
    EXPECT_GT(histogram.upper_edge(i), v);
  }
  // Edges tile the range: bucket i's upper edge is bucket i+1's lower.
  for (std::size_t i = 1; i + 2 < histogram.bucket_count(); ++i) {
    EXPECT_EQ(histogram.upper_edge(i), histogram.lower_edge(i + 1));
  }
}

TEST(Histogram, UnderflowAndOverflowBuckets) {
  Histogram histogram({1.0, 16.0, 0});
  histogram.record(0.0);
  histogram.record(-3.0);
  histogram.record(std::nan(""));
  histogram.record(0.5);
  EXPECT_EQ(histogram.bucket_value(0), 4u);

  histogram.record(16.0);
  histogram.record(1e300);
  EXPECT_EQ(histogram.bucket_value(histogram.bucket_count() - 1), 2u);
  EXPECT_EQ(histogram.count(), 6u);

  // Quantiles landing in the sentinel buckets clamp to the grid edges.
  EXPECT_EQ(histogram.quantile(0.0), 1.0);
  EXPECT_EQ(histogram.quantile(1.0), 16.0);
}

TEST(Histogram, EmptyQuantileIsZero) {
  Histogram histogram;
  EXPECT_EQ(histogram.quantile(0.5), 0.0);
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.sum(), 0.0);
}

/// Nearest-rank quantiles must land within one bucket of the exact
/// sample quantile — checked on the loadgen's latency config, the
/// instrument that replaced its unbounded per-step latency vector.
TEST(Histogram, QuantilesWithinOneBucketOfExact) {
  const HistogramConfig config{1e-3, 1e5, 3};  // loadgen latency_ms
  Histogram histogram(config);
  std::vector<double> samples;
  // Deterministic spread across ~6 decades, non-monotone on purpose.
  for (std::size_t i = 0; i < 4000; ++i) {
    const double v =
        std::pow(10.0, 4.5 * std::abs(std::sin(0.1 * static_cast<double>(i))) -
                           1.5);
    samples.push_back(v);
    histogram.record(v);
  }
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());

  for (const double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    const std::uint64_t rank = std::min<std::uint64_t>(
        sorted.size() - 1,
        static_cast<std::uint64_t>(q * static_cast<double>(sorted.size())));
    const double exact = sorted[rank];
    const double estimate = histogram.quantile(q);
    const auto exact_bucket =
        static_cast<std::ptrdiff_t>(histogram.index(exact));
    const auto est_bucket =
        static_cast<std::ptrdiff_t>(histogram.index(estimate));
    EXPECT_LE(std::abs(est_bucket - exact_bucket), 1)
        << "q=" << q << " exact=" << exact << " estimate=" << estimate;
  }
}

TEST(Histogram, ConcurrentRecordsKeepExactCounts) {
  Histogram histogram;
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 50000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram] {
      for (std::size_t i = 0; i < kPerThread; ++i) histogram.record(1.0);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(histogram.count(), kThreads * kPerThread);
  EXPECT_EQ(histogram.sum(), static_cast<double>(kThreads * kPerThread));
}

TEST(Histogram, MergeAddsCountsAndRejectsMismatchedConfigs) {
  const HistogramConfig config{1e-3, 1e3, 3};
  Histogram a(config);
  Histogram b(config);
  a.record(0.5);
  a.record(2.0);
  b.record(2.0);
  b.record(2000.0);  // overflow
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.sum(), 0.5 + 2.0 + 2.0 + 2000.0);
  EXPECT_EQ(a.bucket_value(a.bucket_count() - 1), 1u);

  Histogram other({1e-3, 1e3, 2});
  EXPECT_THROW(a.merge(other), std::logic_error);
}

TEST(Registry, GetOrCreateReturnsStablePointers) {
  Registry registry;
  Counter& a = registry.counter("events_total", {{"tenant", "a"}});
  Counter& same = registry.counter("events_total", {{"tenant", "a"}});
  Counter& other = registry.counter("events_total", {{"tenant", "b"}});
  EXPECT_EQ(&a, &same);
  EXPECT_NE(&a, &other);

  // Label order must not matter.
  Counter& multi = registry.counter("multi_total",
                                    {{"x", "1"}, {"y", "2"}});
  Counter& swapped = registry.counter("multi_total",
                                      {{"y", "2"}, {"x", "1"}});
  EXPECT_EQ(&multi, &swapped);
}

TEST(Registry, TypeAndConfigMismatchesThrow) {
  Registry registry;
  registry.counter("events_total");
  EXPECT_THROW(registry.gauge("events_total"), std::logic_error);
  EXPECT_THROW(registry.histogram("events_total"), std::logic_error);

  const HistogramConfig config{1e-6, 1e2, 3};
  registry.histogram("latency_seconds", {}, config);
  EXPECT_THROW(
      registry.histogram("latency_seconds", {}, HistogramConfig{1e-6, 1e3, 3}),
      std::logic_error);
  Histogram& same =
      registry.histogram("latency_seconds", {{"tenant", "a"}}, config);
  same.record(1.0);
  EXPECT_EQ(same.count(), 1u);
}

TEST(Registry, GoldenTextExpositionAndRoundTrip) {
  Registry registry;
  registry.counter("requests_total", {{"tenant", "a"}}).inc(3);
  registry.gauge("level").set(1.5);
  Histogram& h =
      registry.histogram("lat_seconds", {}, HistogramConfig{1.0, 16.0, 0});
  h.record(1.5);
  h.record(3.0);
  h.record(100.0);  // overflow → the +Inf bucket

  const std::string text = registry.text_exposition();
  EXPECT_EQ(text,
            "# TYPE lat_seconds histogram\n"
            "lat_seconds_bucket{le=\"2\"} 1\n"
            "lat_seconds_bucket{le=\"4\"} 2\n"
            "lat_seconds_bucket{le=\"+Inf\"} 3\n"
            "lat_seconds_sum 104.5\n"
            "lat_seconds_count 3\n"
            "# TYPE level gauge\n"
            "level 1.5\n"
            "# TYPE requests_total counter\n"
            "requests_total{tenant=\"a\"} 3\n");

  // Round-trip through the parser the loadgen's --metrics check uses.
  EXPECT_EQ(flips::obs::prometheus_family_sum(text, "requests_total"), 3.0);
  EXPECT_EQ(flips::obs::prometheus_family_sum(text, "lat_seconds_count"), 3.0);
  EXPECT_EQ(flips::obs::prometheus_family_sum(text, "lat_seconds_sum"), 104.5);
  EXPECT_EQ(flips::obs::prometheus_family_sum(text, "level"), 1.5);
  EXPECT_TRUE(flips::obs::prometheus_has_family(text, "lat_seconds_bucket"));
  EXPECT_FALSE(flips::obs::prometheus_has_family(text, "lat_seconds"));
  EXPECT_FALSE(flips::obs::prometheus_has_family(text, "absent_total"));
}

TEST(Registry, LabeledHistogramExpositionEmbedsLabels) {
  Registry registry;
  Histogram& h = registry.histogram("phase_seconds", {{"tenant", "t0"}},
                                    HistogramConfig{1.0, 4.0, 0});
  h.record(1.5);
  const std::string text = registry.text_exposition();
  EXPECT_NE(text.find("phase_seconds_bucket{tenant=\"t0\",le=\"2\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("phase_seconds_count{tenant=\"t0\"} 1"),
            std::string::npos)
      << text;
  EXPECT_EQ(
      flips::obs::prometheus_family_sum(text, "phase_seconds_count"), 1.0);
}

TEST(Registry, ConcurrentSameFamilyRegistrationIsSafe) {
  Registry registry;
  std::vector<std::thread> threads;
  std::vector<Counter*> seen(8, nullptr);
  for (std::size_t t = 0; t < seen.size(); ++t) {
    threads.emplace_back([&registry, &seen, t] {
      seen[t] = &registry.counter("races_total", {{"k", "v"}});
      seen[t]->inc();
    });
  }
  for (auto& thread : threads) thread.join();
  for (Counter* counter : seen) EXPECT_EQ(counter, seen[0]);
  EXPECT_EQ(seen[0]->value(), seen.size());
}

// ---------------------------------------------------------------------------
// Tracing

TEST(Span, NamesTruncateNotOverflow) {
  Span span;
  span.set_name("a-name-way-longer-than-the-twenty-four-byte-field");
  EXPECT_EQ(std::string(span.name).size(), 23u);
  span.set_tenant("t");
  EXPECT_EQ(std::string(span.tenant), "t");
}

TEST(TraceRing, OverflowDropsAreCounted) {
  TraceRing ring(3);  // rounds up to 4
  EXPECT_EQ(ring.capacity(), 4u);
  Span span;
  for (std::uint64_t i = 1; i <= 10; ++i) {
    span.id = i;
    const bool pushed = ring.try_push(span);
    EXPECT_EQ(pushed, i <= 4) << i;
  }
  EXPECT_EQ(ring.dropped(), 6u);

  // FIFO pop of what fit.
  for (std::uint64_t i = 1; i <= 4; ++i) {
    Span out;
    ASSERT_TRUE(ring.try_pop(&out));
    EXPECT_EQ(out.id, i);
  }
  Span out;
  EXPECT_FALSE(ring.try_pop(&out));
}

struct CountingSink final : TraceSink {
  std::atomic<std::size_t> written{0};
  void write(const Span&) override {
    written.fetch_add(1, std::memory_order_relaxed);
  }
};

TEST(Tracer, DisabledTracerIsANoOp) {
  Tracer tracer(16);
  EXPECT_FALSE(tracer.enabled());
  Span span;
  for (int i = 0; i < 100; ++i) tracer.record(span);
  EXPECT_EQ(tracer.drain(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Tracer, DrainDeliversToSinkAndCountsDrops) {
  Tracer tracer(4);
  auto sink = std::make_shared<CountingSink>();
  tracer.set_sink(sink);
  EXPECT_TRUE(tracer.enabled());

  Span span;
  for (int i = 0; i < 10; ++i) tracer.record(span);
  EXPECT_EQ(tracer.drain(), 4u);
  EXPECT_EQ(sink->written.load(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);

  tracer.set_sink(nullptr);
  EXPECT_FALSE(tracer.enabled());
  tracer.record(span);
  EXPECT_EQ(tracer.drain(), 0u);
}

TEST(Tracer, ConcurrentProducersAccountEverySpan) {
  Tracer tracer(256);
  auto sink = std::make_shared<CountingSink>();
  tracer.set_sink(sink);

  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer] {
      Span span;
      span.set_name("producer");
      for (std::size_t i = 0; i < kPerThread; ++i) {
        span.id = i;
        tracer.record(span);
        if ((i & 127) == 127) tracer.drain();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  std::size_t delivered = sink->written.load();
  delivered += tracer.drain();
  EXPECT_EQ(delivered + tracer.dropped(), kThreads * kPerThread);
}

TEST(Tracer, NextIdIsUniqueAcrossThreads) {
  Tracer tracer;
  std::vector<std::uint64_t> ids(4 * 1000);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < 4; ++t) {
    threads.emplace_back([&tracer, &ids, t] {
      for (std::size_t i = 0; i < 1000; ++i) {
        ids[t * 1000 + i] = tracer.next_id();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
}

}  // namespace
