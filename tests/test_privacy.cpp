// Privacy substrate: clipping, noise, RDP accounting, pairwise-mask
// secure aggregation (including dropouts), and the HE cost ledger.
#include <gtest/gtest.h>

#include <cmath>

#include "net/codec.h"
#include "privacy/dp.h"
#include "privacy/he_sim.h"
#include "privacy/masking.h"

namespace {

TEST(DpClip, ScalesOnlyWhenAboveNorm) {
  std::vector<double> v = {3.0, 4.0};  // norm 5
  flips::privacy::clip_to_norm(v, 10.0);
  EXPECT_DOUBLE_EQ(v[0], 3.0);
  EXPECT_DOUBLE_EQ(v[1], 4.0);
  flips::privacy::clip_to_norm(v, 1.0);
  EXPECT_NEAR(std::sqrt(v[0] * v[0] + v[1] * v[1]), 1.0, 1e-12);
  EXPECT_NEAR(v[0] / v[1], 0.75, 1e-12);  // direction preserved
}

TEST(DpNoise, ZeroStddevIsIdentity) {
  std::vector<double> v = {1.0, 2.0};
  flips::common::Rng rng(1);
  flips::privacy::add_gaussian_noise(v, 0.0, rng);
  EXPECT_DOUBLE_EQ(v[0], 1.0);
  flips::privacy::add_gaussian_noise(v, 0.5, rng);
  EXPECT_NE(v[0], 1.0);
}

TEST(RdpAccountant, EpsilonGrowsWithStepsAndShrinksWithNoise) {
  flips::privacy::RdpAccountant few;
  few.steps(1.0, 10);
  flips::privacy::RdpAccountant many;
  many.steps(1.0, 1000);
  EXPECT_LT(few.epsilon(1e-5), many.epsilon(1e-5));

  flips::privacy::RdpAccountant loud;
  loud.steps(2.0, 100);
  flips::privacy::RdpAccountant quiet;
  quiet.steps(0.5, 100);
  EXPECT_LT(loud.epsilon(1e-5), quiet.epsilon(1e-5));

  flips::privacy::RdpAccountant empty;
  EXPECT_DOUBLE_EQ(empty.epsilon(1e-5), 0.0);
}

TEST(Masking, SumOfMaskedUpdatesIsExact) {
  const std::size_t dim = 32;
  std::vector<std::size_t> roster = {3, 7, 11, 20};
  flips::privacy::MaskingSession session(99, roster, dim);

  flips::common::Rng rng(2);
  std::vector<std::vector<double>> updates;
  std::vector<double> expected(dim, 0.0);
  for (std::size_t i = 0; i < roster.size(); ++i) {
    std::vector<double> u(dim);
    for (auto& v : u) v = rng.normal();
    for (std::size_t j = 0; j < dim; ++j) expected[j] += u[j];
    updates.push_back(std::move(u));
  }

  std::vector<double> masked_sum(dim, 0.0);
  for (std::size_t i = 0; i < roster.size(); ++i) {
    const auto masked = session.mask(roster[i], updates[i]);
    // An individual masked update must not equal the plaintext.
    double diff = 0.0;
    for (std::size_t j = 0; j < dim; ++j) {
      diff += std::fabs(masked[j] - updates[i][j]);
      masked_sum[j] += masked[j];
    }
    EXPECT_GT(diff, 1.0);
  }
  const auto sum = session.unmask_sum(masked_sum, roster);
  for (std::size_t j = 0; j < dim; ++j) {
    EXPECT_NEAR(sum[j], expected[j], 1e-9);
  }
}

TEST(Masking, DropoutResidueIsCancelled) {
  const std::size_t dim = 16;
  std::vector<std::size_t> roster = {0, 1, 2, 3, 4};
  flips::privacy::MaskingSession session(7, roster, dim);

  // Parties 0, 1, 3 respond; 2 and 4 drop out.
  const std::vector<std::size_t> responders = {0, 1, 3};
  std::vector<double> expected(dim, 0.0);
  std::vector<double> masked_sum(dim, 0.0);
  flips::common::Rng rng(3);
  for (const std::size_t p : responders) {
    std::vector<double> u(dim);
    for (auto& v : u) v = rng.normal();
    for (std::size_t j = 0; j < dim; ++j) expected[j] += u[j];
    const auto masked = session.mask(p, u);
    for (std::size_t j = 0; j < dim; ++j) masked_sum[j] += masked[j];
  }
  const auto sum = session.unmask_sum(masked_sum, responders);
  for (std::size_t j = 0; j < dim; ++j) {
    EXPECT_NEAR(sum[j], expected[j], 1e-9);
  }
  EXPECT_EQ(session.setup_bytes_per_party(), 32u * 4u);
}

TEST(MaskingQuantized, ExactSumInIntegerDomain) {
  // The float path cancels to ~1e-9; the integer path must be EXACT.
  const std::size_t dim = 64;
  std::vector<std::size_t> roster = {2, 5, 9};
  flips::privacy::MaskingSession session(123, roster, dim);

  flips::common::Rng rng(17);
  std::vector<std::int64_t> expected(dim, 0);
  std::vector<std::int64_t> masked_sum(dim, 0);
  for (const std::size_t p : roster) {
    std::vector<std::int64_t> q(dim);
    for (auto& v : q) {
      v = static_cast<std::int64_t>(rng.uniform_index(255)) - 127;
    }
    for (std::size_t j = 0; j < dim; ++j) expected[j] += q[j];
    const auto masked = session.mask_quantized(p, q);
    // Masked words must not leak the plaintext.
    std::size_t equal = 0;
    for (std::size_t j = 0; j < dim; ++j) {
      if (masked[j] == q[j]) ++equal;
      // Modular addition: sum the masked words with wrap-around.
      masked_sum[j] = static_cast<std::int64_t>(
          static_cast<std::uint64_t>(masked_sum[j]) +
          static_cast<std::uint64_t>(masked[j]));
    }
    EXPECT_LT(equal, dim / 8);
  }
  const auto sum = session.unmask_sum_quantized(masked_sum, roster);
  ASSERT_EQ(sum.size(), dim);
  for (std::size_t j = 0; j < dim; ++j) {
    EXPECT_EQ(sum[j], expected[j]) << "j=" << j;
  }
}

TEST(MaskingQuantized, DropoutResidueCancelsExactly) {
  // Quantize real updates with the wire codec, mask the int8 values in
  // the integer domain, drop two parties, and demand bit-exact
  // recovery of the responders' integer sum — the property the
  // masking + kQuant8 stack rests on.
  const std::size_t dim = 48;
  std::vector<std::size_t> roster = {0, 1, 2, 3, 4};
  const std::vector<std::size_t> responders = {0, 2, 3};
  flips::privacy::MaskingSession session(77, roster, dim);

  flips::net::CodecConfig cc;
  cc.codec = flips::net::Codec::kQuant8;
  const flips::net::UpdateCodec codec(cc);
  flips::net::EncodedUpdate enc;
  flips::net::CodecWorkspace ws;

  flips::common::Rng rng(21);
  std::vector<std::int64_t> expected(dim, 0);
  std::vector<std::int64_t> masked_sum(dim, 0);
  for (const std::size_t p : responders) {
    std::vector<double> update(dim);
    for (auto& v : update) v = rng.normal(0.0, 0.02);
    codec.encode(update, rng, enc, ws);
    std::vector<std::int64_t> q(dim);
    for (std::size_t j = 0; j < dim; ++j) {
      q[j] = enc.q[j];
      expected[j] += q[j];
    }
    const auto masked = session.mask_quantized(p, q);
    for (std::size_t j = 0; j < dim; ++j) {
      masked_sum[j] = static_cast<std::int64_t>(
          static_cast<std::uint64_t>(masked_sum[j]) +
          static_cast<std::uint64_t>(masked[j]));
    }
  }
  const auto sum = session.unmask_sum_quantized(masked_sum, responders);
  for (std::size_t j = 0; j < dim; ++j) {
    EXPECT_EQ(sum[j], expected[j]) << "j=" << j;
  }
}

TEST(HeSim, AdditionIsExactAndLedgerCharges) {
  flips::privacy::HeContext ctx;
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {0.5, -1.0, 4.0};
  const auto ca = ctx.encrypt(a);
  const auto cb = ctx.encrypt(b);
  const auto sum = ctx.decrypt(ctx.add(ca, cb));
  ASSERT_EQ(sum.size(), 3u);
  EXPECT_DOUBLE_EQ(sum[0], 1.5);
  EXPECT_DOUBLE_EQ(sum[1], 1.0);
  EXPECT_DOUBLE_EQ(sum[2], 7.0);

  const auto& ledger = ctx.ledger();
  EXPECT_GT(ledger.total_us(), 0.0);
  // 64x expansion: 3 doubles -> 3 * 512 bytes per ciphertext move.
  EXPECT_GE(ledger.ciphertext_bytes_moved, 3u * 512u * 3u);
}

}  // namespace
