// FL job loop: FedProx single-round math against hand-computed values,
// straggler/privacy/fairness accounting, and the headline end-to-end
// property — FLIPS selection beats random on a skewed federation.
#include <gtest/gtest.h>

#include <cmath>

#include "cluster/kmeans.h"
#include "common/stats.h"
#include "data/federated.h"
#include "fl/job.h"
#include "selection/factory.h"

namespace {

using flips::fl::FlJob;
using flips::fl::FlJobConfig;
using flips::fl::Party;
using flips::fl::PartyProfile;

/// One party, one sample with all-zero features, logistic regression:
/// only the bias moves, and every step is hand-computable.
///   p(b) = softmax(b), g = p - onehot(y) (+ prox term), b -= lr g.
TEST(FlJobMath, FedProxLocalStepsHandComputed) {
  const std::size_t dim = 3;
  flips::data::Dataset party_set;
  party_set.num_classes = 2;
  party_set.features = {std::vector<double>(dim, 0.0)};
  party_set.labels = {0};

  flips::data::Dataset test = party_set;

  std::vector<Party> parties;
  parties.emplace_back(0, party_set, PartyProfile{});

  FlJobConfig config;
  config.rounds = 1;
  config.parties_per_round = 1;
  config.local.epochs = 2;  // two steps => the prox term engages
  config.local.batch_size = 1;
  config.local.sgd.learning_rate = 0.1;
  config.local.prox_mu = 1.0;
  config.server.optimizer = flips::fl::ServerOpt::kFedAvg;
  config.server.learning_rate = 1.0;
  config.eval_every = 1;
  config.seed = 5;

  flips::common::Rng rng(9);
  auto model = flips::ml::ModelFactory::logistic_regression(dim, 2, rng);
  const auto w0 = model.parameters();

  flips::select::SelectorContext solo;
  solo.num_parties = 1;
  solo.seed = 1;
  FlJob job(config, parties, test, model,
            flips::select::make_selector(
                flips::select::SelectorKind::kRandom, solo));
  const auto result = job.run();

  // Step 1: b = (0,0), p = (1/2, 1/2), g = (-1/2, 1/2), prox = 0.
  const double lr = 0.1;
  const double b1_0 = lr * 0.5;
  const double b1_1 = -lr * 0.5;
  // Step 2: p = softmax(b1), g = p - y + mu * (b1 - 0).
  const double z = std::exp(b1_0) + std::exp(b1_1);
  const double p0 = std::exp(b1_0) / z;
  const double g0 = (p0 - 1.0) + 1.0 * b1_0;
  const double g1 = (1.0 - p0) + 1.0 * b1_1;
  const double b2_0 = b1_0 - lr * g0;
  const double b2_1 = b1_1 - lr * g1;

  // FedAvg server with lr 1: global = w0 + delta = local weights. The
  // features are all zero, so weights are untouched and the bias (the
  // last two parameters) carries the whole update.
  const auto& w = result.final_parameters;
  ASSERT_EQ(w.size(), w0.size());
  for (std::size_t i = 0; i + 2 < w.size(); ++i) {
    EXPECT_NEAR(w[i], w0[i], 1e-12);
  }
  EXPECT_NEAR(w[w.size() - 2], b2_0, 1e-12);
  EXPECT_NEAR(w[w.size() - 1], b2_1, 1e-12);
}

struct TinyFederation {
  std::vector<Party> parties;
  flips::data::Dataset test;
  flips::select::SelectorContext context;
};

TinyFederation build_tiny(std::size_t num_parties, double alpha,
                          std::size_t clusters, std::uint64_t seed) {
  flips::data::FederatedDataConfig dc;
  dc.spec = flips::data::DatasetCatalog::ecg();
  dc.num_parties = num_parties;
  dc.samples_per_party = 60;
  dc.alpha = alpha;
  dc.test_per_class = 60;
  dc.seed = seed;
  const auto data = flips::data::build_federated_data(dc);

  TinyFederation fed;
  for (std::size_t p = 0; p < data.party_data.size(); ++p) {
    fed.parties.emplace_back(p, data.party_data[p], PartyProfile{});
  }
  fed.test = data.global_test;

  std::vector<flips::cluster::Point> points;
  for (const auto& ld : data.label_distributions) {
    auto point = flips::common::normalized(ld);
    for (auto& v : point) v = std::sqrt(v);
    points.push_back(std::move(point));
  }
  flips::cluster::KMeansConfig kc;
  kc.k = clusters;
  kc.restarts = 3;
  flips::common::Rng rng(seed ^ 0xC1);
  fed.context.num_parties = num_parties;
  fed.context.seed = seed ^ 0x5E1E;
  fed.context.cluster_of = flips::cluster::kmeans(points, kc, rng).assignments;
  fed.context.num_clusters = kc.k;
  return fed;
}

FlJobConfig tiny_job_config(std::size_t rounds, std::size_t nr,
                            std::uint64_t seed) {
  FlJobConfig config;
  config.rounds = rounds;
  config.parties_per_round = nr;
  config.local.epochs = 2;
  config.local.batch_size = 32;
  config.local.sgd.learning_rate = 0.05;
  config.server.optimizer = flips::fl::ServerOpt::kFedYogi;
  config.server.learning_rate = 0.05;
  config.eval_every = 2;
  config.seed = seed;
  return config;
}

double run_kind(const TinyFederation& fed, flips::select::SelectorKind kind,
                std::size_t rounds, std::uint64_t seed,
                std::optional<double>* rounds_to_target = nullptr,
                double target = 0.0) {
  auto config = tiny_job_config(rounds, std::max<std::size_t>(
                                            2, fed.parties.size() / 5),
                                seed);
  config.target_accuracy = target;
  flips::common::Rng mrng(seed ^ 0x30DE);
  auto model = flips::ml::ModelFactory::mlp(32, 24, 5, mrng);
  FlJob job(config, fed.parties, fed.test, std::move(model),
            flips::select::make_selector(kind, fed.context));
  const auto result = job.run();
  if (rounds_to_target) {
    *rounds_to_target =
        result.rounds_to_target
            ? std::optional<double>(
                  static_cast<double>(*result.rounds_to_target))
            : std::nullopt;
  }
  return result.peak_accuracy;
}

/// The paper's headline at miniature scale: on a strongly skewed
/// federation, FLIPS's cluster-equalized selection beats random
/// selection on peak balanced accuracy (averaged over seeds).
TEST(FlJobEndToEnd, FlipsBeatsRandomOnSkewedFederation) {
  double flips_sum = 0.0;
  double random_sum = 0.0;
  for (const std::uint64_t seed : {21u, 22u, 23u}) {
    const auto fed = build_tiny(30, 0.2, 8, seed);
    flips_sum +=
        run_kind(fed, flips::select::SelectorKind::kFlips, 40, seed);
    random_sum +=
        run_kind(fed, flips::select::SelectorKind::kRandom, 40, seed);
  }
  EXPECT_GT(flips_sum / 3.0, random_sum / 3.0)
      << "FLIPS mean peak balanced accuracy must beat random";
}

TEST(FlJobAccounting, BytesStragglersAndFairness) {
  const auto fed = build_tiny(20, 0.3, 5, 31);
  auto config = tiny_job_config(30, 5, 31);
  flips::common::Rng mrng(31);
  auto model = flips::ml::ModelFactory::mlp(32, 8, 5, mrng);
  const std::size_t dim = model.num_parameters();

  FlJob job(config, fed.parties, fed.test, model,
            flips::select::make_selector(
                flips::select::SelectorKind::kRandom, fed.context));
  const auto result = job.run();

  ASSERT_EQ(result.history.size(), 30u);
  // Random selector returns exactly Nr, everyone responds: bytes are
  // rounds * Nr * dim * 8 * 2 (down + up).
  EXPECT_EQ(result.total_bytes,
            static_cast<std::uint64_t>(30 * 5 * dim * 8 * 2));
  for (const auto& record : result.history) {
    EXPECT_EQ(record.selected, 5u);
    EXPECT_EQ(record.responded, 5u);
  }
  EXPECT_GT(result.fairness.jain_index, 0.5);
  EXPECT_GT(result.total_time_s, 0.0);

  // With 20 parties and 5 picks/round, coverage takes >= 4 rounds.
  ASSERT_TRUE(result.coverage_round.has_value());
  EXPECT_GE(*result.coverage_round, 4u);

  // 100% straggling: nobody responds, accuracy never moves.
  auto straggle_config = config;
  straggle_config.stragglers.rate = 1.0;
  FlJob stuck(straggle_config, fed.parties, fed.test, model,
              flips::select::make_selector(
                  flips::select::SelectorKind::kRandom, fed.context));
  const auto stuck_result = stuck.run();
  for (const auto& record : stuck_result.history) {
    EXPECT_EQ(record.responded, 0u);
  }
  EXPECT_EQ(stuck_result.total_bytes,
            static_cast<std::uint64_t>(30 * 5 * dim * 8));  // down only
}

/// The worker pool must not change results: per-party round-seeded RNG
/// streams plus ordered aggregation make rounds bit-identical across
/// thread counts. SCAFFOLD is included because its control-variate
/// accumulation is the most order-sensitive path.
TEST(FlJobThreads, RoundResultsBitIdenticalAcrossThreadCounts) {
  const auto fed = build_tiny(12, 0.3, 4, 61);
  for (const auto algo :
       {flips::fl::ClientAlgo::kSgd, flips::fl::ClientAlgo::kScaffold}) {
    std::vector<flips::fl::FlJobResult> results;
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      auto config = tiny_job_config(10, 4, 61);
      config.local.algo = algo;
      config.threads = threads;
      flips::common::Rng mrng(61);
      auto model = flips::ml::ModelFactory::mlp(32, 8, 5, mrng);
      FlJob job(config, fed.parties, fed.test, std::move(model),
                flips::select::make_selector(
                    flips::select::SelectorKind::kFlips, fed.context));
      results.push_back(job.run());
    }
    const auto& one = results[0];
    const auto& four = results[1];
    EXPECT_EQ(one.final_parameters, four.final_parameters)
        << "algo " << to_string(algo);
    EXPECT_EQ(one.total_bytes, four.total_bytes);
    EXPECT_EQ(one.peak_accuracy, four.peak_accuracy);
    ASSERT_EQ(one.history.size(), four.history.size());
    for (std::size_t r = 0; r < one.history.size(); ++r) {
      EXPECT_EQ(one.history[r].balanced_accuracy,
                four.history[r].balanced_accuracy);
      EXPECT_EQ(one.history[r].mean_train_loss,
                four.history[r].mean_train_loss);
      EXPECT_EQ(one.history[r].round_time_s, four.history[r].round_time_s);
      EXPECT_EQ(one.history[r].selected, four.history[r].selected);
      EXPECT_EQ(one.history[r].responded, four.history[r].responded);
    }
  }
}

/// The streaming aggregator + codecs must preserve the PR 2 invariant:
/// lossy codecs draw their stochastic rounding from the per-party RNG
/// streams and the broadcast encode runs sequentially, so results are
/// bit-identical across thread counts for every codec.
TEST(FlJobThreads, CodecResultsBitIdenticalAcrossThreadCounts) {
  const auto fed = build_tiny(12, 0.3, 4, 71);
  for (const auto codec :
       {flips::net::Codec::kQuant8, flips::net::Codec::kTopK}) {
    std::vector<flips::fl::FlJobResult> results;
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      auto config = tiny_job_config(8, 4, 71);
      config.codec.codec = codec;
      config.threads = threads;
      flips::common::Rng mrng(71);
      auto model = flips::ml::ModelFactory::mlp(32, 8, 5, mrng);
      FlJob job(config, fed.parties, fed.test, std::move(model),
                flips::select::make_selector(
                    flips::select::SelectorKind::kFlips, fed.context));
      results.push_back(job.run());
    }
    EXPECT_EQ(results[0].final_parameters, results[1].final_parameters)
        << "codec " << flips::net::to_string(codec);
    EXPECT_EQ(results[0].total_bytes, results[1].total_bytes);
    EXPECT_EQ(results[0].upload_bytes, results[1].upload_bytes);
    EXPECT_EQ(results[0].download_bytes, results[1].download_bytes);
  }
}

/// Codec arms on a real (tiny) federation: lossy codecs must slash the
/// wire bytes (>= 4x for quant8) while error feedback keeps accuracy
/// in the same band as dense.
TEST(FlJobCodecs, Quant8CutsBytesAndTracksDenseAccuracy) {
  const auto fed = build_tiny(20, 0.3, 5, 81);

  auto run_with = [&](flips::net::Codec codec) {
    auto config = tiny_job_config(25, 5, 81);
    config.codec.codec = codec;
    flips::common::Rng mrng(81);
    auto model = flips::ml::ModelFactory::mlp(32, 8, 5, mrng);
    FlJob job(config, fed.parties, fed.test, model,
              flips::select::make_selector(
                  flips::select::SelectorKind::kFlips, fed.context));
    return job.run();
  };

  const auto dense = run_with(flips::net::Codec::kDense64);
  const auto quant = run_with(flips::net::Codec::kQuant8);
  const auto topk = run_with(flips::net::Codec::kTopK);

  // Accounting consistency: no masking, so up + down == total.
  for (const auto* r : {&dense, &quant, &topk}) {
    EXPECT_EQ(r->upload_bytes + r->download_bytes, r->total_bytes);
  }
  EXPECT_GT(dense.total_bytes, 4 * quant.total_bytes)
      << "quant8 must move >= 4x fewer bytes than dense";
  EXPECT_GT(dense.total_bytes, topk.total_bytes);

  // Error feedback keeps the lossy arms in the dense accuracy band.
  EXPECT_GT(quant.peak_accuracy, dense.peak_accuracy - 0.10);
  EXPECT_GT(topk.peak_accuracy, dense.peak_accuracy - 0.15);
}

TEST(FlJobPrivacy, DpSpendsEpsilonAndDegradesGracefully) {
  const auto fed = build_tiny(16, 0.3, 4, 41);
  auto config = tiny_job_config(8, 4, 41);
  config.privacy.mechanism = flips::fl::PrivacyMechanism::kDp;
  config.privacy.dp.clip_norm = 2.0;
  config.privacy.dp.noise_multiplier = 0.5;

  flips::common::Rng mrng(41);
  auto model = flips::ml::ModelFactory::mlp(32, 8, 5, mrng);
  FlJob job(config, fed.parties, fed.test, std::move(model),
            flips::select::make_selector(
                flips::select::SelectorKind::kFlips, fed.context));
  const auto result = job.run();
  EXPECT_GT(result.epsilon_spent, 0.0);
  EXPECT_LT(result.epsilon_spent, 1e3);
}

TEST(FlJobDeadline, TightDeadlineSilencesSlowParties) {
  flips::data::FederatedDataConfig dc;
  dc.spec = flips::data::DatasetCatalog::ecg();
  dc.num_parties = 12;
  dc.samples_per_party = 50;
  dc.alpha = 0.5;
  dc.test_per_class = 20;
  dc.seed = 51;
  const auto data = flips::data::build_federated_data(dc);

  std::vector<Party> parties;
  for (std::size_t p = 0; p < data.party_data.size(); ++p) {
    PartyProfile profile;
    profile.speed_factor = p < 6 ? 1.0 : 40.0;  // half the fleet is slow
    parties.emplace_back(p, data.party_data[p], profile);
  }

  auto config = tiny_job_config(6, 6, 51);
  config.stragglers.mode = flips::fl::StragglerMode::kDeadline;
  config.stragglers.deadline_s = 1.0;

  flips::common::Rng mrng(51);
  auto model = flips::ml::ModelFactory::mlp(32, 8, 5, mrng);
  flips::select::SelectorContext ctx;
  ctx.num_parties = 12;
  ctx.seed = 3;
  FlJob job(config, parties, data.global_test, std::move(model),
            flips::select::make_selector(
                flips::select::SelectorKind::kRandom, ctx));
  const auto result = job.run();

  std::size_t selected = 0;
  std::size_t responded = 0;
  for (const auto& record : result.history) {
    selected += record.selected;
    responded += record.responded;
    EXPECT_LE(record.round_time_s, 1.0 + 1e-9);
  }
  EXPECT_LT(responded, selected);  // the slow half misses the deadline
  EXPECT_GT(responded, 0u);        // the fast half does not
}

}  // namespace
