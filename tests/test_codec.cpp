// Wire codecs: round-trip error bounds, wire-size accounting,
// stochastic-rounding unbiasedness, top-k selection, and
// error-feedback convergence.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/rng.h"
#include "net/codec.h"

namespace {

using flips::net::Codec;
using flips::net::CodecConfig;
using flips::net::CodecWorkspace;
using flips::net::EncodedUpdate;
using flips::net::UpdateCodec;

std::vector<double> random_update(std::size_t dim, std::uint64_t seed,
                                  double stddev = 0.01) {
  flips::common::Rng rng(seed);
  std::vector<double> v(dim);
  for (auto& x : v) x = rng.normal(0.0, stddev);
  return v;
}

TEST(CodecNames, RoundTrip) {
  EXPECT_STREQ(flips::net::to_string(Codec::kDense64), "dense64");
  EXPECT_STREQ(flips::net::to_string(Codec::kQuant8), "quant8");
  EXPECT_STREQ(flips::net::to_string(Codec::kTopK), "topk");
  EXPECT_EQ(flips::net::codec_from_string("dense64"), Codec::kDense64);
  EXPECT_EQ(flips::net::codec_from_string("quant8"), Codec::kQuant8);
  EXPECT_EQ(flips::net::codec_from_string("topk"), Codec::kTopK);
  EXPECT_FALSE(flips::net::codec_from_string("gzip").has_value());
}

TEST(CodecDense, ExactRoundTripAndLegacyByteAccounting) {
  const std::size_t dim = 333;
  const auto update = random_update(dim, 1);
  const UpdateCodec codec(CodecConfig{});
  flips::common::Rng rng(2);
  EncodedUpdate enc;
  CodecWorkspace ws;
  codec.encode(update, rng, enc, ws);
  // Dense matches the historical model-bytes accounting: dim * 8, no
  // header.
  EXPECT_EQ(enc.wire_bytes(), dim * sizeof(double));
  std::vector<double> decoded;
  codec.decode(enc, decoded);
  EXPECT_EQ(decoded, update);
}

TEST(CodecQuant8, PerCoordinateErrorBoundedByChunkScale) {
  const std::size_t dim = 1000;
  CodecConfig config;
  config.codec = Codec::kQuant8;
  config.quant_chunk = 128;
  const UpdateCodec codec(config);
  const auto update = random_update(dim, 3, 0.5);

  flips::common::Rng rng(4);
  EncodedUpdate enc;
  CodecWorkspace ws;
  codec.encode(update, rng, enc, ws);
  std::vector<double> decoded;
  codec.decode(enc, decoded);
  ASSERT_EQ(decoded.size(), dim);

  for (std::size_t begin = 0; begin < dim; begin += config.quant_chunk) {
    const std::size_t end = std::min(dim, begin + config.quant_chunk);
    double max_abs = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      max_abs = std::max(max_abs, std::fabs(update[i]));
    }
    const double scale = max_abs / 127.0;
    for (std::size_t i = begin; i < end; ++i) {
      // Stochastic rounding moves at most one quantization step.
      EXPECT_LE(std::fabs(decoded[i] - update[i]), scale + 1e-15)
          << "i=" << i;
    }
  }
}

TEST(CodecQuant8, WireBytesAbout8xSmallerThanDense) {
  const std::size_t dim = 100000;
  CodecConfig config;
  config.codec = Codec::kQuant8;
  const UpdateCodec codec(config);
  const auto update = random_update(dim, 5);
  flips::common::Rng rng(6);
  EncodedUpdate enc;
  CodecWorkspace ws;
  codec.encode(update, rng, enc, ws);
  const double dense_bytes = static_cast<double>(dim) * sizeof(double);
  const double ratio = dense_bytes / static_cast<double>(enc.wire_bytes());
  EXPECT_GT(ratio, 7.5);
  EXPECT_LT(ratio, 8.0);
}

TEST(CodecQuant8, StochasticRoundingIsUnbiased) {
  // Encode the same vector many times with fresh randomness: the mean
  // decode converges to the input (E[q * scale] = value).
  const std::size_t dim = 64;
  CodecConfig config;
  config.codec = Codec::kQuant8;
  config.quant_chunk = 64;
  const UpdateCodec codec(config);
  const auto update = random_update(dim, 7, 1.0);

  flips::common::Rng rng(8);
  EncodedUpdate enc;
  CodecWorkspace ws;
  std::vector<double> decoded;
  std::vector<double> mean(dim, 0.0);
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    codec.encode(update, rng, enc, ws);
    codec.decode(enc, decoded);
    for (std::size_t i = 0; i < dim; ++i) mean[i] += decoded[i];
  }
  double max_abs = 0.0;
  for (const double v : update) max_abs = std::max(max_abs, std::fabs(v));
  const double scale = max_abs / 127.0;
  for (std::size_t i = 0; i < dim; ++i) {
    mean[i] /= trials;
    // Monte-Carlo tolerance: a few standard errors of a Bernoulli step.
    EXPECT_NEAR(mean[i], update[i], 4.0 * scale / std::sqrt(trials))
        << "i=" << i;
  }
}

TEST(CodecQuant8, ZeroVectorCostsNoDrawsAndDecodesToZero) {
  CodecConfig config;
  config.codec = Codec::kQuant8;
  const UpdateCodec codec(config);
  const std::vector<double> zeros(500, 0.0);
  flips::common::Rng rng(9);
  const std::uint64_t probe_before = flips::common::Rng(9).next();
  EncodedUpdate enc;
  CodecWorkspace ws;
  codec.encode(zeros, rng, enc, ws);
  // No draws consumed: the next draw equals a fresh RNG's first draw.
  EXPECT_EQ(rng.next(), probe_before);
  std::vector<double> decoded;
  codec.decode(enc, decoded);
  for (const double v : decoded) EXPECT_EQ(v, 0.0);
}

TEST(CodecTopK, KeepsExactlyTheLargestMagnitudes) {
  const std::size_t dim = 200;
  CodecConfig config;
  config.codec = Codec::kTopK;
  config.topk_fraction = 0.1;  // k = 20
  const UpdateCodec codec(config);
  const auto update = random_update(dim, 11, 1.0);

  flips::common::Rng rng(12);
  EncodedUpdate enc;
  CodecWorkspace ws;
  codec.encode(update, rng, enc, ws);
  ASSERT_EQ(enc.indices.size(), 20u);
  EXPECT_EQ(enc.wire_bytes(),
            16u + 20u * (sizeof(std::uint32_t) + sizeof(double)));

  // The kept set must be the 20 largest |values|; indices ascend and
  // values are exact.
  std::vector<double> magnitudes;
  for (const double v : update) magnitudes.push_back(std::fabs(v));
  std::sort(magnitudes.rbegin(), magnitudes.rend());
  const double threshold = magnitudes[19];
  for (std::size_t i = 0; i < enc.indices.size(); ++i) {
    if (i > 0) {
      EXPECT_LT(enc.indices[i - 1], enc.indices[i]);
    }
    EXPECT_GE(std::fabs(update[enc.indices[i]]), threshold);
    EXPECT_EQ(enc.values[i], update[enc.indices[i]]);
  }

  std::vector<double> decoded;
  codec.decode(enc, decoded);
  ASSERT_EQ(decoded.size(), dim);
  std::size_t nonzero = 0;
  for (std::size_t i = 0; i < dim; ++i) {
    if (decoded[i] != 0.0) {
      ++nonzero;
      EXPECT_EQ(decoded[i], update[i]);
    }
  }
  EXPECT_EQ(nonzero, 20u);
}

/// Error feedback makes lossy codecs converge on average: encoding
/// (value + residual) every round and carrying the miss forward, the
/// running mean of the decoded stream approaches the true value even
/// when every single message drops 95 % of the coordinates.
TEST(CodecErrorFeedback, DecodedStreamMeanConvergesToSignal) {
  const std::size_t dim = 100;
  const auto signal = random_update(dim, 13, 1.0);
  for (const Codec which : {Codec::kTopK, Codec::kQuant8}) {
    CodecConfig config;
    config.codec = which;
    config.topk_fraction = 0.05;  // 5 coordinates per message
    const UpdateCodec codec(config);

    flips::common::Rng rng(14);
    EncodedUpdate enc;
    CodecWorkspace ws;
    std::vector<double> residual(dim, 0.0);
    std::vector<double> pre(dim), decoded;
    std::vector<double> delivered(dim, 0.0);
    // Top-k with k = 5 of 100 services each coordinate every ~20
    // rounds, so the per-coordinate backlog is O(20 |signal_i|); enough
    // rounds make the backlog term negligible against the tolerance.
    const int rounds = 2000;
    for (int r = 0; r < rounds; ++r) {
      for (std::size_t i = 0; i < dim; ++i) {
        pre[i] = signal[i] + residual[i];
      }
      codec.encode(pre, rng, enc, ws);
      codec.decode(enc, decoded);
      for (std::size_t i = 0; i < dim; ++i) {
        residual[i] = pre[i] - decoded[i];
        delivered[i] += decoded[i];
      }
    }
    for (std::size_t i = 0; i < dim; ++i) {
      EXPECT_NEAR(delivered[i] / rounds, signal[i], 0.05)
          << flips::net::to_string(which) << " i=" << i;
    }
  }
}

TEST(CodecConfigValidation, RejectsBadKnobs) {
  CodecConfig bad_chunk;
  bad_chunk.quant_chunk = 0;
  EXPECT_THROW(UpdateCodec{bad_chunk}, std::invalid_argument);
  CodecConfig bad_frac;
  bad_frac.topk_fraction = 0.0;
  EXPECT_THROW(UpdateCodec{bad_frac}, std::invalid_argument);
  CodecConfig too_big;
  too_big.topk_fraction = 1.5;
  EXPECT_THROW(UpdateCodec{too_big}, std::invalid_argument);
}

}  // namespace
