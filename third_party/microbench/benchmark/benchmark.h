// Minimal header-only stand-in for the Google Benchmark API subset the
// bench/ binaries use. Vendored so microbenches build with zero system
// dependencies and keep working under CI smoke flags: unknown
// command-line flags are ignored (with a note) instead of aborting.
//
// Supported: BENCHMARK(fn) with ->Arg/->Args/->Range/->Complexity(),
// benchmark::State (ranges, timing pause/resume, counters),
// DoNotOptimize, Initialize/RunSpecifiedBenchmarks, BENCHMARK_MAIN,
// and --benchmark_out=FILE [--benchmark_out_format=json]: a Google
// Benchmark-compatible JSON report (real_time == cpu_time; the shim
// has no separate CPU clock) that CI uploads as the per-PR perf
// artifact. Intentionally not supported: threads, fixtures, templated
// benchmarks.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

namespace benchmark {

using IterationCount = std::int64_t;

namespace internal {

inline double& min_time() {
  static double t = 0.05;  // seconds per benchmark case
  return t;
}

inline std::string& filter() {
  static std::string f;
  return f;
}

inline std::string& out_path() {
  static std::string p;
  return p;
}

inline std::string& executable() {
  static std::string e;
  return e;
}

}  // namespace internal

class State {
 public:
  explicit State(std::vector<std::int64_t> ranges)
      : ranges_(std::move(ranges)) {}

  std::int64_t range(std::size_t index = 0) const {
    return index < ranges_.size() ? ranges_[index] : 0;
  }

  IterationCount iterations() const { return iterations_; }

  void PauseTiming() { pause_start_ = Clock::now(); }
  void ResumeTiming() {
    paused_ += std::chrono::duration<double>(Clock::now() - pause_start_)
                   .count();
  }

  void SetBytesProcessed(std::int64_t bytes) { bytes_processed_ = bytes; }
  void SetItemsProcessed(std::int64_t items) { items_processed_ = items; }
  void SetComplexityN(IterationCount n) { complexity_n_ = n; }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count() -
           paused_;
  }

  // Range-for support: `for (auto _ : state)` runs until the time
  // budget is consumed. The value type has a user-provided destructor
  // so the conventionally-unused `_` does not trigger
  // -Wunused-variable under -Werror.
  struct Sentinel {};
  struct Tick {
    ~Tick() {}  // NOLINT(modernize-use-equals-default)
  };
  struct Iterator {
    State* state;
    bool operator!=(Sentinel) const { return state->KeepRunning(); }
    void operator++() {}
    Tick operator*() const { return {}; }
  };
  Iterator begin() {
    start_ = Clock::now();
    paused_ = 0.0;
    iterations_ = 0;
    return Iterator{this};
  }
  Sentinel end() { return Sentinel{}; }

  bool KeepRunning() {
    if (iterations_ == 0) {
      ++iterations_;
      return true;
    }
    if (elapsed_seconds() >= internal::min_time()) return false;
    ++iterations_;
    return true;
  }

  std::int64_t bytes_processed() const { return bytes_processed_; }
  std::int64_t items_processed() const { return items_processed_; }

 private:
  using Clock = std::chrono::steady_clock;
  std::vector<std::int64_t> ranges_;
  IterationCount iterations_ = 0;
  Clock::time_point start_{};
  Clock::time_point pause_start_{};
  double paused_ = 0.0;
  std::int64_t bytes_processed_ = 0;
  std::int64_t items_processed_ = 0;
  IterationCount complexity_n_ = 0;
};

namespace internal {

struct Case {
  std::string name;
  std::function<void(State&)> fn;
  std::vector<std::vector<std::int64_t>> arg_sets;
};

inline std::vector<Case>& registry() {
  static std::vector<Case> cases;
  return cases;
}

}  // namespace internal

class Benchmark {
 public:
  Benchmark(const char* name, std::function<void(State&)> fn) {
    internal::registry().push_back({name, std::move(fn), {}});
    index_ = internal::registry().size() - 1;
  }

  Benchmark* Arg(std::int64_t value) {
    internal::registry()[index_].arg_sets.push_back({value});
    return this;
  }

  Benchmark* Args(std::vector<std::int64_t> values) {
    internal::registry()[index_].arg_sets.push_back(std::move(values));
    return this;
  }

  /// Google Benchmark semantics: lo, lo*8, lo*64, ... with hi included.
  Benchmark* Range(std::int64_t lo, std::int64_t hi) {
    for (std::int64_t v = lo; v < hi; v *= 8) {
      internal::registry()[index_].arg_sets.push_back({v});
    }
    internal::registry()[index_].arg_sets.push_back({hi});
    return this;
  }

  Benchmark* Complexity() { return this; }  // reporting-only; ignored

 private:
  std::size_t index_ = 0;
};

template <typename T>
inline void DoNotOptimize(T const& value) {
#if defined(__GNUC__) || defined(__clang__)
  asm volatile("" : : "r,m"(value) : "memory");
#else
  volatile const T* sink = &value;
  (void)sink;
#endif
}

template <typename T>
inline void DoNotOptimize(T& value) {
#if defined(__GNUC__) || defined(__clang__)
  asm volatile("" : "+r,m"(value) : : "memory");
#else
  volatile T* sink = &value;
  (void)sink;
#endif
}

inline void Initialize(int* argc, char** argv) {
  // Recognize --benchmark_min_time / --benchmark_filter /
  // --benchmark_out[_format]; ignore (and report) anything else so
  // callers can pass scenario flags without crashing the smoke run.
  if (*argc > 0) internal::executable() = argv[0];
  for (int i = 1; i < *argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--benchmark_min_time=", 21) == 0) {
      internal::min_time() = std::strtod(arg + 21, nullptr);
      // Google Benchmark accepts a trailing "s" ("0.5s"); strtod stops
      // at it, so nothing more to do.
    } else if (std::strncmp(arg, "--benchmark_filter=", 19) == 0) {
      internal::filter() = arg + 19;
    } else if (std::strncmp(arg, "--benchmark_out=", 16) == 0) {
      internal::out_path() = arg + 16;
    } else if (std::strncmp(arg, "--benchmark_out_format=", 23) == 0) {
      if (std::strcmp(arg + 23, "json") != 0) {
        std::fprintf(stderr,
                     "microbench: only json output is supported, got %s\n",
                     arg + 23);
      }
    } else if (std::strncmp(arg, "--", 2) == 0) {
      std::fprintf(stderr, "microbench: ignoring flag %s", arg);
      // Consume a following value token, if any, as the flag's value.
      if (i + 1 < *argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        std::fprintf(stderr, " %s", argv[i + 1]);
        ++i;
      }
      std::fprintf(stderr, "\n");
    }
  }
}

namespace internal {

struct RunResult {
  std::string name;
  IterationCount iterations = 0;
  double per_iter_s = 0.0;
  double items_per_second = 0.0;
  double bytes_per_second = 0.0;
};

/// Minimal JSON string escape (backslash, quote, control chars) so an
/// exotic executable path or benchmark name cannot corrupt the report.
inline std::string json_escape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (const char c : in) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

/// Google Benchmark-shaped JSON report (subset: the fields per-PR perf
/// tracking consumes). real_time == cpu_time by construction.
inline void write_json_report(const std::vector<RunResult>& results) {
  std::FILE* out = std::fopen(out_path().c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "microbench: cannot write %s\n",
                 out_path().c_str());
    return;
  }
  std::fprintf(out,
               "{\n"
               "  \"context\": {\n"
               "    \"executable\": \"%s\",\n"
               "    \"library\": \"flips-microbench-shim\"\n"
               "  },\n"
               "  \"benchmarks\": [\n",
               json_escape(executable()).c_str());
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    std::fprintf(out,
                 "    {\n"
                 "      \"name\": \"%s\",\n"
                 "      \"run_type\": \"iteration\",\n"
                 "      \"iterations\": %lld,\n"
                 "      \"real_time\": %.6g,\n"
                 "      \"cpu_time\": %.6g,\n"
                 "      \"time_unit\": \"ns\"",
                 json_escape(r.name).c_str(),
                 static_cast<long long>(r.iterations),
                 r.per_iter_s * 1e9, r.per_iter_s * 1e9);
    if (r.items_per_second > 0.0) {
      std::fprintf(out, ",\n      \"items_per_second\": %.6g",
                   r.items_per_second);
    }
    if (r.bytes_per_second > 0.0) {
      std::fprintf(out, ",\n      \"bytes_per_second\": %.6g",
                   r.bytes_per_second);
    }
    std::fprintf(out, "\n    }%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
}

}  // namespace internal

inline int RunSpecifiedBenchmarks() {
  std::vector<internal::RunResult> results;
  std::printf("%-48s %14s %14s %14s\n", "benchmark", "iterations",
              "time/iter", "throughput");
  std::printf("%s\n", std::string(94, '-').c_str());
  for (auto& c : internal::registry()) {
    std::vector<std::vector<std::int64_t>> arg_sets = c.arg_sets;
    if (arg_sets.empty()) arg_sets.push_back({});
    for (const auto& args : arg_sets) {
      std::string label = c.name;
      for (const std::int64_t a : args) {
        label += '/';
        label += std::to_string(a);
      }
      if (!internal::filter().empty() &&
          label.find(internal::filter()) == std::string::npos) {
        continue;
      }
      State state(args);
      c.fn(state);
      const double seconds = state.elapsed_seconds();
      const double per_iter =
          seconds / static_cast<double>(
                        state.iterations() > 0 ? state.iterations() : 1);
      {
        internal::RunResult r;
        r.name = label;
        r.iterations = state.iterations();
        r.per_iter_s = per_iter;
        if (seconds > 0.0 && state.items_processed() > 0) {
          r.items_per_second =
              static_cast<double>(state.items_processed()) / seconds;
        }
        if (seconds > 0.0 && state.bytes_processed() > 0) {
          r.bytes_per_second =
              static_cast<double>(state.bytes_processed()) / seconds;
        }
        results.push_back(std::move(r));
      }
      char time_buf[32];
      if (per_iter >= 1.0) {
        std::snprintf(time_buf, sizeof time_buf, "%.3f s", per_iter);
      } else if (per_iter >= 1e-3) {
        std::snprintf(time_buf, sizeof time_buf, "%.3f ms", per_iter * 1e3);
      } else if (per_iter >= 1e-6) {
        std::snprintf(time_buf, sizeof time_buf, "%.3f us", per_iter * 1e6);
      } else {
        std::snprintf(time_buf, sizeof time_buf, "%.1f ns", per_iter * 1e9);
      }
      char throughput_buf[32] = "-";
      if (state.bytes_processed() > 0 && seconds > 0.0) {
        std::snprintf(throughput_buf, sizeof throughput_buf, "%.1f MB/s",
                      static_cast<double>(state.bytes_processed()) /
                          seconds / 1e6);
      } else if (state.items_processed() > 0 && seconds > 0.0) {
        std::snprintf(throughput_buf, sizeof throughput_buf, "%.2g it/s",
                      static_cast<double>(state.items_processed()) /
                          seconds);
      }
      std::printf("%-48s %14lld %14s %14s\n", label.c_str(),
                  static_cast<long long>(state.iterations()), time_buf,
                  throughput_buf);
    }
  }
  if (!internal::out_path().empty()) {
    internal::write_json_report(results);
  }
  return 0;
}

inline void Shutdown() {}

}  // namespace benchmark

#define BENCHMARK_PRIVATE_CONCAT(a, b) a##b
#define BENCHMARK_PRIVATE_NAME(line) \
  BENCHMARK_PRIVATE_CONCAT(benchmark_registered_, line)
#define BENCHMARK(fn)                             \
  static ::benchmark::Benchmark* BENCHMARK_PRIVATE_NAME(__LINE__) \
      [[maybe_unused]] = (new ::benchmark::Benchmark(#fn, fn))

#define BENCHMARK_MAIN()                        \
  int main(int argc, char** argv) {             \
    ::benchmark::Initialize(&argc, argv);       \
    return ::benchmark::RunSpecifiedBenchmarks(); \
  }
