#!/usr/bin/env bash
# Smoke runs shared by the sanitizer CI jobs (ASan/UBSan and TSan).
#
#   ci/smoke.sh <build-dir>
#
# 1. bench_micro_selection exercises every selector's select/report
#    path end-to-end (and proves the microbench shim tolerates
#    scenario flags).
# 2. bench_t17_t18_ecg_fedavg at toy scale with --threads 4 drives the
#    FL worker pool — selection, concurrent local training, ordered
#    aggregation, evaluation — so TSan sees the real multi-threaded
#    round loop, not a synthetic test.
# 3. bench_scalability at 2k parties with --threads 4 drives the
#    control plane's sharded ingestion from four concurrent
#    submitters (shard locks, reservoir eviction, late-joiner
#    assignment, drift observation) — the streaming-service paths
#    TSan must see under real contention.
# 4. the 4-thread codec smokes drive the streaming aggregator's
#    concurrent submit/skip fold path plus the quant8/topk wire
#    codecs (per-party error feedback, broadcast-delta compression)
#    under ASan and TSan.
# 5. the flips_run scenario smokes drive the declarative --set
#    override parser end-to-end and a 2-session SessionPool
#    interleave over one shared 4-worker pool — the multi-tenant
#    scheduling path TSan must see under real contention.
# 6. the mode=async smoke drives the buffered asynchronous plane —
#    eager parallel training at dispatch, the arrival event loop,
#    staleness drops, partial buffer flushes — with 4 workers so
#    ASan sees the arena slot lifecycle and TSan the dispatch-batch
#    parallelism.
# 7. the chaos smokes turn the deterministic fault plan on: a sync
#    run with churn + crashes + a 50% quorum floor (backfill waves,
#    quorum-degraded folds) and a 4-thread async run with churn +
#    crashes (in-place retry redispatch) — the recovery paths ASan
#    and TSan must see under real worker-pool contention.
# 8. the UDS serving smoke runs flips_serve + flips_loadgen as real
#    processes: two tenants over a unix socket, frame parsing, the
#    reader/scheduler thread handoff, admission accounting, and
#    graceful drain — the socket plane TSan and ASan must see end to
#    end (the loadgen exits non-zero if served results are not
#    bit-identical to in-process runs). --metrics additionally polls
#    the kMetrics frame before shutdown and exits non-zero when a
#    mandatory telemetry family is missing from the snapshot or the
#    server-side rejection counters disagree with the clients' own
#    kRejected tally.
# 9. the chaos serving smoke re-runs the UDS pair with --fault: the
#    loadgen kills its connection every few steps (half of them with
#    a request in flight) and recovers via reconnect + idempotent
#    replay; it still exits non-zero unless the served results are
#    bit-identical to in-process runs.
set -euo pipefail

build_dir=${1:?usage: ci/smoke.sh <build-dir>}

"${build_dir}/bench/bench_micro_selection" --parties 8 --rounds 3 \
    --benchmark_min_time=0.01

"${build_dir}/bench/bench_t17_t18_ecg_fedavg" --parties 12 --samples 24 \
    --rounds 4 --runs 1 --threads 4

"${build_dir}/bench/bench_scalability" --parties 2000 --threads 4

"${build_dir}/bench/bench_t17_t18_ecg_fedavg" --parties 12 --samples 24 \
    --rounds 4 --runs 1 --threads 4 --codec quant8

"${build_dir}/bench/bench_t17_t18_ecg_fedavg" --parties 12 --samples 24 \
    --rounds 4 --runs 1 --threads 4 --codec topk

"${build_dir}/bench/flips_run" --scenario ecg-fedyogi \
    --set parties=12 --set samples=24 --set rounds=4 --set runs=1 \
    --set threads=4 --set codec=quant8

"${build_dir}/bench/flips_run" --set sessions=2 --set parties=12 \
    --set samples=24 --set rounds=4 --set threads=4

"${build_dir}/bench/flips_run" --set mode=async --set buffer_k=2 \
    --set max_staleness=2 --set parties=12 --set samples=24 \
    --set rounds=8 --set runs=1 --set threads=4 --set codec=quant8

"${build_dir}/bench/flips_run" --set parties=12 --set samples=24 \
    --set rounds=4 --set runs=1 --set threads=4 --set churn=1 \
    --set fault_rate=0.1 --set min_quorum=0.5

"${build_dir}/bench/flips_run" --set mode=async --set buffer_k=2 \
    --set parties=12 --set samples=24 --set rounds=8 --set runs=1 \
    --set threads=4 --set churn=1 --set fault_rate=0.1

serve_sock="$(mktemp -u /tmp/flips_smoke_XXXXXX.sock)"
"${build_dir}/bench/flips_serve" --uds "${serve_sock}" --threads 4 &
serve_pid=$!
for _ in $(seq 1 100); do
  [ -S "${serve_sock}" ] && break
  sleep 0.1
done
"${build_dir}/bench/flips_loadgen" --uds "${serve_sock}" --tenants 2 \
    --set parties=12 --set samples=24 --set rounds=4 --set threads=4 \
    --metrics --shutdown
wait "${serve_pid}"

chaos_sock="$(mktemp -u /tmp/flips_chaos_XXXXXX.sock)"
"${build_dir}/bench/flips_serve" --uds "${chaos_sock}" --threads 4 \
    --idle-timeout 30 &
chaos_pid=$!
for _ in $(seq 1 100); do
  [ -S "${chaos_sock}" ] && break
  sleep 0.1
done
"${build_dir}/bench/flips_loadgen" --uds "${chaos_sock}" --tenants 2 \
    --set parties=12 --set samples=24 --set rounds=4 --set threads=4 \
    --set churn=1 --set fault_rate=0.1 --fault --fault-every 2 \
    --shutdown
wait "${chaos_pid}"
