// Scenario driver: launches any FL scenario from the CLI as a preset
// plus declarative `--set key=value` overrides (one ScenarioSpec is the
// whole configuration surface — see bench/common/scenario.h).
//
//   flips_run                                   # default ecg-fedavg
//   flips_run --scenario femnist-fedyogi --set rounds=60 --set runs=3
//   flips_run --set selector=oort --set codec=quant8 --set dp_noise=0.5
//   flips_run --set sessions=4 --set threads=4  # multi-tenant pool
//   flips_run --list                            # preset names
//
// sessions=1 runs the scenario through the shared bench engine
// (federation cache + perf,… lines). sessions>1 interleaves N
// federations — seeds seed, seed+1000, … so session i is bit-identical
// to run i of the solo engine — through one fl::SessionPool over one
// shared worker pool, and prints a `perf,multitenant,…` line.
#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/experiment.h"
#include "common/perf.h"
#include "common/scenario.h"
#include "common/thread_pool.h"
#include "fl/metrics_observer.h"
#include "fl/session_pool.h"
#include "obs/trace.h"

namespace {

/// Telemetry sinks resolved from --metrics-out / --trace-out. Both are
/// optional; when set, every session (solo runs and multi-tenant
/// alike) gets the matching observers attached before stepping.
struct Telemetry {
  std::shared_ptr<flips::fl::JsonlRoundObserver::SharedFile> metrics_file;
  bool tracing = false;  ///< JsonlTraceSink installed on the global tracer

  bool active() const { return metrics_file != nullptr || tracing; }

  /// Observers for run/session index `run`. Tracing needs a
  /// MetricsObserver: it is the component that emits phase/round spans
  /// and drains the trace ring at round end.
  std::vector<std::shared_ptr<flips::fl::RoundObserver>> observers(
      const std::string& scenario, std::size_t run) const {
    std::vector<std::shared_ptr<flips::fl::RoundObserver>> out;
    if (metrics_file) {
      out.push_back(
          std::make_shared<flips::fl::JsonlRoundObserver>(metrics_file, run));
    }
    if (tracing) {
      out.push_back(std::make_shared<flips::fl::MetricsObserver>(
          scenario + "/r" + std::to_string(run)));
    }
    return out;
  }
};

void print_usage(const flips::ScenarioSpec& spec) {
  std::cout
      << "usage: flips_run [--scenario NAME] [--set key=value]... "
         "[--csv] [--metrics-out PATH] [--trace-out PATH] [--list]\n\n"
         "  --metrics-out PATH  append one JSON line per completed round\n"
         "                      (run, round, accuracy, bytes, dropped_stale,\n"
         "                      per-phase durations)\n"
         "  --trace-out PATH    append one JSON span per session phase\n\n"
         "scenario keys (with the resolved scenario's values):\n"
      << flips::scenario_usage(spec);
}

std::string format_opt(const std::optional<double>& value) {
  if (!value) return "never";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.0f", *value);
  return buf;
}

int run_solo(const flips::ScenarioSpec& spec, bool csv,
             const Telemetry& telemetry) {
  auto config = flips::to_experiment_config(spec);
  if (telemetry.active()) {
    config.observer_factory = [&](std::size_t run) {
      return telemetry.observers(spec.name, run);
    };
  }
  const auto result =
      flips::bench::run_selector(config, flips::selector_kind(spec));

  flips::bench::print_table_header(
      "scenario " + spec.name + " (" + spec.selector + ")",
      {"peak-acc %", "rounds-to-tgt", "coverage", "jain", "total GiB",
       "wall s/round"});
  char peak[32], jain[32], gib[32], wall[32];
  std::snprintf(peak, sizeof peak, "%.2f", 100.0 * result.peak_accuracy);
  std::snprintf(jain, sizeof jain, "%.3f", result.mean_jain_index);
  std::snprintf(gib, sizeof gib, "%.4f", result.total_gib);
  std::snprintf(wall, sizeof wall, "%.4f", result.wall_s_per_round);
  flips::bench::print_table_row(
      {peak,
       flips::bench::format_rounds(result.rounds_to_target, spec.rounds),
       format_opt(result.mean_coverage_round), jain, gib, wall});
  if (csv) flips::bench::print_curve_csv(spec.name, result);
  return 0;
}

int run_multitenant(const flips::ScenarioSpec& spec, bool csv,
                    const Telemetry& telemetry) {
  const auto config = flips::to_experiment_config(spec);
  const auto kind = flips::selector_kind(spec);

  // One worker pool, shared by every tenant (the multi-tenant serving
  // shape: N federations contend for the host's cores instead of
  // oversubscribing them N-fold).
  flips::common::ThreadPool workers(spec.threads);
  flips::fl::SessionPool pool;
  for (std::size_t s = 0; s < spec.sessions; ++s) {
    // Seed stride matches the solo engine's per-run stride, so tenant
    // s is bit-identical to run s of `sessions=1 runs=N`.
    auto session = flips::bench::make_session(config, kind,
                                              spec.seed + 1000 * s, &workers);
    for (auto& observer : telemetry.observers(spec.name, s)) {
      session->add_observer(std::move(observer));
    }
    pool.add(std::move(session));
  }

  const auto start = std::chrono::steady_clock::now();
  pool.run_all();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start)
          .count();

  flips::bench::print_table_header(
      "multi-tenant " + spec.name + " (" + std::to_string(spec.sessions) +
          " sessions, " + std::to_string(workers.size()) +
          " shared workers)",
      {"session", "peak-acc %", "rounds-to-tgt", "total GiB"});
  constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;
  for (std::size_t s = 0; s < pool.size(); ++s) {
    const auto result = pool.session(s).result();
    char peak[32], gib[32];
    std::snprintf(peak, sizeof peak, "%.2f", 100.0 * result.peak_accuracy);
    std::snprintf(gib, sizeof gib, "%.4f",
                  static_cast<double>(result.total_bytes) / kGiB);
    std::string rounds = "never";
    if (result.rounds_to_target) {
      rounds = std::to_string(*result.rounds_to_target);
    }
    flips::bench::print_table_row(
        {std::to_string(s), peak, rounds, gib});
    if (csv) {
      // Same schema as print_curve_csv, one experiment tag per tenant.
      for (const auto& record : result.history) {
        std::cout << "csv," << spec.name << "/s" << s << ","
                  << spec.selector << "," << record.round << ","
                  << record.balanced_accuracy << "\n";
      }
    }
  }

  // Stable machine-readable line for the CI perf artifact:
  //   perf,multitenant,<sessions>,<wall_s_per_round>,<rounds_total>
  const double per_round =
      pool.rounds_stepped() > 0
          ? wall_s / static_cast<double>(pool.rounds_stepped())
          : 0.0;
  flips::bench::PerfLine("multitenant")
      .uint("sessions", spec.sessions)
      .num("wall_s_per_round", per_round, 6)
      .uint("rounds_total", pool.rounds_stepped())
      .print();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  flips::ScenarioSpec spec = flips::scenario_preset("ecg-fedavg");
  bool csv = false;
  std::string metrics_out;
  std::string trace_out;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      auto next_value = [&]() -> const char* {
        if (i + 1 >= argc) {
          throw std::invalid_argument("missing value for " +
                                      std::string(arg));
        }
        return argv[++i];
      };
      if (arg == "--scenario") {
        spec = flips::scenario_preset(next_value());
      } else if (arg == "--set") {
        flips::apply_override(spec, next_value());
      } else if (arg == "--csv") {
        csv = true;
      } else if (arg == "--metrics-out") {
        metrics_out = next_value();
      } else if (arg == "--trace-out") {
        trace_out = next_value();
      } else if (arg == "--list") {
        for (const auto& name : flips::scenario_preset_names()) {
          std::cout << name << "\n";
        }
        return 0;
      } else if (arg == "--help" || arg == "-h") {
        print_usage(spec);
        return 0;
      } else {
        throw std::invalid_argument("unknown flag: " + std::string(arg) +
                                    " (try --help)");
      }
    }
  } catch (const std::invalid_argument& error) {
    std::cerr << error.what() << "\n";
    return 2;
  }

  std::cout << "flips_run scenario " << spec.name << ": dataset "
            << spec.dataset << ", " << spec.parties << " parties, "
            << spec.rounds << " rounds, ";
  if (spec.sessions > 1) {
    // Multi-tenant mode schedules `sessions` seed-strided federations;
    // the solo engine's `runs` averaging does not apply.
    std::cout << spec.sessions << " sessions, ";
  } else {
    std::cout << spec.runs << " run(s), ";
  }
  std::cout << "mode " << spec.mode << ", selector " << spec.selector
            << ", codec " << spec.codec << "\n";

  Telemetry telemetry;
  if (!metrics_out.empty()) {
    telemetry.metrics_file =
        std::make_shared<flips::fl::JsonlRoundObserver::SharedFile>(
            metrics_out);
  }
  if (!trace_out.empty()) {
    flips::obs::Tracer::global().set_sink(
        std::make_shared<flips::obs::JsonlTraceSink>(trace_out));
    telemetry.tracing = true;
  }

  const int status = spec.sessions > 1
                         ? run_multitenant(spec, csv, telemetry)
                         : run_solo(spec, csv, telemetry);
  if (telemetry.tracing) {
    // Flush any spans still buffered past the last round-end drain.
    flips::obs::Tracer::global().drain();
    flips::obs::Tracer::global().set_sink(nullptr);
  }
  return status;
}
