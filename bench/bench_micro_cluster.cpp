// Micro-benchmarks for the clustering substrate: k-means++ scaling in
// party count and dimension (the paper argues k-means is cheap enough to
// run once per job inside a TEE — §3.4), DBI evaluation, and the
// agglomerative clustering used by the GradClus baseline.
#include <benchmark/benchmark.h>

#include "cluster/dbi.h"
#include "cluster/hierarchical.h"
#include "cluster/kmeans.h"
#include "common/rng.h"

namespace {

std::vector<flips::cluster::Point> make_points(std::size_t n, std::size_t dim,
                                               std::size_t modes,
                                               std::uint64_t seed) {
  flips::common::Rng rng(seed);
  std::vector<flips::cluster::Point> centers(modes);
  for (auto& c : centers) {
    c.resize(dim);
    for (auto& v : c) v = rng.normal(0.0, 3.0);
  }
  std::vector<flips::cluster::Point> points(n);
  for (std::size_t i = 0; i < n; ++i) {
    points[i].resize(dim);
    const auto& c = centers[i % modes];
    for (std::size_t j = 0; j < dim; ++j) {
      points[i][j] = c[j] + rng.normal(0.0, 0.5);
    }
  }
  return points;
}

void BM_KMeansParties(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto points = make_points(n, 10, 10, 42);
  flips::cluster::KMeansConfig config;
  config.k = 10;
  for (auto _ : state) {
    flips::common::Rng rng(7);
    benchmark::DoNotOptimize(flips::cluster::kmeans(points, config, rng));
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(n));
}
BENCHMARK(BM_KMeansParties)->Range(50, 3200)->Complexity();

void BM_KMeansDimensions(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  const auto points = make_points(200, dim, 10, 42);
  flips::cluster::KMeansConfig config;
  config.k = 10;
  for (auto _ : state) {
    flips::common::Rng rng(7);
    benchmark::DoNotOptimize(flips::cluster::kmeans(points, config, rng));
  }
}
BENCHMARK(BM_KMeansDimensions)->Range(5, 80);

void BM_DaviesBouldin(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto points = make_points(n, 10, 10, 42);
  flips::cluster::KMeansConfig config;
  config.k = 10;
  flips::common::Rng rng(7);
  const auto result = flips::cluster::kmeans(points, config, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(flips::cluster::davies_bouldin_index(
        points, result.assignments, result.centroids));
  }
}
BENCHMARK(BM_DaviesBouldin)->Range(50, 800);

void BM_AgglomerativeGradClus(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto points = make_points(n, 64, 8, 42);
  const auto distances = flips::cluster::cosine_distance_matrix(points);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        flips::cluster::agglomerative_cluster(distances, n / 5));
  }
}
BENCHMARK(BM_AgglomerativeGradClus)->Range(50, 400);

}  // namespace

BENCHMARK_MAIN();
