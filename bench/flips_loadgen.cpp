// Load generator for flips_serve: drives N concurrent tenants over
// TCP/UDS, each registering (kHello), opening a seed-strided
// ScenarioSpec session (kOpenSession), and stepping it to completion
// (kStep) in one of two disciplines:
//
//   closed loop  keep --window requests outstanding per tenant; a new
//                step is sent only when a reply lands (classic
//                closed-loop latency measurement)
//   open loop    send steps at --rate per second per tenant regardless
//                of replies (arrival-driven; overload shows up as
//                admission rejections instead of client throttling)
//
// Tenant seeds stride seed, seed+1000, ... — the same stride as
// flips_run's multitenant mode — and after the run each tenant fetches
// final parameters (kResult) and re-runs its ScenarioSpec in-process,
// comparing bitwise. The machine-readable summary
//
//   perf,serving,<tenants>,<p50_ms>,<p99_ms>,<rounds_per_s>,<yes|no>
//
// carries client-observed step latency, served throughput, and that
// bit-identity verdict (the CI perf rail fails unless it is "yes").
//
//   flips_loadgen --uds /tmp/flips.sock --tenants 2 --set rounds=6
//   flips_loadgen --port 7070 --open --rate 40 --shutdown
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/experiment.h"
#include "common/perf.h"
#include "common/scenario.h"
#include "obs/metrics.h"
#include "serve/client.h"

namespace {

using Clock = std::chrono::steady_clock;

struct Options {
  std::string uds_path;
  std::uint16_t tcp_port = 0;
  bool use_tcp = false;
  std::size_t tenants = 2;
  flips::ScenarioSpec spec = flips::scenario_preset("ecg-fedavg");
  bool open_loop = false;
  double rate = 40.0;        ///< open loop: steps/s per tenant
  std::size_t window = 2;    ///< closed loop: outstanding per tenant
  bool send_shutdown = false;
  bool verify = true;
  bool metrics = false;      ///< poll kMetrics and cross-check counters
  /// Chaos arm: kill the connection mid-run every --fault-every ok
  /// steps (sometimes with a request in flight) and rely on the
  /// client's reconnect-and-replay path; bit-identity is still gated.
  bool fault = false;
  std::size_t fault_every = 5;
};

/// Step-latency histogram bounds: 1 µs .. 100 s in milliseconds at ~9%
/// resolution. Bounded memory however long the run (the previous
/// unbounded vector<double> grew with every reply).
constexpr flips::obs::HistogramConfig kLatencyMsConfig{1e-3, 1e5, 3};

struct TenantStats {
  flips::obs::Histogram latency_ms{kLatencyMsConfig};  ///< ok steps only
  std::size_t steps_ok = 0;
  std::size_t rejections = 0;
  std::vector<double> parameters;    ///< served final parameters
  std::string error;                 ///< non-empty = the tenant failed
};

flips::serve::Client connect(const Options& options) {
  flips::serve::Client client;
  if (options.use_tcp) {
    client.connect_tcp(options.tcp_port);
  } else {
    client.connect_uds(options.uds_path);
  }
  return client;
}

flips::net::Frame step_request(std::uint64_t request_id) {
  flips::net::Frame frame;
  frame.type = flips::net::FrameType::kStep;
  frame.payload = flips::serve::encode_step_request(request_id);
  return frame;
}

/// One tenant's whole serving conversation. Throws on protocol errors;
/// the caller captures the message into TenantStats::error.
void drive_tenant(const Options& options, std::size_t tenant_index,
                  TenantStats& stats) {
  flips::ScenarioSpec spec = options.spec;
  spec.seed += 1000 * tenant_index;  // flips_run's multitenant stride

  flips::serve::Client client = connect(options);
  client.hello("tenant-" + std::to_string(tenant_index));
  client.open_session(spec.to_key_values());

  std::unordered_map<std::uint64_t, Clock::time_point> sent_at;
  std::uint64_t next_id = 1;
  std::size_t outstanding = 0;
  bool finished = false;

  if (options.fault) {
    // Chaos discipline: strict request/reply through the self-healing
    // call path, killing our own connection every fault_every ok steps
    // — on odd kills with the request already on the wire, so the
    // server may execute a step whose reply we never see and the
    // replayed id steps again. The session's fixed round count makes
    // that harmless: we drive until the server says done, and the
    // final parameters must still match the in-process run bitwise.
    client.set_retry_policy({.max_attempts = 40,
                             .backoff_base_s = 0.01,
                             .backoff_mult = 1.5});
    std::size_t ok_since_kill = 0;
    std::size_t kills = 0;
    while (!finished) {
      const std::uint64_t id = next_id++;
      const auto request = step_request(id);
      if (ok_since_kill >= options.fault_every) {
        ok_since_kill = 0;
        ++kills;
        if (kills % 2 == 1) {
          try {
            client.send(request);  // in-flight when the connection dies
          } catch (const std::exception&) {
          }
        }
        client.close();
      }
      const auto t0 = Clock::now();
      const auto reply = client.call_with_retry(request);
      if (reply.type != flips::net::FrameType::kStep) {
        throw std::runtime_error("unexpected reply type");
      }
      flips::serve::StepReply body;
      if (!flips::serve::decode_step_reply(reply.payload, body)) {
        throw std::runtime_error("undecodable step reply");
      }
      switch (reply.status) {
        case flips::net::FrameStatus::kOk:
          stats.latency_ms.record(
              std::chrono::duration<double, std::milli>(Clock::now() - t0)
                  .count());
          ++stats.steps_ok;
          ++ok_since_kill;
          if (body.finished) finished = true;
          break;
        case flips::net::FrameStatus::kRejected:
          ++stats.rejections;
          break;
        case flips::net::FrameStatus::kSessionDone:
          finished = true;
          break;
        default:
          throw std::runtime_error(
              "step failed: " + flips::serve::decode_text(reply.payload));
      }
    }
    flips::net::Frame result_request;
    result_request.type = flips::net::FrameType::kResult;
    const auto reply = client.call_with_retry(result_request);
    if (reply.status != flips::net::FrameStatus::kOk) {
      throw std::runtime_error("result fetch failed: " +
                               flips::serve::decode_text(reply.payload));
    }
    if (!flips::serve::decode_result_reply(reply.payload,
                                           stats.parameters)) {
      throw std::runtime_error("undecodable result payload");
    }
    return;
  }

  auto process = [&](const flips::net::Frame& reply) {
    if (reply.type != flips::net::FrameType::kStep) {
      throw std::runtime_error("unexpected reply type");
    }
    flips::serve::StepReply body;
    if (!flips::serve::decode_step_reply(reply.payload, body)) {
      throw std::runtime_error("undecodable step reply");
    }
    --outstanding;
    switch (reply.status) {
      case flips::net::FrameStatus::kOk: {
        const auto it = sent_at.find(body.request_id);
        if (it != sent_at.end()) {
          stats.latency_ms.record(
              std::chrono::duration<double, std::milli>(Clock::now() -
                                                        it->second)
                  .count());
          sent_at.erase(it);
        }
        ++stats.steps_ok;
        if (body.finished) finished = true;
        return;
      }
      case flips::net::FrameStatus::kRejected:
        ++stats.rejections;
        sent_at.erase(body.request_id);
        return;
      case flips::net::FrameStatus::kSessionDone:
        finished = true;
        sent_at.erase(body.request_id);
        return;
      default:
        throw std::runtime_error("step failed: " +
                                 flips::serve::decode_text(reply.payload));
    }
  };

  auto send_step = [&] {
    const std::uint64_t id = next_id++;
    sent_at.emplace(id, Clock::now());
    client.send(step_request(id));
    ++outstanding;
  };

  if (options.open_loop) {
    const auto interval = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(1.0 / options.rate));
    auto next_send = Clock::now();
    while (!finished) {
      const auto now = Clock::now();
      if (now >= next_send) {
        // Drain ready replies first so a rate above the service rate
        // cannot fill both socket buffers and deadlock on send().
        while (!finished) {
          const auto reply = client.try_recv(0);
          if (!reply) break;
          process(*reply);
        }
        if (finished) break;
        send_step();
        next_send += interval;
        continue;
      }
      const int wait_ms = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(next_send -
                                                                now)
              .count());
      if (const auto reply = client.try_recv(std::max(wait_ms, 1))) {
        process(*reply);
      }
    }
  } else {
    while (!finished) {
      if (outstanding < options.window) {
        send_step();
        continue;
      }
      process(client.recv());
    }
  }
  while (outstanding > 0) process(client.recv());

  // Fetch the served model for the bit-identity check.
  flips::net::Frame result_request;
  result_request.type = flips::net::FrameType::kResult;
  const auto reply = client.call(result_request);
  if (reply.status != flips::net::FrameStatus::kOk) {
    throw std::runtime_error("result fetch failed: " +
                             flips::serve::decode_text(reply.payload));
  }
  if (!flips::serve::decode_result_reply(reply.payload,
                                         stats.parameters)) {
    throw std::runtime_error("undecodable result payload");
  }
}

/// Re-runs `tenant_index`'s exact scenario in-process and compares the
/// final parameters bitwise against what the server sent back.
bool bit_identical(const Options& options, std::size_t tenant_index,
                   const std::vector<double>& served) {
  flips::ScenarioSpec spec = options.spec;
  spec.seed += 1000 * tenant_index;
  const auto config = flips::to_experiment_config(spec);
  auto session = flips::bench::make_session(
      config, flips::selector_kind(spec), spec.seed);
  while (!session->done()) session->advance();
  const auto reference = session->result().final_parameters;
  return reference.size() == served.size() &&
         (served.empty() ||
          std::memcmp(reference.data(), served.data(),
                      served.size() * sizeof(double)) == 0);
}

/// Mandatory families every kMetrics snapshot of a serving run must
/// carry (smoke.sh fails the build when one goes missing).
constexpr std::string_view kMandatoryFamilies[] = {
    "flips_serve_frames_total",     "flips_serve_replies_total",
    "flips_serve_steps_total",      "flips_serve_rejections_total",
    "flips_session_rounds_total",
};

int usage() {
  std::cerr
      << "usage: flips_loadgen (--uds PATH | --port N) [--tenants N]\n"
         "                     [--scenario NAME] [--set key=value]...\n"
         "                     [--open] [--rate R] [--window N]\n"
         "                     [--no-verify] [--metrics] [--shutdown]\n"
         "                     [--fault] [--fault-every N]\n"
         "  --tenants N    concurrent tenant connections (default 2)\n"
         "  --open         open-loop arrivals at --rate steps/s/tenant\n"
         "  --window N     closed-loop outstanding steps per tenant\n"
         "  --fault        chaos arm: kill+revive each tenant's\n"
         "                 connection mid-run (reconnect-and-replay);\n"
         "                 bit-identity must still hold\n"
         "  --fault-every N  ok steps between connection kills\n"
         "  --no-verify    skip the in-process bit-identity re-run\n"
         "  --metrics      fetch the kMetrics snapshot after the run and\n"
         "                 check mandatory families + that the server's\n"
         "                 rejection counters equal the client tally\n"
         "                 (assumes a freshly started server)\n"
         "  --shutdown     send kShutdown once all tenants finish\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      auto next_value = [&]() -> const char* {
        if (i + 1 >= argc) {
          throw std::invalid_argument("missing value for " +
                                      std::string(arg));
        }
        return argv[++i];
      };
      if (arg == "--uds") {
        options.uds_path = next_value();
      } else if (arg == "--port") {
        options.tcp_port =
            static_cast<std::uint16_t>(std::stoul(next_value()));
        options.use_tcp = true;
      } else if (arg == "--tenants") {
        options.tenants = std::stoul(next_value());
      } else if (arg == "--scenario") {
        options.spec = flips::scenario_preset(next_value());
      } else if (arg == "--set") {
        flips::apply_override(options.spec, next_value());
      } else if (arg == "--open") {
        options.open_loop = true;
      } else if (arg == "--rate") {
        options.rate = std::stod(next_value());
      } else if (arg == "--window") {
        options.window = std::stoul(next_value());
      } else if (arg == "--fault") {
        options.fault = true;
      } else if (arg == "--fault-every") {
        options.fault_every = std::stoul(next_value());
      } else if (arg == "--no-verify") {
        options.verify = false;
      } else if (arg == "--metrics") {
        options.metrics = true;
      } else if (arg == "--shutdown") {
        options.send_shutdown = true;
      } else if (arg == "--help" || arg == "-h") {
        usage();
        return 0;
      } else {
        throw std::invalid_argument("unknown flag: " + std::string(arg));
      }
    }
    if (options.uds_path.empty() && !options.use_tcp) {
      throw std::invalid_argument("need --uds PATH or --port N");
    }
    if (options.tenants == 0 || options.window == 0 ||
        options.rate <= 0) {
      throw std::invalid_argument("tenants/window/rate must be positive");
    }
    if (options.fault && options.fault_every == 0) {
      throw std::invalid_argument("--fault-every must be positive");
    }
  } catch (const std::exception& error) {
    std::cerr << error.what() << "\n";
    return usage();
  }

  std::cout << "flips_loadgen: " << options.tenants << " tenants, "
            << (options.open_loop ? "open" : "closed") << " loop, "
            << "scenario " << options.spec.name << " ("
            << options.spec.rounds << " rounds)\n";

  std::vector<TenantStats> stats(options.tenants);
  const auto start = Clock::now();
  {
    std::vector<std::thread> tenants;
    tenants.reserve(options.tenants);
    for (std::size_t t = 0; t < options.tenants; ++t) {
      tenants.emplace_back([&options, &stats, t] {
        try {
          drive_tenant(options, t, stats[t]);
        } catch (const std::exception& error) {
          stats[t].error = error.what();
        }
      });
    }
    for (auto& tenant : tenants) tenant.join();
  }
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - start).count();

  // Snapshot the server's registry before any shutdown: the kMetrics
  // frame needs no hello, so a fresh connection suffices.
  std::string metrics_text;
  std::string metrics_error;
  if (options.metrics) {
    try {
      flips::serve::Client client = connect(options);
      metrics_text = client.metrics();
    } catch (const std::exception& error) {
      metrics_error = error.what();
    }
  }

  if (options.send_shutdown) {
    try {
      flips::serve::Client client = connect(options);
      client.shutdown_server();
    } catch (const std::exception& error) {
      std::cerr << "shutdown request failed: " << error.what() << "\n";
    }
  }

  bool failed = false;
  flips::obs::Histogram all_latency_ms(kLatencyMsConfig);
  std::size_t total_steps = 0;
  std::size_t total_rejections = 0;
  bool identical = true;
  for (std::size_t t = 0; t < options.tenants; ++t) {
    const auto& tenant = stats[t];
    if (!tenant.error.empty()) {
      std::cerr << "tenant-" << t << " failed: " << tenant.error << "\n";
      failed = true;
      continue;
    }
    const bool match =
        !options.verify || bit_identical(options, t, tenant.parameters);
    identical = identical && match;
    std::cout << "tenant-" << t << ": " << tenant.steps_ok << " steps, "
              << tenant.rejections << " rejected, dim "
              << tenant.parameters.size() << ", bit-identical "
              << (options.verify ? (match ? "yes" : "NO") : "skipped")
              << "\n";
    all_latency_ms.merge(tenant.latency_ms);
    total_steps += tenant.steps_ok;
    total_rejections += tenant.rejections;
  }
  if (failed) return 1;

  const double p50 = all_latency_ms.quantile(0.50);
  const double p99 = all_latency_ms.quantile(0.99);
  const double rounds_per_s =
      wall_s > 0 ? static_cast<double>(total_steps) / wall_s : 0.0;

  std::cout << "total: " << total_steps << " steps ("
            << total_rejections << " rejected) in " << wall_s << " s\n";
  flips::bench::PerfLine("serving")
      .uint("tenants", options.tenants)
      .num("p50_ms", p50, 3)
      .num("p99_ms", p99, 3)
      .num("rounds_per_s", rounds_per_s, 3)
      .text("bit_identical",
            options.verify ? (identical ? "yes" : "no") : "skipped")
      .print();

  // --metrics cross-check: every mandatory family must appear in the
  // snapshot, and the server-side rejection counters must sum to
  // exactly what the clients tallied — the end-to-end proof that the
  // admission path and its telemetry agree.
  bool metrics_ok = true;
  if (options.metrics) {
    if (!metrics_error.empty()) {
      std::cerr << "metrics fetch failed: " << metrics_error << "\n";
      metrics_ok = false;
    } else {
      bool families_ok = true;
      for (const auto family : kMandatoryFamilies) {
        if (!flips::obs::prometheus_has_family(metrics_text, family)) {
          std::cerr << "metrics: mandatory family missing: " << family
                    << "\n";
          families_ok = false;
        }
      }
      const double server_rejections =
          flips::obs::prometheus_family_sum(metrics_text,
                                            "flips_serve_rejections_total")
              .value_or(-1.0);
      const bool rejections_match =
          server_rejections == static_cast<double>(total_rejections);
      if (!rejections_match) {
        std::cerr << "metrics: server counted " << server_rejections
                  << " rejections, clients counted " << total_rejections
                  << "\n";
      }
      metrics_ok = families_ok && rejections_match;
      // Stable machine-readable verdict (smoke.sh greps for ",match"):
      //   metrics,<ok|missing>,<server_rejections>,<client_rejections>,
      //           <match|MISMATCH>
      std::printf("metrics,%s,%.0f,%zu,%s\n",
                  families_ok ? "ok" : "missing", server_rejections,
                  total_rejections,
                  rejections_match ? "match" : "MISMATCH");
    }
  }
  return (options.verify && !identical) || !metrics_ok ? 1 : 0;
}
