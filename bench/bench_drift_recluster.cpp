// Drift + re-clustering study (paper §8 future-work 2, built on §3.4's
// premise that clustering holds "as long as … the data at participants
// does not change significantly").
//
// Protocol: train with FLIPS selection; at mid-run every party's label
// prior rotates (data drift). Compare four continuations:
//   stale    — keep the pre-drift clusters (what baseline FLIPS does);
//   refresh  — manually re-cluster on fresh label distributions;
//   service  — parties re-report their label distributions to the
//              streaming control plane on a rolling schedule; its
//              DriftMonitor flags the shift and the service
//              re-clusters itself, the selector consuming the new
//              epoch mid-job (the automated version of `refresh`);
//   random   — random selection throughout (drift-oblivious control).
// Expected shape: all FLIPS arms dip at the drift point; refresh and
// service recover to the pre-drift trajectory (service a trigger-lag
// behind), stale converges slower post-drift (its "equitable
// representation" is now mis-aimed), random stays worst.
#include <algorithm>
#include <iostream>
#include <memory>

#include "cluster/kmeans.h"
#include "common/experiment.h"
#include "common/stats.h"
#include "core/private_clustering.h"
#include "ctrl/recluster_observer.h"
#include "data/drift.h"
#include "data/federated.h"
#include "fl/session.h"
#include "selection/factory.h"
#include "selection/flips_selector.h"

namespace {

struct Phase {
  std::vector<double> accuracy;  ///< per round
};

struct DriftRun {
  Phase before;
  Phase after;
};

flips::fl::FlJobConfig job_config(std::size_t rounds, std::size_t nr,
                                  std::uint64_t seed) {
  flips::fl::FlJobConfig job;
  job.rounds = rounds;
  job.parties_per_round = nr;
  job.local.epochs = 2;
  job.local.sgd.learning_rate = 0.05;
  job.server.optimizer = flips::fl::ServerOpt::kFedYogi;
  job.server.learning_rate = 0.05;
  job.seed = seed;
  job.eval_every = 2;
  return job;
}

std::vector<std::size_t> cluster_parties(
    const std::vector<flips::data::LabelDistribution>& lds, std::size_t k,
    std::uint64_t seed) {
  std::vector<flips::cluster::Point> points;
  points.reserve(lds.size());
  for (const auto& ld : lds) {
    points.push_back(flips::common::normalized(ld));
  }
  flips::common::Rng rng(seed);
  flips::cluster::KMeansConfig kc;
  kc.k = k;
  kc.restarts = 3;
  return flips::cluster::kmeans(points, kc, rng).assignments;
}

/// Runs `rounds` of FL through a steppable FederationSession and
/// returns final parameters + accuracy curve. `observer` (optional) is
/// the control-plane attachment point — the service arm hangs a
/// ctrl::ReclusterObserver here.
Phase run_phase(const std::vector<flips::fl::Party>& parties,
                const flips::data::Dataset& test,
                flips::ml::Sequential model,
                std::unique_ptr<flips::fl::ParticipantSelector> selector,
                std::size_t rounds, std::size_t nr, std::uint64_t seed,
                std::vector<double>* final_params,
                flips::fl::RoundObserver* observer = nullptr) {
  // Non-owning alias: the bench's party vectors outlive every phase.
  flips::fl::FederationSession session(
      job_config(rounds, nr, seed),
      std::shared_ptr<const std::vector<flips::fl::Party>>(
          std::shared_ptr<const void>{}, &parties),
      test, std::move(model), std::move(selector));
  session.add_observer(observer);
  while (!session.done()) session.advance();
  const auto result = session.result();
  Phase phase;
  for (const auto& record : result.history) {
    phase.accuracy.push_back(record.balanced_accuracy);
  }
  *final_params = result.final_parameters;
  return phase;
}

}  // namespace

int main(int argc, char** argv) {
  flips::bench::Scale default_scale;
  default_scale.num_parties = 60;
  default_scale.rounds = 60;  // per phase
  const auto options =
      flips::bench::parse_bench_options(argc, argv, default_scale);

  const std::size_t k = 10;
  const std::size_t nr =
      std::max<std::size_t>(2, options.scale.num_parties / 5);

  // Build the pre-drift federation.
  flips::data::FederatedDataConfig dc;
  dc.spec = flips::data::DatasetCatalog::ecg();
  dc.num_parties = options.scale.num_parties;
  dc.samples_per_party = options.scale.samples_per_party;
  dc.alpha = 0.3;
  dc.test_per_class = 80;
  dc.seed = options.seed;
  const auto data = flips::data::build_federated_data(dc);

  std::vector<flips::fl::Party> parties;
  for (std::size_t p = 0; p < data.party_data.size(); ++p) {
    parties.emplace_back(p, data.party_data[p], flips::fl::PartyProfile{});
  }

  // Phase 1: joint pre-drift training with FLIPS selection.
  flips::common::Rng model_rng(options.seed ^ 0x30DE);
  auto initial = flips::ml::ModelFactory::mlp(dc.spec.feature_dim, 24,
                                              dc.spec.num_classes, model_rng);
  const auto pre_clusters =
      cluster_parties(data.label_distributions, k, options.seed);

  flips::select::SelectorContext ctx;
  ctx.num_parties = parties.size();
  ctx.seed = options.seed;
  ctx.cluster_of = pre_clusters;
  ctx.num_clusters = k;

  std::vector<double> checkpoint;
  const Phase phase1 = run_phase(
      parties, data.global_test, initial,
      flips::select::make_selector(flips::select::SelectorKind::kFlips, ctx),
      options.scale.rounds, nr, options.seed, &checkpoint);

  // Drift event: HALF the parties rotate their label prior by 2 classes.
  // Partial drift matters: rotating everyone by the same amount is a
  // relabeling that preserves the cluster partition, so stale clusters
  // would remain perfectly valid. Rotating half the population splits
  // every old mode into a drifted and an undrifted sub-mode — exactly the
  // structural change re-clustering must detect.
  flips::data::DriftConfig drift;
  drift.affected_fraction = 0.5;
  drift.label_rotation = 2;
  drift.seed = options.seed ^ 0xD21F;
  const auto drifted = apply_label_drift(dc.spec, data.party_data, drift);

  std::vector<flips::fl::Party> drifted_parties;
  std::vector<flips::data::LabelDistribution> drifted_lds;
  for (std::size_t p = 0; p < drifted.party_data.size(); ++p) {
    drifted_parties.emplace_back(p, drifted.party_data[p],
                                 flips::fl::PartyProfile{});
    drifted_lds.push_back(
        flips::data::label_distribution(drifted.party_data[p]));
  }

  std::cout << "=== Drift at round " << options.scale.rounds << " ("
            << drift.affected_fraction * 100.0
            << "% of parties, label rotation " << drift.label_rotation
            << ", mean LD shift " << drifted.mean_shift << ") ===\n\n";

  // Phase 2 variants, all resuming from the same checkpoint.
  auto resume_model = [&] {
    flips::ml::Sequential m = initial;
    m.set_parameters(checkpoint);
    return m;
  };

  std::vector<double> ignore;
  ctx.cluster_of = pre_clusters;  // stale
  const Phase stale = run_phase(
      drifted_parties, data.global_test, resume_model(),
      flips::select::make_selector(flips::select::SelectorKind::kFlips, ctx),
      options.scale.rounds, nr, options.seed + 1, &ignore);

  ctx.cluster_of = cluster_parties(drifted_lds, k, options.seed + 7);
  const Phase refreshed = run_phase(
      drifted_parties, data.global_test, resume_model(),
      flips::select::make_selector(flips::select::SelectorKind::kFlips, ctx),
      options.scale.rounds, nr, options.seed + 1, &ignore);

  // Service arm: the streaming control plane holds the pre-drift
  // clustering (epoch 1); during phase 2 parties re-report their label
  // distributions on a rolling schedule and the drift monitor decides
  // when to re-cluster — no manual refresh anywhere.
  auto enclave = std::make_shared<flips::tee::Enclave>("drift-ctrl", 1.05);
  auto attestation = std::make_shared<flips::tee::AttestationServer>();
  attestation->trust_measurement(enclave->measurement());
  attestation->register_platform_key(enclave->platform_key());
  flips::core::ClusteringConfig cc;
  cc.k_override = k;
  cc.seed = options.seed;
  flips::core::PrivateClusteringService service(cc, enclave, attestation);
  for (std::size_t p = 0; p < parties.size(); ++p) {
    service.submit_label_distribution(p, data.label_distributions[p]);
  }
  service.finalize();

  flips::select::FlipsSelectorConfig fsc;
  fsc.seed = options.seed;
  auto service_selector = std::make_unique<flips::select::FlipsSelector>(
      std::vector<std::size_t>{}, 0, fsc);
  flips::select::FlipsSelector* service_sel = service_selector.get();
  service_sel->consume(service.membership());  // bind epoch 1

  // Rolling refresh: each round the next slice of parties reports its
  // current label distribution, so the monitor sees drift the way a
  // live deployment would — incrementally, mixed with unchanged
  // parties. The ReclusterObserver rides the session's round events
  // (the pre_round_hook wiring this replaced lives on only as the
  // FlJob compat shim).
  const std::size_t refresh_rounds = 5;
  const std::size_t n_parties = drifted_parties.size();
  flips::ctrl::ReclusterObserver recluster_observer(
      service,
      [&](const flips::ctrl::MembershipView& view) {
        service_sel->consume(view);
      },
      [&](std::size_t round, flips::ctrl::ClusterControl& control) {
        const std::size_t chunk =
            (n_parties + refresh_rounds - 1) / refresh_rounds;
        const std::size_t begin = (round - 1) * chunk;
        for (std::size_t p = begin;
             p < std::min(n_parties, begin + chunk); ++p) {
          control.submit_label_distribution(p, drifted_lds[p]);
        }
      });
  const Phase service_phase = run_phase(
      drifted_parties, data.global_test, resume_model(),
      std::move(service_selector), options.scale.rounds, nr,
      options.seed + 1, &ignore, &recluster_observer);
  const std::size_t trigger_round = recluster_observer.trigger_round();
  const std::size_t recluster_round =
      recluster_observer.first_recluster_round();

  flips::bench::print_table_header(
      "drift protocol",
      {"trigger round", "first recluster", "epochs", "path",
       "submissions"});
  flips::bench::print_table_row(
      {trigger_round == 0 ? "never" : std::to_string(trigger_round),
       recluster_round == 0 ? "never" : std::to_string(recluster_round),
       std::to_string(service.epoch()), service.clustering_path(),
       std::to_string(service.submissions())});
  std::cout << "\n";

  const Phase random_phase = run_phase(
      drifted_parties, data.global_test, resume_model(),
      flips::select::make_selector(flips::select::SelectorKind::kRandom, ctx),
      options.scale.rounds, nr, options.seed + 1, &ignore);

  flips::bench::print_table_header(
      "post-drift recovery",
      {"continuation", "acc@r4 %", "acc@r10 %", "mean-acc %", "peak %"});
  const auto row = [&](const char* name, const Phase& phase) {
    double peak = 0.0;
    double mean = 0.0;
    for (const double a : phase.accuracy) {
      peak = std::max(peak, a);
      mean += a;
    }
    mean /= static_cast<double>(phase.accuracy.size());
    flips::bench::print_table_row(
        {name,
         std::to_string(phase.accuracy[std::min<std::size_t>(
                            3, phase.accuracy.size() - 1)] *
                        100.0),
         std::to_string(phase.accuracy[std::min<std::size_t>(
                            9, phase.accuracy.size() - 1)] *
                        100.0),
         std::to_string(mean * 100.0), std::to_string(peak * 100.0)});
  };
  row("flips-stale-clusters", stale);
  row("flips-reclustered", refreshed);
  row("flips-service-recluster", service_phase);
  row("random", random_phase);

  std::cout << "\npre-drift peak: "
            << *std::max_element(phase1.accuracy.begin(),
                                 phase1.accuracy.end()) *
                   100.0
            << " %\n";
  std::cout << "Expected shape: every FLIPS continuation clearly beats "
               "random selection after the drift (the cluster prior, even "
               "stale, still spreads selection across label modes). The "
               "service arm tracks the manual-refresh trajectory — it IS "
               "the refresh arm, minus the human: the drift monitor "
               "flags within the rolling-refresh window and re-clusters "
               "on its own. At this reduced scale stale vs re-clustered "
               "sit within run noise of each other; the re-clustering "
               "machinery's value is structural (stale assignments "
               "provably mis-group the drifted sub-modes) and grows with "
               "federation size — use --paper-scale to widen the gap.\n";

  if (options.csv) {
    for (std::size_t r = 0; r < refreshed.accuracy.size(); ++r) {
      std::cout << "csv,drift," << r + 1 << "," << stale.accuracy[r] << ","
                << refreshed.accuracy[r] << ","
                << service_phase.accuracy[r] << ","
                << random_phase.accuracy[r] << "\n";
    }
  }
  return 0;
}
