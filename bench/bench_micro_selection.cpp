// Micro-benchmarks for per-round participant-selection latency of every
// strategy. FLIPS's selection is heap-based and must stay negligible
// next to training (§3.4: "fast and minuscule relative to FL training
// time"); GradClus pays for hierarchical clustering every round.
#include <benchmark/benchmark.h>

#include "selection/factory.h"

namespace {

flips::select::SelectorContext make_context(std::size_t n) {
  flips::select::SelectorContext ctx;
  ctx.num_parties = n;
  ctx.seed = 42;
  ctx.cluster_of.resize(n);
  for (std::size_t p = 0; p < n; ++p) ctx.cluster_of[p] = p % 10;
  ctx.num_clusters = 10;
  ctx.latencies.resize(n);
  for (std::size_t p = 0; p < n; ++p) {
    ctx.latencies[p] = 1.0 + static_cast<double>(p % 7);
  }
  return ctx;
}

/// Feedback that marks every selected party as responded with plausible
/// stats, so stateful selectors exercise their update paths.
std::vector<flips::fl::PartyFeedback> fake_feedback(
    const std::vector<std::size_t>& selected) {
  std::vector<flips::fl::PartyFeedback> feedback(selected.size());
  for (std::size_t i = 0; i < selected.size(); ++i) {
    feedback[i].party_id = selected[i];
    feedback[i].responded = true;
    feedback[i].num_samples = 100;
    feedback[i].mean_loss = 1.0;
    feedback[i].loss_rms = 1.2;
    feedback[i].duration_s = 0.5;
    feedback[i].delta.assign(64, 0.01);
  }
  return feedback;
}

void run_selector_bench(benchmark::State& state,
                        flips::select::SelectorKind kind) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto ctx = make_context(n);
  auto selector = flips::select::make_selector(kind, ctx);
  const std::size_t nr = n / 5;
  std::size_t round = 0;
  for (auto _ : state) {
    ++round;
    auto selected = selector->select(round, nr);
    benchmark::DoNotOptimize(selected);
    state.PauseTiming();
    selector->report_round(round, fake_feedback(selected));
    state.ResumeTiming();
  }
}

void BM_SelectRandom(benchmark::State& state) {
  run_selector_bench(state, flips::select::SelectorKind::kRandom);
}
void BM_SelectFlips(benchmark::State& state) {
  run_selector_bench(state, flips::select::SelectorKind::kFlips);
}
void BM_SelectOort(benchmark::State& state) {
  run_selector_bench(state, flips::select::SelectorKind::kOort);
}
void BM_SelectGradClus(benchmark::State& state) {
  run_selector_bench(state, flips::select::SelectorKind::kGradClus);
}
void BM_SelectTifl(benchmark::State& state) {
  run_selector_bench(state, flips::select::SelectorKind::kTifl);
}
void BM_SelectPowerOfChoice(benchmark::State& state) {
  run_selector_bench(state, flips::select::SelectorKind::kPowerOfChoice);
}

BENCHMARK(BM_SelectRandom)->Range(100, 1600);
BENCHMARK(BM_SelectFlips)->Range(100, 1600);
BENCHMARK(BM_SelectOort)->Range(100, 1600);
BENCHMARK(BM_SelectGradClus)->Range(100, 400);  // O(n³) per round
BENCHMARK(BM_SelectTifl)->Range(100, 1600);
BENCHMARK(BM_SelectPowerOfChoice)->Range(100, 1600);

}  // namespace

BENCHMARK_MAIN();
