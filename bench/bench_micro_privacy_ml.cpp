// Microbenchmarks for the privacy substrate and the extended ML layers:
// masking/unmasking throughput vs vector dimension and roster size, DP
// clip+noise, RDP accounting, conv2d/LeNet-5 training steps, and
// mini-batch vs Lloyd k-means.
#include <benchmark/benchmark.h>

#include "cluster/kmeans.h"
#include "cluster/minibatch_kmeans.h"
#include "common/rng.h"
#include "data/synthetic.h"
#include "ml/model.h"
#include "ml/sgd.h"
#include "privacy/dp.h"
#include "privacy/masking.h"

namespace {

using flips::common::Rng;

void BM_MaskUpdate(benchmark::State& state) {
  const std::size_t dim = static_cast<std::size_t>(state.range(0));
  const std::size_t roster_n = 20;
  std::vector<std::size_t> roster(roster_n);
  for (std::size_t i = 0; i < roster_n; ++i) roster[i] = i;
  const flips::privacy::MaskingSession session(7, roster, dim);
  std::vector<double> update(dim, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.mask(3, update));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dim));
}
BENCHMARK(BM_MaskUpdate)->Arg(1'000)->Arg(10'000)->Arg(100'000);

void BM_UnmaskWithDropouts(benchmark::State& state) {
  const std::size_t roster_n = static_cast<std::size_t>(state.range(0));
  const std::size_t dim = 10'000;
  std::vector<std::size_t> roster(roster_n);
  for (std::size_t i = 0; i < roster_n; ++i) roster[i] = i;
  const flips::privacy::MaskingSession session(7, roster, dim);
  // 10 % dropouts.
  std::vector<std::size_t> responders;
  for (std::size_t i = 0; i < roster_n; ++i) {
    if (i % 10 != 0) responders.push_back(i);
  }
  const std::vector<double> masked_sum(dim, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.unmask_sum(masked_sum, responders));
  }
}
BENCHMARK(BM_UnmaskWithDropouts)->Arg(10)->Arg(50)->Arg(200);

void BM_DpClipAndNoise(benchmark::State& state) {
  const std::size_t dim = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  std::vector<double> v(dim);
  for (auto& x : v) x = rng.normal(0.0, 1.0);
  for (auto _ : state) {
    std::vector<double> copy = v;
    flips::privacy::clip_to_norm(copy, 1.0);
    flips::privacy::add_gaussian_noise(copy, 0.01, rng);
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_DpClipAndNoise)->Arg(10'000)->Arg(100'000);

void BM_RdpAccountantEpsilon(benchmark::State& state) {
  flips::privacy::RdpAccountant acc;
  acc.steps(1.0, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(acc.epsilon(1e-5));
  }
}
BENCHMARK(BM_RdpAccountantEpsilon)->Arg(100)->Arg(1000);

void BM_LeNet5TrainStep(benchmark::State& state) {
  Rng rng(5);
  auto model = flips::ml::ModelFactory::lenet5(16, 4, rng);
  flips::data::ImagePatchGenerator gen(16, 4, Rng(6));
  const auto batch = gen.sample(static_cast<std::size_t>(state.range(0)));
  const auto features = flips::ml::Tensor::from_rows(batch.features);
  flips::ml::SgdOptimizer opt({.learning_rate = 0.01});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.train_step_gradient(features, batch.labels));
    opt.step(model, 0.01);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_LeNet5TrainStep)->Arg(8)->Arg(32);

void BM_MiniDenseNetTrainStep(benchmark::State& state) {
  Rng rng(7);
  auto model = flips::ml::ModelFactory::mini_densenet(8, 3, 2, 4, rng);
  flips::data::ImagePatchGenerator gen(8, 3, Rng(8));
  const auto batch = gen.sample(32);
  const auto features = flips::ml::Tensor::from_rows(batch.features);
  flips::ml::SgdOptimizer opt({.learning_rate = 0.01});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.train_step_gradient(features, batch.labels));
    opt.step(model, 0.01);
  }
}
BENCHMARK(BM_MiniDenseNetTrainStep);

std::vector<flips::cluster::Point> bench_lds(std::size_t n) {
  Rng rng(9);
  std::vector<flips::cluster::Point> points(n);
  for (std::size_t i = 0; i < n; ++i) {
    points[i] = rng.dirichlet(0.3, 10);
  }
  return points;
}

void BM_LloydKMeans(benchmark::State& state) {
  const auto points = bench_lds(static_cast<std::size_t>(state.range(0)));
  flips::cluster::KMeansConfig config;
  config.k = 10;
  for (auto _ : state) {
    Rng rng(11);
    benchmark::DoNotOptimize(flips::cluster::kmeans(points, config, rng));
  }
}
BENCHMARK(BM_LloydKMeans)->Arg(1'000)->Arg(10'000);

void BM_MiniBatchKMeans(benchmark::State& state) {
  const auto points = bench_lds(static_cast<std::size_t>(state.range(0)));
  flips::cluster::MiniBatchKMeansConfig config;
  config.k = 10;
  config.batch_size = 256;
  config.iterations = 100;
  for (auto _ : state) {
    Rng rng(11);
    benchmark::DoNotOptimize(
        flips::cluster::minibatch_kmeans(points, config, rng));
  }
}
BENCHMARK(BM_MiniBatchKMeans)->Arg(1'000)->Arg(10'000)->Arg(50'000);

}  // namespace

BENCHMARK_MAIN();
