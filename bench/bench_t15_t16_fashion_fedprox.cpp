// Reproduces Tables 15 & 16 of the paper (fashion_mnist dataset,
// kFedAvg FL algorithm): rounds-to-target-accuracy and highest accuracy
// for Random / FLIPS / Oort / GradClus / TiFL under 0/10/20 % stragglers.
#include "common/table_bench.h"

int main(int argc, char** argv) {
  flips::bench::TableBenchSpec spec;
  spec.table = flips::bench::paper::kFashionFedProx;
  spec.dataset = flips::data::DatasetCatalog::fashion_mnist();
  spec.server_opt = flips::fl::ServerOpt::kFedAvg;
  spec.prox_mu = 0.1;
  spec.calibration = flips::bench::paper::kFashionReduced;
  return flips::bench::run_table_bench(argc, argv, spec);
}
