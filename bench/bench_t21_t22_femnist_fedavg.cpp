// Reproduces Tables 21 & 22 of the paper (femnist dataset,
// kFedAvg FL algorithm): rounds-to-target-accuracy and highest accuracy
// for Random / FLIPS / Oort / GradClus / TiFL under 0/10/20 % stragglers.
#include "common/table_bench.h"

int main(int argc, char** argv) {
  flips::bench::TableBenchSpec spec;
  spec.table = flips::bench::paper::kFemnistFedAvg;
  spec.dataset = flips::data::DatasetCatalog::femnist();
  spec.server_opt = flips::fl::ServerOpt::kFedAvg;
  spec.prox_mu = 0.0;
  spec.calibration = flips::bench::paper::kFemnistReduced;
  return flips::bench::run_table_bench(argc, argv, spec);
}
