// Reproduces §5.1: the overhead of running label-distribution clustering
// inside a TEE. The paper measures 105.4 ms (AMD SEV) vs 100.5 ms
// (native) for 200 parties ≈ 5 % overhead.
//
// The enclave here is simulated, so the *mechanism* differs: we measure
// native clustering wall time, then report the enclave's accounted time
// with its calibrated overhead factor applied, plus the real marginal
// cost of the secure-channel framing (seal/open + attestation per party),
// which is the honestly measurable part of the simulation.
#include <chrono>
#include <iostream>

#include "common/experiment.h"
#include "common/stats.h"
#include "core/private_clustering.h"
#include "data/federated.h"

int main(int argc, char** argv) {
  flips::bench::Scale default_scale;
  default_scale.num_parties = 200;
  const auto options =
      flips::bench::parse_bench_options(argc, argv, default_scale);

  flips::data::FederatedDataConfig dc;
  dc.spec = flips::data::DatasetCatalog::ham10000();
  dc.num_parties = options.scale.num_parties;
  dc.samples_per_party = 120;
  dc.alpha = 0.3;
  dc.seed = options.seed;
  const auto fed = flips::data::build_federated_data(dc);

  using Clock = std::chrono::steady_clock;

  // Native clustering baseline (same kernel the enclave runs).
  std::vector<flips::cluster::Point> points;
  for (const auto& ld : fed.label_distributions) {
    points.push_back(flips::common::normalized(ld));
  }
  flips::cluster::KMeansConfig kc;
  kc.k = 10;
  kc.restarts = 3;
  flips::common::Rng rng(options.seed);
  const auto t0 = Clock::now();
  const auto native = flips::cluster::kmeans(points, kc, rng);
  const double native_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  (void)native;

  // Full TEE path: attestation + secure channels + in-enclave clustering.
  auto enclave = std::make_shared<flips::tee::Enclave>(
      "flips-label-distribution-clustering-v1", 1.05);
  auto attestation = std::make_shared<flips::tee::AttestationServer>();
  attestation->trust_measurement(enclave->measurement());
  attestation->register_platform_key(enclave->platform_key());

  flips::core::ClusteringConfig cc;
  cc.k_override = 10;
  flips::core::PrivateClusteringService service(cc, enclave, attestation);

  const auto t1 = Clock::now();
  for (std::size_t p = 0; p < fed.label_distributions.size(); ++p) {
    service.submit_label_distribution(p, fed.label_distributions[p]);
  }
  const double channel_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t1).count();
  service.finalize();

  const double enclave_raw_ms = enclave->raw_execution_seconds() * 1e3;
  const double enclave_sim_ms = enclave->simulated_execution_seconds() * 1e3;

  std::cout << "TEE clustering overhead (§5.1 reproduction, "
            << options.scale.num_parties << " parties)\n\n";
  printf("  native k-means clustering:          %8.2f ms\n", native_ms);
  printf("  in-enclave clustering (raw):        %8.2f ms\n", enclave_raw_ms);
  printf("  in-enclave clustering (simulated):  %8.2f ms  (factor %.3f)\n",
         enclave_sim_ms, enclave->overhead_factor());
  printf("  attestation + secure channels:      %8.2f ms  (%zu parties)\n",
         channel_ms, fed.label_distributions.size());
  printf("\n  simulated TEE overhead: %.1f %%   (paper: 105.4 vs 100.5 ms "
         "= 4.9 %% on AMD SEV)\n",
         100.0 * (enclave->overhead_factor() - 1.0));
  return 0;
}
