// Scalability of the FLIPS control plane (paper §3.4: "k-means++ …
// has been demonstrated to scale to millions of data points, i.e.,
// parties"; FLIPS is "as scalable as the underlying aggregation
// algorithm").
//
// Measures, as the party count N grows:
//   1. label-distribution clustering wall-clock — full Lloyd vs
//      mini-batch k-means (the scalable path);
//   2. per-round selection latency of the Algorithm-1 heap machinery;
//   3. clustering agreement between the two (mini-batch must find the
//      same mode structure for FLIPS to be correct at scale).
#include <algorithm>
#include <chrono>
#include <iostream>

#include "cluster/kmeans.h"
#include "cluster/minibatch_kmeans.h"
#include "common/experiment.h"
#include "common/rng.h"
#include "selection/flips_selector.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Synthetic label distributions with `modes` planted modes over `dim`
/// labels — the shape FLIPS clusters in production.
std::vector<flips::cluster::Point> planted_lds(std::size_t n,
                                               std::size_t modes,
                                               std::size_t dim,
                                               std::uint64_t seed) {
  flips::common::Rng rng(seed);
  std::vector<flips::cluster::Point> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t mode = i % modes;
    flips::cluster::Point p(dim, 0.02);
    p[(mode * 2) % dim] = 0.5 + rng.uniform(-0.05, 0.05);
    p[(mode * 2 + 1) % dim] = 0.3 + rng.uniform(-0.05, 0.05);
    double sum = 0.0;
    for (const double v : p) sum += v;
    for (auto& v : p) v /= sum;
    points.push_back(std::move(p));
  }
  return points;
}

/// Fraction of point pairs on which two clusterings agree (same/different
/// cluster) — the Rand index, over a sampled pair set.
double rand_index(const std::vector<std::size_t>& a,
                  const std::vector<std::size_t>& b,
                  flips::common::Rng& rng) {
  std::size_t agree = 0;
  const std::size_t trials = 20'000;
  for (std::size_t t = 0; t < trials; ++t) {
    const std::size_t i = rng.uniform_index(a.size());
    const std::size_t j = rng.uniform_index(a.size());
    if (i == j) {
      ++agree;
      continue;
    }
    const bool same_a = a[i] == a[j];
    const bool same_b = b[i] == b[j];
    agree += same_a == same_b;
  }
  return static_cast<double>(agree) / static_cast<double>(trials);
}

}  // namespace

int main(int argc, char** argv) {
  const auto options =
      flips::bench::parse_bench_options(argc, argv, flips::bench::Scale{});

  const std::size_t modes = 10;
  const std::size_t dim = 10;

  std::cout << "=== FLIPS control-plane scalability ===\n\n";
  flips::bench::print_table_header(
      "clustering", {"parties", "lloyd (s)", "minibatch (s)", "speedup",
                     "rand-agreement"});

  std::vector<std::size_t> sizes = {1'000, 5'000, 20'000};
  if (options.paper_scale) sizes.push_back(100'000);

  for (const std::size_t n : sizes) {
    const auto points = planted_lds(n, modes, dim, options.seed);

    flips::common::Rng rng_full(options.seed + 1);
    flips::cluster::KMeansConfig full;
    full.k = modes;
    full.restarts = 1;
    const auto t_full = Clock::now();
    const auto lloyd = flips::cluster::kmeans(points, full, rng_full);
    const double full_s = seconds_since(t_full);

    flips::common::Rng rng_mb(options.seed + 1);
    flips::cluster::MiniBatchKMeansConfig mb;
    mb.k = modes;
    mb.batch_size = 256;
    mb.iterations = 120;
    const auto t_mb = Clock::now();
    const auto mini = flips::cluster::minibatch_kmeans(points, mb, rng_mb);
    const double mb_s = seconds_since(t_mb);

    flips::common::Rng pair_rng(options.seed + 2);
    const double agreement =
        rand_index(lloyd.assignments, mini.assignments, pair_rng);

    flips::bench::print_table_row(
        {std::to_string(n), std::to_string(full_s), std::to_string(mb_s),
         std::to_string(full_s / std::max(mb_s, 1e-9)) + "x",
         std::to_string(agreement)});
  }

  std::cout << "\n";
  flips::bench::print_table_header(
      "selection latency",
      {"parties", "clusters", "Nr", "mean select+report (us)"});

  for (const std::size_t n : sizes) {
    const std::size_t k = modes;
    std::vector<std::size_t> cluster_of(n);
    for (std::size_t i = 0; i < n; ++i) cluster_of[i] = i % k;
    flips::select::FlipsSelector selector(cluster_of, k, {});

    const std::size_t nr = std::max<std::size_t>(10, n / 10);
    const std::size_t rounds = 50;
    const auto start = Clock::now();
    for (std::size_t r = 1; r <= rounds; ++r) {
      const auto selected = selector.select(r, nr);
      std::vector<flips::fl::PartyFeedback> feedback(selected.size());
      for (std::size_t i = 0; i < selected.size(); ++i) {
        feedback[i].party_id = selected[i];
        feedback[i].responded = true;
      }
      selector.report_round(r, feedback);
    }
    const double us =
        seconds_since(start) * 1e6 / static_cast<double>(rounds);
    flips::bench::print_table_row({std::to_string(n), std::to_string(k),
                                   std::to_string(nr),
                                   std::to_string(us)});
  }

  std::cout << "\nExpected shape: mini-batch k-means grows ~linearly and "
               "overtakes Lloyd from ~5k parties while agreeing with its "
               "cluster structure (Rand agreement ~0.9+); selection stays "
               "microseconds-per-round at every N (heap ops are "
               "O(Nr log N)).\n";
  return 0;
}
