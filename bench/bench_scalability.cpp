// Scalability of the FLIPS control plane (paper §3.4: "k-means++ …
// has been demonstrated to scale to millions of data points, i.e.,
// parties"; FLIPS is "as scalable as the underlying aggregation
// algorithm").
//
// Runs end-to-end through core::PrivateClusteringService (attested
// sealed submissions into the sharded streaming engine), measuring, as
// the party count N grows:
//   1. multi-threaded ingestion throughput of the sharded reservoirs;
//   2. clustering wall-clock — a service pinned to full Lloyd vs the
//      threshold-scaled service (mini-batch k-means past
//      `lloyd_threshold` parties);
//   3. clustering agreement between the two paths (mini-batch must
//      find the same mode structure for FLIPS to be correct at scale);
//   4. incremental late-joiner assignment latency;
//   5. per-round selection latency of the Algorithm-1 heap machinery
//      fed from the service's MembershipView.
//
// Emits stable `perf,<name>,<seconds>,-1` lines (same schema as the
// table benches) so the CI perf rail can scrape control-plane scaling:
//   ctrl-ingest-<N>, ctrl-lloyd-<N>, ctrl-auto-<N>, ctrl-select-<N>.
//
// Flags: `--parties N` pins a single size (CI smoke uses 10000, past
// the threshold); default sweeps 1k/5k/20k (+100k with --paper-scale).
// `--threads T` sets the ingestion fan-in (0 = all cores). Unlike the
// FL benches' bit-identical --threads contract, the fan-in changes
// reservoir insertion order and therefore k-means++ seeding: cluster
// *structure* (not quality) can differ across thread counts; a fixed
// (seed, threads) pair is deterministic.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include "common/experiment.h"
#include "common/perf.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/private_clustering.h"
#include "fl/session_pool.h"
#include "selection/flips_selector.h"

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kModes = 10;
constexpr std::size_t kDim = 10;
/// The control plane's Lloyd/mini-batch crossover knob (engine
/// default; EXPERIMENTS.md documents the calibration).
constexpr std::size_t kLloydThreshold = 5000;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Synthetic label distributions with `modes` planted modes over `dim`
/// labels — the shape FLIPS clusters in production.
std::vector<flips::cluster::Point> planted_lds(std::size_t n,
                                               std::size_t modes,
                                               std::size_t dim,
                                               std::uint64_t seed) {
  flips::common::Rng rng(seed);
  std::vector<flips::cluster::Point> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t mode = i % modes;
    flips::cluster::Point p(dim, 0.02);
    p[(mode * 2) % dim] = 0.5 + rng.uniform(-0.05, 0.05);
    p[(mode * 2 + 1) % dim] = 0.3 + rng.uniform(-0.05, 0.05);
    double sum = 0.0;
    for (const double v : p) sum += v;
    for (auto& v : p) v /= sum;
    points.push_back(std::move(p));
  }
  return points;
}

/// Fraction of point pairs on which two clusterings agree (same/different
/// cluster) — the Rand index, over a sampled pair set.
double rand_index(const std::vector<std::size_t>& a,
                  const std::vector<std::size_t>& b,
                  flips::common::Rng& rng) {
  std::size_t agree = 0;
  const std::size_t trials = 20'000;
  for (std::size_t t = 0; t < trials; ++t) {
    const std::size_t i = rng.uniform_index(a.size());
    const std::size_t j = rng.uniform_index(a.size());
    if (i == j) {
      ++agree;
      continue;
    }
    const bool same_a = a[i] == a[j];
    const bool same_b = b[i] == b[j];
    agree += same_a == same_b;
  }
  return static_cast<double>(agree) / static_cast<double>(trials);
}

std::unique_ptr<flips::core::PrivateClusteringService> make_service(
    std::size_t n, std::size_t lloyd_threshold, std::uint64_t seed) {
  auto enclave =
      std::make_shared<flips::tee::Enclave>("ctrl-scalability", 1.05);
  auto attestation = std::make_shared<flips::tee::AttestationServer>();
  attestation->trust_measurement(enclave->measurement());
  attestation->register_platform_key(enclave->platform_key());
  flips::core::ClusteringConfig config;
  config.k_override = kModes;
  config.restarts = 1;
  config.seed = seed;
  config.streaming.lloyd_threshold = lloyd_threshold;
  // This bench studies the clustering-path crossover, so no shard may
  // evict: capacity is the full party count (hash sharding is
  // non-uniform, so n/num_shards would overflow some shards and
  // contaminate the agreement metric with hash-spread placeholders).
  // Buffers grow on demand — capacity is a cap, not a reservation;
  // memory bounds are a deployment knob and eviction carry-over is
  // covered by test_ctrl.
  config.streaming.num_shards = 16;
  config.streaming.shard_capacity = n;
  return std::make_unique<flips::core::PrivateClusteringService>(
      config, enclave, attestation);
}

/// Striped multi-threaded submission — the sharded-ingestion hot path.
double ingest(flips::core::PrivateClusteringService& service,
              const std::vector<flips::cluster::Point>& lds,
              std::size_t threads) {
  const std::size_t t_count = std::max<std::size_t>(1, threads);
  const auto start = Clock::now();
  std::vector<std::thread> workers;
  workers.reserve(t_count);
  for (std::size_t t = 0; t < t_count; ++t) {
    workers.emplace_back([&, t] {
      for (std::size_t p = t; p < lds.size(); p += t_count) {
        service.submit_label_distribution(p, lds[p]);
      }
    });
  }
  for (auto& w : workers) w.join();
  return seconds_since(start);
}

void perf_line(const std::string& name, double seconds) {
  flips::bench::PerfLine(name)
      .num("seconds", seconds, 6)
      .num("rounds_to_target", -1.0, 0)
      .print();
}

}  // namespace

int main(int argc, char** argv) {
  flips::bench::Scale default_scale;
  default_scale.num_parties = 0;  // 0 = sweep the default sizes
  const auto options =
      flips::bench::parse_bench_options(argc, argv, default_scale);
  const std::size_t threads =
      flips::common::ThreadPool::resolve_threads(options.threads);

  // --paper-scale wins over the parser's generic num_parties=200 side
  // effect (this bench's sizes are its own axis): it extends the sweep
  // to 100k. Otherwise an explicit --parties N pins a single size.
  std::vector<std::size_t> sizes;
  if (options.paper_scale) {
    sizes = {1'000, 5'000, 20'000, 100'000};
  } else if (options.scale.num_parties > 0) {
    sizes.push_back(options.scale.num_parties);
  } else {
    sizes = {1'000, 5'000, 20'000};
  }

  std::cout << "=== FLIPS control-plane scalability (through "
               "PrivateClusteringService, threshold "
            << kLloydThreshold << " parties, " << threads
            << " ingest threads) ===\n\n";
  flips::bench::print_table_header(
      "clustering", {"parties", "path", "ingest (s)", "lloyd (s)",
                     "auto (s)", "speedup", "rand-agreement",
                     "late-join (us)"});

  // Per-size MembershipViews, reused by the selection-latency section.
  std::vector<std::vector<std::size_t>> assignments_by_size;

  for (const std::size_t n : sizes) {
    const auto lds = planted_lds(n, kModes, kDim, options.seed);

    // Reference service pinned to full Lloyd regardless of size.
    auto lloyd_service = make_service(
        n, std::numeric_limits<std::size_t>::max(), options.seed);
    ingest(*lloyd_service, lds, threads);
    const auto t_lloyd = Clock::now();
    lloyd_service->finalize();
    const double lloyd_s = seconds_since(t_lloyd);

    // Threshold-scaled service — the production configuration.
    auto auto_service = make_service(n, kLloydThreshold, options.seed);
    const double ingest_s = ingest(*auto_service, lds, threads);
    const auto t_auto = Clock::now();
    auto_service->finalize();
    const double auto_s = seconds_since(t_auto);

    flips::common::Rng pair_rng(options.seed + 2);
    const double agreement =
        rand_index(lloyd_service->result().assignments,
                   auto_service->result().assignments, pair_rng);
    assignments_by_size.push_back(auto_service->membership().cluster_of);

    // Late joiners: incremental nearest-centroid assignment, no
    // re-clustering, epoch unchanged.
    const std::size_t late = 100;
    const auto late_lds = planted_lds(late, kModes, kDim, options.seed + 9);
    const auto t_late = Clock::now();
    for (std::size_t i = 0; i < late; ++i) {
      auto_service->submit_label_distribution(n + i, late_lds[i]);
    }
    const double late_us =
        seconds_since(t_late) * 1e6 / static_cast<double>(late);

    flips::bench::print_table_row(
        {std::to_string(n), auto_service->clustering_path(),
         std::to_string(ingest_s), std::to_string(lloyd_s),
         std::to_string(auto_s),
         std::to_string(lloyd_s / std::max(auto_s, 1e-9)) + "x",
         std::to_string(agreement), std::to_string(late_us)});

    perf_line("ctrl-ingest-" + std::to_string(n), ingest_s);
    perf_line("ctrl-lloyd-" + std::to_string(n), lloyd_s);
    perf_line("ctrl-auto-" + std::to_string(n), auto_s);
  }

  std::cout << "\n";
  flips::bench::print_table_header(
      "selection latency",
      {"parties", "clusters", "Nr", "mean select+report (us)"});

  for (std::size_t s = 0; s < sizes.size(); ++s) {
    const std::size_t n = sizes[s];
    // The selector consumes the service's epoch-versioned view — the
    // same wiring the FL job's re-cluster hook uses.
    flips::select::FlipsSelector selector(assignments_by_size[s], kModes,
                                          {});

    const std::size_t nr = std::max<std::size_t>(10, n / 10);
    const std::size_t rounds = 50;
    const auto start = Clock::now();
    for (std::size_t r = 1; r <= rounds; ++r) {
      const auto selected = selector.select(r, nr);
      std::vector<flips::fl::PartyFeedback> feedback(selected.size());
      for (std::size_t i = 0; i < selected.size(); ++i) {
        feedback[i].party_id = selected[i];
        feedback[i].responded = true;
      }
      selector.report_round(r, feedback);
    }
    const double select_s =
        seconds_since(start) / static_cast<double>(rounds);
    flips::bench::print_table_row({std::to_string(n),
                                   std::to_string(kModes),
                                   std::to_string(nr),
                                   std::to_string(select_s * 1e6)});
    perf_line("ctrl-select-" + std::to_string(n), select_s);
  }

  // ---- Multi-tenant serving: N concurrent federations interleaved
  // through fl::SessionPool over ONE shared worker pool vs running
  // each alone. Per-session results must stay bit-identical (the
  // isolation contract test_session pins at unit scale; re-checked
  // here at bench scale), and the interleaved wall time tracks the sum
  // of the solo runs (scheduling overhead, not contention, is the only
  // delta on a fixed worker budget).
  std::cout << "\n";
  flips::bench::print_table_header(
      "multi-tenant sessions (ECG reduced scale, shared workers)",
      {"sessions", "solo (s)", "interleaved (s)", "overhead",
       "bit-identical"});
  {
    flips::bench::ExperimentConfig mt;
    mt.spec = flips::data::DatasetCatalog::ecg();
    mt.scale.num_parties = 24;
    mt.scale.samples_per_party = 40;
    mt.scale.rounds = 12;
    mt.scale.runs = 1;
    mt.seed = options.seed;
    mt.threads = options.threads;
    flips::common::ThreadPool workers(options.threads);

    for (const std::size_t tenants : {std::size_t{2}, std::size_t{4}}) {
      // Solo references: each tenant run to completion on its own
      // (sessions built outside the timer — federation construction is
      // cached and shared with the pooled arm below).
      std::vector<std::unique_ptr<flips::fl::FederationSession>> solo;
      for (std::size_t s = 0; s < tenants; ++s) {
        solo.push_back(flips::bench::make_session(
            mt, flips::select::SelectorKind::kFlips,
            options.seed + 1000 * s, &workers));
      }
      const auto t_solo = Clock::now();
      for (auto& session : solo) {
        while (!session->done()) session->advance();
      }
      const double solo_s = seconds_since(t_solo);
      std::vector<std::vector<double>> solo_params;
      for (auto& session : solo) {
        solo_params.push_back(session->result().final_parameters);
      }

      // The same tenants, interleaved round-robin through one pool.
      flips::fl::SessionPool pool;
      for (std::size_t s = 0; s < tenants; ++s) {
        pool.add(flips::bench::make_session(
            mt, flips::select::SelectorKind::kFlips,
            options.seed + 1000 * s, &workers));
      }
      const auto t_pool = Clock::now();
      pool.run_all();
      const double pool_s = seconds_since(t_pool);

      bool identical = true;
      for (std::size_t s = 0; s < tenants; ++s) {
        identical = identical &&
                    pool.session(s).result().final_parameters ==
                        solo_params[s];
      }

      flips::bench::print_table_row(
          {std::to_string(tenants), std::to_string(solo_s),
           std::to_string(pool_s),
           std::to_string(100.0 * (pool_s / std::max(solo_s, 1e-9) - 1.0)) +
               "%",
           identical ? "yes" : "NO"});
      perf_line("multitenant-" + std::to_string(tenants), pool_s);
    }
  }

  std::cout << "\nExpected shape: the service switches to mini-batch "
               "k-means past the " +
                   std::to_string(kLloydThreshold) +
                   "-party threshold, where it grows ~linearly and "
                   "overtakes Lloyd while agreeing with its cluster "
                   "structure (Rand agreement ~0.9+); sharded ingestion "
                   "scales with the submission threads; late joiners "
                   "cost microseconds (one nearest-centroid scan); "
                   "selection stays microseconds-per-round at every N "
                   "(heap ops are O(Nr log N)).\n";
  return 0;
}
