// Ablation bench for FLIPS's design choices (beyond the paper's own
// tables; DESIGN.md §5 calls these out):
//   A. straggler over-provisioning on/off at increasing straggler rates;
//   B. label-distribution representation fed to k-means: raw counts vs
//      normalized proportions vs Hellinger (sqrt-proportion) space;
//   C. cluster-count sensitivity (k sweep around the elbow's choice);
//   D. the Power-of-Choice extension vs FLIPS and random.
#include <cmath>
#include <iostream>

#include "cluster/kmeans.h"
#include "common/experiment.h"
#include "common/stats.h"
#include "data/federated.h"
#include "fl/job.h"
#include "selection/factory.h"
#include "selection/flips_selector.h"

namespace {

using flips::bench::BenchOptions;

struct Fed {
  std::vector<flips::fl::Party> parties;
  flips::data::Dataset test;
  std::vector<flips::data::LabelDistribution> lds;
  std::vector<double> latencies;
};

Fed build(std::uint64_t seed, std::size_t parties_n) {
  flips::data::FederatedDataConfig dc;
  dc.spec = flips::data::DatasetCatalog::ecg();
  dc.num_parties = parties_n;
  dc.samples_per_party = 80;
  dc.alpha = 0.3;
  dc.test_per_class = 100;
  dc.seed = seed;
  const auto data = flips::data::build_federated_data(dc);
  Fed fed;
  flips::common::Rng prof(seed ^ 0xBEEF);
  for (std::size_t p = 0; p < data.party_data.size(); ++p) {
    flips::fl::PartyProfile profile;
    const double u = prof.uniform();
    profile.speed_factor = u < 0.6 ? 1.0 : (u < 0.9 ? 2.0 : 4.0);
    fed.parties.emplace_back(p, data.party_data[p], profile);
    fed.latencies.push_back(profile.speed_factor *
                            static_cast<double>(data.party_data[p].size()));
  }
  fed.test = data.global_test;
  fed.lds = data.label_distributions;
  return fed;
}

enum class LdSpace { kRawCounts, kProportions, kHellinger };

std::vector<std::size_t> cluster_lds(const Fed& fed, std::size_t k,
                                     LdSpace space, std::uint64_t seed) {
  std::vector<flips::cluster::Point> points;
  for (const auto& ld : fed.lds) {
    flips::cluster::Point p;
    switch (space) {
      case LdSpace::kRawCounts:
        p.assign(ld.begin(), ld.end());
        break;
      case LdSpace::kProportions:
        p = flips::common::normalized(ld);
        break;
      case LdSpace::kHellinger:
        p = flips::common::normalized(ld);
        for (auto& v : p) v = std::sqrt(v);
        break;
    }
    points.push_back(std::move(p));
  }
  flips::cluster::KMeansConfig kc;
  kc.k = std::min(k, points.size());
  kc.restarts = 3;
  flips::common::Rng rng(seed ^ 0xC1);
  return flips::cluster::kmeans(points, kc, rng).assignments;
}

double run_flips(const Fed& fed, const std::vector<std::size_t>& clusters,
                 std::size_t k, bool overprovision, double straggler_rate,
                 std::uint64_t seed, std::size_t rounds) {
  flips::select::FlipsSelectorConfig sc;
  sc.overprovision = overprovision;
  auto selector =
      std::make_unique<flips::select::FlipsSelector>(clusters, k, sc);

  flips::fl::FlJobConfig config;
  config.rounds = rounds;
  config.parties_per_round = fed.parties.size() / 5;
  config.local.epochs = 2;
  config.local.sgd.learning_rate = 0.05;
  config.local.sgd.lr_decay_factor = 0.5;
  config.local.sgd.lr_decay_rounds = 20;
  config.server.optimizer = flips::fl::ServerOpt::kFedYogi;
  config.server.learning_rate = 0.05;
  config.stragglers.rate = straggler_rate;
  config.seed = seed;
  config.eval_every = 2;

  flips::common::Rng mrng(seed ^ 0x30DE);
  auto model = flips::ml::ModelFactory::mlp(32, 24, 5, mrng);
  flips::fl::FlJob job(config, fed.parties, fed.test, std::move(model),
                       std::move(selector));
  return job.run().peak_accuracy;
}

/// Mean over two federations.
template <typename F>
double avg2(F&& f) {
  return (f(42) + f(1042)) / 2.0;
}

}  // namespace

int main(int argc, char** argv) {
  flips::bench::Scale default_scale;
  default_scale.rounds = 80;
  const BenchOptions options =
      flips::bench::parse_bench_options(argc, argv, default_scale);
  const std::size_t parties = options.scale.num_parties;
  const std::size_t rounds = options.scale.rounds;

  std::cout << "FLIPS design ablations (ECG stand-in, alpha=0.3, FedYogi, "
            << parties << " parties, " << rounds << " rounds)\n";

  // A. Straggler over-provisioning.
  std::cout << "\n[A] straggler over-provisioning (peak balanced acc %)\n"
               "  rate   with    without\n";
  for (const double rate : {0.0, 0.1, 0.2, 0.3}) {
    const double with_op = avg2([&](std::uint64_t s) {
      const Fed fed = build(s, parties);
      const auto clusters = cluster_lds(fed, 20, LdSpace::kHellinger, s);
      return run_flips(fed, clusters, 20, true, rate, s, rounds);
    });
    const double without = avg2([&](std::uint64_t s) {
      const Fed fed = build(s, parties);
      const auto clusters = cluster_lds(fed, 20, LdSpace::kHellinger, s);
      return run_flips(fed, clusters, 20, false, rate, s, rounds);
    });
    printf("  %3.0f%%   %5.1f   %5.1f\n", 100.0 * rate, 100.0 * with_op,
           100.0 * without);
  }

  // B. Label-distribution representation.
  std::cout << "\n[B] clustering space for label distributions\n";
  for (const auto& [space, name] :
       {std::pair{LdSpace::kRawCounts, "raw counts  "},
        std::pair{LdSpace::kProportions, "proportions "},
        std::pair{LdSpace::kHellinger, "hellinger   "}}) {
    const double acc = avg2([&, space = space](std::uint64_t s) {
      const Fed fed = build(s, parties);
      const auto clusters = cluster_lds(fed, 20, space, s);
      return run_flips(fed, clusters, 20, true, 0.0, s, rounds);
    });
    printf("  %s  %5.1f %%\n", name, 100.0 * acc);
  }

  // C. Cluster-count sensitivity.
  std::cout << "\n[C] cluster count k (paper's elbow picks ~10 at its "
               "scale; the reduced-scale federations calibrate at 20)\n";
  for (const std::size_t k : {5u, 10u, 20u, 40u}) {
    const double acc = avg2([&](std::uint64_t s) {
      const Fed fed = build(s, parties);
      const auto clusters = cluster_lds(fed, k, LdSpace::kHellinger, s);
      return run_flips(fed, clusters, k, true, 0.0, s, rounds);
    });
    printf("  k=%-3zu  %5.1f %%\n", k, 100.0 * acc);
  }

  // D. Power-of-Choice extension vs FLIPS vs random.
  std::cout << "\n[D] loss-biased selection extension (pow-d, paper §3 "
               "related work) vs FLIPS vs random\n";
  for (const auto kind :
       {flips::select::SelectorKind::kRandom,
        flips::select::SelectorKind::kPowerOfChoice,
        flips::select::SelectorKind::kFlips}) {
    const double acc = avg2([&](std::uint64_t s) {
      const Fed fed = build(s, parties);
      flips::select::SelectorContext ctx;
      ctx.num_parties = fed.parties.size();
      ctx.seed = s ^ 0x5E1E;
      ctx.cluster_of = cluster_lds(fed, 20, LdSpace::kHellinger, s);
      ctx.num_clusters = 20;
      ctx.latencies = fed.latencies;
      ctx.rounds_hint = rounds;

      flips::fl::FlJobConfig config;
      config.rounds = rounds;
      config.parties_per_round = fed.parties.size() / 5;
      config.local.epochs = 2;
      config.local.sgd.learning_rate = 0.05;
      config.local.sgd.lr_decay_factor = 0.5;
      config.local.sgd.lr_decay_rounds = 20;
      config.server.optimizer = flips::fl::ServerOpt::kFedYogi;
      config.server.learning_rate = 0.05;
      config.seed = s;
      config.eval_every = 2;

      flips::common::Rng mrng(s ^ 0x30DE);
      auto model = flips::ml::ModelFactory::mlp(32, 24, 5, mrng);
      flips::fl::FlJob job(config, fed.parties, fed.test, std::move(model),
                           flips::select::make_selector(kind, ctx));
      return job.run().peak_accuracy;
    });
    printf("  %-8s  %5.1f %%\n", flips::select::to_string(kind),
           100.0 * acc);
  }
  return 0;
}
