// Reproduces Figure 2: Davies-Bouldin index vs. cluster count k, with the
// elbow marking the optimal k (the paper finds k = 10 for 200 parties).
//
// Uses the planted-modes partitioner so the ground-truth number of label
// distribution modes is known; the bench reports whether the DBI elbow
// recovers it, prints the averaged curve (T = 20 repeats per k, as in the
// paper), and compares the prose elbow rule with the literal Eq. 3 rule.
#include <iostream>

#include "cluster/dbi.h"
#include "common/experiment.h"
#include "common/stats.h"
#include "data/federated.h"

int main(int argc, char** argv) {
  flips::bench::Scale default_scale;
  default_scale.num_parties = 200;  // clustering is cheap; use paper scale
  const auto options =
      flips::bench::parse_bench_options(argc, argv, default_scale);

  constexpr std::size_t kTrueModes = 10;

  flips::data::FederatedDataConfig dc;
  dc.spec = flips::data::DatasetCatalog::ecg();
  dc.num_parties = options.scale.num_parties;
  dc.samples_per_party = 120;
  dc.alpha = 0.3;
  dc.scheme = flips::data::PartitionScheme::kPlantedModes;
  dc.num_modes = kTrueModes;
  dc.seed = options.seed;
  const auto fed = flips::data::build_federated_data(dc);

  std::vector<flips::cluster::Point> points;
  points.reserve(fed.label_distributions.size());
  for (const auto& ld : fed.label_distributions) {
    points.push_back(flips::common::normalized(ld));
  }

  flips::cluster::OptimalKConfig okc;
  okc.k_min = 2;
  okc.k_max = 30;
  okc.repeats = 20;  // T in the paper
  flips::common::Rng rng(options.seed);
  const auto elbow = flips::cluster::optimal_k_elbow(points, okc, rng);
  const auto eq3 = flips::cluster::optimal_k_eq3(points, okc, rng);

  std::cout << "Figure 2 reproduction: DBI vs cluster size ("
            << options.scale.num_parties << " parties, " << kTrueModes
            << " planted label-distribution modes, T=" << okc.repeats
            << ")\n\n";
  std::cout << "  k    mean DBI\n";
  for (std::size_t i = 0; i < elbow.dbi_curve.size(); ++i) {
    const std::size_t k = elbow.k_min + i;
    std::cout << "  " << k << (k < 10 ? "    " : "   ");
    const int bars = static_cast<int>(elbow.dbi_curve[i] * 120.0);
    printf("%.4f  %s\n", elbow.dbi_curve[i],
           std::string(static_cast<std::size_t>(std::max(bars, 0)), '#')
               .c_str());
  }
  std::cout << "\nElbow rule (prose / used by FLIPS): k = " << elbow.k
            << "\nEq. 3 literal rule:                 k = " << eq3.k
            << "\nGround truth planted modes:         k = " << kTrueModes
            << "\nPaper (Fig. 2, real datasets):      k = 10\n";
  return 0;
}
