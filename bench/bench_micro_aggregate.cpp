// Micro-benchmarks for the aggregation path: the legacy collect-then-
// fold (`aggregate_updates`), the streaming aggregation plane
// (fl/aggregator.h), each wire codec's encode/decode, and each server
// optimizer's apply step, across model sizes.
//
// Besides the BM_ cases, main() emits two machine-readable reports:
//   aggcmp,<parties>,<dim>,<legacy_GBps>,<streaming_GBps>,<speedup>
//     — the legacy-vs-streaming throughput comparison the acceptance
//       gate reads (streaming must be >= 2x at cohort >= 64), and
//   alloc,steady_state,<count>
//     — heap allocations observed across measured rounds of the full
//       lease -> encode/decode -> submit -> finalize -> release cycle
//       AFTER warm-up. The plane's contract is 0.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <new>
#include <utility>

#include "common/rng.h"
#include "fl/aggregator.h"
#include "fl/server_optimizer.h"
#include "net/codec.h"

// ---- Global allocation counter (this binary only). Counts every
// operator-new so the steady-state aggregation rounds can prove they
// allocate nothing.
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

// noinline: if gcc inlines these into call sites it pattern-matches
// the underlying malloc/free pair and raises a spurious
// -Wmismatched-new-delete (the replacement pattern is exactly
// malloc-in-new / free-in-delete).
__attribute__((noinline)) void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
__attribute__((noinline)) void* operator new[](std::size_t size) {
  return ::operator new(size);
}
__attribute__((noinline)) void operator delete(void* p) noexcept {
  std::free(p);
}
__attribute__((noinline)) void operator delete[](void* p) noexcept {
  std::free(p);
}
__attribute__((noinline)) void operator delete(void* p,
                                               std::size_t) noexcept {
  std::free(p);
}
__attribute__((noinline)) void operator delete[](void* p,
                                                 std::size_t) noexcept {
  std::free(p);
}

namespace {

std::vector<flips::fl::LocalUpdate> make_updates(std::size_t parties,
                                                 std::size_t dim) {
  flips::common::Rng rng(42);
  std::vector<flips::fl::LocalUpdate> updates(parties);
  for (auto& u : updates) {
    u.num_samples = 50 + rng.uniform_index(100);
    u.delta.resize(dim);
    for (auto& d : u.delta) d = rng.normal(0.0, 0.01);
  }
  return updates;
}

void BM_AggregateUpdates(benchmark::State& state) {
  const auto parties = static_cast<std::size_t>(state.range(0));
  const auto dim = static_cast<std::size_t>(state.range(1));
  const auto updates = make_updates(parties, dim);
  for (auto _ : state) {
    benchmark::DoNotOptimize(flips::fl::aggregate_updates(updates));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(parties * dim *
                                                    sizeof(double)));
}
BENCHMARK(BM_AggregateUpdates)
    ->Args({10, 1000})
    ->Args({40, 1000})
    ->Args({64, 100000})
    ->Args({200, 100000});

/// One full streaming round over pre-materialized deltas: begin_round,
/// submit every cohort slot (block folds happen inside), finalize.
void BM_StreamingAggregator(benchmark::State& state) {
  const auto parties = static_cast<std::size_t>(state.range(0));
  const auto dim = static_cast<std::size_t>(state.range(1));
  const auto updates = make_updates(parties, dim);
  flips::fl::StreamingAggregator aggregator;
  for (auto _ : state) {
    aggregator.begin_round(dim, parties);
    for (std::size_t k = 0; k < parties; ++k) {
      aggregator.submit(k, static_cast<double>(updates[k].num_samples),
                        updates[k].delta);
    }
    benchmark::DoNotOptimize(aggregator.finalize().data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(parties * dim *
                                                    sizeof(double)));
}
BENCHMARK(BM_StreamingAggregator)
    ->Args({10, 1000})
    ->Args({40, 1000})
    ->Args({64, 100000})
    ->Args({200, 100000});

void run_codec(benchmark::State& state, flips::net::Codec which) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  flips::net::CodecConfig config;
  config.codec = which;
  const flips::net::UpdateCodec codec(config);
  flips::common::Rng rng(7);
  std::vector<double> update(dim);
  for (auto& v : update) v = rng.normal(0.0, 0.01);
  flips::net::EncodedUpdate enc;
  flips::net::CodecWorkspace ws;
  std::vector<double> decoded;
  for (auto _ : state) {
    codec.encode(update, rng, enc, ws);
    codec.decode(enc, decoded);
    benchmark::DoNotOptimize(decoded.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dim * sizeof(double)));
}
void BM_CodecQuant8(benchmark::State& state) {
  run_codec(state, flips::net::Codec::kQuant8);
}
void BM_CodecTopK(benchmark::State& state) {
  run_codec(state, flips::net::Codec::kTopK);
}
BENCHMARK(BM_CodecQuant8)->Arg(10000)->Arg(100000);
BENCHMARK(BM_CodecTopK)->Arg(10000)->Arg(100000);

void run_server_opt(benchmark::State& state, flips::fl::ServerOpt opt) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  flips::fl::ServerOptConfig config;
  config.optimizer = opt;
  config.learning_rate = opt == flips::fl::ServerOpt::kFedAvg ? 1.0 : 0.05;
  flips::fl::ServerOptimizer server(config, dim);

  flips::common::Rng rng(7);
  std::vector<double> params(dim), grad(dim);
  for (auto& p : params) p = rng.normal();
  for (auto& g : grad) g = rng.normal(0.0, 0.01);

  for (auto _ : state) {
    server.apply(params, grad);
    benchmark::DoNotOptimize(params.data());
  }
}

void BM_ServerFedAvg(benchmark::State& state) {
  run_server_opt(state, flips::fl::ServerOpt::kFedAvg);
}
void BM_ServerFedAdagrad(benchmark::State& state) {
  run_server_opt(state, flips::fl::ServerOpt::kFedAdagrad);
}
void BM_ServerFedAdam(benchmark::State& state) {
  run_server_opt(state, flips::fl::ServerOpt::kFedAdam);
}
void BM_ServerFedYogi(benchmark::State& state) {
  run_server_opt(state, flips::fl::ServerOpt::kFedYogi);
}

BENCHMARK(BM_ServerFedAvg)->Range(1000, 1000000);
BENCHMARK(BM_ServerFedAdagrad)->Range(1000, 1000000);
BENCHMARK(BM_ServerFedAdam)->Range(1000, 1000000);
BENCHMARK(BM_ServerFedYogi)->Range(1000, 1000000);

// ---- Explicit legacy-vs-streaming comparison (the >= 2x gate). ----

double measure_seconds(const std::function<void()>& fn,
                       double min_seconds) {
  using Clock = std::chrono::steady_clock;
  // One warm-up call, then run until the time budget is consumed.
  fn();
  std::size_t iters = 0;
  const auto start = Clock::now();
  double elapsed = 0.0;
  do {
    fn();
    ++iters;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < min_seconds);
  return elapsed / static_cast<double>(iters);
}

void compare_case(const char* mode, std::size_t parties, std::size_t dim,
                  double legacy_s, double streaming_s) {
  const double bytes = static_cast<double>(parties * dim * sizeof(double));
  const double legacy_gbps = bytes / legacy_s / 1e9;
  const double streaming_gbps = bytes / streaming_s / 1e9;
  std::printf("%-11s %-8zu %-8zu %14.2f %14.2f %9.2fx\n", mode, parties,
              dim, legacy_gbps, streaming_gbps, legacy_s / streaming_s);
  std::printf("aggcmp,%s,%zu,%zu,%.3f,%.3f,%.3f\n", mode, parties, dim,
              legacy_gbps, streaming_gbps, legacy_s / streaming_s);
}

void throughput_comparison() {
  std::printf("\nlegacy vs streaming plane (single-thread, weighted "
              "mean, bit-identical results)\n");
  std::printf("  round-path: what the round loop actually did per round "
              "(copy every delta into a LocalUpdate, then fold) vs the "
              "plane (lease + borrow-submit + block fold)\n");
  std::printf("  kernel:     pre-materialized buffers, fold only\n");
  std::printf("%-11s %-8s %-8s %14s %14s %10s\n", "mode", "parties",
              "dim", "legacy GB/s", "stream GB/s", "speedup");

  constexpr std::pair<std::size_t, std::size_t> kCases[] = {
      {64, 100000}, {128, 100000}, {200, 100000}, {64, 10000}};
  for (const auto& [parties, dim] : kCases) {
    const auto updates = make_updates(parties, dim);

    // Round path: the pre-plane job loop rebuilt a LocalUpdate vector
    // every round — one fresh allocation + full copy per party — and
    // aggregate_updates allocated its output. (The per-party deltas
    // themselves are produced by training in both worlds, so their
    // fill is outside both timings.)
    const double legacy_path_s = measure_seconds(
        [&] {
          std::vector<flips::fl::LocalUpdate> collected;
          collected.reserve(updates.size());
          for (const auto& u : updates) {
            flips::fl::LocalUpdate copy;
            copy.num_samples = u.num_samples;
            copy.delta = u.delta;
            collected.push_back(std::move(copy));
          }
          benchmark::DoNotOptimize(
              flips::fl::aggregate_updates(collected));
        },
        0.2);

    flips::fl::BufferArena arena;
    flips::fl::StreamingAggregator aggregator;
    std::vector<std::vector<double>> leased(parties);
    const double streaming_path_s = measure_seconds(
        [&] {
          aggregator.begin_round(dim, parties);
          for (std::size_t k = 0; k < parties; ++k) {
            leased[k] = arena.lease(dim);
            std::memcpy(leased[k].data(), updates[k].delta.data(),
                        dim * sizeof(double));
            aggregator.submit(
                k, static_cast<double>(updates[k].num_samples), leased[k]);
          }
          benchmark::DoNotOptimize(aggregator.finalize().data());
          for (std::size_t k = 0; k < parties; ++k) {
            arena.release(std::move(leased[k]));
          }
        },
        0.2);
    compare_case("round-path", parties, dim, legacy_path_s,
                 streaming_path_s);

    const double legacy_kernel_s = measure_seconds(
        [&] {
          benchmark::DoNotOptimize(flips::fl::aggregate_updates(updates));
        },
        0.2);
    const double streaming_kernel_s = measure_seconds(
        [&] {
          aggregator.begin_round(dim, parties);
          for (std::size_t k = 0; k < parties; ++k) {
            aggregator.submit(
                k, static_cast<double>(updates[k].num_samples),
                updates[k].delta);
          }
          benchmark::DoNotOptimize(aggregator.finalize().data());
        },
        0.2);
    compare_case("kernel", parties, dim, legacy_kernel_s,
                 streaming_kernel_s);
  }
}

// ---- Steady-state allocation audit of the full aggregation plane:
// lease party buffers, quant8 encode/decode with error feedback,
// submit, finalize, release — the round loop's wire path. After the
// warm-up rounds the arena and the reused codec buffers must make
// this allocation-free.
void allocation_audit() {
  constexpr std::size_t kParties = 64;
  constexpr std::size_t kDim = 10000;
  constexpr std::size_t kWarmup = 3;
  constexpr std::size_t kMeasured = 20;

  flips::common::Rng rng(11);
  std::vector<std::vector<double>> raw(kParties,
                                       std::vector<double>(kDim));
  for (auto& v : raw) {
    for (auto& x : v) x = rng.normal(0.0, 0.01);
  }
  std::vector<std::vector<double>> residuals(kParties);

  flips::net::CodecConfig cc;
  cc.codec = flips::net::Codec::kQuant8;
  const flips::net::UpdateCodec codec(cc);
  flips::net::EncodedUpdate enc;
  flips::net::CodecWorkspace ws;

  flips::fl::BufferArena arena;
  flips::fl::StreamingAggregator aggregator;
  std::vector<std::vector<double>> leased(kParties);

  std::uint64_t base = 0;
  for (std::size_t round = 0; round < kWarmup + kMeasured; ++round) {
    if (round == kWarmup) {
      base = g_allocations.load(std::memory_order_relaxed);
    }
    aggregator.begin_round(kDim, kParties);
    for (std::size_t k = 0; k < kParties; ++k) {
      std::vector<double> pre = arena.lease(kDim);
      if (residuals[k].empty()) {
        std::memcpy(pre.data(), raw[k].data(), kDim * sizeof(double));
      } else {
        for (std::size_t i = 0; i < kDim; ++i) {
          pre[i] = raw[k][i] + residuals[k][i];
        }
      }
      codec.encode(pre, rng, enc, ws);
      leased[k] = arena.lease(kDim);
      codec.decode(enc, leased[k]);
      if (residuals[k].empty()) residuals[k].assign(kDim, 0.0);
      for (std::size_t i = 0; i < kDim; ++i) {
        residuals[k][i] = pre[i] - leased[k][i];
      }
      arena.release(std::move(pre));
      aggregator.submit(k, 1.0, leased[k]);
    }
    benchmark::DoNotOptimize(aggregator.finalize().data());
    for (std::size_t k = 0; k < kParties; ++k) {
      arena.release(std::move(leased[k]));
    }
  }
  const std::uint64_t steady =
      g_allocations.load(std::memory_order_relaxed) - base;
  std::printf("\nheap allocations across %zu steady-state rounds "
              "(%zu parties x dim %zu, quant8 wire path): %llu\n",
              kMeasured, kParties, kDim,
              static_cast<unsigned long long>(steady));
  std::printf("alloc,steady_state,%llu\n",
              static_cast<unsigned long long>(steady));
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  const int rc = benchmark::RunSpecifiedBenchmarks();
  throughput_comparison();
  allocation_audit();
  return rc;
}
