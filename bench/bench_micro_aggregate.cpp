// Micro-benchmarks for the aggregation path: weighted delta averaging and
// each server optimizer's apply step, across model sizes.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "fl/server_optimizer.h"

namespace {

std::vector<flips::fl::LocalUpdate> make_updates(std::size_t parties,
                                                 std::size_t dim) {
  flips::common::Rng rng(42);
  std::vector<flips::fl::LocalUpdate> updates(parties);
  for (auto& u : updates) {
    u.num_samples = 50 + rng.uniform_index(100);
    u.delta.resize(dim);
    for (auto& d : u.delta) d = rng.normal(0.0, 0.01);
  }
  return updates;
}

void BM_AggregateUpdates(benchmark::State& state) {
  const auto parties = static_cast<std::size_t>(state.range(0));
  const auto dim = static_cast<std::size_t>(state.range(1));
  const auto updates = make_updates(parties, dim);
  for (auto _ : state) {
    benchmark::DoNotOptimize(flips::fl::aggregate_updates(updates));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(parties * dim *
                                                    sizeof(double)));
}
BENCHMARK(BM_AggregateUpdates)
    ->Args({10, 1000})
    ->Args({40, 1000})
    ->Args({40, 100000})
    ->Args({200, 100000});

void run_server_opt(benchmark::State& state, flips::fl::ServerOpt opt) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  flips::fl::ServerOptConfig config;
  config.optimizer = opt;
  config.learning_rate = opt == flips::fl::ServerOpt::kFedAvg ? 1.0 : 0.05;
  flips::fl::ServerOptimizer server(config, dim);

  flips::common::Rng rng(7);
  std::vector<double> params(dim), grad(dim);
  for (auto& p : params) p = rng.normal();
  for (auto& g : grad) g = rng.normal(0.0, 0.01);

  for (auto _ : state) {
    server.apply(params, grad);
    benchmark::DoNotOptimize(params.data());
  }
}

void BM_ServerFedAvg(benchmark::State& state) {
  run_server_opt(state, flips::fl::ServerOpt::kFedAvg);
}
void BM_ServerFedAdagrad(benchmark::State& state) {
  run_server_opt(state, flips::fl::ServerOpt::kFedAdagrad);
}
void BM_ServerFedAdam(benchmark::State& state) {
  run_server_opt(state, flips::fl::ServerOpt::kFedAdam);
}
void BM_ServerFedYogi(benchmark::State& state) {
  run_server_opt(state, flips::fl::ServerOpt::kFedYogi);
}

BENCHMARK(BM_ServerFedAvg)->Range(1000, 1000000);
BENCHMARK(BM_ServerFedAdagrad)->Range(1000, 1000000);
BENCHMARK(BM_ServerFedAdam)->Range(1000, 1000000);
BENCHMARK(BM_ServerFedYogi)->Range(1000, 1000000);

}  // namespace

BENCHMARK_MAIN();
