// Selection fairness across strategies (paper §1/§3.2: FLIPS "ensures
// that parties are equitably represented while offering each party a
// fair opportunity to participate").
//
// For every selector: Jain's index over per-party pick counts, rounds
// until full coverage (every party selected >= once), and peak accuracy.
// Interpreting Jain needs care: FLIPS equalizes *cluster* representation,
// so a party in a small cluster is picked more often than one in a large
// cluster — per-party Jain is deliberately below random's, while within
// any one cluster picks are exactly balanced (the per-cluster min-heaps).
// Random/TiFL maximize per-party Jain but are blind to label coverage.
#include <iostream>

#include "common/experiment.h"

int main(int argc, char** argv) {
  flips::bench::Scale default_scale;
  default_scale.rounds = 120;
  default_scale.runs = 2;
  const auto options =
      flips::bench::parse_bench_options(argc, argv, default_scale);

  flips::bench::ExperimentConfig config;
  config.spec = flips::data::DatasetCatalog::ecg();
  config.alpha = 0.3;
  config.participation = 0.15;
  config.target_accuracy = 0.6;
  options.apply(config);  // scale / seed / threads / codec in one place

  std::cout << "=== Selection fairness (ECG-style, alpha=0.3, 15% "
               "participation, FedYogi) ===\n\n";
  flips::bench::print_table_header(
      "fairness", {"selector", "jain-index", "coverage-round", "peak-acc %"});

  for (const auto kind :
       {flips::select::SelectorKind::kFlips,
        flips::select::SelectorKind::kRandom,
        flips::select::SelectorKind::kOort,
        flips::select::SelectorKind::kGradClus,
        flips::select::SelectorKind::kTifl,
        flips::select::SelectorKind::kPowerOfChoice,
        flips::select::SelectorKind::kFedCbs}) {
    const auto result = flips::bench::run_selector(config, kind);
    flips::bench::print_table_row(
        {result.selector, std::to_string(result.mean_jain_index),
         result.mean_coverage_round
             ? std::to_string(*result.mean_coverage_round)
             : std::string("never"),
         std::to_string(result.peak_accuracy * 100.0)});
  }

  std::cout << "\nExpected shape: random and TiFL maximize per-party Jain "
               "(uniform picks) but cover the population late and lose "
               "accuracy on non-IID data; Oort and Fed-CBS concentrate "
               "picks on favoured parties (lowest Jain; Fed-CBS re-selects "
               "the same QCID-optimal cohort and may never cover the "
               "population); FLIPS sits between — its picks are uniform "
               "within clusters but weighted toward small clusters, which "
               "is exactly the equitable label representation the paper "
               "argues for, at accuracy competitive with the greedy "
               "strategies.\n";
  return 0;
}
