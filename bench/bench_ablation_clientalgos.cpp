// Ablation: intelligent selection vs algorithmic drift correction.
//
// The related-work section (paper §6) positions FLIPS against client-
// drift-correction algorithms (SCAFFOLD [47], FedDyn [7]) that attack
// non-IID-ness by changing the local objective instead of the selection.
// This bench runs the 2×3 grid {random, FLIPS} × {SGD, FedDyn, SCAFFOLD}
// on the non-IID ECG workload to show the two levers are complementary:
// drift correction helps random selection, FLIPS helps more, and the
// combination is best (or at least no worse).
#include <iostream>

#include "common/experiment.h"

int main(int argc, char** argv) {
  flips::bench::Scale default_scale;
  default_scale.rounds = 100;
  default_scale.runs = 2;
  const auto options =
      flips::bench::parse_bench_options(argc, argv, default_scale);

  flips::bench::ExperimentConfig config;
  config.spec = flips::data::DatasetCatalog::ecg();
  config.alpha = 0.3;
  config.participation = 0.2;
  config.server_opt = flips::fl::ServerOpt::kFedAvg;  // isolate client algo
  config.target_accuracy = 0.6;
  options.apply(config);  // scale / seed / threads / codec in one place

  std::cout << "=== Selection vs drift-correction (ECG-style, alpha=0.3, "
               "FedAvg server) ===\n\n";
  flips::bench::print_table_header(
      "client-algo grid",
      {"selector", "client-algo", "peak-acc %", "rounds-to-60%"});

  for (const auto selector :
       {flips::select::SelectorKind::kRandom,
        flips::select::SelectorKind::kFlips}) {
    for (const auto algo :
         {flips::fl::ClientAlgo::kSgd, flips::fl::ClientAlgo::kFedDyn,
          flips::fl::ClientAlgo::kScaffold}) {
      config.client_algo = algo;
      const auto result = flips::bench::run_selector(config, selector);
      flips::bench::print_table_row(
          {flips::select::to_string(selector), flips::fl::to_string(algo),
           std::to_string(result.peak_accuracy * 100.0),
           flips::bench::format_rounds(result.rounds_to_target,
                                       config.scale.rounds)});
    }
  }

  std::cout << "\nExpected shape: both levers help on non-IID data — "
               "drift correction lifts either selector (FedDyn most), "
               "FLIPS lifts either client algorithm, and FLIPS+FedDyn is "
               "the strongest cell. The levers are complementary, which "
               "is the related-work positioning the paper argues (§6).\n";
  return 0;
}
