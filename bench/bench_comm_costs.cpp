// Communication-cost reproduction (paper abstract: "higher accuracy with
// 20-60% lower communication costs"; §5 headline).
//
// For every selector, runs the ECG-style workload to the 60 % target and
// reports the bytes moved until the target was reached (model down +
// update up per round, the paper's accounting). The paper's claim is a
// *relative* one: FLIPS reaches target accuracy in fewer rounds, so the
// bytes-to-target ratio vs random/Oort/TiFL should land in the 20-60 %
// savings band.
#include <iostream>

#include "common/experiment.h"

namespace {

using flips::bench::ExperimentConfig;
using flips::bench::run_selector;
using flips::select::SelectorKind;

}  // namespace

int main(int argc, char** argv) {
  flips::bench::Scale default_scale;
  default_scale.rounds = 120;
  const auto options =
      flips::bench::parse_bench_options(argc, argv, default_scale);

  ExperimentConfig config;
  config.spec = flips::data::DatasetCatalog::ecg();
  config.alpha = 0.3;
  config.participation = 0.2;
  config.server_opt = flips::fl::ServerOpt::kFedYogi;
  config.target_accuracy = 0.6;
  config.scale = options.scale;
  config.seed = options.seed;

  std::cout << "=== Communication cost to reach 60% balanced accuracy "
               "(ECG-style, alpha=0.3, FedYogi) ===\n";
  std::cout << "Paper claim: FLIPS attains target accuracy with 20-60% "
               "lower communication than the alternatives.\n\n";

  flips::bench::print_table_header(
      "bytes-to-target",
      {"selector", "rounds-to-target", "GiB-to-target", "GiB-total",
       "savings-vs-selector"});

  struct Row {
    std::string name;
    std::optional<double> rounds;
    double gib_to_target = 0.0;
    double gib_total = 0.0;
  };
  std::vector<Row> rows;

  for (const SelectorKind kind :
       {SelectorKind::kFlips, SelectorKind::kRandom, SelectorKind::kOort,
        SelectorKind::kGradClus, SelectorKind::kTifl}) {
    const auto result = run_selector(config, kind);
    Row row;
    row.name = result.selector;
    row.rounds = result.rounds_to_target;
    row.gib_total = result.total_gib;
    // Bytes are uniform per round (fixed Nr), so bytes-to-target scales
    // linearly with rounds-to-target.
    const double per_round =
        result.total_gib / static_cast<double>(config.scale.rounds);
    row.gib_to_target = row.rounds ? *row.rounds * per_round
                                   : result.total_gib;  // lower bound
    rows.push_back(row);
  }

  const Row& flips_row = rows.front();
  for (const Row& row : rows) {
    std::string savings = "-";
    if (row.name != flips_row.name && flips_row.rounds && row.gib_to_target > 0.0) {
      const double s =
          100.0 * (1.0 - flips_row.gib_to_target / row.gib_to_target);
      savings = row.rounds ? "" : ">";
      savings += std::to_string(static_cast<int>(s + 0.5));
      savings += "% less w/ FLIPS";
    }
    flips::bench::print_table_row(
        {row.name,
         flips::bench::format_rounds(row.rounds, config.scale.rounds),
         std::to_string(row.gib_to_target),
         std::to_string(row.gib_total), savings});
  }

  std::cout << "\nNote: '>' rows never reached the target inside the round "
               "budget; their GiB-to-target is a lower bound (total moved), "
               "so the true FLIPS savings against them is higher.\n";
  return 0;
}
