// Communication-cost reproduction (paper abstract: "higher accuracy with
// 20-60% lower communication costs"; §5 headline).
//
// For every selector, runs the ECG-style workload to the 60 % target and
// reports the bytes moved until the target was reached (model down +
// update up per round, the paper's accounting). The paper's claim is a
// *relative* one: FLIPS reaches target accuracy in fewer rounds, so the
// bytes-to-target ratio vs random/Oort/TiFL should land in the 20-60 %
// savings band.
#include <iostream>

#include "common/experiment.h"

namespace {

using flips::bench::ExperimentConfig;
using flips::bench::run_selector;
using flips::select::SelectorKind;

}  // namespace

int main(int argc, char** argv) {
  flips::bench::Scale default_scale;
  default_scale.rounds = 120;
  const auto options =
      flips::bench::parse_bench_options(argc, argv, default_scale);

  ExperimentConfig config;
  config.spec = flips::data::DatasetCatalog::ecg();
  config.alpha = 0.3;
  config.participation = 0.2;
  config.server_opt = flips::fl::ServerOpt::kFedYogi;
  config.target_accuracy = 0.6;
  options.apply(config);  // scale / seed / threads / codec in one place

  std::cout << "=== Communication cost to reach 60% balanced accuracy "
               "(ECG-style, alpha=0.3, FedYogi) ===\n";
  std::cout << "Paper claim: FLIPS attains target accuracy with 20-60% "
               "lower communication than the alternatives.\n\n";

  flips::bench::print_table_header(
      "bytes-to-target",
      {"selector", "rounds-to-target", "GiB-to-target", "GiB-total",
       "savings-vs-selector"});

  struct Row {
    std::string name;
    std::optional<double> rounds;
    double gib_to_target = 0.0;
    double gib_total = 0.0;
  };
  std::vector<Row> rows;

  // The FLIPS run is kept whole so the codec arms below can reuse it
  // when their codec matches (skipping a duplicate multi-run FL job).
  std::optional<flips::bench::SelectorResult> flips_full_result;
  for (const SelectorKind kind :
       {SelectorKind::kFlips, SelectorKind::kRandom, SelectorKind::kOort,
        SelectorKind::kGradClus, SelectorKind::kTifl}) {
    const auto result = run_selector(config, kind);
    if (kind == SelectorKind::kFlips) flips_full_result = result;
    Row row;
    row.name = result.selector;
    row.rounds = result.rounds_to_target;
    row.gib_total = result.total_gib;
    // Bytes are uniform per round (fixed Nr), so bytes-to-target scales
    // linearly with rounds-to-target.
    const double per_round =
        result.total_gib / static_cast<double>(config.scale.rounds);
    row.gib_to_target = row.rounds ? *row.rounds * per_round
                                   : result.total_gib;  // lower bound
    rows.push_back(row);
  }

  const Row& flips_row = rows.front();
  for (const Row& row : rows) {
    std::string savings = "-";
    if (row.name != flips_row.name && flips_row.rounds && row.gib_to_target > 0.0) {
      const double s =
          100.0 * (1.0 - flips_row.gib_to_target / row.gib_to_target);
      savings = row.rounds ? "" : ">";
      savings += std::to_string(static_cast<int>(s + 0.5));
      savings += "% less w/ FLIPS";
    }
    flips::bench::print_table_row(
        {row.name,
         flips::bench::format_rounds(row.rounds, config.scale.rounds),
         std::to_string(row.gib_to_target),
         std::to_string(row.gib_total), savings});
  }

  std::cout << "\nNote: '>' rows never reached the target inside the round "
               "budget; their GiB-to-target is a lower bound (total moved), "
               "so the true FLIPS savings against them is higher.\n";

  // ---- Codec arms: same workload, FLIPS selection, swapping the wire
  // codec. Updates go up encoded and the broadcast delta comes down
  // encoded (error feedback on both sides; see fl/job.h), so the
  // bytes-to-target column measures real wire bytes, not model-size
  // proxies. Expected: kQuant8 lands ~7.8x fewer bytes per round and
  // >= 4x lower bytes-to-target than kDense64 at matched accuracy.
  std::cout << "\n=== Wire-codec arms (FLIPS selection, same workload) "
               "===\n";
  flips::bench::print_table_header(
      "codec bytes-to-target",
      {"codec", "rounds-to-target", "peak-acc %", "MiB/round",
       "GiB-to-target", "reduction"});

  struct CodecRow {
    std::string name;
    std::optional<double> rounds;
    double peak = 0.0;
    double mib_per_round = 0.0;
    double gib_to_target = 0.0;
  };
  std::vector<CodecRow> codec_rows;
  for (const flips::net::Codec codec :
       {flips::net::Codec::kDense64, flips::net::Codec::kQuant8,
        flips::net::Codec::kTopK}) {
    auto arm = config;
    arm.codec.codec = codec;
    // The main table already ran FLIPS under options.codec (dense64
    // unless --codec overrode it) — reuse that result instead of
    // re-simulating the identical arm.
    const auto result = codec == options.codec.codec && flips_full_result
                            ? *flips_full_result
                            : run_selector(arm, SelectorKind::kFlips);
    CodecRow row;
    row.name = flips::net::to_string(codec);
    row.rounds = result.rounds_to_target;
    row.peak = result.peak_accuracy * 100.0;
    const double per_round =
        result.total_gib / static_cast<double>(config.scale.rounds);
    row.mib_per_round = per_round * 1024.0;
    row.gib_to_target =
        row.rounds ? *row.rounds * per_round : result.total_gib;
    codec_rows.push_back(row);
  }
  const CodecRow& dense_row = codec_rows.front();
  for (const CodecRow& row : codec_rows) {
    // "-" when the ratio is unknowable (dense never reached the
    // target, so its GiB-to-target is itself a lower bound).
    std::string reduction =
        row.name == dense_row.name && dense_row.rounds ? "1.0x" : "-";
    if (row.name != dense_row.name && row.gib_to_target > 0.0 &&
        dense_row.rounds) {
      char buf[32];
      // A codec arm that missed the target has a lower-bound
      // GiB-to-target, so its reduction factor is an upper bound.
      std::snprintf(buf, sizeof buf, "%s%.1fx",
                    row.rounds ? "" : "<",
                    dense_row.gib_to_target / row.gib_to_target);
      reduction = buf;
    }
    char peak_buf[32];
    std::snprintf(peak_buf, sizeof peak_buf, "%.1f", row.peak);
    char mib_buf[32];
    std::snprintf(mib_buf, sizeof mib_buf, "%.2f", row.mib_per_round);
    char gib_buf[32];
    std::snprintf(gib_buf, sizeof gib_buf, "%.4f", row.gib_to_target);
    flips::bench::print_table_row(
        {row.name,
         flips::bench::format_rounds(row.rounds, config.scale.rounds),
         peak_buf, mib_buf, gib_buf, reduction});
  }
  std::cout << "\nNote: 'reduction' is dense64's GiB-to-target over the "
               "codec's. Accuracy should match dense within noise; "
               "error feedback carries what the wire drops into the "
               "next round.\n";
  return 0;
}
