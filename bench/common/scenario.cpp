#include "common/scenario.h"

#include <charconv>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <stdexcept>

#include "common/paper_tables.h"

namespace flips {

namespace {

[[noreturn]] void fail(const std::string& message) {
  throw std::invalid_argument(message);
}

// Message building appends piecewise (gcc 12's -Wrestrict
// false-positives on `"literal" + std::string(...)` chains).
[[noreturn]] void fail_value(std::string_view key, std::string_view value,
                             std::string_view extra = {}) {
  std::string message = "invalid value for ";
  message += key;
  message += ": ";
  message += value;
  message += extra;
  fail(message);
}

double parse_double(std::string_view key, std::string_view value) {
  const std::string text(value);
  char* end = nullptr;
  const double parsed = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') fail_value(key, value);
  return parsed;
}

std::uint64_t parse_u64(std::string_view key, std::string_view value) {
  const std::string text(value);
  // strtoull silently wraps negatives ("-1" -> 2^64-1); reject them.
  if (!text.empty() && text.front() == '-') fail_value(key, value);
  char* end = nullptr;
  const std::uint64_t parsed = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') fail_value(key, value);
  return parsed;
}

void check_choice(std::string_view key, std::string_view value,
                  const std::vector<std::string_view>& choices) {
  for (const std::string_view c : choices) {
    if (value == c) return;
  }
  std::string extra = " (expected one of:";
  for (const std::string_view c : choices) {
    extra += " ";
    extra += c;
  }
  extra += ")";
  fail_value(key, value, extra);
}

struct Field {
  const char* key;
  std::function<void(ScenarioSpec&, std::string_view)> set;
  std::function<std::string(const ScenarioSpec&)> get;
};

// Shortest round-trip formatting (std::to_chars): "0.05" stays
// "0.05", yet strtod(show(v)) == v exactly for every double — the
// property to_key_values()/from_key_values() round-trip equality
// rests on.
std::string show(double v) {
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
  (void)ec;  // 32 bytes always fit the shortest double form
  return std::string(buf, end);
}

const std::vector<Field>& fields() {
  auto size_field = [](const char* key, std::size_t ScenarioSpec::* mem) {
    return Field{key,
                 [key, mem](ScenarioSpec& s, std::string_view v) {
                   s.*mem = static_cast<std::size_t>(parse_u64(key, v));
                 },
                 [mem](const ScenarioSpec& s) {
                   return std::to_string(s.*mem);
                 }};
  };
  auto double_field = [](const char* key, double ScenarioSpec::* mem) {
    return Field{key,
                 [key, mem](ScenarioSpec& s, std::string_view v) {
                   s.*mem = parse_double(key, v);
                 },
                 [mem](const ScenarioSpec& s) { return show(s.*mem); }};
  };
  // choices captured as an owning vector (an initializer_list capture
  // would dangle once the registry-building expression ends).
  auto choice_field = [](const char* key, std::string ScenarioSpec::* mem,
                         std::vector<std::string_view> choices) {
    return Field{key,
                 [key, mem, choices = std::move(choices)](
                     ScenarioSpec& s, std::string_view v) {
                   check_choice(key, v, choices);
                   s.*mem = std::string(v);
                 },
                 [mem](const ScenarioSpec& s) { return s.*mem; }};
  };

  static const std::vector<Field> registry = {
      Field{"name",
            [](ScenarioSpec& s, std::string_view v) {
              s.name = std::string(v);
            },
            [](const ScenarioSpec& s) { return s.name; }},
      choice_field("dataset", &ScenarioSpec::dataset,
                   {"ecg", "ham", "femnist", "fashion"}),
      double_field("alpha", &ScenarioSpec::alpha),
      double_field("class_separation", &ScenarioSpec::class_separation),
      size_field("parties", &ScenarioSpec::parties),
      size_field("samples", &ScenarioSpec::samples_per_party),
      size_field("rounds", &ScenarioSpec::rounds),
      size_field("runs", &ScenarioSpec::runs),
      size_field("eval_every", &ScenarioSpec::eval_every),
      double_field("participation", &ScenarioSpec::participation),
      choice_field("mode", &ScenarioSpec::mode, {"sync", "async"}),
      size_field("buffer_k", &ScenarioSpec::buffer_k),
      size_field("max_staleness", &ScenarioSpec::max_staleness),
      choice_field("server_opt", &ScenarioSpec::server_opt,
                   {"fedavg", "fedadagrad", "fedadam", "fedyogi"}),
      double_field("server_lr", &ScenarioSpec::server_lr),
      choice_field("client_algo", &ScenarioSpec::client_algo,
                   {"sgd", "scaffold", "feddyn"}),
      double_field("prox_mu", &ScenarioSpec::prox_mu),
      size_field("local_epochs", &ScenarioSpec::local_epochs),
      double_field("local_lr", &ScenarioSpec::local_lr),
      size_field("mlp_hidden", &ScenarioSpec::mlp_hidden),
      double_field("target_accuracy", &ScenarioSpec::target_accuracy),
      // Validated against the selector registry itself, so new
      // selectors surface here without touching the scenario layer.
      Field{"selector",
            [](ScenarioSpec& s, std::string_view v) {
              (void)select::selector_kind_from_name(v);  // fail-fast
              s.selector = std::string(v);
            },
            [](const ScenarioSpec& s) { return s.selector; }},
      size_field("flips_clusters", &ScenarioSpec::flips_clusters),
      double_field("straggler_rate", &ScenarioSpec::straggler_rate),
      // Fault-plane knobs fail fast on out-of-range values here (the
      // session would also reject them, but only after the federation
      // was built).
      Field{"churn",
            [](ScenarioSpec& s, std::string_view v) {
              const double parsed = parse_double("churn", v);
              if (!(parsed >= 0.0) || !std::isfinite(parsed)) {
                fail_value("churn", v, " (expected a finite value >= 0)");
              }
              s.churn = parsed;
            },
            [](const ScenarioSpec& s) { return show(s.churn); }},
      Field{"fault_rate",
            [](ScenarioSpec& s, std::string_view v) {
              const double parsed = parse_double("fault_rate", v);
              if (!(parsed >= 0.0 && parsed <= 1.0)) {
                fail_value("fault_rate", v, " (expected a value in [0, 1])");
              }
              s.fault_rate = parsed;
            },
            [](const ScenarioSpec& s) { return show(s.fault_rate); }},
      Field{"min_quorum",
            [](ScenarioSpec& s, std::string_view v) {
              const double parsed = parse_double("min_quorum", v);
              if (!(parsed >= 0.0 && parsed <= 1.0)) {
                fail_value("min_quorum", v, " (expected a value in [0, 1])");
              }
              s.min_quorum = parsed;
            },
            [](const ScenarioSpec& s) { return show(s.min_quorum); }},
      Field{"max_retries",
            [](ScenarioSpec& s, std::string_view v) {
              const std::uint64_t parsed = parse_u64("max_retries", v);
              if (parsed > 64) {
                fail_value("max_retries", v, " (expected <= 64)");
              }
              s.max_retries = static_cast<std::size_t>(parsed);
            },
            [](const ScenarioSpec& s) {
              return std::to_string(s.max_retries);
            }},
      choice_field("privacy", &ScenarioSpec::privacy,
                   {"none", "dp", "masking"}),
      double_field("dp_clip", &ScenarioSpec::dp_clip),
      double_field("dp_noise", &ScenarioSpec::dp_noise),
      size_field("threads", &ScenarioSpec::threads),
      choice_field("codec", &ScenarioSpec::codec,
                   {"dense64", "quant8", "topk"}),
      Field{"seed",
            [](ScenarioSpec& s, std::string_view v) {
              s.seed = parse_u64("seed", v);
            },
            [](const ScenarioSpec& s) { return std::to_string(s.seed); }},
      size_field("sessions", &ScenarioSpec::sessions),
  };
  return registry;
}

data::SyntheticSpec dataset_spec(const ScenarioSpec& spec) {
  data::SyntheticSpec out;
  if (spec.dataset == "ecg") {
    out = data::DatasetCatalog::ecg();
  } else if (spec.dataset == "ham") {
    out = data::DatasetCatalog::ham10000();
  } else if (spec.dataset == "femnist") {
    out = data::DatasetCatalog::femnist();
  } else if (spec.dataset == "fashion") {
    out = data::DatasetCatalog::fashion_mnist();
  } else {
    fail("unknown dataset: " + spec.dataset);
  }
  if (spec.class_separation > 0.0) {
    out.class_separation = spec.class_separation;
  }
  return out;
}

fl::ServerOpt server_opt(const ScenarioSpec& spec) {
  if (spec.server_opt == "fedavg") return fl::ServerOpt::kFedAvg;
  if (spec.server_opt == "fedadagrad") return fl::ServerOpt::kFedAdagrad;
  if (spec.server_opt == "fedadam") return fl::ServerOpt::kFedAdam;
  if (spec.server_opt == "fedyogi") return fl::ServerOpt::kFedYogi;
  fail("unknown server_opt: " + spec.server_opt);
}

fl::ClientAlgo client_algo(const ScenarioSpec& spec) {
  if (spec.client_algo == "sgd") return fl::ClientAlgo::kSgd;
  if (spec.client_algo == "scaffold") return fl::ClientAlgo::kScaffold;
  if (spec.client_algo == "feddyn") return fl::ClientAlgo::kFedDyn;
  fail("unknown client_algo: " + spec.client_algo);
}

fl::PrivacyConfig privacy_config(const ScenarioSpec& spec) {
  fl::PrivacyConfig out;
  if (spec.privacy == "dp") {
    out.mechanism = fl::PrivacyMechanism::kDp;
    out.dp.clip_norm = spec.dp_clip;
    out.dp.noise_multiplier = spec.dp_noise;
  } else if (spec.privacy == "masking") {
    out.mechanism = fl::PrivacyMechanism::kMasking;
  } else if (spec.privacy != "none") {
    fail("unknown privacy mechanism: " + spec.privacy);
  }
  return out;
}

/// The per-dataset calibrated (target, separation, lr) triple shared
/// with the table benches.
bench::paper::ReducedCalibration calibration(std::string_view dataset) {
  if (dataset == "ecg") return bench::paper::kEcgReduced;
  if (dataset == "ham") return bench::paper::kHamReduced;
  if (dataset == "femnist") return bench::paper::kFemnistReduced;
  return bench::paper::kFashionReduced;
}

}  // namespace

void apply_override(ScenarioSpec& spec, std::string_view assignment) {
  const std::size_t eq = assignment.find('=');
  if (eq == std::string_view::npos || eq == 0) {
    std::string message = "expected key=value, got: ";
    message += assignment;
    fail(message);
  }
  const std::string_view key = assignment.substr(0, eq);
  const std::string_view value = assignment.substr(eq + 1);
  for (const Field& field : fields()) {
    if (key == field.key) {
      field.set(spec, value);
      return;
    }
  }
  std::string message = "unknown scenario key: ";
  message += key;
  message += " (flips_run --help lists every key)";
  fail(message);
}

std::string scenario_usage(const ScenarioSpec& spec) {
  std::string out;
  for (const Field& field : fields()) {
    out += "  ";
    out += field.key;
    out += "=";
    out += field.get(spec);
    out += "\n";
  }
  return out;
}

KeyValueList ScenarioSpec::to_key_values() const {
  KeyValueList out;
  out.reserve(fields().size());
  for (const Field& field : fields()) {
    out.emplace_back(field.key, field.get(*this));
  }
  return out;
}

ScenarioSpec ScenarioSpec::from_key_values(const KeyValueList& kv) {
  ScenarioSpec spec;
  for (const auto& [key, value] : kv) {
    // Reuses the registry setters, so every wire-submitted value gets
    // apply_override's fail-fast validation (unknown key, bad parse,
    // out-of-choice string) before a session is ever built from it.
    bool known = false;
    for (const Field& field : fields()) {
      if (key == field.key) {
        field.set(spec, value);
        known = true;
        break;
      }
    }
    if (!known) {
      std::string message = "unknown scenario key: ";
      message += key;
      fail(message);
    }
  }
  return spec;
}

ScenarioSpec scenario_preset(std::string_view name) {
  const std::size_t dash = name.rfind('-');
  if (dash != std::string_view::npos) {
    const std::string_view dataset = name.substr(0, dash);
    const std::string_view algo = name.substr(dash + 1);
    const bool known_dataset = dataset == "ecg" || dataset == "ham" ||
                               dataset == "femnist" || dataset == "fashion";
    const bool known_algo =
        algo == "fedavg" || algo == "fedyogi" || algo == "fedprox";
    if (known_dataset && known_algo) {
      ScenarioSpec spec;
      spec.name = std::string(name);
      spec.dataset = std::string(dataset);
      // The paper's FedProx arm runs a FedAvg server with μ = 0.1; the
      // FedYogi arm is the adaptive server (same pairing as the table
      // benches).
      spec.server_opt = algo == "fedyogi" ? "fedyogi" : "fedavg";
      spec.prox_mu = algo == "fedprox" ? 0.1 : 0.0;
      const auto cal = calibration(dataset);
      spec.target_accuracy = cal.target_accuracy;
      spec.class_separation = cal.class_separation;
      spec.local_lr = cal.local_lr;
      spec.server_lr = cal.server_lr;
      return spec;
    }
  }
  std::string message = "unknown scenario: ";
  message += name;
  message += " (known:";
  for (const std::string& preset : scenario_preset_names()) {
    message += " ";
    message += preset;
  }
  message += ")";
  fail(message);
}

std::vector<std::string> scenario_preset_names() {
  std::vector<std::string> names;
  for (const char* dataset : {"ecg", "ham", "femnist", "fashion"}) {
    for (const char* algo : {"fedavg", "fedyogi", "fedprox"}) {
      names.push_back(std::string(dataset) + "-" + algo);
    }
  }
  return names;
}

bench::ExperimentConfig to_experiment_config(const ScenarioSpec& spec) {
  bench::ExperimentConfig config;
  config.spec = dataset_spec(spec);
  config.alpha = spec.alpha;
  config.participation = spec.participation;
  config.server_opt = server_opt(spec);
  config.server_lr = spec.server_lr;
  config.prox_mu = spec.prox_mu;
  config.straggler_rate = spec.straggler_rate;
  config.target_accuracy = spec.target_accuracy;
  config.scale.num_parties = spec.parties;
  config.scale.samples_per_party = spec.samples_per_party;
  config.scale.rounds = spec.rounds;
  config.scale.runs = spec.runs;
  config.scale.eval_every = spec.eval_every;
  config.seed = spec.seed;
  config.flips_clusters = spec.flips_clusters;
  config.local_epochs = spec.local_epochs;
  config.local_lr = spec.local_lr;
  config.mlp_hidden = spec.mlp_hidden;
  config.privacy = privacy_config(spec);
  config.client_algo = client_algo(spec);
  config.threads = spec.threads;
  const auto codec = net::codec_from_string(spec.codec);
  if (!codec) fail("unknown codec: " + spec.codec);
  config.codec.codec = *codec;
  if (spec.mode == "async") {
    config.mode = fl::FederationMode::kAsync;
  } else if (spec.mode != "sync") {
    fail("unknown mode: " + spec.mode);
  }
  config.async.buffer_k = spec.buffer_k;
  config.async.max_staleness = spec.max_staleness;
  config.faults.churn = spec.churn;
  config.faults.crash_rate = spec.fault_rate;
  config.faults.min_quorum = spec.min_quorum;
  config.faults.max_retries = spec.max_retries;
  config.faults.validate();
  return config;
}

select::SelectorKind selector_kind(const ScenarioSpec& spec) {
  // Registry lookup: throws listing the registered names.
  return select::selector_kind_from_name(spec.selector);
}

}  // namespace flips
