#include "common/table_bench.h"

#include <algorithm>
#include <cmath>
#include <iostream>
#include <sstream>

namespace flips::bench {

namespace {

std::string pct(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", 100.0 * fraction);
  return buf;
}

std::string paper_acc(double value) {
  if (std::isnan(value)) return "n/a";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", value);
  return buf;
}

struct CellResults {
  SelectorResult random, flips, oort, gradcls, tifl;
  SelectorResult flips10, oort10, tifl10;
  SelectorResult flips20, oort20, tifl20;
};

}  // namespace

int run_table_bench(int argc, char** argv, const TableBenchSpec& spec) {
  const BenchOptions options =
      parse_bench_options(argc, argv, spec.default_scale);

  std::cout << "FLIPS reproduction — " << spec.table.dataset << " / "
            << spec.table.algorithm << "\n"
            << "scale: " << options.scale.num_parties << " parties, "
            << options.scale.rounds << " rounds, " << options.scale.runs
            << " run(s), "
            << (options.threads == 0 ? std::string("all")
                                     : std::to_string(options.threads))
            << " thread(s); target balanced accuracy "
            << pct(spec.calibration.target_accuracy) << " % (paper target "
            << pct(spec.table.target_accuracy) << " % in "
            << spec.table.paper_round_budget << " rounds)\n";

  std::vector<CellResults> all_results;
  all_results.reserve(paper::kSettings.size());

  for (std::size_t s = 0; s < paper::kSettings.size(); ++s) {
    const auto& setting = paper::kSettings[s];
    ExperimentConfig config;
    config.spec = spec.dataset;
    config.alpha = setting.alpha;
    config.participation = setting.party_fraction;
    config.server_opt = spec.server_opt;
    config.prox_mu = spec.prox_mu;
    // Calibrated reduced-scale triple (paper_tables.h): the target plus
    // the problem-hardness knobs that keep rounds-to-target in the tens.
    config.target_accuracy = spec.calibration.target_accuracy;
    if (spec.calibration.class_separation > 0.0) {
      config.spec.class_separation = spec.calibration.class_separation;
    }
    config.local_lr = spec.calibration.local_lr;
    config.server_lr = spec.calibration.server_lr;
    options.apply(config);
    config.seed = options.seed + 17 * s;  // per-setting seed stride

    CellResults cell;
    using flips::select::SelectorKind;
    config.straggler_rate = 0.0;
    cell.random = run_selector(config, SelectorKind::kRandom);
    cell.flips = run_selector(config, SelectorKind::kFlips);
    cell.oort = run_selector(config, SelectorKind::kOort);
    cell.gradcls = run_selector(config, SelectorKind::kGradClus);
    cell.tifl = run_selector(config, SelectorKind::kTifl);

    config.straggler_rate = 0.10;
    cell.flips10 = run_selector(config, SelectorKind::kFlips);
    cell.oort10 = run_selector(config, SelectorKind::kOort);
    cell.tifl10 = run_selector(config, SelectorKind::kTifl);

    config.straggler_rate = 0.20;
    cell.flips20 = run_selector(config, SelectorKind::kFlips);
    cell.oort20 = run_selector(config, SelectorKind::kOort);
    cell.tifl20 = run_selector(config, SelectorKind::kTifl);

    all_results.push_back(std::move(cell));
  }

  const std::vector<std::string> columns{
      "setting",  "Random",  "FLIPS",   "OORT",    "GradCls", "TiFL",
      "FLIPS/10", "OORT/10", "TiFL/10", "FLIPS/20", "OORT/20", "TiFL/20"};

  // ---- Rounds-to-target table -------------------------------------
  print_table_header(std::string("Rounds to ") +
                         pct(spec.calibration.target_accuracy) +
                         " % balanced accuracy (measured | paper)",
                     columns);
  for (std::size_t s = 0; s < paper::kSettings.size(); ++s) {
    const auto& setting = paper::kSettings[s];
    const auto& cell = all_results[s];
    const auto& paper_row = spec.table.rounds[s];
    std::ostringstream label;
    label << "a=" << setting.alpha << "/" << pct(setting.party_fraction).substr(0, 2)
          << "%";

    const auto measured = [&](const SelectorResult& r) {
      return format_rounds(r.rounds_to_target, options.scale.rounds);
    };
    print_table_row({label.str(), measured(cell.random), measured(cell.flips),
                     measured(cell.oort), measured(cell.gradcls),
                     measured(cell.tifl), measured(cell.flips10),
                     measured(cell.oort10), measured(cell.tifl10),
                     measured(cell.flips20), measured(cell.oort20),
                     measured(cell.tifl20)});
    const auto paper_cell = [&](int rounds) {
      return format_paper_rounds(rounds, spec.table.paper_round_budget);
    };
    print_table_row({"  (paper)", paper_cell(paper_row.random),
                     paper_cell(paper_row.flips), paper_cell(paper_row.oort),
                     paper_cell(paper_row.gradcls), paper_cell(paper_row.tifl),
                     paper_cell(paper_row.flips10), paper_cell(paper_row.oort10),
                     paper_cell(paper_row.tifl10), paper_cell(paper_row.flips20),
                     paper_cell(paper_row.oort20),
                     paper_cell(paper_row.tifl20)});
  }

  // ---- Peak accuracy table ----------------------------------------
  print_table_header(
      "Highest balanced accuracy within budget, % (measured | paper)",
      columns);
  for (std::size_t s = 0; s < paper::kSettings.size(); ++s) {
    const auto& setting = paper::kSettings[s];
    const auto& cell = all_results[s];
    const auto& paper_row = spec.table.accuracy[s];
    std::ostringstream label;
    label << "a=" << setting.alpha << "/" << pct(setting.party_fraction).substr(0, 2)
          << "%";

    const auto measured = [&](const SelectorResult& r) {
      return pct(r.peak_accuracy);
    };
    print_table_row({label.str(), measured(cell.random), measured(cell.flips),
                     measured(cell.oort), measured(cell.gradcls),
                     measured(cell.tifl), measured(cell.flips10),
                     measured(cell.oort10), measured(cell.tifl10),
                     measured(cell.flips20), measured(cell.oort20),
                     measured(cell.tifl20)});
    print_table_row({"  (paper)", paper_acc(paper_row.random),
                     paper_acc(paper_row.flips), paper_acc(paper_row.oort),
                     paper_acc(paper_row.gradcls), paper_acc(paper_row.tifl),
                     paper_acc(paper_row.flips10), paper_acc(paper_row.oort10),
                     paper_acc(paper_row.tifl10), paper_acc(paper_row.flips20),
                     paper_acc(paper_row.oort20),
                     paper_acc(paper_row.tifl20)});
  }

  // ---- Convergence-figure series (Figs. 5-12 analogues) -----------
  if (options.csv) {
    for (std::size_t s = 0; s < paper::kSettings.size(); ++s) {
      const auto& setting = paper::kSettings[s];
      std::ostringstream tag;
      tag << spec.table.dataset << "/" << spec.table.algorithm << "/a"
          << setting.alpha << "/p" << setting.party_fraction;
      const auto& cell = all_results[s];
      for (const auto* r :
           {&cell.random, &cell.flips, &cell.oort, &cell.gradcls, &cell.tifl}) {
        print_curve_csv(tag.str(), *r);
      }
      for (const auto* r : {&cell.flips10, &cell.oort10, &cell.tifl10}) {
        print_curve_csv(tag.str() + "/strag10", *r);
      }
      for (const auto* r : {&cell.flips20, &cell.oort20, &cell.tifl20}) {
        print_curve_csv(tag.str() + "/strag20", *r);
      }
    }
  }

  std::cout << "\nShape checks (reduced scale — see EXPERIMENTS.md for the "
               "full analysis, including the known TiFL deviation):\n";
  std::size_t flips_beats_random = 0, flips_beats_oort = 0,
              flips_beats_gradcls = 0, flips_beats_tifl = 0,
              flips_fastest = 0;
  for (const auto& cell : all_results) {
    if (cell.flips.peak_accuracy >= cell.random.peak_accuracy) {
      ++flips_beats_random;
    }
    if (cell.flips.peak_accuracy >= cell.oort.peak_accuracy) {
      ++flips_beats_oort;
    }
    if (cell.flips.peak_accuracy >= cell.gradcls.peak_accuracy) {
      ++flips_beats_gradcls;
    }
    if (cell.flips.peak_accuracy >= cell.tifl.peak_accuracy) {
      ++flips_beats_tifl;
    }
    const double flips_rounds = cell.flips.rounds_to_target.value_or(1e9);
    const double best_other_rounds =
        std::min({cell.random.rounds_to_target.value_or(1e9),
                  cell.oort.rounds_to_target.value_or(1e9),
                  cell.gradcls.rounds_to_target.value_or(1e9),
                  cell.tifl.rounds_to_target.value_or(1e9)});
    if (flips_rounds <= best_other_rounds) ++flips_fastest;
  }
  const std::size_t n = all_results.size();
  std::cout << "  FLIPS peak accuracy >= Random   in " << flips_beats_random
            << "/" << n << " settings (paper: 4/4)\n"
            << "  FLIPS peak accuracy >= Oort     in " << flips_beats_oort
            << "/" << n << " settings (paper: 4/4)\n"
            << "  FLIPS peak accuracy >= GradClus in " << flips_beats_gradcls
            << "/" << n << " settings (paper: 4/4)\n"
            << "  FLIPS peak accuracy >= TiFL     in " << flips_beats_tifl
            << "/" << n << " settings (paper: 4/4; reduced scale inflates "
               "TiFL — see EXPERIMENTS.md)\n"
            << "  FLIPS reaches target first      in " << flips_fastest << "/"
            << n << " settings (paper: 4/4)\n";
  return 0;
}

}  // namespace flips::bench
