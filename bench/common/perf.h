// The one perf-line emitter behind every `perf,...` CSV line the CI
// perf job scrapes into BENCH_*.csv artifacts.
//
// Each numeric field is published as a `flips_perf{line=...,field=...}`
// gauge in the global obs registry BEFORE the line is printed, and the
// printed text is formatted from the values read back out of those
// gauges — the registry is the single source of numeric truth, the
// kMetrics / text_exposition view can never disagree with the scraped
// CSV, and the legacy printf schemas stay byte-identical (gauges store
// doubles losslessly, so the round-trip is exact).
//
// Usage (replaces an ad-hoc snprintf):
//
//   PerfLine("serving")
//       .uint("tenants", tenants)
//       .num("p50_ms", p50, 3)
//       .text("verify", "yes")
//       .print();                 // -> "perf,serving,8,1.234,yes\n"
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace flips::bench {

class PerfLine {
 public:
  /// `tag` is the line's second CSV column ("serving", "async", a
  /// selector name, ...). Fields print in append order.
  explicit PerfLine(std::string_view tag);

  /// Fixed-point field printed as %.<decimals>f.
  PerfLine& num(std::string_view field, double value, int decimals);
  /// Integer field printed as %llu.
  PerfLine& uint(std::string_view field, std::uint64_t value);
  /// Non-numeric field (verdicts, codec names) printed verbatim; not
  /// published to the registry.
  PerfLine& text(std::string_view field, std::string_view value);

  /// Prints "perf,<tag>[,<field value>...]\n" to stdout, reading every
  /// numeric field back from its registry gauge.
  void print() const;

 private:
  struct Field {
    obs::Gauge* gauge = nullptr;  ///< null = verbatim text field
    std::string literal;
    int decimals = 0;
    bool integral = false;
  };

  obs::Gauge* field_gauge(std::string_view field) const;

  std::string tag_;
  std::vector<Field> fields_;
};

}  // namespace flips::bench
