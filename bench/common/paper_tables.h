// Paper-reported numbers for Tables 1-24 (FLIPS, Middleware 2023),
// transcribed for the paper-vs-measured reports every bench prints.
//
// Layout per row: {alpha, party%} setting ×
//   rounds/accuracy for [0% stragglers: Random, FLIPS, OORT, GradCls,
//   TiFL], [10%: FLIPS, OORT, TiFL], [20%: FLIPS, OORT, TiFL].
// Rounds value -1 encodes the paper's ">400" (target never reached).
// Accuracy NaN encodes a cell missing from the published table.
#pragma once

#include <array>
#include <cmath>

namespace flips::bench::paper {

inline constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Row settings shared by every table, in paper order.
struct Setting {
  double alpha;
  double party_fraction;
};
inline constexpr std::array<Setting, 4> kSettings{{
    {0.3, 0.20},
    {0.3, 0.15},
    {0.6, 0.20},
    {0.6, 0.15},
}};

struct RoundsRow {
  // 0 % stragglers
  int random, flips, oort, gradcls, tifl;
  // 10 % stragglers
  int flips10, oort10, tifl10;
  // 20 % stragglers
  int flips20, oort20, tifl20;
};

struct AccuracyRow {
  double random, flips, oort, gradcls, tifl;
  double flips10, oort10, tifl10;
  double flips20, oort20, tifl20;
};

struct TablePair {
  const char* dataset;
  const char* algorithm;
  double target_accuracy;  ///< fraction (0.6 or 0.8)
  int paper_round_budget;  ///< 400 (ECG/HAM) or 200 (FEMNIST/Fashion)
  std::array<RoundsRow, 4> rounds;
  std::array<AccuracyRow, 4> accuracy;
};

// ---------------- Reduced-scale calibration ---------------------------
//
// The paper's 400/200-round budgets do not transfer 1:1 to the reduced
// simulation, so each dataset carries a calibrated (target accuracy,
// prototype separation, local lr) triple — the single source the table
// benches AND the flips_run scenario presets read. The knobs are tuned
// (protocol in EXPERIMENTS.md § "Reduced-target calibration") so that
// rounds-to-target lands in the tens of rounds at the default reduced
// scale — far enough from round 1 that selector orderings are
// discriminative, far enough from the budget that FLIPS reaches it.

struct ReducedCalibration {
  double target_accuracy;   ///< reduced-scale target (fraction)
  /// Class-prototype separation override (0 = catalog default). Lower
  /// values harden the learning problem without touching who holds
  /// which labels.
  double class_separation;
  double local_lr;
  /// Server lr for the ADAPTIVE optimizers (FedYogi etc.; FedAvg is
  /// pinned to 1.0). The adaptive server, not the local solver, is
  /// what drives single-digit convergence — it needs its own knob.
  double server_lr;
};

// ECG and FEMNIST swept 2026-07, HAM and Fashion 2026-08 (protocol +
// grids in EXPERIMENTS.md § "Reduced-target calibration"): FLIPS
// rounds-to-target at the default scale lands at 20/14/20 (ECG
// fedavg/fedyogi/fedprox), 56/16/56 (FEMNIST), 26/14/26 (HAM, with
// random never reaching the target inside the budget) and 18/10/18
// (Fashion) — tens of rounds on every arm, vs 4-10 before.
inline constexpr ReducedCalibration kEcgReduced{0.72, 1.0, 0.03, 0.01};
inline constexpr ReducedCalibration kHamReduced{0.72, 0.8, 0.02, 0.01};
inline constexpr ReducedCalibration kFemnistReduced{0.78, 2.4, 0.03, 0.01};
inline constexpr ReducedCalibration kFashionReduced{0.78, 0.8, 0.02,
                                                    0.01};

// --------------------------- FedYogi ---------------------------------

inline constexpr TablePair kEcgFedYogi{
    "MIT-BIH ECG", "FedYogi", 0.60, 400,
    {{{-1, 157, 373, -1, -1, 193, -1, -1, 192, -1, -1},
      {-1, 172, 187, -1, -1, 263, -1, -1, 214, -1, -1},
      {-1, 242, 280, -1, -1, -1, -1, -1, 326, -1, -1},
      {-1, 214, -1, -1, -1, 292, -1, -1, -1, -1, -1}}},
    {{{44.86, 78.53, 61.75, 48.62, 48.21, 74.66, 37.27, 50.51, 74.20, 43.64,
       44.37},
      {45.48, 76.92, 71.35, 45.40, 47.67, 71.09, 49.19, 48.41, 67.14, 42.34,
       49.09},
      {48.55, 63.79, 63.74, 48.10, 41.97, 57.21, 42.55, 52.18, 60.50, 47.15,
       48.20},
      {48.83, 61.35, 57.47, 53.54, 53.16, 60.55, 49.42, 54.13, 58.18, 56.54,
       54.19}}}};

inline constexpr TablePair kHamFedYogi{
    "HAM10000", "FedYogi", 0.60, 400,
    {{{-1, 167, 262, -1, -1, 211, -1, -1, 202, -1, -1},
      {-1, 190, -1, -1, -1, 263, -1, -1, 190, -1, -1},
      {-1, 231, 306, -1, -1, 313, -1, -1, 388, -1, -1},
      {-1, 263, -1, -1, -1, 265, -1, -1, 347, -1, -1}}},
    {{{48.26, 66.76, 61.12, 46.48, 42.39, 63.39, 46.28, 49.11, 64.13, 38.25,
       41.59},
      {41.35, 66.41, 59.86, 45.25, 43.70, 62.76, 43.14, 47.09, 64.42, 49.86,
       51.81},
      {46.50, 62.84, 62.36, 54.74, 45.17, 60.58, 41.94, 44.72, 60.71, 43.08,
       44.81},
      {46.55, 62.39, 59.79, 54.66, 55.94, 61.78, 48.13, 50.46, 60.86, 43.46,
       46.85}}}};

inline constexpr TablePair kFemnistFedYogi{
    "FEMNIST", "FedYogi", 0.80, 200,
    {{{146, 62, 81, 168, 124, 69, 102, 113, 78, 85, 194},
      {181, 62, 83, 168, 127, 76, 105, 141, 79, 103, 106},
      {107, 68, 66, 89, 104, 89, 69, 103, 89, 84, 94},
      {115, 75, 55, 115, 106, 86, 83, 108, 78, 88, 106}}},
    {{{80.97, 86.60, 85.27, 80.97, 82.17, 86.75, 83.21, 81.95, 85.85, 84.69,
       80.20},
      {82.60, 86.86, 84.61, 82.51, 81.44, 86.68, 85.24, 80.36, 86.78, 84.74,
       80.89},
      {83.94, 85.37, 85.36, 84.21, 84.23, 85.13, 85.44, 84.39, 85.69, 85.00,
       84.35},
      {82.44, 84.51, 85.51, 83.08, 84.40, 85.00, 86.19, 84.59, 86.04, 84.87,
       84.97}}}};

inline constexpr TablePair kFashionFedYogi{
    "Fashion-MNIST", "FedYogi", 0.80, 200,
    {{{62, 48, 72, 62, 92, 44, 83, 101, 48, 72, 91},
      {60, 51, 74, 58, 107, 53, 69, 91, 42, 82, 104},
      {52, 42, 62, 51, 73, 37, 65, 71, 48, 63, 81},
      {54, 36, 75, 60, 79, 36, 70, 79, 40, 81, 82}}},
    {{{83.92, 85.14, 82.45, 83.88, 81.93, 85.29, 82.24, 81.82, 84.51, 83.16,
       81.99},
      {83.62, 84.75, 82.44, 83.91, 81.85, 84.98, 82.35, 82.53, 85.02, 82.48,
       82.19},
      {84.49, 85.56, 83.12, 84.65, 83.29, 85.70, 82.89, 82.84, 85.03, 83.18,
       82.56},
      {84.40, 86.03, 82.66, 84.03, 82.63, 85.88, 82.74, 82.90, 85.33, 82.52,
       82.70}}}};

// --------------------------- FedProx ---------------------------------

inline constexpr TablePair kEcgFedProx{
    "MIT-BIH ECG", "FedProx", 0.60, 400,
    {{{-1, 129, 198, -1, -1, 143, -1, -1, 255, -1, -1},
      {-1, 146, 197, -1, -1, 204, -1, -1, 215, -1, -1},
      {-1, 182, 334, -1, -1, 383, -1, -1, 389, -1, -1},
      {-1, 203, -1, -1, -1, 398, -1, -1, -1, -1, -1}}},
    {{{46.39, 76.25, 72.31, 48.99, 41.81, 75.26, 46.94, 50.09, 68.14, 46.40,
       44.64},
      {50.63, 74.82, 71.29, 46.58, 50.40, 72.48, 45.03, 51.09, 70.24, 46.22,
       46.75},
      {45.18, 65.58, 61.40, 44.86, 53.83, 60.16, 46.04, 55.04, 60.10, 49.87,
       54.86},
      {47.84, 69.02, 56.68, 50.20, 52.06, 60.41, 50.12, 51.15, 58.00, 56.83,
       50.15}}}};

inline constexpr TablePair kHamFedProx{
    "HAM10000", "FedProx", 0.60, 400,
    {{{-1, 151, 323, -1, -1, 206, -1, -1, 172, -1, -1},
      {-1, 201, 298, -1, -1, 198, -1, -1, 198, -1, -1},
      {-1, 276, -1, -1, -1, -1, -1, -1, 364, -1, -1},
      {-1, 308, 345, -1, -1, 383, -1, -1, 363, -1, -1}}},
    // Table 12 rows 1 and 4 are missing their TiFL 0 %-straggler cell in
    // the published paper; encoded as NaN.
    {{{47.08, 64.53, 60.32, 46.84, kNaN, 65.76, 42.13, 46.07, 67.15, 48.24,
       51.71},
      {41.59, 66.71, 62.25, 46.16, 46.48, 65.55, 44.07, 40.26, 66.74, 43.23,
       39.01},
      {43.66, 63.55, 58.67, 53.65, 54.40, 58.89, 50.15, 54.36, 60.87, 51.07,
       46.38},
      {45.58, 66.71, 61.20, 53.57, kNaN, 60.87, 50.62, 54.16, 60.31, 48.44,
       53.89}}}};

inline constexpr TablePair kFemnistFedProx{
    "FEMNIST", "FedProx", 0.80, 200,
    {{{128, 47, 71, 157, 103, 65, 130, 98, 78, 128, 146},
      {104, 54, 70, 149, 111, 72, 118, 110, 67, 156, 116},
      {84, 62, 53, 84, 110, 90, 82, 108, 80, 77, 98},
      {86, 56, 62, 88, 85, 78, 91, 88, 86, 85, 94}}},
    {{{82.80, 90.43, 86.59, 81.78, 82.96, 87.33, 83.21, 82.53, 86.56, 83.81,
       80.47},
      {83.24, 89.72, 86.51, 83.34, 83.33, 87.02, 83.81, 82.73, 86.82, 82.43,
       81.97},
      {85.60, 88.99, 87.45, 85.05, 85.29, 85.23, 86.11, 84.29, 85.72, 85.91,
       84.87},
      {85.58, 89.27, 86.49, 83.91, 86.21, 86.20, 85.28, 85.06, 85.13, 85.35,
       84.90}}}};

inline constexpr TablePair kFashionFedProx{
    "Fashion-MNIST", "FedProx", 0.80, 200,
    {{{74, 47, 83, 66, 82, 48, 74, 101, 45, 70, 91},
      {62, 42, 75, 69, 78, 48, 82, 91, 48, 71, 104},
      {52, 46, 64, 49, 70, 36, 70, 71, 47, 71, 82},
      {52, 42, 69, 60, 69, 42, 82, 79, 41, 75, 81}}},
    {{{83.91, 85.04, 82.52, 83.46, 82.36, 85.10, 82.52, 81.82, 85.31, 82.89,
       81.99},
      {83.66, 85.46, 82.61, 83.83, 82.01, 84.98, 81.97, 82.53, 84.93, 82.16,
       82.19},
      {84.48, 85.52, 82.86, 84.67, 83.11, 86.14, 82.60, 82.84, 85.02, 82.95,
       82.56},
      {84.56, 85.71, 82.83, 84.00, 83.03, 85.29, 82.75, 82.90, 85.37, 82.56,
       82.70}}}};

// --------------------------- FedAvg ----------------------------------

inline constexpr TablePair kEcgFedAvg{
    "MIT-BIH ECG", "FedAvg", 0.60, 400,
    {{{-1, 136, 344, -1, -1, 210, -1, -1, 200, -1, -1},
      {-1, 162, 192, -1, -1, 263, -1, -1, 214, -1, -1},
      {-1, 378, 393, -1, -1, -1, -1, -1, 397, -1, -1},
      {-1, 393, -1, -1, -1, 395, -1, -1, -1, -1, -1}}},
    {{{47.92, 73.33, 63.02, 45.26, 45.76, 73.16, 36.53, 48.53, 72.71, 42.77,
       46.48},
      {48.06, 72.81, 70.12, 44.09, 48.16, 69.67, 48.21, 49.32, 65.80, 41.49,
       53.75},
      {51.97, 63.76, 60.67, 48.10, 46.86, 56.07, 41.70, 44.86, 60.29, 46.20,
       52.05},
      {54.69, 60.17, 58.65, 53.64, 52.60, 60.34, 48.43, 56.85, 57.02, 55.41,
       53.31}}}};

inline constexpr TablePair kHamFedAvg{
    "HAM10000", "FedAvg", 0.60, 400,
    {{{-1, 329, 271, -1, -1, 250, -1, -1, 234, -1, -1},
      {-1, 300, 323, -1, -1, 201, -1, -1, 217, -1, -1},
      {-1, 300, 385, -1, -1, 376, -1, -1, 356, -1, -1},
      {-1, 385, -1, -1, -1, 395, -1, -1, 398, -1, -1}}},
    {{{46.76, 64.79, 62.05, 47.56, 44.58, 62.96, 42.99, 45.73, 63.51, 49.50,
       51.46},
      {41.83, 64.82, 61.70, 46.87, 45.62, 63.65, 54.70, 56.88, 65.71, 48.96,
       49.37},
      {46.50, 62.42, 60.56, 54.48, 50.00, 60.14, 52.50, 55.22, 60.58, 55.48,
       57.93},
      {46.55, 60.61, 55.55, 54.40, 48.18, 60.00, 50.70, 52.50, 60.21, 47.94,
       50.28}}}};

inline constexpr TablePair kFemnistFedAvg{
    "FEMNIST", "FedAvg", 0.80, 200,
    // Table 21's (0.3, 15 %) TiFL 10 % cell is ">400" in the paper even
    // though the budget is 200 — transcribed as -1.
    {{{130, 46, 71, 168, 118, 65, 130, 123, 78, 128, 153},
      {112, 62, 70, 168, 112, 72, 118, -1, 67, 156, 142},
      {99, 69, 53, 89, 96, 90, 82, 92, 80, 77, 102},
      {99, 58, 62, 115, 90, 78, 91, 109, 86, 85, 88}}},
    {{{82.37, 90.64, 86.59, 80.97, 81.78, 87.33, 83.21, 80.09, 86.46, 83.81,
       80.41},
      {82.48, 89.08, 86.51, 82.51, 81.19, 87.02, 83.81, 79.77, 86.82, 82.43,
       80.61},
      {84.37, 88.20, 87.45, 84.21, 85.33, 85.23, 86.11, 85.16, 85.72, 85.91,
       84.32},
      {84.89, 89.04, 86.49, 83.08, 85.63, 86.20, 85.28, 85.17, 85.13, 85.35,
       85.21}}}};

inline constexpr TablePair kFashionFedAvg{
    "Fashion-MNIST", "FedAvg", 0.80, 200,
    {{{56, 48, 67, 53, 91, 48, 67, 100, 49, 83, 92},
      {70, 43, 65, 62, 92, 52, 80, 110, 54, 78, 105},
      {53, 37, 70, 55, 74, 45, 75, 75, 40, 73, 62},
      {48, 37, 65, 50, 71, 37, 71, 71, 40, 83, 78}}},
    {{{84.13, 85.00, 82.59, 83.99, 82.28, 84.85, 82.73, 82.21, 85.05, 82.39,
       81.86},
      {83.67, 85.55, 83.02, 83.60, 81.76, 84.69, 82.15, 81.61, 84.82, 82.72,
       82.06},
      {84.95, 85.80, 82.82, 84.77, 82.99, 85.53, 82.46, 83.12, 85.23, 82.81,
       83.35},
      {84.48, 85.63, 82.87, 84.04, 82.08, 85.67, 82.72, 83.04, 85.42, 82.30,
       82.77}}}};

}  // namespace flips::bench::paper
