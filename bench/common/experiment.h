// Shared experiment engine for the table/figure benches: builds a
// federation from a dataset spec, runs one FL job per (selector,
// straggler-rate) cell, averages over repeats, and prints
// paper-vs-measured tables.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "data/federated.h"
#include "fl/session.h"
#include "net/codec.h"
#include "selection/factory.h"

namespace flips::bench {

/// Scale knobs. Defaults are the reduced scale that keeps
/// `for b in build/bench/*; do $b; done` tractable; --paper-scale raises
/// them to the paper's setting (200 parties, 400/200 rounds, 6 runs).
struct Scale {
  std::size_t num_parties = 100;
  std::size_t samples_per_party = 80;
  std::size_t rounds = 100;
  std::size_t runs = 3;
  std::size_t eval_every = 2;
};

struct ExperimentConfig {
  flips::data::SyntheticSpec spec;
  double alpha = 0.3;
  double participation = 0.2;   ///< fraction of parties per round
  flips::fl::ServerOpt server_opt = flips::fl::ServerOpt::kFedYogi;
  double server_lr = 0.05;
  double prox_mu = 0.0;         ///< FedProx
  double straggler_rate = 0.0;
  double target_accuracy = 0.6; ///< paper's per-dataset target
  Scale scale;
  std::uint64_t seed = 42;
  /// Cluster count for FLIPS. The paper's elbow finds 10 on its real
  /// datasets; the reduced-scale synthetic federations have finer mode
  /// structure and calibrate best at 20 (the fig2 bench demonstrates the
  /// elbow machinery itself).
  std::size_t flips_clusters = 20;
  /// Local solver knobs (τ epochs; higher values amplify client drift,
  /// the non-IID pathology the paper studies).
  std::size_t local_epochs = 2;
  double local_lr = 0.05;
  /// Hidden width of the per-party MLP (0 = softmax regression). The
  /// multilayer model matters: rare-class boundaries erode between
  /// exposures (the paper's DNN retention effect), which a convex model
  /// hides.
  std::size_t mlp_hidden = 24;
  /// Aggregation-path privacy (off by default; the privacy-overhead bench
  /// sweeps it).
  flips::fl::PrivacyConfig privacy;
  /// Stateful client algorithm (FedDyn / SCAFFOLD ablations).
  flips::fl::ClientAlgo client_algo = flips::fl::ClientAlgo::kSgd;
  /// Local-training worker threads per FL job (0 = hardware
  /// concurrency). Results are bit-identical for every value.
  std::size_t threads = 0;
  /// Wire codec for updates and the broadcast delta (kDense64
  /// reproduces the historical byte accounting; kQuant8/kTopK charge
  /// encoded sizes and run with error feedback — see fl/job.h).
  flips::net::CodecConfig codec;
  /// Stepping discipline (fl/session.h): kSync = round barrier; kAsync
  /// = FedBuff buffered stepping, where `scale.rounds` counts server
  /// steps and `async` carries the buffer/staleness knobs.
  flips::fl::FederationMode mode = flips::fl::FederationMode::kSync;
  flips::fl::AsyncConfig async;
  /// Fault plan (net/faults.h). When enabled() the federation builder
  /// samples the senior-care fleet's availability / fault-rate / churn
  /// columns onto party profiles (otherwise those stay at their inert
  /// defaults and every path is byte-identical to a fault-free build).
  flips::net::FaultConfig faults;
  /// Optional telemetry hook: called once per run with the 0-based run
  /// index; every returned observer is attached to that run's session
  /// before stepping (flips_run --metrics-out rides this).
  std::function<std::vector<std::shared_ptr<flips::fl::RoundObserver>>(
      std::size_t run)>
      observer_factory;
};

struct SelectorResult {
  std::string selector;
  double peak_accuracy = 0.0;              ///< mean over runs, in [0,1]
  /// Mean rounds to target over runs that reached it; nullopt if none did.
  std::optional<double> rounds_to_target;
  std::size_t runs_reaching_target = 0;
  std::size_t runs = 0;
  std::vector<double> accuracy_curve;      ///< mean balanced acc per round
  double total_gib = 0.0;                  ///< mean communication volume
  double up_gib = 0.0;                     ///< mean update (uplink) volume
  double down_gib = 0.0;                   ///< mean broadcast volume
  double mean_epsilon = 0.0;               ///< DP budget (0 when DP off)
  /// Selection-fairness summary (mean over runs).
  double mean_jain_index = 0.0;
  /// Mean coverage round over the runs that reached full coverage;
  /// nullopt when no run covered every party (a round-0 mean would
  /// conflate "covered immediately" with "never covered").
  std::optional<double> mean_coverage_round;
  /// Host wall-clock seconds per simulated round (mean over runs) —
  /// the simulator-throughput number the CI perf rail tracks.
  double wall_s_per_round = 0.0;
};

/// Runs `runs` FL jobs (different seeds) for one selector and averages.
/// Also prints two machine-readable lines per call with stable schemas
///   perf,<selector>,<wall_s_per_round>,<rounds_to_target|-1>
///   perf,aggregate,<codec>,<bytes_per_round>,<wall_s_per_round>
/// so CI perf artifacts can scrape both the wall-time and the wire-byte
/// trajectory from any bench's stdout.
[[nodiscard]] SelectorResult run_selector(const ExperimentConfig& config,
                                          flips::select::SelectorKind kind);

/// Builds one steppable FL session for `config` at `seed`: federation
/// (cached when small), model, selector — everything run_selector
/// assembles per run. The session shares ownership of the cached
/// federation, so it stays valid however long the caller steps it.
/// `shared_pool` lets several sessions (fl::SessionPool) contend for
/// one worker pool; nullptr = the session owns a pool of
/// config.threads workers.
[[nodiscard]] std::unique_ptr<flips::fl::FederationSession> make_session(
    const ExperimentConfig& config, flips::select::SelectorKind kind,
    std::uint64_t seed, flips::common::ThreadPool* shared_pool = nullptr);

/// Per-label accuracy curves (for the Fig. 13 underrepresented-label
/// analysis). Returns [label][round].
[[nodiscard]] std::vector<std::vector<double>> run_per_label_curves(
    const ExperimentConfig& config, flips::select::SelectorKind kind);

// ---------------------------------------------------------------------
// CLI + reporting helpers shared by all bench binaries.

struct BenchOptions {
  Scale scale;
  bool paper_scale = false;
  bool csv = false;        ///< also dump accuracy curves as CSV
  std::uint64_t seed = 42;
  std::size_t threads = 0; ///< local-training workers (0 = all cores)
  /// Update/broadcast wire codec (--codec dense64|quant8|topk).
  flips::net::CodecConfig codec;

  /// Copies the knobs every bench used to hand-plumb one by one
  /// (scale, seed, threads, codec) onto an experiment config — the one
  /// place the BenchOptions → ExperimentConfig overlap is resolved.
  void apply(ExperimentConfig& config) const {
    config.scale = scale;
    config.seed = seed;
    config.threads = threads;
    config.codec = codec;
  }
};

/// Parses --paper-scale, --parties N, --rounds N, --runs N, --csv,
/// --seed N, --threads N, --codec NAME. Exits with a usage message on
/// unknown flags.
[[nodiscard]] BenchOptions parse_bench_options(int argc, char** argv,
                                               const Scale& default_scale);

/// Rounds-to-target cell: "N" or ">R" when the target was never reached.
[[nodiscard]] std::string format_rounds(
    const std::optional<double>& rounds, std::size_t round_budget);

/// Paper cell: rounds value or -1 for ">threshold".
[[nodiscard]] std::string format_paper_rounds(int rounds,
                                              int paper_budget);

void print_table_header(const std::string& title,
                        const std::vector<std::string>& columns);
void print_table_row(const std::vector<std::string>& cells);

/// Emits one selector's accuracy curve as CSV rows: name,round,accuracy.
void print_curve_csv(const std::string& experiment,
                     const SelectorResult& result);

}  // namespace flips::bench
