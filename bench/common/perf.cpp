#include "common/perf.h"

#include <cinttypes>
#include <cstdio>
#include <iostream>

namespace flips::bench {

PerfLine::PerfLine(std::string_view tag) : tag_(tag) {}

obs::Gauge* PerfLine::field_gauge(std::string_view field) const {
  return &obs::Registry::global().gauge(
      "flips_perf",
      {{"line", tag_}, {"field", std::string(field)}});
}

PerfLine& PerfLine::num(std::string_view field, double value,
                        int decimals) {
  Field f;
  f.gauge = field_gauge(field);
  f.decimals = decimals;
  f.gauge->set(value);
  fields_.push_back(std::move(f));
  return *this;
}

PerfLine& PerfLine::uint(std::string_view field, std::uint64_t value) {
  Field f;
  f.gauge = field_gauge(field);
  f.integral = true;
  f.gauge->set(static_cast<double>(value));
  fields_.push_back(std::move(f));
  return *this;
}

PerfLine& PerfLine::text(std::string_view field, std::string_view value) {
  (void)field;
  Field f;
  f.literal = std::string(value);
  fields_.push_back(std::move(f));
  return *this;
}

void PerfLine::print() const {
  std::string line = "perf," + tag_;
  char buf[64];
  for (const Field& f : fields_) {
    line += ',';
    if (f.gauge == nullptr) {
      line += f.literal;
    } else if (f.integral) {
      std::snprintf(buf, sizeof buf, "%" PRIu64,
                    static_cast<std::uint64_t>(f.gauge->value()));
      line += buf;
    } else {
      std::snprintf(buf, sizeof buf, "%.*f", f.decimals,
                    f.gauge->value());
      line += buf;
    }
  }
  line += '\n';
  std::cout << line;
}

}  // namespace flips::bench
