// One declarative description of an FL scenario — the single source the
// `flips_run` driver launches from. ScenarioSpec unifies the knobs that
// used to be triplicated across fl::FlJobConfig, bench::ExperimentConfig
// and bench::BenchOptions: every field has a stable string key, so any
// scenario is expressible on the CLI as a preset plus
// `--set key=value` overrides:
//
//   flips_run --scenario ecg-fedavg --set rounds=60 --set codec=quant8
//             --set selector=oort --set sessions=4
//
// Presets cover the twelve paper table benches (dataset × FL
// algorithm, calibrated reduced-scale targets from
// bench/common/paper_tables.h); `scenario_usage()` lists every settable
// key for --help.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/experiment.h"
#include "selection/factory.h"

namespace flips {

/// Ordered key=value pairs — the wire-friendly image of a ScenarioSpec
/// (serve/protocol.h ships it as "key=value\n" lines).
using KeyValueList = std::vector<std::pair<std::string, std::string>>;

struct ScenarioSpec {
  std::string name = "custom";

  // Dataset / federation.
  std::string dataset = "ecg";  ///< ecg | ham | femnist | fashion
  double alpha = 0.3;           ///< Dirichlet non-IID skew
  /// 0 = the dataset catalog's default prototype separation.
  double class_separation = 0.0;
  std::size_t parties = 100;
  std::size_t samples_per_party = 80;

  // Round schedule.
  std::size_t rounds = 100;
  std::size_t runs = 1;
  std::size_t eval_every = 2;
  double participation = 0.2;  ///< fraction of parties per round

  // Federation mode (fl::FederationMode): sync = round barrier,
  // async = FedBuff-style buffered stepping (`rounds` then counts
  // server steps).
  std::string mode = "sync";      ///< sync | async
  std::size_t buffer_k = 0;       ///< async: arrivals per step (0 = Nr/2)
  std::size_t max_staleness = 4;  ///< async: bounded-staleness cutoff

  // Learning.
  std::string server_opt = "fedavg";  ///< fedavg|fedadagrad|fedadam|fedyogi
  double server_lr = 0.05;            ///< ignored for fedavg (lr 1)
  std::string client_algo = "sgd";    ///< sgd | scaffold | feddyn
  double prox_mu = 0.0;
  std::size_t local_epochs = 2;
  double local_lr = 0.05;
  std::size_t mlp_hidden = 24;
  double target_accuracy = 0.72;

  // Selection.
  std::string selector = "flips";  ///< see select::selector_names()
  std::size_t flips_clusters = 20;
  double straggler_rate = 0.0;

  // Fault plane (net/faults.h). churn scales each device type's mean
  // downtime (0 = always-on); fault_rate is an extra per-dispatch
  // crash probability stacked on the device's own; min_quorum is the
  // sync-mode fraction of the base cohort that must respond for the
  // server step to apply; max_retries bounds backfill waves (sync) and
  // per-slot re-dispatches (async).
  double churn = 0.0;
  double fault_rate = 0.0;
  double min_quorum = 0.0;
  std::size_t max_retries = 2;

  // Privacy.
  std::string privacy = "none";  ///< none | dp | masking
  double dp_clip = 1.0;
  double dp_noise = 0.0;

  // Systems.
  std::size_t threads = 0;         ///< 0 = all cores
  std::string codec = "dense64";   ///< dense64 | quant8 | topk
  std::uint64_t seed = 42;
  /// Concurrent federations interleaved through fl::SessionPool
  /// (seeds seed, seed+1000, ...); 1 = a plain solo run.
  std::size_t sessions = 1;

  bool operator==(const ScenarioSpec&) const = default;

  /// Every settable key with this spec's current value, in registry
  /// order — the serialization a scenario crosses the wire as. Values
  /// use shortest-round-trip formatting, so
  /// from_key_values(spec.to_key_values()) == spec always holds
  /// (test_bench_options pins it).
  [[nodiscard]] KeyValueList to_key_values() const;

  /// Rebuilds a spec by applying `kv` over the defaults with the same
  /// fail-fast validation as apply_override: unknown keys and
  /// unparsable values throw std::invalid_argument. A partial list is
  /// a valid override set — unmentioned fields keep their defaults.
  [[nodiscard]] static ScenarioSpec from_key_values(const KeyValueList& kv);
};

/// Applies one `key=value` override. Throws std::invalid_argument on
/// an unknown key or an unparsable value.
void apply_override(ScenarioSpec& spec, std::string_view assignment);

/// All settable keys with their current values (for --help output).
[[nodiscard]] std::string scenario_usage(const ScenarioSpec& spec);

/// Named presets: the twelve table scenarios ("<dataset>-<algo>" for
/// dataset in ecg|ham|femnist|fashion, algo in fedavg|fedyogi|fedprox)
/// with per-dataset calibrated targets. Throws std::invalid_argument
/// on an unknown name; `scenario_preset_names()` lists them.
[[nodiscard]] ScenarioSpec scenario_preset(std::string_view name);
[[nodiscard]] std::vector<std::string> scenario_preset_names();

/// Lowers the declarative spec onto the bench engine's config (the
/// spec's selector/sessions fields are the driver's concern).
[[nodiscard]] bench::ExperimentConfig to_experiment_config(
    const ScenarioSpec& spec);

/// Parses spec.selector. Throws std::invalid_argument on unknown names.
[[nodiscard]] select::SelectorKind selector_kind(const ScenarioSpec& spec);

}  // namespace flips
