// Driver shared by the twelve table benches (Tables 1-24): runs the
// paper's full grid for one (dataset, FL algorithm) pair —
//   4 settings (α ∈ {0.3, 0.6} × participation ∈ {20 %, 15 %})
//   × 5 selectors at 0 % stragglers
//   × {FLIPS, Oort, TiFL} at 10 % and 20 % stragglers
// and prints measured-vs-paper rows for both the rounds-to-target table
// and the peak-accuracy table. With --csv it also emits the per-round
// accuracy curves behind the corresponding convergence figures.
#pragma once

#include "common/experiment.h"
#include "common/paper_tables.h"
#include "data/synthetic.h"

namespace flips::bench {

struct TableBenchSpec {
  paper::TablePair table;
  flips::data::SyntheticSpec dataset;
  flips::fl::ServerOpt server_opt;
  double prox_mu = 0.0;
  /// Default reduced-scale round budget for this dataset pair (the
  /// paper's 400-round targets do not transfer 1:1 to the reduced
  /// simulation; EXPERIMENTS.md documents the mapping).
  Scale default_scale;
  /// Per-dataset reduced-scale target + problem-hardness knobs
  /// (class-prototype separation, local lr) — the shared calibration
  /// constants from paper_tables.h, also read by the flips_run
  /// scenario presets.
  paper::ReducedCalibration calibration;
};

/// Runs the full grid and prints the two tables. Returns an exit code.
int run_table_bench(int argc, char** argv, const TableBenchSpec& spec);

}  // namespace flips::bench
