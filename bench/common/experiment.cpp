#include "common/experiment.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <iomanip>
#include <iostream>
#include <memory>
#include <mutex>

#include "cluster/kmeans.h"
#include "common/perf.h"
#include "common/stats.h"
#include "ml/model.h"

namespace flips::bench {

namespace {

/// Platform heterogeneity profile used across all benches: 60 % nominal
/// devices, 30 % 2× slower, 10 % 4× slower (TiFL/Oort react to these).
double speed_factor_for(std::size_t party, flips::common::Rng& rng) {
  (void)party;
  const double u = rng.uniform();
  if (u < 0.6) return 1.0;
  if (u < 0.9) return 2.0;
  return 4.0;
}

struct Federation {
  std::vector<flips::fl::Party> parties;
  flips::data::Dataset global_test;
  std::vector<std::size_t> flips_clusters;
  std::size_t num_flips_clusters = 0;
  std::vector<double> latencies;
  std::vector<flips::data::LabelDistribution> label_distributions;
};

Federation build_federation(const ExperimentConfig& config,
                            std::uint64_t seed) {
  flips::data::FederatedDataConfig dc;
  dc.spec = config.spec;
  dc.num_parties = config.scale.num_parties;
  dc.samples_per_party = config.scale.samples_per_party;
  dc.alpha = config.alpha;
  dc.test_per_class = 100;  // keep per-label eval noise low
  dc.seed = seed;
  const auto fed = flips::data::build_federated_data(dc);

  Federation out;
  flips::common::Rng profile_rng(seed ^ 0xBEEF);
  // Under a fault plan the fleet comes from the senior-care device mix,
  // so the availability / fault-rate / churn columns reach the session
  // (they used to be sampled and then ignored). The fault-free path
  // keeps the historical speed-factor-only profiles byte-for-byte.
  const bool fault_fleet = config.faults.enabled();
  const flips::net::FleetBuilder fleet(flips::net::FleetMix::senior_care());
  out.parties.reserve(fed.party_data.size());
  for (std::size_t p = 0; p < fed.party_data.size(); ++p) {
    flips::fl::PartyProfile profile;
    if (fault_fleet) {
      profile = flips::fl::PartyProfile::from_device(fleet.sample(profile_rng));
    } else {
      profile.speed_factor = speed_factor_for(p, profile_rng);
    }
    out.parties.emplace_back(p, fed.party_data[p], profile);
    // TiFL's profiling pass: latency proportional to per-round work.
    out.latencies.push_back(profile.speed_factor *
                            static_cast<double>(fed.party_data[p].size()));
  }
  out.global_test = fed.global_test;

  // FLIPS clustering on label distributions in Hellinger space
  // (Euclidean over sqrt-proportions): a proper distribution distance
  // that keeps rare-label parties distinguishable. The middleware path
  // runs the same kernel inside the TEE; benches call it directly to
  // keep the hot loop lean.
  std::vector<flips::cluster::Point> points;
  points.reserve(fed.label_distributions.size());
  for (const auto& ld : fed.label_distributions) {
    auto p = flips::common::normalized(ld);
    for (auto& v : p) v = std::sqrt(v);
    points.push_back(std::move(p));
  }
  flips::cluster::KMeansConfig kc;
  kc.k = std::min(config.flips_clusters, points.size());
  kc.restarts = 3;
  flips::common::Rng cluster_rng(seed ^ 0xC1u);
  const auto result = flips::cluster::kmeans(points, kc, cluster_rng);
  out.flips_clusters = result.assignments;
  out.num_flips_clusters = kc.k;
  out.label_distributions = fed.label_distributions;
  return out;
}

// The federation depends only on (spec, scale, alpha, clusters, seed) —
// not on the selector or straggler rate — so the table benches rebuild
// the SAME federation for every selector cell of a setting. Building it
// (synthetic sampling + Hellinger k-means) costs more than many FL
// rounds; a small keyed cache removes that without changing results.
// Oversized federations (scalability sweeps) bypass the cache so memory
// stays bounded.

struct FederationKey {
  // The whole spec, compared field-for-field, so fields added to
  // SyntheticSpec later can never alias two different datasets onto
  // one cache entry.
  flips::data::SyntheticSpec spec;
  double alpha = 0.0;
  std::size_t num_parties = 0;
  std::size_t samples_per_party = 0;
  std::size_t flips_clusters = 0;
  std::uint64_t seed = 0;
  /// A fault plan switches the fleet to the senior-care device mix, so
  /// it must discriminate cache entries (aliasing a fault federation
  /// onto a fault-free one would silently change the profiles).
  bool fault_fleet = false;

  bool operator==(const FederationKey&) const = default;
};

FederationKey federation_key(const ExperimentConfig& config,
                             std::uint64_t seed) {
  FederationKey key;
  key.spec = config.spec;
  key.alpha = config.alpha;
  key.num_parties = config.scale.num_parties;
  key.samples_per_party = config.scale.samples_per_party;
  key.flips_clusters = config.flips_clusters;
  key.seed = seed;
  key.fault_fleet = config.faults.enabled();
  return key;
}

std::shared_ptr<const Federation> cached_federation(
    const ExperimentConfig& config, std::uint64_t seed) {
  // ~8 MB per cacheable entry, tops. Capacity must cover one cell's
  // full run set (selector cells replay the same `runs` seeds back to
  // back) or the LRU would churn at 0% hit rate for runs > capacity.
  const std::size_t max_entries = std::max<std::size_t>(
      8, config.scale.runs);
  constexpr std::size_t kMaxSamples = 64'000;  // parties x samples
  static std::mutex cache_mu;
  static std::deque<std::pair<FederationKey,
                              std::shared_ptr<const Federation>>> cache;
  // The serving plane builds sessions on its scheduler thread while
  // e.g. a loadgen's bit-identity re-run builds in-process on another;
  // serializing the whole lookup (builds included) keeps concurrent
  // misses on the same key from duplicating an 8 MB federation.
  std::lock_guard<std::mutex> cache_lock(cache_mu);

  const bool cacheable =
      config.scale.num_parties * config.scale.samples_per_party <=
      kMaxSamples;
  const FederationKey key = federation_key(config, seed);
  if (cacheable) {
    for (auto it = cache.begin(); it != cache.end(); ++it) {
      if (it->first == key) {
        // LRU: move the hit to the back so surviving entries are the
        // most recently used.
        auto entry = std::move(*it);
        cache.erase(it);
        cache.push_back(std::move(entry));
        return cache.back().second;
      }
    }
  }
  auto fed = std::make_shared<const Federation>(
      build_federation(config, seed));
  if (cacheable) {
    cache.emplace_back(key, fed);
    while (cache.size() > max_entries) cache.pop_front();
  }
  return fed;
}

flips::fl::FlJobConfig make_job_config(const ExperimentConfig& config,
                                       std::uint64_t seed) {
  flips::fl::FlJobConfig job;
  job.rounds = config.scale.rounds;
  job.parties_per_round = std::max<std::size_t>(
      1, static_cast<std::size_t>(config.participation *
                                  static_cast<double>(
                                      config.scale.num_parties)));
  job.local.epochs = config.local_epochs;
  job.local.batch_size = 32;
  job.local.sgd.learning_rate = config.local_lr;
  job.local.sgd.lr_decay_factor = 0.5;
  job.local.sgd.lr_decay_rounds = 20;
  job.local.prox_mu = config.prox_mu;
  job.server.optimizer = config.server_opt;
  job.server.learning_rate =
      config.server_opt == flips::fl::ServerOpt::kFedAvg ? 1.0
                                                         : config.server_lr;
  job.stragglers.rate = config.straggler_rate;
  job.privacy = config.privacy;
  job.local.algo = config.client_algo;
  job.seed = seed;
  job.threads = config.threads;
  job.eval_every = config.scale.eval_every;
  job.target_accuracy = config.target_accuracy;
  job.codec = config.codec;
  job.mode = config.mode;
  job.async = config.async;
  job.faults = config.faults;
  return job;
}

}  // namespace

std::unique_ptr<flips::fl::FederationSession> make_session(
    const ExperimentConfig& config, flips::select::SelectorKind kind,
    std::uint64_t seed, flips::common::ThreadPool* shared_pool) {
  const std::shared_ptr<const Federation> fed_ptr =
      cached_federation(config, seed);
  const Federation& fed = *fed_ptr;

  flips::select::SelectorContext ctx;
  ctx.num_parties = fed.parties.size();
  ctx.seed = seed ^ 0x5E1Eu;
  ctx.cluster_of = fed.flips_clusters;
  ctx.num_clusters = fed.num_flips_clusters;
  ctx.latencies = fed.latencies;
  ctx.rounds_hint = config.scale.rounds;
  ctx.label_distributions = fed.label_distributions;

  flips::common::Rng model_rng(seed ^ 0x30DEu);
  auto model =
      config.mlp_hidden > 0
          ? flips::ml::ModelFactory::mlp(config.spec.feature_dim,
                                         config.mlp_hidden,
                                         config.spec.num_classes, model_rng)
          : flips::ml::ModelFactory::logistic_regression(
                config.spec.feature_dim, config.spec.num_classes, model_rng);

  // The session aliases the cached federation's party vector — the
  // aliasing shared_ptr keeps the whole cache entry alive for the
  // session's lifetime (steppable sessions outlive this scope).
  std::shared_ptr<const std::vector<flips::fl::Party>> parties(
      fed_ptr, &fed_ptr->parties);
  return std::make_unique<flips::fl::FederationSession>(
      make_job_config(config, seed), std::move(parties), fed.global_test,
      std::move(model), flips::select::make_selector(kind, ctx),
      shared_pool);
}

SelectorResult run_selector(const ExperimentConfig& config,
                            flips::select::SelectorKind kind) {
  SelectorResult result;
  result.selector = flips::select::to_string(kind);
  result.runs = config.scale.runs;
  result.accuracy_curve.assign(config.scale.rounds, 0.0);

  double bytes_sum = 0.0;
  double up_bytes_sum = 0.0;
  double down_bytes_sum = 0.0;
  double wall_s_sum = 0.0;
  double coverage_sum = 0.0;
  std::size_t covered_runs = 0;

  for (std::size_t run = 0; run < config.scale.runs; ++run) {
    const std::uint64_t seed = config.seed + 1000 * run;
    // The engine rides the steppable session API; one run = stepping a
    // session to completion (bit-identical to the legacy FlJob::run).
    const auto session = make_session(config, kind, seed);
    if (config.observer_factory) {
      for (auto& observer : config.observer_factory(run)) {
        session->add_observer(std::move(observer));
      }
    }
    const auto wall_start = std::chrono::steady_clock::now();
    while (!session->done()) session->advance();
    const auto job_result = session->result();
    wall_s_sum += std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - wall_start)
                      .count();

    bytes_sum += static_cast<double>(job_result.total_bytes);
    up_bytes_sum += static_cast<double>(job_result.upload_bytes);
    down_bytes_sum += static_cast<double>(job_result.download_bytes);
    if (job_result.rounds_to_target) ++result.runs_reaching_target;
    for (std::size_t r = 0; r < job_result.history.size(); ++r) {
      result.accuracy_curve[r] += job_result.history[r].balanced_accuracy;
    }
    result.mean_epsilon += job_result.epsilon_spent;
    result.mean_jain_index += job_result.fairness.jain_index;
    if (job_result.coverage_round) {
      ++covered_runs;
      coverage_sum += static_cast<double>(*job_result.coverage_round);
    }
  }

  const auto runs = static_cast<double>(config.scale.runs);
  constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;
  result.total_gib = bytes_sum / runs / kGiB;
  result.up_gib = up_bytes_sum / runs / kGiB;
  result.down_gib = down_bytes_sum / runs / kGiB;
  result.mean_epsilon /= runs;
  result.mean_jain_index /= runs;
  // Mean over the runs that actually reached full coverage (nullopt ⇒
  // none did — distinct from "covered at round ~0", which the old 0.0
  // sentinel conflated); averaging over all runs would understate the
  // coverage round.
  if (covered_runs > 0) {
    result.mean_coverage_round =
        coverage_sum / static_cast<double>(covered_runs);
  }
  for (auto& a : result.accuracy_curve) a /= runs;

  // Peak and rounds-to-target are read off the run-averaged curve (the
  // paper averages 6 runs). Reading per-run maxima instead would reward
  // volatile schedules whose single-round spikes are noise.
  for (std::size_t r = 0; r < result.accuracy_curve.size(); ++r) {
    result.peak_accuracy =
        std::max(result.peak_accuracy, result.accuracy_curve[r]);
    if (!result.rounds_to_target && config.target_accuracy > 0.0 &&
        result.accuracy_curve[r] >= config.target_accuracy) {
      result.rounds_to_target = static_cast<double>(r + 1);
    }
  }

  result.wall_s_per_round =
      config.scale.rounds > 0
          ? wall_s_sum / runs / static_cast<double>(config.scale.rounds)
          : 0.0;
  // Stable machine-readable perf line (schema documented in the
  // header): host wall-clock per simulated round next to the
  // rounds-to-target the tables report. Emitted through the
  // registry-backed PerfLine so the numbers also land in the kMetrics
  // exposition (`flips_perf` gauges).
  PerfLine(result.selector)
      .num("wall_s_per_round", result.wall_s_per_round, 6)
      .num("rounds_to_target",
           result.rounds_to_target ? *result.rounds_to_target : -1.0, 0)
      .print();
  // Codec-aware companion line: mean wire bytes moved per simulated
  // round next to the wall time, so the perf trajectory captures both
  // dimensions the aggregation plane optimizes.
  {
    const double bytes_per_round =
        config.scale.rounds > 0
            ? bytes_sum / runs / static_cast<double>(config.scale.rounds)
            : 0.0;
    PerfLine("aggregate")
        .text("codec", flips::net::to_string(config.codec.codec))
        .num("bytes_per_round", bytes_per_round, 0)
        .num("wall_s_per_round", result.wall_s_per_round, 6)
        .print();
  }
  return result;
}

std::vector<std::vector<double>> run_per_label_curves(
    const ExperimentConfig& config, flips::select::SelectorKind kind) {
  const auto session = make_session(config, kind, config.seed);
  while (!session->done()) session->advance();
  const auto job_result = session->result();

  std::vector<std::vector<double>> curves(
      config.spec.num_classes,
      std::vector<double>(job_result.history.size(), 0.0));
  for (std::size_t r = 0; r < job_result.history.size(); ++r) {
    const auto& per_label = job_result.history[r].per_label_accuracy;
    for (std::size_t l = 0; l < per_label.size(); ++l) {
      curves[l][r] = per_label[l];
    }
  }
  return curves;
}

BenchOptions parse_bench_options(int argc, char** argv,
                                 const Scale& default_scale) {
  BenchOptions options;
  options.scale = default_scale;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&]() -> std::uint64_t {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      const char* text = argv[++i];
      char* end = nullptr;
      const std::uint64_t value = std::strtoull(text, &end, 10);
      if (end == text || *end != '\0') {
        std::cerr << "invalid value for " << arg << ": " << text << "\n";
        std::exit(2);
      }
      return value;
    };
    if (arg == "--paper-scale") {
      options.paper_scale = true;
      options.scale.num_parties = 200;
      options.scale.samples_per_party = 120;
      options.scale.rounds = 400;
      options.scale.runs = 6;
      options.scale.eval_every = 2;
    } else if (arg == "--parties") {
      options.scale.num_parties = next_value();
    } else if (arg == "--rounds") {
      options.scale.rounds = next_value();
    } else if (arg == "--runs") {
      options.scale.runs = next_value();
    } else if (arg == "--samples") {
      options.scale.samples_per_party = next_value();
    } else if (arg == "--seed") {
      options.seed = next_value();
    } else if (arg == "--threads") {
      options.threads = next_value();
    } else if (arg == "--codec") {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      const auto codec = flips::net::codec_from_string(argv[++i]);
      if (!codec) {
        std::cerr << "invalid value for --codec: " << argv[i]
                  << " (expected dense64, quant8, or topk)\n";
        std::exit(2);
      }
      options.codec.codec = *codec;
    } else if (arg == "--csv") {
      options.csv = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "flags: --paper-scale --parties N --rounds N --runs N "
                   "--samples N --seed N --threads N (0 = all cores) "
                   "--codec dense64|quant8|topk --csv\n";
      std::exit(0);
    } else {
      std::cerr << "unknown flag: " << arg << " (try --help)\n";
      std::exit(2);
    }
  }
  return options;
}

std::string format_rounds(const std::optional<double>& rounds,
                          std::size_t round_budget) {
  char buf[32];
  if (!rounds) {
    std::snprintf(buf, sizeof buf, ">%zu", round_budget);
    return buf;
  }
  std::snprintf(buf, sizeof buf, "%.0f", *rounds);
  return buf;
}

std::string format_paper_rounds(int rounds, int paper_budget) {
  if (rounds < 0) {
    char buf[32];
    std::snprintf(buf, sizeof buf, ">%d", paper_budget);
    return buf;
  }
  return std::to_string(rounds);
}

void print_table_header(const std::string& title,
                        const std::vector<std::string>& columns) {
  std::cout << "\n== " << title << " ==\n";
  for (const auto& c : columns) {
    std::cout << std::setw(13) << c;
  }
  std::cout << "\n";
  std::cout << std::string(13 * columns.size(), '-') << "\n";
}

void print_table_row(const std::vector<std::string>& cells) {
  for (const auto& c : cells) {
    std::cout << std::setw(13) << c;
  }
  std::cout << "\n";
}

void print_curve_csv(const std::string& experiment,
                     const SelectorResult& result) {
  for (std::size_t r = 0; r < result.accuracy_curve.size(); ++r) {
    std::cout << "csv," << experiment << "," << result.selector << ","
              << (r + 1) << "," << result.accuracy_curve[r] << "\n";
  }
}

}  // namespace flips::bench
