// Serving front end: hosts the multi-tenant SessionPool behind a
// TCP/UDS socket speaking the length-prefixed frame protocol
// (net/codec.h framing, serve/protocol.h payloads). Remote drivers —
// flips_loadgen, or anything that speaks the protocol — register a
// tenant (kHello), submit a ScenarioSpec as key=value lines
// (kOpenSession), and step their federation round by round (kStep),
// while the server enforces per-tenant admission control and
// round-robin fairness across tenants.
//
//   flips_serve --uds /tmp/flips.sock
//   flips_serve --port 0            # ephemeral TCP; port printed
//   flips_serve --threads 4 --max-inflight 8
//
// The server drains gracefully on a client's kShutdown frame (or
// SIGINT/SIGTERM): queued work finishes, replies flush, then it exits
// with a stats summary.
#include <chrono>
#include <csignal>
#include <cstdint>
#include <iostream>
#include <string>
#include <string_view>
#include <thread>

#include "common/scenario.h"
#include "serve/server.h"

namespace {

// Signal handlers may only do async-signal-safe work; set a flag the
// main loop polls alongside the server's own shutdown state.
std::sig_atomic_t g_signalled = 0;

void handle_signal(int) { g_signalled = 1; }

/// Lowers wire key=value pairs onto the bench engine: ScenarioSpec
/// validation (fail-fast on unknown keys / bad values), then the same
/// make_session path flips_run uses. Runs on the server's scheduler
/// thread only.
std::unique_ptr<flips::fl::FederationSession> build_session(
    const flips::serve::KvPairs& kv, flips::common::ThreadPool* workers,
    std::string* banner) {
  const auto spec = flips::ScenarioSpec::from_key_values(kv);
  const auto config = flips::to_experiment_config(spec);
  const auto kind = flips::selector_kind(spec);
  *banner = "scenario " + spec.name + ": dataset " + spec.dataset + ", " +
            std::to_string(spec.parties) + " parties, " +
            std::to_string(spec.rounds) + " rounds, mode " + spec.mode +
            ", selector " + spec.selector + ", codec " + spec.codec +
            ", seed " + std::to_string(spec.seed);
  return flips::bench::make_session(config, kind, spec.seed, workers);
}

int usage() {
  std::cerr << "usage: flips_serve [--uds PATH | --port N] [--threads N]"
               " [--max-inflight N] [--idle-timeout S]\n"
               "  --uds PATH        listen on a unix-domain socket\n"
               "  --port N          listen on 127.0.0.1:N (0 = ephemeral;"
               " resolved port is printed)\n"
               "  --threads N       shared local-training workers"
               " (0 = all cores)\n"
               "  --max-inflight N  admission bound: step frames queued"
               " or executing per tenant\n"
               "  --idle-timeout S  evict tenants whose connection died"
               " and stayed idle S seconds (0 = never)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  flips::serve::ServerConfig config;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      auto next_value = [&]() -> const char* {
        if (i + 1 >= argc) {
          throw std::invalid_argument("missing value for " +
                                      std::string(arg));
        }
        return argv[++i];
      };
      if (arg == "--uds") {
        config.uds_path = next_value();
      } else if (arg == "--port") {
        config.tcp_port =
            static_cast<std::uint16_t>(std::stoul(next_value()));
      } else if (arg == "--threads") {
        config.worker_threads = std::stoul(next_value());
      } else if (arg == "--max-inflight") {
        config.max_inflight_per_tenant = std::stoul(next_value());
      } else if (arg == "--idle-timeout") {
        config.tenant_idle_timeout_s = std::stod(next_value());
      } else if (arg == "--help" || arg == "-h") {
        usage();
        return 0;
      } else {
        throw std::invalid_argument("unknown flag: " + std::string(arg));
      }
    }
  } catch (const std::exception& error) {
    std::cerr << error.what() << "\n";
    return usage();
  }

  flips::serve::Server server(std::move(config), build_session);
  try {
    server.start();
  } catch (const std::exception& error) {
    std::cerr << "flips_serve: " << error.what() << "\n";
    return 1;
  }
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  if (server.port() != 0) {
    std::cout << "flips_serve listening on 127.0.0.1:" << server.port()
              << std::endl;
  } else {
    std::cout << "flips_serve listening" << std::endl;
  }

  while (g_signalled == 0 && !server.shutdown_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  server.drain();

  const auto stats = server.stats();
  std::cout << "flips_serve drained: " << stats.frames << " frames, "
            << stats.sessions_opened << " sessions, " << stats.steps
            << " steps, " << stats.rejected << " rejected, "
            << stats.bad_frames << " bad frames\n";
  return 0;
}
