// Reproduces Tables 3 & 4 of the paper (ham10000 dataset,
// kFedYogi FL algorithm): rounds-to-target-accuracy and highest accuracy
// for Random / FLIPS / Oort / GradClus / TiFL under 0/10/20 % stragglers.
#include "common/table_bench.h"

int main(int argc, char** argv) {
  flips::bench::TableBenchSpec spec;
  spec.table = flips::bench::paper::kHamFedYogi;
  spec.dataset = flips::data::DatasetCatalog::ham10000();
  spec.server_opt = flips::fl::ServerOpt::kFedYogi;
  spec.prox_mu = 0.0;
  spec.calibration = flips::bench::paper::kHamReduced;
  return flips::bench::run_table_bench(argc, argv, spec);
}
