// Reproduces Figure 13: convergence of the *under-represented* labels —
// arrhythmia classes (non-"N" beats) for the ECG dataset and the "bcc"
// class for HAM10000. The paper's claim: FLIPS's accuracy advantage is
// concentrated in exactly these labels.
#include <iostream>

#include "common/experiment.h"

namespace {

void run_dataset(const char* title, const flips::data::SyntheticSpec& spec,
                 std::uint32_t rare_label, const char* rare_name,
                 const flips::bench::BenchOptions& options) {
  flips::bench::ExperimentConfig config;
  config.spec = spec;
  config.alpha = 0.3;
  config.participation = 0.2;
  config.server_opt = flips::fl::ServerOpt::kFedYogi;
  config.target_accuracy = 0.0;
  options.apply(config);  // scale / seed / threads / codec in one place

  std::cout << "\n-- " << title << ": accuracy of under-represented label '"
            << rare_name << "' (prior "
            << 100.0 * spec.class_priors[rare_label] << " %) --\n";
  std::cout << "round";
  using flips::select::SelectorKind;
  const SelectorKind kinds[] = {SelectorKind::kRandom, SelectorKind::kFlips,
                                SelectorKind::kOort, SelectorKind::kGradClus,
                                SelectorKind::kTifl};
  // Average the per-label curve over several federations: single-run
  // rare-label accuracy on a small test set is noisy.
  const std::uint64_t seeds[] = {options.seed, options.seed + 1000,
                                 options.seed + 2000};
  std::vector<std::vector<double>> curves;
  for (const auto kind : kinds) {
    std::cout << "\t" << flips::select::to_string(kind);
    std::vector<double> mean;
    for (const auto seed : seeds) {
      auto local = config;
      local.seed = seed;
      const auto curve =
          flips::bench::run_per_label_curves(local, kind)[rare_label];
      if (mean.empty()) mean.assign(curve.size(), 0.0);
      for (std::size_t i = 0; i < curve.size(); ++i) mean[i] += curve[i] / 3.0;
    }
    curves.push_back(std::move(mean));
  }
  std::cout << "\n";
  const std::size_t rounds = curves.front().size();
  const std::size_t step = std::max<std::size_t>(1, rounds / 10);
  for (std::size_t r = step - 1; r < rounds; r += step) {
    std::cout << (r + 1);
    for (const auto& curve : curves) {
      printf("\t%.3f", curve[r]);
    }
    std::cout << "\n";
  }
  std::cout << "final:";
  for (const auto& curve : curves) printf("\t%.3f", curve.back());
  // The paper's claim: the FLIPS-vs-random gap concentrates on the
  // under-represented labels. Report both the early-round gap (where the
  // paper's curves diverge hardest) and the final gap.
  const std::size_t early = std::min<std::size_t>(9, rounds - 1);
  printf("\n  FLIPS vs random on '%s': %+.1f points at round %zu, "
         "%+.1f points at round %zu\n",
         rare_name, 100.0 * (curves[1][early] - curves[0][early]), early + 1,
         100.0 * (curves[1].back() - curves[0].back()), rounds);
}

}  // namespace

int main(int argc, char** argv) {
  flips::bench::Scale default_scale;
  default_scale.rounds = 100;
  const auto options =
      flips::bench::parse_bench_options(argc, argv, default_scale);

  std::cout << "Figure 13 reproduction: under-represented label "
               "convergence, FedYogi, alpha=0.3, 20% participation\n";

  // ECG: class S (supraventricular ectopic, prior 2.5 %) stands in for
  // "arrhythmia detection accuracy"; class F is rarer still but has too
  // few synthetic samples at reduced scale for a stable curve.
  run_dataset("MIT-BIH ECG", flips::data::DatasetCatalog::ecg(), 1, "S",
              options);
  // HAM10000: vasc (vascular lesion), prior 1.4 %.
  run_dataset("HAM10000", flips::data::DatasetCatalog::ham10000(), 5, "vasc",
              options);
  return 0;
}
