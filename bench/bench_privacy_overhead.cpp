// Aggregation-path privacy overhead study (paper §2.4).
//
// The paper argues TEEs over HE/SMPC/DP on cost grounds: HE adds 2-3
// orders of magnitude compute and 64× bandwidth; DP trades utility; the
// TEE costs ~5 %. This bench quantifies each mechanism in this repo's
// simulation:
//   1. per-round aggregation compute + bytes for plain / SecAgg / HE-sim;
//   2. end-to-end FL accuracy under DP at several noise levels, with the
//      RDP accountant's epsilon;
//   3. the TEE clustering overhead (re-measured here for context).
#include <chrono>
#include <iostream>

#include "common/experiment.h"
#include "common/rng.h"
#include "fl/job.h"
#include "net/codec.h"
#include "privacy/he_sim.h"
#include "privacy/masking.h"
#include "selection/random_selector.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

flips::bench::ExperimentConfig base_config(
    const flips::bench::BenchOptions& options) {
  flips::bench::ExperimentConfig config;
  config.spec = flips::data::DatasetCatalog::ecg();
  config.alpha = 0.3;
  options.apply(config);  // scale / seed / threads / codec in one place
  config.target_accuracy = 0.6;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  flips::bench::Scale default_scale;
  default_scale.rounds = 80;
  default_scale.runs = 2;
  const auto options =
      flips::bench::parse_bench_options(argc, argv, default_scale);

  // ---- Part 1: mechanism cost per aggregation round ----------------------
  std::cout << "=== Aggregation-path cost per round (model dim 10k, cohort "
               "20) ===\n";
  std::cout << "Paper 2.4: HE costs 2-3 orders of magnitude compute and 64x "
               "bandwidth; masking adds key-share traffic; TEE ~5%.\n\n";

  const std::size_t dim = 10'000;
  const std::size_t cohort = 20;
  flips::common::Rng rng(options.seed);
  std::vector<std::vector<double>> updates(cohort,
                                           std::vector<double>(dim));
  for (auto& u : updates) {
    for (auto& v : u) v = rng.normal(0.0, 0.01);
  }
  std::vector<std::size_t> roster(cohort);
  for (std::size_t i = 0; i < cohort; ++i) roster[i] = i;

  flips::bench::print_table_header(
      "mechanism cost",
      {"mechanism", "compute", "bytes-moved", "notes"});

  {  // plain
    const auto start = Clock::now();
    std::vector<double> sum(dim, 0.0);
    for (const auto& u : updates) {
      for (std::size_t k = 0; k < dim; ++k) sum[k] += u[k];
    }
    flips::bench::print_table_row(
        {"plain", std::to_string(seconds_since(start) * 1e3) + " ms",
         std::to_string(cohort * dim * 8) + " B", "baseline"});
  }
  {  // secagg masking
    const auto start = Clock::now();
    const flips::privacy::MaskingSession session(7, roster, dim);
    std::vector<double> sum(dim, 0.0);
    for (std::size_t i = 0; i < cohort; ++i) {
      const auto masked = session.mask(i, updates[i]);
      for (std::size_t k = 0; k < dim; ++k) sum[k] += masked[k];
    }
    sum = session.unmask_sum(sum, roster);
    const std::size_t bytes = cohort * dim * 8 +
                              session.setup_bytes_per_party() * cohort;
    flips::bench::print_table_row(
        {"secagg-masking",
         std::to_string(seconds_since(start) * 1e3) + " ms",
         std::to_string(bytes) + " B",
         "+key shares; exact sum"});
  }
  {  // secagg masking over the quantized integer domain (exact sum)
    const auto start = Clock::now();
    flips::net::CodecConfig cc;
    cc.codec = flips::net::Codec::kQuant8;
    const flips::net::UpdateCodec codec(cc);
    flips::net::EncodedUpdate enc;
    flips::net::CodecWorkspace ws;
    const flips::privacy::MaskingSession session(7, roster, dim);
    flips::common::Rng enc_rng(options.seed ^ 0x51AB);
    std::vector<std::int64_t> masked_sum(dim, 0);
    std::vector<std::int64_t> plain_sum(dim, 0);
    std::size_t wire_bytes = 0;
    for (std::size_t i = 0; i < cohort; ++i) {
      codec.encode(updates[i], enc_rng, enc, ws);
      wire_bytes += enc.wire_bytes();
      std::vector<std::int64_t> q(dim);
      for (std::size_t k = 0; k < dim; ++k) {
        q[k] = enc.q[k];
        plain_sum[k] += q[k];
      }
      const auto masked = session.mask_quantized(i, q);
      for (std::size_t k = 0; k < dim; ++k) {
        masked_sum[k] = static_cast<std::int64_t>(
            static_cast<std::uint64_t>(masked_sum[k]) +
            static_cast<std::uint64_t>(masked[k]));
      }
    }
    const auto sum = session.unmask_sum_quantized(masked_sum, roster);
    bool exact = true;
    for (std::size_t k = 0; k < dim; ++k) {
      if (sum[k] != plain_sum[k]) exact = false;
    }
    const std::size_t bytes =
        wire_bytes + session.setup_bytes_per_party() * cohort;
    flips::bench::print_table_row(
        {"secagg-mask-q8",
         std::to_string(seconds_since(start) * 1e3) + " ms",
         std::to_string(bytes) + " B",
         exact ? "int domain; sum EXACT" : "SUM MISMATCH (bug)"});
  }
  {  // HE simulation (cost ledger, not wall clock)
    flips::privacy::HeContext ctx;
    std::vector<flips::privacy::HeVector> cts;
    cts.reserve(cohort);
    for (const auto& u : updates) cts.push_back(ctx.encrypt(u));
    flips::privacy::HeVector acc = ctx.add(cts[0], cts[1]);
    for (std::size_t i = 2; i < cohort; ++i) acc = ctx.add(acc, cts[i]);
    (void)ctx.decrypt(acc);
    const auto& ledger = ctx.ledger();
    flips::bench::print_table_row(
        {"paillier-sim (ledger)",
         std::to_string(ledger.total_us() / 1e6) + " s",
         std::to_string(ledger.ciphertext_bytes_moved) + " B",
         "64x expansion; 2-3 OoM compute"});
  }

  // ---- Part 2: DP utility / epsilon trade-off ----------------------------
  std::cout << "\n=== DP noise vs accuracy (ECG-style, FedYogi, FLIPS "
               "selection) ===\n";
  flips::bench::print_table_header(
      "dp sweep", {"noise-mult", "peak-acc %", "epsilon(delta=1e-5)",
                   "rounds-to-60%"});

  for (const double sigma : {0.0, 0.01, 0.05, 0.2}) {
    auto config = base_config(options);
    if (sigma > 0.0) {
      config.privacy.mechanism = flips::fl::PrivacyMechanism::kDp;
      config.privacy.dp.clip_norm = 5.0;
      config.privacy.dp.noise_multiplier = sigma;
    }
    const auto result =
        flips::bench::run_selector(config, flips::select::SelectorKind::kFlips);
    flips::bench::print_table_row(
        {sigma == 0.0 ? "off" : std::to_string(sigma),
         std::to_string(result.peak_accuracy * 100.0),
         sigma == 0.0 ? "-" : std::to_string(result.mean_epsilon),
         flips::bench::format_rounds(result.rounds_to_target,
                                     config.scale.rounds)});
  }

  std::cout << "\nExpected shape: accuracy degrades monotonically with "
               "noise; epsilon grows with rounds; mild noise keeps the "
               "FLIPS advantage.\n";
  return 0;
}
