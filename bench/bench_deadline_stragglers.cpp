// Deadline-based straggler study on a simulated smart-community fleet
// (paper §2.3 causes — network congestion, device faults, restricted
// resources — and §7's senior-care deployment mix).
//
// Where the paper *emulates* stragglers by dropping a fixed fraction
// (reproduced in the table benches), this bench derives stragglers from
// device physics: wearables and budget phones miss tight aggregation
// deadlines. It sweeps the deadline and reports response rate, simulated
// time-to-target, and accuracy for FLIPS vs random — showing FLIPS's
// cluster-based over-provisioning keeps label coverage when whole device
// classes straggle.
#include <cstdio>
#include <iostream>
#include <utility>

#include "cluster/kmeans.h"
#include "common/experiment.h"
#include "common/perf.h"
#include "common/stats.h"
#include "data/federated.h"
#include "fl/job.h"
#include "fl/session.h"
#include "net/device.h"
#include "selection/factory.h"

namespace {

struct Fleet {
  std::vector<flips::fl::Party> parties;
  flips::data::Dataset test;
  std::vector<std::size_t> clusters;
  std::size_t k = 0;
};

Fleet build_fleet(const flips::bench::BenchOptions& options) {
  flips::data::FederatedDataConfig dc;
  dc.spec = flips::data::DatasetCatalog::ecg();
  dc.num_parties = options.scale.num_parties;
  dc.samples_per_party = options.scale.samples_per_party;
  dc.alpha = 0.3;
  dc.test_per_class = 80;
  dc.seed = options.seed;
  const auto data = flips::data::build_federated_data(dc);

  Fleet fleet;
  fleet.test = data.global_test;

  flips::common::Rng rng(options.seed ^ 0xF1EE7);
  const flips::net::FleetBuilder devices(flips::net::FleetMix::senior_care());
  for (std::size_t p = 0; p < data.party_data.size(); ++p) {
    auto device = devices.sample(rng);
    device.availability = 1.0;  // isolate the deadline effect
    device.fault_rate = 0.0;
    fleet.parties.emplace_back(p, data.party_data[p],
                               flips::fl::PartyProfile::from_device(device));
  }

  std::vector<flips::cluster::Point> points;
  for (const auto& ld : data.label_distributions) {
    points.push_back(flips::common::normalized(ld));
  }
  fleet.k = 10;
  flips::cluster::KMeansConfig kc;
  kc.k = fleet.k;
  kc.restarts = 3;
  flips::common::Rng cluster_rng(options.seed ^ 0xC1);
  fleet.clusters =
      flips::cluster::kmeans(points, kc, cluster_rng).assignments;
  return fleet;
}

}  // namespace

int main(int argc, char** argv) {
  flips::bench::Scale default_scale;
  default_scale.num_parties = 60;
  default_scale.rounds = 80;
  const auto options =
      flips::bench::parse_bench_options(argc, argv, default_scale);

  const Fleet fleet = build_fleet(options);
  const std::size_t nr =
      std::max<std::size_t>(2, fleet.parties.size() / 5);

  std::cout << "=== Deadline stragglers on a senior-care fleet (45% "
               "wearables / 40% phones / 15% gateways+workstations) ===\n\n";
  flips::bench::print_table_header(
      "deadline sweep",
      {"deadline", "selector", "response-rate", "peak-acc %",
       "sim-time-to-60% (s)"});

  for (const double deadline : {0.5, 2.0, 8.0, 0.0 /* = unbounded */}) {
    for (const auto kind : {flips::select::SelectorKind::kFlips,
                            flips::select::SelectorKind::kRandom}) {
      flips::fl::FlJobConfig job_config;
      job_config.rounds = options.scale.rounds;
      job_config.parties_per_round = nr;
      job_config.local.epochs = 2;
      job_config.local.sgd.learning_rate = 0.05;
      job_config.server.optimizer = flips::fl::ServerOpt::kFedYogi;
      job_config.server.learning_rate = 0.05;
      job_config.stragglers.mode = flips::fl::StragglerMode::kDeadline;
      job_config.stragglers.deadline_s = deadline;
      job_config.seed = options.seed;
      job_config.eval_every = 2;
      job_config.target_accuracy = 0.6;

      flips::select::SelectorContext ctx;
      ctx.num_parties = fleet.parties.size();
      ctx.seed = options.seed ^ 0x5E1E;
      ctx.cluster_of = fleet.clusters;
      ctx.num_clusters = fleet.k;

      flips::common::Rng model_rng(options.seed ^ 0x30DE);
      auto model = flips::ml::ModelFactory::mlp(32, 24, 5, model_rng);

      flips::fl::FlJob job(job_config, fleet.parties, fleet.test,
                           std::move(model),
                           flips::select::make_selector(kind, ctx));
      const auto result = job.run();

      double responded = 0.0;
      double selected = 0.0;
      double peak = 0.0;
      for (const auto& record : result.history) {
        responded += static_cast<double>(record.responded);
        selected += static_cast<double>(record.selected);
        peak = std::max(peak, record.balanced_accuracy);
      }

      std::string time_cell;
      if (result.time_to_target_s) {
        time_cell = std::to_string(*result.time_to_target_s);
      } else {
        time_cell = ">";
        time_cell += std::to_string(result.total_time_s);
      }
      flips::bench::print_table_row(
          {deadline > 0.0 ? std::to_string(deadline) + " s" : "unbounded",
           flips::select::to_string(kind),
           std::to_string(responded / selected),
           std::to_string(peak * 100.0), time_cell});
    }
  }

  std::cout << "\nExpected shape: tight deadlines silence the wearable "
               "tier; FLIPS's over-provisioning from straggler clusters "
               "keeps minority-label coverage, so its accuracy degrades "
               "more gracefully than random's. Unbounded deadlines trade "
               "wall-clock for full participation.\n";

  // --- Async arm: buffered asynchronous federation vs the sync barrier.
  //
  // Sync with no deadline pays the slowest cohort member every round —
  // on this fleet that is a wearable, so every round costs wearable
  // time. Async (FedBuff-style) steps the server every K arrivals and
  // drops updates staler than S, so fast gateways keep folding while
  // wearables trickle in. Same fleet, same selector, same simulated
  // clock; the async step budget matches the sync arm's total folded
  // updates (rounds x Nr / K steps).
  const std::size_t buffer_k = std::max<std::size_t>(1, nr / 2);
  const std::size_t max_staleness = 4;

  auto arm_config = [&](flips::fl::FederationMode mode,
                        std::size_t threads) {
    flips::fl::FlJobConfig job_config;
    job_config.mode = mode;
    job_config.rounds = mode == flips::fl::FederationMode::kAsync
                            ? options.scale.rounds * nr / buffer_k
                            : options.scale.rounds;
    job_config.parties_per_round = nr;
    job_config.async.buffer_k = buffer_k;
    job_config.async.max_staleness = max_staleness;
    job_config.local.epochs = 2;
    job_config.local.sgd.learning_rate = 0.05;
    job_config.server.optimizer = flips::fl::ServerOpt::kFedYogi;
    job_config.server.learning_rate = 0.05;
    job_config.seed = options.seed;
    job_config.threads = threads;
    job_config.eval_every = 2;
    job_config.target_accuracy = 0.6;
    return job_config;
  };

  auto run_arm = [&](const flips::fl::FlJobConfig& job_config) {
    flips::select::SelectorContext ctx;
    ctx.num_parties = fleet.parties.size();
    ctx.seed = options.seed ^ 0x5E1E;
    ctx.cluster_of = fleet.clusters;
    ctx.num_clusters = fleet.k;
    flips::common::Rng model_rng(options.seed ^ 0x30DE);
    flips::fl::FederationSession session(
        job_config, fleet.parties, fleet.test,
        flips::ml::ModelFactory::mlp(32, 24, 5, model_rng),
        flips::select::make_selector(flips::select::SelectorKind::kFlips,
                                     ctx));
    while (!session.done()) session.advance();
    return session.result();
  };

  const auto sync_result =
      run_arm(arm_config(flips::fl::FederationMode::kSync, options.threads));
  const auto async_result =
      run_arm(arm_config(flips::fl::FederationMode::kAsync, options.threads));

  // Bit-identity gate: both modes must be pure functions of the seed —
  // rerunning with a different worker count reproduces the exact
  // parameter vector. CI fails the perf job when this prints "no".
  const std::size_t alt_threads = options.threads == 1 ? 4 : 1;
  const bool bit_identical =
      run_arm(arm_config(flips::fl::FederationMode::kSync, alt_threads))
              .final_parameters == sync_result.final_parameters &&
      run_arm(arm_config(flips::fl::FederationMode::kAsync, alt_threads))
              .final_parameters == async_result.final_parameters;

  std::size_t dropped_stale = 0;
  for (const auto& record : async_result.history) {
    dropped_stale += record.dropped_stale;
  }

  std::cout << "\n";
  flips::bench::print_table_header(
      "async vs sync (flips selector, no deadline)",
      {"mode", "peak-acc %", "sim-time-to-60% (s)", "dropped-stale",
       "bit-identical"});
  auto time_cell = [](const flips::fl::FlJobResult& result) {
    if (result.time_to_target_s) {
      return std::to_string(*result.time_to_target_s);
    }
    return ">" + std::to_string(result.total_time_s);
  };
  flips::bench::print_table_row(
      {"sync", std::to_string(sync_result.peak_accuracy * 100.0),
       time_cell(sync_result), "0", bit_identical ? "yes" : "no"});
  flips::bench::print_table_row(
      {"async k=" + std::to_string(buffer_k) +
           " s=" + std::to_string(max_staleness),
       std::to_string(async_result.peak_accuracy * 100.0),
       time_cell(async_result), std::to_string(dropped_stale),
       bit_identical ? "yes" : "no"});

  // Stable machine-readable line for the CI perf artifact:
  //   perf,async,<buffer_k>,<max_staleness>,<async_tt_s|-1>,
  //        <sync_tt_s|-1>,<speedup>,<bit_identical yes|no>
  const double async_tt = async_result.time_to_target_s
                              ? *async_result.time_to_target_s
                              : -1.0;
  const double sync_tt =
      sync_result.time_to_target_s ? *sync_result.time_to_target_s : -1.0;
  const double speedup =
      async_tt > 0.0 && sync_tt > 0.0 ? sync_tt / async_tt : 0.0;
  flips::bench::PerfLine("async")
      .uint("buffer_k", buffer_k)
      .uint("max_staleness", max_staleness)
      .num("async_tt_s", async_tt, 3)
      .num("sync_tt_s", sync_tt, 3)
      .num("speedup", speedup, 3)
      .text("bit_identical", bit_identical ? "yes" : "no")
      .print();

  // --- Fault arm: the same fleet under an identical fault plan (device
  // churn + a 10% per-dispatch crash rate), comparing the two recovery
  // disciplines — sync backfills crashed cohort slots from the selector
  // (degrading to a quorum fold when backfill can't fill the hole),
  // async retries the failed slot in place after a backoff. Both must
  // stay bit-identical across worker counts WITH the fault plan on.
  flips::net::FaultConfig faults;
  faults.churn = 1.0;
  faults.crash_rate = 0.10;
  faults.max_retries = 2;
  faults.min_quorum = 0.5;

  auto fault_arm = [&](flips::fl::FederationMode mode,
                       std::size_t threads) {
    auto job_config = arm_config(mode, threads);
    job_config.faults = faults;
    return job_config;
  };

  const auto sync_faulted =
      run_arm(fault_arm(flips::fl::FederationMode::kSync, options.threads));
  const auto async_faulted =
      run_arm(fault_arm(flips::fl::FederationMode::kAsync, options.threads));
  const bool fault_identical =
      run_arm(fault_arm(flips::fl::FederationMode::kSync, alt_threads))
              .final_parameters == sync_faulted.final_parameters &&
      run_arm(fault_arm(flips::fl::FederationMode::kAsync, alt_threads))
              .final_parameters == async_faulted.final_parameters;

  auto fault_tallies = [](const flips::fl::FlJobResult& result) {
    std::size_t crashed = 0;
    std::size_t recovered = 0;
    for (const auto& record : result.history) {
      crashed += record.crashed;
      recovered += record.retried + record.backfilled;
    }
    return std::make_pair(crashed, recovered);
  };
  const auto [sync_crashed, sync_recovered] = fault_tallies(sync_faulted);
  const auto [async_crashed, async_recovered] = fault_tallies(async_faulted);

  std::cout << "\n";
  flips::bench::print_table_header(
      "fault plan: churn=1.0 crash=0.10 (backfill vs retry)",
      {"mode", "peak-acc %", "sim-time-to-60% (s)", "crashed",
       "recovered", "bit-identical"});
  flips::bench::print_table_row(
      {"sync+backfill",
       std::to_string(sync_faulted.peak_accuracy * 100.0),
       time_cell(sync_faulted), std::to_string(sync_crashed),
       std::to_string(sync_recovered), fault_identical ? "yes" : "no"});
  flips::bench::print_table_row(
      {"async+retry",
       std::to_string(async_faulted.peak_accuracy * 100.0),
       time_cell(async_faulted), std::to_string(async_crashed),
       std::to_string(async_recovered), fault_identical ? "yes" : "no"});

  // Stable machine-readable line for the CI perf artifact:
  //   perf,faults,<churn>,<fault_rate>,<rounds_to_target|-1>,
  //        <bit_identical yes|no>
  const double fault_rounds_tt =
      sync_faulted.rounds_to_target
          ? static_cast<double>(*sync_faulted.rounds_to_target)
          : -1.0;
  flips::bench::PerfLine("faults")
      .num("churn", faults.churn, 2)
      .num("fault_rate", faults.crash_rate, 2)
      .num("rounds_to_target", fault_rounds_tt, 0)
      .text("bit_identical", fault_identical ? "yes" : "no")
      .print();
  return 0;
}
