// Micro-benchmarks for the telemetry plane (src/obs): instrument
// hot-path costs, a steady-state allocation audit, and the end-to-end
// A/B overhead of a fully instrumented federation session.
//
// Besides the BM_ cases, main() emits machine-readable lines the CI
// perf job gates on:
//   obs,counter_inc_ns,<ns>        — must stay < 10
//   obs,histogram_record_ns,<ns>   — must stay < 25
//   obs,tracer_record_ns,<ns>      — informational (ring push + drain)
//   alloc,obs_steady_state,<count> — the plane's contract is 0
//   perf,obs,ab,<off_s>,<on_s>,<pct> — instrumented session overhead,
//       min over reps for both arms; must stay < 1%.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>

#include "common/experiment.h"
#include "common/scenario.h"
#include "fl/metrics_observer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

// ---- Global allocation counter (this binary only). Counts every
// operator-new so the steady-state telemetry loop can prove it
// allocates nothing.
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

// noinline: if gcc inlines these into call sites it pattern-matches
// the underlying malloc/free pair and raises a spurious
// -Wmismatched-new-delete (the replacement pattern is exactly
// malloc-in-new / free-in-delete).
__attribute__((noinline)) void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
__attribute__((noinline)) void* operator new[](std::size_t size) {
  return ::operator new(size);
}
__attribute__((noinline)) void operator delete(void* p) noexcept {
  std::free(p);
}
__attribute__((noinline)) void operator delete[](void* p) noexcept {
  std::free(p);
}
__attribute__((noinline)) void operator delete(void* p,
                                               std::size_t) noexcept {
  std::free(p);
}
__attribute__((noinline)) void operator delete[](void* p,
                                                 std::size_t) noexcept {
  std::free(p);
}

namespace {

using Clock = std::chrono::steady_clock;

void BM_CounterInc(benchmark::State& state) {
  flips::obs::Counter counter;
  for (auto _ : state) counter.inc();
  benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_CounterInc);

void BM_GaugeSet(benchmark::State& state) {
  flips::obs::Gauge gauge;
  double v = 0.0;
  for (auto _ : state) gauge.set(v += 1.0);
  benchmark::DoNotOptimize(gauge.value());
}
BENCHMARK(BM_GaugeSet);

void BM_HistogramRecord(benchmark::State& state) {
  flips::obs::Histogram histogram;
  double v = 1e-6;
  for (auto _ : state) {
    histogram.record(v);
    v *= 1.7;
    if (v > 1e5) v = 1e-6;
  }
  benchmark::DoNotOptimize(histogram.count());
}
BENCHMARK(BM_HistogramRecord);

void BM_TracerRecord(benchmark::State& state) {
  flips::obs::Tracer tracer(4096);
  tracer.set_sink(std::make_shared<flips::obs::NullTraceSink>());
  flips::obs::Span span;
  span.set_name("bench");
  std::size_t pushed = 0;
  for (auto _ : state) {
    span.id = ++pushed;
    tracer.record(span);
    if ((pushed & 1023) == 0) tracer.drain();
  }
  tracer.drain();
  benchmark::DoNotOptimize(tracer.dropped());
}
BENCHMARK(BM_TracerRecord);

// ---- ns/op measurements for the gate lines. Batch-timed (one clock
// read per batch, not per op), min over reps to strip scheduler noise.

template <typename Fn>
double min_ns_per_op(std::size_t iters, std::size_t reps, Fn&& fn) {
  double best = 1e300;
  for (std::size_t r = 0; r < reps; ++r) {
    const auto start = Clock::now();
    for (std::size_t i = 0; i < iters; ++i) fn(i);
    const double ns =
        std::chrono::duration<double, std::nano>(Clock::now() - start)
            .count() /
        static_cast<double>(iters);
    if (ns < best) best = ns;
  }
  return best;
}

void hot_path_costs() {
  constexpr std::size_t kIters = 1 << 22;
  constexpr std::size_t kReps = 5;

  flips::obs::Counter counter;
  const double counter_ns =
      min_ns_per_op(kIters, kReps, [&](std::size_t) { counter.inc(); });
  benchmark::DoNotOptimize(counter.value());

  // Pre-spread sample values across the bucket range so the record
  // loop exercises the real index computation, not one hot bucket.
  flips::obs::Histogram histogram;
  double samples[64];
  double v = 1e-6;
  for (double& s : samples) {
    s = v;
    v *= 1.9;
    if (v > 1e5) v = 1e-6;
  }
  const double histogram_ns = min_ns_per_op(
      kIters, kReps,
      [&](std::size_t i) { histogram.record(samples[i & 63]); });
  benchmark::DoNotOptimize(histogram.count());

  flips::obs::Tracer tracer(4096);
  tracer.set_sink(std::make_shared<flips::obs::NullTraceSink>());
  flips::obs::Span span;
  span.set_name("bench");
  const double tracer_ns =
      min_ns_per_op(kIters / 4, kReps, [&](std::size_t i) {
        span.id = i;
        tracer.record(span);
        if ((i & 1023) == 1023) tracer.drain();
      });
  tracer.drain();

  std::printf("\ntelemetry hot paths (min over %zu reps): counter.inc "
              "%.2f ns, histogram.record %.2f ns, tracer.record %.2f "
              "ns\n",
              kReps, counter_ns, histogram_ns, tracer_ns);
  std::printf("obs,counter_inc_ns,%.2f\n", counter_ns);
  std::printf("obs,histogram_record_ns,%.2f\n", histogram_ns);
  std::printf("obs,tracer_record_ns,%.2f\n", tracer_ns);
}

// ---- Steady-state allocation audit: registration (which may
// allocate) happens once up front; after that, counter/gauge/
// histogram updates, span records, and ring drains into a null sink
// must not touch the heap.
void allocation_audit() {
  constexpr std::size_t kWarmup = 1000;
  constexpr std::size_t kMeasured = 1 << 20;

  flips::obs::Registry registry;
  flips::obs::Counter* counter =
      &registry.counter("obs_bench_events_total", {{"kind", "audit"}});
  flips::obs::Gauge* gauge = &registry.gauge("obs_bench_level");
  flips::obs::Histogram* histogram =
      &registry.histogram("obs_bench_seconds");
  flips::obs::Tracer tracer(4096);
  tracer.set_sink(std::make_shared<flips::obs::NullTraceSink>());
  flips::obs::Span span;
  span.set_name("audit");

  std::uint64_t base = 0;
  for (std::size_t i = 0; i < kWarmup + kMeasured; ++i) {
    if (i == kWarmup) base = g_allocations.load(std::memory_order_relaxed);
    counter->inc();
    gauge->set(static_cast<double>(i));
    histogram->record(1e-6 * static_cast<double>((i & 1023) + 1));
    span.id = i;
    tracer.record(span);
    if ((i & 1023) == 1023) tracer.drain();
  }
  tracer.drain();
  const std::uint64_t steady =
      g_allocations.load(std::memory_order_relaxed) - base;
  std::printf("\nheap allocations across %zu steady-state telemetry "
              "iterations (counter + gauge + histogram + span + "
              "drain): %llu\n",
              kMeasured, static_cast<unsigned long long>(steady));
  std::printf("alloc,obs_steady_state,%llu\n",
              static_cast<unsigned long long>(steady));
}

// ---- A/B overhead: the same federation stepped bare vs fully
// instrumented (MetricsObserver emitting into a private registry plus
// phase/round spans through a null-sink tracer — the serving plane's
// exact per-session wiring). Min wall time over reps for both arms.
double run_arm(const flips::bench::ExperimentConfig& config,
               flips::select::SelectorKind kind, bool instrumented,
               flips::obs::Registry* registry, flips::obs::Tracer* tracer) {
  auto session = flips::bench::make_session(config, kind, config.seed);
  if (instrumented) {
    session->add_observer(std::make_shared<flips::fl::MetricsObserver>(
        "ab", registry, tracer));
  }
  const auto start = Clock::now();
  while (!session->done()) session->advance();
  benchmark::DoNotOptimize(session->result().final_parameters.data());
  return std::chrono::duration<double>(Clock::now() - start).count();
}

void ab_overhead() {
  // Sized so one arm runs ~0.1 s: long enough that scheduler noise
  // stays well under the 1% gate with min-over-reps on both sides.
  flips::ScenarioSpec spec = flips::scenario_preset("ecg-fedavg");
  spec.parties = 24;
  spec.samples_per_party = 40;
  spec.rounds = 200;
  spec.threads = 1;
  const auto config = flips::to_experiment_config(spec);
  const auto kind = flips::selector_kind(spec);

  flips::obs::Registry registry;
  flips::obs::Tracer tracer(4096);
  tracer.set_sink(std::make_shared<flips::obs::NullTraceSink>());

  // One throwaway pair populates the federation cache; then alternate
  // arms so load spikes hit both equally, and take the min — the only
  // estimator that converges under one-sided scheduler noise.
  run_arm(config, kind, false, nullptr, nullptr);
  run_arm(config, kind, true, &registry, &tracer);
  constexpr std::size_t kReps = 21;
  double off_s = 1e300;
  double on_s = 1e300;
  for (std::size_t r = 0; r < kReps; ++r) {
    off_s = std::min(off_s, run_arm(config, kind, false, nullptr, nullptr));
    on_s = std::min(on_s, run_arm(config, kind, true, &registry, &tracer));
  }
  const double pct = (on_s - off_s) / off_s * 100.0;
  std::printf("\ninstrumented session A/B (%zu parties, %zu rounds, min "
              "over %zu reps): bare %.4f s, instrumented %.4f s, "
              "overhead %.3f%%\n",
              spec.parties, spec.rounds, kReps, off_s, on_s, pct);
  std::printf("perf,obs,ab,%.4f,%.4f,%.3f\n", off_s, on_s, pct);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  const int rc = benchmark::RunSpecifiedBenchmarks();
  hot_path_costs();
  allocation_audit();
  ab_overhead();
  return rc;
}
