#include "privacy/he_sim.h"

#include <algorithm>

namespace flips::privacy {

HeVector HeContext::encrypt(const std::vector<double>& plaintext) {
  HeVector out;
  out.plaintext = plaintext;
  out.ciphertext_bytes =
      plaintext.size() * model_.ciphertext_bytes_per_element;
  ledger_.encrypt_us +=
      model_.encrypt_us_per_element * static_cast<double>(plaintext.size());
  ledger_.ciphertext_bytes_moved += out.ciphertext_bytes;
  return out;
}

HeVector HeContext::add(const HeVector& a, const HeVector& b) {
  HeVector out;
  const std::size_t n = std::max(a.plaintext.size(), b.plaintext.size());
  out.plaintext.assign(n, 0.0);
  for (std::size_t i = 0; i < a.plaintext.size(); ++i) {
    out.plaintext[i] += a.plaintext[i];
  }
  for (std::size_t i = 0; i < b.plaintext.size(); ++i) {
    out.plaintext[i] += b.plaintext[i];
  }
  out.ciphertext_bytes = n * model_.ciphertext_bytes_per_element;
  ledger_.add_us += model_.add_us_per_element * static_cast<double>(n);
  return out;
}

std::vector<double> HeContext::decrypt(const HeVector& ciphertext) {
  ledger_.decrypt_us += model_.decrypt_us_per_element *
                        static_cast<double>(ciphertext.plaintext.size());
  ledger_.ciphertext_bytes_moved += ciphertext.ciphertext_bytes;
  return ciphertext.plaintext;
}

}  // namespace flips::privacy
