// Additively-homomorphic encryption *cost simulator* (Paillier-shaped).
// Values stay in plaintext so results are checkable; what the context
// maintains is an honest cost ledger — per-op microseconds and
// ciphertext bytes — calibrated to the 2-3 orders-of-magnitude compute
// and 64x bandwidth expansion the paper cites when arguing for TEEs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace flips::privacy {

struct HeCostLedger {
  double encrypt_us = 0.0;
  double add_us = 0.0;
  double decrypt_us = 0.0;
  std::uint64_t ciphertext_bytes_moved = 0;

  double total_us() const { return encrypt_us + add_us + decrypt_us; }
};

struct HeVector {
  std::vector<double> plaintext;     ///< simulation carries real values
  std::size_t ciphertext_bytes = 0;  ///< what would cross the wire
};

struct HeCostModel {
  /// Paillier-2048-ish unit costs.
  double encrypt_us_per_element = 180.0;
  double add_us_per_element = 4.0;
  double decrypt_us_per_element = 160.0;
  std::size_t ciphertext_bytes_per_element = 512;  ///< 64x of a double
};

class HeContext {
 public:
  HeContext() = default;
  explicit HeContext(const HeCostModel& model) : model_(model) {}

  [[nodiscard]] HeVector encrypt(const std::vector<double>& plaintext);
  [[nodiscard]] HeVector add(const HeVector& a, const HeVector& b);
  [[nodiscard]] std::vector<double> decrypt(const HeVector& ciphertext);

  const HeCostLedger& ledger() const { return ledger_; }
  const HeCostModel& model() const { return model_; }

 private:
  HeCostModel model_;
  HeCostLedger ledger_;
};

}  // namespace flips::privacy
