// Pairwise-mask secure aggregation (Bonawitz et al. style, simulated):
// every roster pair (i, j) shares a PRG seed; i adds the expansion, j
// subtracts it, so the server's sum of masked updates equals the true
// sum. `unmask_sum` removes the residue left by dropped parties.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace flips::privacy {

class MaskingSession {
 public:
  /// `roster` holds party ids; `dim` is the update length.
  MaskingSession(std::uint64_t session_seed, std::vector<std::size_t> roster,
                 std::size_t dim);

  /// Masked update for roster member `party` (a roster id).
  [[nodiscard]] std::vector<double> mask(
      std::size_t party, const std::vector<double>& update) const;

  /// Given the sum of masked updates from `responders` (roster ids),
  /// cancels the masks responders shared with non-responders and
  /// returns the exact sum of the responders' updates.
  [[nodiscard]] std::vector<double> unmask_sum(
      const std::vector<double>& masked_sum,
      const std::vector<std::size_t>& responders) const;

  /// Exact-sum path over the quantized integer domain (net::Codec
  /// kQuant8 values and their int sums). Masks are uniform 64-bit
  /// words added modulo 2^64, so — unlike the floating-point path,
  /// which leaves ~1e-9 cancellation residue — the unmasked sum equals
  /// the plaintext sum EXACTLY, including under dropout. Sums of int8
  /// updates over any realistic cohort stay far from the wrap
  /// boundary.
  [[nodiscard]] std::vector<std::int64_t> mask_quantized(
      std::size_t party, const std::vector<std::int64_t>& update) const;

  /// Integer-domain counterpart of unmask_sum: cancels responder ↔
  /// non-responder mask residue modulo 2^64 and returns the exact
  /// integer sum of the responders' updates.
  [[nodiscard]] std::vector<std::int64_t> unmask_sum_quantized(
      const std::vector<std::int64_t>& masked_sum,
      const std::vector<std::size_t>& responders) const;

  /// Key-share traffic each party pays during setup.
  std::size_t setup_bytes_per_party() const {
    return 32 * (roster_.size() > 0 ? roster_.size() - 1 : 0);
  }

  const std::vector<std::size_t>& roster() const { return roster_; }

 private:
  void add_pair_mask(std::vector<double>& out, std::size_t a, std::size_t b,
                     double sign) const;
  /// Integer twin of add_pair_mask: adds (or, when `negate`, subtracts)
  /// the pair's mask words modulo 2^64.
  void add_pair_mask_words(std::vector<std::uint64_t>& out, std::size_t a,
                           std::size_t b, bool negate) const;

  std::uint64_t session_seed_;
  std::vector<std::size_t> roster_;
  std::size_t dim_;
};

}  // namespace flips::privacy
