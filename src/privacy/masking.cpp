#include "privacy/masking.h"

#include <algorithm>

#include "common/rng.h"

namespace flips::privacy {

MaskingSession::MaskingSession(std::uint64_t session_seed,
                               std::vector<std::size_t> roster,
                               std::size_t dim)
    : session_seed_(session_seed), roster_(std::move(roster)), dim_(dim) {}

void MaskingSession::add_pair_mask(std::vector<double>& out, std::size_t a,
                                   std::size_t b, double sign) const {
  // The shared seed is symmetric in (a, b); the lower id adds, the
  // higher subtracts, so the pair cancels in the server's sum.
  const std::size_t lo = std::min(a, b);
  const std::size_t hi = std::max(a, b);
  common::Rng pair_rng(session_seed_ ^ (0x9E3779B9ull * (lo + 1)) ^
                       (0x85EBCA6Bull * (hi + 1)));
  const double direction = (a == lo) ? sign : -sign;
  for (std::size_t i = 0; i < dim_; ++i) {
    out[i] += direction * pair_rng.normal();
  }
}

std::vector<double> MaskingSession::mask(
    std::size_t party, const std::vector<double>& update) const {
  std::vector<double> out(dim_, 0.0);
  std::copy(update.begin(),
            update.begin() + static_cast<std::ptrdiff_t>(
                                 std::min(update.size(), dim_)),
            out.begin());
  for (const std::size_t other : roster_) {
    if (other == party) continue;
    add_pair_mask(out, party, other, 1.0);
  }
  return out;
}

std::vector<double> MaskingSession::unmask_sum(
    const std::vector<double>& masked_sum,
    const std::vector<std::size_t>& responders) const {
  std::vector<double> out(dim_, 0.0);
  std::copy(masked_sum.begin(),
            masked_sum.begin() + static_cast<std::ptrdiff_t>(std::min(
                                     masked_sum.size(), dim_)),
            out.begin());
  // Masks between two responders cancel already. What survives is each
  // responder's mask against every non-responder; replay and subtract.
  std::vector<bool> responded_lookup;
  std::size_t max_id = 0;
  for (const std::size_t id : roster_) max_id = std::max(max_id, id);
  responded_lookup.assign(max_id + 1, false);
  for (const std::size_t id : responders) {
    if (id <= max_id) responded_lookup[id] = true;
  }
  for (const std::size_t r : roster_) {
    if (!responded_lookup[r]) continue;
    for (const std::size_t d : roster_) {
      if (d == r || responded_lookup[d]) continue;
      add_pair_mask(out, r, d, -1.0);
    }
  }
  return out;
}

void MaskingSession::add_pair_mask_words(std::vector<std::uint64_t>& out,
                                         std::size_t a, std::size_t b,
                                         bool negate) const {
  // Same shared-seed construction as the float path; the lower id adds
  // the word stream, the higher subtracts it, all modulo 2^64 —
  // cancellation is exact, not approximate.
  const std::size_t lo = std::min(a, b);
  const std::size_t hi = std::max(a, b);
  common::Rng pair_rng(session_seed_ ^ (0x9E3779B9ull * (lo + 1)) ^
                       (0x85EBCA6Bull * (hi + 1)));
  const bool subtract = (a != lo) != negate;
  for (std::size_t i = 0; i < dim_; ++i) {
    const std::uint64_t word = pair_rng.next();
    if (subtract) {
      out[i] -= word;
    } else {
      out[i] += word;
    }
  }
}

std::vector<std::int64_t> MaskingSession::mask_quantized(
    std::size_t party, const std::vector<std::int64_t>& update) const {
  std::vector<std::uint64_t> out(dim_, 0);
  const std::size_t n = std::min(update.size(), dim_);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint64_t>(update[i]);
  }
  for (const std::size_t other : roster_) {
    if (other == party) continue;
    add_pair_mask_words(out, party, other, /*negate=*/false);
  }
  std::vector<std::int64_t> masked(dim_);
  for (std::size_t i = 0; i < dim_; ++i) {
    masked[i] = static_cast<std::int64_t>(out[i]);
  }
  return masked;
}

std::vector<std::int64_t> MaskingSession::unmask_sum_quantized(
    const std::vector<std::int64_t>& masked_sum,
    const std::vector<std::size_t>& responders) const {
  std::vector<std::uint64_t> out(dim_, 0);
  const std::size_t n = std::min(masked_sum.size(), dim_);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint64_t>(masked_sum[i]);
  }
  std::size_t max_id = 0;
  for (const std::size_t id : roster_) max_id = std::max(max_id, id);
  std::vector<bool> responded_lookup(max_id + 1, false);
  for (const std::size_t id : responders) {
    if (id <= max_id) responded_lookup[id] = true;
  }
  for (const std::size_t r : roster_) {
    if (!responded_lookup[r]) continue;
    for (const std::size_t d : roster_) {
      if (d == r || responded_lookup[d]) continue;
      add_pair_mask_words(out, r, d, /*negate=*/true);
    }
  }
  std::vector<std::int64_t> sum(dim_);
  for (std::size_t i = 0; i < dim_; ++i) {
    sum[i] = static_cast<std::int64_t>(out[i]);
  }
  return sum;
}

}  // namespace flips::privacy
