#include "privacy/dp.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace flips::privacy {

void clip_to_norm(std::vector<double>& v, double max_norm) {
  if (max_norm <= 0.0) return;
  double norm_sq = 0.0;
  for (const double x : v) norm_sq += x * x;
  const double norm = std::sqrt(norm_sq);
  if (norm <= max_norm) return;
  const double scale = max_norm / norm;
  for (auto& x : v) x *= scale;
}

void add_gaussian_noise(std::vector<double>& v, double stddev,
                        common::Rng& rng) {
  if (stddev <= 0.0) return;
  for (auto& x : v) x += stddev * rng.normal();
}

namespace {

const std::vector<double>& alpha_grid() {
  static const std::vector<double> kGrid = {
      1.25, 1.5, 1.75, 2.0, 2.5, 3.0, 4.0, 5.0, 6.0, 8.0,
      10.0, 12.0, 16.0, 20.0, 32.0, 64.0, 128.0, 256.0};
  return kGrid;
}

}  // namespace

void RdpAccountant::steps(double noise_multiplier, std::size_t count) {
  if (count == 0) return;
  const auto& grid = alpha_grid();
  if (rdp_.empty()) rdp_.assign(grid.size(), 0.0);
  num_steps_ += count;
  if (noise_multiplier <= 0.0) {
    // No noise = no privacy; saturate the ledger.
    for (auto& r : rdp_) r = std::numeric_limits<double>::infinity();
    return;
  }
  const double per_step_base =
      1.0 / (2.0 * noise_multiplier * noise_multiplier);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    rdp_[i] += static_cast<double>(count) * grid[i] * per_step_base;
  }
}

double RdpAccountant::epsilon(double delta) const {
  if (rdp_.empty()) return 0.0;
  if (delta <= 0.0) return std::numeric_limits<double>::infinity();
  const auto& grid = alpha_grid();
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const double alpha = grid[i];
    if (alpha <= 1.0) continue;
    best = std::min(best, rdp_[i] + std::log(1.0 / delta) / (alpha - 1.0));
  }
  return best;
}

}  // namespace flips::privacy
