// Differential-privacy primitives for the aggregation path: L2 clipping,
// Gaussian noise, and a Renyi-DP accountant for the Gaussian mechanism
// (epsilon via the standard RDP -> (eps, delta) conversion, minimized
// over a fixed alpha grid).
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace flips::privacy {

/// Scales `v` down to L2 norm `max_norm` when it exceeds it.
void clip_to_norm(std::vector<double>& v, double max_norm);

/// Adds iid N(0, stddev^2) noise to every coordinate.
void add_gaussian_noise(std::vector<double>& v, double stddev,
                        common::Rng& rng);

class RdpAccountant {
 public:
  /// Records one Gaussian-mechanism release with the given noise
  /// multiplier (sigma = multiplier * sensitivity).
  void step(double noise_multiplier) { steps(noise_multiplier, 1); }
  void steps(double noise_multiplier, std::size_t count);

  /// Smallest epsilon over the alpha grid for the accumulated steps.
  [[nodiscard]] double epsilon(double delta) const;

  std::size_t num_steps() const { return num_steps_; }

 private:
  /// Accumulated RDP at each grid alpha (same order as alpha_grid()).
  std::vector<double> rdp_;
  std::size_t num_steps_ = 0;
};

}  // namespace flips::privacy
