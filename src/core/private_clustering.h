// The middleware control-plane path for FLIPS clustering: parties
// submit label distributions over attested sealed channels; the service
// clusters them inside the (simulated) enclave so the aggregation
// server never sees raw label histograms (paper §3.4/§5.1).
//
// Clustering itself is delegated to ctrl::StreamingClusterEngine: the
// service keeps only the attestation + sealed-channel framing and the
// enclave execution ledger, while the engine provides sharded
// bounded-memory ingestion, the Lloyd/mini-batch size threshold,
// incremental late-joiner assignment and online drift detection.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ctrl/recluster_observer.h"
#include "ctrl/streaming_cluster_engine.h"
#include "data/synthetic.h"
#include "tee/enclave.h"

namespace flips::core {

struct ClusteringConfig {
  /// Fixed cluster count; 0 = pick k with the DBI elbow over
  /// [k_min, k_max].
  std::size_t k_override = 0;
  std::size_t k_min = 2;
  std::size_t k_max = 30;
  std::size_t restarts = 3;
  std::size_t elbow_repeats = 5;
  std::uint64_t seed = 42;
  /// Streaming-engine knobs (shard count/capacity, the Lloyd vs
  /// mini-batch party threshold, drift detection). The clustering
  /// fields above override their counterparts in here, so existing
  /// call sites keep working unchanged.
  ctrl::StreamingClusterConfig streaming;
};

/// Implements ctrl::ClusterControl, so a session can drive the service
/// through a ctrl::ReclusterObserver instead of a pre_round_hook.
class PrivateClusteringService : public ctrl::ClusterControl {
 public:
  PrivateClusteringService(const ClusteringConfig& config,
                           std::shared_ptr<tee::Enclave> enclave,
                           std::shared_ptr<tee::AttestationServer> attestation);

  /// One party's secure submission: verify attestation, seal the
  /// histogram for the enclave, open it inside, ingest into the
  /// streaming engine. Re-submission (e.g. a drift refresh) updates
  /// the party's point in place — it never duplicates the party.
  /// Throws if the enclave's attestation does not verify.
  void submit_label_distribution(
      std::size_t party_id,
      const data::LabelDistribution& distribution) override;

  struct Result {
    std::vector<std::size_t> assignments;  ///< party id -> cluster
    std::size_t k = 0;
  };

  /// Clusters everything submitted so far inside the enclave, starting
  /// a new membership epoch.
  const Result& finalize();

  /// Re-clusters (inside the enclave) iff the drift monitor has
  /// flagged the current epoch; returns whether a new epoch was built.
  bool maybe_recluster() override;

  const Result& result() const { return result_; }
  std::size_t submissions() const { return engine_.parties(); }

  // Control-plane passthroughs.
  ctrl::MembershipView membership() const override {
    return engine_.view();
  }
  std::uint64_t epoch() const override { return engine_.epoch(); }
  bool drift_detected() const override {
    return engine_.drift_detected();
  }
  const char* clustering_path() const { return engine_.last_path(); }
  const ctrl::StreamingClusterEngine& engine() const { return engine_; }

 private:
  void refresh_result(const ctrl::MembershipView& view);

  ClusteringConfig config_;
  std::shared_ptr<tee::Enclave> enclave_;
  std::shared_ptr<tee::AttestationServer> attestation_;
  ctrl::StreamingClusterEngine engine_;
  Result result_;
};

}  // namespace flips::core
