#include "core/private_clustering.h"

#include <cmath>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "common/stats.h"

namespace flips::core {

namespace {

ctrl::StreamingClusterConfig engine_config(const ClusteringConfig& config) {
  ctrl::StreamingClusterConfig ec = config.streaming;
  ec.k_override = config.k_override;
  ec.k_min = config.k_min;
  ec.k_max = config.k_max;
  ec.restarts = config.restarts;
  ec.elbow_repeats = config.elbow_repeats;
  ec.seed = config.seed;
  return ec;
}

}  // namespace

PrivateClusteringService::PrivateClusteringService(
    const ClusteringConfig& config, std::shared_ptr<tee::Enclave> enclave,
    std::shared_ptr<tee::AttestationServer> attestation)
    : config_(config), enclave_(std::move(enclave)),
      attestation_(std::move(attestation)),
      engine_(engine_config(config)) {}

void PrivateClusteringService::submit_label_distribution(
    std::size_t party_id, const data::LabelDistribution& distribution) {
  // The party verifies the enclave before trusting it with its label
  // histogram — this is the whole point of the TEE path.
  if (!attestation_->verify(enclave_->measurement(),
                            enclave_->platform_key())) {
    throw std::runtime_error(
        "private clustering: enclave attestation rejected");
  }

  // Secure-channel framing: serialize, seal for the enclave, open
  // inside it. The seal/open pair is the honest marginal cost of the
  // simulation (keystream + integrity tag over the payload).
  std::vector<std::uint8_t> wire(distribution.size() * sizeof(double));
  if (!wire.empty()) {
    std::memcpy(wire.data(), distribution.data(), wire.size());
  }
  const tee::SealedBlob blob = enclave_->seal(wire, party_id + 1);
  const std::vector<std::uint8_t> opened = enclave_->open(blob);

  data::LabelDistribution received(distribution.size(), 0.0);
  if (!opened.empty()) {
    std::memcpy(received.data(), opened.data(), opened.size());
  }

  // Hellinger embedding (sqrt of proportions) — the same space the
  // bench layer clusters in.
  cluster::Point point = common::normalized(received);
  for (auto& v : point) v = std::sqrt(v);
  engine_.submit(party_id, std::move(point));
}

void PrivateClusteringService::refresh_result(
    const ctrl::MembershipView& view) {
  result_.k = view.k;
  result_.assignments = view.cluster_of;
}

const PrivateClusteringService::Result& PrivateClusteringService::finalize() {
  const ctrl::MembershipView view =
      enclave_->execute([&]() { return engine_.rebuild(); });
  refresh_result(view);
  return result_;
}

bool PrivateClusteringService::maybe_recluster() {
  if (!engine_.drift_detected()) return false;
  finalize();
  return true;
}

}  // namespace flips::core
