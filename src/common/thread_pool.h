// Fixed-size worker pool for the embarrassingly-parallel loops in the
// FL simulator (per-party local training, evaluation chunks). Tasks are
// pulled off a shared atomic index so uneven party sizes balance
// themselves; the calling thread participates, and a pool of size 1
// degenerates to a plain inline loop (no threads, no locking).
//
// Determinism contract: parallel_for(n, fn) invokes fn(i) exactly once
// for every i in [0, n) with no ordering guarantee — callers that need
// bit-identical results across thread counts must write to disjoint,
// index-addressed slots and do any order-sensitive reduction afterwards
// on one thread (this is how fl::FlJob keeps rounds reproducible).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace flips::common {

class ThreadPool {
 public:
  /// Maps a requested thread count to an effective one: 0 means "use
  /// the hardware concurrency" (at least 1).
  static std::size_t resolve_threads(std::size_t requested) {
    if (requested != 0) return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
  }

  explicit ThreadPool(std::size_t num_threads)
      : size_(resolve_threads(num_threads)) {
    workers_.reserve(size_ > 0 ? size_ - 1 : 0);
    for (std::size_t t = 1; t < size_; ++t) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    wake_cv_.notify_all();
    for (auto& worker : workers_) worker.join();
  }

  std::size_t size() const { return size_; }

  /// Runs fn(i) for every i in [0, n); returns once all calls have
  /// completed and every helping worker has left the job. fn must not
  /// throw. Not reentrant (no parallel_for from inside fn).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
    if (n == 0) return;
    if (workers_.empty() || n == 1) {
      for (std::size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job_fn_ = &fn;
      job_n_ = n;
      next_.store(0, std::memory_order_relaxed);
      done_ = 0;
      ++generation_;
    }
    wake_cv_.notify_all();
    run_current_job(fn, n);
    std::unique_lock<std::mutex> lock(mutex_);
    idle_cv_.wait(lock, [&] { return done_ == job_n_ && active_ == 0; });
    job_fn_ = nullptr;
  }

 private:
  void run_current_job(const std::function<void(std::size_t)>& fn,
                       std::size_t n) {
    for (;;) {
      const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      fn(i);
      std::lock_guard<std::mutex> lock(mutex_);
      if (++done_ == job_n_) idle_cv_.notify_all();
    }
  }

  void worker_loop() {
    std::uint64_t seen_generation = 0;
    for (;;) {
      const std::function<void(std::size_t)>* fn = nullptr;
      std::size_t n = 0;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_cv_.wait(lock, [&] {
          return stop_ || (generation_ != seen_generation &&
                           job_fn_ != nullptr);
        });
        if (stop_) return;
        seen_generation = generation_;
        fn = job_fn_;
        n = job_n_;
        ++active_;
      }
      run_current_job(*fn, n);
      {
        std::lock_guard<std::mutex> lock(mutex_);
        --active_;
      }
      // parallel_for also waits for active_ == 0, so the job's fn (a
      // reference to the caller's stack) stays alive until every
      // helper is out of run_current_job.
      idle_cv_.notify_all();
    }
  }

  const std::size_t size_;
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_cv_;
  std::condition_variable idle_cv_;
  const std::function<void(std::size_t)>* job_fn_ = nullptr;
  std::size_t job_n_ = 0;
  std::atomic<std::size_t> next_{0};
  std::size_t done_ = 0;
  std::size_t active_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

}  // namespace flips::common
