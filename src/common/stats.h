// Small numeric helpers shared by the data, selection and job layers.
#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

namespace flips::common {

/// L1-normalizes a non-negative vector (e.g. a label-count histogram)
/// into a probability distribution. All-zero input yields uniform.
inline std::vector<double> normalized(const std::vector<double>& counts) {
  std::vector<double> out(counts.size(), 0.0);
  double sum = 0.0;
  for (const double c : counts) sum += c;
  if (sum <= 0.0) {
    if (!out.empty()) {
      const double u = 1.0 / static_cast<double>(out.size());
      for (auto& v : out) v = u;
    }
    return out;
  }
  for (std::size_t i = 0; i < counts.size(); ++i) out[i] = counts[i] / sum;
  return out;
}

/// Jain's fairness index over resource shares: (sum x)^2 / (n * sum x^2).
/// 1.0 means perfectly even; 1/n means one party got everything.
template <typename T>
double jain_index(const std::vector<T>& shares) {
  if (shares.empty()) return 0.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const T& s : shares) {
    const double x = static_cast<double>(s);
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq <= 0.0) return 0.0;
  return (sum * sum) / (static_cast<double>(shares.size()) * sum_sq);
}

/// Shannon entropy (nats) of a probability vector.
inline double entropy(const std::vector<double>& p) {
  double h = 0.0;
  for (const double v : p) {
    if (v > 0.0) h -= v * std::log(v);
  }
  return h;
}

inline double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (const double x : v) s += x;
  return s / static_cast<double>(v.size());
}

inline double l2_norm(const std::vector<double>& v) {
  double s = 0.0;
  for (const double x : v) s += x * x;
  return std::sqrt(s);
}

inline double l1_distance(const std::vector<double>& a,
                          const std::vector<double>& b) {
  double s = 0.0;
  const std::size_t n = a.size() < b.size() ? a.size() : b.size();
  for (std::size_t i = 0; i < n; ++i) s += std::fabs(a[i] - b[i]);
  return s;
}

}  // namespace flips::common
