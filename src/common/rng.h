// Deterministic, copyable PRNG used everywhere seeds matter.
//
// std::normal_distribution and friends are implementation-defined, so a
// libstdc++ build and a libc++ build would produce different federations
// from the same seed. Every distribution here is implemented directly
// (splitmix64 core, Box-Muller normals, Marsaglia-Tsang gammas) so runs
// reproduce bit-for-bit across compilers and platforms.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

namespace flips::common {

/// Derives a seed for a private per-(round, party) RNG stream from the
/// job seed. The FL job gives every party its own stream so local
/// training can run on any number of worker threads and still draw the
/// exact same randomness — results are bit-identical across thread
/// counts. Splitmix-style finalizer; adjacent inputs give uncorrelated
/// streams.
inline std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t round,
                              std::uint64_t party) {
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ull * (round + 1) +
                    0xBF58476D1CE4E5B9ull * (party + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) : state_(seed) {
    // Warm up so adjacent seeds do not yield correlated first draws.
    next();
    next();
  }

  /// Raw 64-bit draw (splitmix64).
  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform index in [0, n). Returns 0 when n == 0.
  std::size_t uniform_index(std::size_t n) {
    if (n == 0) return 0;
    return static_cast<std::size_t>(next() % n);
  }

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  double normal() {
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * 3.141592653589793238462643 * u2);
  }

  double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }

  /// Gamma(shape, 1) via Marsaglia-Tsang; shape < 1 boosted per their note.
  double gamma(double shape) {
    if (shape < 1.0) {
      const double u = uniform();
      return gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
    }
    const double d = shape - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    for (;;) {
      double x = normal();
      double v = 1.0 + c * x;
      if (v <= 0.0) continue;
      v = v * v * v;
      const double u = uniform();
      if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
      if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
        return d * v;
      }
    }
  }

  /// Symmetric Dirichlet(alpha) draw over k categories.
  std::vector<double> dirichlet(double alpha, std::size_t k) {
    std::vector<double> out(k, 0.0);
    double sum = 0.0;
    for (auto& v : out) {
      v = gamma(alpha);
      sum += v;
    }
    if (sum <= 0.0) {
      for (auto& v : out) v = 1.0 / static_cast<double>(k);
      return out;
    }
    for (auto& v : out) v /= sum;
    return out;
  }

  /// Dirichlet with per-category concentrations.
  std::vector<double> dirichlet(const std::vector<double>& alphas) {
    std::vector<double> out(alphas.size(), 0.0);
    double sum = 0.0;
    for (std::size_t i = 0; i < alphas.size(); ++i) {
      out[i] = gamma(alphas[i] > 0.0 ? alphas[i] : 1e-6);
      sum += out[i];
    }
    if (sum <= 0.0) {
      for (auto& v : out) v = 1.0 / static_cast<double>(out.size());
      return out;
    }
    for (auto& v : out) v /= sum;
    return out;
  }

  /// Draws an index from an (unnormalized) weight vector.
  std::size_t categorical(const std::vector<double>& weights) {
    double total = 0.0;
    for (const double w : weights) total += w;
    if (total <= 0.0) return uniform_index(weights.size());
    double u = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      u -= weights[i];
      if (u <= 0.0) return i;
    }
    return weights.size() - 1;
  }

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[uniform_index(i)]);
    }
  }

 private:
  std::uint64_t state_;
};

}  // namespace flips::common
