#include "data/drift.h"

#include <algorithm>
#include <numeric>

#include "common/stats.h"

namespace flips::data {

DriftResult apply_label_drift(const SyntheticSpec& spec,
                              const std::vector<Dataset>& party_data,
                              const DriftConfig& config) {
  DriftResult result;
  result.party_data = party_data;
  if (party_data.empty()) return result;

  common::Rng rng(config.seed);
  const std::size_t n = party_data.size();
  const auto affected = static_cast<std::size_t>(
      config.affected_fraction * static_cast<double>(n) + 0.5);

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);

  double total_shift = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t p = order[i];
    Dataset& party = result.party_data[p];
    const auto before = common::normalized(label_distribution(party));
    if (i < affected && party.num_classes > 0) {
      for (std::size_t s = 0; s < party.labels.size(); ++s) {
        const auto rotated = static_cast<std::uint32_t>(
            (party.labels[s] + config.label_rotation) % party.num_classes);
        party.labels[s] = rotated;
        party.features[s] = sample_features(spec, rotated, rng);
      }
    }
    const auto after = common::normalized(label_distribution(party));
    total_shift += common::l1_distance(before, after);
  }
  result.mean_shift = total_shift / static_cast<double>(n);
  return result;
}

}  // namespace flips::data
