// Synthetic stand-ins for the paper's four datasets. Each spec fixes a
// class-prototype geometry (deterministic per spec) so that "MIT-BIH
// ECG" means the same learning problem in every bench and test; the
// federation builder then controls *who holds which labels*, which is
// the axis FLIPS actually studies.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace flips::data {

struct SyntheticSpec {
  std::string name = "synthetic";
  std::size_t feature_dim = 32;
  std::size_t num_classes = 5;
  /// Global class marginals (sums to 1). Heavy skew here is what makes
  /// the rare-label reproduction (Fig. 13) meaningful.
  std::vector<double> class_priors;
  /// Distance between class prototype means, in units of feature noise.
  double class_separation = 2.4;
  double feature_noise = 1.0;
  /// Seed for the class prototype geometry (fixed per dataset so every
  /// federation drawn from a spec shares one ground truth).
  std::uint64_t prototype_seed = 0xF11B5;

  /// Specs are compared field-for-field (the bench layer's federation
  /// cache keys on the whole spec, so new fields are covered
  /// automatically).
  friend bool operator==(const SyntheticSpec&,
                         const SyntheticSpec&) = default;
};

/// The four paper datasets (reduced-scale synthetic analogues).
struct DatasetCatalog {
  static SyntheticSpec ecg();            ///< MIT-BIH: 5 beat classes, skewed
  static SyntheticSpec ham10000();       ///< 7 lesion classes, skewed
  static SyntheticSpec ham() { return ham10000(); }
  static SyntheticSpec femnist();        ///< 62 classes, mild skew
  static SyntheticSpec fashion_mnist();  ///< 10 classes, uniform
};

struct Dataset {
  std::vector<std::vector<double>> features;
  std::vector<std::uint32_t> labels;
  std::size_t num_classes = 0;

  std::size_t size() const { return labels.size(); }
};

/// Per-class sample counts of a dataset (length = num_classes).
using LabelDistribution = std::vector<double>;

[[nodiscard]] LabelDistribution label_distribution(const Dataset& dataset);

/// Samples one feature vector for `label` under `spec`. The prototype
/// geometry depends only on the spec; `rng` drives the additive noise.
[[nodiscard]] std::vector<double> sample_features(const SyntheticSpec& spec,
                                                  std::uint32_t label,
                                                  common::Rng& rng);

struct Batch {
  std::vector<std::vector<double>> features;
  std::vector<std::uint32_t> labels;
};

/// Tiny image-patch source for the conv-model microbenches: class c is a
/// bright blob at a class-specific position on a noisy background.
class ImagePatchGenerator {
 public:
  ImagePatchGenerator(std::size_t image_size, std::size_t num_classes,
                      common::Rng rng);

  [[nodiscard]] Batch sample(std::size_t n);

  std::size_t image_size() const { return image_size_; }
  std::size_t num_classes() const { return num_classes_; }

 private:
  std::size_t image_size_;
  std::size_t num_classes_;
  common::Rng rng_;
};

}  // namespace flips::data
