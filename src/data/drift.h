// Label-prior drift: a fraction of parties rotate their class labels,
// invalidating (part of) a previously computed cluster structure. Used
// by the re-clustering study (paper §8 future work 2).
#pragma once

#include "data/synthetic.h"

namespace flips::data {

struct DriftConfig {
  /// Fraction of parties whose data drifts (chosen at random).
  double affected_fraction = 0.5;
  /// Classes rotate by this amount: label -> (label + rotation) % C.
  std::size_t label_rotation = 1;
  std::uint64_t seed = 0;
};

struct DriftResult {
  std::vector<Dataset> party_data;
  /// Mean L1 shift between each party's old and new normalized label
  /// distribution (0 = no drift, 2 = disjoint support).
  double mean_shift = 0.0;
};

/// Features of drifted samples are re-sampled from the new class so the
/// feature-label mapping stays consistent with `spec`.
[[nodiscard]] DriftResult apply_label_drift(
    const SyntheticSpec& spec, const std::vector<Dataset>& party_data,
    const DriftConfig& config);

}  // namespace flips::data
