// Synthetic non-IID federation builder. Two partition schemes:
//  - kDirichlet: each party's label distribution is drawn from
//    Dirichlet(alpha * priors * C) — the standard label-skew protocol
//    (lower alpha => more skew), respecting the dataset's global priors;
//  - kPlantedModes: `num_modes` ground-truth label-distribution modes
//    with parties assigned round-robin — used by the Fig. 2 elbow bench
//    where the true cluster count must be known.
#pragma once

#include "data/synthetic.h"

namespace flips::data {

enum class PartitionScheme {
  kDirichlet,
  kPlantedModes,
};

struct FederatedDataConfig {
  SyntheticSpec spec;
  std::size_t num_parties = 100;
  std::size_t samples_per_party = 80;
  double alpha = 0.3;
  PartitionScheme scheme = PartitionScheme::kDirichlet;
  std::size_t num_modes = 10;          ///< kPlantedModes only
  double mode_jitter = 0.04;           ///< within-mode distribution noise
  std::size_t test_per_class = 100;    ///< balanced global test set
  std::uint64_t seed = 42;
};

struct FederatedData {
  std::vector<Dataset> party_data;
  Dataset global_test;
  /// Per-party label histograms (what parties submit for clustering).
  std::vector<LabelDistribution> label_distributions;
};

[[nodiscard]] FederatedData build_federated_data(
    const FederatedDataConfig& config);

}  // namespace flips::data
