#include "data/synthetic.h"

#include <cmath>

namespace flips::data {

namespace {

SyntheticSpec make_spec(std::string name, std::size_t feature_dim,
                        std::size_t num_classes,
                        std::vector<double> class_priors,
                        double class_separation,
                        std::uint64_t prototype_seed) {
  SyntheticSpec spec;
  spec.name = std::move(name);
  spec.feature_dim = feature_dim;
  spec.num_classes = num_classes;
  spec.class_priors = std::move(class_priors);
  spec.class_separation = class_separation;
  spec.prototype_seed = prototype_seed;
  return spec;
}

std::vector<double> uniform_priors(std::size_t num_classes) {
  return std::vector<double>(num_classes, 1.0 / static_cast<double>(
                                              num_classes));
}

}  // namespace

SyntheticSpec DatasetCatalog::ecg() {
  // MIT-BIH beat classes N, S, V, F, Q with the real database's heavy
  // skew (S at 2.5 % is the Fig. 13 under-represented label).
  return make_spec("ecg", 32, 5, {0.899, 0.025, 0.053, 0.008, 0.015}, 1.4,
                   0xEC6u);
}

SyntheticSpec DatasetCatalog::ham10000() {
  // HAM10000 lesion types: nv, mel, bkl, bcc, akiec, vasc, df.
  return make_spec("ham10000", 48, 7,
                   {0.670, 0.111, 0.110, 0.051, 0.033, 0.014, 0.011}, 2.6,
                   0x4A3Du);
}

SyntheticSpec DatasetCatalog::femnist() {
  // 62 character classes; writers induce the non-IID-ness, so global
  // priors stay uniform and Dirichlet skew does the rest.
  return make_spec("femnist", 64, 62, uniform_priors(62), 3.2, 0xFE33u);
}

SyntheticSpec DatasetCatalog::fashion_mnist() {
  return make_spec("fashion_mnist", 64, 10, uniform_priors(10), 3.0,
                   0xFA51u);
}

LabelDistribution label_distribution(const Dataset& dataset) {
  LabelDistribution counts(dataset.num_classes, 0.0);
  for (const std::uint32_t label : dataset.labels) {
    if (label < counts.size()) counts[label] += 1.0;
  }
  return counts;
}

std::vector<double> sample_features(const SyntheticSpec& spec,
                                    std::uint32_t label, common::Rng& rng) {
  // Prototype for `label`: a deterministic Gaussian direction scaled to
  // `class_separation`. Re-deriving it per call keeps the generator
  // stateless; the per-class Rng seed makes it identical across calls.
  common::Rng proto_rng(spec.prototype_seed ^
                        (0x9E37u + 0x1000193u * (label + 1)));
  std::vector<double> x(spec.feature_dim, 0.0);
  double norm = 0.0;
  for (auto& v : x) {
    v = proto_rng.normal();
    norm += v * v;
  }
  norm = std::sqrt(norm);
  const double scale = norm > 0.0 ? spec.class_separation / norm *
                                        std::sqrt(static_cast<double>(
                                            spec.feature_dim))
                                  : 0.0;
  for (auto& v : x) {
    v = v * scale + spec.feature_noise * rng.normal();
  }
  return x;
}

ImagePatchGenerator::ImagePatchGenerator(std::size_t image_size,
                                         std::size_t num_classes,
                                         common::Rng rng)
    : image_size_(image_size), num_classes_(num_classes), rng_(rng) {}

Batch ImagePatchGenerator::sample(std::size_t n) {
  Batch batch;
  batch.features.reserve(n);
  batch.labels.reserve(n);
  const std::size_t dim = image_size_ * image_size_;
  for (std::size_t i = 0; i < n; ++i) {
    const auto label =
        static_cast<std::uint32_t>(rng_.uniform_index(num_classes_));
    std::vector<double> img(dim);
    for (auto& v : img) v = 0.1 * rng_.normal();
    // Class-specific 3x3 bright blob; positions spread along the
    // diagonal so classes stay linearly separable-ish but not trivial.
    const std::size_t span = image_size_ > 3 ? image_size_ - 3 : 1;
    const std::size_t cx = (label * span) / (num_classes_ + 1) + 1;
    const std::size_t cy = image_size_ - 2 - cx % span;
    for (std::size_t dy = 0; dy < 3; ++dy) {
      for (std::size_t dx = 0; dx < 3; ++dx) {
        const std::size_t x = (cx + dx) % image_size_;
        const std::size_t y = (cy + dy) % image_size_;
        img[y * image_size_ + x] += 1.0 + 0.2 * rng_.normal();
      }
    }
    batch.features.push_back(std::move(img));
    batch.labels.push_back(label);
  }
  return batch;
}

}  // namespace flips::data
