#include "data/federated.h"

#include <algorithm>

namespace flips::data {

namespace {

/// Per-party label distribution under the configured scheme.
std::vector<std::vector<double>> party_label_priors(
    const FederatedDataConfig& config, common::Rng& rng) {
  const std::size_t c = config.spec.num_classes;
  std::vector<double> priors = config.spec.class_priors;
  if (priors.size() != c) priors.assign(c, 1.0 / static_cast<double>(c));

  std::vector<std::vector<double>> out;
  out.reserve(config.num_parties);

  if (config.scheme == PartitionScheme::kPlantedModes) {
    // Ground-truth modes must be *distinct* (unlike Dirichlet draws
    // under skewed priors, which all concentrate on the head class, so
    // no clustering could recover them). Mode m peaks on a rotating
    // (main, secondary) label pair with a stride that keeps up to
    // C * (C - 1) modes pairwise different; parties copy their mode's
    // distribution with a little jitter so modes stay recoverable.
    std::vector<std::vector<double>> modes;
    const std::size_t num_modes = std::max<std::size_t>(1, config.num_modes);
    for (std::size_t m = 0; m < num_modes; ++m) {
      std::vector<double> mode(c, 0.2 / static_cast<double>(c));
      const std::size_t main_label = m % c;
      const std::size_t secondary =
          (main_label + 1 + m / c) % c;
      mode[main_label] += 0.5;
      mode[secondary == main_label ? (main_label + 1) % c : secondary] +=
          0.3;
      modes.push_back(std::move(mode));
    }
    for (std::size_t p = 0; p < config.num_parties; ++p) {
      std::vector<double> dist = modes[p % num_modes];
      double sum = 0.0;
      for (auto& v : dist) {
        v = std::max(0.0, v + config.mode_jitter * rng.normal());
        sum += v;
      }
      if (sum <= 0.0) {
        dist.assign(c, 1.0 / static_cast<double>(c));
      } else {
        for (auto& v : dist) v /= sum;
      }
      out.push_back(std::move(dist));
    }
    return out;
  }

  // kDirichlet: concentration alpha * priors * C keeps the *expected*
  // federation marginal equal to the dataset priors while alpha tunes
  // per-party concentration.
  std::vector<double> concentration(c);
  for (std::size_t j = 0; j < c; ++j) {
    concentration[j] = config.alpha * priors[j] * static_cast<double>(c);
  }
  for (std::size_t p = 0; p < config.num_parties; ++p) {
    out.push_back(rng.dirichlet(concentration));
  }
  return out;
}

}  // namespace

FederatedData build_federated_data(const FederatedDataConfig& config) {
  FederatedData data;
  common::Rng rng(config.seed);
  const std::size_t c = config.spec.num_classes;

  const auto priors = party_label_priors(config, rng);

  data.party_data.reserve(config.num_parties);
  data.label_distributions.reserve(config.num_parties);
  for (std::size_t p = 0; p < config.num_parties; ++p) {
    Dataset party;
    party.num_classes = c;
    party.features.reserve(config.samples_per_party);
    party.labels.reserve(config.samples_per_party);
    for (std::size_t s = 0; s < config.samples_per_party; ++s) {
      const auto label =
          static_cast<std::uint32_t>(rng.categorical(priors[p]));
      party.labels.push_back(label);
      party.features.push_back(sample_features(config.spec, label, rng));
    }
    data.label_distributions.push_back(label_distribution(party));
    data.party_data.push_back(std::move(party));
  }

  // Balanced held-out test set: per-class recall (and hence balanced
  // accuracy) gets equal evidence for rare and common labels.
  data.global_test.num_classes = c;
  for (std::uint32_t label = 0; label < c; ++label) {
    for (std::size_t s = 0; s < config.test_per_class; ++s) {
      data.global_test.labels.push_back(label);
      data.global_test.features.push_back(
          sample_features(config.spec, label, rng));
    }
  }
  return data;
}

}  // namespace flips::data
