#include "net/device.h"

namespace flips::net {

FleetMix FleetMix::senior_care() {
  FleetMix mix;
  // Churn means keep mean_up / (mean_up + mean_down) equal to the
  // availability column, so the Markov trace and the Bernoulli field
  // agree on long-run reachability.
  mix.entries = {
      {{"wearable", 8.0, 1.0, 0.85, 0.05, 510.0, 90.0}, 0.45},
      {{"budget-phone", 2.5, 5.0, 0.92, 0.02, 552.0, 48.0}, 0.25},
      {{"flagship-phone", 1.2, 20.0, 0.95, 0.01, 570.0, 30.0}, 0.15},
      {{"home-gateway", 1.0, 50.0, 0.99, 0.005, 1188.0, 12.0}, 0.10},
      {{"workstation", 0.4, 100.0, 0.995, 0.002, 2388.0, 12.0}, 0.05},
  };
  return mix;
}

FleetBuilder::FleetBuilder(FleetMix mix) : mix_(std::move(mix)) {
  for (const auto& entry : mix_.entries) total_weight_ += entry.weight;
}

Device FleetBuilder::sample(common::Rng& rng) const {
  if (mix_.entries.empty()) return {};
  double u = rng.uniform() * total_weight_;
  for (const auto& entry : mix_.entries) {
    u -= entry.weight;
    if (u <= 0.0) return entry.device;
  }
  return mix_.entries.back().device;
}

}  // namespace flips::net
