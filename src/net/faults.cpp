#include "net/faults.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace flips::net {
namespace {

// Distinct stream salts so churn, crash, and link draws never alias
// even when they share an event id.
constexpr std::uint64_t kChurnSalt = 0xFA01'7C00'0000'0001ull;
constexpr std::uint64_t kCrashSalt = 0xFA01'7C00'0000'0002ull;
constexpr std::uint64_t kLinkSalt = 0xFA01'7C00'0000'0003ull;

/// Exponential variate with the given mean; strictly positive so
/// intervals always advance.
double draw_exponential(common::Rng& rng, double mean) {
  const double u = rng.uniform();
  return -mean * std::log1p(-std::min(u, 0.999999999));
}

void require(bool ok, const std::string& what) {
  if (!ok) throw std::invalid_argument("FaultConfig: " + what);
}

}  // namespace

double FaultConfig::backoff_s(std::size_t attempt) const {
  double delay = backoff_base_s;
  for (std::size_t i = 0; i < attempt; ++i) delay *= backoff_mult;
  return delay;
}

void FaultConfig::validate() const {
  require(churn >= 0.0 && std::isfinite(churn), "churn must be >= 0");
  require(crash_rate >= 0.0 && crash_rate <= 1.0,
          "crash rate must be in [0, 1]");
  require(link_fault_rate >= 0.0 && link_fault_rate < 1.0,
          "link fault rate must be in [0, 1)");
  require(link_slowdown >= 1.0, "link slowdown must be >= 1");
  require(max_retries <= 64, "max retries must be <= 64");
  require(backoff_base_s >= 0.0, "backoff base must be >= 0");
  require(backoff_mult >= 1.0, "backoff multiplier must be >= 1");
  require(min_quorum >= 0.0 && min_quorum <= 1.0,
          "min quorum must be in [0, 1]");
}

FaultPlan::FaultPlan(std::uint64_t seed, const FaultConfig& config,
                     std::size_t num_parties)
    : seed_(seed), config_(config), traces_(num_parties) {
  config_.validate();
}

void FaultPlan::restart_trace(std::size_t party, Trace& trace,
                              double mean_up_s, double mean_down_s) {
  trace.rng = common::Rng(common::mix_seed(seed_, kChurnSalt, party));
  // Stationary start state: up with probability mean_up / (up + down),
  // so the long-run up fraction matches the device's availability.
  trace.up =
      trace.rng.uniform() < mean_up_s / (mean_up_s + mean_down_s);
  trace.interval_begin_s = 0.0;
  trace.interval_end_s = draw_exponential(
      trace.rng, trace.up ? mean_up_s : mean_down_s);
  trace.started = true;
}

bool FaultPlan::available(std::size_t party, double time_s,
                          double mean_up_s, double mean_down_s) {
  if (config_.churn <= 0.0 || mean_up_s <= 0.0 || mean_down_s <= 0.0) {
    return true;
  }
  const double scaled_down_s = mean_down_s * config_.churn;
  Trace& trace = traces_.at(party);
  // Non-monotone query (e.g. a deadline-clamped round): replay the
  // trace from t = 0 — same seed, same intervals, so the answer is
  // still a pure function of (seed, party, time).
  if (!trace.started || time_s < trace.interval_begin_s) {
    restart_trace(party, trace, mean_up_s, scaled_down_s);
  }
  while (time_s >= trace.interval_end_s) {
    trace.up = !trace.up;
    trace.interval_begin_s = trace.interval_end_s;
    trace.interval_end_s += draw_exponential(
        trace.rng, trace.up ? mean_up_s : scaled_down_s);
  }
  return trace.up;
}

bool FaultPlan::crashes(std::size_t party, std::uint64_t event,
                        double device_fault_rate) const {
  const double p =
      1.0 - (1.0 - std::clamp(device_fault_rate, 0.0, 1.0)) *
                (1.0 - config_.crash_rate);
  if (p <= 0.0) return false;
  common::Rng rng(common::mix_seed(seed_, kCrashSalt ^ event, party));
  return rng.uniform() < p;
}

LinkFault FaultPlan::transfer(std::size_t party,
                              std::uint64_t event) const {
  LinkFault fault;
  if (config_.link_fault_rate <= 0.0) return fault;
  common::Rng rng(common::mix_seed(seed_, kLinkSalt ^ event, party));
  if (rng.uniform() < config_.link_fault_rate) {
    fault.failed = true;
  } else if (rng.uniform() < config_.link_fault_rate) {
    fault.slowdown = config_.link_slowdown;
  }
  return fault;
}

}  // namespace flips::net
