// Wire codecs for model updates (the bytes the comm-cost benches
// report). Three schemes:
//
//   kDense64  raw doubles — the legacy wire format (dim * 8 bytes, no
//             header, so dense byte accounting matches PR 1-3 exactly).
//   kQuant8   stochastic int8 quantization with one double scale per
//             fixed-size chunk (QSGD-style). Unbiased: E[decode] =
//             value; per-coordinate error < the chunk scale. ~7.8x
//             smaller than dense at the default chunk of 256.
//   kTopK     magnitude top-k sparsification (deterministic,
//             index-ascending layout; ties broken by lower index so
//             the wire image is platform-independent). Pairs with
//             client-side error-feedback residuals, which the FL job
//             maintains, to stay convergent.
//
// Encode/decode work on borrowed buffers and reuse the EncodedUpdate /
// CodecWorkspace storage, so the steady-state round loop allocates
// nothing on this path.
//
// The second half of this header is the serving plane's framing layer:
// length-prefixed binary frames (magic + version + type + status +
// payload length) with an incremental FrameDecoder that tolerates
// partial reads and rejects malformed streams (bad magic, unknown
// version, oversized length) without ever over-reading — the wire
// format `flips_serve` and `flips_loadgen` speak over TCP/UDS.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"

namespace flips::net {

enum class Codec {
  kDense64,
  kQuant8,
  kTopK,
};

const char* to_string(Codec codec);

/// Parses "dense64" / "quant8" / "topk" (the --codec flag values).
std::optional<Codec> codec_from_string(std::string_view name);

struct CodecConfig {
  Codec codec = Codec::kDense64;
  /// kQuant8: coordinates sharing one scale. Smaller chunks track local
  /// magnitude better but pay more scale overhead (8 bytes per chunk).
  std::size_t quant_chunk = 256;
  /// kTopK: fraction of coordinates kept (at least 1).
  double topk_fraction = 0.05;
};

/// One encoded update. Which members are populated depends on the
/// codec; wire_bytes() is the serialized size the byte accounting
/// charges (the simulator never materializes the actual byte stream).
struct EncodedUpdate {
  Codec codec = Codec::kDense64;
  std::uint32_t dim = 0;

  std::vector<std::int8_t> q;      ///< kQuant8: dim quantized values
  std::vector<double> scales;      ///< kQuant8: one per chunk

  std::vector<std::uint32_t> indices;  ///< kTopK: ascending coordinates
  std::vector<double> values;          ///< kTopK: matching values

  [[nodiscard]] std::size_t wire_bytes() const;
};

/// Reusable encode scratch (top-k candidate ordering). Keep one per
/// worker thread.
struct CodecWorkspace {
  std::vector<std::uint32_t> order;
};

class UpdateCodec {
 public:
  explicit UpdateCodec(CodecConfig config);

  const CodecConfig& config() const { return config_; }

  /// Encodes `update` into `out` (fully overwritten). `rng` feeds the
  /// stochastic rounding of kQuant8 (all-zero chunks draw nothing);
  /// kDense64 and kTopK never draw. Deterministic given (update, rng
  /// state).
  void encode(const std::vector<double>& update, common::Rng& rng,
              EncodedUpdate& out, CodecWorkspace& workspace) const;

  /// Reconstructs the update into `out` (resized to the encoded dim;
  /// kTopK zero-fills the dropped coordinates).
  void decode(const EncodedUpdate& in, std::vector<double>& out) const;

 private:
  CodecConfig config_;
};

// ---------------------------------------------------------------------
// Framing layer (the serving wire format).
//
// Every frame is a 12-byte little-endian header followed by an opaque
// payload:
//
//   offset  size  field
//   0       4     magic 0x53504C46 ("FLPS")
//   4       1     protocol version (kFrameVersion)
//   5       1     FrameType
//   6       2     FrameStatus (kOk on requests)
//   8       4     payload length (<= kMaxFramePayload)
//
// The payload encoding is per-type (serve/protocol.h); the framing
// layer treats it as bytes.

/// Request/response kinds. Responses reuse the request's type; errors
/// are carried in FrameStatus, not a separate type.
enum class FrameType : std::uint8_t {
  kHello = 1,        ///< tenant name registration
  kOpenSession = 2,  ///< ScenarioSpec key=value submission
  kStep = 3,         ///< run one round of the tenant's session
  kResult = 4,       ///< fetch final parameters of a finished session
  kShutdown = 5,     ///< ask the server to drain and exit
  kMetrics = 6,      ///< live Prometheus text snapshot (no hello needed)
};

enum class FrameStatus : std::uint16_t {
  kOk = 0,
  kRejected = 1,         ///< admission control: tenant queue full
  kBadFrame = 2,         ///< malformed frame or payload
  kBadScenario = 3,      ///< ScenarioSpec failed validation
  kNoSession = 4,        ///< step/result before kOpenSession
  kSessionDone = 5,      ///< step on an already-finished session
  kShuttingDown = 6,     ///< server draining; no new work accepted
  kDuplicateTenant = 7,  ///< hello with an already-registered name
  kNotFinished = 8,      ///< result requested before the last round
};

struct Frame {
  FrameType type = FrameType::kHello;
  FrameStatus status = FrameStatus::kOk;
  std::vector<std::uint8_t> payload;
};

inline constexpr std::uint32_t kFrameMagic = 0x53504C46u;  // "FLPS"
inline constexpr std::uint8_t kFrameVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 12;
/// Generous bound (64 MiB) — a final-parameters payload for any model
/// this repo builds is well under it; anything larger is a corrupt or
/// hostile length field.
inline constexpr std::size_t kMaxFramePayload = std::size_t{1} << 26;

/// Appends the wire image of `frame` to `out` (header + payload).
void encode_frame(const Frame& frame, std::vector<std::uint8_t>& out);

enum class FrameDecodeResult {
  kFrame,     ///< one complete frame was produced
  kNeedMore,  ///< buffered bytes form only a frame prefix
  kError,     ///< malformed stream — drop the connection
};

/// Incremental frame parser over a byte stream. feed() buffered bytes
/// as they arrive; next() yields complete frames one at a time and
/// never consumes past the frame it returns. A kError verdict is
/// sticky: framing has no resync point, so the caller must close the
/// connection (after optionally sending a kBadFrame status reply).
class FrameDecoder {
 public:
  void feed(const std::uint8_t* data, std::size_t size);

  /// Fills `frame` and returns kFrame when a complete, well-formed
  /// frame is buffered. Validates magic, version, and payload length
  /// BEFORE the payload arrives, so a hostile length field can never
  /// make the decoder buffer unboundedly.
  FrameDecodeResult next(Frame& frame);

  /// Human-readable reason for the last kError verdict.
  const std::string& error() const { return error_; }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;  ///< bytes of buffer_ already parsed
  bool failed_ = false;
  std::string error_;
};

}  // namespace flips::net
