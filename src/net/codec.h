// Wire codecs for model updates (the bytes the comm-cost benches
// report). Three schemes:
//
//   kDense64  raw doubles — the legacy wire format (dim * 8 bytes, no
//             header, so dense byte accounting matches PR 1-3 exactly).
//   kQuant8   stochastic int8 quantization with one double scale per
//             fixed-size chunk (QSGD-style). Unbiased: E[decode] =
//             value; per-coordinate error < the chunk scale. ~7.8x
//             smaller than dense at the default chunk of 256.
//   kTopK     magnitude top-k sparsification (deterministic,
//             index-ascending layout; ties broken by lower index so
//             the wire image is platform-independent). Pairs with
//             client-side error-feedback residuals, which the FL job
//             maintains, to stay convergent.
//
// Encode/decode work on borrowed buffers and reuse the EncodedUpdate /
// CodecWorkspace storage, so the steady-state round loop allocates
// nothing on this path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "common/rng.h"

namespace flips::net {

enum class Codec {
  kDense64,
  kQuant8,
  kTopK,
};

const char* to_string(Codec codec);

/// Parses "dense64" / "quant8" / "topk" (the --codec flag values).
std::optional<Codec> codec_from_string(std::string_view name);

struct CodecConfig {
  Codec codec = Codec::kDense64;
  /// kQuant8: coordinates sharing one scale. Smaller chunks track local
  /// magnitude better but pay more scale overhead (8 bytes per chunk).
  std::size_t quant_chunk = 256;
  /// kTopK: fraction of coordinates kept (at least 1).
  double topk_fraction = 0.05;
};

/// One encoded update. Which members are populated depends on the
/// codec; wire_bytes() is the serialized size the byte accounting
/// charges (the simulator never materializes the actual byte stream).
struct EncodedUpdate {
  Codec codec = Codec::kDense64;
  std::uint32_t dim = 0;

  std::vector<std::int8_t> q;      ///< kQuant8: dim quantized values
  std::vector<double> scales;      ///< kQuant8: one per chunk

  std::vector<std::uint32_t> indices;  ///< kTopK: ascending coordinates
  std::vector<double> values;          ///< kTopK: matching values

  [[nodiscard]] std::size_t wire_bytes() const;
};

/// Reusable encode scratch (top-k candidate ordering). Keep one per
/// worker thread.
struct CodecWorkspace {
  std::vector<std::uint32_t> order;
};

class UpdateCodec {
 public:
  explicit UpdateCodec(CodecConfig config);

  const CodecConfig& config() const { return config_; }

  /// Encodes `update` into `out` (fully overwritten). `rng` feeds the
  /// stochastic rounding of kQuant8 (all-zero chunks draw nothing);
  /// kDense64 and kTopK never draw. Deterministic given (update, rng
  /// state).
  void encode(const std::vector<double>& update, common::Rng& rng,
              EncodedUpdate& out, CodecWorkspace& workspace) const;

  /// Reconstructs the update into `out` (resized to the encoded dim;
  /// kTopK zero-fills the dropped coordinates).
  void decode(const EncodedUpdate& in, std::vector<double>& out) const;

 private:
  CodecConfig config_;
};

}  // namespace flips::net
