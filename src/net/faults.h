// Deterministic fault-injection plane: seeded device churn, mid-round
// crashes, and transient link faults for the simulated federation.
//
// Three failure processes, all pure functions of (plan seed, party,
// event), so fault sequences are bit-identical across thread counts:
//
//   churn       Markov on/off availability traces per device. Each
//               party alternates exponential up/down intervals with the
//               device's mean_up_s/mean_down_s (the stationary up
//               fraction equals the legacy Device::availability). The
//               `churn` knob scales mean downtime: 0 disables churn,
//               1 reproduces the device trace, >1 makes outages longer.
//   crashes     per-dispatch Bernoulli loss combining the device's
//               fault_rate with the plan-wide crash_rate. A crashed
//               dispatch consumes its full simulated duration before
//               the server notices (mid-training crash), unlike churn,
//               which fails instantly at dispatch.
//   link faults per-transfer failure (uplink lost after training, the
//               bytes are charged as waste) or slowdown (transfer takes
//               link_slowdown x as long but folds normally).
//
// Threading contract: `available()` keeps a cached per-party trace
// cursor and must only be called from the session's stepping thread.
// `crashes()` and `transfer()` build a fresh RNG stream per call and
// are safe from worker threads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace flips::net {

/// Knobs for the fault plan. Default-constructed = no faults, and every
/// session path is byte-identical to a fault-free build.
struct FaultConfig {
  double churn = 0.0;            ///< downtime scale; 0 = no churn
  double crash_rate = 0.0;       ///< extra per-dispatch crash probability
  double link_fault_rate = 0.0;  ///< per-transfer uplink loss probability
  double link_slowdown = 2.0;    ///< duration multiplier on a slow link
  std::size_t max_retries = 2;   ///< retry/backfill waves per dispatch
  double backoff_base_s = 0.5;   ///< first retry delay (simulated)
  double backoff_mult = 2.0;     ///< exponential backoff multiplier
  double min_quorum = 0.0;       ///< sync: skip the fold below this
                                 ///< responded/cohort fraction

  bool operator==(const FaultConfig&) const = default;

  bool enabled() const {
    return churn > 0.0 || crash_rate > 0.0 || link_fault_rate > 0.0;
  }

  /// Simulated delay before retry attempt `attempt` (0-based):
  /// backoff_base_s * backoff_mult^attempt.
  double backoff_s(std::size_t attempt) const;

  /// Throws std::invalid_argument when any knob is out of range.
  void validate() const;
};

/// Outcome of a single simulated uplink transfer.
struct LinkFault {
  bool failed = false;     ///< update lost in transit
  double slowdown = 1.0;   ///< duration multiplier when it survives
};

/// Seeded fault schedule over a fixed fleet. Copyable/movable; a
/// default-constructed plan reports enabled() == false and never fails
/// anything.
class FaultPlan {
 public:
  FaultPlan() = default;
  FaultPlan(std::uint64_t seed, const FaultConfig& config,
            std::size_t num_parties);

  bool enabled() const { return config_.enabled(); }
  const FaultConfig& config() const { return config_; }

  /// Whether `party` is reachable at simulated time `time_s` under its
  /// Markov on/off trace. Devices with mean_up_s <= 0 or
  /// mean_down_s <= 0 never churn. Stepping thread only: the cached
  /// cursor advances forward and deterministically replays from t = 0
  /// when queried before its current interval.
  bool available(std::size_t party, double time_s, double mean_up_s,
                 double mean_down_s);

  /// Whether dispatch `event` for `party` crashes mid-training. The
  /// probability combines the device and plan rates:
  /// 1 - (1 - device_fault_rate) * (1 - crash_rate). Thread-safe.
  bool crashes(std::size_t party, std::uint64_t event,
               double device_fault_rate) const;

  /// Per-transfer link outcome for dispatch `event`. Thread-safe.
  LinkFault transfer(std::size_t party, std::uint64_t event) const;

 private:
  /// Cached churn cursor: the current interval is
  /// [interval_begin_s, interval_end_s) with state `up`.
  struct Trace {
    bool started = false;
    bool up = true;
    double interval_begin_s = 0.0;
    double interval_end_s = 0.0;
    common::Rng rng{0};
  };

  void restart_trace(std::size_t party, Trace& trace, double mean_up_s,
                     double mean_down_s);

  std::uint64_t seed_ = 0;
  FaultConfig config_;
  std::vector<Trace> traces_;
};

}  // namespace flips::net
