#include "net/codec.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.h"

namespace flips::net {

namespace {

/// Serialized-size model: every non-dense message carries a small
/// header (codec tag + dim + payload count). Dense is header-free so
/// its accounting matches the historical `dim * sizeof(double)`.
constexpr std::size_t kHeaderBytes = 16;

/// Encoded-wire-byte counters by codec kind, registered on first use
/// and cached so encode() only pays one relaxed fetch_add.
obs::Counter* encoded_bytes_counter(Codec codec) {
  static const std::array<obs::Counter*, 3> counters = [] {
    std::array<obs::Counter*, 3> a{};
    for (std::size_t i = 0; i < a.size(); ++i) {
      a[i] = &obs::Registry::global().counter(
          "flips_codec_encoded_bytes_total",
          {{"codec", to_string(static_cast<Codec>(i))}});
    }
    return a;
  }();
  return counters[static_cast<std::size_t>(codec)];
}

}  // namespace

const char* to_string(Codec codec) {
  switch (codec) {
    case Codec::kDense64:
      return "dense64";
    case Codec::kQuant8:
      return "quant8";
    case Codec::kTopK:
      return "topk";
  }
  return "unknown";
}

std::optional<Codec> codec_from_string(std::string_view name) {
  if (name == "dense64" || name == "dense") return Codec::kDense64;
  if (name == "quant8" || name == "q8") return Codec::kQuant8;
  if (name == "topk") return Codec::kTopK;
  return std::nullopt;
}

std::size_t EncodedUpdate::wire_bytes() const {
  switch (codec) {
    case Codec::kDense64:
      return static_cast<std::size_t>(dim) * sizeof(double);
    case Codec::kQuant8:
      return kHeaderBytes + q.size() * sizeof(std::int8_t) +
             scales.size() * sizeof(double);
    case Codec::kTopK:
      return kHeaderBytes + indices.size() * sizeof(std::uint32_t) +
             values.size() * sizeof(double);
  }
  return 0;
}

UpdateCodec::UpdateCodec(CodecConfig config) : config_(config) {
  if (config_.quant_chunk == 0) {
    throw std::invalid_argument("UpdateCodec: quant_chunk must be > 0");
  }
  if (!(config_.topk_fraction > 0.0) || config_.topk_fraction > 1.0) {
    throw std::invalid_argument(
        "UpdateCodec: topk_fraction must be in (0, 1]");
  }
}

void UpdateCodec::encode(const std::vector<double>& update,
                         common::Rng& rng, EncodedUpdate& out,
                         CodecWorkspace& workspace) const {
  const std::size_t dim = update.size();
  out.codec = config_.codec;
  out.dim = static_cast<std::uint32_t>(dim);
  out.q.clear();
  out.scales.clear();
  out.indices.clear();
  out.values.clear();

  switch (config_.codec) {
    case Codec::kDense64:
      // The dense "encoding" is the identity: the payload is a full
      // copy of the plaintext in out.values (decode reads it back).
      // The job loop skips encode entirely for dense — this path
      // exists for codec round-trip tests and benches.
      out.values.assign(update.begin(), update.end());
      break;

    case Codec::kQuant8: {
      const std::size_t chunk = config_.quant_chunk;
      out.q.resize(dim);
      out.scales.reserve((dim + chunk - 1) / chunk);
      for (std::size_t begin = 0; begin < dim; begin += chunk) {
        const std::size_t end = std::min(dim, begin + chunk);
        double max_abs = 0.0;
        for (std::size_t i = begin; i < end; ++i) {
          max_abs = std::max(max_abs, std::fabs(update[i]));
        }
        const double scale = max_abs / 127.0;
        out.scales.push_back(scale);
        if (scale == 0.0) {
          // All-zero chunk: deterministic zeros, no RNG draws (keeps
          // the draw count independent of chunk layout noise).
          for (std::size_t i = begin; i < end; ++i) out.q[i] = 0;
          continue;
        }
        for (std::size_t i = begin; i < end; ++i) {
          const double x = update[i] / scale;  // in [-127, 127]
          double lo = std::floor(x);
          const double frac = x - lo;
          // Stochastic rounding: unbiased, E[q * scale] = update[i].
          if (rng.uniform() < frac) lo += 1.0;
          lo = std::clamp(lo, -127.0, 127.0);
          out.q[i] = static_cast<std::int8_t>(lo);
        }
      }
      break;
    }

    case Codec::kTopK: {
      const auto k = std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 std::llround(config_.topk_fraction *
                              static_cast<double>(dim))));
      const std::size_t kept = std::min(k, dim);
      workspace.order.resize(dim);
      for (std::size_t i = 0; i < dim; ++i) {
        workspace.order[i] = static_cast<std::uint32_t>(i);
      }
      // Magnitude top-k with index tie-break: a total order, so the
      // selection is identical on every platform and thread count.
      const auto larger = [&](std::uint32_t a, std::uint32_t b) {
        const double fa = std::fabs(update[a]);
        const double fb = std::fabs(update[b]);
        if (fa != fb) return fa > fb;
        return a < b;
      };
      std::nth_element(workspace.order.begin(),
                       workspace.order.begin() +
                           static_cast<std::ptrdiff_t>(kept - 1),
                       workspace.order.end(), larger);
      std::sort(workspace.order.begin(),
                workspace.order.begin() + static_cast<std::ptrdiff_t>(kept));
      out.indices.assign(workspace.order.begin(),
                         workspace.order.begin() +
                             static_cast<std::ptrdiff_t>(kept));
      out.values.resize(kept);
      for (std::size_t i = 0; i < kept; ++i) {
        out.values[i] = update[out.indices[i]];
      }
      break;
    }
  }
  encoded_bytes_counter(out.codec)->inc(out.wire_bytes());
}

void UpdateCodec::decode(const EncodedUpdate& in,
                         std::vector<double>& out) const {
  const std::size_t dim = in.dim;
  out.resize(dim);
  switch (in.codec) {
    case Codec::kDense64:
      std::copy(in.values.begin(), in.values.end(), out.begin());
      break;
    case Codec::kQuant8: {
      const std::size_t chunk = config_.quant_chunk;
      for (std::size_t begin = 0; begin < dim; begin += chunk) {
        const std::size_t end = std::min(dim, begin + chunk);
        const double scale = in.scales[begin / chunk];
        for (std::size_t i = begin; i < end; ++i) {
          out[i] = static_cast<double>(in.q[i]) * scale;
        }
      }
      break;
    }
    case Codec::kTopK: {
      std::fill(out.begin(), out.end(), 0.0);
      for (std::size_t i = 0; i < in.indices.size(); ++i) {
        out[in.indices[i]] = in.values[i];
      }
      break;
    }
  }
}

// ---------------------------------------------------------------------
// Framing layer

namespace {

void put_u32(std::uint32_t value, std::vector<std::uint8_t>& out) {
  out.push_back(static_cast<std::uint8_t>(value & 0xFF));
  out.push_back(static_cast<std::uint8_t>((value >> 8) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((value >> 16) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((value >> 24) & 0xFF));
}

std::uint32_t read_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

void encode_frame(const Frame& frame, std::vector<std::uint8_t>& out) {
  if (frame.payload.size() > kMaxFramePayload) {
    throw std::invalid_argument("encode_frame: payload exceeds limit");
  }
  out.reserve(out.size() + kFrameHeaderBytes + frame.payload.size());
  put_u32(kFrameMagic, out);
  out.push_back(kFrameVersion);
  out.push_back(static_cast<std::uint8_t>(frame.type));
  const auto status = static_cast<std::uint16_t>(frame.status);
  out.push_back(static_cast<std::uint8_t>(status & 0xFF));
  out.push_back(static_cast<std::uint8_t>((status >> 8) & 0xFF));
  put_u32(static_cast<std::uint32_t>(frame.payload.size()), out);
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t size) {
  if (failed_) return;  // stream already condemned; drop the bytes
  buffer_.insert(buffer_.end(), data, data + size);
}

FrameDecodeResult FrameDecoder::next(Frame& frame) {
  if (failed_) return FrameDecodeResult::kError;
  // Compact lazily: move the unparsed tail to the front only once the
  // parsed prefix dominates, so steady streaming stays O(bytes).
  if (consumed_ > 0 && consumed_ * 2 >= buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  const std::size_t avail = buffer_.size() - consumed_;
  if (avail < kFrameHeaderBytes) return FrameDecodeResult::kNeedMore;

  const std::uint8_t* head = buffer_.data() + consumed_;
  // Header validation runs on the 12 buffered bytes alone — a hostile
  // length field is rejected before any payload is awaited, so the
  // decoder can neither over-read nor buffer unboundedly.
  if (read_u32(head) != kFrameMagic) {
    failed_ = true;
    error_ = "bad magic (not a FLPS frame)";
    return FrameDecodeResult::kError;
  }
  if (head[4] != kFrameVersion) {
    failed_ = true;
    error_ = "unsupported frame version " + std::to_string(head[4]);
    return FrameDecodeResult::kError;
  }
  const std::uint8_t type = head[5];
  if (type < static_cast<std::uint8_t>(FrameType::kHello) ||
      type > static_cast<std::uint8_t>(FrameType::kMetrics)) {
    failed_ = true;
    error_ = "unknown frame type " + std::to_string(type);
    return FrameDecodeResult::kError;
  }
  const std::size_t payload_len = read_u32(head + 8);
  if (payload_len > kMaxFramePayload) {
    failed_ = true;
    error_ = "oversized frame payload (" + std::to_string(payload_len) +
             " bytes)";
    return FrameDecodeResult::kError;
  }
  if (avail < kFrameHeaderBytes + payload_len) {
    return FrameDecodeResult::kNeedMore;
  }

  frame.type = static_cast<FrameType>(type);
  frame.status = static_cast<FrameStatus>(
      static_cast<std::uint16_t>(head[6]) |
      (static_cast<std::uint16_t>(head[7]) << 8));
  frame.payload.assign(head + kFrameHeaderBytes,
                       head + kFrameHeaderBytes + payload_len);
  consumed_ += kFrameHeaderBytes + payload_len;
  return FrameDecodeResult::kFrame;
}

}  // namespace flips::net
