// Simulated device fleet: the senior-care deployment mix from the
// paper's §7 case study. Devices carry compute/network/reliability
// parameters that the FL job turns into per-round durations — the
// physical origin of deadline stragglers.
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"

namespace flips::net {

struct Device {
  std::string type = "phone";
  /// Local-training slowdown vs the nominal device (1.0 = nominal).
  double compute_factor = 1.0;
  double network_mbps = 10.0;
  /// Probability of being reachable when selected.
  double availability = 1.0;
  /// Per-round probability of an independent fault (crash, battery).
  double fault_rate = 0.0;
};

struct FleetMix {
  struct Entry {
    Device device;
    double weight = 1.0;
  };
  std::vector<Entry> entries;

  /// 45 % wearables / 40 % phones / 15 % gateways+workstations.
  static FleetMix senior_care();
};

class FleetBuilder {
 public:
  explicit FleetBuilder(FleetMix mix);

  /// Samples one device from the mix (weights need not be normalized).
  [[nodiscard]] Device sample(common::Rng& rng) const;

 private:
  FleetMix mix_;
  double total_weight_ = 0.0;
};

}  // namespace flips::net
