// Simulated device fleet: the senior-care deployment mix from the
// paper's §7 case study. Devices carry compute/network/reliability
// parameters that the FL session turns into per-dispatch durations —
// the physical origin of deadline stragglers and, in the event-driven
// async mode, of the arrival order itself.
//
// Two session-facing pieces live here:
//   simulated_duration_s()  — the latency model proper: compute time
//       scaled by the device's slowdown factor plus a model up+down
//       transfer at the device's link speed. Both federation modes
//       (fl/session.h) derive every party duration from this one
//       expression, so sync and async arrivals share one physics.
//   ArrivalQueue — a deterministic min-heap of (time, sequence) events
//       that drives FederationSession::advance() in async mode. Ties
//       break on the monotone dispatch sequence, so the arrival order
//       is a pure function of the simulated durations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <queue>
#include <string>
#include <vector>

#include "common/rng.h"

namespace flips::net {

struct Device {
  std::string type = "phone";
  /// Local-training slowdown vs the nominal device (1.0 = nominal).
  double compute_factor = 1.0;
  double network_mbps = 10.0;
  /// Probability of being reachable when selected.
  double availability = 1.0;
  /// Per-round probability of an independent fault (crash, battery).
  double fault_rate = 0.0;
  /// Markov churn trace (net/faults.h): mean seconds of continuous
  /// reachability / outage. Chosen so the stationary up fraction
  /// mean_up / (mean_up + mean_down) equals `availability` — the churn
  /// plan and the legacy Bernoulli field describe the same device.
  /// 0 = the device never churns.
  double mean_up_s = 0.0;
  double mean_down_s = 0.0;
};

struct FleetMix {
  struct Entry {
    Device device;
    double weight = 1.0;
  };
  std::vector<Entry> entries;

  /// 45 % wearables / 40 % phones / 15 % gateways+workstations.
  static FleetMix senior_care();
};

class FleetBuilder {
 public:
  explicit FleetBuilder(FleetMix mix);

  /// Samples one device from the mix (weights need not be normalized).
  [[nodiscard]] Device sample(common::Rng& rng) const;

 private:
  FleetMix mix_;
  double total_weight_ = 0.0;
};

/// Simulated seconds for one party's full participation: local compute
/// (`speed_factor × samples × epochs × compute_s_per_sample`) plus the
/// model down- and uplink (`2 × payload_bytes` at `network_mbps`).
/// Left-to-right evaluation order is part of the contract — the sync
/// round loop's historical durations must reproduce bit-for-bit.
inline double simulated_duration_s(double speed_factor, double samples,
                                   double epochs,
                                   double compute_s_per_sample,
                                   double payload_bytes,
                                   double network_mbps) {
  const double compute_s =
      speed_factor * samples * epochs * compute_s_per_sample;
  const double network_s = 2.0 * payload_bytes / (network_mbps * 125000.0);
  return compute_s + network_s;
}

/// One scheduled arrival: a dispatched party's update (or failure
/// notice) landing at the server at simulated time `time_s`.
struct ArrivalEvent {
  double time_s = 0.0;
  /// Monotone dispatch sequence — the deterministic tie-break.
  std::uint64_t seq = 0;
  /// Caller-owned payload handle (the session's in-flight slot index).
  std::size_t slot = 0;
};

/// Deterministic simulated-time event queue: pops the earliest arrival,
/// breaking time ties by dispatch sequence. Single-threaded — the
/// session's stepping thread owns it.
class ArrivalQueue {
 public:
  void push(const ArrivalEvent& event) { heap_.push(event); }

  /// Earliest event (undefined when empty()).
  [[nodiscard]] const ArrivalEvent& top() const { return heap_.top(); }

  ArrivalEvent pop() {
    ArrivalEvent event = heap_.top();
    heap_.pop();
    return event;
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

 private:
  struct Later {
    bool operator()(const ArrivalEvent& a, const ArrivalEvent& b) const {
      if (a.time_s != b.time_s) return a.time_s > b.time_s;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<ArrivalEvent, std::vector<ArrivalEvent>, Later> heap_;
};

}  // namespace flips::net
