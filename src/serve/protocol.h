// Payload encodings for the serving wire format (net/codec.h frames).
// The framing layer moves opaque bytes; this header defines what the
// bytes mean per FrameType:
//
//   kHello        request: tenant name (UTF-8 text)
//                 reply:   server banner text
//   kOpenSession  request: "key=value\n" lines (a ScenarioSpec's
//                          to_key_values() image)
//                 reply:   resolved-config echo in the same kv format
//   kStep         request: u64 client-chosen request id
//                 reply:   u64 id, u32 rounds completed, u8 finished
//                          (id-only on kRejected / kSessionDone, so
//                          out-of-band rejections written by the
//                          reader thread still match their request)
//   kResult       request: empty
//                 reply:   u32 dim, dim f64 final parameters
//   kShutdown     request/reply: empty
//
// Integers are little-endian; doubles are IEEE-754 bit images in
// little-endian byte order (both ends of every supported deployment
// are little-endian hosts). Error replies of any type carry a
// human-readable message as text payload.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace flips::serve {

/// Ordered key=value pairs — same shape as flips::KeyValueList, but
/// declared here so the serve layer stays free of bench headers.
using KvPairs = std::vector<std::pair<std::string, std::string>>;

using Bytes = std::vector<std::uint8_t>;

// ---- Primitive writers (append to the payload). ----
void put_u8(std::uint8_t value, Bytes& out);
void put_u32(std::uint32_t value, Bytes& out);
void put_u64(std::uint64_t value, Bytes& out);
void put_f64(double value, Bytes& out);

/// Bounds-checked sequential reader over a payload. Every get_*
/// returns false once the payload is exhausted — truncated payloads
/// are rejected, never over-read.
class PayloadReader {
 public:
  explicit PayloadReader(const Bytes& payload) : payload_(payload) {}
  bool get_u8(std::uint8_t& value);
  bool get_u32(std::uint32_t& value);
  bool get_u64(std::uint64_t& value);
  bool get_f64(double& value);
  [[nodiscard]] bool exhausted() const {
    return offset_ == payload_.size();
  }

 private:
  const Bytes& payload_;
  std::size_t offset_ = 0;
};

// ---- Text payloads (hello, banners, error messages). ----
Bytes encode_text(std::string_view text);
std::string decode_text(const Bytes& payload);

// ---- key=value payloads (scenario submission / echo). ----
Bytes encode_kv(const KvPairs& kv);
/// Parses "key=value\n" lines. Returns false (and sets `error`) on a
/// line without '=' or an empty key; values may be empty.
bool decode_kv(const Bytes& payload, KvPairs& kv, std::string& error);

// ---- Step request/reply. ----
struct StepReply {
  std::uint64_t request_id = 0;
  std::uint32_t round = 0;  ///< rounds completed after this step
  bool finished = false;
};
Bytes encode_step_request(std::uint64_t request_id);
bool decode_step_request(const Bytes& payload, std::uint64_t& request_id);
Bytes encode_step_reply(const StepReply& reply);
bool decode_step_reply(const Bytes& payload, StepReply& reply);

// ---- Result reply (the served model's final parameters). ----
Bytes encode_result_reply(const std::vector<double>& parameters);
bool decode_result_reply(const Bytes& payload,
                         std::vector<double>& parameters);

}  // namespace flips::serve
