// Blocking client for the serving wire format: connects over UDS or
// TCP, writes frames, and reads replies through the same incremental
// FrameDecoder the server uses. One Client per connection; not
// thread-safe (the loadgen gives each tenant thread its own).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "net/codec.h"
#include "serve/protocol.h"

namespace flips::serve {

class Client {
 public:
  Client() = default;
  ~Client() { close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  Client(Client&& other) noexcept
      : fd_(other.fd_),
        decoder_(std::move(other.decoder_)),
        uds_path_(std::move(other.uds_path_)),
        tcp_port_(other.tcp_port_),
        use_tcp_(other.use_tcp_),
        hello_name_(std::move(other.hello_name_)),
        retry_(other.retry_) {
    other.fd_ = -1;
  }
  Client& operator=(Client&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      decoder_ = std::move(other.decoder_);
      uds_path_ = std::move(other.uds_path_);
      tcp_port_ = other.tcp_port_;
      use_tcp_ = other.use_tcp_;
      hello_name_ = std::move(other.hello_name_);
      retry_ = other.retry_;
      other.fd_ = -1;
    }
    return *this;
  }

  /// Reconnect-with-backoff policy for call_with_retry (disabled by
  /// default: zero attempts = call_with_retry behaves like call).
  struct RetryPolicy {
    std::size_t max_attempts = 0;   ///< reconnect attempts per request
    double backoff_base_s = 0.05;   ///< first delay; doubles per retry
    double backoff_mult = 2.0;
  };

  /// Connect to a unix-domain socket path / a TCP port on localhost.
  /// Throws std::runtime_error on failure.
  void connect_uds(const std::string& path);
  void connect_tcp(std::uint16_t port);

  [[nodiscard]] bool connected() const { return fd_ >= 0; }
  void close();

  /// Writes one frame. Throws std::runtime_error on a broken socket.
  void send(const net::Frame& frame);

  /// Blocks until the next complete frame arrives. Throws
  /// std::runtime_error on EOF mid-frame or a malformed stream.
  net::Frame recv();

  /// Waits up to `timeout_ms` for a complete frame (0 = pure poll).
  /// nullopt on timeout — the open-loop load generator's pacing loop
  /// drains replies with this between scheduled sends. Throws like
  /// recv() on EOF or a malformed stream.
  std::optional<net::Frame> try_recv(int timeout_ms);

  /// send + recv in one call (the protocol is request/reply per frame
  /// except for out-of-order step rejections, which callers match by
  /// request id).
  net::Frame call(const net::Frame& request);

  /// Enables the self-healing path: call_with_retry survives a broken
  /// connection by reconnecting (with exponential backoff) and
  /// replaying the same request.
  void set_retry_policy(const RetryPolicy& policy) { retry_ = policy; }

  /// Tears down the socket and dials the remembered endpoint again,
  /// resetting the frame decoder (any half-received reply is
  /// discarded) and repeating the hello handshake when one was made.
  /// Throws std::runtime_error when the dial or re-hello fails — e.g.
  /// kDuplicateTenant while the server still thinks the old connection
  /// is alive; callers back off and retry.
  void reconnect();

  /// call(), but on a connection error: reconnect with backoff and
  /// replay the request verbatim (same request id — the server echoes
  /// ids, and a session's fixed round count makes replayed steps
  /// idempotent from the driver's point of view). Throws once
  /// retry_.max_attempts reconnects have failed.
  net::Frame call_with_retry(const net::Frame& request);

  // ---- Convenience wrappers over the per-type payload codecs. ----

  /// kHello handshake; returns the server banner. Throws on any
  /// non-kOk status (e.g. kDuplicateTenant).
  std::string hello(std::string_view tenant);

  /// kOpenSession with a ScenarioSpec kv image; returns the server's
  /// resolved-config echo. Throws on kBadScenario et al.
  std::string open_session(const KvPairs& kv);

  /// kShutdown; returns once the server acknowledges.
  void shutdown_server();

  /// kMetrics; returns the server's live Prometheus text exposition.
  /// Needs no prior hello. Throws on a non-kOk status.
  std::string metrics();

 private:
  int fd_ = -1;
  net::FrameDecoder decoder_;
  // Remembered endpoint + handshake for reconnect().
  std::string uds_path_;
  std::uint16_t tcp_port_ = 0;
  bool use_tcp_ = false;
  std::string hello_name_;
  RetryPolicy retry_;
};

}  // namespace flips::serve
