// Blocking client for the serving wire format: connects over UDS or
// TCP, writes frames, and reads replies through the same incremental
// FrameDecoder the server uses. One Client per connection; not
// thread-safe (the loadgen gives each tenant thread its own).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "net/codec.h"
#include "serve/protocol.h"

namespace flips::serve {

class Client {
 public:
  Client() = default;
  ~Client() { close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  Client(Client&& other) noexcept
      : fd_(other.fd_), decoder_(std::move(other.decoder_)) {
    other.fd_ = -1;
  }
  Client& operator=(Client&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      decoder_ = std::move(other.decoder_);
      other.fd_ = -1;
    }
    return *this;
  }

  /// Connect to a unix-domain socket path / a TCP port on localhost.
  /// Throws std::runtime_error on failure.
  void connect_uds(const std::string& path);
  void connect_tcp(std::uint16_t port);

  [[nodiscard]] bool connected() const { return fd_ >= 0; }
  void close();

  /// Writes one frame. Throws std::runtime_error on a broken socket.
  void send(const net::Frame& frame);

  /// Blocks until the next complete frame arrives. Throws
  /// std::runtime_error on EOF mid-frame or a malformed stream.
  net::Frame recv();

  /// Waits up to `timeout_ms` for a complete frame (0 = pure poll).
  /// nullopt on timeout — the open-loop load generator's pacing loop
  /// drains replies with this between scheduled sends. Throws like
  /// recv() on EOF or a malformed stream.
  std::optional<net::Frame> try_recv(int timeout_ms);

  /// send + recv in one call (the protocol is request/reply per frame
  /// except for out-of-order step rejections, which callers match by
  /// request id).
  net::Frame call(const net::Frame& request);

  // ---- Convenience wrappers over the per-type payload codecs. ----

  /// kHello handshake; returns the server banner. Throws on any
  /// non-kOk status (e.g. kDuplicateTenant).
  std::string hello(std::string_view tenant);

  /// kOpenSession with a ScenarioSpec kv image; returns the server's
  /// resolved-config echo. Throws on kBadScenario et al.
  std::string open_session(const KvPairs& kv);

  /// kShutdown; returns once the server acknowledges.
  void shutdown_server();

  /// kMetrics; returns the server's live Prometheus text exposition.
  /// Needs no prior hello. Throws on a non-kOk status.
  std::string metrics();

 private:
  int fd_ = -1;
  net::FrameDecoder decoder_;
};

}  // namespace flips::serve
