#include "serve/client.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace flips::serve {

void Client::connect_uds(const std::string& path) {
  uds_path_ = path;
  use_tcp_ = false;
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error(std::string("socket: ") +
                             std::strerror(errno));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    throw std::runtime_error("uds path too long: " + path);
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    close();
    throw std::runtime_error("connect " + path + ": " +
                             std::strerror(errno));
  }
}

void Client::connect_tcp(std::uint16_t port) {
  tcp_port_ = port;
  use_tcp_ = true;
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error(std::string("socket: ") +
                             std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    close();
    throw std::runtime_error("connect port " + std::to_string(port) +
                             ": " + std::strerror(errno));
  }
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Client::send(const net::Frame& frame) {
  std::vector<std::uint8_t> wire;
  net::encode_frame(frame, wire);
  const std::uint8_t* data = wire.data();
  std::size_t size = wire.size();
  while (size > 0) {
    const ssize_t sent = ::send(fd_, data, size, MSG_NOSIGNAL);
    if (sent <= 0) {
      if (sent < 0 && errno == EINTR) continue;
      throw std::runtime_error(std::string("send: ") +
                               std::strerror(errno));
    }
    data += static_cast<std::size_t>(sent);
    size -= static_cast<std::size_t>(sent);
  }
}

net::Frame Client::recv() {
  net::Frame frame;
  for (;;) {
    const auto verdict = decoder_.next(frame);
    if (verdict == net::FrameDecodeResult::kFrame) return frame;
    if (verdict == net::FrameDecodeResult::kError) {
      throw std::runtime_error("malformed reply stream: " +
                               decoder_.error());
    }
    std::uint8_t chunk[4096];
    const ssize_t got = ::recv(fd_, chunk, sizeof chunk, 0);
    if (got < 0 && errno == EINTR) continue;
    if (got <= 0) {
      throw std::runtime_error("server closed the connection");
    }
    decoder_.feed(chunk, static_cast<std::size_t>(got));
  }
}

std::optional<net::Frame> Client::try_recv(int timeout_ms) {
  net::Frame frame;
  for (;;) {
    const auto verdict = decoder_.next(frame);
    if (verdict == net::FrameDecodeResult::kFrame) return frame;
    if (verdict == net::FrameDecodeResult::kError) {
      throw std::runtime_error("malformed reply stream: " +
                               decoder_.error());
    }
    pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0 && errno == EINTR) continue;
    if (ready <= 0) return std::nullopt;
    std::uint8_t chunk[4096];
    const ssize_t got = ::recv(fd_, chunk, sizeof chunk, 0);
    if (got < 0 && errno == EINTR) continue;
    if (got <= 0) {
      throw std::runtime_error("server closed the connection");
    }
    decoder_.feed(chunk, static_cast<std::size_t>(got));
    // A partial frame may have arrived; only further poll rounds wait.
    timeout_ms = 0;
  }
}

net::Frame Client::call(const net::Frame& request) {
  send(request);
  return recv();
}

void Client::reconnect() {
  close();
  // Anything buffered from the old connection (half a frame, a reply
  // we never read) belongs to a dead stream.
  decoder_ = net::FrameDecoder();
  if (use_tcp_) {
    connect_tcp(tcp_port_);
  } else {
    connect_uds(uds_path_);
  }
  if (!hello_name_.empty()) {
    net::Frame request;
    request.type = net::FrameType::kHello;
    request.payload = encode_text(hello_name_);
    const net::Frame reply = call(request);
    if (reply.status != net::FrameStatus::kOk) {
      // kDuplicateTenant: the server has not yet noticed the old
      // connection die — surface as a retryable failure.
      throw std::runtime_error("re-hello rejected: " +
                               decode_text(reply.payload));
    }
  }
}

net::Frame Client::call_with_retry(const net::Frame& request) {
  double backoff_s = retry_.backoff_base_s;
  for (std::size_t attempt = 0;; ++attempt) {
    try {
      if (!connected()) reconnect();
      return call(request);
    } catch (const std::runtime_error&) {
      if (attempt >= retry_.max_attempts) throw;
      close();
      ::usleep(static_cast<useconds_t>(backoff_s * 1e6));
      backoff_s *= retry_.backoff_mult;
    }
  }
}

std::string Client::hello(std::string_view tenant) {
  net::Frame request;
  request.type = net::FrameType::kHello;
  request.payload = encode_text(tenant);
  const net::Frame reply = call(request);
  if (reply.status != net::FrameStatus::kOk) {
    throw std::runtime_error("hello rejected: " +
                             decode_text(reply.payload));
  }
  hello_name_ = std::string(tenant);  // replayed by reconnect()
  return decode_text(reply.payload);
}

std::string Client::open_session(const KvPairs& kv) {
  net::Frame request;
  request.type = net::FrameType::kOpenSession;
  request.payload = encode_kv(kv);
  const net::Frame reply = call(request);
  if (reply.status != net::FrameStatus::kOk) {
    throw std::runtime_error("open_session rejected: " +
                             decode_text(reply.payload));
  }
  return decode_text(reply.payload);
}

void Client::shutdown_server() {
  net::Frame request;
  request.type = net::FrameType::kShutdown;
  call(request);
}

std::string Client::metrics() {
  net::Frame request;
  request.type = net::FrameType::kMetrics;
  const net::Frame reply = call(request);
  if (reply.status != net::FrameStatus::kOk) {
    throw std::runtime_error("metrics rejected: " +
                             decode_text(reply.payload));
  }
  return decode_text(reply.payload);
}

}  // namespace flips::serve
