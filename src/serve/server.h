// The multi-tenant serving front end: a TCP/UDS stream server that
// hosts one fl::SessionPool and drives it from length-prefixed frames
// (net/codec.h) submitted by remote drivers — the first place bytes
// actually cross a socket instead of an accounting ledger.
//
// Threading model (all shared state under one server mutex; sessions
// are touched by the scheduler thread only):
//
//   acceptor thread     accept() loop; spawns one reader per conn
//   reader threads      parse frames; enqueue work; answer protocol
//                       errors and admission rejections immediately
//   scheduler thread    pops per-tenant queues round-robin, steps the
//                       SessionPool, writes step/result replies
//   worker pool         ONE common::ThreadPool every tenant's local
//                       training contends for (the SessionPool shape)
//
// Isolation properties:
//   admission control   a tenant may have at most
//                       max_inflight_per_tenant step frames queued or
//                       executing; frames beyond it are rejected
//                       immediately with FrameStatus::kRejected
//   backpressure        the per-tenant queue bound means a flooding
//                       tenant occupies one scheduler slot per
//                       round-robin pass, never the whole queue — a
//                       slow or hostile tenant cannot stall others
//   fairness            the scheduler services tenants with pending
//                       work in cyclic order, one request per turn
//   graceful drain      drain() stops accepting work (late frames get
//                       kShuttingDown), finishes everything already
//                       queued, flushes replies, then joins threads
//
// Because sessions are stepped by one thread over seed-derived RNG
// streams, a served session's final_parameters are bit-identical to
// stepping the same ScenarioSpec in-process (the loadgen's
// perf,serving line gates on exactly that).
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "fl/session_pool.h"
#include "net/codec.h"
#include "obs/metrics.h"
#include "serve/protocol.h"

namespace flips::serve {

/// Builds a tenant's session from wire-submitted key=value pairs on
/// the server's shared worker pool, writing a resolved-config echo
/// into `banner`. Throws std::invalid_argument on a bad scenario (the
/// message becomes the kBadScenario reply payload). Called only from
/// the scheduler thread, so factories may use non-thread-safe caches.
using SessionFactory =
    std::function<std::unique_ptr<fl::FederationSession>(
        const KvPairs& kv, common::ThreadPool* workers,
        std::string* banner)>;

struct ServerConfig {
  /// Non-empty = bind a unix-domain socket at this path (unlinking any
  /// stale one); empty = TCP on 127.0.0.1:tcp_port (0 = ephemeral,
  /// read the resolved port back with port()).
  std::string uds_path;
  std::uint16_t tcp_port = 0;
  /// Shared local-training pool size (0 = hardware concurrency).
  std::size_t worker_threads = 0;
  /// Admission bound: max step frames queued or executing per tenant.
  std::size_t max_inflight_per_tenant = 8;
  /// Socket send timeout (seconds) — a peer that stops reading is
  /// declared dead instead of wedging the scheduler on write().
  double send_timeout_s = 5.0;
  /// Idle eviction: a tenant whose connection is dead and that has been
  /// inactive (no frames, no queued work) this long has its session
  /// destroyed and its name released (flips_serve_evictions_total).
  /// 0 = never evict.
  double tenant_idle_timeout_s = 0.0;
};

class Server {
 public:
  Server(ServerConfig config, SessionFactory factory);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the acceptor + scheduler threads.
  /// Throws std::runtime_error on socket errors.
  void start();

  /// Resolved TCP port (after start(); 0 for UDS servers).
  std::uint16_t port() const { return port_; }

  /// Blocks until a client's kShutdown frame lands (or drain() is
  /// called from another thread).
  void wait_for_shutdown();

  /// Non-blocking query: has a kShutdown frame (or drain()) been seen?
  /// Safe to poll from a loop that also watches a signal flag.
  [[nodiscard]] bool shutdown_requested() const {
    std::lock_guard<std::mutex> lock(mu_);
    return shutdown_requested_;
  }

  /// Graceful stop: refuse new work, finish queued requests, flush
  /// replies, join every thread, close every socket. Idempotent.
  void drain();

  struct Stats {
    std::uint64_t frames = 0;             ///< well-formed frames seen
    std::uint64_t bad_frames = 0;         ///< malformed streams dropped
    std::uint64_t steps = 0;              ///< rounds actually stepped
    std::uint64_t rejected = 0;           ///< admission-control refusals
    std::uint64_t sessions_opened = 0;
    std::uint64_t sessions_finished = 0;
  };
  Stats stats() const;

 private:
  struct Connection {
    int fd = -1;
    std::mutex write_mu;
    std::atomic<bool> dead{false};
    /// Index into tenants_; set once by the hello handler (the
    /// connection's own reader thread) before any use.
    std::optional<std::size_t> tenant_id;
    std::thread reader;
  };

  /// One queued unit of scheduler work for a tenant.
  struct Pending {
    net::FrameType type = net::FrameType::kStep;
    std::uint64_t request_id = 0;  ///< kStep only
    KvPairs kv;                    ///< kOpenSession only
    std::shared_ptr<Connection> conn;
    std::uint64_t enqueued_ns = 0;  ///< reply-latency clock start
  };

  struct Tenant {
    std::string name;
    bool has_session = false;
    std::size_t session_index = 0;
    std::size_t inflight_steps = 0;  ///< queued + executing step frames
    std::deque<Pending> queue;
    /// The connection currently bound to this tenant. A hello for an
    /// already-registered name is accepted (rebind) when this
    /// connection is dead — the client reconnect-and-replay path.
    std::weak_ptr<Connection> conn;
    std::uint64_t last_activity_ns = 0;  ///< idle-eviction clock
    bool evicted = false;  ///< slot freed; name may register anew
    // Per-tenant instruments (tenant="<name>"), registered at hello.
    obs::Counter* rejections = nullptr;
    obs::Counter* evictions = nullptr;
    obs::Gauge* queue_depth = nullptr;
    obs::Gauge* inflight = nullptr;
    obs::Histogram* reply_seconds = nullptr;  ///< enqueue -> reply sent
  };

  void accept_loop();
  void reader_loop(std::shared_ptr<Connection> conn);
  void scheduler_loop();
  /// Idle sweep (scheduler thread, mu_ held): evicts tenants whose
  /// connection died and whose inactivity exceeds the timeout.
  void evict_idle_tenants_locked(std::uint64_t now_ns);
  /// Reader-side dispatch: answers protocol errors / rejections
  /// inline, enqueues real work for the scheduler.
  void handle_frame(const std::shared_ptr<Connection>& conn,
                    net::Frame frame);
  void execute(Tenant& tenant, Pending work);
  bool send_frame(Connection& conn, const net::Frame& frame);
  void send_status(const std::shared_ptr<Connection>& conn,
                   net::FrameType type, net::FrameStatus status,
                   std::string_view message);

  ServerConfig config_;
  SessionFactory factory_;
  common::ThreadPool workers_;
  fl::SessionPool pool_;  ///< scheduler thread only (after start)

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  bool started_ = false;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable shutdown_cv_;
  std::vector<std::unique_ptr<Tenant>> tenants_;
  std::vector<std::shared_ptr<Connection>> connections_;
  std::size_t rr_cursor_ = 0;       ///< round-robin tenant cursor
  std::size_t pending_total_ = 0;   ///< queued work across tenants
  bool draining_ = false;           ///< refuse new work
  bool stop_scheduler_ = false;     ///< exit once queues drain
  bool shutdown_requested_ = false;

  std::thread acceptor_;
  std::thread scheduler_;

  std::atomic<std::uint64_t> stat_frames_{0};
  std::atomic<std::uint64_t> stat_bad_frames_{0};
  std::atomic<std::uint64_t> stat_steps_{0};
  std::atomic<std::uint64_t> stat_rejected_{0};
  std::atomic<std::uint64_t> stat_sessions_opened_{0};
  std::atomic<std::uint64_t> stat_sessions_finished_{0};

  // Registry-backed mirrors of the stats above plus per-frame-type and
  // per-reply-status counters — what the kMetrics snapshot exposes.
  // Registered in the constructor; hot paths touch cached pointers
  // only. Indexed by FrameType (1-based) / FrameStatus value.
  std::array<obs::Counter*, 7> frames_by_type_{};
  std::array<obs::Counter*, 9> replies_by_status_{};
  obs::Counter* obs_bad_frames_ = nullptr;
  obs::Counter* obs_steps_ = nullptr;
  obs::Counter* obs_sessions_opened_ = nullptr;
  obs::Counter* obs_sessions_finished_ = nullptr;
};

}  // namespace flips::serve
