#include "serve/protocol.h"

#include <cstring>

namespace flips::serve {

void put_u8(std::uint8_t value, Bytes& out) { out.push_back(value); }

void put_u32(std::uint32_t value, Bytes& out) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>((value >> shift) & 0xFF));
  }
}

void put_u64(std::uint64_t value, Bytes& out) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>((value >> shift) & 0xFF));
  }
}

void put_f64(double value, Bytes& out) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof bits);
  put_u64(bits, out);
}

bool PayloadReader::get_u8(std::uint8_t& value) {
  if (payload_.size() - offset_ < 1) return false;
  value = payload_[offset_++];
  return true;
}

bool PayloadReader::get_u32(std::uint32_t& value) {
  if (payload_.size() - offset_ < 4) return false;
  value = 0;
  for (int shift = 0; shift < 32; shift += 8) {
    value |= static_cast<std::uint32_t>(payload_[offset_++]) << shift;
  }
  return true;
}

bool PayloadReader::get_u64(std::uint64_t& value) {
  if (payload_.size() - offset_ < 8) return false;
  value = 0;
  for (int shift = 0; shift < 64; shift += 8) {
    value |= static_cast<std::uint64_t>(payload_[offset_++]) << shift;
  }
  return true;
}

bool PayloadReader::get_f64(double& value) {
  std::uint64_t bits = 0;
  if (!get_u64(bits)) return false;
  std::memcpy(&value, &bits, sizeof value);
  return true;
}

Bytes encode_text(std::string_view text) {
  return Bytes(text.begin(), text.end());
}

std::string decode_text(const Bytes& payload) {
  return std::string(payload.begin(), payload.end());
}

Bytes encode_kv(const KvPairs& kv) {
  Bytes out;
  for (const auto& [key, value] : kv) {
    out.insert(out.end(), key.begin(), key.end());
    out.push_back('=');
    out.insert(out.end(), value.begin(), value.end());
    out.push_back('\n');
  }
  return out;
}

bool decode_kv(const Bytes& payload, KvPairs& kv, std::string& error) {
  kv.clear();
  if (payload.empty()) return true;  // data() may be null on empty
  std::size_t line_start = 0;
  const std::string_view text(
      reinterpret_cast<const char*>(payload.data()), payload.size());
  while (line_start < text.size()) {
    std::size_t line_end = text.find('\n', line_start);
    if (line_end == std::string_view::npos) line_end = text.size();
    const std::string_view line =
        text.substr(line_start, line_end - line_start);
    line_start = line_end + 1;
    if (line.empty()) continue;  // tolerate blank lines
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      error = "malformed key=value line: " + std::string(line);
      return false;
    }
    kv.emplace_back(std::string(line.substr(0, eq)),
                    std::string(line.substr(eq + 1)));
  }
  return true;
}

Bytes encode_step_request(std::uint64_t request_id) {
  Bytes out;
  put_u64(request_id, out);
  return out;
}

bool decode_step_request(const Bytes& payload, std::uint64_t& request_id) {
  PayloadReader reader(payload);
  return reader.get_u64(request_id) && reader.exhausted();
}

Bytes encode_step_reply(const StepReply& reply) {
  Bytes out;
  put_u64(reply.request_id, out);
  put_u32(reply.round, out);
  put_u8(reply.finished ? 1 : 0, out);
  return out;
}

bool decode_step_reply(const Bytes& payload, StepReply& reply) {
  PayloadReader reader(payload);
  std::uint8_t finished = 0;
  if (!reader.get_u64(reply.request_id)) return false;
  // Rejection / session-done replies are id-only.
  if (reader.exhausted()) {
    reply.round = 0;
    reply.finished = false;
    return true;
  }
  if (!reader.get_u32(reply.round) || !reader.get_u8(finished) ||
      !reader.exhausted()) {
    return false;
  }
  reply.finished = finished != 0;
  return true;
}

Bytes encode_result_reply(const std::vector<double>& parameters) {
  Bytes out;
  put_u32(static_cast<std::uint32_t>(parameters.size()), out);
  for (const double value : parameters) put_f64(value, out);
  return out;
}

bool decode_result_reply(const Bytes& payload,
                         std::vector<double>& parameters) {
  PayloadReader reader(payload);
  std::uint32_t dim = 0;
  if (!reader.get_u32(dim)) return false;
  // The declared dim must match the remaining bytes exactly — a lying
  // header cannot make the reader allocate or copy past the payload.
  if (payload.size() - 4 != static_cast<std::size_t>(dim) * 8) {
    return false;
  }
  parameters.resize(dim);
  for (auto& value : parameters) {
    if (!reader.get_f64(value)) return false;
  }
  return reader.exhausted();
}

}  // namespace flips::serve
