#include "serve/server.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "fl/metrics_observer.h"

namespace flips::serve {

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

const char* frame_type_label(net::FrameType type) {
  switch (type) {
    case net::FrameType::kHello: return "hello";
    case net::FrameType::kOpenSession: return "open_session";
    case net::FrameType::kStep: return "step";
    case net::FrameType::kResult: return "result";
    case net::FrameType::kShutdown: return "shutdown";
    case net::FrameType::kMetrics: return "metrics";
  }
  return "unknown";
}

const char* frame_status_label(net::FrameStatus status) {
  switch (status) {
    case net::FrameStatus::kOk: return "ok";
    case net::FrameStatus::kRejected: return "rejected";
    case net::FrameStatus::kBadFrame: return "bad_frame";
    case net::FrameStatus::kBadScenario: return "bad_scenario";
    case net::FrameStatus::kNoSession: return "no_session";
    case net::FrameStatus::kSessionDone: return "session_done";
    case net::FrameStatus::kShuttingDown: return "shutting_down";
    case net::FrameStatus::kDuplicateTenant: return "duplicate_tenant";
    case net::FrameStatus::kNotFinished: return "not_finished";
  }
  return "unknown";
}

void set_send_timeout(int fd, double seconds) {
  if (seconds <= 0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>(
      (seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

/// Writes the whole buffer or reports failure (short write after the
/// send timeout, or a closed peer). MSG_NOSIGNAL: a dead peer must
/// surface as EPIPE, not kill the process.
bool send_all(int fd, const std::uint8_t* data, std::size_t size) {
  while (size > 0) {
    const ssize_t sent = ::send(fd, data, size, MSG_NOSIGNAL);
    if (sent <= 0) {
      if (sent < 0 && errno == EINTR) continue;
      return false;
    }
    data += static_cast<std::size_t>(sent);
    size -= static_cast<std::size_t>(sent);
  }
  return true;
}

}  // namespace

Server::Server(ServerConfig config, SessionFactory factory)
    : config_(std::move(config)),
      factory_(std::move(factory)),
      workers_(config_.worker_threads) {
  obs::Registry& reg = obs::Registry::global();
  for (std::uint8_t t = 1; t < frames_by_type_.size(); ++t) {
    frames_by_type_[t] = &reg.counter(
        "flips_serve_frames_total",
        {{"type", frame_type_label(static_cast<net::FrameType>(t))}});
  }
  for (std::uint16_t s = 0; s < replies_by_status_.size(); ++s) {
    replies_by_status_[s] = &reg.counter(
        "flips_serve_replies_total",
        {{"status", frame_status_label(static_cast<net::FrameStatus>(s))}});
  }
  obs_bad_frames_ = &reg.counter("flips_serve_bad_frames_total");
  obs_steps_ = &reg.counter("flips_serve_steps_total");
  obs_sessions_opened_ =
      &reg.counter("flips_serve_sessions_total", {{"state", "opened"}});
  obs_sessions_finished_ =
      &reg.counter("flips_serve_sessions_total", {{"state", "finished"}});
}

Server::~Server() { drain(); }

void Server::start() {
  if (started_) throw std::logic_error("Server::start called twice");
  const bool uds = !config_.uds_path.empty();
  listen_fd_ = ::socket(uds ? AF_UNIX : AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("socket: ") +
                             std::strerror(errno));
  }
  if (uds) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (config_.uds_path.size() >= sizeof addr.sun_path) {
      throw std::runtime_error("uds path too long: " + config_.uds_path);
    }
    std::strncpy(addr.sun_path, config_.uds_path.c_str(),
                 sizeof addr.sun_path - 1);
    ::unlink(config_.uds_path.c_str());  // stale socket from a crash
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof addr) != 0) {
      throw std::runtime_error("bind " + config_.uds_path + ": " +
                               std::strerror(errno));
    }
  } else {
    const int yes = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &yes, sizeof yes);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(config_.tcp_port);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof addr) != 0) {
      throw std::runtime_error("bind port " +
                               std::to_string(config_.tcp_port) + ": " +
                               std::strerror(errno));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    port_ = ntohs(bound.sin_port);
  }
  if (::listen(listen_fd_, 64) != 0) {
    throw std::runtime_error(std::string("listen: ") +
                             std::strerror(errno));
  }
  started_ = true;
  acceptor_ = std::thread([this] { accept_loop(); });
  scheduler_ = std::thread([this] { scheduler_loop(); });
}

void Server::wait_for_shutdown() {
  std::unique_lock<std::mutex> lock(mu_);
  shutdown_cv_.wait(lock, [&] { return shutdown_requested_; });
}

void Server::drain() {
  if (!started_) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_) return;  // idempotent
    draining_ = true;
    shutdown_requested_ = true;
  }
  shutdown_cv_.notify_all();
  // Wake the acceptor: shutdown() makes the blocking accept() return
  // (Linux semantics) without racing a close()d-and-reused fd.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  // Let the scheduler finish everything already queued, then exit.
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_scheduler_ = true;
  }
  work_cv_.notify_all();
  if (scheduler_.joinable()) scheduler_.join();
  // Replies are flushed; unblock and join the readers.
  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    conns.swap(connections_);
  }
  for (const auto& conn : conns) ::shutdown(conn->fd, SHUT_RDWR);
  for (const auto& conn : conns) {
    if (conn->reader.joinable()) conn->reader.join();
    ::close(conn->fd);
  }
  if (!config_.uds_path.empty()) ::unlink(config_.uds_path.c_str());
}

Server::Stats Server::stats() const {
  Stats out;
  out.frames = stat_frames_.load();
  out.bad_frames = stat_bad_frames_.load();
  out.steps = stat_steps_.load();
  out.rejected = stat_rejected_.load();
  out.sessions_opened = stat_sessions_opened_.load();
  out.sessions_finished = stat_sessions_finished_.load();
  return out;
}

void Server::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listen socket shut down — we are draining
    }
    set_send_timeout(fd, config_.send_timeout_s);
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    bool late = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      late = draining_;
      if (!late) connections_.push_back(conn);
    }
    if (late) {
      ::close(fd);
      continue;
    }
    conn->reader = std::thread([this, conn] { reader_loop(conn); });
  }
}

void Server::reader_loop(std::shared_ptr<Connection> conn) {
  net::FrameDecoder decoder;
  std::uint8_t chunk[4096];
  for (;;) {
    const ssize_t got = ::recv(conn->fd, chunk, sizeof chunk, 0);
    if (got <= 0) {
      if (got < 0 && errno == EINTR) continue;
      // Peer closed (or we shut the socket down in drain). Marking the
      // connection dead is what lets a later hello rebind the tenant
      // and the idle sweep evict it.
      conn->dead.store(true);
      return;
    }
    decoder.feed(chunk, static_cast<std::size_t>(got));
    net::Frame frame;
    for (;;) {
      const auto verdict = decoder.next(frame);
      if (verdict == net::FrameDecodeResult::kNeedMore) break;
      if (verdict == net::FrameDecodeResult::kError) {
        stat_bad_frames_.fetch_add(1);
        obs_bad_frames_->inc();
        send_status(conn, net::FrameType::kHello,
                    net::FrameStatus::kBadFrame, decoder.error());
        conn->dead.store(true);
        // Full shutdown so the peer sees EOF after the error reply
        // (already-queued data still drains first on Linux).
        ::shutdown(conn->fd, SHUT_RDWR);
        return;  // framing has no resync point
      }
      stat_frames_.fetch_add(1);
      handle_frame(conn, std::move(frame));
      if (conn->dead.load()) {
        ::shutdown(conn->fd, SHUT_RDWR);
        return;
      }
    }
  }
}

void Server::handle_frame(const std::shared_ptr<Connection>& conn,
                          net::Frame frame) {
  frames_by_type_[static_cast<std::uint8_t>(frame.type)]->inc();
  switch (frame.type) {
    case net::FrameType::kHello: {
      const std::string name = decode_text(frame.payload);
      if (name.empty()) {
        send_status(conn, frame.type, net::FrameStatus::kBadFrame,
                    "empty tenant name");
        return;
      }
      std::lock_guard<std::mutex> lock(mu_);
      if (conn->tenant_id) {
        send_status(conn, frame.type, net::FrameStatus::kBadFrame,
                    "hello already sent on this connection");
        return;
      }
      for (std::size_t i = 0; i < tenants_.size(); ++i) {
        Tenant& tenant = *tenants_[i];
        if (tenant.evicted || tenant.name != name) continue;
        const auto held = tenant.conn.lock();
        if (held != nullptr && !held->dead.load()) {
          send_status(conn, frame.type,
                      net::FrameStatus::kDuplicateTenant,
                      "tenant already registered: " + name);
          return;
        }
        // The previous connection died: rebind the tenant to this one.
        // Its session (if any) is untouched, so a reconnecting client
        // resumes stepping exactly where it left off.
        tenant.conn = conn;
        tenant.last_activity_ns = steady_now_ns();
        conn->tenant_id = i;
        send_status(conn, frame.type, net::FrameStatus::kOk,
                    "flips_serve v" + std::to_string(net::kFrameVersion) +
                        " tenant " + name + " (rebound)");
        return;
      }
      auto tenant = std::make_unique<Tenant>();
      tenant->name = name;
      // Per-tenant instruments are born with the tenant, so a zero
      // rejection count is still visible in the kMetrics snapshot (the
      // loadgen's client-tally cross-check relies on that).
      obs::Registry& reg = obs::Registry::global();
      const obs::Labels labels{{"tenant", name}};
      tenant->rejections =
          &reg.counter("flips_serve_rejections_total", labels);
      tenant->evictions =
          &reg.counter("flips_serve_evictions_total", labels);
      tenant->queue_depth = &reg.gauge("flips_serve_queue_depth", labels);
      tenant->inflight = &reg.gauge("flips_serve_inflight_steps", labels);
      tenant->reply_seconds = &reg.histogram(
          "flips_serve_reply_seconds", labels, {1e-6, 100.0, 3});
      tenant->conn = conn;
      tenant->last_activity_ns = steady_now_ns();
      conn->tenant_id = tenants_.size();
      tenants_.push_back(std::move(tenant));
      send_status(conn, frame.type, net::FrameStatus::kOk,
                  "flips_serve v" + std::to_string(net::kFrameVersion) +
                      " tenant " + name);
      return;
    }
    case net::FrameType::kShutdown: {
      send_status(conn, frame.type, net::FrameStatus::kOk, "draining");
      {
        std::lock_guard<std::mutex> lock(mu_);
        shutdown_requested_ = true;
      }
      shutdown_cv_.notify_all();
      return;
    }
    case net::FrameType::kMetrics: {
      // Live snapshot, answered on the reader thread (never queued
      // behind session work) and tenant-less so operators can poll
      // without a hello. Payload: Prometheus text exposition.
      net::Frame reply;
      reply.type = net::FrameType::kMetrics;
      reply.payload = encode_text(obs::Registry::global().text_exposition());
      send_frame(*conn, reply);
      return;
    }
    case net::FrameType::kOpenSession:
    case net::FrameType::kStep:
    case net::FrameType::kResult:
      break;  // tenant-scoped work, handled below
  }

  if (!conn->tenant_id) {
    send_status(conn, frame.type, net::FrameStatus::kNoSession,
                "send kHello first");
    return;
  }

  Pending work;
  work.type = frame.type;
  work.conn = conn;
  work.enqueued_ns = steady_now_ns();
  if (frame.type == net::FrameType::kOpenSession) {
    std::string error;
    if (!decode_kv(frame.payload, work.kv, error)) {
      send_status(conn, frame.type, net::FrameStatus::kBadFrame, error);
      return;
    }
  } else if (frame.type == net::FrameType::kStep) {
    if (!decode_step_request(frame.payload, work.request_id)) {
      send_status(conn, frame.type, net::FrameStatus::kBadFrame,
                  "step payload must be one u64 request id");
      return;
    }
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_) {
      send_status(conn, frame.type, net::FrameStatus::kShuttingDown,
                  "server draining");
      return;
    }
    Tenant& tenant = *tenants_[*conn->tenant_id];
    if (tenant.evicted) {
      send_status(conn, frame.type, net::FrameStatus::kNoSession,
                  "tenant evicted; send kHello again");
      return;
    }
    tenant.last_activity_ns = steady_now_ns();
    if (frame.type == net::FrameType::kStep) {
      // Admission control: bound the tenant's queued + executing steps.
      if (tenant.inflight_steps >= config_.max_inflight_per_tenant) {
        stat_rejected_.fetch_add(1);
        tenant.rejections->inc();
        net::Frame reply;
        reply.type = net::FrameType::kStep;
        reply.status = net::FrameStatus::kRejected;
        reply.payload = encode_step_request(work.request_id);
        send_frame(*conn, reply);
        return;
      }
      ++tenant.inflight_steps;
      tenant.inflight->set(static_cast<double>(tenant.inflight_steps));
    }
    tenant.queue.push_back(std::move(work));
    tenant.queue_depth->set(static_cast<double>(tenant.queue.size()));
    ++pending_total_;
  }
  work_cv_.notify_one();
}

void Server::scheduler_loop() {
  // With idle eviction on, the scheduler wakes periodically to sweep
  // even when no work arrives (a dead tenant generates no frames).
  const bool evicting = config_.tenant_idle_timeout_s > 0;
  const auto sweep_every = std::chrono::duration<double>(
      std::max(0.01, config_.tenant_idle_timeout_s / 4.0));
  for (;;) {
    Pending work;
    Tenant* tenant = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      const auto runnable = [&] {
        return pending_total_ > 0 || stop_scheduler_;
      };
      if (evicting) {
        while (!runnable()) {
          work_cv_.wait_for(lock, sweep_every);
          evict_idle_tenants_locked(steady_now_ns());
        }
      } else {
        work_cv_.wait(lock, runnable);
      }
      if (pending_total_ == 0 && stop_scheduler_) return;
      // Fairness: cyclic scan over tenants, one request per turn, so a
      // flooding tenant's backlog cannot starve anyone else's queue.
      const std::size_t n = tenants_.size();
      for (std::size_t probe = 0; probe < n; ++probe) {
        Tenant& candidate = *tenants_[(rr_cursor_ + probe) % n];
        if (candidate.queue.empty()) continue;
        rr_cursor_ = (rr_cursor_ + probe + 1) % n;
        tenant = &candidate;
        work = std::move(candidate.queue.front());
        candidate.queue.pop_front();
        candidate.queue_depth->set(
            static_cast<double>(candidate.queue.size()));
        --pending_total_;
        break;
      }
    }
    // Session work runs unlocked: local training on the worker pool
    // must not block readers enqueueing (or rejecting) other tenants.
    if (tenant != nullptr) execute(*tenant, std::move(work));
  }
}

void Server::evict_idle_tenants_locked(std::uint64_t now_ns) {
  const auto timeout_ns = static_cast<std::uint64_t>(
      config_.tenant_idle_timeout_s * 1e9);
  for (auto& tenant_ptr : tenants_) {
    Tenant& tenant = *tenant_ptr;
    if (tenant.evicted) continue;
    // Only a tenant with nothing queued or executing AND a dead (or
    // gone) connection can be idle — a live client just between
    // requests is never evicted.
    if (!tenant.queue.empty() || tenant.inflight_steps > 0) continue;
    const auto held = tenant.conn.lock();
    if (held != nullptr && !held->dead.load()) continue;
    if (now_ns - tenant.last_activity_ns < timeout_ns) continue;
    // The pool slot (and the session's memory) is freed here on the
    // scheduler thread — the only thread that ever touches sessions.
    if (tenant.has_session) {
      pool_.evict(tenant.session_index);
      tenant.has_session = false;
    }
    tenant.evicted = true;
    tenant.evictions->inc();
  }
}

void Server::execute(Tenant& tenant, Pending work) {
  const auto& conn = work.conn;
  switch (work.type) {
    case net::FrameType::kOpenSession: {
      if (tenant.has_session) {
        send_status(conn, work.type, net::FrameStatus::kBadFrame,
                    "tenant already has a session");
        return;
      }
      std::string banner;
      std::unique_ptr<fl::FederationSession> session;
      try {
        session = factory_(work.kv, &workers_, &banner);
      } catch (const std::invalid_argument& bad) {
        send_status(conn, work.type, net::FrameStatus::kBadScenario,
                    bad.what());
        return;
      }
      // Every served session reports per-round/per-phase telemetry
      // under its tenant label — the kMetrics snapshot covers the
      // whole session plane, not just the socket front end.
      session->add_observer(
          std::make_shared<fl::MetricsObserver>(tenant.name));
      tenant.session_index = pool_.add(std::move(session), tenant.name);
      tenant.has_session = true;
      stat_sessions_opened_.fetch_add(1);
      obs_sessions_opened_->inc();
      net::Frame reply;
      reply.type = work.type;
      reply.payload = encode_text(banner);
      send_frame(*conn, reply);
      return;
    }
    case net::FrameType::kStep: {
      net::Frame reply;
      reply.type = work.type;
      if (!tenant.has_session) {
        reply.status = net::FrameStatus::kNoSession;
        reply.payload = encode_step_request(work.request_id);
      } else if (const auto step = pool_.step(tenant.session_index)) {
        stat_steps_.fetch_add(1);
        obs_steps_->inc();
        if (step->finished) {
          stat_sessions_finished_.fetch_add(1);
          obs_sessions_finished_->inc();
        }
        StepReply body;
        body.request_id = work.request_id;
        body.round = static_cast<std::uint32_t>(step->round);
        body.finished = step->finished;
        reply.payload = encode_step_reply(body);
      } else {
        reply.status = net::FrameStatus::kSessionDone;
        reply.payload = encode_step_request(work.request_id);
      }
      send_frame(*conn, reply);
      tenant.reply_seconds->record(
          static_cast<double>(steady_now_ns() - work.enqueued_ns) * 1e-9);
      std::lock_guard<std::mutex> lock(mu_);
      --tenant.inflight_steps;
      tenant.inflight->set(static_cast<double>(tenant.inflight_steps));
      return;
    }
    case net::FrameType::kResult: {
      if (!tenant.has_session) {
        send_status(conn, work.type, net::FrameStatus::kNoSession,
                    "open a session first");
        return;
      }
      const auto& session = pool_.session(tenant.session_index);
      if (!session.done()) {
        send_status(conn, work.type, net::FrameStatus::kNotFinished,
                    "session still has rounds left");
        return;
      }
      net::Frame reply;
      reply.type = work.type;
      reply.payload =
          encode_result_reply(session.result().final_parameters);
      send_frame(*conn, reply);
      return;
    }
    default:
      return;  // kHello/kShutdown never reach the queue
  }
}

bool Server::send_frame(Connection& conn, const net::Frame& frame) {
  const auto status = static_cast<std::uint16_t>(frame.status);
  if (status < replies_by_status_.size()) replies_by_status_[status]->inc();
  if (conn.dead.load()) return false;
  std::vector<std::uint8_t> wire;
  net::encode_frame(frame, wire);
  std::lock_guard<std::mutex> lock(conn.write_mu);
  if (!send_all(conn.fd, wire.data(), wire.size())) {
    conn.dead.store(true);
    return false;
  }
  return true;
}

void Server::send_status(const std::shared_ptr<Connection>& conn,
                         net::FrameType type, net::FrameStatus status,
                         std::string_view message) {
  net::Frame reply;
  reply.type = type;
  reply.status = status;
  reply.payload = encode_text(message);
  send_frame(*conn, reply);
}

}  // namespace flips::serve
