#include "ml/model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace flips::ml {

namespace {

// ------------------------------------------------------------------
// Dense (fully connected) layer: out = W x + b.
//
// Weights are stored input-major ([in][out]) so both the forward
// accumulation and the weight-gradient update walk contiguous memory
// with an independent accumulator per output unit — loops gcc can
// vectorize without reassociating a single dot product.

class DenseLayer final : public Layer {
 public:
  DenseLayer(std::size_t in, std::size_t out, common::Rng& rng)
      : in_(in), out_(out), init_(in * out + out, 0.0) {
    // He-style init keeps both tanh and relu stacks trainable. Bias
    // (the tail of init_) starts at zero.
    const double scale = std::sqrt(2.0 / static_cast<double>(in));
    for (std::size_t i = 0; i < in * out; ++i) init_[i] = scale * rng.normal();
  }

  // Both passes are register-blocked over the batch (4 samples per
  // block): each loaded weight row is applied to 4 samples, cutting
  // weight-load and gradient-store traffic 4x, and the 4 independent
  // accumulator sets hide FP add latency. The o-loops run over a
  // contiguous weight row, which gcc vectorizes.

  const Tensor& forward(const Tensor& input) override {
    input_ = &input;
    const std::size_t batch = input.rows();
    output_.resize(batch, out_);
    const double* __restrict__ w_base = weights_;
    const double* __restrict__ bias = bias_;
    std::size_t b = 0;
    for (; b + 4 <= batch; b += 4) {
      const double* __restrict__ x0 = input.row(b);
      const double* __restrict__ x1 = input.row(b + 1);
      const double* __restrict__ x2 = input.row(b + 2);
      const double* __restrict__ x3 = input.row(b + 3);
      double* __restrict__ y0 = output_.row(b);
      double* __restrict__ y1 = output_.row(b + 1);
      double* __restrict__ y2 = output_.row(b + 2);
      double* __restrict__ y3 = output_.row(b + 3);
      std::copy(bias, bias + out_, y0);
      std::copy(bias, bias + out_, y1);
      std::copy(bias, bias + out_, y2);
      std::copy(bias, bias + out_, y3);
      for (std::size_t i = 0; i < in_; ++i) {
        const double xi0 = x0[i];
        const double xi1 = x1[i];
        const double xi2 = x2[i];
        const double xi3 = x3[i];
        const double* __restrict__ w = w_base + i * out_;
        for (std::size_t o = 0; o < out_; ++o) {
          const double wo = w[o];
          y0[o] += xi0 * wo;
          y1[o] += xi1 * wo;
          y2[o] += xi2 * wo;
          y3[o] += xi3 * wo;
        }
      }
    }
    for (; b < batch; ++b) {
      const double* __restrict__ x = input.row(b);
      double* __restrict__ y = output_.row(b);
      std::copy(bias, bias + out_, y);
      for (std::size_t i = 0; i < in_; ++i) {
        const double xi = x[i];
        const double* __restrict__ w = w_base + i * out_;
        for (std::size_t o = 0; o < out_; ++o) y[o] += xi * w[o];
      }
    }
    return output_;
  }

  const Tensor& backward(const Tensor& grad_output,
                         bool need_input_grad) override {
    const std::size_t batch = grad_output.rows();
    grad_input_.resize(need_input_grad ? batch : 0, in_);
    double* __restrict__ gb = grad_bias_;
    double* __restrict__ gw_base = grad_weights_;
    const double* __restrict__ w_base = weights_;
    std::size_t b = 0;
    for (; b + 4 <= batch; b += 4) {
      const double* __restrict__ g0 = grad_output.row(b);
      const double* __restrict__ g1 = grad_output.row(b + 1);
      const double* __restrict__ g2 = grad_output.row(b + 2);
      const double* __restrict__ g3 = grad_output.row(b + 3);
      const double* __restrict__ x0 = input_->row(b);
      const double* __restrict__ x1 = input_->row(b + 1);
      const double* __restrict__ x2 = input_->row(b + 2);
      const double* __restrict__ x3 = input_->row(b + 3);
      // Only touch grad_input_ rows when they exist: with
      // need_input_grad false the tensor has zero rows, and forming
      // data() + offset over an empty buffer would be UB.
      double* __restrict__ gi0 =
          need_input_grad ? grad_input_.row(b) : nullptr;
      double* __restrict__ gi1 =
          need_input_grad ? grad_input_.row(b + 1) : nullptr;
      double* __restrict__ gi2 =
          need_input_grad ? grad_input_.row(b + 2) : nullptr;
      double* __restrict__ gi3 =
          need_input_grad ? grad_input_.row(b + 3) : nullptr;
      for (std::size_t o = 0; o < out_; ++o) {
        gb[o] += (g0[o] + g1[o]) + (g2[o] + g3[o]);
      }
      for (std::size_t i = 0; i < in_; ++i) {
        const double xi0 = x0[i];
        const double xi1 = x1[i];
        const double xi2 = x2[i];
        const double xi3 = x3[i];
        double* __restrict__ gw = gw_base + i * out_;
        if (need_input_grad) {
          const double* __restrict__ w = w_base + i * out_;
          double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
          for (std::size_t o = 0; o < out_; ++o) {
            const double wo = w[o];
            gw[o] +=
                (xi0 * g0[o] + xi1 * g1[o]) + (xi2 * g2[o] + xi3 * g3[o]);
            a0 += wo * g0[o];
            a1 += wo * g1[o];
            a2 += wo * g2[o];
            a3 += wo * g3[o];
          }
          gi0[i] = a0;
          gi1[i] = a1;
          gi2[i] = a2;
          gi3[i] = a3;
        } else {
          for (std::size_t o = 0; o < out_; ++o) {
            gw[o] +=
                (xi0 * g0[o] + xi1 * g1[o]) + (xi2 * g2[o] + xi3 * g3[o]);
          }
        }
      }
    }
    for (; b < batch; ++b) {
      const double* __restrict__ g = grad_output.row(b);
      const double* __restrict__ x = input_->row(b);
      double* __restrict__ gi =
          need_input_grad ? grad_input_.row(b) : nullptr;
      for (std::size_t o = 0; o < out_; ++o) gb[o] += g[o];
      for (std::size_t i = 0; i < in_; ++i) {
        const double xi = x[i];
        double* __restrict__ gw = gw_base + i * out_;
        if (need_input_grad) {
          const double* __restrict__ w = w_base + i * out_;
          double acc = 0.0;
          for (std::size_t o = 0; o < out_; ++o) {
            gw[o] += xi * g[o];
            acc += w[o] * g[o];
          }
          gi[i] = acc;
        } else {
          for (std::size_t o = 0; o < out_; ++o) gw[o] += xi * g[o];
        }
      }
    }
    return grad_input_;
  }

  std::size_t num_parameters() const override { return in_ * out_ + out_; }
  void export_initial_parameters(double* dst) override {
    std::copy(init_.begin(), init_.end(), dst);
    init_.clear();
    init_.shrink_to_fit();
  }
  void bind(double*& params, double*& grads) override {
    weights_ = params;
    bias_ = params + in_ * out_;
    params += num_parameters();
    grad_weights_ = grads;
    grad_bias_ = grads + in_ * out_;
    grads += num_parameters();
  }
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<DenseLayer>(*this);
  }

 private:
  std::size_t in_;
  std::size_t out_;
  std::vector<double> init_;   ///< initial weights until bound
  double* weights_ = nullptr;  ///< [in][out] segment of the flat params
  double* bias_ = nullptr;
  double* grad_weights_ = nullptr;
  double* grad_bias_ = nullptr;
  /// Borrowed: forward's input outlives the forward/backward pair in
  /// the Sequential chain (caller's features or the previous layer's
  /// owned output buffer), so no copy is taken.
  const Tensor* input_ = nullptr;
  Tensor output_;
  Tensor grad_input_;
};

// ------------------------------------------------------------------
// Element-wise activations.

enum class Activation { kRelu, kTanh };

class ActivationLayer final : public Layer {
 public:
  explicit ActivationLayer(Activation kind) : kind_(kind) {}

  const Tensor& forward(const Tensor& input) override {
    output_.resize(input.rows(), input.cols());
    const double* __restrict__ x = input.data();
    double* __restrict__ v = output_.data();
    const std::size_t n = output_.size();
    if (kind_ == Activation::kRelu) {
      for (std::size_t i = 0; i < n; ++i) v[i] = x[i] > 0.0 ? x[i] : 0.0;
    } else {
      for (std::size_t i = 0; i < n; ++i) v[i] = std::tanh(x[i]);
    }
    return output_;
  }

  const Tensor& backward(const Tensor& grad_output,
                         bool /*need_input_grad*/) override {
    // Element-wise derivative is as cheap as the skip test; activations
    // are never a model's first layer anyway.
    grad_input_.resize(grad_output.rows(), grad_output.cols());
    const double* __restrict__ go = grad_output.data();
    double* __restrict__ g = grad_input_.data();
    const double* __restrict__ y = output_.data();
    const std::size_t n = grad_input_.size();
    if (kind_ == Activation::kRelu) {
      for (std::size_t i = 0; i < n; ++i) g[i] = y[i] > 0.0 ? go[i] : 0.0;
    } else {
      for (std::size_t i = 0; i < n; ++i) g[i] = go[i] * (1.0 - y[i] * y[i]);
    }
    return grad_input_;
  }

  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<ActivationLayer>(*this);
  }

 private:
  Activation kind_;
  Tensor output_;
  Tensor grad_input_;
};

// ------------------------------------------------------------------
// 2-D convolution over flattened [channel][y][x] rows.

class Conv2dLayer final : public Layer {
 public:
  Conv2dLayer(std::size_t in_channels, std::size_t out_channels,
              std::size_t kernel, std::size_t input_size, bool same_padding,
              common::Rng& rng)
      : in_ch_(in_channels), out_ch_(out_channels), kernel_(kernel),
        in_size_(input_size),
        out_size_(same_padding ? input_size : input_size - kernel + 1),
        pad_(same_padding ? kernel / 2 : 0),
        init_(out_channels * in_channels * kernel * kernel + out_channels,
              0.0) {
    const double scale =
        std::sqrt(2.0 / static_cast<double>(in_channels * kernel * kernel));
    const std::size_t nw = out_channels * in_channels * kernel * kernel;
    for (std::size_t i = 0; i < nw; ++i) init_[i] = scale * rng.normal();
  }

  std::size_t output_dim() const { return out_ch_ * out_size_ * out_size_; }

  const Tensor& forward(const Tensor& input) override {
    input_ = &input;
    const std::size_t batch = input.rows();
    output_.resize(batch, output_dim());
    for (std::size_t b = 0; b < batch; ++b) {
      const double* x = input.row(b);
      double* y = output_.row(b);
      for (std::size_t oc = 0; oc < out_ch_; ++oc) {
        for (std::size_t oy = 0; oy < out_size_; ++oy) {
          for (std::size_t ox = 0; ox < out_size_; ++ox) {
            double acc = bias_[oc];
            for (std::size_t ic = 0; ic < in_ch_; ++ic) {
              for (std::size_t ky = 0; ky < kernel_; ++ky) {
                const std::ptrdiff_t iy =
                    static_cast<std::ptrdiff_t>(oy + ky) -
                    static_cast<std::ptrdiff_t>(pad_);
                if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(in_size_)) {
                  continue;
                }
                // The kx span that stays inside the row is contiguous
                // in both the kernel and the input: walk it with two
                // advancing pointers.
                const double* w_row = weights_ +
                    ((oc * in_ch_ + ic) * kernel_ + ky) * kernel_;
                const double* x_row = x +
                    (ic * in_size_ + static_cast<std::size_t>(iy)) * in_size_;
                for (std::size_t kx = 0; kx < kernel_; ++kx) {
                  const std::ptrdiff_t ix =
                      static_cast<std::ptrdiff_t>(ox + kx) -
                      static_cast<std::ptrdiff_t>(pad_);
                  if (ix < 0 ||
                      ix >= static_cast<std::ptrdiff_t>(in_size_)) {
                    continue;
                  }
                  acc += w_row[kx] * x_row[static_cast<std::size_t>(ix)];
                }
              }
            }
            y[(oc * out_size_ + oy) * out_size_ + ox] = acc;
          }
        }
      }
    }
    return output_;
  }

  const Tensor& backward(const Tensor& grad_output,
                         bool need_input_grad) override {
    const std::size_t batch = grad_output.rows();
    grad_input_.resize(need_input_grad ? batch : 0,
                       in_ch_ * in_size_ * in_size_);
    grad_input_.fill(0.0);
    for (std::size_t b = 0; b < batch; ++b) {
      const double* go = grad_output.row(b);
      const double* x = input_->row(b);
      double* gi = need_input_grad ? grad_input_.row(b) : nullptr;
      for (std::size_t oc = 0; oc < out_ch_; ++oc) {
        for (std::size_t oy = 0; oy < out_size_; ++oy) {
          for (std::size_t ox = 0; ox < out_size_; ++ox) {
            const double g = go[(oc * out_size_ + oy) * out_size_ + ox];
            grad_bias_[oc] += g;
            for (std::size_t ic = 0; ic < in_ch_; ++ic) {
              for (std::size_t ky = 0; ky < kernel_; ++ky) {
                const std::ptrdiff_t iy =
                    static_cast<std::ptrdiff_t>(oy + ky) -
                    static_cast<std::ptrdiff_t>(pad_);
                if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(in_size_)) {
                  continue;
                }
                const std::size_t row_base =
                    (ic * in_size_ + static_cast<std::size_t>(iy)) * in_size_;
                const std::size_t w_base =
                    ((oc * in_ch_ + ic) * kernel_ + ky) * kernel_;
                for (std::size_t kx = 0; kx < kernel_; ++kx) {
                  const std::ptrdiff_t ix =
                      static_cast<std::ptrdiff_t>(ox + kx) -
                      static_cast<std::ptrdiff_t>(pad_);
                  if (ix < 0 ||
                      ix >= static_cast<std::ptrdiff_t>(in_size_)) {
                    continue;
                  }
                  const std::size_t in_index =
                      row_base + static_cast<std::size_t>(ix);
                  grad_weights_[w_base + kx] += g * x[in_index];
                  if (need_input_grad) {
                    gi[in_index] += g * weights_[w_base + kx];
                  }
                }
              }
            }
          }
        }
      }
    }
    return grad_input_;
  }

  std::size_t num_parameters() const override {
    return out_ch_ * in_ch_ * kernel_ * kernel_ + out_ch_;
  }
  void export_initial_parameters(double* dst) override {
    std::copy(init_.begin(), init_.end(), dst);
    init_.clear();
    init_.shrink_to_fit();
  }
  void bind(double*& params, double*& grads) override {
    const std::size_t nw = out_ch_ * in_ch_ * kernel_ * kernel_;
    weights_ = params;
    bias_ = params + nw;
    params += num_parameters();
    grad_weights_ = grads;
    grad_bias_ = grads + nw;
    grads += num_parameters();
  }
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Conv2dLayer>(*this);
  }

 private:
  std::size_t in_ch_;
  std::size_t out_ch_;
  std::size_t kernel_;
  std::size_t in_size_;
  std::size_t out_size_;
  std::size_t pad_;
  std::vector<double> init_;
  double* weights_ = nullptr;  ///< [oc][ic][ky][kx]
  double* bias_ = nullptr;
  double* grad_weights_ = nullptr;
  double* grad_bias_ = nullptr;
  const Tensor* input_ = nullptr;  ///< borrowed, same rule as DenseLayer
  Tensor output_;
  Tensor grad_input_;
};

// ------------------------------------------------------------------
// 2x2 average pooling.

class AvgPool2dLayer final : public Layer {
 public:
  AvgPool2dLayer(std::size_t channels, std::size_t input_size)
      : ch_(channels), in_size_(input_size), out_size_(input_size / 2) {}

  std::size_t output_dim() const { return ch_ * out_size_ * out_size_; }

  const Tensor& forward(const Tensor& input) override {
    const std::size_t batch = input.rows();
    output_.resize(batch, output_dim());
    for (std::size_t b = 0; b < batch; ++b) {
      const double* x = input.row(b);
      double* y = output_.row(b);
      for (std::size_t c = 0; c < ch_; ++c) {
        for (std::size_t oy = 0; oy < out_size_; ++oy) {
          const double* r0 = x + (c * in_size_ + 2 * oy) * in_size_;
          const double* r1 = r0 + in_size_;
          double* out_row = y + (c * out_size_ + oy) * out_size_;
          for (std::size_t ox = 0; ox < out_size_; ++ox) {
            out_row[ox] = 0.25 * (r0[2 * ox] + r0[2 * ox + 1] +
                                  r1[2 * ox] + r1[2 * ox + 1]);
          }
        }
      }
    }
    return output_;
  }

  const Tensor& backward(const Tensor& grad_output,
                         bool need_input_grad) override {
    const std::size_t batch = grad_output.rows();
    if (!need_input_grad) {
      grad_input_.resize(0, ch_ * in_size_ * in_size_);
      return grad_input_;
    }
    grad_input_.resize(batch, ch_ * in_size_ * in_size_);
    grad_input_.fill(0.0);
    for (std::size_t b = 0; b < batch; ++b) {
      const double* go = grad_output.row(b);
      double* gi = grad_input_.row(b);
      for (std::size_t c = 0; c < ch_; ++c) {
        for (std::size_t oy = 0; oy < out_size_; ++oy) {
          const double* g_row = go + (c * out_size_ + oy) * out_size_;
          double* r0 = gi + (c * in_size_ + 2 * oy) * in_size_;
          double* r1 = r0 + in_size_;
          for (std::size_t ox = 0; ox < out_size_; ++ox) {
            const double g = 0.25 * g_row[ox];
            r0[2 * ox] += g;
            r0[2 * ox + 1] += g;
            r1[2 * ox] += g;
            r1[2 * ox + 1] += g;
          }
        }
      }
    }
    return grad_input_;
  }

  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<AvgPool2dLayer>(*this);
  }

 private:
  std::size_t ch_;
  std::size_t in_size_;
  std::size_t out_size_;
  Tensor output_;
  Tensor grad_input_;
};

// ------------------------------------------------------------------
// Global average pooling: [ch][y][x] -> [ch].

class GlobalAvgPoolLayer final : public Layer {
 public:
  GlobalAvgPoolLayer(std::size_t channels, std::size_t input_size)
      : ch_(channels), in_size_(input_size) {}

  const Tensor& forward(const Tensor& input) override {
    const std::size_t plane = in_size_ * in_size_;
    const double inv = 1.0 / static_cast<double>(plane);
    const std::size_t batch = input.rows();
    output_.resize(batch, ch_);
    for (std::size_t b = 0; b < batch; ++b) {
      const double* x = input.row(b);
      double* y = output_.row(b);
      for (std::size_t c = 0; c < ch_; ++c) {
        double acc = 0.0;
        const double* px = x + c * plane;
        for (std::size_t i = 0; i < plane; ++i) acc += px[i];
        y[c] = acc * inv;
      }
    }
    return output_;
  }

  const Tensor& backward(const Tensor& grad_output,
                         bool need_input_grad) override {
    const std::size_t plane = in_size_ * in_size_;
    const double inv = 1.0 / static_cast<double>(plane);
    const std::size_t batch = grad_output.rows();
    if (!need_input_grad) {
      grad_input_.resize(0, ch_ * plane);
      return grad_input_;
    }
    grad_input_.resize(batch, ch_ * plane);
    for (std::size_t b = 0; b < batch; ++b) {
      const double* go = grad_output.row(b);
      double* gi = grad_input_.row(b);
      for (std::size_t c = 0; c < ch_; ++c) {
        const double g = go[c] * inv;
        double* pg = gi + c * plane;
        for (std::size_t i = 0; i < plane; ++i) pg[i] = g;
      }
    }
    return grad_input_;
  }

  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<GlobalAvgPoolLayer>(*this);
  }

 private:
  std::size_t ch_;
  std::size_t in_size_;
  Tensor output_;
  Tensor grad_input_;
};

// ------------------------------------------------------------------
// DenseNet-style block: each inner conv sees the concatenation of the
// block input and all previous inner outputs. Handled as one composite
// layer so Sequential stays a linear chain; its convs bind into the
// owning Sequential's flat buffers like any other layer.

class DenseBlockLayer final : public Layer {
 public:
  DenseBlockLayer(std::size_t in_channels, std::size_t growth,
                  std::size_t layers, std::size_t image_size,
                  common::Rng& rng)
      : in_ch_(in_channels), growth_(growth), size_(image_size) {
    std::size_t channels = in_channels;
    for (std::size_t l = 0; l < layers; ++l) {
      convs_.push_back(std::make_unique<Conv2dLayer>(
          channels, growth, 3, image_size, /*same_padding=*/true, rng));
      relus_.emplace_back(Activation::kRelu);
      channels += growth;
    }
  }

  DenseBlockLayer(const DenseBlockLayer& other)
      : in_ch_(other.in_ch_), growth_(other.growth_), size_(other.size_),
        relus_(other.relus_), states_(other.states_), grad_(other.grad_),
        narrowed_(other.narrowed_), tail_(other.tail_) {
    convs_.reserve(other.convs_.size());
    for (const auto& conv : other.convs_) {
      auto cloned = conv->clone();
      convs_.emplace_back(static_cast<Conv2dLayer*>(cloned.release()));
    }
  }

  std::size_t output_channels() const {
    return in_ch_ + growth_ * convs_.size();
  }

  const Tensor& forward(const Tensor& input) override {
    const std::size_t plane = size_ * size_;
    const std::size_t batch = input.rows();
    states_.resize(convs_.size() + 1);
    states_[0] = input;
    for (std::size_t l = 0; l < convs_.size(); ++l) {
      const Tensor& fresh = relus_[l].forward(convs_[l]->forward(states_[l]));
      const std::size_t in_cols = states_[l].cols();
      Tensor& next = states_[l + 1];
      next.resize(batch, in_cols + growth_ * plane);
      for (std::size_t b = 0; b < batch; ++b) {
        double* dst = next.row(b);
        std::copy(states_[l].row(b), states_[l].row(b) + in_cols, dst);
        std::copy(fresh.row(b), fresh.row(b) + growth_ * plane,
                  dst + in_cols);
      }
    }
    return states_.back();
  }

  const Tensor& backward(const Tensor& grad_output,
                         bool need_input_grad) override {
    const std::size_t plane = size_ * size_;
    const std::size_t batch = grad_output.rows();
    grad_ = grad_output;  // gradient w.r.t. full concatenation
    for (std::size_t l = convs_.size(); l-- > 0;) {
      const std::size_t in_channels = in_ch_ + growth_ * l;
      const std::size_t split = in_channels * plane;
      // The first conv's input is the block input: its input gradient
      // is only needed when something upstream consumes ours.
      const bool conv_needs = l > 0 || need_input_grad;
      // Split this conv's output gradient (the tail) off the front.
      tail_.resize(batch, growth_ * plane);
      for (std::size_t b = 0; b < batch; ++b) {
        std::copy(grad_.row(b) + split, grad_.row(b) + grad_.cols(),
                  tail_.row(b));
      }
      const Tensor& through =
          convs_[l]->backward(relus_[l].backward(tail_, true), conv_needs);
      narrowed_.resize(batch, split);
      for (std::size_t b = 0; b < batch; ++b) {
        const double* g = grad_.row(b);
        double* dst = narrowed_.row(b);
        if (conv_needs) {
          const double* t = through.row(b);
          for (std::size_t i = 0; i < split; ++i) dst[i] = g[i] + t[i];
        } else {
          std::copy(g, g + split, dst);
        }
      }
      std::swap(grad_, narrowed_);  // scratch ping-pong, no allocation
    }
    return grad_;
  }

  std::size_t num_parameters() const override {
    std::size_t n = 0;
    for (const auto& conv : convs_) n += conv->num_parameters();
    return n;
  }
  void export_initial_parameters(double* dst) override {
    for (auto& conv : convs_) {
      conv->export_initial_parameters(dst);
      dst += conv->num_parameters();
    }
  }
  void bind(double*& params, double*& grads) override {
    for (auto& conv : convs_) conv->bind(params, grads);
  }
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<DenseBlockLayer>(*this);
  }

 private:
  std::size_t in_ch_;
  std::size_t growth_;
  std::size_t size_;
  std::vector<std::unique_ptr<Conv2dLayer>> convs_;
  std::vector<ActivationLayer> relus_;
  std::vector<Tensor> states_;  ///< concatenations, one per stage
  Tensor grad_;
  Tensor narrowed_;
  Tensor tail_;
};

}  // namespace

// ------------------------------------------------------------------
// Sequential

Sequential::Sequential(const Sequential& other)
    : params_(other.params_), grads_(other.grads_) {
  layers_.reserve(other.layers_.size());
  for (const auto& layer : other.layers_) layers_.push_back(layer->clone());
  rebind();
}

Sequential& Sequential::operator=(const Sequential& other) {
  if (this == &other) return *this;
  params_ = other.params_;
  grads_ = other.grads_;
  layers_.clear();
  layers_.reserve(other.layers_.size());
  for (const auto& layer : other.layers_) layers_.push_back(layer->clone());
  rebind();
  return *this;
}

void Sequential::rebind() {
  double* p = params_.data();
  double* g = grads_.data();
  for (auto& layer : layers_) layer->bind(p, g);
}

void Sequential::add(std::unique_ptr<Layer> layer) {
  const std::size_t offset = params_.size();
  const std::size_t n = layer->num_parameters();
  params_.resize(offset + n);
  grads_.resize(offset + n, 0.0);
  layer->export_initial_parameters(params_.data() + offset);
  layers_.push_back(std::move(layer));
  rebind();  // resize may have moved both buffers
}

void Sequential::set_parameters(const std::vector<double>& params) {
  assert(params.size() == params_.size());
  std::copy(params.begin(), params.end(), params_.begin());
}

void Sequential::apply_gradients(double learning_rate) {
  const std::size_t n = params_.size();
  for (std::size_t i = 0; i < n; ++i) {
    params_[i] -= learning_rate * grads_[i];
  }
}

void Sequential::zero_gradients() {
  std::fill(grads_.begin(), grads_.end(), 0.0);
}

const Tensor& Sequential::forward(const Tensor& features) {
  const Tensor* x = &features;
  for (auto& layer : layers_) x = &layer->forward(*x);
  return *x;
}

namespace {

/// Softmax in place, row by row. Numerically stabilized.
void softmax_rows(Tensor& logits) {
  const std::size_t cols = logits.cols();
  for (std::size_t b = 0; b < logits.rows(); ++b) {
    double* row = logits.row(b);
    double max = cols == 0 ? 0.0 : row[0];
    for (std::size_t c = 1; c < cols; ++c) max = std::max(max, row[c]);
    double sum = 0.0;
    for (std::size_t c = 0; c < cols; ++c) {
      row[c] = std::exp(row[c] - max);
      sum += row[c];
    }
    const double inv = 1.0 / sum;
    for (std::size_t c = 0; c < cols; ++c) row[c] *= inv;
  }
}

}  // namespace

double Sequential::train_step_gradient(
    const Tensor& features, const std::vector<std::uint32_t>& labels) {
  zero_gradients();
  if (features.rows() == 0) return 0.0;
  probs_ = forward(features);
  softmax_rows(probs_);

  const std::size_t batch = features.rows();
  double loss = 0.0;
  const double inv_batch = 1.0 / static_cast<double>(batch);
  // Turn probs_ into dL/dlogits in place: (p - onehot(y)) / batch.
  for (std::size_t b = 0; b < batch; ++b) {
    double* row = probs_.row(b);
    const std::uint32_t y = labels[b];
    loss -= std::log(std::max(row[y], 1e-12));
    row[y] -= 1.0;
    for (std::size_t c = 0; c < probs_.cols(); ++c) row[c] *= inv_batch;
  }
  const Tensor* grad = &probs_;
  for (std::size_t l = layers_.size(); l-- > 0;) {
    grad = &layers_[l]->backward(*grad, /*need_input_grad=*/l > 0);
  }
  return loss * inv_batch;
}

double Sequential::evaluate_loss(const Tensor& features,
                                 const std::vector<std::uint32_t>& labels) {
  if (features.rows() == 0) return 0.0;
  probs_ = forward(features);
  softmax_rows(probs_);
  double loss = 0.0;
  for (std::size_t b = 0; b < features.rows(); ++b) {
    loss -= std::log(std::max(probs_(b, labels[b]), 1e-12));
  }
  return loss / static_cast<double>(features.rows());
}

std::uint32_t Sequential::predict(const std::vector<double>& x) {
  single_.resize(1, x.size());
  std::copy(x.begin(), x.end(), single_.row(0));
  const Tensor& logits = forward(single_);
  const double* row = logits.row(0);
  std::size_t best = 0;
  for (std::size_t i = 1; i < logits.cols(); ++i) {
    if (row[i] > row[best]) best = i;
  }
  return static_cast<std::uint32_t>(best);
}

// ------------------------------------------------------------------
// ModelFactory

Sequential ModelFactory::logistic_regression(std::size_t input_dim,
                                             std::size_t num_classes,
                                             common::Rng& rng) {
  Sequential model;
  model.add(std::make_unique<DenseLayer>(input_dim, num_classes, rng));
  return model;
}

Sequential ModelFactory::mlp(std::size_t input_dim, std::size_t hidden,
                             std::size_t num_classes, common::Rng& rng) {
  Sequential model;
  model.add(std::make_unique<DenseLayer>(input_dim, hidden, rng));
  model.add(std::make_unique<ActivationLayer>(Activation::kTanh));
  model.add(std::make_unique<DenseLayer>(hidden, num_classes, rng));
  return model;
}

Sequential ModelFactory::lenet5(std::size_t image_size,
                                std::size_t num_classes, common::Rng& rng) {
  Sequential model;
  const std::size_t c1 = image_size - 4;       // 5x5 valid conv
  const std::size_t p1 = c1 / 2;               // 2x2 avg pool
  // Small inputs (LeNet expects 32x32; the benches use 16x16 patches)
  // shrink the second conv kernel so the feature map stays non-empty.
  const std::size_t k2 = p1 >= 5 ? 5 : (p1 >= 3 ? 3 : 1);
  const std::size_t c2 = p1 - k2 + 1;          // k2 x k2 valid conv
  model.add(std::make_unique<Conv2dLayer>(1, 6, 5, image_size, false, rng));
  model.add(std::make_unique<ActivationLayer>(Activation::kTanh));
  model.add(std::make_unique<AvgPool2dLayer>(6, c1));
  model.add(std::make_unique<Conv2dLayer>(6, 16, k2, p1, false, rng));
  model.add(std::make_unique<ActivationLayer>(Activation::kTanh));
  std::size_t p2 = c2;
  if (c2 >= 2) {  // a 2x2 pool on a 1x1 map would erase the features
    model.add(std::make_unique<AvgPool2dLayer>(16, c2));
    p2 = c2 / 2;
  }
  model.add(std::make_unique<DenseLayer>(16 * p2 * p2, 32, rng));
  model.add(std::make_unique<ActivationLayer>(Activation::kTanh));
  model.add(std::make_unique<DenseLayer>(32, num_classes, rng));
  return model;
}

Sequential ModelFactory::mini_densenet(std::size_t image_size,
                                       std::size_t num_classes,
                                       std::size_t growth,
                                       std::size_t layers,
                                       common::Rng& rng) {
  Sequential model;
  auto block = std::make_unique<DenseBlockLayer>(1, growth, layers,
                                                 image_size, rng);
  const std::size_t channels = block->output_channels();
  model.add(std::move(block));
  model.add(std::make_unique<GlobalAvgPoolLayer>(channels, image_size));
  model.add(std::make_unique<DenseLayer>(channels, num_classes, rng));
  return model;
}

}  // namespace flips::ml
