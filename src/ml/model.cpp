#include "ml/model.h"

#include <algorithm>
#include <cmath>

namespace flips::ml {

namespace {

// ------------------------------------------------------------------
// Dense (fully connected) layer: out = W x + b.

class DenseLayer final : public Layer {
 public:
  DenseLayer(std::size_t in, std::size_t out, common::Rng& rng)
      : in_(in), out_(out), weights_(in * out), bias_(out, 0.0),
        grad_weights_(in * out, 0.0), grad_bias_(out, 0.0) {
    // He-style init keeps both tanh and relu stacks trainable.
    const double scale = std::sqrt(2.0 / static_cast<double>(in));
    for (auto& w : weights_) w = scale * rng.normal();
  }

  Matrix forward(const Matrix& input) override {
    input_ = input;
    Matrix output(input.size(), std::vector<double>(out_, 0.0));
    for (std::size_t b = 0; b < input.size(); ++b) {
      const auto& x = input[b];
      auto& y = output[b];
      for (std::size_t o = 0; o < out_; ++o) {
        double acc = bias_[o];
        const double* w = &weights_[o * in_];
        for (std::size_t i = 0; i < in_; ++i) acc += w[i] * x[i];
        y[o] = acc;
      }
    }
    return output;
  }

  Matrix backward(const Matrix& grad_output) override {
    Matrix grad_input(grad_output.size(), std::vector<double>(in_, 0.0));
    for (std::size_t b = 0; b < grad_output.size(); ++b) {
      const auto& go = grad_output[b];
      const auto& x = input_[b];
      auto& gi = grad_input[b];
      for (std::size_t o = 0; o < out_; ++o) {
        const double g = go[o];
        grad_bias_[o] += g;
        double* gw = &grad_weights_[o * in_];
        const double* w = &weights_[o * in_];
        for (std::size_t i = 0; i < in_; ++i) {
          gw[i] += g * x[i];
          gi[i] += g * w[i];
        }
      }
    }
    return grad_input;
  }

  std::size_t num_parameters() const override {
    return weights_.size() + bias_.size();
  }
  void collect_parameters(std::vector<double>& out) const override {
    out.insert(out.end(), weights_.begin(), weights_.end());
    out.insert(out.end(), bias_.begin(), bias_.end());
  }
  void load_parameters(const double*& cursor) override {
    std::copy(cursor, cursor + weights_.size(), weights_.begin());
    cursor += weights_.size();
    std::copy(cursor, cursor + bias_.size(), bias_.begin());
    cursor += bias_.size();
  }
  void collect_gradients(std::vector<double>& out) const override {
    out.insert(out.end(), grad_weights_.begin(), grad_weights_.end());
    out.insert(out.end(), grad_bias_.begin(), grad_bias_.end());
  }
  void apply_gradients(double learning_rate) override {
    for (std::size_t i = 0; i < weights_.size(); ++i) {
      weights_[i] -= learning_rate * grad_weights_[i];
    }
    for (std::size_t i = 0; i < bias_.size(); ++i) {
      bias_[i] -= learning_rate * grad_bias_[i];
    }
  }
  void zero_gradients() override {
    std::fill(grad_weights_.begin(), grad_weights_.end(), 0.0);
    std::fill(grad_bias_.begin(), grad_bias_.end(), 0.0);
  }
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<DenseLayer>(*this);
  }

 private:
  std::size_t in_;
  std::size_t out_;
  std::vector<double> weights_;  ///< row-major [out][in]
  std::vector<double> bias_;
  std::vector<double> grad_weights_;
  std::vector<double> grad_bias_;
  Matrix input_;
};

// ------------------------------------------------------------------
// Element-wise activations.

enum class Activation { kRelu, kTanh };

class ActivationLayer final : public Layer {
 public:
  explicit ActivationLayer(Activation kind) : kind_(kind) {}

  Matrix forward(const Matrix& input) override {
    output_ = input;
    for (auto& row : output_) {
      for (auto& v : row) {
        v = kind_ == Activation::kRelu ? (v > 0.0 ? v : 0.0) : std::tanh(v);
      }
    }
    return output_;
  }

  Matrix backward(const Matrix& grad_output) override {
    Matrix grad_input = grad_output;
    for (std::size_t b = 0; b < grad_input.size(); ++b) {
      for (std::size_t i = 0; i < grad_input[b].size(); ++i) {
        const double y = output_[b][i];
        grad_input[b][i] *=
            kind_ == Activation::kRelu ? (y > 0.0 ? 1.0 : 0.0) : 1.0 - y * y;
      }
    }
    return grad_input;
  }

  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<ActivationLayer>(*this);
  }

 private:
  Activation kind_;
  Matrix output_;
};

// ------------------------------------------------------------------
// 2-D convolution over flattened [channel][y][x] rows.

class Conv2dLayer final : public Layer {
 public:
  Conv2dLayer(std::size_t in_channels, std::size_t out_channels,
              std::size_t kernel, std::size_t input_size, bool same_padding,
              common::Rng& rng)
      : in_ch_(in_channels), out_ch_(out_channels), kernel_(kernel),
        in_size_(input_size),
        out_size_(same_padding ? input_size : input_size - kernel + 1),
        pad_(same_padding ? kernel / 2 : 0),
        weights_(out_channels * in_channels * kernel * kernel),
        bias_(out_channels, 0.0), grad_weights_(weights_.size(), 0.0),
        grad_bias_(out_channels, 0.0) {
    const double scale =
        std::sqrt(2.0 / static_cast<double>(in_channels * kernel * kernel));
    for (auto& w : weights_) w = scale * rng.normal();
  }

  std::size_t output_dim() const { return out_ch_ * out_size_ * out_size_; }

  Matrix forward(const Matrix& input) override {
    input_ = input;
    Matrix output(input.size(), std::vector<double>(output_dim(), 0.0));
    for (std::size_t b = 0; b < input.size(); ++b) {
      const auto& x = input[b];
      auto& y = output[b];
      for (std::size_t oc = 0; oc < out_ch_; ++oc) {
        for (std::size_t oy = 0; oy < out_size_; ++oy) {
          for (std::size_t ox = 0; ox < out_size_; ++ox) {
            double acc = bias_[oc];
            for (std::size_t ic = 0; ic < in_ch_; ++ic) {
              for (std::size_t ky = 0; ky < kernel_; ++ky) {
                const std::ptrdiff_t iy =
                    static_cast<std::ptrdiff_t>(oy + ky) -
                    static_cast<std::ptrdiff_t>(pad_);
                if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(in_size_)) {
                  continue;
                }
                for (std::size_t kx = 0; kx < kernel_; ++kx) {
                  const std::ptrdiff_t ix =
                      static_cast<std::ptrdiff_t>(ox + kx) -
                      static_cast<std::ptrdiff_t>(pad_);
                  if (ix < 0 ||
                      ix >= static_cast<std::ptrdiff_t>(in_size_)) {
                    continue;
                  }
                  acc += weight_at(oc, ic, ky, kx) *
                         x[(ic * in_size_ + static_cast<std::size_t>(iy)) *
                               in_size_ +
                           static_cast<std::size_t>(ix)];
                }
              }
            }
            y[(oc * out_size_ + oy) * out_size_ + ox] = acc;
          }
        }
      }
    }
    return output;
  }

  Matrix backward(const Matrix& grad_output) override {
    Matrix grad_input(grad_output.size(),
                      std::vector<double>(in_ch_ * in_size_ * in_size_, 0.0));
    for (std::size_t b = 0; b < grad_output.size(); ++b) {
      const auto& go = grad_output[b];
      const auto& x = input_[b];
      auto& gi = grad_input[b];
      for (std::size_t oc = 0; oc < out_ch_; ++oc) {
        for (std::size_t oy = 0; oy < out_size_; ++oy) {
          for (std::size_t ox = 0; ox < out_size_; ++ox) {
            const double g = go[(oc * out_size_ + oy) * out_size_ + ox];
            grad_bias_[oc] += g;
            for (std::size_t ic = 0; ic < in_ch_; ++ic) {
              for (std::size_t ky = 0; ky < kernel_; ++ky) {
                const std::ptrdiff_t iy =
                    static_cast<std::ptrdiff_t>(oy + ky) -
                    static_cast<std::ptrdiff_t>(pad_);
                if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(in_size_)) {
                  continue;
                }
                for (std::size_t kx = 0; kx < kernel_; ++kx) {
                  const std::ptrdiff_t ix =
                      static_cast<std::ptrdiff_t>(ox + kx) -
                      static_cast<std::ptrdiff_t>(pad_);
                  if (ix < 0 ||
                      ix >= static_cast<std::ptrdiff_t>(in_size_)) {
                    continue;
                  }
                  const std::size_t in_index =
                      (ic * in_size_ + static_cast<std::size_t>(iy)) *
                          in_size_ +
                      static_cast<std::size_t>(ix);
                  grad_weight_at(oc, ic, ky, kx) += g * x[in_index];
                  gi[in_index] += g * weight_at(oc, ic, ky, kx);
                }
              }
            }
          }
        }
      }
    }
    return grad_input;
  }

  std::size_t num_parameters() const override {
    return weights_.size() + bias_.size();
  }
  void collect_parameters(std::vector<double>& out) const override {
    out.insert(out.end(), weights_.begin(), weights_.end());
    out.insert(out.end(), bias_.begin(), bias_.end());
  }
  void load_parameters(const double*& cursor) override {
    std::copy(cursor, cursor + weights_.size(), weights_.begin());
    cursor += weights_.size();
    std::copy(cursor, cursor + bias_.size(), bias_.begin());
    cursor += bias_.size();
  }
  void collect_gradients(std::vector<double>& out) const override {
    out.insert(out.end(), grad_weights_.begin(), grad_weights_.end());
    out.insert(out.end(), grad_bias_.begin(), grad_bias_.end());
  }
  void apply_gradients(double learning_rate) override {
    for (std::size_t i = 0; i < weights_.size(); ++i) {
      weights_[i] -= learning_rate * grad_weights_[i];
    }
    for (std::size_t i = 0; i < bias_.size(); ++i) {
      bias_[i] -= learning_rate * grad_bias_[i];
    }
  }
  void zero_gradients() override {
    std::fill(grad_weights_.begin(), grad_weights_.end(), 0.0);
    std::fill(grad_bias_.begin(), grad_bias_.end(), 0.0);
  }
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Conv2dLayer>(*this);
  }

 private:
  double& grad_weight_at(std::size_t oc, std::size_t ic, std::size_t ky,
                         std::size_t kx) {
    return grad_weights_[((oc * in_ch_ + ic) * kernel_ + ky) * kernel_ + kx];
  }
  double weight_at(std::size_t oc, std::size_t ic, std::size_t ky,
                   std::size_t kx) const {
    return weights_[((oc * in_ch_ + ic) * kernel_ + ky) * kernel_ + kx];
  }

  std::size_t in_ch_;
  std::size_t out_ch_;
  std::size_t kernel_;
  std::size_t in_size_;
  std::size_t out_size_;
  std::size_t pad_;
  std::vector<double> weights_;
  std::vector<double> bias_;
  std::vector<double> grad_weights_;
  std::vector<double> grad_bias_;
  Matrix input_;
};

// ------------------------------------------------------------------
// 2x2 average pooling.

class AvgPool2dLayer final : public Layer {
 public:
  AvgPool2dLayer(std::size_t channels, std::size_t input_size)
      : ch_(channels), in_size_(input_size), out_size_(input_size / 2) {}

  std::size_t output_dim() const { return ch_ * out_size_ * out_size_; }

  Matrix forward(const Matrix& input) override {
    Matrix output(input.size(), std::vector<double>(output_dim(), 0.0));
    for (std::size_t b = 0; b < input.size(); ++b) {
      for (std::size_t c = 0; c < ch_; ++c) {
        for (std::size_t oy = 0; oy < out_size_; ++oy) {
          for (std::size_t ox = 0; ox < out_size_; ++ox) {
            double acc = 0.0;
            for (std::size_t dy = 0; dy < 2; ++dy) {
              for (std::size_t dx = 0; dx < 2; ++dx) {
                acc += input[b][(c * in_size_ + 2 * oy + dy) * in_size_ +
                               2 * ox + dx];
              }
            }
            output[b][(c * out_size_ + oy) * out_size_ + ox] = acc * 0.25;
          }
        }
      }
    }
    return output;
  }

  Matrix backward(const Matrix& grad_output) override {
    Matrix grad_input(grad_output.size(),
                      std::vector<double>(ch_ * in_size_ * in_size_, 0.0));
    for (std::size_t b = 0; b < grad_output.size(); ++b) {
      for (std::size_t c = 0; c < ch_; ++c) {
        for (std::size_t oy = 0; oy < out_size_; ++oy) {
          for (std::size_t ox = 0; ox < out_size_; ++ox) {
            const double g =
                grad_output[b][(c * out_size_ + oy) * out_size_ + ox] * 0.25;
            for (std::size_t dy = 0; dy < 2; ++dy) {
              for (std::size_t dx = 0; dx < 2; ++dx) {
                grad_input[b][(c * in_size_ + 2 * oy + dy) * in_size_ +
                              2 * ox + dx] += g;
              }
            }
          }
        }
      }
    }
    return grad_input;
  }

  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<AvgPool2dLayer>(*this);
  }

 private:
  std::size_t ch_;
  std::size_t in_size_;
  std::size_t out_size_;
};

// ------------------------------------------------------------------
// Global average pooling: [ch][y][x] -> [ch].

class GlobalAvgPoolLayer final : public Layer {
 public:
  GlobalAvgPoolLayer(std::size_t channels, std::size_t input_size)
      : ch_(channels), in_size_(input_size) {}

  Matrix forward(const Matrix& input) override {
    const double inv = 1.0 / static_cast<double>(in_size_ * in_size_);
    Matrix output(input.size(), std::vector<double>(ch_, 0.0));
    for (std::size_t b = 0; b < input.size(); ++b) {
      for (std::size_t c = 0; c < ch_; ++c) {
        double acc = 0.0;
        for (std::size_t i = 0; i < in_size_ * in_size_; ++i) {
          acc += input[b][c * in_size_ * in_size_ + i];
        }
        output[b][c] = acc * inv;
      }
    }
    return output;
  }

  Matrix backward(const Matrix& grad_output) override {
    const double inv = 1.0 / static_cast<double>(in_size_ * in_size_);
    Matrix grad_input(grad_output.size(),
                      std::vector<double>(ch_ * in_size_ * in_size_, 0.0));
    for (std::size_t b = 0; b < grad_output.size(); ++b) {
      for (std::size_t c = 0; c < ch_; ++c) {
        const double g = grad_output[b][c] * inv;
        for (std::size_t i = 0; i < in_size_ * in_size_; ++i) {
          grad_input[b][c * in_size_ * in_size_ + i] = g;
        }
      }
    }
    return grad_input;
  }

  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<GlobalAvgPoolLayer>(*this);
  }

 private:
  std::size_t ch_;
  std::size_t in_size_;
};

// ------------------------------------------------------------------
// DenseNet-style block: each inner conv sees the concatenation of the
// block input and all previous inner outputs. Handled as one composite
// layer so Sequential stays a linear chain.

class DenseBlockLayer final : public Layer {
 public:
  DenseBlockLayer(std::size_t in_channels, std::size_t growth,
                  std::size_t layers, std::size_t image_size,
                  common::Rng& rng)
      : in_ch_(in_channels), growth_(growth), size_(image_size) {
    std::size_t channels = in_channels;
    for (std::size_t l = 0; l < layers; ++l) {
      convs_.push_back(std::make_unique<Conv2dLayer>(
          channels, growth, 3, image_size, /*same_padding=*/true, rng));
      relus_.emplace_back(Activation::kRelu);
      channels += growth;
    }
  }

  DenseBlockLayer(const DenseBlockLayer& other)
      : in_ch_(other.in_ch_), growth_(other.growth_), size_(other.size_),
        relus_(other.relus_) {
    convs_.reserve(other.convs_.size());
    for (const auto& conv : other.convs_) {
      auto cloned = conv->clone();
      convs_.emplace_back(
          static_cast<Conv2dLayer*>(cloned.release()));
    }
  }

  std::size_t output_channels() const {
    return in_ch_ + growth_ * convs_.size();
  }

  Matrix forward(const Matrix& input) override {
    const std::size_t plane = size_ * size_;
    Matrix state = input;  // concatenated [channels][plane]
    for (std::size_t l = 0; l < convs_.size(); ++l) {
      Matrix fresh = relus_[l].forward(convs_[l]->forward(state));
      for (std::size_t b = 0; b < state.size(); ++b) {
        state[b].insert(state[b].end(), fresh[b].begin(), fresh[b].end());
      }
    }
    (void)plane;
    return state;
  }

  Matrix backward(const Matrix& grad_output) override {
    const std::size_t plane = size_ * size_;
    Matrix grad = grad_output;  // gradient w.r.t. full concatenation
    for (std::size_t l = convs_.size(); l-- > 0;) {
      const std::size_t in_channels = in_ch_ + growth_ * l;
      const std::size_t split = in_channels * plane;
      // Split the tail (this conv's output gradient) off the front part.
      Matrix tail(grad.size());
      for (std::size_t b = 0; b < grad.size(); ++b) {
        tail[b].assign(grad[b].begin() + static_cast<std::ptrdiff_t>(split),
                       grad[b].end());
        grad[b].resize(split);
      }
      Matrix through = convs_[l]->backward(relus_[l].backward(tail));
      for (std::size_t b = 0; b < grad.size(); ++b) {
        for (std::size_t i = 0; i < split; ++i) {
          grad[b][i] += through[b][i];
        }
      }
    }
    return grad;
  }

  std::size_t num_parameters() const override {
    std::size_t n = 0;
    for (const auto& conv : convs_) n += conv->num_parameters();
    return n;
  }
  void collect_parameters(std::vector<double>& out) const override {
    for (const auto& conv : convs_) conv->collect_parameters(out);
  }
  void load_parameters(const double*& cursor) override {
    for (auto& conv : convs_) conv->load_parameters(cursor);
  }
  void collect_gradients(std::vector<double>& out) const override {
    for (const auto& conv : convs_) conv->collect_gradients(out);
  }
  void apply_gradients(double learning_rate) override {
    for (auto& conv : convs_) conv->apply_gradients(learning_rate);
  }
  void zero_gradients() override {
    for (auto& conv : convs_) conv->zero_gradients();
  }
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<DenseBlockLayer>(*this);
  }

 private:
  std::size_t in_ch_;
  std::size_t growth_;
  std::size_t size_;
  std::vector<std::unique_ptr<Conv2dLayer>> convs_;
  std::vector<ActivationLayer> relus_;
};

}  // namespace

// ------------------------------------------------------------------
// Sequential

Sequential::Sequential(const Sequential& other) {
  layers_.reserve(other.layers_.size());
  for (const auto& layer : other.layers_) layers_.push_back(layer->clone());
}

Sequential& Sequential::operator=(const Sequential& other) {
  if (this == &other) return *this;
  layers_.clear();
  layers_.reserve(other.layers_.size());
  for (const auto& layer : other.layers_) layers_.push_back(layer->clone());
  return *this;
}

void Sequential::add(std::unique_ptr<Layer> layer) {
  layers_.push_back(std::move(layer));
}

std::size_t Sequential::num_parameters() const {
  std::size_t n = 0;
  for (const auto& layer : layers_) n += layer->num_parameters();
  return n;
}

std::vector<double> Sequential::parameters() const {
  std::vector<double> out;
  out.reserve(num_parameters());
  for (const auto& layer : layers_) layer->collect_parameters(out);
  return out;
}

void Sequential::set_parameters(const std::vector<double>& params) {
  const double* cursor = params.data();
  for (auto& layer : layers_) layer->load_parameters(cursor);
}

std::vector<double> Sequential::gradients() const {
  std::vector<double> out;
  out.reserve(num_parameters());
  for (const auto& layer : layers_) layer->collect_gradients(out);
  return out;
}

void Sequential::apply_gradients(double learning_rate) {
  for (auto& layer : layers_) layer->apply_gradients(learning_rate);
}

void Sequential::zero_gradients() {
  for (auto& layer : layers_) layer->zero_gradients();
}

Matrix Sequential::forward(const Matrix& features) {
  Matrix x = features;
  for (auto& layer : layers_) x = layer->forward(x);
  return x;
}

namespace {

/// Softmax in place; returns nothing. Numerically stabilized.
void softmax_rows(Matrix& logits) {
  for (auto& row : logits) {
    double max = row.empty() ? 0.0 : row.front();
    for (const double v : row) max = std::max(max, v);
    double sum = 0.0;
    for (auto& v : row) {
      v = std::exp(v - max);
      sum += v;
    }
    for (auto& v : row) v /= sum;
  }
}

}  // namespace

double Sequential::train_step_gradient(
    const Matrix& features, const std::vector<std::uint32_t>& labels) {
  zero_gradients();
  if (features.empty()) return 0.0;
  Matrix probs = forward(features);
  softmax_rows(probs);

  double loss = 0.0;
  const double inv_batch = 1.0 / static_cast<double>(features.size());
  Matrix grad = probs;
  for (std::size_t b = 0; b < features.size(); ++b) {
    const std::uint32_t y = labels[b];
    loss -= std::log(std::max(probs[b][y], 1e-12));
    grad[b][y] -= 1.0;
    for (auto& g : grad[b]) g *= inv_batch;
  }
  for (std::size_t l = layers_.size(); l-- > 0;) {
    grad = layers_[l]->backward(grad);
  }
  return loss * inv_batch;
}

double Sequential::evaluate_loss(const Matrix& features,
                                 const std::vector<std::uint32_t>& labels) {
  if (features.empty()) return 0.0;
  Matrix probs = forward(features);
  softmax_rows(probs);
  double loss = 0.0;
  for (std::size_t b = 0; b < features.size(); ++b) {
    loss -= std::log(std::max(probs[b][labels[b]], 1e-12));
  }
  return loss / static_cast<double>(features.size());
}

std::uint32_t Sequential::predict(const std::vector<double>& x) {
  const Matrix logits = forward(Matrix{x});
  const auto& row = logits.front();
  std::size_t best = 0;
  for (std::size_t i = 1; i < row.size(); ++i) {
    if (row[i] > row[best]) best = i;
  }
  return static_cast<std::uint32_t>(best);
}

// ------------------------------------------------------------------
// ModelFactory

Sequential ModelFactory::logistic_regression(std::size_t input_dim,
                                             std::size_t num_classes,
                                             common::Rng& rng) {
  Sequential model;
  model.add(std::make_unique<DenseLayer>(input_dim, num_classes, rng));
  return model;
}

Sequential ModelFactory::mlp(std::size_t input_dim, std::size_t hidden,
                             std::size_t num_classes, common::Rng& rng) {
  Sequential model;
  model.add(std::make_unique<DenseLayer>(input_dim, hidden, rng));
  model.add(std::make_unique<ActivationLayer>(Activation::kTanh));
  model.add(std::make_unique<DenseLayer>(hidden, num_classes, rng));
  return model;
}

Sequential ModelFactory::lenet5(std::size_t image_size,
                                std::size_t num_classes, common::Rng& rng) {
  Sequential model;
  const std::size_t c1 = image_size - 4;       // 5x5 valid conv
  const std::size_t p1 = c1 / 2;               // 2x2 avg pool
  // Small inputs (LeNet expects 32x32; the benches use 16x16 patches)
  // shrink the second conv kernel so the feature map stays non-empty.
  const std::size_t k2 = p1 >= 5 ? 5 : (p1 >= 3 ? 3 : 1);
  const std::size_t c2 = p1 - k2 + 1;          // k2 x k2 valid conv
  model.add(std::make_unique<Conv2dLayer>(1, 6, 5, image_size, false, rng));
  model.add(std::make_unique<ActivationLayer>(Activation::kTanh));
  model.add(std::make_unique<AvgPool2dLayer>(6, c1));
  model.add(std::make_unique<Conv2dLayer>(6, 16, k2, p1, false, rng));
  model.add(std::make_unique<ActivationLayer>(Activation::kTanh));
  std::size_t p2 = c2;
  if (c2 >= 2) {  // a 2x2 pool on a 1x1 map would erase the features
    model.add(std::make_unique<AvgPool2dLayer>(16, c2));
    p2 = c2 / 2;
  }
  model.add(std::make_unique<DenseLayer>(16 * p2 * p2, 32, rng));
  model.add(std::make_unique<ActivationLayer>(Activation::kTanh));
  model.add(std::make_unique<DenseLayer>(32, num_classes, rng));
  return model;
}

Sequential ModelFactory::mini_densenet(std::size_t image_size,
                                       std::size_t num_classes,
                                       std::size_t growth,
                                       std::size_t layers,
                                       common::Rng& rng) {
  Sequential model;
  auto block = std::make_unique<DenseBlockLayer>(1, growth, layers,
                                                 image_size, rng);
  const std::size_t channels = block->output_channels();
  model.add(std::move(block));
  model.add(std::make_unique<GlobalAvgPoolLayer>(channels, image_size));
  model.add(std::make_unique<DenseLayer>(channels, num_classes, rng));
  return model;
}

}  // namespace flips::ml
