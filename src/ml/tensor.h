// Contiguous row-major 2-D tensor — the storage type of the ML layer.
// One flat std::vector<double> per tensor keeps batched activations,
// weights and gradients cache-friendly and lets gcc vectorize the dense
// kernels; `resize` reuses capacity so per-step reshapes in the hot FL
// loop are allocation-free after warm-up.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

namespace flips::ml {

class Tensor {
 public:
  Tensor() = default;
  Tensor(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Flattens a nested-vector matrix (the data layer's row format).
  /// Rows must share one width; empty input yields an empty tensor.
  static Tensor from_rows(const std::vector<std::vector<double>>& rows) {
    Tensor t;
    t.rows_ = rows.size();
    t.cols_ = rows.empty() ? 0 : rows.front().size();
    t.data_.resize(t.rows_ * t.cols_);
    for (std::size_t r = 0; r < t.rows_; ++r) {
      std::copy(rows[r].begin(), rows[r].end(),
                t.data_.begin() + static_cast<std::ptrdiff_t>(r * t.cols_));
    }
    return t;
  }

  /// Reshapes to rows x cols. Contents are unspecified afterwards (the
  /// underlying vector keeps its capacity — no allocation when shrinking
  /// or re-growing to a previously seen size).
  void resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

  void fill(double value) { std::fill(data_.begin(), data_.end(), value); }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  double* row(std::size_t r) { return data_.data() + r * cols_; }
  const double* row(std::size_t r) const { return data_.data() + r * cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  friend bool operator==(const Tensor& a, const Tensor& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace flips::ml
