// Minimal dense/conv neural-net substrate for the FL simulation. Models
// are `Sequential` stacks of layers trained with softmax cross-entropy.
// A Sequential is value-semantic (deep copy) because the FL job clones
// the global model into every selected party each round, and flattens
// to/from a single parameter vector because aggregation, server
// optimizers and DP all operate on flat deltas.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"

namespace flips::ml {

using Matrix = std::vector<std::vector<double>>;  ///< batch-major

class Layer {
 public:
  virtual ~Layer() = default;
  /// Forward pass; implementations cache what backward needs.
  virtual Matrix forward(const Matrix& input) = 0;
  /// Backprop: consumes dL/d(output), accumulates parameter gradients,
  /// returns dL/d(input).
  virtual Matrix backward(const Matrix& grad_output) = 0;
  virtual std::size_t num_parameters() const { return 0; }
  virtual void collect_parameters(std::vector<double>& /*out*/) const {}
  virtual void load_parameters(const double*& /*cursor*/) {}
  virtual void collect_gradients(std::vector<double>& /*out*/) const {}
  virtual void apply_gradients(double /*learning_rate*/) {}
  virtual void zero_gradients() {}
  virtual std::unique_ptr<Layer> clone() const = 0;
};

class Sequential {
 public:
  Sequential() = default;
  Sequential(const Sequential& other);
  Sequential& operator=(const Sequential& other);
  Sequential(Sequential&&) noexcept = default;
  Sequential& operator=(Sequential&&) noexcept = default;

  void add(std::unique_ptr<Layer> layer);

  std::size_t num_parameters() const;
  std::vector<double> parameters() const;
  void set_parameters(const std::vector<double>& params);
  std::vector<double> gradients() const;
  void apply_gradients(double learning_rate);
  void zero_gradients();

  /// Forward to logits (no softmax).
  Matrix forward(const Matrix& features);

  /// One forward+backward over the batch with softmax cross-entropy.
  /// Accumulates gradients into the layers (zeroing previous ones) and
  /// returns the mean loss.
  double train_step_gradient(const Matrix& features,
                             const std::vector<std::uint32_t>& labels);

  /// Mean cross-entropy without touching gradients.
  double evaluate_loss(const Matrix& features,
                       const std::vector<std::uint32_t>& labels);

  std::uint32_t predict(const std::vector<double>& x);

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

struct ModelFactory {
  static Sequential logistic_regression(std::size_t input_dim,
                                        std::size_t num_classes,
                                        common::Rng& rng);
  static Sequential mlp(std::size_t input_dim, std::size_t hidden,
                        std::size_t num_classes, common::Rng& rng);
  /// LeNet-5-style conv net over single-channel image_size^2 patches.
  static Sequential lenet5(std::size_t image_size, std::size_t num_classes,
                           common::Rng& rng);
  /// Tiny DenseNet: `layers` 3x3 conv layers, each emitting `growth`
  /// channels concatenated onto its input, then global-average-pool and
  /// a linear classifier.
  static Sequential mini_densenet(std::size_t image_size,
                                  std::size_t num_classes,
                                  std::size_t growth, std::size_t layers,
                                  common::Rng& rng);
};

}  // namespace flips::ml
