// Minimal dense/conv neural-net substrate for the FL simulation. Models
// are `Sequential` stacks of layers trained with softmax cross-entropy.
//
// Storage layout: a Sequential owns ONE contiguous parameter buffer and
// ONE contiguous gradient buffer; every layer is bound to a segment of
// each. Activations are contiguous row-major `Tensor`s. This keeps the
// whole FL data path (local SGD steps, FedProx/SCAFFOLD/FedDyn
// corrections, aggregation, server optimizers, DP clipping, SecAgg
// masking) operating on flat double arrays with no per-step allocation.
//
// A Sequential is value-semantic (deep copy) because the FL job clones
// the global model into every selected party each round; layers cache
// forward activations for backward, so a single instance must NOT be
// shared across threads — clone one per worker instead.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "ml/tensor.h"

namespace flips::ml {

class Layer {
 public:
  virtual ~Layer() = default;
  /// Forward pass. Returns a reference to a layer-owned output buffer
  /// (valid until the next forward on this layer); implementations
  /// cache what backward needs.
  virtual const Tensor& forward(const Tensor& input) = 0;
  /// Backprop: consumes dL/d(output), accumulates parameter gradients
  /// into the bound gradient segment, returns dL/d(input) (layer-owned
  /// buffer, same lifetime rule as forward). When `need_input_grad` is
  /// false (the model's first layer — nothing consumes dL/d(features))
  /// implementations may skip the input-gradient math and return an
  /// unspecified tensor.
  virtual const Tensor& backward(const Tensor& grad_output,
                                 bool need_input_grad) = 0;
  virtual std::size_t num_parameters() const { return 0; }
  /// Writes the layer's freshly-initialized parameters to `dst`
  /// (exactly num_parameters() values). Called once when the layer
  /// joins a Sequential; the layer may release its initializer storage.
  virtual void export_initial_parameters(double* /*dst*/) {}
  /// Points the layer at its segment of the owning Sequential's
  /// contiguous parameter/gradient storage and advances both cursors by
  /// num_parameters(). Re-invoked whenever that storage moves.
  virtual void bind(double*& /*params*/, double*& /*grads*/) {}
  virtual std::unique_ptr<Layer> clone() const = 0;
};

class Sequential {
 public:
  Sequential() = default;
  Sequential(const Sequential& other);
  Sequential& operator=(const Sequential& other);
  Sequential(Sequential&&) noexcept = default;
  Sequential& operator=(Sequential&&) noexcept = default;

  void add(std::unique_ptr<Layer> layer);

  std::size_t num_parameters() const { return params_.size(); }
  /// The model's parameters as one contiguous vector (the wire format
  /// of the FL job: aggregation, server optimizers and DP all operate
  /// on it directly).
  const std::vector<double>& parameters() const { return params_; }
  /// Mutable view of the same storage; writing it IS updating the
  /// model (no copy-back needed).
  std::vector<double>& mutable_parameters() { return params_; }
  void set_parameters(const std::vector<double>& params);
  /// Accumulated gradients, contiguous, same ordering as parameters().
  const std::vector<double>& gradients() const { return grads_; }
  void apply_gradients(double learning_rate);
  void zero_gradients();

  /// Forward to logits (no softmax). The returned reference is valid
  /// until the next forward/training call on this model.
  const Tensor& forward(const Tensor& features);

  /// One forward+backward over the batch with softmax cross-entropy.
  /// Accumulates gradients into the flat gradient buffer (zeroing
  /// previous ones) and returns the mean loss.
  double train_step_gradient(const Tensor& features,
                             const std::vector<std::uint32_t>& labels);

  /// Mean cross-entropy without touching gradients.
  double evaluate_loss(const Tensor& features,
                       const std::vector<std::uint32_t>& labels);

  std::uint32_t predict(const std::vector<double>& x);

 private:
  void rebind();

  std::vector<std::unique_ptr<Layer>> layers_;
  std::vector<double> params_;  ///< all layer parameters, contiguous
  std::vector<double> grads_;   ///< matching gradient accumulator
  Tensor probs_;                ///< softmax / loss-gradient scratch
  Tensor single_;               ///< predict() input scratch
};

struct ModelFactory {
  static Sequential logistic_regression(std::size_t input_dim,
                                        std::size_t num_classes,
                                        common::Rng& rng);
  static Sequential mlp(std::size_t input_dim, std::size_t hidden,
                        std::size_t num_classes, common::Rng& rng);
  /// LeNet-5-style conv net over single-channel image_size^2 patches.
  static Sequential lenet5(std::size_t image_size, std::size_t num_classes,
                           common::Rng& rng);
  /// Tiny DenseNet: `layers` 3x3 conv layers, each emitting `growth`
  /// channels concatenated onto its input, then global-average-pool and
  /// a linear classifier.
  static Sequential mini_densenet(std::size_t image_size,
                                  std::size_t num_classes,
                                  std::size_t growth, std::size_t layers,
                                  common::Rng& rng);
};

}  // namespace flips::ml
