// Plain SGD applier with the round-indexed step decay the benches use
// (lr halves every `lr_decay_rounds` FL rounds).
#pragma once

#include <cmath>
#include <cstddef>

#include "ml/model.h"

namespace flips::ml {

struct SgdConfig {
  double learning_rate = 0.01;
  double lr_decay_factor = 1.0;   ///< multiplied in every decay window
  std::size_t lr_decay_rounds = 0;  ///< 0 = no decay
};

class SgdOptimizer {
 public:
  explicit SgdOptimizer(const SgdConfig& config) : config_(config) {}

  /// Applies the model's accumulated gradients at `learning_rate` and
  /// clears them.
  void step(Sequential& model, double learning_rate) const {
    model.apply_gradients(learning_rate);
    model.zero_gradients();
  }

  /// Effective learning rate for 1-based FL round `round`.
  double learning_rate_for_round(std::size_t round) const {
    if (config_.lr_decay_rounds == 0 || config_.lr_decay_factor == 1.0 ||
        round <= 1) {
      return config_.learning_rate;
    }
    const auto windows =
        static_cast<double>((round - 1) / config_.lr_decay_rounds);
    return config_.learning_rate * std::pow(config_.lr_decay_factor, windows);
  }

  const SgdConfig& config() const { return config_; }

 private:
  SgdConfig config_;
};

}  // namespace flips::ml
