// Uniform random selection without replacement — the baseline every
// guided strategy is measured against.
#pragma once

#include <vector>

#include "common/rng.h"
#include "fl/selector.h"
#include "selection/sampling.h"

namespace flips::select {

class RandomSelector final : public fl::ParticipantSelector {
 public:
  RandomSelector(std::size_t num_parties, std::uint64_t seed)
      : rng_(seed), pool_(iota_pool(num_parties)) {}

  std::vector<std::size_t> select(std::size_t round,
                                  std::size_t num_required) override {
    (void)round;
    return sample_without_replacement(pool_, num_required, rng_);
  }

  const char* name() const override { return "random"; }

 private:
  common::Rng rng_;
  std::vector<std::size_t> pool_;
};

}  // namespace flips::select
