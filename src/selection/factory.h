// Selector registry: every participant-selection strategy the paper
// compares (plus the pow-d and Fed-CBS extensions), built from one
// shared context describing the federation. The registry is
// string-keyed — `selector_names()` is the single source of truth the
// scenario layer (bench/common/scenario.cpp) validates `selector=`
// against, so adding a selector here automatically surfaces it on the
// flips_run CLI.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "data/synthetic.h"
#include "fl/selector.h"

namespace flips::select {

enum class SelectorKind {
  kRandom,
  kFlips,          ///< label-distribution clusters, per-cluster min-heaps
  kOort,           ///< loss-utility explore/exploit (Oort, OSDI 21)
  kGradClus,       ///< per-round agglomerative gradient clustering
  kTifl,           ///< latency tiers (TiFL)
  kPowerOfChoice,  ///< pow-d loss-biased sampling
  kFedCbs,         ///< class-balance (QCID) greedy cohort
};

const char* to_string(SelectorKind kind);

struct SelectorContext {
  std::size_t num_parties = 0;
  std::uint64_t seed = 42;
  /// FLIPS inputs: party -> label-distribution cluster.
  std::vector<std::size_t> cluster_of;
  std::size_t num_clusters = 0;
  /// TiFL/Oort input: profiled per-party latency proxy.
  std::vector<double> latencies;
  /// Optional hint for explore/exploit schedules.
  std::size_t rounds_hint = 0;
  /// Fed-CBS input: per-party label histograms.
  std::vector<data::LabelDistribution> label_distributions;
};

[[nodiscard]] std::unique_ptr<fl::ParticipantSelector> make_selector(
    SelectorKind kind, const SelectorContext& context);

/// Every registered selector name, in registration order (stable —
/// CLI help and choice validation render it verbatim).
[[nodiscard]] const std::vector<std::string_view>& selector_names();

/// String-keyed lookup into the registry. Throws std::invalid_argument
/// on an unknown name, listing every registered name.
[[nodiscard]] SelectorKind selector_kind_from_name(std::string_view name);

/// String-keyed construction: selector_kind_from_name + make_selector.
[[nodiscard]] std::unique_ptr<fl::ParticipantSelector> make_selector(
    std::string_view name, const SelectorContext& context);

}  // namespace flips::select
