// Selector registry: every participant-selection strategy the paper
// compares (plus the pow-d and Fed-CBS extensions), built from one
// shared context describing the federation.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "data/synthetic.h"
#include "fl/selector.h"

namespace flips::select {

enum class SelectorKind {
  kRandom,
  kFlips,          ///< label-distribution clusters, per-cluster min-heaps
  kOort,           ///< loss-utility explore/exploit (Oort, OSDI 21)
  kGradClus,       ///< per-round agglomerative gradient clustering
  kTifl,           ///< latency tiers (TiFL)
  kPowerOfChoice,  ///< pow-d loss-biased sampling
  kFedCbs,         ///< class-balance (QCID) greedy cohort
};

const char* to_string(SelectorKind kind);

struct SelectorContext {
  std::size_t num_parties = 0;
  std::uint64_t seed = 42;
  /// FLIPS inputs: party -> label-distribution cluster.
  std::vector<std::size_t> cluster_of;
  std::size_t num_clusters = 0;
  /// TiFL/Oort input: profiled per-party latency proxy.
  std::vector<double> latencies;
  /// Optional hint for explore/exploit schedules.
  std::size_t rounds_hint = 0;
  /// Fed-CBS input: per-party label histograms.
  std::vector<data::LabelDistribution> label_distributions;
};

[[nodiscard]] std::unique_ptr<fl::ParticipantSelector> make_selector(
    SelectorKind kind, const SelectorContext& context);

}  // namespace flips::select
