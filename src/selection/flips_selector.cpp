#include "selection/flips_selector.h"

#include <algorithm>
#include <cmath>

namespace flips::select {

FlipsSelector::FlipsSelector(std::vector<std::size_t> cluster_of,
                             std::size_t num_clusters,
                             const FlipsSelectorConfig& config)
    : config_(config), rng_(config.seed) {
  rebind_clusters(std::move(cluster_of), num_clusters);
}

void FlipsSelector::rebind_clusters(std::vector<std::size_t> cluster_of,
                                    std::size_t num_clusters) {
  cluster_of_ = std::move(cluster_of);
  std::size_t k = num_clusters;
  for (const std::size_t c : cluster_of_) k = std::max(k, c + 1);
  members_.assign(std::max<std::size_t>(k, 1), {});
  for (std::size_t p = 0; p < cluster_of_.size(); ++p) {
    members_[cluster_of_[p]].push_back(p);
  }
  // Fairness counts survive the rebind: parties keep their history,
  // newly joined parties start least-selected (and are therefore
  // favoured by the per-cluster heaps right away).
  if (times_selected_.size() < cluster_of_.size()) {
    times_selected_.resize(cluster_of_.size(), 0);
  }
}

void FlipsSelector::consume(const ctrl::MembershipView& view) {
  if (view.epoch == 0 || view.epoch == membership_epoch_) return;
  rebind_clusters(view.cluster_of, view.k);
  membership_epoch_ = view.epoch;
}

std::vector<std::size_t> FlipsSelector::pick_from_cluster(
    std::size_t cluster, std::size_t count) {
  auto& members = members_[cluster];
  count = std::min(count, members.size());
  if (count == 0) return {};
  // Least-selected first; ties broken randomly so same-count members
  // rotate instead of following construction order.
  rng_.shuffle(members);
  std::partial_sort(members.begin(),
                    members.begin() + static_cast<std::ptrdiff_t>(count),
                    members.end(),
                    [&](std::size_t a, std::size_t b) {
                      return times_selected_[a] < times_selected_[b];
                    });
  return {members.begin(),
          members.begin() + static_cast<std::ptrdiff_t>(count)};
}

std::vector<std::size_t> FlipsSelector::select(std::size_t round,
                                               std::size_t num_required) {
  const std::size_t n = cluster_of_.size();
  std::size_t want = std::min(num_required, n);
  if (want == 0 || members_.empty()) return {};

  if (config_.overprovision && straggle_rate_ > 0.0) {
    const double boost =
        std::min(config_.max_overprovision,
                 straggle_rate_ / std::max(1e-9, 1.0 - straggle_rate_));
    want = std::min(
        n, want + static_cast<std::size_t>(
                      std::ceil(boost * static_cast<double>(want))));
  }

  const std::size_t k = members_.size();
  const std::size_t base = want / k;
  const std::size_t remainder = want % k;

  std::vector<std::size_t> cohort;
  cohort.reserve(want);
  std::vector<bool> taken(n, false);
  // Rotate which clusters receive the remainder slot so no cluster is
  // structurally favoured across rounds.
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t cluster = (round + i) % k;
    const std::size_t quota = base + (i < remainder ? 1 : 0);
    for (const std::size_t p : pick_from_cluster(cluster, quota)) {
      cohort.push_back(p);
      taken[p] = true;
    }
  }
  // Small clusters may not fill their quota; top up with the globally
  // least-selected remaining parties so Nr is honoured.
  if (cohort.size() < want) {
    std::vector<std::size_t> rest;
    rest.reserve(n - cohort.size());
    for (std::size_t p = 0; p < n; ++p) {
      if (!taken[p]) rest.push_back(p);
    }
    rng_.shuffle(rest);
    const std::size_t need = want - cohort.size();
    std::partial_sort(rest.begin(),
                      rest.begin() + static_cast<std::ptrdiff_t>(
                                         std::min(need, rest.size())),
                      rest.end(),
                      [&](std::size_t a, std::size_t b) {
                        return times_selected_[a] < times_selected_[b];
                      });
    for (std::size_t i = 0; i < std::min(need, rest.size()); ++i) {
      cohort.push_back(rest[i]);
    }
  }

  for (const std::size_t p : cohort) ++times_selected_[p];
  return cohort;
}

void FlipsSelector::report_round(
    std::size_t round, const std::vector<fl::PartyFeedback>& feedback) {
  (void)round;
  if (feedback.empty()) return;
  std::size_t missed = 0;
  for (const auto& fb : feedback) {
    if (!fb.responded) ++missed;
  }
  const double rate =
      static_cast<double>(missed) / static_cast<double>(feedback.size());
  straggle_rate_ = (1.0 - config_.straggle_ema) * straggle_rate_ +
                   config_.straggle_ema * rate;
}

}  // namespace flips::select
