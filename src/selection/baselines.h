// The guided-selection baselines FLIPS is compared against: Oort-style
// utility explore/exploit, TiFL latency tiers, GradClus per-round
// gradient clustering, pow-d loss-biased sampling, and Fed-CBS
// class-balance greedy cohorts.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "data/synthetic.h"
#include "fl/selector.h"

namespace flips::select {

/// Oort (OSDI 21), simplified: statistical utility is the party's
/// loss RMS scaled by sqrt(sample count); a system penalty discounts
/// slow parties. Unexplored parties carry optimistic utility; an
/// exploration fraction decays over rounds.
class OortSelector final : public fl::ParticipantSelector {
 public:
  OortSelector(std::size_t num_parties, std::vector<double> latencies,
               std::size_t rounds_hint, std::uint64_t seed);

  std::vector<std::size_t> select(std::size_t round,
                                  std::size_t num_required) override;
  void report_round(std::size_t round,
                    const std::vector<fl::PartyFeedback>& feedback) override;
  const char* name() const override { return "oort"; }

 private:
  common::Rng rng_;
  std::vector<double> utility_;
  std::vector<bool> explored_;
  std::vector<double> latency_penalty_;
  std::size_t rounds_hint_;
};

/// TiFL: parties are pre-binned into latency tiers; each round one tier
/// is drawn (slower tiers progressively de-weighted by their observed
/// straggle rate) and the cohort sampled uniformly inside it.
class TiflSelector final : public fl::ParticipantSelector {
 public:
  TiflSelector(std::size_t num_parties, std::vector<double> latencies,
               std::size_t num_tiers, std::uint64_t seed);

  std::vector<std::size_t> select(std::size_t round,
                                  std::size_t num_required) override;
  void report_round(std::size_t round,
                    const std::vector<fl::PartyFeedback>& feedback) override;
  const char* name() const override { return "tifl"; }

 private:
  common::Rng rng_;
  std::vector<std::vector<std::size_t>> tiers_;
  std::vector<double> tier_credits_;
  std::vector<std::size_t> tier_of_;
};

/// GradClus: re-clusters the latest known party gradients every round
/// (average-linkage over cosine distances — the O(n^3) cost the paper
/// criticizes) and picks round-robin across gradient clusters.
class GradClusSelector final : public fl::ParticipantSelector {
 public:
  GradClusSelector(std::size_t num_parties, std::uint64_t seed);

  std::vector<std::size_t> select(std::size_t round,
                                  std::size_t num_required) override;
  void report_round(std::size_t round,
                    const std::vector<fl::PartyFeedback>& feedback) override;
  const char* name() const override { return "gradclus"; }

 private:
  common::Rng rng_;
  std::vector<std::vector<double>> last_delta_;
  std::vector<bool> has_delta_;
  std::vector<std::size_t> times_selected_;
};

/// Power-of-Choice (pow-d): sample d = max(2*Nr, Nr+1) candidates, keep
/// the Nr with the highest last-known loss.
class PowerOfChoiceSelector final : public fl::ParticipantSelector {
 public:
  PowerOfChoiceSelector(std::size_t num_parties, std::uint64_t seed);

  std::vector<std::size_t> select(std::size_t round,
                                  std::size_t num_required) override;
  void report_round(std::size_t round,
                    const std::vector<fl::PartyFeedback>& feedback) override;
  const char* name() const override { return "pow-d"; }

 private:
  common::Rng rng_;
  std::vector<double> last_loss_;  ///< optimistic init
};

/// Fed-CBS: greedily builds the cohort whose pooled label distribution
/// is closest to uniform (QCID-style class-imbalance objective).
class FedCbsSelector final : public fl::ParticipantSelector {
 public:
  FedCbsSelector(std::vector<data::LabelDistribution> label_distributions,
                 std::size_t num_parties, std::uint64_t seed);

  std::vector<std::size_t> select(std::size_t round,
                                  std::size_t num_required) override;
  const char* name() const override { return "fed-cbs"; }

 private:
  common::Rng rng_;
  std::vector<data::LabelDistribution> distributions_;
  std::size_t num_parties_;
};

}  // namespace flips::select
