// The FLIPS selector (paper Algorithm 1): parties are grouped by label
// distribution ahead of time; each round the Nr slots are spread evenly
// across clusters (rotating which clusters absorb the remainder), and
// within a cluster the least-often-picked parties go first via a
// per-cluster min-heap. This equalizes *label* representation — parties
// in small clusters are intentionally picked more often than parties in
// large ones. With over-provisioning on, the selector tracks the
// observed straggle rate and requests extra parties to compensate.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "common/rng.h"
#include "ctrl/membership_view.h"
#include "fl/selector.h"

namespace flips::select {

struct FlipsSelectorConfig {
  bool overprovision = true;
  /// Cap on the extra fraction requested against stragglers.
  double max_overprovision = 0.5;
  /// EMA factor for the observed non-response rate.
  double straggle_ema = 0.3;
  std::uint64_t seed = 0x5E1E;
};

class FlipsSelector final : public fl::ParticipantSelector {
 public:
  FlipsSelector(std::vector<std::size_t> cluster_of,
                std::size_t num_clusters, const FlipsSelectorConfig& config);

  std::vector<std::size_t> select(std::size_t round,
                                  std::size_t num_required) override;
  void report_round(std::size_t round,
                    const std::vector<fl::PartyFeedback>& feedback) override;

  const char* name() const override { return "flips"; }

  double observed_straggle_rate() const { return straggle_rate_; }

  /// Re-binds cluster membership in place (control-plane epoch
  /// change): the per-cluster member heaps are rebuilt, while
  /// `times_selected_` fairness counts are preserved for existing
  /// parties (new parties start at zero).
  void rebind_clusters(std::vector<std::size_t> cluster_of,
                       std::size_t num_clusters);

  /// Consumes an epoch-versioned control-plane view; no-op unless
  /// `view.epoch` advanced past the last epoch consumed (or the view
  /// carries no clustering yet).
  void consume(const ctrl::MembershipView& view);

  std::uint64_t membership_epoch() const { return membership_epoch_; }
  /// Per-party selection counts (fairness state; survives rebinds).
  const std::vector<std::size_t>& selection_counts() const {
    return times_selected_;
  }

 private:
  std::vector<std::size_t> pick_from_cluster(std::size_t cluster,
                                             std::size_t count);

  std::vector<std::size_t> cluster_of_;
  std::vector<std::vector<std::size_t>> members_;  ///< cluster -> parties
  std::vector<std::size_t> times_selected_;
  FlipsSelectorConfig config_;
  common::Rng rng_;
  double straggle_rate_ = 0.0;
  std::uint64_t membership_epoch_ = 0;
};

}  // namespace flips::select
