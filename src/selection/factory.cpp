#include "selection/factory.h"

#include <stdexcept>
#include <string>

#include "selection/baselines.h"
#include "selection/flips_selector.h"
#include "selection/random_selector.h"

namespace flips::select {

namespace {

/// One registry row: the stable CLI name, the enum it maps to, and the
/// builder. Registration order is render order for help/errors. The
/// name is a `const char*` (not string_view) so to_string() can return
/// it directly with null termination guaranteed by the type.
struct RegistryEntry {
  const char* name;
  SelectorKind kind;
  std::unique_ptr<fl::ParticipantSelector> (*build)(const SelectorContext&);
};

std::unique_ptr<fl::ParticipantSelector> build_random(
    const SelectorContext& context) {
  return std::make_unique<RandomSelector>(context.num_parties, context.seed);
}

std::unique_ptr<fl::ParticipantSelector> build_flips(
    const SelectorContext& context) {
  FlipsSelectorConfig config;
  config.seed = context.seed;
  std::vector<std::size_t> cluster_of = context.cluster_of;
  // No clustering supplied: degrade to one cluster (uniform
  // least-selected rotation) rather than crash.
  if (cluster_of.size() != context.num_parties) {
    cluster_of.assign(context.num_parties, 0);
  }
  return std::make_unique<FlipsSelector>(std::move(cluster_of),
                                         context.num_clusters, config);
}

std::unique_ptr<fl::ParticipantSelector> build_oort(
    const SelectorContext& context) {
  return std::make_unique<OortSelector>(context.num_parties,
                                        context.latencies,
                                        context.rounds_hint, context.seed);
}

std::unique_ptr<fl::ParticipantSelector> build_gradclus(
    const SelectorContext& context) {
  return std::make_unique<GradClusSelector>(context.num_parties,
                                            context.seed);
}

std::unique_ptr<fl::ParticipantSelector> build_tifl(
    const SelectorContext& context) {
  return std::make_unique<TiflSelector>(context.num_parties,
                                        context.latencies, 5, context.seed);
}

std::unique_ptr<fl::ParticipantSelector> build_pow_d(
    const SelectorContext& context) {
  return std::make_unique<PowerOfChoiceSelector>(context.num_parties,
                                                 context.seed);
}

std::unique_ptr<fl::ParticipantSelector> build_fed_cbs(
    const SelectorContext& context) {
  return std::make_unique<FedCbsSelector>(context.label_distributions,
                                          context.num_parties, context.seed);
}

const std::vector<RegistryEntry>& registry() {
  static const std::vector<RegistryEntry> entries = {
      {"random", SelectorKind::kRandom, &build_random},
      {"flips", SelectorKind::kFlips, &build_flips},
      {"oort", SelectorKind::kOort, &build_oort},
      {"gradclus", SelectorKind::kGradClus, &build_gradclus},
      {"tifl", SelectorKind::kTifl, &build_tifl},
      {"pow-d", SelectorKind::kPowerOfChoice, &build_pow_d},
      {"fed-cbs", SelectorKind::kFedCbs, &build_fed_cbs},
  };
  return entries;
}

const RegistryEntry& entry_for(std::string_view name) {
  for (const RegistryEntry& entry : registry()) {
    if (name == std::string_view(entry.name)) return entry;
  }
  std::string message = "unknown selector: ";
  message += name;
  message += " (registered:";
  for (const RegistryEntry& entry : registry()) {
    message += " ";
    message += entry.name;
  }
  message += ")";
  throw std::invalid_argument(message);
}

}  // namespace

const char* to_string(SelectorKind kind) {
  for (const RegistryEntry& entry : registry()) {
    if (entry.kind == kind) return entry.name;
  }
  return "unknown";
}

std::unique_ptr<fl::ParticipantSelector> make_selector(
    SelectorKind kind, const SelectorContext& context) {
  for (const RegistryEntry& entry : registry()) {
    if (entry.kind == kind) return entry.build(context);
  }
  return build_random(context);
}

const std::vector<std::string_view>& selector_names() {
  static const std::vector<std::string_view> names = [] {
    std::vector<std::string_view> out;
    out.reserve(registry().size());
    for (const RegistryEntry& entry : registry()) {
      out.push_back(entry.name);
    }
    return out;
  }();
  return names;
}

SelectorKind selector_kind_from_name(std::string_view name) {
  return entry_for(name).kind;
}

std::unique_ptr<fl::ParticipantSelector> make_selector(
    std::string_view name, const SelectorContext& context) {
  const RegistryEntry& entry = entry_for(name);
  return entry.build(context);
}

}  // namespace flips::select
