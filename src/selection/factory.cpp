#include "selection/factory.h"

#include "selection/baselines.h"
#include "selection/flips_selector.h"
#include "selection/random_selector.h"

namespace flips::select {

const char* to_string(SelectorKind kind) {
  switch (kind) {
    case SelectorKind::kRandom:
      return "random";
    case SelectorKind::kFlips:
      return "flips";
    case SelectorKind::kOort:
      return "oort";
    case SelectorKind::kGradClus:
      return "gradclus";
    case SelectorKind::kTifl:
      return "tifl";
    case SelectorKind::kPowerOfChoice:
      return "pow-d";
    case SelectorKind::kFedCbs:
      return "fed-cbs";
  }
  return "unknown";
}

std::unique_ptr<fl::ParticipantSelector> make_selector(
    SelectorKind kind, const SelectorContext& context) {
  switch (kind) {
    case SelectorKind::kRandom:
      return std::make_unique<RandomSelector>(context.num_parties,
                                              context.seed);
    case SelectorKind::kFlips: {
      FlipsSelectorConfig config;
      config.seed = context.seed;
      std::vector<std::size_t> cluster_of = context.cluster_of;
      // No clustering supplied: degrade to one cluster (uniform
      // least-selected rotation) rather than crash.
      if (cluster_of.size() != context.num_parties) {
        cluster_of.assign(context.num_parties, 0);
      }
      return std::make_unique<FlipsSelector>(std::move(cluster_of),
                                             context.num_clusters, config);
    }
    case SelectorKind::kOort:
      return std::make_unique<OortSelector>(context.num_parties,
                                            context.latencies,
                                            context.rounds_hint,
                                            context.seed);
    case SelectorKind::kGradClus:
      return std::make_unique<GradClusSelector>(context.num_parties,
                                                context.seed);
    case SelectorKind::kTifl:
      return std::make_unique<TiflSelector>(context.num_parties,
                                            context.latencies, 5,
                                            context.seed);
    case SelectorKind::kPowerOfChoice:
      return std::make_unique<PowerOfChoiceSelector>(context.num_parties,
                                                     context.seed);
    case SelectorKind::kFedCbs:
      return std::make_unique<FedCbsSelector>(context.label_distributions,
                                              context.num_parties,
                                              context.seed);
  }
  return std::make_unique<RandomSelector>(context.num_parties, context.seed);
}

}  // namespace flips::select
