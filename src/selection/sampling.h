// Shared sampling helpers for the selection strategies.
#pragma once

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/rng.h"

namespace flips::select {

/// Uniform sample of `take` distinct entries from `pool` (partial
/// Fisher-Yates; consumes the pool by value).
[[nodiscard]] inline std::vector<std::size_t> sample_without_replacement(
    std::vector<std::size_t> pool, std::size_t take, common::Rng& rng) {
  take = std::min(take, pool.size());
  for (std::size_t i = 0; i < take; ++i) {
    const std::size_t j = i + rng.uniform_index(pool.size() - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(take);
  return pool;
}

/// The pool {0, 1, ..., n-1}.
[[nodiscard]] inline std::vector<std::size_t> iota_pool(std::size_t n) {
  std::vector<std::size_t> pool(n);
  std::iota(pool.begin(), pool.end(), 0);
  return pool;
}

}  // namespace flips::select
