#include "selection/baselines.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "cluster/hierarchical.h"
#include "selection/sampling.h"

namespace flips::select {

// ------------------------------------------------------------------
// Oort

OortSelector::OortSelector(std::size_t num_parties,
                           std::vector<double> latencies,
                           std::size_t rounds_hint, std::uint64_t seed)
    : rng_(seed), utility_(num_parties, 0.0),
      explored_(num_parties, false), latency_penalty_(num_parties, 1.0),
      rounds_hint_(rounds_hint) {
  if (!latencies.empty()) {
    // Oort's system utility: parties slower than the cohort's
    // preferred duration are discounted.
    double mean = 0.0;
    for (const double l : latencies) mean += l;
    mean /= static_cast<double>(latencies.size());
    for (std::size_t p = 0; p < num_parties && p < latencies.size(); ++p) {
      const double ratio = latencies[p] / std::max(mean, 1e-9);
      latency_penalty_[p] = ratio > 1.0 ? std::pow(1.0 / ratio, 0.5) : 1.0;
    }
  }
}

std::vector<std::size_t> OortSelector::select(std::size_t round,
                                              std::size_t num_required) {
  const std::size_t n = utility_.size();
  const std::size_t take = std::min(num_required, n);
  if (take == 0) return {};

  // Exploration fraction decays from 0.9 towards 0.2.
  const double horizon =
      rounds_hint_ > 0 ? static_cast<double>(rounds_hint_) : 200.0;
  const double epsilon =
      std::max(0.2, 0.9 - 0.7 * static_cast<double>(round) / horizon);
  auto explore_count = static_cast<std::size_t>(
      std::ceil(epsilon * static_cast<double>(take)));
  explore_count = std::min(explore_count, take);

  std::vector<std::size_t> unexplored;
  std::vector<std::size_t> known;
  for (std::size_t p = 0; p < n; ++p) {
    (explored_[p] ? known : unexplored).push_back(p);
  }

  std::vector<std::size_t> cohort =
      sample_without_replacement(unexplored, explore_count, rng_);
  const std::size_t exploit = take - cohort.size();
  std::partial_sort(known.begin(),
                    known.begin() + static_cast<std::ptrdiff_t>(
                                        std::min(exploit, known.size())),
                    known.end(), [&](std::size_t a, std::size_t b) {
                      return utility_[a] * latency_penalty_[a] >
                             utility_[b] * latency_penalty_[b];
                    });
  for (std::size_t i = 0; i < std::min(exploit, known.size()); ++i) {
    cohort.push_back(known[i]);
  }
  // Still short (few explored parties early on): pad with anything new.
  if (cohort.size() < take) {
    std::vector<bool> in_cohort(n, false);
    for (const std::size_t p : cohort) in_cohort[p] = true;
    std::vector<std::size_t> rest;
    for (std::size_t p = 0; p < n; ++p) {
      if (!in_cohort[p]) rest.push_back(p);
    }
    for (const std::size_t p :
         sample_without_replacement(rest, take - cohort.size(), rng_)) {
      cohort.push_back(p);
    }
  }
  return cohort;
}

void OortSelector::report_round(
    std::size_t round, const std::vector<fl::PartyFeedback>& feedback) {
  (void)round;
  for (const auto& fb : feedback) {
    if (fb.party_id >= utility_.size() || !fb.responded) continue;
    explored_[fb.party_id] = true;
    const double value =
        fb.loss_rms * std::sqrt(static_cast<double>(
                          std::max<std::size_t>(1, fb.num_samples)));
    // EMA so stale high-loss estimates decay as training progresses.
    utility_[fb.party_id] = 0.5 * utility_[fb.party_id] + 0.5 * value;
  }
}

// ------------------------------------------------------------------
// TiFL

TiflSelector::TiflSelector(std::size_t num_parties,
                           std::vector<double> latencies,
                           std::size_t num_tiers, std::uint64_t seed)
    : rng_(seed) {
  num_tiers = std::max<std::size_t>(1, std::min(num_tiers, num_parties));
  std::vector<std::size_t> order = iota_pool(num_parties);
  if (latencies.size() >= num_parties) {
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                return latencies[a] < latencies[b];
              });
  }
  tiers_.assign(num_tiers, {});
  tier_of_.assign(num_parties, 0);
  for (std::size_t i = 0; i < order.size(); ++i) {
    const std::size_t tier = i * num_tiers / std::max<std::size_t>(
                                                 1, order.size());
    tiers_[tier].push_back(order[i]);
    tier_of_[order[i]] = tier;
  }
  // Fast tiers start slightly favoured, as in TiFL's credit scheme.
  tier_credits_.assign(num_tiers, 1.0);
  for (std::size_t t = 0; t < num_tiers; ++t) {
    tier_credits_[t] = 1.0 + 0.25 * static_cast<double>(num_tiers - t);
  }
}

std::vector<std::size_t> TiflSelector::select(std::size_t round,
                                              std::size_t num_required) {
  (void)round;
  if (tiers_.empty()) return {};
  const std::size_t tier = rng_.categorical(tier_credits_);
  std::vector<std::size_t> cohort =
      sample_without_replacement(tiers_[tier], num_required, rng_);
  // Tier smaller than Nr: spill into neighbouring tiers.
  std::size_t offset = 1;
  while (cohort.size() < num_required && offset < tiers_.size()) {
    for (const int sign : {-1, 1}) {
      const std::ptrdiff_t t =
          static_cast<std::ptrdiff_t>(tier) + sign *
          static_cast<std::ptrdiff_t>(offset);
      if (t < 0 || t >= static_cast<std::ptrdiff_t>(tiers_.size())) {
        continue;
      }
      for (const std::size_t p : sample_without_replacement(
               tiers_[static_cast<std::size_t>(t)],
               num_required - cohort.size(), rng_)) {
        cohort.push_back(p);
      }
      if (cohort.size() >= num_required) break;
    }
    ++offset;
  }
  return cohort;
}

void TiflSelector::report_round(
    std::size_t round, const std::vector<fl::PartyFeedback>& feedback) {
  (void)round;
  // De-credit tiers that straggle (drop credits towards 0.2 floor).
  std::vector<std::size_t> selected(tiers_.size(), 0);
  std::vector<std::size_t> missed(tiers_.size(), 0);
  for (const auto& fb : feedback) {
    if (fb.party_id >= tier_of_.size()) continue;
    const std::size_t tier = tier_of_[fb.party_id];
    ++selected[tier];
    if (!fb.responded) ++missed[tier];
  }
  for (std::size_t t = 0; t < tiers_.size(); ++t) {
    if (selected[t] == 0) continue;
    const double miss_rate = static_cast<double>(missed[t]) /
                             static_cast<double>(selected[t]);
    tier_credits_[t] = std::max(
        0.2, tier_credits_[t] * (1.0 - 0.5 * miss_rate));
  }
}

// ------------------------------------------------------------------
// GradClus

GradClusSelector::GradClusSelector(std::size_t num_parties,
                                   std::uint64_t seed)
    : rng_(seed), last_delta_(num_parties), has_delta_(num_parties, false),
      times_selected_(num_parties, 0) {}

std::vector<std::size_t> GradClusSelector::select(std::size_t round,
                                                  std::size_t num_required) {
  (void)round;
  const std::size_t n = last_delta_.size();
  const std::size_t take = std::min(num_required, n);
  if (take == 0) return {};

  std::vector<std::size_t> with_grad;
  std::vector<std::size_t> without;
  for (std::size_t p = 0; p < n; ++p) {
    (has_delta_[p] ? with_grad : without).push_back(p);
  }

  std::vector<std::size_t> cohort;
  if (with_grad.size() >= 2 * take) {
    // The expensive per-round path: cluster the known gradients and
    // take the least-selected member of each cluster.
    std::vector<cluster::Point> points;
    points.reserve(with_grad.size());
    for (const std::size_t p : with_grad) points.push_back(last_delta_[p]);
    const auto distances = cluster::cosine_distance_matrix(points);
    const auto assignment = cluster::agglomerative_cluster(distances, take);
    std::vector<std::optional<std::size_t>> champion(take);
    for (std::size_t i = 0; i < with_grad.size(); ++i) {
      const std::size_t c = assignment[i];
      if (c >= take) continue;
      const std::size_t p = with_grad[i];
      if (!champion[c] || times_selected_[p] < times_selected_[*champion[c]]) {
        champion[c] = p;
      }
    }
    for (const auto& c : champion) {
      if (c) cohort.push_back(*c);
    }
  }
  // Cold start / fill: random among the rest.
  if (cohort.size() < take) {
    std::vector<bool> in_cohort(n, false);
    for (const std::size_t p : cohort) in_cohort[p] = true;
    std::vector<std::size_t> rest;
    for (std::size_t p = 0; p < n; ++p) {
      if (!in_cohort[p]) rest.push_back(p);
    }
    for (const std::size_t p :
         sample_without_replacement(rest, take - cohort.size(), rng_)) {
      cohort.push_back(p);
    }
  }
  for (const std::size_t p : cohort) ++times_selected_[p];
  return cohort;
}

void GradClusSelector::report_round(
    std::size_t round, const std::vector<fl::PartyFeedback>& feedback) {
  (void)round;
  for (const auto& fb : feedback) {
    if (fb.party_id >= last_delta_.size() || !fb.responded ||
        fb.delta.empty()) {
      continue;
    }
    last_delta_[fb.party_id] = fb.delta;
    has_delta_[fb.party_id] = true;
  }
}

// ------------------------------------------------------------------
// Power of Choice

PowerOfChoiceSelector::PowerOfChoiceSelector(std::size_t num_parties,
                                             std::uint64_t seed)
    : rng_(seed), last_loss_(num_parties, 1e9) {}

std::vector<std::size_t> PowerOfChoiceSelector::select(
    std::size_t round, std::size_t num_required) {
  (void)round;
  const std::size_t n = last_loss_.size();
  const std::size_t take = std::min(num_required, n);
  if (take == 0) return {};
  const std::size_t d = std::min(n, std::max(2 * take, take + 1));
  std::vector<std::size_t> candidates =
      sample_without_replacement(iota_pool(n), d, rng_);
  std::partial_sort(candidates.begin(),
                    candidates.begin() + static_cast<std::ptrdiff_t>(take),
                    candidates.end(), [&](std::size_t a, std::size_t b) {
                      return last_loss_[a] > last_loss_[b];
                    });
  candidates.resize(take);
  return candidates;
}

void PowerOfChoiceSelector::report_round(
    std::size_t round, const std::vector<fl::PartyFeedback>& feedback) {
  (void)round;
  for (const auto& fb : feedback) {
    if (fb.party_id >= last_loss_.size() || !fb.responded) continue;
    last_loss_[fb.party_id] = fb.mean_loss;
  }
}

// ------------------------------------------------------------------
// Fed-CBS

FedCbsSelector::FedCbsSelector(
    std::vector<data::LabelDistribution> label_distributions,
    std::size_t num_parties, std::uint64_t seed)
    : rng_(seed), distributions_(std::move(label_distributions)),
      num_parties_(num_parties) {}

std::vector<std::size_t> FedCbsSelector::select(std::size_t round,
                                                std::size_t num_required) {
  (void)round;
  const std::size_t n = num_parties_;
  const std::size_t take = std::min(num_required, n);
  if (take == 0) return {};
  if (distributions_.size() < n || distributions_.front().empty()) {
    return sample_without_replacement(iota_pool(n), take, rng_);
  }

  const std::size_t classes = distributions_.front().size();
  const double uniform = 1.0 / static_cast<double>(classes);
  std::vector<double> pooled(classes, 0.0);
  std::vector<bool> chosen(n, false);
  std::vector<std::size_t> cohort;
  cohort.reserve(take);

  // Greedy QCID: random seed party, then repeatedly add the party that
  // minimizes the pooled distribution's distance to uniform.
  std::size_t first = rng_.uniform_index(n);
  cohort.push_back(first);
  chosen[first] = true;
  for (std::size_t c = 0; c < classes; ++c) pooled[c] += distributions_[first][c];

  while (cohort.size() < take) {
    double best_score = 1e300;
    std::size_t best_party = n;
    for (std::size_t p = 0; p < n; ++p) {
      if (chosen[p]) continue;
      double total = 0.0;
      for (std::size_t c = 0; c < classes; ++c) {
        total += pooled[c] + distributions_[p][c];
      }
      if (total <= 0.0) continue;
      double score = 0.0;
      for (std::size_t c = 0; c < classes; ++c) {
        const double share = (pooled[c] + distributions_[p][c]) / total;
        const double diff = share - uniform;
        score += diff * diff;
      }
      if (score < best_score) {
        best_score = score;
        best_party = p;
      }
    }
    if (best_party >= n) break;
    chosen[best_party] = true;
    cohort.push_back(best_party);
    for (std::size_t c = 0; c < classes; ++c) {
      pooled[c] += distributions_[best_party][c];
    }
  }
  return cohort;
}

}  // namespace flips::select
