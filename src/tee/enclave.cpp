#include "tee/enclave.h"

#include <algorithm>
#include <stdexcept>

#include "common/rng.h"

namespace flips::tee {

namespace {

std::uint64_t fnv1a(const std::vector<std::uint8_t>& bytes,
                    std::uint64_t seed) {
  std::uint64_t h = 1469598103934665603ull ^ seed;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t fnv1a_str(const std::string& s, std::uint64_t seed) {
  std::uint64_t h = 1469598103934665603ull ^ seed;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (std::size_t i = 16; i-- > 0; v >>= 4) {
    out[i] = kDigits[v & 0xF];
  }
  return out;
}

}  // namespace

Enclave::Enclave(std::string code_identity, double overhead_factor)
    : code_identity_(std::move(code_identity)),
      measurement_("mr:" + hex64(fnv1a_str(code_identity_, 0x3EA5u))),
      platform_key_("pk:" + hex64(fnv1a_str(code_identity_, 0x4B3Fu))),
      overhead_factor_(overhead_factor) {}

SealedBlob Enclave::seal(const std::vector<std::uint8_t>& plaintext,
                         std::uint64_t nonce) const {
  SealedBlob blob;
  blob.nonce = nonce;
  blob.auth_tag = fnv1a(plaintext, nonce);
  blob.bytes = plaintext;
  common::Rng keystream(fnv1a_str(code_identity_, nonce));
  for (auto& b : blob.bytes) {
    b = static_cast<std::uint8_t>(b ^ (keystream.next() & 0xFF));
  }
  return blob;
}

std::vector<std::uint8_t> Enclave::open(const SealedBlob& blob) const {
  std::vector<std::uint8_t> plaintext = blob.bytes;
  common::Rng keystream(fnv1a_str(code_identity_, blob.nonce));
  for (auto& b : plaintext) {
    b = static_cast<std::uint8_t>(b ^ (keystream.next() & 0xFF));
  }
  if (fnv1a(plaintext, blob.nonce) != blob.auth_tag) {
    throw std::runtime_error("enclave: sealed blob failed integrity check");
  }
  return plaintext;
}

void AttestationServer::trust_measurement(const std::string& measurement) {
  trusted_measurements_.push_back(measurement);
}

void AttestationServer::register_platform_key(const std::string& key) {
  platform_keys_.push_back(key);
}

bool AttestationServer::verify(const std::string& measurement,
                               const std::string& platform_key) const {
  const bool measurement_ok =
      std::find(trusted_measurements_.begin(), trusted_measurements_.end(),
                measurement) != trusted_measurements_.end();
  const bool key_ok = std::find(platform_keys_.begin(), platform_keys_.end(),
                                platform_key) != platform_keys_.end();
  return measurement_ok && key_ok;
}

}  // namespace flips::tee
