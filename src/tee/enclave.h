// Simulated trusted execution environment. The enclave cannot provide
// real isolation in a plain process; what it models honestly is (a) the
// attestation handshake (measurement + platform key checked against an
// attestation service), (b) sealed-channel framing for party inputs,
// and (c) an execution-time ledger with a calibrated overhead factor
// (the paper measures ~5 % on AMD SEV for the clustering workload).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace flips::tee {

struct SealedBlob {
  std::vector<std::uint8_t> bytes;  ///< keystream-XORed payload
  std::uint64_t auth_tag = 0;       ///< FNV over plaintext (integrity sim)
  std::uint64_t nonce = 0;
};

class Enclave {
 public:
  Enclave(std::string code_identity, double overhead_factor);

  /// Attestation measurement (hash of the code identity).
  const std::string& measurement() const { return measurement_; }
  /// Platform signing key (public half, simulated).
  const std::string& platform_key() const { return platform_key_; }
  double overhead_factor() const { return overhead_factor_; }

  /// Seals plaintext for the enclave (what a party's secure channel
  /// does after verifying attestation).
  [[nodiscard]] SealedBlob seal(const std::vector<std::uint8_t>& plaintext,
                                std::uint64_t nonce) const;
  /// Opens a sealed blob inside the enclave; throws on tag mismatch.
  [[nodiscard]] std::vector<std::uint8_t> open(const SealedBlob& blob) const;

  /// Runs `fn` "inside" the enclave, accounting its wall time.
  template <typename Fn>
  auto execute(Fn&& fn) {
    const auto start = std::chrono::steady_clock::now();
    if constexpr (std::is_void_v<decltype(fn())>) {
      fn();
      account(start);
    } else {
      auto result = fn();
      account(start);
      return result;
    }
  }

  double raw_execution_seconds() const { return raw_seconds_; }
  double simulated_execution_seconds() const {
    return raw_seconds_ * overhead_factor_;
  }

 private:
  void account(std::chrono::steady_clock::time_point start) {
    raw_seconds_ +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
  }

  std::string code_identity_;
  std::string measurement_;
  std::string platform_key_;
  double overhead_factor_;
  double raw_seconds_ = 0.0;
};

class AttestationServer {
 public:
  void trust_measurement(const std::string& measurement);
  void register_platform_key(const std::string& key);

  /// A quote verifies iff its measurement is trusted and its platform
  /// key is registered.
  [[nodiscard]] bool verify(const std::string& measurement,
                            const std::string& platform_key) const;

 private:
  std::vector<std::string> trusted_measurements_;
  std::vector<std::string> platform_keys_;
};

}  // namespace flips::tee
