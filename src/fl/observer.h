// Round-observer sinks for the steppable federation session
// (fl/session.h). The session decomposes each server step into
//   select → local-train → aggregate → server-step → eval
// and emits three events per step (a "round" in sync mode, a buffered
// server step in async mode):
//
//   on_round_begin(round, selector)   before selection — the control
//       plane's slot (feed refreshed label distributions, trigger a
//       re-clustering epoch, rebind the selector; see
//       ctrl::ReclusterObserver).
//   on_party_feedback(round, fb)      once per selected party, in
//       cohort order (sync) / arrival order (async), after the fold
//       (fb.delta is the wire update the server saw; valid only for
//       the duration of the call — the buffer returns to the
//       session's arena afterwards).
//   on_round_end(round, record)       after evaluation; the record
//       carries the step's byte accounting.
//
// The async mode additionally emits one arrival-granularity event per
// update landing at the server:
//
//   on_arrival(round, arrival)        as each dispatched party's
//       update (or failure notice) is popped off the arrival queue, in
//       deterministic (time, dispatch seq) order, before the update is
//       folded — `arrival` carries the staleness and the discounted
//       fold weight it will receive.
//
// Observers run on the session's stepping thread in registration
// order — never concurrently — so they may keep plain state even when
// local training uses a worker pool. The session's own result
// accounting (bytes, fairness counts, coverage, target tracking) is
// itself implemented as an observer (fl::ResultAccounting), so
// everything FlJobResult aggregates flows through this interface.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "fl/selector.h"

namespace flips::fl {

struct RoundRecord;

/// What happened to one dispatched party's arrival (async mode).
enum class ArrivalOutcome {
  kFolded,        ///< update folded into the buffer (discounted weight)
  kDroppedStale,  ///< bounded-staleness cutoff discarded the update
  kFailed,        ///< straggler / availability / fault — no update
};

/// The phases a server step decomposes into. Sync mode times each of
/// the five stages of sync_step; async mode maps its event loop onto
/// the same vocabulary (refill/dispatch → kTrainCohort, the arrival
/// fold loop → kFold).
enum class SessionPhase : std::uint8_t {
  kSelect = 0,
  kTrainCohort,
  kFold,
  kServerStep,
  kEval,
};

inline constexpr std::size_t kNumSessionPhases = 5;

inline const char* to_string(SessionPhase phase) {
  switch (phase) {
    case SessionPhase::kSelect: return "select";
    case SessionPhase::kTrainCohort: return "train_cohort";
    case SessionPhase::kFold: return "fold";
    case SessionPhase::kServerStep: return "server_step";
    case SessionPhase::kEval: return "eval";
  }
  return "unknown";
}

/// Wall-clock interval of one completed phase (steady-clock ns), plus
/// the session's simulated clock when the phase ended.
struct PhaseRecord {
  SessionPhase phase = SessionPhase::kSelect;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  double sim_time_s = 0.0;

  double duration_s() const {
    return static_cast<double>(end_ns - start_ns) * 1e-9;
  }
};

/// One failed dispatch being re-scheduled by the fault plan: an async
/// retry of the same party after a backoff, or a sync backfill wave
/// replacing a crashed cohort slot with a fresh selector pick.
struct RetryRecord {
  std::size_t party_id = 0;  ///< the party being (re-)dispatched
  std::size_t attempt = 0;   ///< 1-based retry / backfill wave
  double backoff_s = 0.0;    ///< simulated delay before the dispatch
  double time_s = 0.0;       ///< simulated clock when scheduled
};

/// One arrival popped off the async event queue, in deterministic
/// (time_s, seq) order.
struct ArrivalRecord {
  std::size_t party_id = 0;
  std::uint64_t seq = 0;       ///< monotone dispatch sequence
  double time_s = 0.0;         ///< simulated arrival time
  std::size_t staleness = 0;   ///< server steps since dispatch
  ArrivalOutcome outcome = ArrivalOutcome::kFailed;
  double weight = 0.0;         ///< discounted fold weight (kFolded only)
};

class RoundObserver {
 public:
  virtual ~RoundObserver() = default;

  /// Start of 1-based `round`, before selection. `selector` is the
  /// session's own selector (mutable: re-clustering observers rebind
  /// membership here).
  virtual void on_round_begin(std::size_t round,
                              ParticipantSelector& selector) {
    (void)round;
    (void)selector;
  }

  /// One selected party's outcome, in cohort order. Fires for every
  /// cohort member — non-responders arrive with fb.responded == false
  /// and an empty delta.
  virtual void on_party_feedback(std::size_t round,
                                 const PartyFeedback& feedback) {
    (void)round;
    (void)feedback;
  }

  /// End of `round`, after evaluation and selector feedback.
  virtual void on_round_end(std::size_t round, const RoundRecord& record) {
    (void)round;
    (void)record;
  }

  /// Async mode only: one dispatched party's update (or failure)
  /// landing at the server during server step `round`, fired on the
  /// stepping thread in arrival order, before the fold.
  virtual void on_arrival(std::size_t round, const ArrivalRecord& arrival) {
    (void)round;
    (void)arrival;
  }

  /// One completed phase of server step `round`, fired as each phase
  /// finishes (so all of a round's phases precede its on_round_end).
  virtual void on_phase(std::size_t round, const PhaseRecord& record) {
    (void)round;
    (void)record;
  }

  /// Fault plan only: a failed dispatch being retried (async) or a
  /// cohort slot being backfilled (sync), on the stepping thread.
  virtual void on_retry(std::size_t round, const RetryRecord& record) {
    (void)round;
    (void)record;
  }
};

/// The accounting that used to be hard-coded in the FlJob round loop,
/// expressed as an observer: communication volume, per-party selection
/// counts (fairness / coverage), wall-time-to-target tracking, and the
/// peak-accuracy watermark. The session installs one instance
/// internally and folds its state into FlJobResult; external tools can
/// attach their own to account any session the same way.
class ResultAccounting final : public RoundObserver {
 public:
  ResultAccounting(std::size_t num_parties, double target_accuracy)
      : selection_counts_(num_parties, 0),
        target_accuracy_(target_accuracy) {}

  void on_party_feedback(std::size_t round,
                         const PartyFeedback& feedback) override;
  void on_round_end(std::size_t round, const RoundRecord& record) override;

  std::uint64_t total_bytes() const { return total_bytes_; }
  std::uint64_t upload_bytes() const { return upload_bytes_; }
  std::uint64_t download_bytes() const { return download_bytes_; }
  double total_time_s() const { return total_time_s_; }
  double peak_accuracy() const { return peak_accuracy_; }
  const std::vector<std::size_t>& selection_counts() const {
    return selection_counts_;
  }
  /// First round after which every party had been selected >= once.
  const std::optional<std::size_t>& coverage_round() const {
    return coverage_round_;
  }
  const std::optional<std::size_t>& rounds_to_target() const {
    return rounds_to_target_;
  }
  const std::optional<double>& time_to_target_s() const {
    return time_to_target_s_;
  }

 private:
  std::vector<std::size_t> selection_counts_;
  double target_accuracy_ = 0.0;
  std::size_t covered_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t upload_bytes_ = 0;
  std::uint64_t download_bytes_ = 0;
  double total_time_s_ = 0.0;
  double peak_accuracy_ = 0.0;
  std::optional<std::size_t> coverage_round_;
  std::optional<std::size_t> rounds_to_target_;
  std::optional<double> time_to_target_s_;
};

}  // namespace flips::fl
