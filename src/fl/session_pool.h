// Multi-session scheduler: interleaves N federation sessions,
// round-robin at round granularity, over ONE shared worker pool — the
// multi-tenant serving shape (many federations, one simulator host).
//
// Because every session's randomness comes from its own seed-derived
// streams and all order-sensitive reductions run on the stepping
// thread, a session stepped through the pool produces results
// bit-identical to running it alone (test_session pins this, and
// bench_scalability's multitenant arm re-checks it at bench scale).
//
// Usage:
//   common::ThreadPool workers(threads);
//   SessionPool pool;
//   pool.add(std::make_unique<FederationSession>(..., &workers));
//   pool.add(std::make_unique<FederationSession>(..., &workers));
//   pool.run_all();   // or: while (pool.step() != SessionPool::npos) {}
//   FlJobResult r0 = pool.session(0).result();
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "fl/session.h"

namespace flips::fl {

class SessionPool {
 public:
  /// Adds a session and returns its index. Sessions should be built on
  /// one shared common::ThreadPool so tenants contend for the same
  /// workers instead of oversubscribing the host.
  std::size_t add(std::unique_ptr<FederationSession> session);

  /// Runs ONE round of the next unfinished session (round-robin) and
  /// returns its index, or npos when every session is done.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t step();

  /// Interleaves all sessions to completion.
  void run_all();

  [[nodiscard]] bool done() const;
  std::size_t size() const { return sessions_.size(); }
  FederationSession& session(std::size_t index) {
    return *sessions_[index];
  }
  const FederationSession& session(std::size_t index) const {
    return *sessions_[index];
  }

  /// Total rounds stepped through the pool (all sessions).
  std::size_t rounds_stepped() const { return rounds_stepped_; }

 private:
  std::vector<std::unique_ptr<FederationSession>> sessions_;
  std::size_t cursor_ = 0;
  std::size_t rounds_stepped_ = 0;
};

}  // namespace flips::fl
