// Multi-session scheduler: interleaves N federation sessions,
// round-robin at round granularity, over ONE shared worker pool — the
// multi-tenant serving shape (many federations, one simulator host).
//
// Because every session's randomness comes from its own seed-derived
// streams and all order-sensitive reductions run on the stepping
// thread, a session stepped through the pool produces results
// bit-identical to running it alone (test_session pins this, and
// bench_scalability's multitenant arm re-checks it at bench scale).
//
// Usage:
//   common::ThreadPool workers(threads);
//   SessionPool pool;
//   pool.add(std::make_unique<FederationSession>(..., &workers), "a");
//   pool.add(std::make_unique<FederationSession>(..., &workers), "b");
//   pool.run_all();   // or: while (auto s = pool.step()) { ...use *s }
//   FlJobResult r0 = pool.session(0).result();
//
// The serving front end (serve/server.h) steps tenants individually
// with step(index) — its fairness loop round-robins over PENDING
// requests, not over every session — and keys its per-tenant
// accounting on the names registered through add().
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "fl/session.h"

namespace flips::fl {

/// What one scheduler step did — which session ran, which of its
/// rounds completed, and whether that exhausted it.
struct StepResult {
  std::size_t session_index = 0;
  std::size_t round = 0;   ///< 1-based server steps completed after this
  bool finished = false;   ///< the session has no rounds left
};

class SessionPool {
 public:
  /// Adds a session under `tenant` (empty = auto "tenant-<index>") and
  /// returns its index. Throws std::invalid_argument on a duplicate
  /// tenant name — the serving layer keys per-tenant accounting on it.
  /// Sessions should be built on one shared common::ThreadPool so
  /// tenants contend for the same workers instead of oversubscribing
  /// the host.
  std::size_t add(std::unique_ptr<FederationSession> session,
                  std::string tenant = {});

  /// Runs ONE round of the next unfinished session (round-robin) and
  /// reports what ran; nullopt when every session is done.
  std::optional<StepResult> step();

  /// Runs one round of session `index` specifically (the serving
  /// front end's entry point — its fairness is over pending requests,
  /// not sessions). nullopt when that session is already done.
  std::optional<StepResult> step(std::size_t index);

  /// Interleaves all sessions to completion.
  void run_all();

  /// Destroys session `index` and releases its tenant name (the
  /// serving layer's idle-eviction path). Indices are stable: the slot
  /// becomes a hole that step()/done()/find_tenant skip, and a future
  /// add() may register the freed name again. Idempotent.
  void evict(std::size_t index);

  /// False once `index` has been evicted (session(index) would be
  /// invalid).
  [[nodiscard]] bool has_session(std::size_t index) const {
    return index < sessions_.size() && sessions_[index] != nullptr;
  }

  [[nodiscard]] bool done() const;
  std::size_t size() const { return sessions_.size(); }
  FederationSession& session(std::size_t index) {
    return *sessions_[index];
  }
  const FederationSession& session(std::size_t index) const {
    return *sessions_[index];
  }

  const std::string& tenant_name(std::size_t index) const {
    return tenants_[index];
  }
  /// Index of the session registered under `tenant`, if any.
  [[nodiscard]] std::optional<std::size_t> find_tenant(
      std::string_view tenant) const;

  /// Total rounds stepped through the pool (all sessions).
  std::size_t rounds_stepped() const { return rounds_stepped_; }

 private:
  std::vector<std::unique_ptr<FederationSession>> sessions_;
  std::vector<std::string> tenants_;
  std::size_t cursor_ = 0;
  std::size_t rounds_stepped_ = 0;
};

}  // namespace flips::fl
