#include "fl/session.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "common/stats.h"

namespace flips::fl {

namespace {

/// Steady-clock nanoseconds for phase telemetry (wall overhead of each
/// pipeline stage; orthogonal to the simulated clock).
std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct EvalResult {
  double balanced_accuracy = 0.0;
  std::vector<double> per_label_accuracy;
};

/// Balanced accuracy over the test set. Predictions are computed in
/// parallel chunks (each chunk forwards through its own clone of the
/// model, since layers cache activations) into per-row slots; the
/// per-class tally runs on one thread, so the result does not depend
/// on the chunking.
EvalResult evaluate(const ml::Sequential& model, const ml::Tensor& features,
                    const std::vector<std::uint32_t>& labels,
                    std::size_t num_classes, common::ThreadPool& pool) {
  EvalResult eval;
  const std::size_t n = features.rows();
  if (n == 0) return eval;
  eval.per_label_accuracy.assign(num_classes, 0.0);
  std::vector<double> totals(num_classes, 0.0);

  std::vector<std::uint32_t> preds(n, 0);
  // Fixed chunk granularity, NOT pool.size()-derived: the ML kernels
  // build with -ffast-math, where a row's position inside its chunk
  // decides which SIMD-body/remainder code path computes it. Constant
  // boundaries keep every row's arithmetic identical for every thread
  // count; the pool merely distributes the chunks.
  constexpr std::size_t kEvalChunkRows = 64;
  const std::size_t num_chunks = (n + kEvalChunkRows - 1) / kEvalChunkRows;
  // Scratch models are recycled through a small checkout stack so the
  // number of deep clones is bounded by the worker count, not the
  // chunk count (a clone exists only to give each in-flight chunk
  // private activation buffers).
  std::vector<std::unique_ptr<ml::Sequential>> scratch_models;
  std::mutex scratch_mutex;
  pool.parallel_for(num_chunks, [&](std::size_t c) {
    const std::size_t begin = c * kEvalChunkRows;
    const std::size_t end = std::min(n, begin + kEvalChunkRows);
    if (begin >= end) return;
    std::unique_ptr<ml::Sequential> local;
    {
      std::lock_guard<std::mutex> lock(scratch_mutex);
      if (!scratch_models.empty()) {
        local = std::move(scratch_models.back());
        scratch_models.pop_back();
      }
    }
    if (!local) local = std::make_unique<ml::Sequential>(model);
    ml::Tensor slice(end - begin, features.cols());
    std::memcpy(slice.data(), features.row(begin),
                slice.size() * sizeof(double));
    const ml::Tensor& logits = local->forward(slice);
    for (std::size_t i = begin; i < end; ++i) {
      const double* row = logits.row(i - begin);
      std::size_t best = 0;
      for (std::size_t k = 1; k < logits.cols(); ++k) {
        if (row[k] > row[best]) best = k;
      }
      preds[i] = static_cast<std::uint32_t>(best);
    }
    std::lock_guard<std::mutex> lock(scratch_mutex);
    scratch_models.push_back(std::move(local));
  });

  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t truth = labels[i];
    totals[truth] += 1.0;
    if (preds[i] == truth) eval.per_label_accuracy[truth] += 1.0;
  }
  std::size_t live_classes = 0;
  for (std::size_t c = 0; c < num_classes; ++c) {
    if (totals[c] > 0.0) {
      eval.per_label_accuracy[c] /= totals[c];
      eval.balanced_accuracy += eval.per_label_accuracy[c];
      ++live_classes;
    }
  }
  if (live_classes > 0) {
    eval.balanced_accuracy /= static_cast<double>(live_classes);
  }
  return eval;
}

/// RNG-stream salt for async dispatches: streams are keyed by the
/// monotone dispatch sequence (not the step number), so a party
/// re-dispatched at the same server version still draws fresh noise.
constexpr std::uint64_t kAsyncStreamSalt = 0x0A57'0000'0000'0000ull;

/// Seed salt for the session's fault plan: its churn/crash/link streams
/// must never alias the party training streams.
constexpr std::uint64_t kFaultPlanSalt = 0xFA17'0000'0000'0000ull;

}  // namespace

// ---------------------------------------------------------------------
// ResultAccounting (fl/observer.h)

void ResultAccounting::on_party_feedback(std::size_t round,
                                         const PartyFeedback& feedback) {
  (void)round;
  if (feedback.party_id < selection_counts_.size() &&
      selection_counts_[feedback.party_id]++ == 0) {
    ++covered_;
  }
}

void ResultAccounting::on_round_end(std::size_t round,
                                    const RoundRecord& record) {
  download_bytes_ += record.download_bytes;
  upload_bytes_ += record.upload_bytes;
  total_bytes_ +=
      record.download_bytes + record.upload_bytes + record.setup_bytes;
  total_time_s_ += record.round_time_s;
  peak_accuracy_ = std::max(peak_accuracy_, record.balanced_accuracy);
  if (!rounds_to_target_ && target_accuracy_ > 0.0 &&
      record.balanced_accuracy >= target_accuracy_) {
    rounds_to_target_ = round;
    time_to_target_s_ = total_time_s_;
  }
  if (!coverage_round_ && covered_ == selection_counts_.size()) {
    coverage_round_ = round;
  }
}

// ---------------------------------------------------------------------
// FederationSession

/// Everything a party produces inside the parallel phase. Workers
/// write only their own slot; the sequential phase folds the slots
/// into shared state in cohort order.
struct FederationSession::PartyOutcome {
  PartyFeedback fb;
  bool trained = false;
  std::vector<double> scaffold_ci_new;  ///< SCAFFOLD only
  /// Arena-leased wire update (decoded under a lossy codec, clipped
  /// under DP) — what the aggregator folds. Moved into fb.delta after
  /// the fold so selectors can read it, then returned to the arena.
  std::vector<double> delta;
  std::uint64_t wire_bytes = 0;  ///< encoded uplink size
  // Fault plan (sync): the stepping thread sets the dispatch key and
  // the churn verdict before the parallel wave; the worker records how
  // the dispatch failed. fault_failed slots are what backfill replaces.
  std::uint64_t event = 0;   ///< fault-stream key (dispatch sequence)
  bool churned = false;      ///< unreachable at dispatch (set pre-wave)
  bool fault_failed = false; ///< lost to churn / crash / link fault
  bool link_failed = false;  ///< trained but the uplink was lost
};

/// One async in-flight dispatch slot. The stepping thread fills the
/// dispatch metadata, a worker fills the training outcome, and the
/// slot stays occupied until its arrival is processed (folded slots
/// keep their delta borrowed by the aggregator until the server step).
struct FederationSession::InFlight {
  PartyFeedback fb;
  std::vector<double> delta;     ///< arena-leased wire update
  std::uint64_t wire_bytes = 0;  ///< encoded uplink size
  std::uint64_t seq = 0;         ///< dispatch sequence (RNG stream key)
  std::size_t dispatch_version = 0;  ///< server_version_ at dispatch
  bool trained = false;
  // Fault plan (async): churn is checked on the stepping thread at
  // dispatch/retry time; crash and link draws happen inside
  // train_one_dispatch (stateless streams, worker-safe).
  std::size_t attempt = 0;   ///< retries consumed for this occupancy
  bool churned = false;      ///< unreachable at dispatch
  bool link_failed = false;  ///< trained but the uplink was lost
};

FederationSession::FederationSession(
    FlJobConfig config, std::shared_ptr<const std::vector<Party>> parties,
    data::Dataset global_test, ml::Sequential model,
    std::unique_ptr<ParticipantSelector> selector,
    common::ThreadPool* shared_pool)
    : config_(std::move(config)),
      parties_(std::move(parties)),
      global_test_(std::move(global_test)),
      model_(std::move(model)),
      selector_(std::move(selector)),
      shared_pool_(shared_pool),
      accounting_(parties_->size(), config_.target_accuracy),
      rng_(config_.seed),
      server_(config_.server, model_.num_parameters()),
      local_sgd_(config_.local.sgd),
      codec_(config_.codec),
      broadcast_rng_(common::mix_seed(config_.seed, 0, 0xB0ADCA57ull)) {
  const std::size_t n = parties_->size();
  inert_ = n == 0 || config_.rounds == 0;
  if (shared_pool_ == nullptr) {
    owned_pool_ = std::make_unique<common::ThreadPool>(config_.threads);
  }

  global_params_ = model_.parameters();
  dim_ = global_params_.size();
  model_bytes_ = static_cast<std::uint64_t>(dim_ * sizeof(double));
  test_features_ = ml::Tensor::from_rows(global_test_.features);

  // Drift-correction state (lazily touched per party).
  if (config_.local.algo == ClientAlgo::kScaffold) {
    scaffold_ci_.assign(n, {});
    scaffold_c_.assign(dim_, 0.0);
  } else if (config_.local.algo == ClientAlgo::kFedDyn) {
    feddyn_hi_.assign(n, {});
  }

  dp_on_ = config_.privacy.mechanism == PrivacyMechanism::kDp &&
           config_.privacy.dp.noise_multiplier > 0.0;
  masking_on_ = config_.privacy.mechanism == PrivacyMechanism::kMasking;

  codec_on_ = config_.codec.codec != net::Codec::kDense64;
  if (codec_on_) {
    ef_residuals_.assign(n, {});
    server_residual_.assign(dim_, 0.0);
  }

  config_.faults.validate();
  faults_on_ = config_.faults.enabled();
  if (faults_on_) {
    faults_ = net::FaultPlan(
        common::mix_seed(config_.seed, kFaultPlanSalt, 0), config_.faults,
        n);
  }

  if (config_.mode == FederationMode::kAsync) {
    // Round-synchronous algorithms need every cohort member to train
    // against the same server state and fold at the same barrier —
    // structurally incompatible with buffered stepping.
    if (config_.local.algo != ClientAlgo::kSgd) {
      throw std::invalid_argument(
          "FederationSession: async mode supports ClientAlgo::kSgd only "
          "(SCAFFOLD/FedDyn are round-synchronous)");
    }
    if (masking_on_) {
      throw std::invalid_argument(
          "FederationSession: pairwise-mask SecAgg needs a round barrier "
          "and is not available in async mode");
    }
    if (config_.stragglers.mode == StragglerMode::kDeadline &&
        config_.stragglers.deadline_s > 0.0) {
      // There is no round to bound in async mode: slow updates are
      // discounted and eventually dropped by the staleness cutoff, so a
      // configured deadline would be silently ignored. Fail fast like
      // SCAFFOLD/masking rather than run a config that means nothing.
      throw std::invalid_argument(
          "FederationSession: StragglerMode::kDeadline has no effect in "
          "async mode (the bounded-staleness cutoff subsumes it) — use "
          "async.max_staleness instead, or clear deadline_s");
    }
    const std::size_t cohort = std::max<std::size_t>(
        1, std::min(config_.parties_per_round, n == 0 ? 1 : n));
    buffer_k_ = config_.async.buffer_k > 0 ? config_.async.buffer_k
                                           : (cohort + 1) / 2;
    buffer_k_ = std::min(buffer_k_, cohort);
    inflight_.resize(cohort);
    free_slots_.resize(cohort);
    // Pop order is cosmetic (slot ids never feed the math) but keep it
    // deterministic: slot 0 dispatches first.
    for (std::size_t k = 0; k < cohort; ++k) {
      free_slots_[k] = cohort - 1 - k;
    }
    party_in_flight_.assign(n, 0);
  }

  observers_.push_back(&accounting_);
}

FederationSession::FederationSession(
    FlJobConfig config, std::vector<Party> parties,
    data::Dataset global_test, ml::Sequential model,
    std::unique_ptr<ParticipantSelector> selector,
    common::ThreadPool* shared_pool)
    : FederationSession(
          std::move(config),
          std::make_shared<const std::vector<Party>>(std::move(parties)),
          std::move(global_test), std::move(model), std::move(selector),
          shared_pool) {}

FederationSession::~FederationSession() = default;

void FederationSession::add_observer(RoundObserver* observer) {
  if (observer != nullptr) observers_.push_back(observer);
}

void FederationSession::add_observer(
    std::shared_ptr<RoundObserver> observer) {
  if (!observer) return;
  observers_.push_back(observer.get());
  owned_observers_.push_back(std::move(observer));
}

bool FederationSession::done() const {
  return inert_ || exhausted_ || next_round_ > config_.rounds;
}

std::vector<std::size_t> FederationSession::select_cohort(
    std::size_t round) {
  std::vector<std::size_t> cohort =
      selector_->select(round, config_.parties_per_round);
  // Defensive: clamp ids and dedupe (selectors should already comply).
  const std::size_t n = parties_->size();
  std::unordered_set<std::size_t> seen;
  std::vector<std::size_t> valid;
  for (const std::size_t p : cohort) {
    if (p < n && seen.insert(p).second) valid.push_back(p);
  }
  return valid;
}

double FederationSession::train_cohort(std::size_t round,
                                       std::vector<std::size_t>& cohort,
                                       RoundRecord& record) {
  // SCAFFOLD: every party in the cohort must train against the SAME
  // round-start control variate; updates to c are folded in after the
  // parallel phase so results do not depend on cohort order or
  // scheduling.
  if (config_.local.algo == ClientAlgo::kScaffold) {
    scaffold_c_round_ = scaffold_c_;
  }

  // Under a fault plan the round reserves a backfill budget of one
  // extra slot per cohort member; unused slots are skipped at the end.
  const std::size_t base = cohort.size();
  const std::size_t budget = faults_on_ ? base : 0;
  aggregator_.begin_round(dim_, base + budget);
  outcomes_.clear();
  outcomes_.reserve(base + budget);

  double elapsed_s = train_wave(round, cohort, 0, sim_time_s_);

  if (faults_on_ && budget > 0) {
    // Backfill waves: each wave replaces the previous wave's
    // fault-failed slots with fresh selector picks, dispatched after an
    // exponential backoff. Wave count is capped by max_retries and the
    // slot budget; everything runs on the stepping thread, so the
    // schedule is a pure function of the seed.
    std::unordered_set<std::size_t> dispatched(cohort.begin(),
                                               cohort.end());
    std::size_t wave_begin = 0;
    for (std::size_t wave = 1; wave <= config_.faults.max_retries;
         ++wave) {
      std::size_t failures = 0;
      for (std::size_t k = wave_begin; k < outcomes_.size(); ++k) {
        if (outcomes_[k].fault_failed) ++failures;
      }
      const std::size_t room = base + budget - outcomes_.size();
      const std::size_t need = std::min(failures, room);
      if (need == 0) break;
      std::vector<std::size_t> extra;
      for (const std::size_t p : selector_->select(round, need)) {
        if (extra.size() == need) break;
        if (p < parties_->size() && dispatched.insert(p).second) {
          extra.push_back(p);
        }
      }
      if (extra.empty()) break;
      const double backoff_s = config_.faults.backoff_s(wave - 1);
      elapsed_s += backoff_s;
      for (const std::size_t p : extra) {
        RetryRecord retry;
        retry.party_id = p;
        retry.attempt = wave;
        retry.backoff_s = backoff_s;
        retry.time_s = sim_time_s_ + elapsed_s;
        for (RoundObserver* obs : observers_) {
          obs->on_retry(round, retry);
        }
      }
      record.backfilled += extra.size();
      wave_begin = outcomes_.size();
      cohort.insert(cohort.end(), extra.begin(), extra.end());
      elapsed_s +=
          train_wave(round, extra, wave_begin, sim_time_s_ + elapsed_s);
    }
  }

  // Resolve unused budget slots so finalize() can drain.
  for (std::size_t k = outcomes_.size(); k < base + budget; ++k) {
    aggregator_.skip(k);
  }
  return elapsed_s;
}

double FederationSession::train_wave(std::size_t round,
                                     const std::vector<std::size_t>& wave,
                                     std::size_t slot_offset,
                                     double dispatch_time_s) {
  const double local_lr = local_sgd_.learning_rate_for_round(round);

  outcomes_.resize(slot_offset + wave.size());
  // Fault pre-pass on the stepping thread: assign each dispatch its
  // fault-stream key and query the (stateful) churn trace at the
  // wave's dispatch time. Workers then only use the stateless streams.
  if (faults_on_) {
    for (std::size_t i = 0; i < wave.size(); ++i) {
      PartyOutcome& out = outcomes_[slot_offset + i];
      out.event = dispatch_seq_++;
      const PartyProfile& profile = (*parties_)[wave[i]].profile();
      out.churned = !faults_.available(wave[i], dispatch_time_s,
                                       profile.mean_up_s,
                                       profile.mean_down_s);
    }
  }

  // ---- Parallel phase: each selected party simulates its round
  // (straggler draws + local training) into its own outcome slot and
  // submits its wire update to the streaming aggregator, which folds
  // complete cohort-order blocks while later parties still train.
  // Shared state (model_, global_params_, round-start control
  // variates) is read-only here.
  auto simulate_party = [&](std::size_t i) {
    const std::size_t k = slot_offset + i;
    const std::size_t p = wave[i];
    const Party& party = (*parties_)[p];
    PartyOutcome& out = outcomes_[k];
    PartyFeedback& fb = out.fb;
    fb.party_id = p;
    fb.num_samples = party.size();

    common::Rng prng(common::mix_seed(config_.seed, round, p));

    fb.duration_s =
        net::simulated_duration_s(
            party.profile().speed_factor, static_cast<double>(party.size()),
            static_cast<double>(config_.local.epochs),
            config_.compute_s_per_sample,
            static_cast<double>(model_bytes_),
            party.profile().network_mbps) *
        prng.uniform(0.85, 1.15);

    bool responds = true;
    if (config_.stragglers.mode == StragglerMode::kDropFraction) {
      if (prng.uniform() < config_.stragglers.rate) responds = false;
    } else if (config_.stragglers.deadline_s > 0.0 &&
               fb.duration_s > config_.stragglers.deadline_s) {
      responds = false;
    }
    if (!faults_on_) {
      // Legacy per-pick reliability draws (kept byte-identical when no
      // fault plan is configured).
      if (prng.uniform() > party.profile().availability) responds = false;
      if (prng.uniform() < party.profile().fault_rate) responds = false;
    } else if (out.churned) {
      // Unreachable at dispatch: the server notices immediately — no
      // compute, no wire time.
      responds = false;
      out.fault_failed = true;
      fb.duration_s = 0.0;
    } else if (responds &&
               faults_.crashes(p, out.event,
                               party.profile().fault_rate)) {
      // Mid-training crash: the full simulated duration elapses before
      // the server gives up on the dispatch, but no update lands (and
      // the party burns no persistent client state).
      responds = false;
      out.fault_failed = true;
    } else if (responds) {
      const net::LinkFault link = faults_.transfer(p, out.event);
      if (link.failed) {
        // Uplink lost in transit: full duration consumed and the
        // encoded update's bytes are charged as waste (the dense size —
        // the failed transfer never reaches the codec path, which also
        // keeps the party's error-feedback residual untouched).
        responds = false;
        out.fault_failed = true;
        out.link_failed = true;
        out.wire_bytes = model_bytes_;
      } else {
        fb.duration_s *= link.slowdown;
      }
    }
    fb.responded = responds;
    if (!responds || party.size() == 0) {
      aggregator_.skip(k);
      return;
    }

    // ---- Local training (only responders pay the compute). ----
    out.trained = true;
    ml::Sequential local = model_;
    std::vector<double>& w = local.mutable_parameters();
    const auto& dataset = party.dataset();
    const std::size_t feature_dim =
        dataset.features.empty() ? 0 : dataset.features.front().size();
    std::vector<std::size_t> order(dataset.size());
    std::iota(order.begin(), order.end(), 0);

    const double mu = config_.local.prox_mu;
    const double* ci = nullptr;  // round-start SCAFFOLD variate
    if (config_.local.algo == ClientAlgo::kScaffold &&
        !scaffold_ci_[p].empty()) {
      ci = scaffold_ci_[p].data();
    }
    const double* hi = nullptr;  // round-start FedDyn regularizer
    if (config_.local.algo == ClientAlgo::kFedDyn &&
        !feddyn_hi_[p].empty()) {
      hi = feddyn_hi_[p].data();
    }

    ml::Tensor batch;
    std::vector<std::uint32_t> batch_labels;
    double batch_loss_sum = 0.0;
    double batch_loss_sq_sum = 0.0;
    std::size_t steps = 0;
    for (std::size_t epoch = 0; epoch < config_.local.epochs; ++epoch) {
      prng.shuffle(order);
      for (std::size_t start = 0; start < order.size();
           start += config_.local.batch_size) {
        const std::size_t stop =
            std::min(order.size(), start + config_.local.batch_size);
        batch.resize(stop - start, feature_dim);
        batch_labels.resize(stop - start);
        for (std::size_t i = start; i < stop; ++i) {
          const auto& src = dataset.features[order[i]];
          std::memcpy(batch.row(i - start), src.data(),
                      feature_dim * sizeof(double));
          batch_labels[i - start] = dataset.labels[order[i]];
        }
        const double loss = local.train_step_gradient(batch, batch_labels);
        batch_loss_sum += loss;
        batch_loss_sq_sum += loss * loss;
        ++steps;

        // Fused correction + SGD step, straight on the model's flat
        // parameter buffer (no gradient copy, no copy-back).
        const std::vector<double>& grad = local.gradients();
        switch (config_.local.algo) {
          case ClientAlgo::kSgd:
            if (mu > 0.0) {
              for (std::size_t i = 0; i < dim_; ++i) {
                w[i] -= local_lr *
                        (grad[i] + mu * (w[i] - global_params_[i]));
              }
            } else {
              for (std::size_t i = 0; i < dim_; ++i) {
                w[i] -= local_lr * grad[i];
              }
            }
            break;
          case ClientAlgo::kScaffold:
            for (std::size_t i = 0; i < dim_; ++i) {
              double g = grad[i] + scaffold_c_round_[i] -
                         (ci != nullptr ? ci[i] : 0.0);
              if (mu > 0.0) g += mu * (w[i] - global_params_[i]);
              w[i] -= local_lr * g;
            }
            break;
          case ClientAlgo::kFedDyn:
            for (std::size_t i = 0; i < dim_; ++i) {
              double g = grad[i] +
                         config_.local.feddyn_alpha *
                             (w[i] - global_params_[i]) -
                         (hi != nullptr ? hi[i] : 0.0);
              if (mu > 0.0) g += mu * (w[i] - global_params_[i]);
              w[i] -= local_lr * g;
            }
            break;
        }
      }
    }
    out.delta = arena_.lease(dim_);
    for (std::size_t i = 0; i < dim_; ++i) {
      out.delta[i] = w[i] - global_params_[i];
    }
    if (steps > 0) {
      fb.mean_loss = batch_loss_sum / static_cast<double>(steps);
      fb.loss_rms =
          std::sqrt(batch_loss_sq_sum / static_cast<double>(steps));
    }

    // SCAFFOLD option-II variate refresh (Karimireddy et al. Eq. 5);
    // depends only on round-start state, so it can run in parallel.
    // Uses the RAW delta — client-side state must not see wire loss.
    if (config_.local.algo == ClientAlgo::kScaffold && steps > 0) {
      out.scaffold_ci_new.resize(dim_);
      const double inv = 1.0 / (static_cast<double>(steps) * local_lr);
      for (std::size_t i = 0; i < dim_; ++i) {
        out.scaffold_ci_new[i] = (ci != nullptr ? ci[i] : 0.0) -
                                 scaffold_c_round_[i] - out.delta[i] * inv;
      }
    }
    // FedDyn regularizer refresh: per-party state touched only by its
    // owner (cohorts are deduped), so it is safe — and deterministic —
    // to update here in the parallel phase. Raw delta, same as
    // SCAFFOLD.
    if (config_.local.algo == ClientAlgo::kFedDyn) {
      auto& hi_state = feddyn_hi_[p];
      if (hi_state.empty()) hi_state.assign(dim_, 0.0);
      for (std::size_t i = 0; i < dim_; ++i) {
        hi_state[i] -= config_.local.feddyn_alpha * out.delta[i];
      }
    }

    // ---- Wire codec (client side): error feedback + encode +
    // decode. out.delta becomes the decoded update — exactly what the
    // server receives.
    if (codec_on_) {
      thread_local net::EncodedUpdate enc;
      thread_local net::CodecWorkspace ws;
      auto& residual = ef_residuals_[p];
      std::vector<double> pre = arena_.lease(dim_);
      if (residual.empty()) {
        std::memcpy(pre.data(), out.delta.data(), dim_ * sizeof(double));
      } else {
        for (std::size_t i = 0; i < dim_; ++i) {
          pre[i] = out.delta[i] + residual[i];
        }
      }
      codec_.encode(pre, prng, enc, ws);
      out.wire_bytes = enc.wire_bytes();
      codec_.decode(enc, out.delta);
      if (residual.empty()) residual.assign(dim_, 0.0);
      for (std::size_t i = 0; i < dim_; ++i) {
        residual[i] = pre[i] - out.delta[i];
      }
      arena_.release(std::move(pre));
    } else {
      out.wire_bytes = model_bytes_;
    }

    double weight =
        fb.num_samples > 0 ? static_cast<double>(fb.num_samples) : 1.0;
    if (dp_on_) {
      privacy::clip_to_norm(out.delta, config_.privacy.dp.clip_norm);
      // DP-FedAvg aggregates clipped updates with EQUAL weights: under
      // sample-count weighting one large party could dominate the mean
      // with weight ~1, and the per-round sensitivity clip_norm /
      // cohort (which the noise sigma below assumes) would be
      // violated.
      weight = 1.0;
    }
    aggregator_.submit(k, weight, out.delta);
  };
  pool().parallel_for(wave.size(), simulate_party);

  double wave_max_s = 0.0;
  for (std::size_t i = 0; i < wave.size(); ++i) {
    wave_max_s =
        std::max(wave_max_s, outcomes_[slot_offset + i].fb.duration_s);
  }
  return wave_max_s;
}

void FederationSession::fold_outcomes(
    const std::vector<std::size_t>& cohort, RoundRecord& record,
    std::uint64_t& up_bytes) {
  // ---- Sequential phase: fold outcomes into shared state in cohort
  // order (bit-identical for every thread count).
  feedback_.clear();
  feedback_.reserve(cohort.size());
  double round_time = 0.0;
  double loss_sum = 0.0;
  std::size_t responded = 0;
  const std::size_t n = parties_->size();

  for (std::size_t k = 0; k < cohort.size(); ++k) {
    const std::size_t p = cohort[k];
    PartyOutcome& out = outcomes_[k];

    if (out.trained) {
      loss_sum += out.fb.mean_loss;
      ++responded;
      up_bytes += out.wire_bytes;

      if (config_.local.algo == ClientAlgo::kScaffold &&
          !out.scaffold_ci_new.empty()) {
        auto& ci = scaffold_ci_[p];
        if (ci.empty()) ci.assign(dim_, 0.0);
        const double inv_n = 1.0 / static_cast<double>(n);
        for (std::size_t i = 0; i < dim_; ++i) {
          // Server-side c absorbs the per-client change scaled by 1/N;
          // nobody reads it until the next round.
          scaffold_c_[i] += (out.scaffold_ci_new[i] - ci[i]) * inv_n;
        }
        ci = std::move(out.scaffold_ci_new);
      }
      // (FedDyn's hi refresh happens in the parallel phase.)

      // Zero-copy hand-off: the arena buffer travels through the
      // feedback (selectors and observers may read it) and is released
      // back to the arena after the round.
      out.fb.delta = std::move(out.delta);
    } else if (out.fault_failed) {
      ++record.crashed;
      // A lost uplink still transited the wire: charge the waste.
      up_bytes += out.wire_bytes;
    }

    round_time = std::max(round_time, out.fb.duration_s);
    feedback_.push_back(std::move(out.fb));
  }

  if (config_.stragglers.mode == StragglerMode::kDeadline &&
      config_.stragglers.deadline_s > 0.0) {
    round_time = std::min(round_time, config_.stragglers.deadline_s);
  }

  record.selected = cohort.size();
  record.responded = responded;
  record.round_time_s = round_time;
  record.mean_train_loss =
      responded > 0 ? loss_sum / static_cast<double>(responded) : 0.0;
}

std::uint64_t FederationSession::server_step(
    std::vector<double>& aggregate,
    const std::vector<std::size_t>& cohort, bool apply) {
  std::uint64_t round_down_bytes = 0;
  if (apply && aggregator_.contributions() > 0) {
    if (dp_on_) {
      const double sigma =
          config_.privacy.dp.noise_multiplier *
          config_.privacy.dp.clip_norm /
          static_cast<double>(aggregator_.contributions());
      privacy::add_gaussian_noise(aggregate, sigma, rng_);
      accountant_.step(config_.privacy.dp.noise_multiplier);
    }
    if (codec_on_) {
      // The broadcast is the codec-compressed per-round parameter
      // delta (clients cache the model and apply decoded deltas). The
      // server applies the DECODED delta to its own copy too, so the
      // single global model in the simulation is exactly what every
      // client reconstructs. Server-side error feedback keeps the
      // broadcast stream convergent.
      std::vector<double> prev = arena_.lease(dim_);
      std::memcpy(prev.data(), global_params_.data(),
                  dim_ * sizeof(double));
      server_.apply(global_params_, aggregate);
      std::vector<double> pre = arena_.lease(dim_);
      for (std::size_t i = 0; i < dim_; ++i) {
        pre[i] = (global_params_[i] - prev[i]) + server_residual_[i];
      }
      codec_.encode(pre, broadcast_rng_, broadcast_enc_, broadcast_ws_);
      round_down_bytes =
          static_cast<std::uint64_t>(broadcast_enc_.wire_bytes()) *
          cohort.size();
      codec_.decode(broadcast_enc_, broadcast_wire_);
      for (std::size_t i = 0; i < dim_; ++i) {
        server_residual_[i] = pre[i] - broadcast_wire_[i];
        global_params_[i] = prev[i] + broadcast_wire_[i];
      }
      arena_.release(std::move(prev));
      arena_.release(std::move(pre));
    } else {
      server_.apply(global_params_, aggregate);
    }
    model_.set_parameters(global_params_);
  }
  if (!codec_on_) {
    round_down_bytes = model_bytes_ * cohort.size();  // full model down
  }
  return round_down_bytes;
}

void FederationSession::evaluate_round(std::size_t round,
                                       RoundRecord& record) {
  // Every eval_every rounds; carried forward in between.
  const bool eval_now = round == 1 || round == config_.rounds ||
                        config_.eval_every == 0 ||
                        round % config_.eval_every == 0;
  if (eval_now) {
    const EvalResult eval =
        evaluate(model_, test_features_, global_test_.labels,
                 global_test_.num_classes, pool());
    record.balanced_accuracy = eval.balanced_accuracy;
    record.per_label_accuracy = eval.per_label_accuracy;
  } else if (!history_.empty()) {
    record.balanced_accuracy = history_.back().balanced_accuracy;
    record.per_label_accuracy = history_.back().per_label_accuracy;
  }
}

const RoundRecord& FederationSession::advance() {
  if (done()) {
    throw std::logic_error("FederationSession::advance: session done");
  }
  return config_.mode == FederationMode::kAsync ? async_step() : sync_step();
}

void FederationSession::emit_phase(std::size_t round, SessionPhase phase,
                                   std::uint64_t start_ns) {
  PhaseRecord record;
  record.phase = phase;
  record.start_ns = start_ns;
  record.end_ns = steady_now_ns();
  record.sim_time_s = sim_time_s_;
  for (RoundObserver* obs : observers_) {
    obs->on_phase(round, record);
  }
}

const RoundRecord& FederationSession::sync_step() {
  const std::size_t round = next_round_;

  for (RoundObserver* obs : observers_) {
    obs->on_round_begin(round, *selector_);
  }

  std::uint64_t t = steady_now_ns();
  std::vector<std::size_t> cohort = select_cohort(round);
  const std::size_t base_cohort = cohort.size();
  emit_phase(round, SessionPhase::kSelect, t);

  t = steady_now_ns();
  RoundRecord record;
  record.round = round;
  const double elapsed_s = train_cohort(round, cohort, record);
  emit_phase(round, SessionPhase::kTrainCohort, t);

  // Drain the streaming fold (any trailing partial block) and take the
  // weighted mean BEFORE the delta buffers move into feedback (the
  // aggregator borrows the submitted buffers until finalize()).
  t = steady_now_ns();
  std::vector<double>& aggregate = aggregator_.finalize();

  fold_outcomes(cohort, record, record.upload_bytes);
  if (faults_on_) {
    // Under a fault plan the round's simulated length is the wave
    // schedule (per-wave maxima + backoffs), not the plain cohort max.
    record.round_time_s = elapsed_s;
  }
  emit_phase(round, SessionPhase::kFold, t);

  // Quorum rule: with fewer than ceil(min_quorum x cohort) responders
  // the fold is too degraded to trust — skip the server step (the
  // round still evaluates and advances; nothing throws).
  bool apply = true;
  if (faults_on_ && config_.faults.min_quorum > 0.0) {
    const auto quorum = static_cast<std::size_t>(std::ceil(
        config_.faults.min_quorum * static_cast<double>(base_cohort)));
    if (record.responded < quorum) {
      apply = false;
      record.quorum_skipped = true;
    }
  }

  t = steady_now_ns();
  record.download_bytes = server_step(aggregate, cohort, apply);
  if (masking_on_ && cohort.size() > 1) {
    record.setup_bytes = static_cast<std::uint64_t>(32) * cohort.size() *
                         (cohort.size() - 1);  // pairwise key shares
  }
  emit_phase(round, SessionPhase::kServerStep, t);

  t = steady_now_ns();
  evaluate_round(round, record);
  emit_phase(round, SessionPhase::kEval, t);
  history_.push_back(std::move(record));
  const RoundRecord& stored = history_.back();

  for (const PartyFeedback& fb : feedback_) {
    for (RoundObserver* obs : observers_) {
      obs->on_party_feedback(round, fb);
    }
  }
  for (RoundObserver* obs : observers_) {
    obs->on_round_end(round, stored);
  }

  selector_->report_round(round, feedback_);
  // Selectors that keep deltas copy them in report_round; the arena
  // buffers come home so next round leases allocation-free.
  for (PartyFeedback& fb : feedback_) {
    arena_.release(std::move(fb.delta));
  }

  // Advance the simulated clock (drives the churn traces across
  // rounds; sync phase records historically stamped 0 here, and no
  // consumer depends on that).
  sim_time_s_ += stored.round_time_s;

  ++next_round_;
  return stored;
}

// ---------------------------------------------------------------------
// Async (FedBuff) engine

std::size_t FederationSession::refill_inflight(std::size_t step) {
  if (free_slots_.empty()) return 0;
  const std::size_t n = parties_->size();
  const std::vector<std::size_t> picks =
      selector_->select(step, config_.parties_per_round);

  // Stepping thread assigns slots and dispatch metadata; the worker
  // pool then trains the whole batch against the CURRENT server state
  // (every dispatch in the batch shares one model version, so training
  // eagerly at dispatch time is equivalent to training on arrival).
  std::vector<std::size_t> batch;
  std::unordered_set<std::size_t> seen;
  for (const std::size_t p : picks) {
    if (free_slots_.empty()) break;
    if (p >= n || party_in_flight_[p] != 0 || !seen.insert(p).second) {
      continue;
    }
    party_in_flight_[p] = 1;
    const std::size_t slot = free_slots_.back();
    free_slots_.pop_back();
    InFlight& f = inflight_[slot];
    f.fb = PartyFeedback{};
    f.fb.party_id = p;
    f.fb.num_samples = (*parties_)[p].size();
    f.wire_bytes = 0;
    f.trained = false;
    f.seq = dispatch_seq_++;
    f.dispatch_version = server_version_;
    f.attempt = 0;
    f.churned = false;
    f.link_failed = false;
    if (faults_on_ && config_.faults.churn > 0.0) {
      // Stateful churn cursor: stepping thread only, at dispatch time.
      const PartyProfile& profile = (*parties_)[p].profile();
      f.churned = !faults_.available(p, sim_time_s_, profile.mean_up_s,
                                     profile.mean_down_s);
    }
    batch.push_back(slot);
  }
  if (batch.empty()) return 0;

  pool().parallel_for(batch.size(), [&](std::size_t b) {
    train_one_dispatch(inflight_[batch[b]], step);
  });

  for (const std::size_t slot : batch) {
    const InFlight& f = inflight_[slot];
    arrivals_.push({sim_time_s_ + f.fb.duration_s, f.seq, slot});
  }
  return batch.size();
}

void FederationSession::train_one_dispatch(InFlight& f,
                                           std::size_t step) {
  const std::size_t p = f.fb.party_id;
  const Party& party = (*parties_)[p];
  PartyFeedback& fb = f.fb;

  if (faults_on_ && f.churned) {
    // Unreachable at dispatch: the failure notice is immediate.
    fb.responded = false;
    fb.duration_s = 0.0;
    return;
  }

  // Streams are keyed by the dispatch sequence, so a re-dispatched
  // party draws fresh noise; the assignment order above makes the
  // keys a pure function of the arrival history.
  common::Rng prng(
      common::mix_seed(config_.seed, kAsyncStreamSalt ^ f.seq, p));

  fb.duration_s =
      net::simulated_duration_s(
          party.profile().speed_factor, static_cast<double>(party.size()),
          static_cast<double>(config_.local.epochs),
          config_.compute_s_per_sample,
          static_cast<double>(model_bytes_),
          party.profile().network_mbps) *
      prng.uniform(0.85, 1.15);

  bool responds = true;
  if (config_.stragglers.mode == StragglerMode::kDropFraction &&
      prng.uniform() < config_.stragglers.rate) {
    responds = false;
  }
  // (kDeadline is rejected at construction: the bounded-staleness
  // cutoff subsumes it — a slow update is discounted and eventually
  // dropped, never waited on.)
  if (!faults_on_) {
    // Legacy per-pick reliability draws (kept byte-identical when no
    // fault plan is configured).
    if (prng.uniform() > party.profile().availability) responds = false;
    if (prng.uniform() < party.profile().fault_rate) responds = false;
  } else if (responds &&
             faults_.crashes(p, f.seq, party.profile().fault_rate)) {
    // Mid-training crash: full simulated duration, no update.
    responds = false;
  } else if (responds) {
    const net::LinkFault link = faults_.transfer(p, f.seq);
    if (link.failed) {
      // Uplink lost in transit: the dense bytes are charged as waste
      // when the failure notice arrives.
      responds = false;
      f.link_failed = true;
      f.wire_bytes = model_bytes_;
    } else {
      fb.duration_s *= link.slowdown;
    }
  }
  fb.responded = responds;
  if (!responds || party.size() == 0) return;

  f.trained = true;
  ml::Sequential local = model_;
  std::vector<double>& w = local.mutable_parameters();
  const auto& dataset = party.dataset();
  const std::size_t feature_dim =
      dataset.features.empty() ? 0 : dataset.features.front().size();
  std::vector<std::size_t> order(dataset.size());
  std::iota(order.begin(), order.end(), 0);
  const double local_lr = local_sgd_.learning_rate_for_round(step);
  const double mu = config_.local.prox_mu;

  ml::Tensor batch_x;
  std::vector<std::uint32_t> batch_labels;
  double batch_loss_sum = 0.0;
  double batch_loss_sq_sum = 0.0;
  std::size_t steps = 0;
  for (std::size_t epoch = 0; epoch < config_.local.epochs; ++epoch) {
    prng.shuffle(order);
    for (std::size_t start = 0; start < order.size();
         start += config_.local.batch_size) {
      const std::size_t stop =
          std::min(order.size(), start + config_.local.batch_size);
      batch_x.resize(stop - start, feature_dim);
      batch_labels.resize(stop - start);
      for (std::size_t i = start; i < stop; ++i) {
        const auto& src = dataset.features[order[i]];
        std::memcpy(batch_x.row(i - start), src.data(),
                    feature_dim * sizeof(double));
        batch_labels[i - start] = dataset.labels[order[i]];
      }
      const double loss = local.train_step_gradient(batch_x, batch_labels);
      batch_loss_sum += loss;
      batch_loss_sq_sum += loss * loss;
      ++steps;
      const std::vector<double>& grad = local.gradients();
      if (mu > 0.0) {
        for (std::size_t i = 0; i < dim_; ++i) {
          w[i] -= local_lr * (grad[i] + mu * (w[i] - global_params_[i]));
        }
      } else {
        for (std::size_t i = 0; i < dim_; ++i) {
          w[i] -= local_lr * grad[i];
        }
      }
    }
  }
  f.delta = arena_.lease(dim_);
  for (std::size_t i = 0; i < dim_; ++i) {
    f.delta[i] = w[i] - global_params_[i];
  }
  if (steps > 0) {
    fb.mean_loss = batch_loss_sum / static_cast<double>(steps);
    fb.loss_rms =
        std::sqrt(batch_loss_sq_sum / static_cast<double>(steps));
  }

  // Wire codec (client side): per-party error feedback, exactly the
  // sync contract — a party is in flight at most once, so only this
  // worker touches ef_residuals_[p].
  if (codec_on_) {
    thread_local net::EncodedUpdate enc;
    thread_local net::CodecWorkspace ws;
    auto& residual = ef_residuals_[p];
    std::vector<double> pre = arena_.lease(dim_);
    if (residual.empty()) {
      std::memcpy(pre.data(), f.delta.data(), dim_ * sizeof(double));
    } else {
      for (std::size_t i = 0; i < dim_; ++i) {
        pre[i] = f.delta[i] + residual[i];
      }
    }
    codec_.encode(pre, prng, enc, ws);
    f.wire_bytes = enc.wire_bytes();
    codec_.decode(enc, f.delta);
    if (residual.empty()) residual.assign(dim_, 0.0);
    for (std::size_t i = 0; i < dim_; ++i) {
      residual[i] = pre[i] - f.delta[i];
    }
    arena_.release(std::move(pre));
  } else {
    f.wire_bytes = model_bytes_;
  }
  if (dp_on_) {
    privacy::clip_to_norm(f.delta, config_.privacy.dp.clip_norm);
  }
}

const RoundRecord& FederationSession::async_step() {
  const std::size_t step = next_round_;
  for (RoundObserver* obs : observers_) {
    obs->on_round_begin(step, *selector_);
  }

  const double step_start_s = sim_time_s_;
  std::uint64_t t = steady_now_ns();
  const std::size_t dispatched = refill_inflight(step);
  emit_phase(step, SessionPhase::kTrainCohort, t);

  if (arrivals_.empty()) {
    // Nothing in flight and nothing dispatchable: the session cannot
    // make progress (degenerate selector). Record an empty step and
    // stop.
    exhausted_ = true;
    RoundRecord record;
    record.round = step;
    t = steady_now_ns();
    evaluate_round(step, record);
    emit_phase(step, SessionPhase::kEval, t);
    history_.push_back(std::move(record));
    const RoundRecord& stored = history_.back();
    for (RoundObserver* obs : observers_) {
      obs->on_round_end(step, stored);
    }
    ++next_round_;
    return stored;
  }

  t = steady_now_ns();
  aggregator_.begin_round(dim_, buffer_k_);
  feedback_.clear();
  RoundRecord record;
  record.round = step;
  std::uint64_t up_bytes = 0;
  std::size_t arrivals_seen = 0;
  std::size_t folded = 0;
  std::size_t redispatched = 0;  ///< fault-plan retries this step
  double loss_sum = 0.0;
  double weight_sum = 0.0;  ///< folded fold-weights (DP sensitivity)
  double weight_max = 0.0;
  // Folded slots stay occupied until the server step: the aggregator
  // borrows their delta buffers until finalize().
  std::vector<std::pair<std::size_t, std::size_t>> folded_slots;

  while (folded < buffer_k_ && !arrivals_.empty()) {
    const net::ArrivalEvent ev = arrivals_.pop();
    sim_time_s_ = ev.time_s;
    InFlight& f = inflight_[ev.slot];
    const std::size_t staleness = server_version_ - f.dispatch_version;
    ++arrivals_seen;

    ArrivalRecord arec;
    arec.party_id = f.fb.party_id;
    arec.seq = f.seq;
    arec.time_s = ev.time_s;
    arec.staleness = staleness;
    if (!f.trained) {
      arec.outcome = ArrivalOutcome::kFailed;
    } else if (staleness > config_.async.max_staleness) {
      arec.outcome = ArrivalOutcome::kDroppedStale;
    } else {
      arec.outcome = ArrivalOutcome::kFolded;
      const double base =
          dp_on_ ? 1.0
                 : (f.fb.num_samples > 0
                        ? static_cast<double>(f.fb.num_samples)
                        : 1.0);
      arec.weight = base * staleness_discount(staleness);
    }
    for (RoundObserver* obs : observers_) {
      obs->on_arrival(step, arec);
    }

    const std::size_t pid = f.fb.party_id;
    switch (arec.outcome) {
      case ArrivalOutcome::kFolded:
        up_bytes += f.wire_bytes;
        loss_sum += f.fb.mean_loss;
        weight_sum += arec.weight;
        weight_max = std::max(weight_max, arec.weight);
        aggregator_.submit(folded, arec.weight, f.delta);
        folded_slots.emplace_back(ev.slot, feedback_.size());
        feedback_.push_back(f.fb);  // delta attached after finalize
        ++folded;
        break;
      case ArrivalOutcome::kDroppedStale:
        // The bytes transited even though the fold discards them;
        // selectors see a non-responder (the server learned nothing).
        up_bytes += f.wire_bytes;
        ++record.dropped_stale;
        f.fb.responded = false;
        arena_.release(std::move(f.delta));
        feedback_.push_back(std::move(f.fb));
        party_in_flight_[pid] = 0;
        free_slots_.push_back(ev.slot);
        break;
      case ArrivalOutcome::kFailed:
        // The failure notice reaches the selector either way; a lost
        // uplink additionally charges its wasted bytes.
        up_bytes += f.wire_bytes;
        feedback_.push_back(f.fb);
        if (faults_on_ && f.attempt < config_.faults.max_retries) {
          // Retry the slot in place: a fresh dispatch of the same
          // party against the CURRENT server state, scheduled after an
          // exponential backoff. Runs inline on the stepping thread —
          // the result only depends on the new seq-keyed stream, so it
          // is bit-identical to a worker execution.
          ++record.crashed;
          ++record.retried;
          ++redispatched;
          const std::size_t attempt = ++f.attempt;
          const double backoff_s = config_.faults.backoff_s(attempt - 1);
          RetryRecord retry;
          retry.party_id = pid;
          retry.attempt = attempt;
          retry.backoff_s = backoff_s;
          retry.time_s = sim_time_s_;
          for (RoundObserver* obs : observers_) {
            obs->on_retry(step, retry);
          }
          f.fb = PartyFeedback{};
          f.fb.party_id = pid;
          f.fb.num_samples = (*parties_)[pid].size();
          f.wire_bytes = 0;
          f.trained = false;
          f.link_failed = false;
          f.seq = dispatch_seq_++;
          f.dispatch_version = server_version_;
          const double redispatch_s = sim_time_s_ + backoff_s;
          f.churned = false;
          if (config_.faults.churn > 0.0) {
            // Re-check the churn trace at the retry time — backoff is
            // also how a churned party waits out its downtime.
            const PartyProfile& profile = (*parties_)[pid].profile();
            f.churned = !faults_.available(pid, redispatch_s,
                                           profile.mean_up_s,
                                           profile.mean_down_s);
          }
          train_one_dispatch(f, step);
          arrivals_.push(
              {redispatch_s + f.fb.duration_s, f.seq, ev.slot});
        } else {
          if (faults_on_) ++record.crashed;
          party_in_flight_[pid] = 0;
          free_slots_.push_back(ev.slot);
        }
        break;
    }
  }

  // Partial flush (queue drained below buffer_k): resolve the tail
  // slots so finalize() can drain.
  for (std::size_t k = folded; k < buffer_k_; ++k) {
    aggregator_.skip(k);
  }
  std::vector<double>& aggregate = aggregator_.finalize();
  emit_phase(step, SessionPhase::kFold, t);

  record.selected = arrivals_seen;
  record.responded = folded;
  record.round_time_s = sim_time_s_ - step_start_s;
  record.upload_bytes = up_bytes;
  // Async downlink: every dispatch ships the full model (clients may
  // rejoin at any version, so there is no shared broadcast delta);
  // fault-plan retries re-ship it.
  record.download_bytes = model_bytes_ * (dispatched + redispatched);
  record.mean_train_loss =
      folded > 0 ? loss_sum / static_cast<double>(folded) : 0.0;

  t = steady_now_ns();
  if (aggregator_.contributions() > 0) {
    if (dp_on_) {
      // Weighted-mean sensitivity: the fold weights are the staleness
      // discounts (base weight is forced to 1.0 under DP, as in sync),
      // so one clipped update moves the aggregate by at most
      // clip_norm * w_i / sum(w). Calibrate sigma on the LARGEST folded
      // weight — a fresh update among stale ones has influence above
      // clip/K, and the equal-weight sync formula would under-noise it.
      // With all weights equal this reduces to clip_norm / K exactly,
      // and sigma / sensitivity stays noise_multiplier, so the
      // accountant's per-step z is unchanged.
      const double sigma =
          config_.privacy.dp.noise_multiplier *
          config_.privacy.dp.clip_norm * weight_max / weight_sum;
      privacy::add_gaussian_noise(aggregate, sigma, rng_);
      accountant_.step(config_.privacy.dp.noise_multiplier);
    }
    server_.apply(global_params_, aggregate);
    model_.set_parameters(global_params_);
    // Staleness is measured in APPLIED steps: an empty flush does not
    // age in-flight updates.
    ++server_version_;
  }
  emit_phase(step, SessionPhase::kServerStep, t);

  // Hand the folded deltas to their feedback entries now that the
  // aggregator released its borrow.
  for (const auto& [slot, idx] : folded_slots) {
    feedback_[idx].delta = std::move(inflight_[slot].delta);
  }

  t = steady_now_ns();
  evaluate_round(step, record);
  emit_phase(step, SessionPhase::kEval, t);
  history_.push_back(std::move(record));
  const RoundRecord& stored = history_.back();

  for (const PartyFeedback& fb : feedback_) {
    for (RoundObserver* obs : observers_) {
      obs->on_party_feedback(step, fb);
    }
  }
  for (RoundObserver* obs : observers_) {
    obs->on_round_end(step, stored);
  }

  selector_->report_round(step, feedback_);
  for (PartyFeedback& fb : feedback_) {
    arena_.release(std::move(fb.delta));
  }
  for (const auto& [slot, idx] : folded_slots) {
    party_in_flight_[inflight_[slot].fb.party_id] = 0;
    free_slots_.push_back(slot);
  }

  ++next_round_;
  return stored;
}

FlJobResult FederationSession::result() const {
  FlJobResult result;
  if (inert_) return result;
  result.history = history_;
  result.final_parameters = global_params_;
  result.peak_accuracy = accounting_.peak_accuracy();
  result.total_bytes = accounting_.total_bytes();
  result.download_bytes = accounting_.download_bytes();
  result.upload_bytes = accounting_.upload_bytes();
  result.fairness.jain_index =
      common::jain_index(accounting_.selection_counts());
  result.coverage_round = accounting_.coverage_round();
  result.rounds_to_target = accounting_.rounds_to_target();
  result.time_to_target_s = accounting_.time_to_target_s();
  result.total_time_s = accounting_.total_time_s();
  if (dp_on_) {
    result.epsilon_spent = accountant_.epsilon(config_.privacy.dp.delta);
  }
  return result;
}

}  // namespace flips::fl
