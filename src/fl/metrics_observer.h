// Telemetry observers riding the fl/observer.h seam.
//
// MetricsObserver bridges one session's round events into the
// process-wide obs plane: per-phase duration histograms, arrival /
// party-outcome counters, byte counters, and accuracy / simulated-time
// gauges — all labeled tenant="<label>" so multi-tenant front ends
// (serve::Server attaches one per opened session) expose per-tenant
// families from one registry. It also emits one span per phase plus a
// parent span per round through obs::Tracer and drains the trace ring
// at round end (on the stepping thread, where draining is allowed to
// be slow — record() on the hot path never is).
//
// All instruments are registered at construction; every callback is
// allocation-free relaxed-atomic work, preserving the session's
// zero-steady-state-allocation contract.
//
// JsonlRoundObserver is the `flips_run --metrics-out` sink: one JSON
// line per completed round (accuracy, bytes, staleness drops, and the
// per-phase durations captured from on_phase).
#pragma once

#include <array>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>

#include "fl/observer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace flips::fl {

class MetricsObserver final : public RoundObserver {
 public:
  /// `tenant` labels every family this observer writes; defaults to
  /// the process-wide registry/tracer singletons.
  explicit MetricsObserver(std::string tenant,
                           obs::Registry* registry = &obs::Registry::global(),
                           obs::Tracer* tracer = &obs::Tracer::global());

  void on_round_begin(std::size_t round,
                      ParticipantSelector& selector) override;
  void on_party_feedback(std::size_t round,
                         const PartyFeedback& feedback) override;
  void on_arrival(std::size_t round, const ArrivalRecord& arrival) override;
  void on_phase(std::size_t round, const PhaseRecord& record) override;
  void on_retry(std::size_t round, const RetryRecord& record) override;
  void on_round_end(std::size_t round, const RoundRecord& record) override;

 private:
  std::string tenant_;
  obs::Tracer* tracer_;

  obs::Counter* rounds_;
  obs::Counter* upload_bytes_;
  obs::Counter* download_bytes_;
  obs::Counter* dropped_stale_;
  obs::Gauge* accuracy_;
  obs::Gauge* sim_time_s_;
  obs::Gauge* trace_dropped_;
  std::array<obs::Histogram*, kNumSessionPhases> phase_seconds_{};
  std::array<obs::Counter*, 2> parties_{};   ///< [failed, responded]
  std::array<obs::Counter*, 3> arrivals_{};  ///< by ArrivalOutcome
  obs::Histogram* staleness_;
  /// Fault plane: flips_faults_total{event=crashed|retried|backfilled|
  /// quorum_skipped} plus the retry-backoff latency histogram.
  std::array<obs::Counter*, 4> faults_{};
  obs::Histogram* retry_backoff_s_;

  std::uint64_t round_span_id_ = 0;
  std::uint64_t round_start_ns_ = 0;
};

/// `flips_run --metrics-out` sink: buffers each round's phase
/// durations and appends one JSON object per round to a shared file.
/// One instance per session/run; instances share the file through
/// SharedFile (writes are line-atomic under its mutex).
class JsonlRoundObserver final : public RoundObserver {
 public:
  struct SharedFile {
    explicit SharedFile(const std::string& path);
    ~SharedFile();
    std::FILE* file;
    std::mutex mu;
  };

  JsonlRoundObserver(std::shared_ptr<SharedFile> out, std::size_t run);

  void on_phase(std::size_t round, const PhaseRecord& record) override;
  void on_round_end(std::size_t round, const RoundRecord& record) override;

 private:
  std::shared_ptr<SharedFile> out_;
  std::size_t run_;
  std::array<double, kNumSessionPhases> phase_s_{};
};

}  // namespace flips::fl
