// Server-side aggregation and adaptive optimizers (Reddi et al.,
// "Adaptive Federated Optimization"): FedAvg, FedAdagrad, FedAdam,
// FedYogi. The aggregated client delta acts as a pseudo-gradient.
#pragma once

#include <cstddef>
#include <vector>

namespace flips::fl {

enum class ServerOpt {
  kFedAvg,
  kFedAdagrad,
  kFedAdam,
  kFedYogi,
};

const char* to_string(ServerOpt opt);

struct ServerOptConfig {
  ServerOpt optimizer = ServerOpt::kFedAvg;
  double learning_rate = 1.0;  ///< 1.0 for FedAvg; ~0.05 for adaptive
  double beta1 = 0.9;
  double beta2 = 0.99;
  double tau = 1e-3;           ///< adaptivity floor
};

struct LocalUpdate {
  std::size_t num_samples = 0;
  std::vector<double> delta;
};

/// Sample-count-weighted average of client deltas (the FedAvg rule).
/// Updates with zero samples weigh 1 so pathological inputs still
/// aggregate. Returns empty when `updates` is empty; throws
/// std::invalid_argument when updates disagree on dimension. This is
/// the reference fold the streaming plane (fl/aggregator.h) is
/// bit-compatible with; the job loop uses the streaming plane.
[[nodiscard]] std::vector<double> aggregate_updates(
    const std::vector<LocalUpdate>& updates);

class ServerOptimizer {
 public:
  ServerOptimizer(const ServerOptConfig& config, std::size_t dim);

  /// One server step: moves `params` along `pseudo_gradient` (the
  /// aggregated delta, already pointing downhill — no sign flip).
  void apply(std::vector<double>& params,
             const std::vector<double>& pseudo_gradient);

  const ServerOptConfig& config() const { return config_; }

 private:
  ServerOptConfig config_;
  std::vector<double> momentum_;
  std::vector<double> second_moment_;
  std::size_t step_ = 0;
};

}  // namespace flips::fl
