#include "fl/job.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "common/stats.h"
#include "privacy/dp.h"

namespace flips::fl {

const char* to_string(ClientAlgo algo) {
  switch (algo) {
    case ClientAlgo::kSgd:
      return "sgd";
    case ClientAlgo::kScaffold:
      return "scaffold";
    case ClientAlgo::kFedDyn:
      return "feddyn";
  }
  return "unknown";
}

namespace {

struct EvalResult {
  double balanced_accuracy = 0.0;
  std::vector<double> per_label_accuracy;
};

EvalResult evaluate(ml::Sequential& model, const data::Dataset& test) {
  EvalResult eval;
  if (test.size() == 0) return eval;
  eval.per_label_accuracy.assign(test.num_classes, 0.0);
  std::vector<double> totals(test.num_classes, 0.0);

  const ml::Matrix logits = model.forward(test.features);
  for (std::size_t i = 0; i < test.size(); ++i) {
    const auto& row = logits[i];
    std::size_t pred = 0;
    for (std::size_t c = 1; c < row.size(); ++c) {
      if (row[c] > row[pred]) pred = c;
    }
    const std::uint32_t truth = test.labels[i];
    totals[truth] += 1.0;
    if (pred == truth) eval.per_label_accuracy[truth] += 1.0;
  }
  std::size_t live_classes = 0;
  for (std::size_t c = 0; c < test.num_classes; ++c) {
    if (totals[c] > 0.0) {
      eval.per_label_accuracy[c] /= totals[c];
      eval.balanced_accuracy += eval.per_label_accuracy[c];
      ++live_classes;
    }
  }
  if (live_classes > 0) {
    eval.balanced_accuracy /= static_cast<double>(live_classes);
  }
  return eval;
}

struct LocalResult {
  std::vector<double> delta;
  double mean_loss = 0.0;
  double loss_rms = 0.0;
  std::size_t steps = 0;
};

}  // namespace

FlJob::FlJob(FlJobConfig config, const std::vector<Party>& parties,
             data::Dataset global_test, ml::Sequential model,
             std::unique_ptr<ParticipantSelector> selector)
    : config_(std::move(config)), parties_(parties),
      global_test_(std::move(global_test)), model_(std::move(model)),
      selector_(std::move(selector)) {}

FlJobResult FlJob::run() {
  FlJobResult result;
  const std::size_t n = parties_.size();
  if (n == 0 || config_.rounds == 0) return result;

  common::Rng rng(config_.seed);
  std::vector<double> global_params = model_.parameters();
  const std::size_t dim = global_params.size();
  const auto model_bytes = static_cast<std::uint64_t>(dim * sizeof(double));

  ServerOptimizer server(config_.server, dim);
  ml::SgdOptimizer local_sgd(config_.local.sgd);
  privacy::RdpAccountant accountant;

  // Drift-correction state (lazily touched per party).
  std::vector<std::vector<double>> scaffold_ci;
  std::vector<double> scaffold_c;
  std::vector<std::vector<double>> feddyn_hi;
  if (config_.local.algo == ClientAlgo::kScaffold) {
    scaffold_ci.assign(n, {});
    scaffold_c.assign(dim, 0.0);
  } else if (config_.local.algo == ClientAlgo::kFedDyn) {
    feddyn_hi.assign(n, {});
  }

  std::vector<std::size_t> selection_counts(n, 0);
  std::size_t covered = 0;

  const bool dp_on = config_.privacy.mechanism == PrivacyMechanism::kDp &&
                     config_.privacy.dp.noise_multiplier > 0.0;
  const bool masking_on =
      config_.privacy.mechanism == PrivacyMechanism::kMasking;

  for (std::size_t round = 1; round <= config_.rounds; ++round) {
    std::vector<std::size_t> cohort =
        selector_->select(round, config_.parties_per_round);
    // Defensive: clamp ids and dedupe (selectors should already comply).
    std::unordered_set<std::size_t> seen;
    std::vector<std::size_t> valid;
    for (const std::size_t p : cohort) {
      if (p < n && seen.insert(p).second) valid.push_back(p);
    }
    cohort = std::move(valid);

    const double local_lr = local_sgd.learning_rate_for_round(round);

    // SCAFFOLD: every party in the cohort must train against the SAME
    // round-start control variate; updates to c are applied after the
    // round so results do not depend on the selector's cohort order.
    std::vector<double> scaffold_c_round;
    if (config_.local.algo == ClientAlgo::kScaffold) {
      scaffold_c_round = scaffold_c;
    }

    std::vector<PartyFeedback> feedback;
    feedback.reserve(cohort.size());
    std::vector<LocalUpdate> updates;
    double round_time = 0.0;
    double loss_sum = 0.0;
    std::size_t responded = 0;

    for (const std::size_t p : cohort) {
      const Party& party = parties_[p];
      if (selection_counts[p]++ == 0) ++covered;

      PartyFeedback fb;
      fb.party_id = p;
      fb.num_samples = party.size();

      const double compute_s = party.profile().speed_factor *
                               static_cast<double>(party.size()) *
                               static_cast<double>(config_.local.epochs) *
                               config_.compute_s_per_sample;
      const double network_s =
          2.0 * static_cast<double>(model_bytes) /
          (party.profile().network_mbps * 125000.0);
      fb.duration_s = (compute_s + network_s) * rng.uniform(0.85, 1.15);

      bool responds = true;
      if (config_.stragglers.mode == StragglerMode::kDropFraction) {
        if (rng.uniform() < config_.stragglers.rate) responds = false;
      } else if (config_.stragglers.deadline_s > 0.0 &&
                 fb.duration_s > config_.stragglers.deadline_s) {
        responds = false;
      }
      if (rng.uniform() > party.profile().availability) responds = false;
      if (rng.uniform() < party.profile().fault_rate) responds = false;
      fb.responded = responds;

      if (responds && party.size() > 0) {
        // ---- Local training (only responders pay the compute). ----
        ml::Sequential local = model_;
        std::vector<double> w = global_params;
        const auto& dataset = party.dataset();
        std::vector<std::size_t> order(dataset.size());
        std::iota(order.begin(), order.end(), 0);

        double batch_loss_sum = 0.0;
        double batch_loss_sq_sum = 0.0;
        std::size_t steps = 0;
        for (std::size_t epoch = 0; epoch < config_.local.epochs; ++epoch) {
          rng.shuffle(order);
          for (std::size_t start = 0; start < order.size();
               start += config_.local.batch_size) {
            const std::size_t stop = std::min(
                order.size(), start + config_.local.batch_size);
            ml::Matrix features;
            std::vector<std::uint32_t> labels;
            features.reserve(stop - start);
            labels.reserve(stop - start);
            for (std::size_t i = start; i < stop; ++i) {
              features.push_back(dataset.features[order[i]]);
              labels.push_back(dataset.labels[order[i]]);
            }
            const double loss = local.train_step_gradient(features, labels);
            batch_loss_sum += loss;
            batch_loss_sq_sum += loss * loss;
            ++steps;

            std::vector<double> grad = local.gradients();
            if (config_.local.prox_mu > 0.0) {
              for (std::size_t i = 0; i < dim; ++i) {
                grad[i] += config_.local.prox_mu * (w[i] - global_params[i]);
              }
            }
            if (config_.local.algo == ClientAlgo::kScaffold) {
              const auto& ci = scaffold_ci[p];
              for (std::size_t i = 0; i < dim; ++i) {
                grad[i] += scaffold_c_round[i] - (ci.empty() ? 0.0 : ci[i]);
              }
            } else if (config_.local.algo == ClientAlgo::kFedDyn) {
              const auto& hi = feddyn_hi[p];
              for (std::size_t i = 0; i < dim; ++i) {
                grad[i] += config_.local.feddyn_alpha *
                               (w[i] - global_params[i]) -
                           (hi.empty() ? 0.0 : hi[i]);
              }
            }
            for (std::size_t i = 0; i < dim; ++i) {
              w[i] -= local_lr * grad[i];
            }
            local.set_parameters(w);
          }
        }

        fb.delta.resize(dim);
        for (std::size_t i = 0; i < dim; ++i) {
          fb.delta[i] = w[i] - global_params[i];
        }
        if (steps > 0) {
          fb.mean_loss = batch_loss_sum / static_cast<double>(steps);
          fb.loss_rms =
              std::sqrt(batch_loss_sq_sum / static_cast<double>(steps));
        }
        loss_sum += fb.mean_loss;
        ++responded;

        // ---- Post-training client-algo state updates. ----
        if (config_.local.algo == ClientAlgo::kScaffold && steps > 0) {
          auto& ci = scaffold_ci[p];
          if (ci.empty()) ci.assign(dim, 0.0);
          const double inv = 1.0 / (static_cast<double>(steps) * local_lr);
          for (std::size_t i = 0; i < dim; ++i) {
            const double ci_new =
                ci[i] - scaffold_c_round[i] - fb.delta[i] * inv;
            // Server-side c absorbs the per-client change scaled by 1/N
            // (Karimireddy et al. Eq. 5); applied to scaffold_c, which
            // nobody reads until the next round.
            scaffold_c[i] += (ci_new - ci[i]) *
                             (1.0 / static_cast<double>(n));
            ci[i] = ci_new;
          }
        } else if (config_.local.algo == ClientAlgo::kFedDyn) {
          auto& hi = feddyn_hi[p];
          if (hi.empty()) hi.assign(dim, 0.0);
          for (std::size_t i = 0; i < dim; ++i) {
            hi[i] -= config_.local.feddyn_alpha * fb.delta[i];
          }
        }

        LocalUpdate update;
        update.num_samples = party.size();
        update.delta = fb.delta;
        if (dp_on) {
          privacy::clip_to_norm(update.delta, config_.privacy.dp.clip_norm);
          // DP-FedAvg aggregates clipped updates with EQUAL weights:
          // under sample-count weighting one large party could dominate
          // the mean with weight ~1, and the per-round sensitivity
          // clip_norm / cohort (which the noise sigma below assumes)
          // would be violated.
          update.num_samples = 1;
        }
        updates.push_back(std::move(update));
      }

      round_time = std::max(round_time, fb.duration_s);
      feedback.push_back(std::move(fb));
    }

    if (config_.stragglers.mode == StragglerMode::kDeadline &&
        config_.stragglers.deadline_s > 0.0) {
      round_time = std::min(round_time, config_.stragglers.deadline_s);
    }
    result.total_time_s += round_time;

    // ---- Communication accounting. ----
    result.total_bytes += model_bytes * cohort.size();       // model down
    result.total_bytes += model_bytes * responded;           // updates up
    if (masking_on && cohort.size() > 1) {
      result.total_bytes +=
          static_cast<std::uint64_t>(32) * cohort.size() *
          (cohort.size() - 1);  // pairwise key shares
    }

    // ---- Aggregate + server step. ----
    if (!updates.empty()) {
      std::vector<double> aggregate = aggregate_updates(updates);
      if (dp_on) {
        const double sigma = config_.privacy.dp.noise_multiplier *
                             config_.privacy.dp.clip_norm /
                             static_cast<double>(updates.size());
        privacy::add_gaussian_noise(aggregate, sigma, rng);
        accountant.step(config_.privacy.dp.noise_multiplier);
      }
      server.apply(global_params, aggregate);
      model_.set_parameters(global_params);
    }

    // ---- Evaluation (every eval_every rounds; carried forward). ----
    RoundRecord record;
    record.round = round;
    record.selected = cohort.size();
    record.responded = responded;
    record.round_time_s = round_time;
    record.mean_train_loss =
        responded > 0 ? loss_sum / static_cast<double>(responded) : 0.0;
    const bool eval_now = round == 1 || round == config_.rounds ||
                          config_.eval_every == 0 ||
                          round % config_.eval_every == 0;
    if (eval_now) {
      const EvalResult eval = evaluate(model_, global_test_);
      record.balanced_accuracy = eval.balanced_accuracy;
      record.per_label_accuracy = eval.per_label_accuracy;
    } else if (!result.history.empty()) {
      record.balanced_accuracy = result.history.back().balanced_accuracy;
      record.per_label_accuracy = result.history.back().per_label_accuracy;
    }
    result.peak_accuracy =
        std::max(result.peak_accuracy, record.balanced_accuracy);
    if (!result.rounds_to_target && config_.target_accuracy > 0.0 &&
        record.balanced_accuracy >= config_.target_accuracy) {
      result.rounds_to_target = round;
      result.time_to_target_s = result.total_time_s;
    }
    result.history.push_back(std::move(record));

    if (!result.coverage_round && covered == n) {
      result.coverage_round = round;
    }

    selector_->report_round(round, feedback);
  }

  result.final_parameters = std::move(global_params);
  result.fairness.jain_index = common::jain_index(selection_counts);
  if (dp_on) {
    result.epsilon_spent = accountant.epsilon(config_.privacy.dp.delta);
  }
  return result;
}

}  // namespace flips::fl
