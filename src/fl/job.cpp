#include "fl/job.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <mutex>
#include <numeric>
#include <unordered_set>

#include "common/stats.h"
#include "common/thread_pool.h"
#include "fl/aggregator.h"
#include "net/codec.h"
#include "privacy/dp.h"

namespace flips::fl {

const char* to_string(ClientAlgo algo) {
  switch (algo) {
    case ClientAlgo::kSgd:
      return "sgd";
    case ClientAlgo::kScaffold:
      return "scaffold";
    case ClientAlgo::kFedDyn:
      return "feddyn";
  }
  return "unknown";
}

namespace {

struct EvalResult {
  double balanced_accuracy = 0.0;
  std::vector<double> per_label_accuracy;
};

/// Balanced accuracy over the test set. Predictions are computed in
/// parallel chunks (each chunk forwards through its own clone of the
/// model, since layers cache activations) into per-row slots; the
/// per-class tally runs on one thread, so the result does not depend
/// on the chunking.
EvalResult evaluate(const ml::Sequential& model, const ml::Tensor& features,
                    const std::vector<std::uint32_t>& labels,
                    std::size_t num_classes, common::ThreadPool& pool) {
  EvalResult eval;
  const std::size_t n = features.rows();
  if (n == 0) return eval;
  eval.per_label_accuracy.assign(num_classes, 0.0);
  std::vector<double> totals(num_classes, 0.0);

  std::vector<std::uint32_t> preds(n, 0);
  // Fixed chunk granularity, NOT pool.size()-derived: the ML kernels
  // build with -ffast-math, where a row's position inside its chunk
  // decides which SIMD-body/remainder code path computes it. Constant
  // boundaries keep every row's arithmetic identical for every thread
  // count; the pool merely distributes the chunks.
  constexpr std::size_t kEvalChunkRows = 64;
  const std::size_t num_chunks = (n + kEvalChunkRows - 1) / kEvalChunkRows;
  // Scratch models are recycled through a small checkout stack so the
  // number of deep clones is bounded by the worker count, not the
  // chunk count (a clone exists only to give each in-flight chunk
  // private activation buffers).
  std::vector<std::unique_ptr<ml::Sequential>> scratch_models;
  std::mutex scratch_mutex;
  pool.parallel_for(num_chunks, [&](std::size_t c) {
    const std::size_t begin = c * kEvalChunkRows;
    const std::size_t end = std::min(n, begin + kEvalChunkRows);
    if (begin >= end) return;
    std::unique_ptr<ml::Sequential> local;
    {
      std::lock_guard<std::mutex> lock(scratch_mutex);
      if (!scratch_models.empty()) {
        local = std::move(scratch_models.back());
        scratch_models.pop_back();
      }
    }
    if (!local) local = std::make_unique<ml::Sequential>(model);
    ml::Tensor slice(end - begin, features.cols());
    std::memcpy(slice.data(), features.row(begin),
                slice.size() * sizeof(double));
    const ml::Tensor& logits = local->forward(slice);
    for (std::size_t i = begin; i < end; ++i) {
      const double* row = logits.row(i - begin);
      std::size_t best = 0;
      for (std::size_t k = 1; k < logits.cols(); ++k) {
        if (row[k] > row[best]) best = k;
      }
      preds[i] = static_cast<std::uint32_t>(best);
    }
    std::lock_guard<std::mutex> lock(scratch_mutex);
    scratch_models.push_back(std::move(local));
  });

  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t truth = labels[i];
    totals[truth] += 1.0;
    if (preds[i] == truth) eval.per_label_accuracy[truth] += 1.0;
  }
  std::size_t live_classes = 0;
  for (std::size_t c = 0; c < num_classes; ++c) {
    if (totals[c] > 0.0) {
      eval.per_label_accuracy[c] /= totals[c];
      eval.balanced_accuracy += eval.per_label_accuracy[c];
      ++live_classes;
    }
  }
  if (live_classes > 0) {
    eval.balanced_accuracy /= static_cast<double>(live_classes);
  }
  return eval;
}

/// Everything a party produces inside the parallel phase. Workers
/// write only their own slot; the sequential phase folds the slots
/// into shared state in cohort order.
struct PartyOutcome {
  PartyFeedback fb;
  bool trained = false;
  std::vector<double> scaffold_ci_new;  ///< SCAFFOLD only
  /// Arena-leased wire update (decoded under a lossy codec, clipped
  /// under DP) — what the aggregator folds. Moved into fb.delta after
  /// the fold so selectors can read it, then returned to the arena.
  std::vector<double> delta;
  std::uint64_t wire_bytes = 0;  ///< encoded uplink size
};

}  // namespace

FlJob::FlJob(FlJobConfig config, const std::vector<Party>& parties,
             data::Dataset global_test, ml::Sequential model,
             std::unique_ptr<ParticipantSelector> selector)
    : config_(std::move(config)), parties_(parties),
      global_test_(std::move(global_test)), model_(std::move(model)),
      selector_(std::move(selector)) {}

FlJobResult FlJob::run() {
  FlJobResult result;
  const std::size_t n = parties_.size();
  if (n == 0 || config_.rounds == 0) return result;

  common::ThreadPool pool(config_.threads);
  // Job-level RNG: after the per-party streams split off, this only
  // feeds the DP noise, so its draw sequence (and thus the noise) is
  // independent of cohort outcomes and thread count.
  common::Rng rng(config_.seed);
  std::vector<double> global_params = model_.parameters();
  const std::size_t dim = global_params.size();
  const auto model_bytes = static_cast<std::uint64_t>(dim * sizeof(double));

  const ml::Tensor test_features =
      ml::Tensor::from_rows(global_test_.features);

  ServerOptimizer server(config_.server, dim);
  ml::SgdOptimizer local_sgd(config_.local.sgd);
  privacy::RdpAccountant accountant;

  // Drift-correction state (lazily touched per party).
  std::vector<std::vector<double>> scaffold_ci;
  std::vector<double> scaffold_c;
  std::vector<std::vector<double>> feddyn_hi;
  if (config_.local.algo == ClientAlgo::kScaffold) {
    scaffold_ci.assign(n, {});
    scaffold_c.assign(dim, 0.0);
  } else if (config_.local.algo == ClientAlgo::kFedDyn) {
    feddyn_hi.assign(n, {});
  }

  std::vector<std::size_t> selection_counts(n, 0);
  std::size_t covered = 0;

  const bool dp_on = config_.privacy.mechanism == PrivacyMechanism::kDp &&
                     config_.privacy.dp.noise_multiplier > 0.0;
  const bool masking_on =
      config_.privacy.mechanism == PrivacyMechanism::kMasking;

  // ---- Aggregation plane + wire codec state. The arena recycles
  // delta buffers across rounds (zero steady-state allocation); the
  // streaming aggregator folds updates in cohort order while later
  // parties are still training.
  BufferArena arena;
  StreamingAggregator aggregator;
  const bool codec_on = config_.codec.codec != net::Codec::kDense64;
  const net::UpdateCodec codec(config_.codec);
  // Client-side error-feedback residuals (lossy codecs): what the wire
  // dropped last round is re-added before the next encode.
  std::vector<std::vector<double>> ef_residuals;
  if (codec_on) ef_residuals.assign(n, {});
  // Server-side residual for the compressed broadcast delta, plus a
  // dedicated RNG for its stochastic rounding (the job RNG must keep
  // feeding only DP noise).
  std::vector<double> server_residual;
  if (codec_on) server_residual.assign(dim, 0.0);
  common::Rng broadcast_rng(
      common::mix_seed(config_.seed, 0, 0xB0ADCA57ull));
  net::EncodedUpdate broadcast_enc;
  net::CodecWorkspace broadcast_ws;
  std::vector<double> broadcast_wire;

  // Hoisted per-round containers: capacity survives across rounds.
  std::vector<PartyOutcome> outcomes;
  std::vector<PartyFeedback> feedback;

  for (std::size_t round = 1; round <= config_.rounds; ++round) {
    if (config_.pre_round_hook) config_.pre_round_hook(round, *selector_);
    std::vector<std::size_t> cohort =
        selector_->select(round, config_.parties_per_round);
    // Defensive: clamp ids and dedupe (selectors should already comply).
    std::unordered_set<std::size_t> seen;
    std::vector<std::size_t> valid;
    for (const std::size_t p : cohort) {
      if (p < n && seen.insert(p).second) valid.push_back(p);
    }
    cohort = std::move(valid);

    const double local_lr = local_sgd.learning_rate_for_round(round);

    // SCAFFOLD: every party in the cohort must train against the SAME
    // round-start control variate; updates to c are folded in after
    // the parallel phase so results do not depend on cohort order or
    // scheduling.
    std::vector<double> scaffold_c_round;
    if (config_.local.algo == ClientAlgo::kScaffold) {
      scaffold_c_round = scaffold_c;
    }

    // ---- Parallel phase: each selected party simulates its round
    // (straggler draws + local training) into its own outcome slot and
    // submits its wire update to the streaming aggregator, which folds
    // complete cohort-order blocks while later parties still train.
    // Shared state (model_, global_params, round-start control
    // variates) is read-only here.
    aggregator.begin_round(dim, cohort.size());
    outcomes.clear();
    outcomes.resize(cohort.size());
    auto simulate_party = [&](std::size_t k) {
      const std::size_t p = cohort[k];
      const Party& party = parties_[p];
      PartyOutcome& out = outcomes[k];
      PartyFeedback& fb = out.fb;
      fb.party_id = p;
      fb.num_samples = party.size();

      common::Rng prng(common::mix_seed(config_.seed, round, p));

      const double compute_s = party.profile().speed_factor *
                               static_cast<double>(party.size()) *
                               static_cast<double>(config_.local.epochs) *
                               config_.compute_s_per_sample;
      const double network_s =
          2.0 * static_cast<double>(model_bytes) /
          (party.profile().network_mbps * 125000.0);
      fb.duration_s = (compute_s + network_s) * prng.uniform(0.85, 1.15);

      bool responds = true;
      if (config_.stragglers.mode == StragglerMode::kDropFraction) {
        if (prng.uniform() < config_.stragglers.rate) responds = false;
      } else if (config_.stragglers.deadline_s > 0.0 &&
                 fb.duration_s > config_.stragglers.deadline_s) {
        responds = false;
      }
      if (prng.uniform() > party.profile().availability) responds = false;
      if (prng.uniform() < party.profile().fault_rate) responds = false;
      fb.responded = responds;
      if (!responds || party.size() == 0) {
        aggregator.skip(k);
        return;
      }

      // ---- Local training (only responders pay the compute). ----
      out.trained = true;
      ml::Sequential local = model_;
      std::vector<double>& w = local.mutable_parameters();
      const auto& dataset = party.dataset();
      const std::size_t feature_dim =
          dataset.features.empty() ? 0 : dataset.features.front().size();
      std::vector<std::size_t> order(dataset.size());
      std::iota(order.begin(), order.end(), 0);

      const double mu = config_.local.prox_mu;
      const double* ci = nullptr;  // round-start SCAFFOLD variate
      if (config_.local.algo == ClientAlgo::kScaffold &&
          !scaffold_ci[p].empty()) {
        ci = scaffold_ci[p].data();
      }
      const double* hi = nullptr;  // round-start FedDyn regularizer
      if (config_.local.algo == ClientAlgo::kFedDyn &&
          !feddyn_hi[p].empty()) {
        hi = feddyn_hi[p].data();
      }

      ml::Tensor batch;
      std::vector<std::uint32_t> batch_labels;
      double batch_loss_sum = 0.0;
      double batch_loss_sq_sum = 0.0;
      std::size_t steps = 0;
      for (std::size_t epoch = 0; epoch < config_.local.epochs; ++epoch) {
        prng.shuffle(order);
        for (std::size_t start = 0; start < order.size();
             start += config_.local.batch_size) {
          const std::size_t stop =
              std::min(order.size(), start + config_.local.batch_size);
          batch.resize(stop - start, feature_dim);
          batch_labels.resize(stop - start);
          for (std::size_t i = start; i < stop; ++i) {
            const auto& src = dataset.features[order[i]];
            std::memcpy(batch.row(i - start), src.data(),
                        feature_dim * sizeof(double));
            batch_labels[i - start] = dataset.labels[order[i]];
          }
          const double loss = local.train_step_gradient(batch, batch_labels);
          batch_loss_sum += loss;
          batch_loss_sq_sum += loss * loss;
          ++steps;

          // Fused correction + SGD step, straight on the model's flat
          // parameter buffer (no gradient copy, no copy-back).
          const std::vector<double>& grad = local.gradients();
          switch (config_.local.algo) {
            case ClientAlgo::kSgd:
              if (mu > 0.0) {
                for (std::size_t i = 0; i < dim; ++i) {
                  w[i] -= local_lr *
                          (grad[i] + mu * (w[i] - global_params[i]));
                }
              } else {
                for (std::size_t i = 0; i < dim; ++i) {
                  w[i] -= local_lr * grad[i];
                }
              }
              break;
            case ClientAlgo::kScaffold:
              for (std::size_t i = 0; i < dim; ++i) {
                double g = grad[i] + scaffold_c_round[i] -
                           (ci != nullptr ? ci[i] : 0.0);
                if (mu > 0.0) g += mu * (w[i] - global_params[i]);
                w[i] -= local_lr * g;
              }
              break;
            case ClientAlgo::kFedDyn:
              for (std::size_t i = 0; i < dim; ++i) {
                double g = grad[i] +
                           config_.local.feddyn_alpha *
                               (w[i] - global_params[i]) -
                           (hi != nullptr ? hi[i] : 0.0);
                if (mu > 0.0) g += mu * (w[i] - global_params[i]);
                w[i] -= local_lr * g;
              }
              break;
          }
        }
      }
      out.delta = arena.lease(dim);
      for (std::size_t i = 0; i < dim; ++i) {
        out.delta[i] = w[i] - global_params[i];
      }
      if (steps > 0) {
        fb.mean_loss = batch_loss_sum / static_cast<double>(steps);
        fb.loss_rms =
            std::sqrt(batch_loss_sq_sum / static_cast<double>(steps));
      }

      // SCAFFOLD option-II variate refresh (Karimireddy et al. Eq. 5);
      // depends only on round-start state, so it can run in parallel.
      // Uses the RAW delta — client-side state must not see wire loss.
      if (config_.local.algo == ClientAlgo::kScaffold && steps > 0) {
        out.scaffold_ci_new.resize(dim);
        const double inv = 1.0 / (static_cast<double>(steps) * local_lr);
        for (std::size_t i = 0; i < dim; ++i) {
          out.scaffold_ci_new[i] = (ci != nullptr ? ci[i] : 0.0) -
                                   scaffold_c_round[i] - out.delta[i] * inv;
        }
      }
      // FedDyn regularizer refresh: per-party state touched only by
      // its owner (cohorts are deduped), so it is safe — and
      // deterministic — to update here in the parallel phase. Raw
      // delta, same as SCAFFOLD.
      if (config_.local.algo == ClientAlgo::kFedDyn) {
        auto& hi_state = feddyn_hi[p];
        if (hi_state.empty()) hi_state.assign(dim, 0.0);
        for (std::size_t i = 0; i < dim; ++i) {
          hi_state[i] -= config_.local.feddyn_alpha * out.delta[i];
        }
      }

      // ---- Wire codec (client side): error feedback + encode +
      // decode. out.delta becomes the decoded update — exactly what
      // the server receives.
      if (codec_on) {
        thread_local net::EncodedUpdate enc;
        thread_local net::CodecWorkspace ws;
        auto& residual = ef_residuals[p];
        std::vector<double> pre = arena.lease(dim);
        if (residual.empty()) {
          std::memcpy(pre.data(), out.delta.data(), dim * sizeof(double));
        } else {
          for (std::size_t i = 0; i < dim; ++i) {
            pre[i] = out.delta[i] + residual[i];
          }
        }
        codec.encode(pre, prng, enc, ws);
        out.wire_bytes = enc.wire_bytes();
        codec.decode(enc, out.delta);
        if (residual.empty()) residual.assign(dim, 0.0);
        for (std::size_t i = 0; i < dim; ++i) {
          residual[i] = pre[i] - out.delta[i];
        }
        arena.release(std::move(pre));
      } else {
        out.wire_bytes = model_bytes;
      }

      double weight =
          fb.num_samples > 0 ? static_cast<double>(fb.num_samples) : 1.0;
      if (dp_on) {
        privacy::clip_to_norm(out.delta, config_.privacy.dp.clip_norm);
        // DP-FedAvg aggregates clipped updates with EQUAL weights:
        // under sample-count weighting one large party could dominate
        // the mean with weight ~1, and the per-round sensitivity
        // clip_norm / cohort (which the noise sigma below assumes)
        // would be violated.
        weight = 1.0;
      }
      aggregator.submit(k, weight, out.delta);
    };
    pool.parallel_for(cohort.size(), simulate_party);

    // Drain the streaming fold (any trailing partial block) and take
    // the weighted mean BEFORE the delta buffers move into feedback.
    std::vector<double>& aggregate = aggregator.finalize();

    // ---- Sequential phase: fold outcomes into shared state in cohort
    // order (bit-identical for every thread count).
    feedback.clear();
    feedback.reserve(cohort.size());
    double round_time = 0.0;
    double loss_sum = 0.0;
    std::size_t responded = 0;
    std::uint64_t round_up_bytes = 0;

    for (std::size_t k = 0; k < cohort.size(); ++k) {
      const std::size_t p = cohort[k];
      PartyOutcome& out = outcomes[k];
      if (selection_counts[p]++ == 0) ++covered;

      if (out.trained) {
        loss_sum += out.fb.mean_loss;
        ++responded;
        round_up_bytes += out.wire_bytes;

        if (config_.local.algo == ClientAlgo::kScaffold &&
            !out.scaffold_ci_new.empty()) {
          auto& ci = scaffold_ci[p];
          if (ci.empty()) ci.assign(dim, 0.0);
          const double inv_n = 1.0 / static_cast<double>(n);
          for (std::size_t i = 0; i < dim; ++i) {
            // Server-side c absorbs the per-client change scaled by
            // 1/N; nobody reads it until the next round.
            scaffold_c[i] += (out.scaffold_ci_new[i] - ci[i]) * inv_n;
          }
          ci = std::move(out.scaffold_ci_new);
        }
        // (FedDyn's hi refresh happens in the parallel phase.)

        // Zero-copy hand-off: the arena buffer travels through the
        // feedback (selectors may read it in report_round) and is
        // released back to the arena after the round.
        out.fb.delta = std::move(out.delta);
      }

      round_time = std::max(round_time, out.fb.duration_s);
      feedback.push_back(std::move(out.fb));
    }

    if (config_.stragglers.mode == StragglerMode::kDeadline &&
        config_.stragglers.deadline_s > 0.0) {
      round_time = std::min(round_time, config_.stragglers.deadline_s);
    }
    result.total_time_s += round_time;

    // ---- Server step (+ broadcast-delta compression). ----
    std::uint64_t round_down_bytes = 0;
    if (aggregator.contributions() > 0) {
      if (dp_on) {
        const double sigma =
            config_.privacy.dp.noise_multiplier *
            config_.privacy.dp.clip_norm /
            static_cast<double>(aggregator.contributions());
        privacy::add_gaussian_noise(aggregate, sigma, rng);
        accountant.step(config_.privacy.dp.noise_multiplier);
      }
      if (codec_on) {
        // The broadcast is the codec-compressed per-round parameter
        // delta (clients cache the model and apply decoded deltas).
        // The server applies the DECODED delta to its own copy too, so
        // the single global model in the simulation is exactly what
        // every client reconstructs. Server-side error feedback keeps
        // the broadcast stream convergent.
        std::vector<double> prev = arena.lease(dim);
        std::memcpy(prev.data(), global_params.data(),
                    dim * sizeof(double));
        server.apply(global_params, aggregate);
        std::vector<double> pre = arena.lease(dim);
        for (std::size_t i = 0; i < dim; ++i) {
          pre[i] = (global_params[i] - prev[i]) + server_residual[i];
        }
        codec.encode(pre, broadcast_rng, broadcast_enc, broadcast_ws);
        round_down_bytes =
            static_cast<std::uint64_t>(broadcast_enc.wire_bytes()) *
            cohort.size();
        codec.decode(broadcast_enc, broadcast_wire);
        for (std::size_t i = 0; i < dim; ++i) {
          server_residual[i] = pre[i] - broadcast_wire[i];
          global_params[i] = prev[i] + broadcast_wire[i];
        }
        arena.release(std::move(prev));
        arena.release(std::move(pre));
      } else {
        server.apply(global_params, aggregate);
      }
      model_.set_parameters(global_params);
    }
    if (!codec_on) {
      round_down_bytes = model_bytes * cohort.size();  // full model down
    }

    // ---- Communication accounting. ----
    result.download_bytes += round_down_bytes;
    result.upload_bytes += round_up_bytes;
    result.total_bytes += round_down_bytes + round_up_bytes;
    if (masking_on && cohort.size() > 1) {
      result.total_bytes +=
          static_cast<std::uint64_t>(32) * cohort.size() *
          (cohort.size() - 1);  // pairwise key shares
    }

    // ---- Evaluation (every eval_every rounds; carried forward). ----
    RoundRecord record;
    record.round = round;
    record.selected = cohort.size();
    record.responded = responded;
    record.round_time_s = round_time;
    record.mean_train_loss =
        responded > 0 ? loss_sum / static_cast<double>(responded) : 0.0;
    const bool eval_now = round == 1 || round == config_.rounds ||
                          config_.eval_every == 0 ||
                          round % config_.eval_every == 0;
    if (eval_now) {
      const EvalResult eval =
          evaluate(model_, test_features, global_test_.labels,
                   global_test_.num_classes, pool);
      record.balanced_accuracy = eval.balanced_accuracy;
      record.per_label_accuracy = eval.per_label_accuracy;
    } else if (!result.history.empty()) {
      record.balanced_accuracy = result.history.back().balanced_accuracy;
      record.per_label_accuracy = result.history.back().per_label_accuracy;
    }
    result.peak_accuracy =
        std::max(result.peak_accuracy, record.balanced_accuracy);
    if (!result.rounds_to_target && config_.target_accuracy > 0.0 &&
        record.balanced_accuracy >= config_.target_accuracy) {
      result.rounds_to_target = round;
      result.time_to_target_s = result.total_time_s;
    }
    result.history.push_back(std::move(record));

    if (!result.coverage_round && covered == n) {
      result.coverage_round = round;
    }

    selector_->report_round(round, feedback);
    // Selectors that keep deltas copy them in report_round; the arena
    // buffers come home so next round leases allocation-free.
    for (PartyFeedback& fb : feedback) {
      arena.release(std::move(fb.delta));
    }
  }

  result.final_parameters = std::move(global_params);
  result.fairness.jain_index = common::jain_index(selection_counts);
  if (dp_on) {
    result.epsilon_spent = accountant.epsilon(config_.privacy.dp.delta);
  }
  return result;
}

}  // namespace flips::fl
