#include "fl/job.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <mutex>
#include <numeric>
#include <unordered_set>

#include "common/stats.h"
#include "common/thread_pool.h"
#include "privacy/dp.h"

namespace flips::fl {

const char* to_string(ClientAlgo algo) {
  switch (algo) {
    case ClientAlgo::kSgd:
      return "sgd";
    case ClientAlgo::kScaffold:
      return "scaffold";
    case ClientAlgo::kFedDyn:
      return "feddyn";
  }
  return "unknown";
}

namespace {

struct EvalResult {
  double balanced_accuracy = 0.0;
  std::vector<double> per_label_accuracy;
};

/// Balanced accuracy over the test set. Predictions are computed in
/// parallel chunks (each chunk forwards through its own clone of the
/// model, since layers cache activations) into per-row slots; the
/// per-class tally runs on one thread, so the result does not depend
/// on the chunking.
EvalResult evaluate(const ml::Sequential& model, const ml::Tensor& features,
                    const std::vector<std::uint32_t>& labels,
                    std::size_t num_classes, common::ThreadPool& pool) {
  EvalResult eval;
  const std::size_t n = features.rows();
  if (n == 0) return eval;
  eval.per_label_accuracy.assign(num_classes, 0.0);
  std::vector<double> totals(num_classes, 0.0);

  std::vector<std::uint32_t> preds(n, 0);
  // Fixed chunk granularity, NOT pool.size()-derived: the ML kernels
  // build with -ffast-math, where a row's position inside its chunk
  // decides which SIMD-body/remainder code path computes it. Constant
  // boundaries keep every row's arithmetic identical for every thread
  // count; the pool merely distributes the chunks.
  constexpr std::size_t kEvalChunkRows = 64;
  const std::size_t num_chunks = (n + kEvalChunkRows - 1) / kEvalChunkRows;
  // Scratch models are recycled through a small checkout stack so the
  // number of deep clones is bounded by the worker count, not the
  // chunk count (a clone exists only to give each in-flight chunk
  // private activation buffers).
  std::vector<std::unique_ptr<ml::Sequential>> scratch_models;
  std::mutex scratch_mutex;
  pool.parallel_for(num_chunks, [&](std::size_t c) {
    const std::size_t begin = c * kEvalChunkRows;
    const std::size_t end = std::min(n, begin + kEvalChunkRows);
    if (begin >= end) return;
    std::unique_ptr<ml::Sequential> local;
    {
      std::lock_guard<std::mutex> lock(scratch_mutex);
      if (!scratch_models.empty()) {
        local = std::move(scratch_models.back());
        scratch_models.pop_back();
      }
    }
    if (!local) local = std::make_unique<ml::Sequential>(model);
    ml::Tensor slice(end - begin, features.cols());
    std::memcpy(slice.data(), features.row(begin),
                slice.size() * sizeof(double));
    const ml::Tensor& logits = local->forward(slice);
    for (std::size_t i = begin; i < end; ++i) {
      const double* row = logits.row(i - begin);
      std::size_t best = 0;
      for (std::size_t k = 1; k < logits.cols(); ++k) {
        if (row[k] > row[best]) best = k;
      }
      preds[i] = static_cast<std::uint32_t>(best);
    }
    std::lock_guard<std::mutex> lock(scratch_mutex);
    scratch_models.push_back(std::move(local));
  });

  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t truth = labels[i];
    totals[truth] += 1.0;
    if (preds[i] == truth) eval.per_label_accuracy[truth] += 1.0;
  }
  std::size_t live_classes = 0;
  for (std::size_t c = 0; c < num_classes; ++c) {
    if (totals[c] > 0.0) {
      eval.per_label_accuracy[c] /= totals[c];
      eval.balanced_accuracy += eval.per_label_accuracy[c];
      ++live_classes;
    }
  }
  if (live_classes > 0) {
    eval.balanced_accuracy /= static_cast<double>(live_classes);
  }
  return eval;
}

/// Everything a party produces inside the parallel phase. Workers
/// write only their own slot; the sequential phase folds the slots
/// into shared state in cohort order.
struct PartyOutcome {
  PartyFeedback fb;
  bool trained = false;
  std::vector<double> scaffold_ci_new;  ///< SCAFFOLD only
};

}  // namespace

FlJob::FlJob(FlJobConfig config, const std::vector<Party>& parties,
             data::Dataset global_test, ml::Sequential model,
             std::unique_ptr<ParticipantSelector> selector)
    : config_(std::move(config)), parties_(parties),
      global_test_(std::move(global_test)), model_(std::move(model)),
      selector_(std::move(selector)) {}

FlJobResult FlJob::run() {
  FlJobResult result;
  const std::size_t n = parties_.size();
  if (n == 0 || config_.rounds == 0) return result;

  common::ThreadPool pool(config_.threads);
  // Job-level RNG: after the per-party streams split off, this only
  // feeds the DP noise, so its draw sequence (and thus the noise) is
  // independent of cohort outcomes and thread count.
  common::Rng rng(config_.seed);
  std::vector<double> global_params = model_.parameters();
  const std::size_t dim = global_params.size();
  const auto model_bytes = static_cast<std::uint64_t>(dim * sizeof(double));

  const ml::Tensor test_features =
      ml::Tensor::from_rows(global_test_.features);

  ServerOptimizer server(config_.server, dim);
  ml::SgdOptimizer local_sgd(config_.local.sgd);
  privacy::RdpAccountant accountant;

  // Drift-correction state (lazily touched per party).
  std::vector<std::vector<double>> scaffold_ci;
  std::vector<double> scaffold_c;
  std::vector<std::vector<double>> feddyn_hi;
  if (config_.local.algo == ClientAlgo::kScaffold) {
    scaffold_ci.assign(n, {});
    scaffold_c.assign(dim, 0.0);
  } else if (config_.local.algo == ClientAlgo::kFedDyn) {
    feddyn_hi.assign(n, {});
  }

  std::vector<std::size_t> selection_counts(n, 0);
  std::size_t covered = 0;

  const bool dp_on = config_.privacy.mechanism == PrivacyMechanism::kDp &&
                     config_.privacy.dp.noise_multiplier > 0.0;
  const bool masking_on =
      config_.privacy.mechanism == PrivacyMechanism::kMasking;

  for (std::size_t round = 1; round <= config_.rounds; ++round) {
    if (config_.pre_round_hook) config_.pre_round_hook(round, *selector_);
    std::vector<std::size_t> cohort =
        selector_->select(round, config_.parties_per_round);
    // Defensive: clamp ids and dedupe (selectors should already comply).
    std::unordered_set<std::size_t> seen;
    std::vector<std::size_t> valid;
    for (const std::size_t p : cohort) {
      if (p < n && seen.insert(p).second) valid.push_back(p);
    }
    cohort = std::move(valid);

    const double local_lr = local_sgd.learning_rate_for_round(round);

    // SCAFFOLD: every party in the cohort must train against the SAME
    // round-start control variate; updates to c are folded in after
    // the parallel phase so results do not depend on cohort order or
    // scheduling.
    std::vector<double> scaffold_c_round;
    if (config_.local.algo == ClientAlgo::kScaffold) {
      scaffold_c_round = scaffold_c;
    }

    // ---- Parallel phase: each selected party simulates its round
    // (straggler draws + local training) into its own outcome slot.
    // Shared state (model_, global_params, round-start control
    // variates) is read-only here.
    std::vector<PartyOutcome> outcomes(cohort.size());
    auto simulate_party = [&](std::size_t k) {
      const std::size_t p = cohort[k];
      const Party& party = parties_[p];
      PartyOutcome& out = outcomes[k];
      PartyFeedback& fb = out.fb;
      fb.party_id = p;
      fb.num_samples = party.size();

      common::Rng prng(common::mix_seed(config_.seed, round, p));

      const double compute_s = party.profile().speed_factor *
                               static_cast<double>(party.size()) *
                               static_cast<double>(config_.local.epochs) *
                               config_.compute_s_per_sample;
      const double network_s =
          2.0 * static_cast<double>(model_bytes) /
          (party.profile().network_mbps * 125000.0);
      fb.duration_s = (compute_s + network_s) * prng.uniform(0.85, 1.15);

      bool responds = true;
      if (config_.stragglers.mode == StragglerMode::kDropFraction) {
        if (prng.uniform() < config_.stragglers.rate) responds = false;
      } else if (config_.stragglers.deadline_s > 0.0 &&
                 fb.duration_s > config_.stragglers.deadline_s) {
        responds = false;
      }
      if (prng.uniform() > party.profile().availability) responds = false;
      if (prng.uniform() < party.profile().fault_rate) responds = false;
      fb.responded = responds;
      if (!responds || party.size() == 0) return;

      // ---- Local training (only responders pay the compute). ----
      out.trained = true;
      ml::Sequential local = model_;
      std::vector<double>& w = local.mutable_parameters();
      const auto& dataset = party.dataset();
      const std::size_t feature_dim =
          dataset.features.empty() ? 0 : dataset.features.front().size();
      std::vector<std::size_t> order(dataset.size());
      std::iota(order.begin(), order.end(), 0);

      const double mu = config_.local.prox_mu;
      const double* ci = nullptr;  // round-start SCAFFOLD variate
      if (config_.local.algo == ClientAlgo::kScaffold &&
          !scaffold_ci[p].empty()) {
        ci = scaffold_ci[p].data();
      }
      const double* hi = nullptr;  // round-start FedDyn regularizer
      if (config_.local.algo == ClientAlgo::kFedDyn &&
          !feddyn_hi[p].empty()) {
        hi = feddyn_hi[p].data();
      }

      ml::Tensor batch;
      std::vector<std::uint32_t> batch_labels;
      double batch_loss_sum = 0.0;
      double batch_loss_sq_sum = 0.0;
      std::size_t steps = 0;
      for (std::size_t epoch = 0; epoch < config_.local.epochs; ++epoch) {
        prng.shuffle(order);
        for (std::size_t start = 0; start < order.size();
             start += config_.local.batch_size) {
          const std::size_t stop =
              std::min(order.size(), start + config_.local.batch_size);
          batch.resize(stop - start, feature_dim);
          batch_labels.resize(stop - start);
          for (std::size_t i = start; i < stop; ++i) {
            const auto& src = dataset.features[order[i]];
            std::memcpy(batch.row(i - start), src.data(),
                        feature_dim * sizeof(double));
            batch_labels[i - start] = dataset.labels[order[i]];
          }
          const double loss = local.train_step_gradient(batch, batch_labels);
          batch_loss_sum += loss;
          batch_loss_sq_sum += loss * loss;
          ++steps;

          // Fused correction + SGD step, straight on the model's flat
          // parameter buffer (no gradient copy, no copy-back).
          const std::vector<double>& grad = local.gradients();
          switch (config_.local.algo) {
            case ClientAlgo::kSgd:
              if (mu > 0.0) {
                for (std::size_t i = 0; i < dim; ++i) {
                  w[i] -= local_lr *
                          (grad[i] + mu * (w[i] - global_params[i]));
                }
              } else {
                for (std::size_t i = 0; i < dim; ++i) {
                  w[i] -= local_lr * grad[i];
                }
              }
              break;
            case ClientAlgo::kScaffold:
              for (std::size_t i = 0; i < dim; ++i) {
                double g = grad[i] + scaffold_c_round[i] -
                           (ci != nullptr ? ci[i] : 0.0);
                if (mu > 0.0) g += mu * (w[i] - global_params[i]);
                w[i] -= local_lr * g;
              }
              break;
            case ClientAlgo::kFedDyn:
              for (std::size_t i = 0; i < dim; ++i) {
                double g = grad[i] +
                           config_.local.feddyn_alpha *
                               (w[i] - global_params[i]) -
                           (hi != nullptr ? hi[i] : 0.0);
                if (mu > 0.0) g += mu * (w[i] - global_params[i]);
                w[i] -= local_lr * g;
              }
              break;
          }
        }
      }
      fb.delta.resize(dim);
      for (std::size_t i = 0; i < dim; ++i) {
        fb.delta[i] = w[i] - global_params[i];
      }
      if (steps > 0) {
        fb.mean_loss = batch_loss_sum / static_cast<double>(steps);
        fb.loss_rms =
            std::sqrt(batch_loss_sq_sum / static_cast<double>(steps));
      }

      // SCAFFOLD option-II variate refresh (Karimireddy et al. Eq. 5);
      // depends only on round-start state, so it can run in parallel.
      if (config_.local.algo == ClientAlgo::kScaffold && steps > 0) {
        out.scaffold_ci_new.resize(dim);
        const double inv = 1.0 / (static_cast<double>(steps) * local_lr);
        for (std::size_t i = 0; i < dim; ++i) {
          out.scaffold_ci_new[i] = (ci != nullptr ? ci[i] : 0.0) -
                                   scaffold_c_round[i] - fb.delta[i] * inv;
        }
      }
    };
    pool.parallel_for(cohort.size(), simulate_party);

    // ---- Sequential phase: fold outcomes into shared state in cohort
    // order (bit-identical for every thread count).
    std::vector<PartyFeedback> feedback;
    feedback.reserve(cohort.size());
    std::vector<LocalUpdate> updates;
    double round_time = 0.0;
    double loss_sum = 0.0;
    std::size_t responded = 0;

    for (std::size_t k = 0; k < cohort.size(); ++k) {
      const std::size_t p = cohort[k];
      PartyOutcome& out = outcomes[k];
      if (selection_counts[p]++ == 0) ++covered;

      if (out.trained) {
        loss_sum += out.fb.mean_loss;
        ++responded;

        if (config_.local.algo == ClientAlgo::kScaffold &&
            !out.scaffold_ci_new.empty()) {
          auto& ci = scaffold_ci[p];
          if (ci.empty()) ci.assign(dim, 0.0);
          const double inv_n = 1.0 / static_cast<double>(n);
          for (std::size_t i = 0; i < dim; ++i) {
            // Server-side c absorbs the per-client change scaled by
            // 1/N; nobody reads it until the next round.
            scaffold_c[i] += (out.scaffold_ci_new[i] - ci[i]) * inv_n;
          }
          ci = std::move(out.scaffold_ci_new);
        } else if (config_.local.algo == ClientAlgo::kFedDyn) {
          auto& hi = feddyn_hi[p];
          if (hi.empty()) hi.assign(dim, 0.0);
          for (std::size_t i = 0; i < dim; ++i) {
            hi[i] -= config_.local.feddyn_alpha * out.fb.delta[i];
          }
        }

        LocalUpdate update;
        update.num_samples = out.fb.num_samples;
        update.delta = out.fb.delta;
        if (dp_on) {
          privacy::clip_to_norm(update.delta, config_.privacy.dp.clip_norm);
          // DP-FedAvg aggregates clipped updates with EQUAL weights:
          // under sample-count weighting one large party could dominate
          // the mean with weight ~1, and the per-round sensitivity
          // clip_norm / cohort (which the noise sigma below assumes)
          // would be violated.
          update.num_samples = 1;
        }
        updates.push_back(std::move(update));
      }

      round_time = std::max(round_time, out.fb.duration_s);
      feedback.push_back(std::move(out.fb));
    }

    if (config_.stragglers.mode == StragglerMode::kDeadline &&
        config_.stragglers.deadline_s > 0.0) {
      round_time = std::min(round_time, config_.stragglers.deadline_s);
    }
    result.total_time_s += round_time;

    // ---- Communication accounting. ----
    result.total_bytes += model_bytes * cohort.size();       // model down
    result.total_bytes += model_bytes * responded;           // updates up
    if (masking_on && cohort.size() > 1) {
      result.total_bytes +=
          static_cast<std::uint64_t>(32) * cohort.size() *
          (cohort.size() - 1);  // pairwise key shares
    }

    // ---- Aggregate + server step. ----
    if (!updates.empty()) {
      std::vector<double> aggregate = aggregate_updates(updates);
      if (dp_on) {
        const double sigma = config_.privacy.dp.noise_multiplier *
                             config_.privacy.dp.clip_norm /
                             static_cast<double>(updates.size());
        privacy::add_gaussian_noise(aggregate, sigma, rng);
        accountant.step(config_.privacy.dp.noise_multiplier);
      }
      server.apply(global_params, aggregate);
      model_.set_parameters(global_params);
    }

    // ---- Evaluation (every eval_every rounds; carried forward). ----
    RoundRecord record;
    record.round = round;
    record.selected = cohort.size();
    record.responded = responded;
    record.round_time_s = round_time;
    record.mean_train_loss =
        responded > 0 ? loss_sum / static_cast<double>(responded) : 0.0;
    const bool eval_now = round == 1 || round == config_.rounds ||
                          config_.eval_every == 0 ||
                          round % config_.eval_every == 0;
    if (eval_now) {
      const EvalResult eval =
          evaluate(model_, test_features, global_test_.labels,
                   global_test_.num_classes, pool);
      record.balanced_accuracy = eval.balanced_accuracy;
      record.per_label_accuracy = eval.per_label_accuracy;
    } else if (!result.history.empty()) {
      record.balanced_accuracy = result.history.back().balanced_accuracy;
      record.per_label_accuracy = result.history.back().per_label_accuracy;
    }
    result.peak_accuracy =
        std::max(result.peak_accuracy, record.balanced_accuracy);
    if (!result.rounds_to_target && config_.target_accuracy > 0.0 &&
        record.balanced_accuracy >= config_.target_accuracy) {
      result.rounds_to_target = round;
      result.time_to_target_s = result.total_time_s;
    }
    result.history.push_back(std::move(record));

    if (!result.coverage_round && covered == n) {
      result.coverage_round = round;
    }

    selector_->report_round(round, feedback);
  }

  result.final_parameters = std::move(global_params);
  result.fairness.jain_index = common::jain_index(selection_counts);
  if (dp_on) {
    result.epsilon_spent = accountant.epsilon(config_.privacy.dp.delta);
  }
  return result;
}

}  // namespace flips::fl
