#include "fl/job.h"

#include <memory>
#include <stdexcept>

#include "fl/session.h"

namespace flips::fl {

const char* to_string(ClientAlgo algo) {
  switch (algo) {
    case ClientAlgo::kSgd:
      return "sgd";
    case ClientAlgo::kScaffold:
      return "scaffold";
    case ClientAlgo::kFedDyn:
      return "feddyn";
  }
  return "unknown";
}

const char* to_string(FederationMode mode) {
  switch (mode) {
    case FederationMode::kSync:
      return "sync";
    case FederationMode::kAsync:
      return "async";
  }
  return "unknown";
}

FlJob::FlJob(FlJobConfig config, const std::vector<Party>& parties,
             data::Dataset global_test, ml::Sequential model,
             std::unique_ptr<ParticipantSelector> selector)
    : config_(std::move(config)), parties_(parties),
      global_test_(std::move(global_test)), model_(std::move(model)),
      selector_(std::move(selector)) {}

FlJobResult FlJob::run() {
  // Single-shot: the session takes the job's config/model/selector by
  // move. (The old monolithic loop technically allowed a second run()
  // over its mutated end state — nothing in the repo relied on it.)
  if (!selector_) {
    throw std::logic_error("FlJob::run() may only be called once");
  }
  // Non-owning alias: the caller guarantees the borrowed party vector
  // outlives run() (the historical FlJob contract). Sessions built
  // directly own or share their parties instead.
  std::shared_ptr<const std::vector<Party>> parties(
      std::shared_ptr<const std::vector<Party>>{}, &parties_);
  FederationSession session(std::move(config_), std::move(parties),
                            std::move(global_test_), std::move(model_),
                            std::move(selector_));
  while (!session.done()) session.advance();
  return session.result();
}

}  // namespace flips::fl
