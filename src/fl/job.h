// Shared FL job vocabulary (configs, Party, RoundRecord, FlJobResult)
// plus the legacy blocking FlJob driver. The round pipeline itself —
// per-round participant selection, local training (τ epochs of SGD
// with optional FedProx / SCAFFOLD / FedDyn adjustments), straggler
// simulation, optional DP on the aggregation path, a server optimizer
// step, and per-round balanced-accuracy eval — lives in
// fl::FederationSession (fl/session.h), which exposes it one round at
// a time with observer sinks; FlJob::run() is a thin shim that steps a
// session to completion for existing call sites.
//
// Selected parties train concurrently on a small worker pool
// (FlJobConfig::threads); every party draws from a private
// round-seeded RNG stream. Updates stream into fl::StreamingAggregator
// as parties finish (block folds in fixed cohort order, overlapped
// with the training phase); all remaining order-sensitive reductions
// (SCAFFOLD control-variate updates, loss averaging) run in cohort
// order on one thread — so round results are bit-identical across
// thread counts. Delta buffers are leased from a fl::BufferArena and
// reused across rounds: the steady-state aggregation path performs no
// heap allocation.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "data/synthetic.h"
#include "fl/selector.h"
#include "fl/server_optimizer.h"
#include "ml/model.h"
#include "ml/sgd.h"
#include "net/codec.h"
#include "net/device.h"
#include "net/faults.h"

namespace flips::fl {

enum class ClientAlgo {
  kSgd,       ///< plain local SGD (optionally with FedProx's mu)
  kScaffold,  ///< control-variate drift correction
  kFedDyn,    ///< dynamic-regularizer drift correction
};

const char* to_string(ClientAlgo algo);

enum class StragglerMode {
  kDropFraction,  ///< paper's emulation: each pick fails w.p. `rate`
  kDeadline,      ///< physics: miss if simulated duration > deadline_s
};

/// kDeadline applies to sync mode only: async has no round to bound
/// (the staleness cutoff subsumes the deadline), so an async session
/// rejects kDeadline with deadline_s > 0 at construction.
struct StragglerConfig {
  double rate = 0.0;
  StragglerMode mode = StragglerMode::kDropFraction;
  double deadline_s = 0.0;  ///< 0 = unbounded (kDeadline mode only)
};

enum class FederationMode {
  kSync,   ///< round barrier: the server steps once per full cohort
  kAsync,  ///< FedBuff-style: the server steps every K arrivals
};

const char* to_string(FederationMode mode);

/// Knobs for the buffered asynchronous mode (FederationMode::kAsync).
/// The session keeps `parties_per_round` parties in flight; the event
/// loop folds arrivals into a buffer and takes a server step every
/// `buffer_k` of them, discounting each update by
/// fl::staleness_discount(server steps since its dispatch) and
/// dropping updates staler than `max_staleness` outright.
struct AsyncConfig {
  /// Arrivals buffered per server step (0 = half the in-flight cohort,
  /// rounded up).
  std::size_t buffer_k = 0;
  /// Bounded staleness: updates dispatched more than this many server
  /// steps ago are dropped (and accounted in RoundRecord::dropped_stale).
  std::size_t max_staleness = 4;
};

enum class PrivacyMechanism {
  kNone,
  kDp,       ///< clip + Gaussian noise on the aggregate, RDP-accounted
  kMasking,  ///< pairwise-mask SecAgg (exact sum; extra setup bytes)
};

struct DpParams {
  double clip_norm = 1.0;
  double noise_multiplier = 0.0;
  double delta = 1e-5;
};

struct PrivacyConfig {
  PrivacyMechanism mechanism = PrivacyMechanism::kNone;
  DpParams dp;
};

struct PartyProfile {
  double speed_factor = 1.0;  ///< local-training slowdown multiplier
  double network_mbps = 10.0;
  double availability = 1.0;
  double fault_rate = 0.0;
  /// Markov churn trace means (net/faults.h); 0 = this party never
  /// churns even when the fault plan's churn knob is on.
  double mean_up_s = 0.0;
  double mean_down_s = 0.0;

  static PartyProfile from_device(const net::Device& device) {
    PartyProfile profile;
    profile.speed_factor = device.compute_factor;
    profile.network_mbps = device.network_mbps;
    profile.availability = device.availability;
    profile.fault_rate = device.fault_rate;
    profile.mean_up_s = device.mean_up_s;
    profile.mean_down_s = device.mean_down_s;
    return profile;
  }
};

class Party {
 public:
  Party(std::size_t id, data::Dataset dataset, PartyProfile profile)
      : id_(id), dataset_(std::move(dataset)), profile_(profile) {}

  std::size_t id() const { return id_; }
  const data::Dataset& dataset() const { return dataset_; }
  const PartyProfile& profile() const { return profile_; }
  std::size_t size() const { return dataset_.size(); }

 private:
  std::size_t id_;
  data::Dataset dataset_;
  PartyProfile profile_;
};

struct LocalSolverConfig {
  std::size_t epochs = 1;  ///< τ
  std::size_t batch_size = 32;
  ml::SgdConfig sgd;
  double prox_mu = 0.0;    ///< FedProx proximal strength (0 = off)
  ClientAlgo algo = ClientAlgo::kSgd;
  double feddyn_alpha = 0.1;
};

struct FlJobConfig {
  std::size_t rounds = 100;
  std::size_t parties_per_round = 10;  ///< Nr
  LocalSolverConfig local;
  ServerOptConfig server;
  StragglerConfig stragglers;
  PrivacyConfig privacy;
  std::uint64_t seed = 42;
  /// Worker threads for per-party local training and evaluation
  /// (0 = hardware concurrency). Parties are embarrassingly parallel
  /// within a round; each draws from a private round-seeded RNG stream
  /// and aggregation is applied in cohort order on one thread, so
  /// results are bit-identical for every thread count.
  std::size_t threads = 1;
  std::size_t eval_every = 1;
  double target_accuracy = 0.0;  ///< 0 = no target tracking
  /// Stepping discipline: kSync reproduces the historical round
  /// barrier bit-for-bit; kAsync runs the FedBuff-style buffered event
  /// loop configured by `async`. Control-plane work that used to hang
  /// off a pre-round hook plugs in as a RoundObserver instead (see
  /// ctrl::ReclusterObserver for the streaming-clustering service).
  FederationMode mode = FederationMode::kSync;
  AsyncConfig async;
  /// Simulated seconds of local compute per (sample x epoch) on a
  /// nominal device; scaled by each party's speed_factor.
  double compute_s_per_sample = 2e-3;
  /// Wire codec for updates (uplink) and the broadcast delta
  /// (downlink). kDense64 reproduces the PR 1-3 byte accounting
  /// exactly. Lossy codecs (kQuant8 / kTopK) run with client-side
  /// error-feedback residuals; the server compresses its own
  /// per-round parameter delta with a server-side residual, applies
  /// the DECODED delta to the global model (so server and client
  /// replicas agree bit-for-bit), and the byte accounting charges the
  /// encoded sizes. Under DP the decoded uplink update is what gets
  /// clipped — selectors that read PartyFeedback::delta see the wire
  /// (decoded, clipped) update, i.e. exactly what the server sees.
  net::CodecConfig codec;
  /// Deterministic fault plan (churn / crashes / link faults) plus the
  /// recovery knobs (retry backoff, sync backfill budget, quorum).
  /// Default-constructed = disabled, and every session path is
  /// byte-identical to a fault-free build. When enabled, the legacy
  /// per-pick availability/fault_rate Bernoulli draws are replaced by
  /// the plan's churn trace and crash stream (which folds the device's
  /// fault_rate in), so the dead Device reliability fields finally
  /// fire through exactly one mechanism.
  net::FaultConfig faults;
};

struct RoundRecord {
  std::size_t round = 0;  ///< 1-based
  double balanced_accuracy = 0.0;
  std::vector<double> per_label_accuracy;
  std::size_t selected = 0;
  std::size_t responded = 0;
  double round_time_s = 0.0;
  double mean_train_loss = 0.0;
  /// Per-round communication accounting (codec-aware), consumed by
  /// observer sinks; FlJobResult's totals are their running sums.
  std::uint64_t upload_bytes = 0;    ///< update traffic this round
  std::uint64_t download_bytes = 0;  ///< broadcast traffic this round
  std::uint64_t setup_bytes = 0;     ///< SecAgg key-share traffic
  /// Async mode only: arrivals discarded by the bounded-staleness
  /// cutoff during this server step (counted toward `selected` but not
  /// `responded`).
  std::size_t dropped_stale = 0;
  /// Fault-plan tallies (FlJobConfig::faults; all zero when disabled).
  std::size_t crashed = 0;     ///< dispatches lost to churn/crash/link
  std::size_t retried = 0;     ///< async re-dispatches scheduled
  std::size_t backfilled = 0;  ///< sync replacement parties dispatched
  /// Sync only: the fold was skipped because fewer than
  /// min_quorum x cohort parties responded (the round still evaluates
  /// and advances — degraded, not crashed).
  bool quorum_skipped = false;
};

struct FairnessStats {
  double jain_index = 0.0;  ///< over per-party selection counts
};

struct FlJobResult {
  std::vector<RoundRecord> history;  ///< one record per round
  std::vector<double> final_parameters;
  double peak_accuracy = 0.0;
  /// download_bytes + upload_bytes (+ SecAgg key-share setup traffic,
  /// which is counted in the total only).
  std::uint64_t total_bytes = 0;
  std::uint64_t download_bytes = 0;  ///< broadcast traffic (codec-aware)
  std::uint64_t upload_bytes = 0;    ///< update traffic (codec-aware)
  double epsilon_spent = 0.0;     ///< DP budget (0 when DP off)
  FairnessStats fairness;
  /// First round after which every party has been selected >= once.
  std::optional<std::size_t> coverage_round;
  std::optional<double> time_to_target_s;
  double total_time_s = 0.0;
  std::optional<std::size_t> rounds_to_target;
};

/// Legacy blocking driver, kept as a thin compatibility shim over
/// fl::FederationSession (fl/session.h): run() constructs a session
/// around a non-owning alias of the borrowed party vector, steps it to
/// completion, and returns its result — bit-for-bit what the old
/// monolithic loop produced. New code should use FederationSession
/// directly (round-level stepping, observer sinks, owned parties).
class FlJob {
 public:
  FlJob(FlJobConfig config, const std::vector<Party>& parties,
        data::Dataset global_test, ml::Sequential model,
        std::unique_ptr<ParticipantSelector> selector);

  [[nodiscard]] FlJobResult run();

 private:
  FlJobConfig config_;
  const std::vector<Party>& parties_;
  data::Dataset global_test_;
  ml::Sequential model_;
  std::unique_ptr<ParticipantSelector> selector_;
};

}  // namespace flips::fl
