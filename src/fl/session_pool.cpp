#include "fl/session_pool.h"

#include <stdexcept>

namespace flips::fl {

std::size_t SessionPool::add(std::unique_ptr<FederationSession> session,
                             std::string tenant) {
  if (tenant.empty()) {
    tenant = "tenant-" + std::to_string(sessions_.size());
  }
  if (find_tenant(tenant)) {
    throw std::invalid_argument("SessionPool::add: duplicate tenant \"" +
                                tenant + "\"");
  }
  sessions_.push_back(std::move(session));
  tenants_.push_back(std::move(tenant));
  return sessions_.size() - 1;
}

std::optional<StepResult> SessionPool::step() {
  const std::size_t n = sessions_.size();
  for (std::size_t probe = 0; probe < n; ++probe) {
    const std::size_t index = (cursor_ + probe) % n;
    if (sessions_[index] == nullptr || sessions_[index]->done()) continue;
    cursor_ = (index + 1) % n;
    return step(index);
  }
  return std::nullopt;
}

std::optional<StepResult> SessionPool::step(std::size_t index) {
  if (sessions_[index] == nullptr) return std::nullopt;
  FederationSession& session = *sessions_[index];
  if (session.done()) return std::nullopt;
  session.advance();
  ++rounds_stepped_;
  StepResult result;
  result.session_index = index;
  result.round = session.rounds_completed();
  result.finished = session.done();
  return result;
}

void SessionPool::run_all() {
  while (step()) {
  }
}

void SessionPool::evict(std::size_t index) {
  if (index >= sessions_.size()) return;
  sessions_[index].reset();
  tenants_[index].clear();  // frees the name for a future add()
}

bool SessionPool::done() const {
  for (const auto& session : sessions_) {
    if (session != nullptr && !session->done()) return false;
  }
  return true;
}

std::optional<std::size_t> SessionPool::find_tenant(
    std::string_view tenant) const {
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    // Evicted slots keep an empty name; never match them.
    if (!tenants_[i].empty() && tenants_[i] == tenant) return i;
  }
  return std::nullopt;
}

}  // namespace flips::fl
