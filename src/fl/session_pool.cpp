#include "fl/session_pool.h"

namespace flips::fl {

std::size_t SessionPool::add(std::unique_ptr<FederationSession> session) {
  sessions_.push_back(std::move(session));
  return sessions_.size() - 1;
}

std::size_t SessionPool::step() {
  const std::size_t n = sessions_.size();
  for (std::size_t probe = 0; probe < n; ++probe) {
    const std::size_t index = (cursor_ + probe) % n;
    FederationSession& session = *sessions_[index];
    if (session.done()) continue;
    session.advance();
    ++rounds_stepped_;
    cursor_ = (index + 1) % n;
    return index;
  }
  return npos;
}

void SessionPool::run_all() {
  while (step() != npos) {
  }
}

bool SessionPool::done() const {
  for (const auto& session : sessions_) {
    if (!session->done()) return false;
  }
  return true;
}

}  // namespace flips::fl
