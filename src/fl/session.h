// The steppable, event-driven federation driver. FederationSession
// holds one FL job's full cross-step state — global model replica,
// server optimizer moments, client drift-correction state (SCAFFOLD /
// FedDyn), codec error-feedback residuals, the zero-copy aggregation
// plane — and exposes it one server step at a time:
//
//   FederationSession session(config, parties, test, model, selector);
//   session.add_observer(&my_sink);
//   while (!session.done()) session.advance();
//   FlJobResult result = session.result();
//
// advance() is mode-dispatched (FlJobConfig::mode):
//
//   kSync — the historical round barrier: select a cohort, train it on
//       the worker pool, fold in cohort order, one server step per
//       full cohort. Bit-identical to the PR 5 stepping loop (whose
//       run_round() alias is retired; advance() is the only entry).
//   kAsync — FedBuff-style buffered stepping: the session keeps
//       `parties_per_round` parties in flight, an arrival queue
//       ordered by the net/device.h latency model delivers their
//       updates one at a time, and the server steps every
//       `async.buffer_k` folded arrivals. Each folded update is
//       discounted by staleness_discount(server steps since its
//       dispatch); updates staler than `async.max_staleness` are
//       dropped (RoundRecord::dropped_stale). Freed in-flight slots
//       are refilled from the selector at the top of every advance()
//       — continuous re-selection, so a slow party never stalls the
//       cohort. Async supports ClientAlgo::kSgd (with FedProx mu),
//       DP, and the lossy uplink codecs; SCAFFOLD / FedDyn / masking
//       are round-synchronous by construction and rejected at build
//       time, as is StragglerMode::kDeadline (the staleness cutoff
//       subsumes it — there is no round to bound). Under DP the fold
//       weights are the staleness discounts (unit base weight, as in
//       sync DP-FedAvg) and the noise sigma is calibrated on the
//       weighted-mean sensitivity clip * max(w) / sum(w), which
//       reduces to the sync clip / K when all weights are equal. The
//       downlink ships the full model per dispatch (no
//       broadcast-delta compression).
//
// Ownership: the session owns (or shares) its parties — a value
// vector or a shared_ptr<const std::vector<Party>> — so a session can
// outlive the scope that built it. The legacy FlJob shim (fl/job.h)
// wraps its borrowed reference in a non-owning alias and reproduces
// the original blocking run() bit-for-bit on top of advance().
//
// Observers (fl/observer.h) fire on the stepping thread in
// registration order; the session's own byte/fairness/target
// accounting is one of them (fl::ResultAccounting). Async sessions
// additionally emit on_arrival per queue pop.
//
// Determinism: per-(step,party) RNG streams (async streams are keyed
// by the monotone dispatch sequence, so re-dispatches draw fresh
// noise), cohort/arrival-ordered reductions, strict-FP aggregation —
// so every step is bit-identical for any thread count, whether the
// worker pool is owned or shared with other sessions
// (fl/session_pool.h). Async arrival order is a pure function of the
// simulated durations: ties break on the dispatch sequence.
#pragma once

#include <cmath>
#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "fl/aggregator.h"
#include "fl/job.h"
#include "fl/observer.h"
#include "ml/tensor.h"
#include "net/codec.h"
#include "net/device.h"
#include "net/faults.h"
#include "privacy/dp.h"

namespace flips::fl {

/// FedBuff-style staleness discount for an update dispatched
/// `staleness` server steps ago: 1 / sqrt(1 + s). Multiplies the
/// update's base (sample-count, or 1.0 under DP) fold weight.
inline double staleness_discount(std::size_t staleness) {
  return 1.0 / std::sqrt(1.0 + static_cast<double>(staleness));
}

class FederationSession {
 public:
  /// Shared party ownership: the alias may point into a larger cached
  /// structure (the bench engine aliases its federation cache).
  FederationSession(FlJobConfig config,
                    std::shared_ptr<const std::vector<Party>> parties,
                    data::Dataset global_test, ml::Sequential model,
                    std::unique_ptr<ParticipantSelector> selector,
                    common::ThreadPool* shared_pool = nullptr);

  /// Value ownership: the session keeps its own copy of the fleet.
  FederationSession(FlJobConfig config, std::vector<Party> parties,
                    data::Dataset global_test, ml::Sequential model,
                    std::unique_ptr<ParticipantSelector> selector,
                    common::ThreadPool* shared_pool = nullptr);

  FederationSession(const FederationSession&) = delete;
  FederationSession& operator=(const FederationSession&) = delete;
  ~FederationSession();

  /// Registers an observer (called in registration order). Raw
  /// pointers are borrowed and must outlive the session; the shared
  /// overload keeps the observer alive with the session.
  void add_observer(RoundObserver* observer);
  void add_observer(std::shared_ptr<RoundObserver> observer);

  /// True once every configured server step has run (immediately true
  /// for an empty federation or a zero-round config, matching
  /// FlJob::run()). An async session can also exhaust early if the
  /// selector stops producing dispatchable parties.
  [[nodiscard]] bool done() const;

  /// Runs the next server step (sync: one barrier round; async: one
  /// buffered step) and returns its record — the single public
  /// stepping entry point (the sync-only run_round() alias is gone).
  /// Throws std::logic_error when done().
  const RoundRecord& advance();

  /// Server steps completed so far.
  std::size_t rounds_completed() const { return next_round_ - 1; }

  /// Result snapshot over the rounds run so far; callable at any time
  /// (after done(), bit-identical to what FlJob::run() returned).
  [[nodiscard]] FlJobResult result() const;

  ParticipantSelector& selector() { return *selector_; }
  const std::vector<Party>& parties() const { return *parties_; }
  const FlJobConfig& config() const { return config_; }
  /// Current global model parameters (the server replica).
  const std::vector<double>& parameters() const { return global_params_; }

 private:
  struct PartyOutcome;
  struct InFlight;

  common::ThreadPool& pool() {
    return shared_pool_ != nullptr ? *shared_pool_ : *owned_pool_;
  }

  // ---- Sync pipeline stages (one call each per sync advance). ----
  const RoundRecord& sync_step();
  std::vector<std::size_t> select_cohort(std::size_t round);
  /// Trains the cohort; under a fault plan, follows up with backfill
  /// waves that replace fault-failed slots from the selector (cohort
  /// grows in place). Returns the round's simulated elapsed seconds
  /// (wave maxima + backoffs).
  double train_cohort(std::size_t round, std::vector<std::size_t>& cohort,
                      RoundRecord& record);
  /// One parallel dispatch wave writing outcomes_[slot_offset ...].
  /// Returns the wave's max simulated duration.
  double train_wave(std::size_t round,
                    const std::vector<std::size_t>& wave,
                    std::size_t slot_offset, double dispatch_time_s);
  void fold_outcomes(const std::vector<std::size_t>& cohort,
                     RoundRecord& record, std::uint64_t& up_bytes);
  std::uint64_t server_step(std::vector<double>& aggregate,
                            const std::vector<std::size_t>& cohort,
                            bool apply);
  void evaluate_round(std::size_t round, RoundRecord& record);

  /// Stamp the end of a phase that started at `start_ns` and fan it
  /// out to observers (telemetry; not part of the simulated clock).
  void emit_phase(std::size_t round, SessionPhase phase,
                  std::uint64_t start_ns);

  // ---- Async (FedBuff) engine. ----
  /// Refills freed in-flight slots from the selector, trains the new
  /// dispatch batch in parallel, and schedules its arrivals. Returns
  /// the number of parties dispatched.
  std::size_t refill_inflight(std::size_t step);
  /// Simulates one in-flight dispatch (duration, faults, local
  /// training, codec, DP clip). Runs on a worker during the dispatch
  /// batch and inline on the stepping thread for retries — the result
  /// only depends on the slot's seq-keyed RNG stream.
  void train_one_dispatch(InFlight& flight, std::size_t step);
  /// One buffered server step: pop arrivals until buffer_k of them
  /// fold (or the queue drains), then step the server.
  const RoundRecord& async_step();

  FlJobConfig config_;
  std::shared_ptr<const std::vector<Party>> parties_;
  data::Dataset global_test_;
  ml::Sequential model_;
  std::unique_ptr<ParticipantSelector> selector_;

  common::ThreadPool* shared_pool_ = nullptr;
  std::unique_ptr<common::ThreadPool> owned_pool_;

  // Observer sinks. accounting_ absorbs the byte/fairness/target
  // bookkeeping and runs before user observers.
  std::vector<RoundObserver*> observers_;
  std::vector<std::shared_ptr<RoundObserver>> owned_observers_;
  ResultAccounting accounting_;

  // ---- Cross-round state (what the monolithic run() kept in locals).
  bool inert_ = false;  ///< empty federation / zero rounds
  std::size_t next_round_ = 1;
  std::size_t dim_ = 0;
  std::uint64_t model_bytes_ = 0;
  std::vector<double> global_params_;
  ml::Tensor test_features_;
  common::Rng rng_;  ///< feeds only DP noise after party streams split
  ServerOptimizer server_;
  ml::SgdOptimizer local_sgd_;
  privacy::RdpAccountant accountant_;

  std::vector<std::vector<double>> scaffold_ci_;
  std::vector<double> scaffold_c_;
  std::vector<double> scaffold_c_round_;
  std::vector<std::vector<double>> feddyn_hi_;

  bool dp_on_ = false;
  bool masking_on_ = false;

  // Aggregation plane + wire codec state (see fl/job.h for the codec
  // contract; buffers recycle across rounds — zero steady-state
  // allocation).
  BufferArena arena_;
  StreamingAggregator aggregator_;
  bool codec_on_ = false;
  net::UpdateCodec codec_;
  std::vector<std::vector<double>> ef_residuals_;
  std::vector<double> server_residual_;
  common::Rng broadcast_rng_;
  net::EncodedUpdate broadcast_enc_;
  net::CodecWorkspace broadcast_ws_;
  std::vector<double> broadcast_wire_;

  // Hoisted per-round containers: capacity survives across rounds.
  std::vector<PartyOutcome> outcomes_;
  std::vector<PartyFeedback> feedback_;

  // ---- Async (FedBuff) engine state. Slots are in-flight dispatch
  // records; the arrival queue holds (time, seq, slot) events. The
  // stepping thread owns all of it — workers only fill their own
  // dispatch record during the parallel training batch.
  std::vector<InFlight> inflight_;
  std::vector<std::size_t> free_slots_;
  std::vector<char> party_in_flight_;  ///< per-party dispatch guard
  net::ArrivalQueue arrivals_;
  std::uint64_t dispatch_seq_ = 0;
  std::size_t server_version_ = 0;  ///< completed async server steps
  double sim_time_s_ = 0.0;         ///< async simulated clock
  std::size_t buffer_k_ = 0;        ///< resolved async.buffer_k
  bool exhausted_ = false;          ///< async: no arrivals left to drive

  // ---- Fault plan (FlJobConfig::faults). When faults_on_ is false
  // every path above is byte-identical to a fault-free build; the
  // plan's churn cursor is only touched on the stepping thread.
  net::FaultPlan faults_;
  bool faults_on_ = false;

  std::vector<RoundRecord> history_;
};

}  // namespace flips::fl
