// The steppable federation driver. FederationSession holds one FL
// job's full cross-round state — global model replica, server
// optimizer moments, client drift-correction state (SCAFFOLD /
// FedDyn), codec error-feedback residuals, the zero-copy aggregation
// plane — and exposes the round pipeline
//   select → local-train → aggregate → server-step → eval
// one round at a time:
//
//   FederationSession session(config, parties, test, model, selector);
//   session.add_observer(&my_sink);
//   while (!session.done()) session.run_round();
//   FlJobResult result = session.result();
//
// Ownership: the session owns (or shares) its parties — a value
// vector or a shared_ptr<const std::vector<Party>> — so a session can
// outlive the scope that built it. The legacy FlJob shim (fl/job.h)
// wraps its borrowed reference in a non-owning alias and reproduces
// the original blocking run() bit-for-bit on top of run_round().
//
// Observers (fl/observer.h) fire on the stepping thread in
// registration order; the session's own byte/fairness/target
// accounting is one of them (fl::ResultAccounting). The legacy
// FlJobConfig::pre_round_hook is adapted into the first observer slot,
// so hook-based control planes keep their exact firing point.
//
// Determinism: identical to FlJob — per-(round,party) RNG streams,
// cohort-ordered reductions, strict-FP aggregation — so every round is
// bit-identical for any thread count, whether the worker pool is owned
// or shared with other sessions (fl/session_pool.h).
#pragma once

#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "fl/aggregator.h"
#include "fl/job.h"
#include "fl/observer.h"
#include "ml/tensor.h"
#include "net/codec.h"
#include "privacy/dp.h"

namespace flips::fl {

class FederationSession {
 public:
  /// Shared party ownership: the alias may point into a larger cached
  /// structure (the bench engine aliases its federation cache).
  FederationSession(FlJobConfig config,
                    std::shared_ptr<const std::vector<Party>> parties,
                    data::Dataset global_test, ml::Sequential model,
                    std::unique_ptr<ParticipantSelector> selector,
                    common::ThreadPool* shared_pool = nullptr);

  /// Value ownership: the session keeps its own copy of the fleet.
  FederationSession(FlJobConfig config, std::vector<Party> parties,
                    data::Dataset global_test, ml::Sequential model,
                    std::unique_ptr<ParticipantSelector> selector,
                    common::ThreadPool* shared_pool = nullptr);

  FederationSession(const FederationSession&) = delete;
  FederationSession& operator=(const FederationSession&) = delete;
  ~FederationSession();

  /// Registers an observer (called in registration order). Raw
  /// pointers are borrowed and must outlive the session; the shared
  /// overload keeps the observer alive with the session.
  void add_observer(RoundObserver* observer);
  void add_observer(std::shared_ptr<RoundObserver> observer);

  /// True once every configured round has run (immediately true for an
  /// empty federation or a zero-round config, matching FlJob::run()).
  [[nodiscard]] bool done() const;

  /// Runs the next round and returns its record. Throws
  /// std::logic_error when done().
  const RoundRecord& run_round();

  /// Rounds completed so far.
  std::size_t rounds_completed() const { return next_round_ - 1; }

  /// Result snapshot over the rounds run so far; callable at any time
  /// (after done(), bit-identical to what FlJob::run() returned).
  [[nodiscard]] FlJobResult result() const;

  ParticipantSelector& selector() { return *selector_; }
  const std::vector<Party>& parties() const { return *parties_; }
  const FlJobConfig& config() const { return config_; }
  /// Current global model parameters (the server replica).
  const std::vector<double>& parameters() const { return global_params_; }

 private:
  common::ThreadPool& pool() {
    return shared_pool_ != nullptr ? *shared_pool_ : *owned_pool_;
  }

  // ---- Round pipeline stages (one call each per run_round). ----
  std::vector<std::size_t> select_cohort(std::size_t round);
  void train_cohort(std::size_t round,
                    const std::vector<std::size_t>& cohort);
  void fold_outcomes(const std::vector<std::size_t>& cohort,
                     RoundRecord& record, std::uint64_t& up_bytes);
  std::uint64_t server_step(std::vector<double>& aggregate,
                            const std::vector<std::size_t>& cohort);
  void evaluate_round(std::size_t round, RoundRecord& record);

  FlJobConfig config_;
  std::shared_ptr<const std::vector<Party>> parties_;
  data::Dataset global_test_;
  ml::Sequential model_;
  std::unique_ptr<ParticipantSelector> selector_;

  common::ThreadPool* shared_pool_ = nullptr;
  std::unique_ptr<common::ThreadPool> owned_pool_;

  // Observer sinks. hook_observer_ adapts config_.pre_round_hook and
  // always runs first; accounting_ absorbs the byte/fairness/target
  // bookkeeping and runs before user observers.
  std::vector<RoundObserver*> observers_;
  std::vector<std::shared_ptr<RoundObserver>> owned_observers_;
  std::unique_ptr<RoundObserver> hook_observer_;
  ResultAccounting accounting_;

  // ---- Cross-round state (what the monolithic run() kept in locals).
  bool inert_ = false;  ///< empty federation / zero rounds
  std::size_t next_round_ = 1;
  std::size_t dim_ = 0;
  std::uint64_t model_bytes_ = 0;
  std::vector<double> global_params_;
  ml::Tensor test_features_;
  common::Rng rng_;  ///< feeds only DP noise after party streams split
  ServerOptimizer server_;
  ml::SgdOptimizer local_sgd_;
  privacy::RdpAccountant accountant_;

  std::vector<std::vector<double>> scaffold_ci_;
  std::vector<double> scaffold_c_;
  std::vector<double> scaffold_c_round_;
  std::vector<std::vector<double>> feddyn_hi_;

  bool dp_on_ = false;
  bool masking_on_ = false;

  // Aggregation plane + wire codec state (see fl/job.h for the codec
  // contract; buffers recycle across rounds — zero steady-state
  // allocation).
  BufferArena arena_;
  StreamingAggregator aggregator_;
  bool codec_on_ = false;
  net::UpdateCodec codec_;
  std::vector<std::vector<double>> ef_residuals_;
  std::vector<double> server_residual_;
  common::Rng broadcast_rng_;
  net::EncodedUpdate broadcast_enc_;
  net::CodecWorkspace broadcast_ws_;
  std::vector<double> broadcast_wire_;

  // Hoisted per-round containers: capacity survives across rounds.
  struct PartyOutcome;
  std::vector<PartyOutcome> outcomes_;
  std::vector<PartyFeedback> feedback_;

  std::vector<RoundRecord> history_;
};

}  // namespace flips::fl
