#include "fl/metrics_observer.h"

#include <chrono>
#include <stdexcept>

#include "fl/job.h"

namespace flips::fl {

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Phase durations span sub-microsecond folds to minutes of training.
constexpr obs::HistogramConfig kPhaseConfig{1e-7, 1e3, 3};
/// Staleness in server steps; FedBuff cutoffs are small integers.
constexpr obs::HistogramConfig kStalenessConfig{1.0, 4096.0, 2};
/// Retry backoffs: exponential schedules from milliseconds to ~hours
/// of simulated time.
constexpr obs::HistogramConfig kBackoffConfig{1e-3, 1e4, 3};

}  // namespace

MetricsObserver::MetricsObserver(std::string tenant, obs::Registry* registry,
                                 obs::Tracer* tracer)
    : tenant_(std::move(tenant)), tracer_(tracer) {
  const obs::Labels t{{"tenant", tenant_}};
  rounds_ = &registry->counter("flips_session_rounds_total", t);
  upload_bytes_ = &registry->counter("flips_session_upload_bytes_total", t);
  download_bytes_ =
      &registry->counter("flips_session_download_bytes_total", t);
  dropped_stale_ =
      &registry->counter("flips_session_dropped_stale_total", t);
  accuracy_ = &registry->gauge("flips_session_accuracy", t);
  sim_time_s_ = &registry->gauge("flips_session_sim_time_seconds", t);
  trace_dropped_ = &registry->gauge("flips_trace_dropped_spans", t);
  for (std::size_t i = 0; i < kNumSessionPhases; ++i) {
    obs::Labels labels = t;
    labels.emplace_back("phase", to_string(static_cast<SessionPhase>(i)));
    phase_seconds_[i] = &registry->histogram("flips_session_phase_seconds",
                                             labels, kPhaseConfig);
  }
  const char* party_outcomes[] = {"failed", "responded"};
  for (std::size_t i = 0; i < 2; ++i) {
    obs::Labels labels = t;
    labels.emplace_back("outcome", party_outcomes[i]);
    parties_[i] = &registry->counter("flips_session_parties_total", labels);
  }
  const char* arrival_outcomes[] = {"folded", "dropped_stale", "failed"};
  for (std::size_t i = 0; i < 3; ++i) {
    obs::Labels labels = t;
    labels.emplace_back("outcome", arrival_outcomes[i]);
    arrivals_[i] = &registry->counter("flips_session_arrivals_total", labels);
  }
  staleness_ =
      &registry->histogram("flips_session_staleness", t, kStalenessConfig);
  const char* fault_events[] = {"crashed", "retried", "backfilled",
                                "quorum_skipped"};
  for (std::size_t i = 0; i < 4; ++i) {
    obs::Labels labels = t;
    labels.emplace_back("event", fault_events[i]);
    faults_[i] = &registry->counter("flips_faults_total", labels);
  }
  retry_backoff_s_ = &registry->histogram("flips_faults_retry_backoff_seconds",
                                          t, kBackoffConfig);
}

void MetricsObserver::on_round_begin(std::size_t round,
                                     ParticipantSelector& selector) {
  (void)round;
  (void)selector;
  round_start_ns_ = steady_now_ns();
  round_span_id_ = tracer_->next_id();
}

void MetricsObserver::on_party_feedback(std::size_t round,
                                        const PartyFeedback& feedback) {
  (void)round;
  parties_[feedback.responded ? 1 : 0]->inc();
}

void MetricsObserver::on_arrival(std::size_t round,
                                 const ArrivalRecord& arrival) {
  (void)round;
  arrivals_[static_cast<std::size_t>(arrival.outcome)]->inc();
  staleness_->record(static_cast<double>(arrival.staleness));
}

void MetricsObserver::on_phase(std::size_t round, const PhaseRecord& record) {
  const auto i = static_cast<std::size_t>(record.phase);
  if (i >= kNumSessionPhases) return;
  phase_seconds_[i]->record(record.duration_s());
  if (tracer_->enabled()) {
    obs::Span span;
    span.set_name(to_string(record.phase));
    span.set_tenant(tenant_.c_str());
    span.id = tracer_->next_id();
    span.parent = round_span_id_;
    span.round = round;
    span.start_ns = record.start_ns;
    span.end_ns = record.end_ns;
    span.sim_time_s = record.sim_time_s;
    tracer_->record(span);
  }
}

void MetricsObserver::on_retry(std::size_t round,
                               const RetryRecord& record) {
  (void)round;
  retry_backoff_s_->record(record.backoff_s);
}

void MetricsObserver::on_round_end(std::size_t round,
                                   const RoundRecord& record) {
  rounds_->inc();
  upload_bytes_->inc(record.upload_bytes);
  download_bytes_->inc(record.download_bytes);
  dropped_stale_->inc(record.dropped_stale);
  faults_[0]->inc(record.crashed);
  faults_[1]->inc(record.retried);
  faults_[2]->inc(record.backfilled);
  if (record.quorum_skipped) faults_[3]->inc();
  accuracy_->set(record.balanced_accuracy);
  sim_time_s_->add(record.round_time_s);
  if (tracer_->enabled()) {
    obs::Span span;
    span.set_name("round");
    span.set_tenant(tenant_.c_str());
    span.id = round_span_id_;
    span.parent = 0;
    span.round = round;
    span.start_ns = round_start_ns_;
    span.end_ns = steady_now_ns();
    tracer_->record(span);
    // Stepping thread drains its own spans: the ring only has to
    // absorb one round's worth, and a full ring still never blocks.
    tracer_->drain();
    trace_dropped_->set(static_cast<double>(tracer_->dropped()));
  }
}

// ---------------------------------------------------------------------------
// JsonlRoundObserver

JsonlRoundObserver::SharedFile::SharedFile(const std::string& path)
    : file(std::fopen(path.c_str(), "w")) {
  if (file == nullptr) {
    throw std::runtime_error("metrics-out: cannot open " + path);
  }
}

JsonlRoundObserver::SharedFile::~SharedFile() {
  if (file != nullptr) std::fclose(file);
}

JsonlRoundObserver::JsonlRoundObserver(std::shared_ptr<SharedFile> out,
                                       std::size_t run)
    : out_(std::move(out)), run_(run) {}

void JsonlRoundObserver::on_phase(std::size_t round,
                                  const PhaseRecord& record) {
  (void)round;
  const auto i = static_cast<std::size_t>(record.phase);
  if (i < kNumSessionPhases) phase_s_[i] = record.duration_s();
}

void JsonlRoundObserver::on_round_end(std::size_t round,
                                      const RoundRecord& record) {
  std::lock_guard<std::mutex> lock(out_->mu);
  std::fprintf(out_->file,
               "{\"run\":%zu,\"round\":%zu,\"accuracy\":%.6f,"
               "\"upload_bytes\":%llu,\"download_bytes\":%llu,"
               "\"dropped_stale\":%zu,\"round_time_s\":%.6f",
               run_, round, record.balanced_accuracy,
               static_cast<unsigned long long>(record.upload_bytes),
               static_cast<unsigned long long>(record.download_bytes),
               record.dropped_stale, record.round_time_s);
  std::fprintf(out_->file, ",\"phases\":{");
  for (std::size_t i = 0; i < kNumSessionPhases; ++i) {
    std::fprintf(out_->file, "%s\"%s\":%.9f", i == 0 ? "" : ",",
                 to_string(static_cast<SessionPhase>(i)), phase_s_[i]);
  }
  std::fprintf(out_->file, "}}\n");
  std::fflush(out_->file);
  phase_s_.fill(0.0);
}

}  // namespace flips::fl
