// Participant-selection interface shared by the FL job and the
// strategies under selection/. Selectors may return MORE parties than
// requested (FLIPS over-provisions against stragglers); the job treats
// everything returned as selected and reports per-party feedback after
// the round so stateful selectors (Oort, GradClus, pow-d) can learn.
#pragma once

#include <cstddef>
#include <vector>

namespace flips::fl {

struct PartyFeedback {
  std::size_t party_id = 0;
  bool responded = false;      ///< false = straggled / dropped
  std::size_t num_samples = 0;
  double mean_loss = 0.0;      ///< mean training loss over local epochs
  double loss_rms = 0.0;       ///< sqrt(mean loss^2) — Oort's utility core
  double duration_s = 0.0;     ///< simulated local wall time
  std::vector<double> delta;   ///< parameter update (GradClus input)
};

class ParticipantSelector {
 public:
  virtual ~ParticipantSelector() = default;

  /// Picks the cohort for 1-based `round`. `num_required` is Nr; the
  /// returned cohort must be duplicate-free and may exceed Nr.
  virtual std::vector<std::size_t> select(std::size_t round,
                                          std::size_t num_required) = 0;

  /// Post-round outcome for every selected party.
  virtual void report_round(std::size_t round,
                            const std::vector<PartyFeedback>& feedback) {
    (void)round;
    (void)feedback;
  }

  virtual const char* name() const { return "selector"; }
};

}  // namespace flips::fl
