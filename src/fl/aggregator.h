// Server-side streaming aggregation plane.
//
// BufferArena leases fixed-dim delta buffers to the round loop and
// takes them back when the round is over, so the steady-state round
// loop performs zero heap allocations on the aggregation path (the
// property bench_micro_aggregate's allocation counter pins).
//
// StreamingAggregator replaces the collect-then-fold pattern
// (`std::vector<LocalUpdate>` + `aggregate_updates`): workers submit
// each party's weighted delta as soon as the party finishes training,
// and the aggregator folds complete blocks of consecutive cohort slots
// into the accumulator while later parties are still training. The
// fold kernel is a register-blocked fused weighted-axpy that processes
// up to kFoldBlock party rows per accumulator sweep — the same
// per-coordinate left-to-right addition chain as a one-party-at-a-time
// fold, so the result is bit-identical for every thread count, every
// submission order, and every block partition (the PR 2 invariant
// test_fl_job asserts). Strict FP: this file must never build with
// -ffast-math.
#pragma once

#include <cstddef>
#include <mutex>
#include <vector>

namespace flips::fl {

/// Thread-safe pool of reusable `std::vector<double>` buffers. Buffers
/// move in and out of the pool (no copies); after one warm-up round the
/// lease/release cycle allocates nothing as long as the requested dim
/// does not grow.
class BufferArena {
 public:
  /// Leases a buffer resized to `dim` (contents unspecified).
  [[nodiscard]] std::vector<double> lease(std::size_t dim);

  /// Returns a buffer to the pool. Empty vectors are dropped.
  void release(std::vector<double> buffer);

  /// Buffers currently parked in the pool (diagnostics / tests).
  std::size_t pooled() const;

 private:
  mutable std::mutex mutex_;
  std::vector<std::vector<double>> free_;
};

/// Streaming weighted-mean aggregator over a round's cohort.
///
/// Protocol per round:
///   begin_round(dim, cohort_size);
///   for every slot k (from any thread, in any order): either
///     submit(k, weight, delta)   — delta.size() must equal dim — or
///     skip(k)                    — non-responder;
///   finalize()                   — after all slots are resolved.
///
/// submit() folds every complete kFoldBlock-aligned block of
/// consecutive resolved slots whose members all responded or skipped,
/// overlapping aggregation with the training phase; finalize() drains
/// the tail and divides by the total weight. Submitted buffers are
/// borrowed: they must stay alive and unmodified until finalize()
/// returns.
class StreamingAggregator {
 public:
  /// Parties folded per accumulator sweep (fixed block partition of the
  /// cohort; the partition never changes the result, only traffic).
  static constexpr std::size_t kFoldBlock = 8;

  /// Starts a round. The accumulator and slot table are reused across
  /// rounds (no steady-state allocation once cohort/dim peak).
  void begin_round(std::size_t dim, std::size_t cohort_size);

  /// Registers slot `k`'s weighted delta and folds any newly completed
  /// blocks. Throws std::invalid_argument on a dimension mismatch
  /// (mixed-dim updates silently shrank under the old max-padding
  /// aggregate_updates — rejected here instead). Thread-safe.
  void submit(std::size_t slot, double weight,
              const std::vector<double>& delta);

  /// Marks slot `k` as a non-responder. Thread-safe.
  void skip(std::size_t slot);

  /// Folds the remaining slots in cohort order and returns the
  /// weighted mean (empty when no slot contributed). The reference is
  /// valid until the next begin_round. Single-threaded (call after the
  /// parallel phase).
  [[nodiscard]] std::vector<double>& finalize();

  /// Responding slots folded so far this round.
  std::size_t contributions() const { return contributions_; }

 private:
  enum class SlotState : unsigned char { kPending, kReady, kSkipped };

  /// Folds resolved blocks starting at folded_; `drain` also folds a
  /// trailing partial block (finalize only). Caller holds fold_mutex_.
  void fold_ready_prefix(bool drain);

  std::size_t dim_ = 0;
  std::size_t cohort_ = 0;
  std::vector<double> acc_;

  std::mutex state_mutex_;  ///< guards slot table + folded_ cursor
  std::mutex fold_mutex_;   ///< serializes fold kernels (try-lock)
  std::vector<SlotState> states_;
  std::vector<const double*> rows_;
  std::vector<double> weights_;
  std::size_t folded_ = 0;  ///< slots [0, folded_) already in acc_
  std::size_t resolved_ = 0;
  std::size_t contributions_ = 0;
  double total_weight_ = 0.0;
  bool finalized_ = false;
};

}  // namespace flips::fl
