#include "fl/aggregator.h"

#include <chrono>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/metrics.h"

namespace flips::fl {

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Process-wide aggregation-plane instruments. Registered once on first
// use (function-local static); the hot paths below only touch the
// cached pointers — relaxed atomics, no allocation, preserving the
// arena's zero-steady-state-allocation contract.
struct ArenaInstruments {
  obs::Counter* leases;
  obs::Counter* misses;  ///< leases served by a fresh allocation
  obs::Gauge* pooled;
};

const ArenaInstruments& arena_instruments() {
  static const ArenaInstruments g{
      &obs::Registry::global().counter("flips_arena_leases_total"),
      &obs::Registry::global().counter("flips_arena_misses_total"),
      &obs::Registry::global().gauge("flips_arena_pooled")};
  return g;
}

struct AggInstruments {
  obs::Counter* folds;            ///< fold-kernel sweeps
  obs::Histogram* fold_seconds;   ///< wall time per productive sweep
};

const AggInstruments& agg_instruments() {
  static const AggInstruments g{
      &obs::Registry::global().counter("flips_agg_folds_total"),
      &obs::Registry::global().histogram("flips_agg_fold_seconds", {},
                                         {1e-9, 10.0, 3})};
  return g;
}

}  // namespace

std::vector<double> BufferArena::lease(std::size_t dim) {
  const ArenaInstruments& ins = arena_instruments();
  std::vector<double> buffer;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!free_.empty()) {
      buffer = std::move(free_.back());
      free_.pop_back();
    }
    ins.pooled->set(static_cast<double>(free_.size()));
  }
  ins.leases->inc();
  if (buffer.capacity() < dim) ins.misses->inc();
  buffer.resize(dim);
  return buffer;
}

void BufferArena::release(std::vector<double> buffer) {
  if (buffer.capacity() == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  free_.push_back(std::move(buffer));
  arena_instruments().pooled->set(static_cast<double>(free_.size()));
}

std::size_t BufferArena::pooled() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return free_.size();
}

namespace {

/// Folds N party rows into the accumulator: for every coordinate i,
///   acc[i] = ((acc[i] + w0*r0[i]) + w1*r1[i]) + ... + w{N-1}*r{N-1}[i]
/// — a strict left-to-right chain, so folding parties in blocks of any
/// size produces exactly the bits of a one-at-a-time fold. Register
/// blocking over a 16-coordinate strip amortizes the accumulator
/// load/store over N rows (the old path re-swept the accumulator once
/// per party) and gives the compiler independent lanes to vectorize.
/// always_inline so each fold_rows target clone compiles its own
/// ISA-wide copy.
template <std::size_t N>
[[gnu::always_inline]] inline void fold_rows_fixed(
    double* __restrict acc, const double* const* rows,
    const double* weights, std::size_t dim) {
  // Named scalar accumulators (not a local array): gcc SLP-packs them
  // into vector registers and keeps the per-coordinate add chains
  // independent; an indexed array here makes it vectorize across the
  // party dimension with ordered horizontal reductions instead (~2x
  // slower than the legacy loop).
  std::size_t i = 0;
  for (; i + 8 <= dim; i += 8) {
    double a0 = acc[i];
    double a1 = acc[i + 1];
    double a2 = acc[i + 2];
    double a3 = acc[i + 3];
    double a4 = acc[i + 4];
    double a5 = acc[i + 5];
    double a6 = acc[i + 6];
    double a7 = acc[i + 7];
    for (std::size_t p = 0; p < N; ++p) {  // N is constexpr: unrolled
      const double w = weights[p];
      const double* __restrict r = rows[p] + i;
      a0 += w * r[0];
      a1 += w * r[1];
      a2 += w * r[2];
      a3 += w * r[3];
      a4 += w * r[4];
      a5 += w * r[5];
      a6 += w * r[6];
      a7 += w * r[7];
    }
    acc[i] = a0;
    acc[i + 1] = a1;
    acc[i + 2] = a2;
    acc[i + 3] = a3;
    acc[i + 4] = a4;
    acc[i + 5] = a5;
    acc[i + 6] = a6;
    acc[i + 7] = a7;
  }
  for (; i < dim; ++i) {
    double a = acc[i];
    for (std::size_t p = 0; p < N; ++p) {
      a += weights[p] * rows[p][i];
    }
    acc[i] = a;
  }
}

// TSan cannot run target_clones binaries (the IFUNC resolver fires
// before the TSan runtime is up — instant segfault on gcc 12), so the
// multiversioning is compiled out under -fsanitize=thread. Results are
// identical either way: every clone is bit-identical by construction.
#if defined(__SANITIZE_THREAD__)
#define FLIPS_FOLD_CLONES
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define FLIPS_FOLD_CLONES
#endif
#endif
#ifndef FLIPS_FOLD_CLONES
#define FLIPS_FOLD_CLONES \
  __attribute__((target_clones("default", "avx2", "avx512f")))
#endif

/// Dispatches a run of `count` rows through the fixed-size kernels in
/// party order (8s, then 4, 2, 1) — the chain through acc stays strict
/// left-to-right across calls.
///
/// target_clones: the CMakeLists pins -ffp-contract=off for this file,
/// so the AVX2/AVX-512 clones issue separate vmulpd/vaddpd (no FMA
/// contraction) and every clone — and every SIMD width — produces
/// exactly the scalar chain's bits. The clones only buy lane width.
FLIPS_FOLD_CLONES void
fold_rows(double* acc, const double* const* rows,
          const double* weights, std::size_t count, std::size_t dim) {
  while (count >= 8) {
    fold_rows_fixed<8>(acc, rows, weights, dim);
    rows += 8;
    weights += 8;
    count -= 8;
  }
  if (count >= 4) {
    fold_rows_fixed<4>(acc, rows, weights, dim);
    rows += 4;
    weights += 4;
    count -= 4;
  }
  if (count >= 2) {
    fold_rows_fixed<2>(acc, rows, weights, dim);
    rows += 2;
    weights += 2;
    count -= 2;
  }
  if (count == 1) {
    fold_rows_fixed<1>(acc, rows, weights, dim);
  }
}

}  // namespace

void StreamingAggregator::begin_round(std::size_t dim,
                                      std::size_t cohort_size) {
  std::scoped_lock lock(fold_mutex_, state_mutex_);
  dim_ = dim;
  cohort_ = cohort_size;
  acc_.assign(dim, 0.0);
  states_.assign(cohort_size, SlotState::kPending);
  rows_.assign(cohort_size, nullptr);
  weights_.assign(cohort_size, 0.0);
  folded_ = 0;
  resolved_ = 0;
  contributions_ = 0;
  total_weight_ = 0.0;
  finalized_ = false;
}

void StreamingAggregator::submit(std::size_t slot, double weight,
                                 const std::vector<double>& delta) {
  if (delta.size() != dim_) {
    throw std::invalid_argument(
        "StreamingAggregator::submit: update dimension " +
        std::to_string(delta.size()) + " does not match round dimension " +
        std::to_string(dim_) +
        " (mixed-dimension updates are rejected, not max-padded)");
  }
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (slot >= cohort_ || states_[slot] != SlotState::kPending) {
      throw std::invalid_argument(
          "StreamingAggregator::submit: bad or duplicate slot " +
          std::to_string(slot));
    }
    rows_[slot] = delta.data();
    weights_[slot] = weight;
    states_[slot] = SlotState::kReady;
    ++resolved_;
  }
  // Opportunistic streaming fold: whoever gets the fold lock advances
  // the block-aligned ready prefix; a failed try_lock just defers the
  // work to the current holder's rescan or to finalize().
  std::unique_lock<std::mutex> fold(fold_mutex_, std::try_to_lock);
  if (fold.owns_lock()) fold_ready_prefix(/*drain=*/false);
}

void StreamingAggregator::skip(std::size_t slot) {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (slot >= cohort_ || states_[slot] != SlotState::kPending) {
      throw std::invalid_argument(
          "StreamingAggregator::skip: bad or duplicate slot " +
          std::to_string(slot));
    }
    states_[slot] = SlotState::kSkipped;
    ++resolved_;
  }
  std::unique_lock<std::mutex> fold(fold_mutex_, std::try_to_lock);
  if (fold.owns_lock()) fold_ready_prefix(/*drain=*/false);
}

void StreamingAggregator::fold_ready_prefix(bool drain) {
  std::uint64_t fold_start_ns = 0;  ///< set by the first productive sweep
  for (;;) {
    std::size_t begin = 0;
    std::size_t end = 0;
    {
      std::lock_guard<std::mutex> lock(state_mutex_);
      begin = folded_;
      end = begin;
      while (end < cohort_ && states_[end] != SlotState::kPending) ++end;
      if (!drain) end -= end % kFoldBlock;  // only whole aligned blocks
      if (end <= begin) break;
      folded_ = end;
    }
    if (fold_start_ns == 0) fold_start_ns = steady_now_ns();
    // Slots in [begin, end) are resolved: their rows_/weights_ entries
    // were published under state_mutex_ and are immutable from now on.
    const double* run_rows[kFoldBlock];
    double run_weights[kFoldBlock];
    std::size_t run = 0;
    for (std::size_t slot = begin; slot < end; ++slot) {
      if (states_[slot] != SlotState::kReady) continue;
      run_rows[run] = rows_[slot];
      run_weights[run] = weights_[slot];
      total_weight_ += weights_[slot];
      ++contributions_;
      if (++run == kFoldBlock) {
        fold_rows(acc_.data(), run_rows, run_weights, run, dim_);
        run = 0;
      }
    }
    if (run > 0) fold_rows(acc_.data(), run_rows, run_weights, run, dim_);
  }
  if (fold_start_ns != 0) {
    const AggInstruments& ins = agg_instruments();
    ins.folds->inc();
    ins.fold_seconds->record(
        static_cast<double>(steady_now_ns() - fold_start_ns) * 1e-9);
  }
}

std::vector<double>& StreamingAggregator::finalize() {
  std::lock_guard<std::mutex> fold(fold_mutex_);
  if (!finalized_) {
    {
      std::lock_guard<std::mutex> lock(state_mutex_);
      if (resolved_ != cohort_) {
        throw std::logic_error(
            "StreamingAggregator::finalize: unresolved slots remain");
      }
    }
    fold_ready_prefix(/*drain=*/true);
    if (contributions_ == 0) {
      acc_.clear();
    } else if (total_weight_ > 0.0) {
      for (double& v : acc_) v /= total_weight_;
    }
    finalized_ = true;
  }
  return acc_;
}

}  // namespace flips::fl
