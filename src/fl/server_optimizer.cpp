#include "fl/server_optimizer.h"

#include <cmath>
#include <stdexcept>
#include <string>

namespace flips::fl {

const char* to_string(ServerOpt opt) {
  switch (opt) {
    case ServerOpt::kFedAvg:
      return "fedavg";
    case ServerOpt::kFedAdagrad:
      return "fedadagrad";
    case ServerOpt::kFedAdam:
      return "fedadam";
    case ServerOpt::kFedYogi:
      return "fedyogi";
  }
  return "unknown";
}

std::vector<double> aggregate_updates(const std::vector<LocalUpdate>& updates) {
  if (updates.empty()) return {};
  // All updates must agree on the dimension. The old max-padding
  // behavior silently shrank the coordinates beyond a shorter delta
  // (they were still divided by the full total weight) — reject loudly
  // instead.
  const std::size_t dim = updates.front().delta.size();
  for (const auto& u : updates) {
    if (u.delta.size() != dim) {
      throw std::invalid_argument(
          "aggregate_updates: mixed update dimensions (" +
          std::to_string(u.delta.size()) + " vs " + std::to_string(dim) +
          ")");
    }
  }
  std::vector<double> out(dim, 0.0);
  double total_weight = 0.0;
  for (const auto& u : updates) {
    const double w =
        u.num_samples > 0 ? static_cast<double>(u.num_samples) : 1.0;
    total_weight += w;
    for (std::size_t i = 0; i < u.delta.size(); ++i) {
      out[i] += w * u.delta[i];
    }
  }
  if (total_weight > 0.0) {
    for (auto& v : out) v /= total_weight;
  }
  return out;
}

ServerOptimizer::ServerOptimizer(const ServerOptConfig& config,
                                 std::size_t dim)
    : config_(config), momentum_(dim, 0.0), second_moment_(dim, 0.0) {}

void ServerOptimizer::apply(std::vector<double>& params,
                            const std::vector<double>& pseudo_gradient) {
  ++step_;
  const std::size_t dim = params.size();
  const double lr = config_.learning_rate;

  if (config_.optimizer == ServerOpt::kFedAvg) {
    for (std::size_t i = 0; i < dim && i < pseudo_gradient.size(); ++i) {
      params[i] += lr * pseudo_gradient[i];
    }
    return;
  }

  const double b1 = config_.beta1;
  const double b2 = config_.beta2;
  for (std::size_t i = 0; i < dim && i < pseudo_gradient.size(); ++i) {
    const double g = pseudo_gradient[i];
    momentum_[i] = b1 * momentum_[i] + (1.0 - b1) * g;
    const double g2 = g * g;
    switch (config_.optimizer) {
      case ServerOpt::kFedAdagrad:
        second_moment_[i] += g2;
        break;
      case ServerOpt::kFedAdam:
        second_moment_[i] = b2 * second_moment_[i] + (1.0 - b2) * g2;
        break;
      case ServerOpt::kFedYogi: {
        const double sign =
            second_moment_[i] - g2 > 0.0
                ? 1.0
                : (second_moment_[i] - g2 < 0.0 ? -1.0 : 0.0);
        second_moment_[i] -= (1.0 - b2) * g2 * sign;
        break;
      }
      case ServerOpt::kFedAvg:
        break;
    }
    params[i] +=
        lr * momentum_[i] / (std::sqrt(std::max(second_moment_[i], 0.0)) +
                             config_.tau);
  }
}

}  // namespace flips::fl
