#include "ctrl/streaming_cluster_engine.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "cluster/dbi.h"
#include "cluster/minibatch_kmeans.h"
#include "common/stats.h"
#include "obs/metrics.h"

namespace flips::ctrl {

namespace {

// Control-plane instruments, registered once process-wide. submit()
// only bumps cached counters (relaxed atomics, no allocation); the
// reservoir/epoch gauges update on the rebuild path.
struct CtrlInstruments {
  obs::Counter* submissions;
  obs::Counter* rebuilds_lloyd;
  obs::Counter* rebuilds_minibatch;
  obs::Gauge* reservoir_points;
  obs::Gauge* epoch;
  obs::Gauge* clusters;
};

const CtrlInstruments& ctrl_instruments() {
  obs::Registry& r = obs::Registry::global();
  static const CtrlInstruments g{
      &r.counter("flips_ctrl_submissions_total"),
      &r.counter("flips_ctrl_rebuilds_total", {{"path", "lloyd"}}),
      &r.counter("flips_ctrl_rebuilds_total", {{"path", "minibatch"}}),
      &r.gauge("flips_ctrl_reservoir_points"),
      &r.gauge("flips_ctrl_epoch"),
      &r.gauge("flips_ctrl_clusters")};
  return g;
}

}  // namespace

StreamingClusterEngine::StreamingClusterEngine(
    const StreamingClusterConfig& config)
    : config_(config), epoch_(std::make_shared<const Epoch>()),
      drift_(config.drift) {
  config_.num_shards = std::max<std::size_t>(1, config_.num_shards);
  config_.shard_capacity = std::max<std::size_t>(1, config_.shard_capacity);
  shards_.reserve(config_.num_shards);
  for (std::size_t s = 0; s < config_.num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->rng = common::Rng(common::mix_seed(config_.seed, 0x5A4D, s));
    shards_.push_back(std::move(shard));
  }
}

StreamingClusterEngine::Shard& StreamingClusterEngine::shard_for(
    std::size_t party_id) {
  // Finalized hash, not a plain modulus: sequential party ids must not
  // all land in ascending shards in lock-step (that would serialize
  // round-robin submitters on neighbouring locks).
  return *shards_[common::mix_seed(config_.seed, 0x51A2D, party_id) %
                  shards_.size()];
}

std::shared_ptr<const StreamingClusterEngine::Epoch>
StreamingClusterEngine::current_epoch() const {
  std::lock_guard<std::mutex> lock(membership_mutex_);
  return epoch_;
}

std::size_t StreamingClusterEngine::nearest_centroid(
    const cluster::Point& point, const std::vector<cluster::Point>& cs) {
  std::size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < cs.size(); ++c) {
    const double d = cluster::squared_distance(point, cs[c]);
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  return best;
}

std::size_t StreamingClusterEngine::hash_spread(std::size_t party_id,
                                                std::size_t k) {
  return k == 0 ? 0 : common::mix_seed(0x5EED, party_id, 0) % k;
}

bool StreamingClusterEngine::submit(std::size_t party_id,
                                    cluster::Point point) {
  Shard& shard = shard_for(party_id);
  bool first_time = false;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.max_party = std::max(shard.max_party, party_id);
    auto it = shard.slot_of.find(party_id);
    if (it != shard.slot_of.end()) {
      // Re-submission: refresh the buffered point in place (if still
      // resident). The party is never duplicated.
      if (it->second != kNoSlot) shard.buffer[it->second] = point;
    } else {
      first_time = true;
      ++shard.seen;
      if (shard.buffer.size() < config_.shard_capacity) {
        shard.slot_of.emplace(party_id, shard.buffer.size());
        shard.party_at.push_back(party_id);
        shard.buffer.push_back(point);
      } else {
        // Reservoir sampling: the new point replaces a uniformly
        // chosen resident with probability capacity / seen, keeping
        // the buffer an unbiased sample of everything ingested.
        const std::size_t j = shard.rng.uniform_index(
            static_cast<std::size_t>(shard.seen));
        if (j < config_.shard_capacity) {
          shard.slot_of[shard.party_at[j]] = kNoSlot;
          shard.party_at[j] = party_id;
          shard.buffer[j] = point;
          shard.slot_of.emplace(party_id, j);
        } else {
          shard.slot_of.emplace(party_id, kNoSlot);
        }
      }
    }
  }
  ctrl_instruments().submissions->inc();
  if (first_time) parties_.fetch_add(1, std::memory_order_relaxed);

  // Pre-epoch bulk ingestion never touches the global membership lock
  // — only the shard lock above (rebuild() sizes the assignment table
  // from the shards' max ids).
  if (epoch_id_.load(std::memory_order_acquire) == 0) return first_time;

  std::shared_ptr<const Epoch> epoch;
  std::size_t assigned = kUnassigned;
  {
    // Epoch snapshot, assignment lookup and the late-joiner
    // nearest-centroid write happen under one lock so a concurrent
    // rebuild() can never interleave a stale epoch's cluster index
    // into the new epoch's table.
    std::lock_guard<std::mutex> lock(membership_mutex_);
    epoch = epoch_;
    if (epoch->id == 0) return first_time;
    if (assignment_.size() <= party_id) {
      assignment_.resize(party_id + 1, kUnassigned);
    }
    if (assignment_[party_id] == kUnassigned) {
      // Late joiner (or a party that slipped through a mid-rebuild
      // gather): incremental nearest-centroid assignment.
      assignment_[party_id] = nearest_centroid(point, epoch->centroids);
    }
    assigned = assignment_[party_id];
  }
  if (assigned < epoch->centroids.size()) {
    drift_.observe(assigned,
                   common::l1_distance(point, epoch->centroids[assigned]));
  }
  return first_time;
}

MembershipView StreamingClusterEngine::rebuild() {
  // Gather the reservoirs shard by shard (submissions to not-yet-read
  // shards keep flowing; they are picked up next epoch via the
  // old->new centroid remap below). Reservoir-evicted parties carry no
  // point; they are covered by sizing the assignment table to the max
  // ingested id and remapping/hash-spreading below.
  std::vector<cluster::Point> points;
  std::vector<std::size_t> owners;
  std::size_t max_party = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (std::size_t slot = 0; slot < shard->buffer.size(); ++slot) {
      points.push_back(shard->buffer[slot]);
      owners.push_back(shard->party_at[slot]);
    }
    if (!shard->slot_of.empty()) {
      max_party = std::max(max_party, shard->max_party);
    }
  }
  if (points.empty()) return view();

  const std::shared_ptr<const Epoch> previous = current_epoch();
  const std::size_t n_parties = parties_.load(std::memory_order_relaxed);
  const bool lloyd_path = n_parties <= config_.lloyd_threshold;
  common::Rng rng(common::mix_seed(config_.seed, previous->id + 1, 0x2EB));

  std::size_t k = config_.k_override;
  if (k == 0) {
    cluster::OptimalKConfig okc;
    okc.k_min = config_.k_min;
    okc.k_max = config_.k_max;
    okc.repeats = config_.elbow_repeats;
    okc.kmeans.restarts = config_.restarts;
    if (lloyd_path || points.size() <= config_.elbow_sample) {
      k = cluster::optimal_k_elbow(points, okc, rng).k;
    } else {
      // Elbow on a bounded sample: the k decision costs O(sample),
      // not O(parties).
      std::vector<cluster::Point> sample;
      sample.reserve(config_.elbow_sample);
      for (std::size_t i = 0; i < config_.elbow_sample; ++i) {
        sample.push_back(points[rng.uniform_index(points.size())]);
      }
      k = cluster::optimal_k_elbow(sample, okc, rng).k;
    }
  }
  k = std::max<std::size_t>(1, std::min(k, points.size()));

  cluster::KMeansResult result;
  if (lloyd_path) {
    cluster::KMeansConfig kc;
    kc.k = k;
    kc.restarts = config_.restarts;
    result = cluster::kmeans(points, kc, rng);
  } else {
    cluster::MiniBatchKMeansConfig mb;
    mb.k = k;
    mb.batch_size = config_.minibatch_size;
    mb.iterations = config_.minibatch_iterations;
    result = cluster::minibatch_kmeans(points, mb, rng);
  }
  k = result.centroids.size();

  // Per-cluster mean L1 residual of the buffered points — the drift
  // monitor's baseline for this epoch.
  std::vector<double> baseline(k, 0.0);
  std::vector<double> counts(k, 0.0);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const std::size_t c = result.assignments[i];
    baseline[c] +=
        common::l1_distance(points[i], result.centroids[c]);
    counts[c] += 1.0;
  }
  for (std::size_t c = 0; c < k; ++c) {
    if (counts[c] > 0.0) baseline[c] /= counts[c];
  }

  // Old cluster -> nearest new centroid, so parties without a buffered
  // point (reservoir-evicted, or ingested into an already-gathered
  // shard mid-rebuild) carry over at cluster granularity.
  std::vector<std::size_t> old_to_new(previous->centroids.size(), 0);
  for (std::size_t c = 0; c < previous->centroids.size(); ++c) {
    old_to_new[c] = nearest_centroid(previous->centroids[c],
                                     result.centroids);
  }

  auto next = std::make_shared<Epoch>();
  next->id = previous->id + 1;
  next->k = k;
  next->centroids = std::move(result.centroids);

  MembershipView published;
  {
    std::lock_guard<std::mutex> lock(membership_mutex_);
    std::vector<std::size_t> fresh(
        std::max(assignment_.size(), max_party + 1), kUnassigned);
    for (std::size_t p = 0; p < assignment_.size(); ++p) {
      if (assignment_[p] < old_to_new.size()) {
        fresh[p] = old_to_new[assignment_[p]];
      }
    }
    for (std::size_t i = 0; i < owners.size(); ++i) {
      if (fresh.size() <= owners[i]) {
        fresh.resize(owners[i] + 1, kUnassigned);
      }
      fresh[owners[i]] = result.assignments[i];
    }
    for (std::size_t p = 0; p < fresh.size(); ++p) {
      if (fresh[p] == kUnassigned) fresh[p] = hash_spread(p, k);
    }
    assignment_ = std::move(fresh);
    epoch_ = next;
    last_path_ = lloyd_path ? "lloyd" : "minibatch";
    epoch_id_.store(next->id, std::memory_order_release);
    published.epoch = next->id;
    published.k = next->k;
    published.cluster_of = assignment_;
    published.centroids = next->centroids;
    // Reset before releasing the membership lock: a submit landing
    // between epoch publish and monitor reset would otherwise feed a
    // new-epoch residual into the old epoch's EMA and could leave a
    // spurious trigger for a concurrent maybe_rebuild(). (Lock order
    // membership -> drift is unique to this call site; observe()/
    // triggered() are never called with membership_mutex_ held.)
    drift_.reset(std::move(baseline));
  }
  const CtrlInstruments& ins = ctrl_instruments();
  (lloyd_path ? ins.rebuilds_lloyd : ins.rebuilds_minibatch)->inc();
  ins.reservoir_points->set(static_cast<double>(points.size()));
  ins.epoch->set(static_cast<double>(published.epoch));
  ins.clusters->set(static_cast<double>(published.k));
  return published;
}

bool StreamingClusterEngine::maybe_rebuild() {
  if (!drift_.triggered()) return false;
  rebuild();
  return true;
}

MembershipView StreamingClusterEngine::view() const {
  std::lock_guard<std::mutex> lock(membership_mutex_);
  MembershipView out;
  out.epoch = epoch_->id;
  out.k = epoch_->k;
  if (out.epoch > 0) {
    out.cluster_of = assignment_;
    out.centroids = epoch_->centroids;
  }
  return out;
}

std::uint64_t StreamingClusterEngine::epoch() const {
  std::lock_guard<std::mutex> lock(membership_mutex_);
  return epoch_->id;
}

std::size_t StreamingClusterEngine::parties() const {
  return parties_.load(std::memory_order_relaxed);
}

std::size_t StreamingClusterEngine::buffered_points() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->buffer.size();
  }
  return total;
}

const char* StreamingClusterEngine::last_path() const {
  std::lock_guard<std::mutex> lock(membership_mutex_);
  return last_path_;
}

}  // namespace flips::ctrl
