// Epoch-versioned snapshot of the control plane's clustering state.
// Consumers (select::FlipsSelector, the FL job's re-cluster hook)
// compare `epoch` against the last one they consumed and rebuild their
// derived structures only when it advances — assignments within one
// epoch are stable for existing parties (late joiners are appended
// incrementally without bumping the epoch).
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/kmeans.h"

namespace flips::ctrl {

struct MembershipView {
  /// 0 = no clustering has been built yet (cluster_of is empty).
  std::uint64_t epoch = 0;
  std::size_t k = 0;
  /// party id -> cluster, dense over [0, max submitted id]. Every entry
  /// is < k whenever epoch > 0 (ids that never submitted get a
  /// deterministic hash-spread placeholder, never a sentinel).
  std::vector<std::size_t> cluster_of;
  std::vector<cluster::Point> centroids;
};

}  // namespace flips::ctrl
