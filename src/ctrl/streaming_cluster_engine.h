// The FLIPS streaming control plane. Replaces the "buffer every label
// distribution, then run full Lloyd once" preprocessing step with a
// live service shaped for very large federations:
//
//  - Sharded ingestion: submissions hash to one of `num_shards`
//    independently-locked shards, each holding a FIXED-SIZE reservoir
//    sample of points. Memory is O(num_shards * shard_capacity), not
//    O(parties); per-party state is one assignment slot.
//  - Threshold-scaled clustering: at or below `lloyd_threshold`
//    parties, rebuilds run full Lloyd k-means (with the DBI elbow when
//    k is not fixed); above it they run cluster::MiniBatchKMeans with
//    the elbow on a bounded sample — the path §3.4's scalability claim
//    actually needs at millions of parties.
//  - Incremental late joiners: a first-time submission after an epoch
//    exists is assigned to the nearest centroid immediately, without
//    re-clustering and without bumping the epoch.
//  - Online drift detection: every submission against an existing
//    epoch feeds its L1 residual to a DriftMonitor; when the monitor
//    flags, maybe_rebuild() starts a re-clustering epoch.
//
// Assignments are published as epoch-versioned MembershipViews;
// within an epoch, existing parties' assignments never change.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "ctrl/drift_monitor.h"
#include "ctrl/membership_view.h"

namespace flips::ctrl {

struct StreamingClusterConfig {
  /// Fixed cluster count; 0 = pick k with the DBI elbow.
  std::size_t k_override = 0;
  std::size_t k_min = 2;
  std::size_t k_max = 30;
  std::size_t restarts = 3;
  std::size_t elbow_repeats = 5;
  /// Ingestion shards (independent locks + reservoirs).
  std::size_t num_shards = 8;
  /// Reservoir capacity per shard; total buffered points never exceed
  /// num_shards * shard_capacity regardless of party count.
  std::size_t shard_capacity = 4096;
  /// Party-count threshold picking the clustering path: <= runs full
  /// Lloyd (+ DBI elbow), > runs mini-batch k-means (+ elbow on a
  /// sample of `elbow_sample` buffered points).
  std::size_t lloyd_threshold = 5000;
  std::size_t elbow_sample = 1024;
  std::size_t minibatch_size = 256;
  std::size_t minibatch_iterations = 120;
  std::uint64_t seed = 42;
  DriftMonitorConfig drift;
};

class StreamingClusterEngine {
 public:
  explicit StreamingClusterEngine(const StreamingClusterConfig& config);

  /// Ingests one party's point (Hellinger-embedded label distribution).
  /// Thread-safe across parties. Re-submission updates the party's
  /// buffered point in place — it never duplicates the party. When an
  /// epoch exists, first-time submitters are assigned to the nearest
  /// centroid incrementally and every submission feeds the drift
  /// monitor. Returns true for a first-time submission.
  bool submit(std::size_t party_id, cluster::Point point);

  /// Clusters the buffered reservoir, publishes a new epoch and resets
  /// the drift monitor. Parties whose points were evicted from the
  /// reservoir are carried over by mapping their previous cluster's
  /// centroid to the nearest new centroid (deterministic hash spread
  /// when they predate the first epoch). No-op when nothing has been
  /// submitted.
  MembershipView rebuild();

  /// rebuild() iff the drift monitor has flagged; returns whether a
  /// new epoch was built.
  bool maybe_rebuild();

  /// Snapshot of the current epoch (copy; grab once per epoch change,
  /// `epoch()` is the cheap staleness check).
  MembershipView view() const;

  std::uint64_t epoch() const;
  std::size_t parties() const;
  std::size_t buffered_points() const;
  /// "none", "lloyd" or "minibatch" — the path the last rebuild took.
  const char* last_path() const;

  bool drift_detected() const { return drift_.triggered(); }
  const DriftMonitor& drift() const { return drift_; }

 private:
  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);
  static constexpr std::size_t kUnassigned = static_cast<std::size_t>(-1);

  struct Shard {
    mutable std::mutex mutex;
    /// party -> reservoir slot (kNoSlot once evicted).
    std::unordered_map<std::size_t, std::size_t> slot_of;
    std::vector<std::size_t> party_at;  ///< slot -> party
    std::vector<cluster::Point> buffer;
    std::uint64_t seen = 0;  ///< distinct parties ever ingested here
    std::size_t max_party = 0;  ///< largest party id ingested here
    common::Rng rng{0};
  };

  /// Immutable per-epoch clustering state (assignments live separately
  /// so late joiners can be appended without copying centroids).
  struct Epoch {
    std::uint64_t id = 0;
    std::size_t k = 0;
    std::vector<cluster::Point> centroids;
  };

  Shard& shard_for(std::size_t party_id);
  std::shared_ptr<const Epoch> current_epoch() const;
  static std::size_t nearest_centroid(const cluster::Point& point,
                                      const std::vector<cluster::Point>& cs);
  /// Zero-information fallback for parties with no buffered point and
  /// no previous assignment (deterministic, spreads across clusters).
  static std::size_t hash_spread(std::size_t party_id, std::size_t k);

  StreamingClusterConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::size_t> parties_{0};

  mutable std::mutex membership_mutex_;
  std::shared_ptr<const Epoch> epoch_;          ///< never null
  std::vector<std::size_t> assignment_;         ///< party -> cluster
  const char* last_path_ = "none";
  /// Mirrors epoch_->id so the bulk-ingestion hot path can skip all
  /// membership bookkeeping before the first epoch without touching
  /// membership_mutex_ (pre-epoch submits only contend on their
  /// shard's lock).
  std::atomic<std::uint64_t> epoch_id_{0};

  DriftMonitor drift_;
};

}  // namespace flips::ctrl
