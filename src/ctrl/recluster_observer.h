// Control-plane ↔ session bridge: plugs a streaming clustering service
// into a running fl::FederationSession as a RoundObserver, replacing
// the legacy FlJobConfig::pre_round_hook wiring.
//
// Each round, before selection, the observer (1) feeds the service any
// scheduled label-distribution refreshes (a rolling schedule supplied
// by the caller — live deployments see drift incrementally), (2) polls
// the drift monitor, and (3) lets the service re-cluster iff the
// monitor flagged the epoch; a new epoch is handed to the caller's
// sink (typically select::FlipsSelector::consume on the session's
// selector), making FLIPS-style mid-job re-clustering a first-class
// session event.
//
// ClusterControl is the minimal service surface the bridge needs;
// core::PrivateClusteringService implements it (the attested
// sealed-channel path), and tests can substitute fakes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "ctrl/membership_view.h"
#include "data/synthetic.h"
#include "fl/observer.h"

namespace flips::ctrl {

/// What a clustering control plane exposes to a session bridge.
class ClusterControl {
 public:
  virtual ~ClusterControl() = default;

  /// (Re-)submits one party's label distribution; re-submission
  /// updates the party's point in place.
  virtual void submit_label_distribution(
      std::size_t party_id, const data::LabelDistribution& distribution) = 0;

  /// Re-clusters iff the drift monitor flagged the current epoch;
  /// returns whether a new epoch was built.
  virtual bool maybe_recluster() = 0;

  virtual MembershipView membership() const = 0;
  virtual bool drift_detected() const = 0;
  virtual std::uint64_t epoch() const = 0;
};

class ReclusterObserver final : public fl::RoundObserver {
 public:
  /// Scheduled refresh feed, invoked at the start of every round
  /// (e.g. "rounds 1..5 re-submit successive fifths of the fleet").
  using RefreshFeed = std::function<void(std::size_t round,
                                         ClusterControl& control)>;
  /// Receives every new membership epoch the service builds.
  using EpochSink = std::function<void(const MembershipView& view)>;

  ReclusterObserver(ClusterControl& control, EpochSink on_new_epoch,
                    RefreshFeed feed = {})
      : control_(control),
        on_new_epoch_(std::move(on_new_epoch)),
        feed_(std::move(feed)) {}

  void on_round_begin(std::size_t round,
                      fl::ParticipantSelector& selector) override {
    (void)selector;
    if (feed_) feed_(round, control_);
    if (trigger_round_ == 0 && control_.drift_detected()) {
      trigger_round_ = round;
    }
    if (control_.maybe_recluster()) {
      if (first_recluster_round_ == 0) first_recluster_round_ = round;
      ++reclusters_;
      if (on_new_epoch_) on_new_epoch_(control_.membership());
    }
  }

  /// First round the drift monitor flagged (0 = never).
  std::size_t trigger_round() const { return trigger_round_; }
  /// First round a re-clustering epoch was built (0 = never).
  std::size_t first_recluster_round() const {
    return first_recluster_round_;
  }
  std::size_t reclusters() const { return reclusters_; }

 private:
  ClusterControl& control_;
  EpochSink on_new_epoch_;
  RefreshFeed feed_;
  std::size_t trigger_round_ = 0;
  std::size_t first_recluster_round_ = 0;
  std::size_t reclusters_ = 0;
};

}  // namespace flips::ctrl
