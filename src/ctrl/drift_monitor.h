// Online drift detection for the streaming control plane (paper §8
// future work 2, grounded in §3.4's premise that the clustering holds
// "as long as … the data at participants does not change
// significantly"). Each (re-)submission's L1 distance to its assigned
// cluster's centroid feeds a per-cluster EMA; when any cluster's EMA
// climbs past its build-time baseline by a configurable ratio, the
// monitor flags a re-clustering epoch. The flag is sticky until the
// next rebuild resets the baselines.
#pragma once

#include <cstddef>
#include <mutex>
#include <vector>

namespace flips::ctrl {

struct DriftMonitorConfig {
  /// Weight of each new residual in the per-cluster EMA.
  double ema = 0.2;
  /// Flag when ema > trigger_ratio * baseline + min_shift.
  double trigger_ratio = 1.5;
  /// Absolute L1 slack so near-zero baselines (tight or singleton
  /// clusters) do not flag on noise.
  double min_shift = 0.05;
  /// Observations a cluster must accumulate since the last reset
  /// before it may flag (EMA warm-up).
  std::size_t min_observations = 3;
};

class DriftMonitor {
 public:
  explicit DriftMonitor(const DriftMonitorConfig& config);

  /// New epoch: per-cluster build-time mean residuals become both the
  /// baselines and the EMA seeds; the trigger flag clears.
  void reset(std::vector<double> baselines);

  /// One submission landed `residual` (L1) away from the centroid of
  /// `cluster`. Thread-safe (called from concurrent shard ingesters).
  void observe(std::size_t cluster, double residual);

  /// True once any cluster's EMA exceeded its trigger threshold since
  /// the last reset.
  bool triggered() const;

  std::size_t clusters() const;
  double shift(std::size_t cluster) const;     ///< current EMA
  double baseline(std::size_t cluster) const;  ///< build-time mean residual
  std::size_t observations(std::size_t cluster) const;

 private:
  DriftMonitorConfig config_;
  mutable std::mutex mutex_;
  std::vector<double> baseline_;
  std::vector<double> ema_;
  std::vector<std::size_t> observations_;
  bool triggered_ = false;
};

}  // namespace flips::ctrl
