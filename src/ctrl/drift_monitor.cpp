#include "ctrl/drift_monitor.h"

namespace flips::ctrl {

DriftMonitor::DriftMonitor(const DriftMonitorConfig& config)
    : config_(config) {}

void DriftMonitor::reset(std::vector<double> baselines) {
  std::lock_guard<std::mutex> lock(mutex_);
  baseline_ = std::move(baselines);
  ema_ = baseline_;
  observations_.assign(baseline_.size(), 0);
  triggered_ = false;
}

void DriftMonitor::observe(std::size_t cluster, double residual) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (cluster >= ema_.size()) return;
  ema_[cluster] =
      (1.0 - config_.ema) * ema_[cluster] + config_.ema * residual;
  if (++observations_[cluster] < config_.min_observations) return;
  if (ema_[cluster] >
      config_.trigger_ratio * baseline_[cluster] + config_.min_shift) {
    triggered_ = true;
  }
}

bool DriftMonitor::triggered() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return triggered_;
}

std::size_t DriftMonitor::clusters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return baseline_.size();
}

double DriftMonitor::shift(std::size_t cluster) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cluster < ema_.size() ? ema_[cluster] : 0.0;
}

double DriftMonitor::baseline(std::size_t cluster) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cluster < baseline_.size() ? baseline_[cluster] : 0.0;
}

std::size_t DriftMonitor::observations(std::size_t cluster) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cluster < observations_.size() ? observations_[cluster] : 0;
}

}  // namespace flips::ctrl
