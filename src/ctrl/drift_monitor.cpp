#include "ctrl/drift_monitor.h"

#include <string>

#include "obs/metrics.h"

namespace flips::ctrl {

namespace {

/// Per-cluster EMA/baseline gauges, registered lazily per cluster id
/// on reset() (a rebuild-rate path, not the observe() hot path) and
/// cached process-wide — monitors come and go, the gauges persist.
struct DriftGauges {
  obs::Gauge* ema;
  obs::Gauge* baseline;
};

DriftGauges drift_gauges(std::size_t cluster) {
  static std::mutex mu;
  static std::vector<DriftGauges> by_cluster;
  std::lock_guard<std::mutex> lock(mu);
  while (by_cluster.size() <= cluster) {
    const obs::Labels labels{
        {"cluster", std::to_string(by_cluster.size())}};
    by_cluster.push_back(
        {&obs::Registry::global().gauge("flips_ctrl_drift_ema", labels),
         &obs::Registry::global().gauge("flips_ctrl_drift_baseline",
                                        labels)});
  }
  return by_cluster[cluster];
}

}  // namespace

DriftMonitor::DriftMonitor(const DriftMonitorConfig& config)
    : config_(config) {}

void DriftMonitor::reset(std::vector<double> baselines) {
  std::lock_guard<std::mutex> lock(mutex_);
  baseline_ = std::move(baselines);
  ema_ = baseline_;
  observations_.assign(baseline_.size(), 0);
  triggered_ = false;
  for (std::size_t c = 0; c < baseline_.size(); ++c) {
    const DriftGauges g = drift_gauges(c);
    g.baseline->set(baseline_[c]);
    g.ema->set(ema_[c]);
  }
}

void DriftMonitor::observe(std::size_t cluster, double residual) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (cluster >= ema_.size()) return;
  ema_[cluster] =
      (1.0 - config_.ema) * ema_[cluster] + config_.ema * residual;
  drift_gauges(cluster).ema->set(ema_[cluster]);
  if (++observations_[cluster] < config_.min_observations) return;
  if (ema_[cluster] >
      config_.trigger_ratio * baseline_[cluster] + config_.min_shift) {
    triggered_ = true;
  }
}

bool DriftMonitor::triggered() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return triggered_;
}

std::size_t DriftMonitor::clusters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return baseline_.size();
}

double DriftMonitor::shift(std::size_t cluster) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cluster < ema_.size() ? ema_[cluster] : 0.0;
}

double DriftMonitor::baseline(std::size_t cluster) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cluster < baseline_.size() ? baseline_[cluster] : 0.0;
}

std::size_t DriftMonitor::observations(std::size_t cluster) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cluster < observations_.size() ? observations_[cluster] : 0;
}

}  // namespace flips::ctrl
