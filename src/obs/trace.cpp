#include "obs/trace.h"

#include <bit>
#include <stdexcept>

namespace flips::obs {

// ---------------------------------------------------------------------------
// JsonlTraceSink

JsonlTraceSink::JsonlTraceSink(const std::string& path)
    : file_(std::fopen(path.c_str(), "w")) {
  if (file_ == nullptr) {
    throw std::runtime_error("JsonlTraceSink: cannot open " + path);
  }
}

JsonlTraceSink::~JsonlTraceSink() {
  if (file_ != nullptr) std::fclose(file_);
}

void JsonlTraceSink::write(const Span& span) {
  std::lock_guard<std::mutex> lock(mu_);
  std::fprintf(file_,
               "{\"name\":\"%s\",\"tenant\":\"%s\",\"id\":%llu,"
               "\"parent\":%llu,\"round\":%llu,\"start_ns\":%llu,"
               "\"end_ns\":%llu,\"sim_s\":%.6f}\n",
               span.name, span.tenant,
               static_cast<unsigned long long>(span.id),
               static_cast<unsigned long long>(span.parent),
               static_cast<unsigned long long>(span.round),
               static_cast<unsigned long long>(span.start_ns),
               static_cast<unsigned long long>(span.end_ns), span.sim_time_s);
}

void JsonlTraceSink::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  std::fflush(file_);
}

// ---------------------------------------------------------------------------
// TraceRing

TraceRing::TraceRing(std::size_t capacity) {
  capacity = std::bit_ceil(capacity < 2 ? 2 : capacity);
  cells_ = std::vector<Cell>(capacity);
  mask_ = capacity - 1;
  for (std::size_t i = 0; i < capacity; ++i) {
    cells_[i].seq.store(i, std::memory_order_relaxed);
  }
}

bool TraceRing::try_push(const Span& span) {
  std::size_t pos = enqueue_.load(std::memory_order_relaxed);
  for (;;) {
    Cell& cell = cells_[pos & mask_];
    const std::size_t seq = cell.seq.load(std::memory_order_acquire);
    const auto dif = static_cast<std::intptr_t>(seq) -
                     static_cast<std::intptr_t>(pos);
    if (dif == 0) {
      if (enqueue_.compare_exchange_weak(pos, pos + 1,
                                         std::memory_order_relaxed)) {
        cell.span = span;
        cell.seq.store(pos + 1, std::memory_order_release);
        return true;
      }
    } else if (dif < 0) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;  // full
    } else {
      pos = enqueue_.load(std::memory_order_relaxed);
    }
  }
}

bool TraceRing::try_pop(Span* span) {
  std::size_t pos = dequeue_.load(std::memory_order_relaxed);
  for (;;) {
    Cell& cell = cells_[pos & mask_];
    const std::size_t seq = cell.seq.load(std::memory_order_acquire);
    const auto dif = static_cast<std::intptr_t>(seq) -
                     static_cast<std::intptr_t>(pos + 1);
    if (dif == 0) {
      if (dequeue_.compare_exchange_weak(pos, pos + 1,
                                         std::memory_order_relaxed)) {
        *span = cell.span;
        cell.seq.store(pos + mask_ + 1, std::memory_order_release);
        return true;
      }
    } else if (dif < 0) {
      return false;  // empty
    } else {
      pos = dequeue_.load(std::memory_order_relaxed);
    }
  }
}

// ---------------------------------------------------------------------------
// Tracer

Tracer::Tracer(std::size_t capacity) : ring_(capacity) {}

void Tracer::set_sink(std::shared_ptr<TraceSink> sink) {
  std::lock_guard<std::mutex> lock(drain_mu_);
  sink_ = std::move(sink);
  enabled_.store(sink_ != nullptr, std::memory_order_relaxed);
}

std::size_t Tracer::drain() {
  std::lock_guard<std::mutex> lock(drain_mu_);
  if (sink_ == nullptr) {
    Span span;
    std::size_t n = 0;
    while (ring_.try_pop(&span)) ++n;
    return n;
  }
  Span span;
  std::size_t n = 0;
  while (ring_.try_pop(&span)) {
    sink_->write(span);
    ++n;
  }
  if (n != 0) sink_->flush();
  return n;
}

Tracer& Tracer::global() {
  static Tracer g;
  return g;
}

}  // namespace flips::obs
