// Span tracing: fixed-size POD records pushed through a bounded
// lock-free MPMC ring (Vyukov sequence-number queue) to a TraceSink.
//
// The contract the session stepping thread relies on:
//
//   * Tracer::record() NEVER blocks and never allocates. When the ring
//     is full the span is dropped and counted (Tracer::dropped()); a
//     slow or absent drainer costs telemetry, not round latency.
//   * With no sink installed the tracer is disabled and record() is a
//     single relaxed load — the "compiled to null sinks" baseline of
//     the bench_micro_obs A/B.
//   * drain() pops everything currently in the ring into the sink
//     under a consumer mutex, so any thread (typically the observer on
//     round end) may drain.
//
// Sinks: JsonlTraceSink appends one JSON object per span to a file;
// NullTraceSink discards (keeps the full ring path hot for
// benchmarks).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace flips::obs {

/// One traced interval. Fixed-size so spans can live in the ring by
/// value; names/tenants longer than the fields are truncated.
struct Span {
  char name[24] = {};
  char tenant[24] = {};
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  ///< 0 = root span
  std::uint64_t round = 0;
  std::uint64_t start_ns = 0;  ///< steady-clock wall nanoseconds
  std::uint64_t end_ns = 0;
  double sim_time_s = 0.0;  ///< session simulated time at emit

  void set_name(const char* s) { copy_field(name, sizeof name, s); }
  void set_tenant(const char* s) { copy_field(tenant, sizeof tenant, s); }

 private:
  static void copy_field(char* dst, std::size_t cap, const char* s) {
    std::size_t n = std::strlen(s);
    if (n >= cap) n = cap - 1;
    std::memcpy(dst, s, n);
    dst[n] = '\0';
  }
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void write(const Span& span) = 0;
  virtual void flush() {}
};

class NullTraceSink final : public TraceSink {
 public:
  void write(const Span& span) override { (void)span; }
};

/// Appends one JSON object per span. Writes are serialized internally
/// so multiple drainers may share a sink.
class JsonlTraceSink final : public TraceSink {
 public:
  explicit JsonlTraceSink(const std::string& path);
  ~JsonlTraceSink() override;
  void write(const Span& span) override;
  void flush() override;

 private:
  std::FILE* file_;
  std::mutex mu_;
};

/// Bounded MPMC ring (Vyukov): producers CAS a ticket and publish via
/// the cell's sequence number; a full ring fails the push immediately.
class TraceRing {
 public:
  /// Capacity is rounded up to a power of two, minimum 2.
  explicit TraceRing(std::size_t capacity);
  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// False (and one dropped() tick) when full. Never blocks.
  bool try_push(const Span& span);
  bool try_pop(Span* span);

  std::size_t capacity() const { return mask_ + 1; }
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  struct Cell {
    std::atomic<std::size_t> seq{0};
    Span span;
  };
  std::vector<Cell> cells_;
  std::size_t mask_;
  alignas(64) std::atomic<std::size_t> enqueue_{0};
  alignas(64) std::atomic<std::size_t> dequeue_{0};
  alignas(64) std::atomic<std::uint64_t> dropped_{0};
};

class Tracer {
 public:
  explicit Tracer(std::size_t capacity = 4096);

  /// Installs (or clears, with nullptr) the sink. Enabling is
  /// observed by record() via one atomic flag; swapping a live sink
  /// synchronizes with concurrent drains.
  void set_sink(std::shared_ptr<TraceSink> sink);

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  std::uint64_t next_id() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Push a finished span. Disabled tracer: no-op. Full ring: span is
  /// dropped and counted. Never blocks, never allocates.
  void record(const Span& span) {
    if (!enabled()) return;
    ring_.try_push(span);
  }

  /// Pop everything currently buffered into the sink; returns the
  /// number of spans delivered.
  std::size_t drain();

  std::uint64_t dropped() const { return ring_.dropped(); }

  /// Process-wide tracer used by MetricsObserver by default. Disabled
  /// until a sink is installed.
  static Tracer& global();

 private:
  TraceRing ring_;
  std::atomic<bool> enabled_{false};
  std::mutex drain_mu_;  ///< serializes drains and sink swaps
  std::shared_ptr<TraceSink> sink_;
  std::atomic<std::uint64_t> next_id_{1};
};

}  // namespace flips::obs
