// Low-overhead metrics plane: counters, gauges, and fixed-boundary
// log-bucketed histograms registered by family{label=value} name.
//
// Hot-path discipline (the same contract as the PR-4 aggregation
// plane, audited by bench_micro_obs under an operator-new override):
//
//   * inc()/set()/add()/record() are lock-free, allocation-free
//     relaxed atomics. Counters shard across kCounterShards cache
//     lines with a per-thread slot so concurrent writers never bounce
//     one line.
//   * Registration (Registry::counter/gauge/histogram) takes a mutex
//     and allocates — do it once at construction time and keep the
//     returned pointer; instruments live as long as the registry and
//     are never deallocated or moved.
//
// Histograms use the double's own bit pattern as the bucket index
// (exponent + top `sub_bits` mantissa bits, HdrHistogram-style): fixed
// boundaries, 2^sub_bits buckets per power of two, explicit underflow/
// overflow buckets, O(1) record with no log() call. merge() and
// quantile() make the same instrument usable standalone (e.g. the
// load generator's bounded-memory latency tracking) as well as
// registered.
//
// Snapshots serialize as Prometheus text exposition — the payload of
// the serving plane's kMetrics frame — and prometheus_family_sum()
// parses one back, so client-side checks and tests round-trip through
// the exact wire format.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace flips::obs {

/// Cache-line shards per counter. Power of two; 8 lines (512 B) per
/// counter keeps even 64-thread ingest from serializing on one line.
inline constexpr std::size_t kCounterShards = 8;

/// Stable per-thread shard slot, assigned round-robin on first use.
inline std::size_t thread_shard_slot() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) & (kCounterShards - 1);
  return slot;
}

/// Monotone event counter. inc() is a relaxed fetch_add on the calling
/// thread's shard; value() sums shards (racy-read exact only once
/// writers quiesce, like any relaxed counter).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void inc(std::uint64_t n = 1) {
    shards_[thread_shard_slot()].v.fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Shard, kCounterShards> shards_{};
};

/// Double-valued level. set() stores, add() is a CAS loop; both are
/// bit-cast through one atomic word so readers never see a torn value.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(double v) {
    bits_.store(std::bit_cast<std::uint64_t>(v), std::memory_order_relaxed);
  }

  void add(double delta) {
    std::uint64_t old = bits_.load(std::memory_order_relaxed);
    std::uint64_t next;
    do {
      next = std::bit_cast<std::uint64_t>(std::bit_cast<double>(old) + delta);
    } while (
        !bits_.compare_exchange_weak(old, next, std::memory_order_relaxed));
  }

  double value() const {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }

 private:
  std::atomic<std::uint64_t> bits_{std::bit_cast<std::uint64_t>(0.0)};
};

/// Fixed log-spaced bucket boundaries: 2^sub_bits buckets per power of
/// two between min and max (both floored to the bucket grid), plus an
/// underflow bucket (values < min, zero, negative, NaN) and an
/// overflow bucket (values >= max). Relative quantile error is bounded
/// by one bucket, i.e. a factor of 2^(1/2^sub_bits).
struct HistogramConfig {
  double min = 1e-9;      ///< must be a positive normal double
  double max = 1e6;       ///< must be > min
  unsigned sub_bits = 3;  ///< 8 buckets per octave (~9% resolution)

  bool operator==(const HistogramConfig&) const = default;
};

class Histogram {
 public:
  explicit Histogram(HistogramConfig config = {});
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Lock-free, allocation-free: one relaxed fetch_add on the bucket
  /// plus a CAS-add to the running sum. No log() — the bucket index is
  /// the value's exponent/mantissa bits shifted into place.
  void record(double v) {
    buckets_[index(v)].fetch_add(1, std::memory_order_relaxed);
    std::uint64_t old = sum_bits_.load(std::memory_order_relaxed);
    std::uint64_t next;
    do {
      next = std::bit_cast<std::uint64_t>(std::bit_cast<double>(old) + v);
    } while (
        !sum_bits_.compare_exchange_weak(old, next, std::memory_order_relaxed));
  }

  /// Fold another histogram (same config — checked) into this one.
  void merge(const Histogram& other);

  /// Quantile estimate (q in [0,1]): geometric midpoint of the bucket
  /// holding the rank-q sample; min/max for the under/overflow buckets.
  /// Returns 0 when empty.
  double quantile(double q) const;

  std::uint64_t count() const;
  double sum() const;

  const HistogramConfig& config() const { return config_; }
  std::size_t bucket_count() const { return buckets_.size(); }
  std::uint64_t bucket_value(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Inclusive lower edge of bucket i (1..bucket_count()-2). Bucket 0
  /// is underflow (< lower_edge(1)); the last bucket is overflow
  /// (>= max, where max is floored to the grid).
  double lower_edge(std::size_t i) const;
  /// Exclusive upper edge of bucket i; +inf for the overflow bucket.
  double upper_edge(std::size_t i) const;

  std::size_t index(double v) const {
    if (!(v >= lowest_)) return 0;  // underflow / zero / negative / NaN
    if (v >= highest_) return buckets_.size() - 1;
    const std::uint64_t key = std::bit_cast<std::uint64_t>(v) >> shift_;
    return static_cast<std::size_t>(key - base_key_) + 1;
  }

 private:
  HistogramConfig config_;
  unsigned shift_ = 0;         ///< 52 - sub_bits
  std::uint64_t base_key_ = 0; ///< key of the floored min boundary
  double lowest_ = 0.0;        ///< min floored to the bucket grid
  double highest_ = 0.0;       ///< max floored to the bucket grid
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> sum_bits_{std::bit_cast<std::uint64_t>(0.0)};
};

using Labels = std::vector<std::pair<std::string, std::string>>;

/// Get-or-create instrument registry keyed by family name + label set.
/// Instruments are heap-held and never deallocated while the registry
/// lives, so returned pointers are stable and safe to cache. A family
/// name maps to exactly one instrument type (and, for histograms, one
/// config); a mismatch throws std::logic_error at registration time.
class Registry {
 public:
  // Out-of-line: the family map's node type is incomplete here.
  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Process-wide registry — what the serving plane snapshots for
  /// kMetrics and the instrumented components register into.
  static Registry& global();

  Counter& counter(std::string_view family, const Labels& labels = {});
  Gauge& gauge(std::string_view family, const Labels& labels = {});
  Histogram& histogram(std::string_view family, const Labels& labels = {},
                       HistogramConfig config = {});

  /// Prometheus text exposition of every registered instrument,
  /// families and label sets in lexicographic order. Histograms emit
  /// cumulative `_bucket{le=...}` samples for non-empty buckets plus
  /// le="+Inf", `_sum`, and `_count`.
  std::string text_exposition() const;

 private:
  struct Instrument;
  struct Family;

  Instrument& get_or_create(std::string_view family, const Labels& labels,
                            int type, const HistogramConfig* config);

  mutable std::mutex mu_;
  std::map<std::string, Family, std::less<>> families_;
};

/// Sum of every sample of `family` (bare or labeled) in a Prometheus
/// text exposition. nullopt when the family has no samples. For
/// histogram families pass the `_count`/`_sum` sample name explicitly.
std::optional<double> prometheus_family_sum(std::string_view text,
                                            std::string_view family);

inline bool prometheus_has_family(std::string_view text,
                                  std::string_view family) {
  return prometheus_family_sum(text, family).has_value();
}

}  // namespace flips::obs
