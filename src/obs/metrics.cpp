#include "obs/metrics.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

namespace flips::obs {

namespace {

// Shortest round-trip decimal for a double (std::to_chars general
// form), so expositions are deterministic and parse back exactly.
void append_double(std::string& out, double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
}

}  // namespace

// ---------------------------------------------------------------------------
// Histogram

Histogram::Histogram(HistogramConfig config) : config_(config) {
  if (!(config_.min > 0.0) || !std::isfinite(config_.min) ||
      !(config_.max > config_.min) || !std::isfinite(config_.max) ||
      config_.sub_bits > 8) {
    throw std::invalid_argument("HistogramConfig: need 0 < min < max finite "
                                "and sub_bits <= 8");
  }
  shift_ = 52 - config_.sub_bits;
  base_key_ = std::bit_cast<std::uint64_t>(config_.min) >> shift_;
  const std::uint64_t top_key =
      std::bit_cast<std::uint64_t>(config_.max) >> shift_;
  lowest_ = std::bit_cast<double>(base_key_ << shift_);
  highest_ = std::bit_cast<double>(top_key << shift_);
  // [underflow][base_key .. top_key-1][overflow]
  buckets_ = std::vector<std::atomic<std::uint64_t>>(
      static_cast<std::size_t>(top_key - base_key_) + 2);
}

void Histogram::merge(const Histogram& other) {
  if (!(other.config_ == config_)) {
    throw std::logic_error("Histogram::merge: mismatched configs");
  }
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const std::uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
  }
  const double s =
      std::bit_cast<double>(other.sum_bits_.load(std::memory_order_relaxed));
  std::uint64_t old = sum_bits_.load(std::memory_order_relaxed);
  std::uint64_t next;
  do {
    next = std::bit_cast<std::uint64_t>(std::bit_cast<double>(old) + s);
  } while (
      !sum_bits_.compare_exchange_weak(old, next, std::memory_order_relaxed));
}

double Histogram::lower_edge(std::size_t i) const {
  if (i == 0) return 0.0;
  if (i == buckets_.size() - 1) return highest_;
  return std::bit_cast<double>((base_key_ + (i - 1)) << shift_);
}

double Histogram::upper_edge(std::size_t i) const {
  if (i == buckets_.size() - 1) {
    return std::numeric_limits<double>::infinity();
  }
  return lower_edge(i + 1);
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

double Histogram::sum() const {
  return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
}

double Histogram::quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  // Rank of the q-th sample (nearest-rank on the live counts; a
  // concurrent writer shifts the estimate by at most its own samples).
  const std::uint64_t rank =
      std::min<std::uint64_t>(total - 1,
                              static_cast<std::uint64_t>(
                                  q * static_cast<double>(total)));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cum += buckets_[i].load(std::memory_order_relaxed);
    if (cum > rank) {
      if (i == 0) return lowest_;                       // underflow
      if (i == buckets_.size() - 1) return highest_;    // overflow
      return std::sqrt(lower_edge(i) * upper_edge(i));  // geometric midpoint
    }
  }
  return highest_;
}

// ---------------------------------------------------------------------------
// Registry

struct Registry::Instrument {
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
};

struct Registry::Family {
  int type = 0;  // 0 counter, 1 gauge, 2 histogram
  HistogramConfig config;
  std::map<std::string, Instrument> by_labels;  // key: serialized label set
};

namespace {

std::string serialize_labels(const Labels& labels) {
  if (labels.empty()) return {};
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string out = "{";
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i != 0) out += ',';
    out += sorted[i].first;
    out += "=\"";
    out += sorted[i].second;
    out += '"';
  }
  out += '}';
  return out;
}

}  // namespace

Registry::Registry() = default;
Registry::~Registry() = default;

Registry& Registry::global() {
  static Registry g;
  return g;
}

Registry::Instrument& Registry::get_or_create(std::string_view family,
                                              const Labels& labels, int type,
                                              const HistogramConfig* config) {
  std::lock_guard<std::mutex> lock(mu_);
  auto fam_it = families_.find(family);
  if (fam_it == families_.end()) {
    Family fam;
    fam.type = type;
    if (config != nullptr) fam.config = *config;
    fam_it = families_.emplace(std::string(family), std::move(fam)).first;
  } else if (fam_it->second.type != type) {
    throw std::logic_error("Registry: family '" + std::string(family) +
                           "' already registered with a different type");
  } else if (config != nullptr && !(fam_it->second.config == *config)) {
    throw std::logic_error("Registry: histogram family '" +
                           std::string(family) +
                           "' already registered with a different config");
  }
  Family& fam = fam_it->second;
  auto [it, inserted] = fam.by_labels.try_emplace(serialize_labels(labels));
  Instrument& inst = it->second;
  if (inserted) {
    switch (type) {
      case 0: inst.counter = std::make_unique<Counter>(); break;
      case 1: inst.gauge = std::make_unique<Gauge>(); break;
      default: inst.histogram = std::make_unique<Histogram>(fam.config); break;
    }
  }
  return inst;
}

Counter& Registry::counter(std::string_view family, const Labels& labels) {
  return *get_or_create(family, labels, 0, nullptr).counter;
}

Gauge& Registry::gauge(std::string_view family, const Labels& labels) {
  return *get_or_create(family, labels, 1, nullptr).gauge;
}

Histogram& Registry::histogram(std::string_view family, const Labels& labels,
                               HistogramConfig config) {
  return *get_or_create(family, labels, 2, &config).histogram;
}

std::string Registry::text_exposition() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out.reserve(4096);
  for (const auto& [name, fam] : families_) {
    out += "# TYPE ";
    out += name;
    out += fam.type == 0   ? " counter\n"
           : fam.type == 1 ? " gauge\n"
                           : " histogram\n";
    for (const auto& [labels, inst] : fam.by_labels) {
      if (fam.type == 0) {
        out += name;
        out += labels;
        out += ' ';
        append_u64(out, inst.counter->value());
        out += '\n';
      } else if (fam.type == 1) {
        out += name;
        out += labels;
        out += ' ';
        append_double(out, inst.gauge->value());
        out += '\n';
      } else {
        const Histogram& h = *inst.histogram;
        // Sparse cumulative buckets: only edges whose bucket is
        // non-empty, plus the mandatory +Inf sample.
        const std::string prefix =
            labels.empty() ? "{le=\"" : labels.substr(0, labels.size() - 1) +
                                            ",le=\"";
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i < h.bucket_count(); ++i) {
          const std::uint64_t n = h.bucket_value(i);
          if (n == 0) continue;
          cum += n;
          out += name;
          out += "_bucket";
          out += prefix;
          if (i == h.bucket_count() - 1) {
            out += "+Inf";
          } else {
            append_double(out, h.upper_edge(i));
          }
          out += "\"} ";
          append_u64(out, cum);
          out += '\n';
        }
        if (h.bucket_value(h.bucket_count() - 1) == 0) {
          out += name;
          out += "_bucket";
          out += prefix;
          out += "+Inf\"} ";
          append_u64(out, cum);
          out += '\n';
        }
        out += name;
        out += "_sum";
        out += labels;
        out += ' ';
        append_double(out, h.sum());
        out += '\n';
        out += name;
        out += "_count";
        out += labels;
        out += ' ';
        append_u64(out, cum);
        out += '\n';
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Exposition parsing (client-side checks, tests)

std::optional<double> prometheus_family_sum(std::string_view text,
                                            std::string_view family) {
  std::optional<double> total;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t name_end = line.find_first_of("{ ");
    if (name_end == std::string_view::npos) continue;
    if (line.substr(0, name_end) != family) continue;
    const std::size_t value_at = line.rfind(' ');
    if (value_at == std::string_view::npos) continue;
    const std::string_view value = line.substr(value_at + 1);
    double v = 0.0;
    const auto res =
        std::from_chars(value.data(), value.data() + value.size(), v);
    if (res.ec != std::errc()) continue;
    total = total.value_or(0.0) + v;
  }
  return total;
}

}  // namespace flips::obs
