#include "cluster/dbi.h"

#include <algorithm>
#include <cmath>

namespace flips::cluster {

double davies_bouldin_index(const std::vector<Point>& points,
                            const std::vector<std::size_t>& assignments,
                            const std::vector<Point>& centroids) {
  const std::size_t k = centroids.size();
  if (k < 2 || points.empty()) return 0.0;

  std::vector<double> scatter(k, 0.0);
  std::vector<std::size_t> counts(k, 0);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const std::size_t c = assignments[i];
    scatter[c] += std::sqrt(squared_distance(points[i], centroids[c]));
    ++counts[c];
  }
  for (std::size_t c = 0; c < k; ++c) {
    if (counts[c] > 0) scatter[c] /= static_cast<double>(counts[c]);
  }

  double dbi = 0.0;
  std::size_t live = 0;
  for (std::size_t i = 0; i < k; ++i) {
    if (counts[i] == 0) continue;
    ++live;
    double worst = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      if (j == i || counts[j] == 0) continue;
      const double separation =
          std::sqrt(squared_distance(centroids[i], centroids[j]));
      if (separation <= 0.0) continue;
      worst = std::max(worst, (scatter[i] + scatter[j]) / separation);
    }
    dbi += worst;
  }
  return live > 0 ? dbi / static_cast<double>(live) : 0.0;
}

namespace {

std::vector<double> mean_dbi_curve(const std::vector<Point>& points,
                                   const OptimalKConfig& config,
                                   common::Rng& rng) {
  const std::size_t k_max =
      std::min(config.k_max, points.empty() ? config.k_max : points.size());
  std::vector<double> curve;
  for (std::size_t k = config.k_min; k <= k_max; ++k) {
    double sum = 0.0;
    const std::size_t repeats = std::max<std::size_t>(1, config.repeats);
    for (std::size_t t = 0; t < repeats; ++t) {
      KMeansConfig kc = config.kmeans;
      kc.k = k;
      const KMeansResult result = kmeans(points, kc, rng);
      sum += davies_bouldin_index(points, result.assignments,
                                  result.centroids);
    }
    curve.push_back(sum / static_cast<double>(std::max<std::size_t>(
                              1, config.repeats)));
  }
  return curve;
}

}  // namespace

OptimalKResult optimal_k_elbow(const std::vector<Point>& points,
                               const OptimalKConfig& config,
                               common::Rng& rng) {
  OptimalKResult result;
  result.k_min = config.k_min;
  result.dbi_curve = mean_dbi_curve(points, config, rng);
  if (result.dbi_curve.empty()) return result;
  const auto best = std::min_element(result.dbi_curve.begin(),
                                     result.dbi_curve.end());
  result.k = config.k_min +
             static_cast<std::size_t>(best - result.dbi_curve.begin());
  return result;
}

OptimalKResult optimal_k_eq3(const std::vector<Point>& points,
                             const OptimalKConfig& config,
                             common::Rng& rng) {
  OptimalKResult result = optimal_k_elbow(points, config, rng);
  const auto& curve = result.dbi_curve;
  for (std::size_t i = 1; i < curve.size(); ++i) {
    const double prev = curve[i - 1];
    if (prev <= 0.0) continue;
    const double improvement = (prev - curve[i]) / prev;
    if (improvement < config.eq3_threshold) {
      result.k = config.k_min + i - 1;
      break;
    }
  }
  return result;
}

}  // namespace flips::cluster
