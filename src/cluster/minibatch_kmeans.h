// Mini-batch k-means (Sculley 2010) — the scalable clustering path for
// very large federations where full Lloyd passes are too slow.
#pragma once

#include "cluster/kmeans.h"

namespace flips::cluster {

struct MiniBatchKMeansConfig {
  std::size_t k = 2;
  std::size_t batch_size = 256;
  std::size_t iterations = 100;
};

[[nodiscard]] KMeansResult minibatch_kmeans(
    const std::vector<Point>& points, const MiniBatchKMeansConfig& config,
    common::Rng& rng);

}  // namespace flips::cluster
