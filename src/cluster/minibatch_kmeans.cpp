#include "cluster/minibatch_kmeans.h"

#include <algorithm>
#include <limits>

namespace flips::cluster {

KMeansResult minibatch_kmeans(const std::vector<Point>& points,
                              const MiniBatchKMeansConfig& config,
                              common::Rng& rng) {
  if (points.empty() || config.k == 0) return {};
  const std::size_t k = std::min(config.k, points.size());
  const std::size_t dim = points.front().size();
  const std::size_t batch = std::min(config.batch_size, points.size());

  KMeansResult result;
  // k-means++ style seeding over a sample keeps startup cheap at scale.
  KMeansConfig seed_config;
  seed_config.k = k;
  seed_config.max_iterations = 1;
  std::vector<Point> sample;
  sample.reserve(std::min<std::size_t>(points.size(), 4 * batch));
  for (std::size_t i = 0; i < std::min<std::size_t>(points.size(), 4 * batch);
       ++i) {
    sample.push_back(points[rng.uniform_index(points.size())]);
  }
  result.centroids = kmeans(sample, seed_config, rng).centroids;
  // A tiny seeding sample (4 * batch_size < k) can yield fewer than k
  // centroids; top up from the full point set so every index below k
  // is live.
  while (result.centroids.size() < k) {
    result.centroids.push_back(points[rng.uniform_index(points.size())]);
  }

  std::vector<double> per_center_counts(k, 0.0);
  std::vector<std::size_t> batch_assign(batch, 0);
  std::vector<std::size_t> batch_index(batch, 0);

  for (std::size_t it = 0; it < config.iterations; ++it) {
    result.iterations = it + 1;
    for (std::size_t b = 0; b < batch; ++b) {
      batch_index[b] = rng.uniform_index(points.size());
      const Point& x = points[batch_index[b]];
      double best = std::numeric_limits<double>::infinity();
      std::size_t best_c = 0;
      for (std::size_t c = 0; c < k; ++c) {
        const double d = squared_distance(x, result.centroids[c]);
        if (d < best) {
          best = d;
          best_c = c;
        }
      }
      batch_assign[b] = best_c;
    }
    for (std::size_t b = 0; b < batch; ++b) {
      const std::size_t c = batch_assign[b];
      per_center_counts[c] += 1.0;
      const double eta = 1.0 / per_center_counts[c];
      const Point& x = points[batch_index[b]];
      Point& centroid = result.centroids[c];
      for (std::size_t j = 0; j < dim; ++j) {
        centroid[j] = (1.0 - eta) * centroid[j] + eta * x[j];
      }
    }
  }

  // Final full assignment pass (needed by callers comparing structure).
  result.assignments.assign(points.size(), 0);
  result.inertia = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    double best = std::numeric_limits<double>::infinity();
    std::size_t best_c = 0;
    for (std::size_t c = 0; c < k; ++c) {
      const double d = squared_distance(points[i], result.centroids[c]);
      if (d < best) {
        best = d;
        best_c = c;
      }
    }
    result.assignments[i] = best_c;
    result.inertia += best;
  }
  return result;
}

}  // namespace flips::cluster
