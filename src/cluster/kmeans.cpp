#include "cluster/kmeans.h"

#include <algorithm>
#include <limits>

namespace flips::cluster {

double squared_distance(const Point& a, const Point& b) {
  double s = 0.0;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

namespace {

std::vector<Point> plus_plus_init(const std::vector<Point>& points,
                                  std::size_t k, common::Rng& rng) {
  std::vector<Point> centroids;
  centroids.reserve(k);
  centroids.push_back(points[rng.uniform_index(points.size())]);
  std::vector<double> d2(points.size(),
                         std::numeric_limits<double>::infinity());
  while (centroids.size() < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      d2[i] = std::min(d2[i], squared_distance(points[i], centroids.back()));
      total += d2[i];
    }
    if (total <= 0.0) {
      // All remaining points coincide with a centroid; pick any.
      centroids.push_back(points[rng.uniform_index(points.size())]);
      continue;
    }
    double u = rng.uniform() * total;
    std::size_t chosen = points.size() - 1;
    for (std::size_t i = 0; i < points.size(); ++i) {
      u -= d2[i];
      if (u <= 0.0) {
        chosen = i;
        break;
      }
    }
    centroids.push_back(points[chosen]);
  }
  return centroids;
}

KMeansResult lloyd_once(const std::vector<Point>& points,
                        const KMeansConfig& config, common::Rng& rng) {
  const std::size_t k = std::min(config.k, points.size());
  const std::size_t dim = points.front().size();

  KMeansResult result;
  result.centroids = plus_plus_init(points, k, rng);
  result.assignments.assign(points.size(), 0);

  std::vector<Point> sums(k, Point(dim, 0.0));
  std::vector<std::size_t> counts(k, 0);

  for (std::size_t iter = 0; iter < config.max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Assignment step.
    for (std::size_t i = 0; i < points.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      std::size_t best_c = 0;
      for (std::size_t c = 0; c < k; ++c) {
        const double d = squared_distance(points[i], result.centroids[c]);
        if (d < best) {
          best = d;
          best_c = c;
        }
      }
      result.assignments[i] = best_c;
    }
    // Update step.
    for (std::size_t c = 0; c < k; ++c) {
      std::fill(sums[c].begin(), sums[c].end(), 0.0);
      counts[c] = 0;
    }
    for (std::size_t i = 0; i < points.size(); ++i) {
      const std::size_t c = result.assignments[i];
      ++counts[c];
      for (std::size_t j = 0; j < dim; ++j) sums[c][j] += points[i][j];
    }
    double shift = 0.0;
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster on a random point: keeps k live
        // clusters, which the selector's per-cluster heaps rely on.
        result.centroids[c] = points[rng.uniform_index(points.size())];
        shift += 1.0;
        continue;
      }
      Point next(dim, 0.0);
      for (std::size_t j = 0; j < dim; ++j) {
        next[j] = sums[c][j] / static_cast<double>(counts[c]);
      }
      shift += squared_distance(next, result.centroids[c]);
      result.centroids[c] = std::move(next);
    }
    if (shift <= config.tolerance) break;
  }

  result.inertia = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    result.inertia +=
        squared_distance(points[i], result.centroids[result.assignments[i]]);
  }
  return result;
}

}  // namespace

KMeansResult kmeans(const std::vector<Point>& points,
                    const KMeansConfig& config, common::Rng& rng) {
  if (points.empty() || config.k == 0) return {};
  KMeansResult best;
  best.inertia = std::numeric_limits<double>::infinity();
  const std::size_t restarts = std::max<std::size_t>(1, config.restarts);
  for (std::size_t r = 0; r < restarts; ++r) {
    KMeansResult run = lloyd_once(points, config, rng);
    if (run.inertia < best.inertia) best = std::move(run);
  }
  return best;
}

}  // namespace flips::cluster
