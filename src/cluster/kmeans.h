// Lloyd k-means with k-means++ seeding — the kernel FLIPS runs (inside
// the TEE on the middleware path) over party label distributions.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace flips::cluster {

using Point = std::vector<double>;

struct KMeansConfig {
  std::size_t k = 2;
  std::size_t max_iterations = 100;
  std::size_t restarts = 1;      ///< best-of-N independent runs
  double tolerance = 1e-8;       ///< centroid-shift convergence threshold
};

struct KMeansResult {
  std::vector<std::size_t> assignments;  ///< point -> cluster
  std::vector<Point> centroids;
  double inertia = 0.0;                  ///< sum of squared distances
  std::size_t iterations = 0;            ///< of the winning restart
};

double squared_distance(const Point& a, const Point& b);

[[nodiscard]] KMeansResult kmeans(const std::vector<Point>& points,
                                  const KMeansConfig& config,
                                  common::Rng& rng);

}  // namespace flips::cluster
