#include "cluster/hierarchical.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace flips::cluster {

std::vector<std::vector<double>> cosine_distance_matrix(
    const std::vector<Point>& points) {
  const std::size_t n = points.size();
  std::vector<double> norms(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (const double v : points[i]) s += v * v;
    norms[i] = std::sqrt(s);
  }
  std::vector<std::vector<double>> d(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      double dot = 0.0;
      const std::size_t dim = std::min(points[i].size(), points[j].size());
      for (std::size_t t = 0; t < dim; ++t) dot += points[i][t] * points[j][t];
      double dist = 1.0;
      if (norms[i] > 0.0 && norms[j] > 0.0) {
        dist = 1.0 - dot / (norms[i] * norms[j]);
      }
      d[i][j] = dist;
      d[j][i] = dist;
    }
  }
  return d;
}

std::vector<std::size_t> agglomerative_cluster(
    const std::vector<std::vector<double>>& distances, std::size_t k) {
  const std::size_t n = distances.size();
  if (n == 0) return {};
  k = std::max<std::size_t>(1, std::min(k, n));

  // Active cluster list; each cluster tracks its member count, and `d`
  // holds average-linkage distances between active clusters.
  std::vector<std::size_t> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  std::vector<double> weight(n, 1.0);
  std::vector<bool> active(n, true);
  std::vector<std::vector<double>> d = distances;

  std::size_t clusters = n;
  while (clusters > k) {
    double best = std::numeric_limits<double>::infinity();
    std::size_t a = 0;
    std::size_t b = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!active[i]) continue;
      for (std::size_t j = i + 1; j < n; ++j) {
        if (!active[j]) continue;
        if (d[i][j] < best) {
          best = d[i][j];
          a = i;
          b = j;
        }
      }
    }
    // Merge b into a with average linkage.
    const double wa = weight[a];
    const double wb = weight[b];
    for (std::size_t j = 0; j < n; ++j) {
      if (!active[j] || j == a || j == b) continue;
      d[a][j] = (wa * d[a][j] + wb * d[b][j]) / (wa + wb);
      d[j][a] = d[a][j];
    }
    weight[a] += weight[b];
    active[b] = false;
    parent[b] = a;
    --clusters;
  }

  // Resolve each point's active representative, then compact ids.
  std::vector<std::size_t> rep(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t r = i;
    while (parent[r] != r) r = parent[r];
    rep[i] = r;
  }
  std::vector<std::size_t> compact(n, 0);
  std::vector<std::size_t> out(n, 0);
  std::size_t next_id = 0;
  std::vector<bool> seen(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    if (!seen[rep[i]]) {
      seen[rep[i]] = true;
      compact[rep[i]] = next_id++;
    }
    out[i] = compact[rep[i]];
  }
  return out;
}

}  // namespace flips::cluster
