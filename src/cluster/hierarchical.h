// Naive average-linkage agglomerative clustering over a precomputed
// distance matrix — the substrate for the GradClus baseline, which
// groups parties by cosine distance of their gradient updates each
// round (O(n^3), which is exactly the cost the paper holds against it).
#pragma once

#include <cstddef>
#include <vector>

#include "cluster/kmeans.h"

namespace flips::cluster {

/// Pairwise cosine distances (1 - cosine similarity), symmetric, zero
/// diagonal. Zero vectors are treated as orthogonal to everything.
[[nodiscard]] std::vector<std::vector<double>> cosine_distance_matrix(
    const std::vector<Point>& points);

/// Merges the closest pair (average linkage) until `k` clusters remain.
/// Returns point -> cluster with cluster ids compacted into [0, k).
[[nodiscard]] std::vector<std::size_t> agglomerative_cluster(
    const std::vector<std::vector<double>>& distances, std::size_t k);

}  // namespace flips::cluster
