// Davies-Bouldin index and the two optimal-k rules from the paper's
// Figure 2 analysis: the prose "elbow" rule FLIPS actually uses, and the
// literal Eq. 3 rule (first k whose DBI improvement falls under a
// threshold), kept separate so the fig2 bench can compare them.
#pragma once

#include "cluster/kmeans.h"

namespace flips::cluster {

/// Mean over clusters of max_{j != i} (s_i + s_j) / d(c_i, c_j), where
/// s_i is mean intra-cluster distance. Lower is better.
[[nodiscard]] double davies_bouldin_index(
    const std::vector<Point>& points,
    const std::vector<std::size_t>& assignments,
    const std::vector<Point>& centroids);

struct OptimalKConfig {
  std::size_t k_min = 2;
  std::size_t k_max = 20;
  std::size_t repeats = 5;  ///< T: DBI is averaged over T k-means runs
  KMeansConfig kmeans;      ///< per-run knobs (k is overwritten)
  /// Eq. 3 rule: stop at the first k where the relative DBI improvement
  /// over k-1 drops below this threshold.
  double eq3_threshold = 0.05;
};

struct OptimalKResult {
  std::size_t k = 0;
  std::size_t k_min = 0;              ///< dbi_curve[0] corresponds to k_min
  std::vector<double> dbi_curve;      ///< mean DBI per k in [k_min, k_max]
};

/// Prose elbow rule: the k minimizing mean DBI over the sweep.
[[nodiscard]] OptimalKResult optimal_k_elbow(const std::vector<Point>& points,
                                             const OptimalKConfig& config,
                                             common::Rng& rng);

/// Literal Eq. 3 rule: smallest k whose marginal DBI improvement is
/// below `eq3_threshold` (falls back to the elbow k when none qualifies).
[[nodiscard]] OptimalKResult optimal_k_eq3(const std::vector<Point>& points,
                                           const OptimalKConfig& config,
                                           common::Rng& rng);

}  // namespace flips::cluster
